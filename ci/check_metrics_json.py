#!/usr/bin/env python3
"""Schema-check the live stats reporter's output.

Usage: check_metrics_json.py <logfile> [logfile...]

Scans each log for "DORADB_STATS {json}" lines (the StatsReporter's
format, normally on stderr) and fails if:
  * no stats line is found at all;
  * any stats payload is not valid JSON;
  * a payload is missing "ts_ms" (int) or "metrics" (non-empty object);
  * a metric entry has an unknown "type", or lacks the fields its type
    requires ("value" for counter/gauge; count/sum/min/max/p50/p95/p99/
    p999 for histogram);
  * across all lines, no metric was seen from one of the engine's core
    namespaces (dora., log., txn., ckpt.) — the smoke runs a started
    engine, so every subsystem must have checked in.

Also validates any "BENCH_JSON {json}" lines it encounters (bench result
lines, normally on stdout) as well-formed JSON with a "bench" name and a
"rows" array, so redirected smoke logs get both formats checked.
"""

import json
import sys

STATS_PREFIX = "DORADB_STATS "
BENCH_PREFIX = "BENCH_JSON "
VALID_TYPES = {"counter", "gauge", "histogram"}
HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "p50", "p95", "p99", "p999")
REQUIRED_NAMESPACES = ("dora.", "log.", "txn.", "ckpt.")


def check_stats_payload(where, payload, errors, seen_names):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid JSON: {e}")
        return
    if not isinstance(obj.get("ts_ms"), int):
        errors.append(f"{where}: missing/non-integer ts_ms")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{where}: missing/empty metrics object")
        return
    for name, m in metrics.items():
        if not isinstance(m, dict):
            errors.append(f"{where}: metric {name!r} is not an object")
            continue
        mtype = m.get("type")
        if mtype not in VALID_TYPES:
            errors.append(f"{where}: metric {name!r} has bad type {mtype!r}")
            continue
        if mtype in ("counter", "gauge"):
            if not isinstance(m.get("value"), int):
                errors.append(f"{where}: {mtype} {name!r} lacks integer value")
        else:  # histogram
            for field in HISTOGRAM_FIELDS:
                if not isinstance(m.get(field), int):
                    errors.append(
                        f"{where}: histogram {name!r} lacks integer {field!r}")
                    break
        seen_names.add(name)


def check_bench_payload(where, payload, errors):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid BENCH_JSON: {e}")
        return
    if not isinstance(obj.get("bench"), str):
        errors.append(f"{where}: BENCH_JSON lacks string 'bench'")
    if not isinstance(obj.get("rows"), list):
        errors.append(f"{where}: BENCH_JSON lacks 'rows' array")


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = []
    seen_names = set()
    stats_lines = 0
    bench_lines = 0
    for path in argv[1:]:
        with open(path, "r", errors="replace") as f:
            for i, line in enumerate(f, 1):
                line = line.strip()
                where = f"{path}:{i}"
                if line.startswith(STATS_PREFIX):
                    stats_lines += 1
                    check_stats_payload(where, line[len(STATS_PREFIX):],
                                        errors, seen_names)
                elif line.startswith(BENCH_PREFIX):
                    bench_lines += 1
                    check_bench_payload(where, line[len(BENCH_PREFIX):],
                                        errors)
    if stats_lines == 0:
        errors.append("no DORADB_STATS lines found (reporter never fired?)")
    else:
        for ns in REQUIRED_NAMESPACES:
            if not any(n.startswith(ns) for n in seen_names):
                errors.append(f"no metric from namespace {ns!r} ever reported")
    for e in errors:
        print(f"check_metrics_json: {e}", file=sys.stderr)
    print(f"check_metrics_json: {stats_lines} stats line(s), "
          f"{bench_lines} bench line(s), {len(seen_names)} distinct metrics, "
          f"{len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
