#!/usr/bin/env python3
"""Schema-check the live stats reporter's output.

Usage: check_metrics_json.py [--require-batching] <logfile> [logfile...]

Scans each log for "DORADB_STATS {json}" lines (the StatsReporter's
format, normally on stderr) and fails if:
  * no stats line is found at all;
  * any stats payload is not valid JSON;
  * a payload is missing "ts_ms" (int) or "metrics" (non-empty object);
  * a payload carries a "reason" that is not "interval" or "final";
  * a metric entry has an unknown "type", or lacks the fields its type
    requires ("value" for counter/gauge; count/sum/min/max/p50/p95/p99/
    p999 for histogram). Percentile fields may be null, but only on a
    zero-sample window (count == 0) — a populated histogram must report
    integer percentiles, and an empty one must not fake a 0;
  * across all lines, no metric was seen from one of the engine's core
    namespaces (dora., log., txn., ckpt., prof.) — the smoke runs a
    started engine, so every subsystem (including the stage-gap
    profiler) must have checked in;
  * the durability health metrics are missing: every snapshot must carry
    the "engine.health_state" gauge (0 ok, 1 degraded) and the
    "log.io_retries" / "log.io_errors" counters, so a degraded engine
    (poisoned WAL/page medium) is visible in /metrics and the stats
    stream, not only via /healthz.

Also validates:
  * "DORADB_HEATMAP {json}" lines (the reporter's per-executor load
    windows): seq/ts_ms/span_ms plus an "executors" array whose rows
    carry exec/depth/drained_per_s/qwait_p99_ns/busy_frac;
  * "BENCH_JSON {json}" lines (bench result lines, normally on stdout)
    as well-formed JSON with a "bench" name and a "rows" array,
so redirected smoke logs get every machine format checked.

With --require-batching (for smokes run under DORADB_EPOCH_BATCH), the
epoch-batched execution path must also have left evidence:
  * some "dora.exec.<n>.batch.group_size" histogram with count > 0
    (at least one executor formed key-sorted groups);
  * "log.bulk_reservations" counter > 0 (epoch closes took the one-
    reservation-per-group commit append);
  * "btree.descents_saved" counter present (leaf-cursor probes armed).

With --require-rebalance (for smokes run under DORADB_REBALANCE=1 on a
skewed workload), the live-repartitioning path must have left evidence:
  * "dora.rebalance.splits" or "dora.rebalance.moved_ranges" counter > 0
    (the controller performed at least one migration);
  * "dora.rebalance.fence_wait_ns" histogram with count > 0 (the
    migration went through the ticket-fenced drain, not a fast path);
  * at least one well-formed "DORADB_REBALANCE {json}" line (the
    controller's per-migration report: ts_ms/table/kind/hot/cold/
    version/fence_wait_ns/busy_hot/busy_cold).
"""

import json
import re
import sys

STATS_PREFIX = "DORADB_STATS "
HEATMAP_PREFIX = "DORADB_HEATMAP "
REBALANCE_PREFIX = "DORADB_REBALANCE "
BENCH_PREFIX = "BENCH_JSON "
VALID_TYPES = {"counter", "gauge", "histogram"}
HISTOGRAM_COUNT_FIELDS = ("count", "sum")
HISTOGRAM_VALUE_FIELDS = ("min", "max", "p50", "p95", "p99", "p999")
HEATMAP_ROW_FIELDS = ("exec", "depth", "drained_per_s", "qwait_p99_ns",
                      "busy_frac")
VALID_REASONS = {"interval", "final"}
REQUIRED_NAMESPACES = ("dora.", "log.", "txn.", "ckpt.", "prof.")
# Fault-injection / degradation visibility: registered unconditionally by
# every Database, so their absence means the health plumbing regressed.
REQUIRED_HEALTH_METRICS = ("engine.health_state", "log.io_retries",
                           "log.io_errors")
BATCH_GROUP_RE = re.compile(r"^dora\.exec\.\d+\.batch\.group_size$")


def check_histogram(where, name, m, errors):
    for field in HISTOGRAM_COUNT_FIELDS:
        if not isinstance(m.get(field), int):
            errors.append(f"{where}: histogram {name!r} lacks integer {field!r}")
            return
    empty = m["count"] == 0
    for field in HISTOGRAM_VALUE_FIELDS:
        v = m.get(field, "missing")
        if v is None:
            # null percentiles are the zero-sample-window contract: an
            # empty delta window has no percentiles, and must say so
            # rather than report a misleading 0.
            if not empty:
                errors.append(f"{where}: histogram {name!r} has null {field!r} "
                              f"despite count={m['count']}")
        elif not isinstance(v, int):
            errors.append(f"{where}: histogram {name!r} lacks integer {field!r}")
            return


def check_stats_payload(where, payload, errors, seen_names, seen_values):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid JSON: {e}")
        return None
    if not isinstance(obj.get("ts_ms"), int):
        errors.append(f"{where}: missing/non-integer ts_ms")
    reason = obj.get("reason")
    if reason is not None and reason not in VALID_REASONS:
        errors.append(f"{where}: bad reason {reason!r}")
    metrics = obj.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{where}: missing/empty metrics object")
        return reason
    for name, m in metrics.items():
        if not isinstance(m, dict):
            errors.append(f"{where}: metric {name!r} is not an object")
            continue
        mtype = m.get("type")
        if mtype not in VALID_TYPES:
            errors.append(f"{where}: metric {name!r} has bad type {mtype!r}")
            continue
        if mtype in ("counter", "gauge"):
            if not isinstance(m.get("value"), int):
                errors.append(f"{where}: {mtype} {name!r} lacks integer value")
        else:
            check_histogram(where, name, m, errors)
        seen_names.add(name)
        # High-water mark per metric: counters/gauges by value, histograms
        # by sample count (what the --require-batching evidence checks use).
        peak = m.get("value") if mtype in ("counter", "gauge") \
            else m.get("count")
        if isinstance(peak, int):
            seen_values[name] = max(seen_values.get(name, 0), peak)
    return reason


def check_heatmap_payload(where, payload, errors):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid DORADB_HEATMAP JSON: {e}")
        return
    if not isinstance(obj.get("seq"), int) or obj["seq"] < 1:
        errors.append(f"{where}: heatmap window lacks positive integer seq")
    if not isinstance(obj.get("ts_ms"), int):
        errors.append(f"{where}: heatmap window lacks integer ts_ms")
    if not isinstance(obj.get("span_ms"), (int, float)):
        errors.append(f"{where}: heatmap window lacks numeric span_ms")
    rows = obj.get("executors")
    if not isinstance(rows, list):
        errors.append(f"{where}: heatmap window lacks executors array")
        return
    for row in rows:
        if not isinstance(row, dict):
            errors.append(f"{where}: heatmap executor row is not an object")
            continue
        for field in HEATMAP_ROW_FIELDS:
            if not isinstance(row.get(field), (int, float)):
                errors.append(
                    f"{where}: heatmap row lacks numeric {field!r}")
                break
        else:
            if not 0.0 <= row["busy_frac"] <= 1.0:
                errors.append(f"{where}: busy_frac {row['busy_frac']} "
                              f"outside [0,1]")


REBALANCE_INT_FIELDS = ("ts_ms", "table", "hot", "cold", "version",
                        "fence_wait_ns")
REBALANCE_KINDS = {"split", "move"}


def check_rebalance_payload(where, payload, errors):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid DORADB_REBALANCE JSON: {e}")
        return
    for field in REBALANCE_INT_FIELDS:
        if not isinstance(obj.get(field), int):
            errors.append(f"{where}: rebalance line lacks integer {field!r}")
    if obj.get("kind") not in REBALANCE_KINDS:
        errors.append(f"{where}: rebalance kind {obj.get('kind')!r} not in "
                      f"{sorted(REBALANCE_KINDS)}")
    for field in ("busy_hot", "busy_cold"):
        v = obj.get(field)
        if not isinstance(v, (int, float)) or not 0.0 <= v <= 1.0:
            errors.append(f"{where}: rebalance {field!r} missing or "
                          f"outside [0,1]")


BATCH_AB_FIELDS = ("dora_batch_peak_tps", "batch_speedup", "batch_group_p50",
                   "batch_wakeups_per_action", "nobatch_wakeups_per_action")


def check_bench_payload(where, payload, errors, require_batching):
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as e:
        errors.append(f"{where}: invalid BENCH_JSON: {e}")
        return
    if not isinstance(obj.get("bench"), str):
        errors.append(f"{where}: BENCH_JSON lacks string 'bench'")
    if not isinstance(obj.get("rows"), list):
        errors.append(f"{where}: BENCH_JSON lacks 'rows' array")
        return
    # The batching smoke runs fig8's interleaved batch-off/batch-on A/B;
    # every row must carry the A/B fields with numeric values.
    if require_batching and obj.get("bench") == "fig8_peak_throughput":
        for r, row in enumerate(obj["rows"]):
            if not isinstance(row, dict):
                continue
            for field in BATCH_AB_FIELDS:
                if not isinstance(row.get(field), (int, float)):
                    errors.append(f"{where}: fig8 row {r} lacks numeric "
                                  f"{field!r} (batching A/B fields missing)")


def main(argv):
    args = argv[1:]
    require_batching = "--require-batching" in args
    require_rebalance = "--require-rebalance" in args
    args = [a for a in args
            if a not in ("--require-batching", "--require-rebalance")]
    if not args:
        print(__doc__)
        return 2
    errors = []
    seen_names = set()
    seen_values = {}
    seen_reasons = set()
    stats_lines = 0
    heatmap_lines = 0
    rebalance_lines = 0
    bench_lines = 0
    for path in args:
        with open(path, "r", errors="replace") as f:
            for i, line in enumerate(f, 1):
                line = line.strip()
                where = f"{path}:{i}"
                if line.startswith(STATS_PREFIX):
                    stats_lines += 1
                    reason = check_stats_payload(
                        where, line[len(STATS_PREFIX):], errors, seen_names,
                        seen_values)
                    if reason is not None:
                        seen_reasons.add(reason)
                elif line.startswith(HEATMAP_PREFIX):
                    heatmap_lines += 1
                    check_heatmap_payload(where, line[len(HEATMAP_PREFIX):],
                                          errors)
                elif line.startswith(REBALANCE_PREFIX):
                    rebalance_lines += 1
                    check_rebalance_payload(
                        where, line[len(REBALANCE_PREFIX):], errors)
                elif line.startswith(BENCH_PREFIX):
                    bench_lines += 1
                    check_bench_payload(where, line[len(BENCH_PREFIX):],
                                        errors, require_batching)
    if stats_lines == 0:
        errors.append("no DORADB_STATS lines found (reporter never fired?)")
    else:
        for ns in REQUIRED_NAMESPACES:
            if not any(n.startswith(ns) for n in seen_names):
                errors.append(f"no metric from namespace {ns!r} ever reported")
        for name in REQUIRED_HEALTH_METRICS:
            if name not in seen_names:
                errors.append(f"health metric {name!r} never reported "
                              f"(degradation latch not wired into metrics?)")
        # A reporter that tagged any line must have closed with a final
        # flush; endpoint-only captures (no reason field at all) are fine.
        if seen_reasons and "final" not in seen_reasons:
            errors.append("reporter lines carry reasons but no 'final' line "
                          "(Stop() flush missing?)")
    if require_batching:
        if not any(BATCH_GROUP_RE.match(n) and seen_values.get(n, 0) > 0
                   for n in seen_names):
            errors.append("--require-batching: no dora.exec.<n>.batch."
                          "group_size histogram ever reported samples "
                          "(epoch batching never formed a group?)")
        if seen_values.get("log.bulk_reservations", 0) <= 0:
            errors.append("--require-batching: log.bulk_reservations never "
                          "went positive (epoch closes not taking the bulk "
                          "commit append?)")
        if "btree.descents_saved" not in seen_names:
            errors.append("--require-batching: btree.descents_saved counter "
                          "never reported (leaf-cursor probes unarmed?)")
    if require_rebalance:
        migrated = (seen_values.get("dora.rebalance.splits", 0) > 0 or
                    seen_values.get("dora.rebalance.moved_ranges", 0) > 0)
        if not migrated:
            errors.append("--require-rebalance: neither dora.rebalance."
                          "splits nor dora.rebalance.moved_ranges went "
                          "positive (controller never migrated?)")
        if seen_values.get("dora.rebalance.fence_wait_ns", 0) <= 0:
            errors.append("--require-rebalance: dora.rebalance.fence_wait_ns "
                          "histogram never reported samples (migration "
                          "skipped the ticket fence?)")
        if rebalance_lines == 0:
            errors.append("--require-rebalance: no DORADB_REBALANCE lines "
                          "found (controller report missing)")
    for e in errors:
        print(f"check_metrics_json: {e}", file=sys.stderr)
    print(f"check_metrics_json: {stats_lines} stats line(s), "
          f"{heatmap_lines} heatmap line(s), {rebalance_lines} rebalance "
          f"line(s), {bench_lines} bench line(s), "
          f"{len(seen_names)} distinct metrics, {len(errors)} error(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
