#!/usr/bin/env python3
"""Markdown link check: every relative link in the repo's *.md files must
point at a file or directory that exists.

Usage: check_md_links.py [repo_root]

Checks inline links ``[text](target)`` in every tracked-ish Markdown file
(build/ and hidden directories are skipped). External links (http/https/
mailto) are not fetched — this is an offline existence check for the doc
graph the READMEs form. Exit code 0 = clean, 1 = broken links (each
printed as file:line: target).
"""

import os
import re
import sys

# Inline links, excluding images' alt-text edge cases handled the same way.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")
def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        # Skip hidden trees and every build variant (build, build-asan,
        # build-tsan, ... — the CMake convention used by CI).
        dirnames[:] = [
            d for d in dirnames
            if not d.startswith((".", "build"))
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_file(path, root):
    broken = []
    with open(path, encoding="utf-8") as f:
        in_code = False
        for lineno, line in enumerate(f, 1):
            if line.lstrip().startswith("```"):
                in_code = not in_code
                continue
            if in_code:
                continue
            # Inline code spans show syntax, they don't link.
            line = re.sub(r"`[^`]*`", "", line)
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                if target.startswith("/"):
                    resolved = os.path.join(root, target.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target)
                if not os.path.exists(resolved):
                    broken.append((lineno, match.group(1)))
    return broken


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    total_files = 0
    total_links_broken = 0
    for path in sorted(md_files(root)):
        total_files += 1
        for lineno, target in check_file(path, root):
            total_links_broken += 1
            rel = os.path.relpath(path, root)
            print(f"BROKEN {rel}:{lineno}: {target}")
    if total_links_broken:
        print(f"{total_links_broken} broken link(s) across {total_files} "
              "markdown file(s)")
        return 1
    print(f"markdown links OK ({total_files} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
