// Figure 3: where time goes INSIDE the centralized lock manager as load
// increases (TPC-B, Baseline system).
//
// Paper shape: lightly loaded, >85% of lock-manager time is useful
// acquire/release work; at full utilization >85% is contention (latch
// spinning and waiting).

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

int main() {
  PrintHeader("Figure 3", "TPC-B: time inside the lock manager (Baseline)");
  auto rig = MakeTpcb();

  std::printf("\n%-10s %12s  %s\n", "load%", "tps",
              "lock manager internal breakdown");
  for (uint32_t clients : ClientLadder()) {
    ThreadStats::ResetAll();
    const BenchResult r = RunBench(
        rig.workload.get(),
        MakeConfig(EngineKind::kBaseline, rig.engine.get(), clients));
    std::printf("%-10.0f %12.0f  %s\n", r.offered_load_pct, r.throughput_tps,
                r.breakdown.LockManagerRow().c_str());
    BenchJson::Default().Add(
        ResultRow("tpcb", "base", clients, r)
            .Str("lockmgr_breakdown", r.breakdown.LockManagerRow()));
  }
  std::printf(
      "\nexpected shape: at low load acquire+release dominate (useful\n"
      "work); as load grows the *_cont slices (latch spinning + blocked\n"
      "waits) take over.\n");
  BenchJson::Default().Emit("fig3_lockmgr_breakdown");
  return 0;
}
