// Ablation benches for DORA design choices (not in the paper's evaluation,
// but called out in its design sections):
//   1. executors per table (dataset granularity, §4.1.1);
//   2. serial vs parallel plans on a NO-abort transaction (RVP overhead of
//      extra phases, §A.4);
//   3. cost of the residual centralized RID locks on the insert path
//      (§4.2.1) — inferred by comparing an insert-free and an insert-heavy
//      transaction's dora/lockmgr breakdown shares.

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

int main() {
  PrintHeader("Ablation", "DORA design-choice sensitivity");

  // 1. Executors per table.
  std::printf("\n--- executors per table (TM1 mix, saturated) ---\n");
  std::printf("%-12s %14s %16s\n", "executors", "DORA tps", "local conflicts");
  for (uint32_t n : {1u, 2u, 4u}) {
    auto rig = MakeTm1(n);
    ThreadStats::ResetAll();
    const BenchResult r = RunBench(
        rig.workload.get(),
        MakeConfig(EngineKind::kDora, rig.engine.get(), HardwareContexts()));
    uint64_t conflicts = 0;
    for (auto* e : rig.engine->AllExecutors()) {
      conflicts += e->local_lock_conflicts();
    }
    std::printf("%-12u %14.0f %16lu\n", n, r.throughput_tps,
                static_cast<unsigned long>(conflicts));
    BenchJson::Default().Add(JsonRow()
                                 .Str("section", "executors_per_table")
                                 .Int("executors", n)
                                 .Num("tps", r.throughput_tps)
                                 .Int("local_conflicts", conflicts));
  }

  // 2. Serial-plan (extra RVP) overhead on an abort-free transaction.
  std::printf("\n--- extra-RVP overhead: GetNewDestination P vs S ---\n");
  {
    auto rig = MakeTm1();
    std::printf("%-10s %14s\n", "plan", "DORA tps");
    // GetNewDestination never aborts for DORA (failure decided client-side)
    // so any gap here is pure phase/RVP overhead. The plan mode only
    // affects UpdateSubscriberData, so emulate by comparing the 2-action
    // single-phase GND with the serialized UpdateSubscriberData machinery:
    for (const auto mode : {tm1::PlanMode::kParallel, tm1::PlanMode::kSerial}) {
      rig.workload->SetPlanMode(mode);
      ThreadStats::ResetAll();
      const BenchResult r = RunBench(
          rig.workload.get(),
          MakeConfig(EngineKind::kDora, rig.engine.get(), HardwareContexts(),
                     tm1::kGetNewDestination));
      std::printf("%-10s %14.0f\n",
                  mode == tm1::PlanMode::kParallel ? "parallel" : "serial",
                  r.throughput_tps);
      BenchJson::Default().Add(
          JsonRow()
              .Str("section", "plan_rvp_overhead")
              .Str("plan",
                   mode == tm1::PlanMode::kParallel ? "parallel" : "serial")
              .Num("tps", r.throughput_tps));
    }
  }

  // 3. Residual centralized locking on the insert path.
  std::printf("\n--- residual RID locks: read-only vs insert-heavy ---\n");
  {
    auto rig = MakeTm1();
    struct Case {
      const char* name;
      int type;
    } cases[] = {{"GetSubscriberData (no ins)", tm1::kGetSubscriberData},
                 {"InsertCallForwarding", tm1::kInsertCallForwarding}};
    for (const auto& c : cases) {
      ThreadStats::ResetAll();
      const BenchResult r = RunBench(
          rig.workload.get(),
          MakeConfig(EngineKind::kDora, rig.engine.get(), HardwareContexts(),
                     c.type));
      const double txns =
          static_cast<double>(r.committed + r.user_aborts) / 100.0;
      std::printf("%-28s tps=%10.0f row_locks/100=%6.1f  %s\n", c.name,
                  r.throughput_tps,
                  txns > 0
                      ? r.raw_delta.Locks(LockCounter::kRowLevel) / txns
                      : 0,
                  r.breakdown.Row().c_str());
      BenchJson::Default().Add(
          JsonRow()
              .Str("section", "rid_lock_residue")
              .Str("txn", c.name)
              .Num("tps", r.throughput_tps)
              .Num("row_locks_per100",
                   txns > 0
                       ? r.raw_delta.Locks(LockCounter::kRowLevel) / txns
                       : 0));
    }
  }
  std::printf(
      "\nreading: more executors help only when cores are free; serial\n"
      "plans cost one RVP hand-off per action; inserts reintroduce a small\n"
      "amount of centralized locking (row locks only, uncontended).\n");
  BenchJson::Default().Emit("ablation_dora");
  return 0;
}
