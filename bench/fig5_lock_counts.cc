// Figure 5: locks acquired per 100 transactions, by class, for Baseline and
// DORA on TM1 (mix), TPC-B, and TPC-C OrderStatus.
//
// Paper shape: Baseline acquires row-level AND as many (TM1) or half as
// many (TPC-B) higher-level (intention) locks; DORA acquires almost nothing
// centralized — only RID locks for inserts/deletes plus thread-local locks.
// (E.g. Payment: 1 centralized lock instead of 19, §4.2.1.)

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

template <typename W>
void Census(const char* label, W* workload, dora::DoraEngine* engine,
            int txn_type) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-8s %14s %14s %14s\n", "system", "row-level/100",
              "higher/100", "dora-local/100");
  for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
    ThreadStats::ResetAll();
    const BenchResult r = RunBench(
        workload, MakeConfig(kind, engine, HardwareContexts(), txn_type));
    const double txns =
        static_cast<double>(r.committed + r.user_aborts) / 100.0;
    if (txns == 0) continue;
    std::printf("%-8s %14.1f %14.1f %14.1f\n",
                kind == EngineKind::kBaseline ? "BASE" : "DORA",
                r.raw_delta.Locks(LockCounter::kRowLevel) / txns,
                r.raw_delta.Locks(LockCounter::kHigherLevel) / txns,
                r.raw_delta.Locks(LockCounter::kDoraLocal) / txns);
    BenchJson::Default().Add(
        ResultRow(label, EngineName(kind), HardwareContexts(), r)
            .Num("row_locks_per100",
                 r.raw_delta.Locks(LockCounter::kRowLevel) / txns)
            .Num("higher_locks_per100",
                 r.raw_delta.Locks(LockCounter::kHigherLevel) / txns)
            .Num("dora_local_per100",
                 r.raw_delta.Locks(LockCounter::kDoraLocal) / txns));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 5", "locks acquired per 100 transactions, by class");
  {
    auto tm1 = MakeTm1();
    Census("TM1 (mix)", tm1.workload.get(), tm1.engine.get(), -1);
  }
  {
    auto tpcb = MakeTpcb();
    Census("TPC-B", tpcb.workload.get(), tpcb.engine.get(), -1);
  }
  {
    auto tpcc = MakeTpcc();
    Census("TPC-C OrderStatus", tpcc.workload.get(), tpcc.engine.get(),
           tpcc::kOrderStatus);
  }
  std::printf(
      "\nexpected shape: BASE row ~= higher for TM1 (short txns), ~2:1 for\n"
      "TPC-B; DORA centralized locks near zero (RID locks on inserts only),\n"
      "replaced by thread-local locks.\n");
  BenchJson::Default().Emit("fig5_lock_counts");
  return 0;
}
