// Figure 6: throughput as offered CPU load increases — TM1 (mix), TPC-B,
// and TPC-C OrderStatus; Baseline vs. DORA.
//
// Paper shape: Baseline stops scaling early (worst on TM1) and collapses
// past 100% offered load (preempted latch holders); DORA scales to the
// hardware limit and stays flat in overload.

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

template <typename W>
void Sweep(const char* label, W* workload, dora::DoraEngine* engine,
           int txn_type) {
  std::printf("\n--- %s ---\n", label);
  std::printf("%-10s %14s %14s\n", "load%", "BASE tps", "DORA tps");
  for (uint32_t clients : ClientLadder()) {
    double tps[2] = {0, 0};
    double load = 0;
    int i = 0;
    dora::DoraEngine::InboxStats delta;
    for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
      ThreadStats::ResetAll();
      const auto s0 = engine->CollectInboxStats();
      // Per-executor skew over the DORA window: min/max busy fraction and
      // the worst executor's windowed queue-wait percentiles land on the
      // DORA row, making load imbalance visible per ladder step.
      SkewProbe skew(engine);
      BatchProbe batch(engine);
      RebalanceProbe rebalance;
      const BenchResult r =
          RunBench(workload, MakeConfig(kind, engine, clients, txn_type));
      if (kind == EngineKind::kDora) {
        delta = engine->CollectInboxStats() - s0;
      }
      tps[i++] = r.throughput_tps;
      load = r.offered_load_pct;
      JsonRow row = ResultRow(label, EngineName(kind), clients, r);
      if (kind == EngineKind::kDora) {
        skew.Fold(&row);
        // Epoch-batching telemetry for this ladder step: whether batching
        // was armed (DORADB_EPOCH_BATCH), the windowed median group size,
        // and the wakeup amortization it's meant to improve.
        row.Int("batch", engine->epoch_batch_min() != 0 ? 1 : 0)
            .Int("batch_group_p50", batch.GroupP50())
            .Num("wakeups_per_action", delta.wakeups_per_action());
        // Skew/rebalance A/B columns: with DORADB_SKEW_THETA>0 and
        // DORADB_REBALANCE=1 the exec_busy_max-exec_busy_min gap above
        // should shrink as migrations land.
        rebalance.Fold(&row);
      }
      BenchJson::Default().Add(row);
    }
    std::printf("%-10.0f %14.0f %14.0f\n", load, tps[0], tps[1]);
    // Inbox efficiency at this load: batch draining should hold executor
    // wakeups-per-action below 1 (well below once queues stay non-empty).
    PrintInboxStats(delta);
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 6", "throughput vs offered CPU load");
  {
    auto tm1 = MakeTm1();
    Sweep("TM1 (mix)", tm1.workload.get(), tm1.engine.get(), -1);
  }
  {
    auto tpcb = MakeTpcb();
    Sweep("TPC-B", tpcb.workload.get(), tpcb.engine.get(), -1);
  }
  {
    auto tpcc = MakeTpcc();
    Sweep("TPC-C OrderStatus", tpcc.workload.get(), tpcc.engine.get(),
          tpcc::kOrderStatus);
  }
  std::printf(
      "\nexpected shape: DORA >= BASE everywhere; the gap is widest on TM1;\n"
      "past 100%% offered load BASE degrades while DORA holds.\n");
  BenchJson::Default().Emit("fig6_scalability");
  return 0;
}
