// Shared scaffolding for the figure-reproduction benchmarks.
//
// Every bench binary regenerates one table/figure of the paper. The control
// variable is offered CPU load (clients relative to hardware contexts,
// §5.2); scales and durations default to CI-friendly values and can be
// raised via environment variables:
//   DORADB_BENCH_MS       per-point measurement window (default 700 ms)
//   DORADB_TM1_SUBS       TM1 subscribers            (default 20000)
//   DORADB_TPCB_BRANCHES  TPC-B branches             (default 8)
//   DORADB_TPCC_WH        TPC-C warehouses           (default 4)
//   DORADB_MAX_MULT       max clients as multiple of cores (default 4)
//   DORADB_EXECUTORS      DORA executors per table   (default 1; rigs that
//                         take an explicit executor count ignore this)
//   DORADB_PIN            1 = pin executors to cores by partition index
//   DORADB_BASE_WORKERS   >0: baseline runs through a shared request queue
//                         drained in batches by this many workers
//   DORADB_EPOCH_BATCH    >0: epoch-batched executor drains — an inbox
//                         drain of at least this many ready actions runs
//                         key-sorted with one bulk commit append and
//                         epoch-granular acks (default 0 = off)
//   DORADB_PIPELINED      1 = pipelined commit / early lock release
//                         (default 0; commit batching needs it)
//
// Skew / live-repartitioning knobs:
//   DORADB_SKEW_THETA     >0: workload key picks (TM1 subscriber, TPC-B
//                         account) become Zipf(theta)-distributed by rank,
//                         rank 1 = lowest key — the hot set is contiguous
//                         so one range-partition executor soaks it up
//                         (default 0 = each workload's classic pick)
//   DORADB_REBALANCE      1 = run a RebalanceController per rig: consume
//                         the load heatmap and live-migrate hot routing
//                         ranges through the ticket-fenced cutover
//                         (default 0)
//   DORADB_REBALANCE_GAP  busy-fraction gap (hot - cold) that triggers a
//                         migration (default 0.25)
//   DORADB_REBALANCE_MS   controller cadence in ms (default 50)
//
// WAL knobs (both backends benchable without recompiling):
//   DORADB_LOG_BACKEND    "central" (default) or "plog"
//   DORADB_LOG_PARTITIONS plog partition count       (default 4)
//   DORADB_LOG_FLUSH_US   group-commit window in us  (default 50)
//   DORADB_LOG_SYNC       1 = flush inline on every append (default 0)
//
// Durable-mode knobs (file-backed segment log + pages.db):
//   DORADB_DATA_DIR       base directory; every rig gets a fresh private
//                         subdirectory under it (empty = in-memory media)
//   DORADB_LOG_SEGMENT_BYTES  segment roll target     (default 262144)
//
// Observability knobs (src/obs/):
//   DORADB_METRICS        0 = disable the metrics hot path (default 1)
//   DORADB_STATS_INTERVAL_MS  >0: every rig's Database runs a reporter
//                         thread printing "DORADB_STATS {json}" lines to
//                         stderr at this cadence (default 0 = off)
//   DORADB_TRACE_RING     >0: enable the commit-path tracer with rings of
//                         this many events per thread (default 0 = off)
//   DORADB_PROF_SAMPLE    stage-gap profiler sampling: every Nth txn is
//                         stamped along the commit path (default 64,
//                         0 = off) — read by the engine, listed here for
//                         discoverability
//   DORADB_WATCHDOG_MS    stall-watchdog cadence (default 250, 0 = off)
//   DORADB_STALL_MS       heartbeat/horizon age that counts as a stall
//                         (default 2000)
//   DORADB_OBS_PORT       live metrics endpoint: unset/-1 off, 0 bind an
//                         ephemeral loopback port (announced via a
//                         "DORADB_OBS {json}" stderr line), >0 fixed port

#ifndef DORADB_BENCH_BENCH_COMMON_H_
#define DORADB_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dora/dora_engine.h"
#include "dora/rebalance.h"
#include "engine/database.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"
#include "workloads/tpcb/tpcb.h"
#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace bench {

inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtoull(v, nullptr, 10);
}

inline double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return v == nullptr ? def : std::strtod(v, nullptr);
}

// The shared deterministic skew knob: every workload rig below feeds this
// into its Config, where a single util/rng.h ZipfGenerator (rank 1 = the
// lowest key id) replaces the uniform key pick. Deterministic given the
// client's seeded Rng; pinned by RebalanceTest.ZipfSkewGeneratorPinned.
inline double SkewTheta() { return EnvDouble("DORADB_SKEW_THETA", 0.0); }

inline bool RebalanceFromEnv() { return EnvU64("DORADB_REBALANCE", 0) != 0; }

inline uint64_t BenchMs() { return EnvU64("DORADB_BENCH_MS", 700); }

// Log options from driver flags (satellite of the plog PR): flush cadence,
// synchronous mode, and backend selection are runtime-settable so the same
// binary can A/B the central and partitioned WAL.
inline LogManager::Options LogOptionsFromEnv() {
  LogManager::Options o;
  o.flush_interval_us = EnvU64("DORADB_LOG_FLUSH_US", o.flush_interval_us);
  o.synchronous = EnvU64("DORADB_LOG_SYNC", 0) != 0;
  return o;
}

// Engine options from driver flags: executor→core pinning (the NUMA
// roadmap's first step) is opt-in because hosts with fewer cores than
// executors + clients lose more to forced migration than they gain.
inline dora::DoraEngine::Options EngineOptionsFromEnv() {
  dora::DoraEngine::Options o;
  o.pin_threads = EnvU64("DORADB_PIN", 0) != 0;
  o.pipelined_commit = EnvU64("DORADB_PIPELINED", 0) != 0;
  o.epoch_batch_min =
      static_cast<uint32_t>(EnvU64("DORADB_EPOCH_BATCH", 0));
  return o;
}

inline uint32_t ExecutorsFromEnv() {
  return static_cast<uint32_t>(EnvU64("DORADB_EXECUTORS", 1));
}

inline LogBackendKind LogBackendFromEnv() {
  const char* v = std::getenv("DORADB_LOG_BACKEND");
  if (v != nullptr && std::string(v) == "plog") {
    return LogBackendKind::kPartitioned;
  }
  return LogBackendKind::kCentral;
}

// Ladder of client counts expressed as offered-load steps up to
// DORADB_MAX_MULT x the hardware contexts (the >100% region reproduces the
// paper's overload behaviour, Fig. 6).
inline std::vector<uint32_t> ClientLadder() {
  const uint32_t hw = HardwareContexts();
  const uint32_t max_mult =
      static_cast<uint32_t>(EnvU64("DORADB_MAX_MULT", 4));
  std::vector<uint32_t> out;
  for (uint32_t c = 1; c < hw; c *= 2) out.push_back(c);
  for (uint32_t m = 1; m <= max_mult; m *= 2) out.push_back(hw * m);
  return out;
}

// Durable mode: DORADB_DATA_DIR makes every rig's WAL and page store
// file-backed. Each call claims a fresh private subdirectory (wiped first)
// so the several rigs a bench binary builds never adopt each other's
// segments; reuse the returned Options verbatim to REOPEN that same rig's
// directory in a second lifetime.
inline std::string ClaimRigDataDir() {
  const char* base = std::getenv("DORADB_DATA_DIR");
  if (base == nullptr || base[0] == '\0') return "";
  static std::atomic<uint64_t> next_rig{0};
  const std::string dir =
      std::string(base) + "/rig-" +
      std::to_string(next_rig.fetch_add(1, std::memory_order_relaxed));
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

// Process-wide observability switches. Applied once: the tracer's Enable
// clears every ring, so re-applying per rig would drop the spans collected
// by earlier rigs in the same binary.
inline void ApplyObsEnv() {
  static const bool applied = [] {
    if (EnvU64("DORADB_METRICS", 1) == 0) obs::SetMetricsEnabled(false);
    const uint64_t ring = EnvU64("DORADB_TRACE_RING", 0);
    if (ring > 0) obs::CommitTracer::Enable(static_cast<size_t>(ring));
    return true;
  }();
  (void)applied;
}

inline Database::Options DbOptions() {
  ApplyObsEnv();
  Database::Options o;
  o.buffer_frames = 1 << 15;  // 256 MiB
  o.lock.wait_timeout_us = 1000000;
  o.log = LogOptionsFromEnv();
  o.log_backend = LogBackendFromEnv();
  o.log_partitions =
      static_cast<uint32_t>(EnvU64("DORADB_LOG_PARTITIONS", 4));
  o.data_dir = ClaimRigDataDir();
  o.log_segment_bytes = EnvU64("DORADB_LOG_SEGMENT_BYTES", 1 << 18);
  o.stats_interval_ms = EnvU64("DORADB_STATS_INTERVAL_MS", 0);
  o.watchdog_interval_ms = EnvU64("DORADB_WATCHDOG_MS", 250);
  o.stall_threshold_ms = EnvU64("DORADB_STALL_MS", 2000);
  const char* port = std::getenv("DORADB_OBS_PORT");
  if (port != nullptr && port[0] != '\0') o.obs_port = std::atoi(port);
  return o;
}

// A fully-loaded workload with its own database and started DORA engine.
template <typename W>
struct Rig {
  std::unique_ptr<Database> db;
  std::unique_ptr<W> workload;
  std::unique_ptr<dora::DoraEngine> engine;
  // DORADB_REBALANCE=1: the live-repartitioning controller. Declared after
  // engine so it destructs (and stops) first; Stop() is also called
  // explicitly before engine->Stop() for moved-from clarity.
  std::unique_ptr<dora::RebalanceController> rebalancer;

  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;
  ~Rig() {
    if (rebalancer != nullptr) rebalancer->Stop();
    if (engine != nullptr) engine->Stop();
  }
};

// Arm a rig's live-repartitioning controller when DORADB_REBALANCE=1. The
// controller sweeps the heatmap itself, so it works whether or not the
// rig's watchdog is driving sweeps too (sweeps are diff-based — two
// sweepers just mean shorter windows).
template <typename W>
inline void MaybeStartRebalancer(Rig<W>* rig) {
  if (!RebalanceFromEnv()) return;
  dora::RebalanceController::Options o;
  o.min_busy_gap = EnvDouble("DORADB_REBALANCE_GAP", 0.25);
  o.interval_ms = EnvU64("DORADB_REBALANCE_MS", 50);
  rig->rebalancer = std::make_unique<dora::RebalanceController>(
      rig->engine.get(), o);
  rig->rebalancer->Start();
}

inline Rig<tm1::Tm1Workload> MakeTm1(uint32_t executors_per_table = 0,
                                     bool trace = false) {
  Rig<tm1::Tm1Workload> rig;
  rig.db = std::make_unique<Database>(DbOptions());
  tm1::Tm1Workload::Config cfg;
  cfg.subscribers = EnvU64("DORADB_TM1_SUBS", 20000);
  cfg.executors_per_table =
      executors_per_table != 0 ? executors_per_table : ExecutorsFromEnv();
  cfg.trace_subscriber_accesses = trace;
  cfg.skew_theta = SkewTheta();
  rig.workload = std::make_unique<tm1::Tm1Workload>(rig.db.get(), cfg);
  Status s = rig.workload->Load();
  if (!s.ok()) {
    std::fprintf(stderr, "TM1 load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  rig.engine = std::make_unique<dora::DoraEngine>(rig.db.get(),
                                                  EngineOptionsFromEnv());
  rig.workload->SetupDora(rig.engine.get());
  rig.engine->Start();
  MaybeStartRebalancer(&rig);
  return rig;
}

// TPC-B rig with explicit database/engine options and executor counts —
// the log-scalability bench sweeps these.
inline Rig<tpcb::TpcbWorkload> MakeTpcbWith(
    Database::Options db_opts, dora::DoraEngine::Options engine_opts,
    uint32_t account_executors, uint32_t other_executors) {
  Rig<tpcb::TpcbWorkload> rig;
  rig.db = std::make_unique<Database>(db_opts);
  tpcb::TpcbWorkload::Config cfg;
  cfg.branches = EnvU64("DORADB_TPCB_BRANCHES", 8);
  cfg.accounts_per_branch = 2000;
  cfg.account_executors = account_executors;
  cfg.other_executors = other_executors;
  cfg.skew_theta = SkewTheta();
  rig.workload = std::make_unique<tpcb::TpcbWorkload>(rig.db.get(), cfg);
  Status s = rig.workload->Load();
  if (!s.ok()) {
    std::fprintf(stderr, "TPC-B load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  rig.engine =
      std::make_unique<dora::DoraEngine>(rig.db.get(), engine_opts);
  rig.workload->SetupDora(rig.engine.get());
  rig.engine->Start();
  MaybeStartRebalancer(&rig);
  return rig;
}

inline Rig<tpcb::TpcbWorkload> MakeTpcb() {
  return MakeTpcbWith(DbOptions(), EngineOptionsFromEnv(),
                      /*account_executors=*/2, /*other_executors=*/1);
}

inline Rig<tpcc::TpccWorkload> MakeTpcc(uint32_t warehouses = 0,
                                        uint32_t executors_per_table = 0,
                                        bool trace = false) {
  Rig<tpcc::TpccWorkload> rig;
  rig.db = std::make_unique<Database>(DbOptions());
  tpcc::TpccWorkload::Config cfg;
  cfg.warehouses = warehouses != 0
                       ? warehouses
                       : static_cast<uint32_t>(EnvU64("DORADB_TPCC_WH", 4));
  cfg.customers_per_district = 300;
  cfg.items = 1000;
  cfg.executors_per_table =
      executors_per_table != 0 ? executors_per_table : ExecutorsFromEnv();
  cfg.trace_district_accesses = trace;
  rig.workload = std::make_unique<tpcc::TpccWorkload>(rig.db.get(), cfg);
  Status s = rig.workload->Load();
  if (!s.ok()) {
    std::fprintf(stderr, "TPC-C load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  rig.engine = std::make_unique<dora::DoraEngine>(rig.db.get(),
                                                  EngineOptionsFromEnv());
  rig.workload->SetupDora(rig.engine.get());
  rig.engine->Start();
  MaybeStartRebalancer(&rig);
  return rig;
}

inline BenchConfig MakeConfig(EngineKind kind, dora::DoraEngine* engine,
                              uint32_t clients, int txn_type = -1) {
  BenchConfig cfg;
  cfg.engine = kind;
  cfg.dora_engine = engine;
  cfg.num_clients = clients;
  cfg.duration_ms = BenchMs();
  cfg.warmup_ms = BenchMs() / 4;
  cfg.txn_type = txn_type;
  cfg.baseline_workers =
      static_cast<uint32_t>(EnvU64("DORADB_BASE_WORKERS", 0));
  return cfg;
}

// One-line summary of the engine's inbox/arena counters over a measured
// window (pass the delta of two CollectInboxStats snapshots).
inline void PrintInboxStats(const dora::DoraEngine::InboxStats& d) {
  std::printf(
      "    dora inbox: batches=%llu actions_per_drain=%.2f "
      "wakeups_per_action=%.3f tickets=%llu arena_recycles=%llu\n",
      static_cast<unsigned long long>(d.batches), d.actions_per_drain(),
      d.wakeups_per_action(), static_cast<unsigned long long>(d.tickets),
      static_cast<unsigned long long>(d.arena_recycles));
}

// --- machine-readable results ---------------------------------------------
// Every bench binary ends with exactly one line of the form
//   BENCH_JSON {"bench":"<name>","hw_contexts":N,"window_ms":N,"rows":[...]}
// so sweeps can be scraped without parsing the human tables. Row fields are
// per-bench; rows built from a BenchResult share the standard set below.

inline std::string JsonNum(double v) {
  if (!(v == v) || v > 1e300 || v < -1e300) return "0";  // NaN/inf guard
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

class JsonRow {
 public:
  JsonRow& Str(const char* key, const std::string& v) {
    Key(key);
    body_ += '"';
    for (char c : v) {
      if (c == '"' || c == '\\') body_ += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // keep it simple
      body_ += c;
    }
    body_ += '"';
    return *this;
  }
  JsonRow& Num(const char* key, double v) {
    Key(key);
    body_ += JsonNum(v);
    return *this;
  }
  JsonRow& Int(const char* key, uint64_t v) {
    Key(key);
    body_ += std::to_string(v);
    return *this;
  }
  std::string Done() const { return "{" + body_ + "}"; }

 private:
  void Key(const char* key) {
    if (!body_.empty()) body_ += ',';
    body_ += '"';
    body_ += key;
    body_ += "\":";
  }
  std::string body_;
};

inline const char* EngineName(EngineKind kind) {
  return kind == EngineKind::kBaseline ? "base" : "dora";
}

inline JsonRow ResultRow(const char* workload, const char* engine,
                         uint32_t clients, const BenchResult& r) {
  JsonRow row;
  row.Str("workload", workload)
      .Str("engine", engine)
      .Int("clients", clients)
      .Num("load_pct", r.offered_load_pct)
      .Num("tps", r.throughput_tps)
      .Int("committed", r.committed)
      .Int("user_aborts", r.user_aborts)
      .Int("system_aborts", r.system_aborts)
      .Int("latency_p50_ns", r.latency->Percentile(50))
      .Int("latency_p99_ns", r.latency->Percentile(99));
  return row;
}

// Per-executor skew probe: snapshot every executor's busy cycles and
// queue-wait buckets at window start, fold min/max busy fraction and the
// worst per-executor windowed queue-wait p50/p99 into a BENCH_JSON row at
// window end. A balanced run shows busy_min ≈ busy_max; a hot logical
// partition shows up as one executor pinned at ~1.0 while others idle.
class SkewProbe {
 public:
  explicit SkewProbe(dora::DoraEngine* engine) : engine_(engine) {
    start_tsc_ = Cycles::Now();
    for (dora::Executor* e : engine_->AllExecutors()) {
      Base b;
      b.busy_cycles = e->busy_cycles();
      const Histogram* h = e->queue_wait_hist();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        b.qwait_buckets[i] = h->BucketCount(i);
      }
      base_[e->global_index()] = b;
    }
  }

  // Adds exec_busy_min/exec_busy_max and the worst executor's windowed
  // queue-wait p50/p99 (exec_qwait_p50_max_ns/exec_qwait_p99_max_ns).
  void Fold(JsonRow* row) const {
    const uint64_t now = Cycles::Now();
    const double span = static_cast<double>(now - start_tsc_);
    double busy_min = 1.0, busy_max = 0.0;
    uint64_t p50_max = 0, p99_max = 0;
    bool any = false;
    for (dora::Executor* e : engine_->AllExecutors()) {
      auto it = base_.find(e->global_index());
      if (it == base_.end() || span <= 0) continue;
      any = true;
      const double busy =
          static_cast<double>(e->busy_cycles() - it->second.busy_cycles) /
          span;
      busy_min = std::min(busy_min, busy);
      busy_max = std::max(busy_max, busy > 1.0 ? 1.0 : busy);
      std::array<uint64_t, Histogram::kNumBuckets> delta{};
      uint64_t total = 0;
      const Histogram* h = e->queue_wait_hist();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        delta[i] = h->BucketCount(i) - it->second.qwait_buckets[i];
        total += delta[i];
      }
      p50_max = std::max(
          p50_max, obs::LoadHeatmap::DeltaPercentile(delta, total, 50.0));
      p99_max = std::max(
          p99_max, obs::LoadHeatmap::DeltaPercentile(delta, total, 99.0));
    }
    if (!any) return;
    row->Num("exec_busy_min", busy_min > busy_max ? 0.0 : busy_min)
        .Num("exec_busy_max", busy_max)
        .Int("exec_qwait_p50_max_ns", p50_max)
        .Int("exec_qwait_p99_max_ns", p99_max);
  }

 private:
  struct Base {
    uint64_t busy_cycles = 0;
    std::array<uint64_t, Histogram::kNumBuckets> qwait_buckets{};
  };
  dora::DoraEngine* const engine_;
  uint64_t start_tsc_ = 0;
  std::map<uint32_t, Base> base_;
};

// Windowed live-repartitioning probe: deltas of the process-wide rebalance
// counters, so a bench row records how many migrations the controller
// committed during its window (0 when DORADB_REBALANCE is off).
class RebalanceProbe {
 public:
  RebalanceProbe() {
    auto& reg = obs::MetricsRegistry::Default();
    splits0_ = reg.GetCounter("dora.rebalance.splits")->Value();
    moved0_ = reg.GetCounter("dora.rebalance.moved_ranges")->Value();
  }

  uint64_t Splits() const {
    return obs::MetricsRegistry::Default()
               .GetCounter("dora.rebalance.splits")
               ->Value() -
           splits0_;
  }
  uint64_t MovedRanges() const {
    return obs::MetricsRegistry::Default()
               .GetCounter("dora.rebalance.moved_ranges")
               ->Value() -
           moved0_;
  }

  // Adds the skew/rebalance columns every DORA row carries when the knobs
  // are in play: the offered skew, whether the controller was armed, and
  // the migrations it landed during the window.
  void Fold(JsonRow* row) const {
    row->Num("skew_theta", SkewTheta())
        .Int("rebalance", RebalanceFromEnv() ? 1 : 0)
        .Int("rebalance_splits", Splits())
        .Int("rebalance_moved_ranges", MovedRanges());
  }

 private:
  uint64_t splits0_ = 0;
  uint64_t moved0_ = 0;
};

// Windowed epoch-batching probe: snapshots every executor's group-size
// histogram (dora.exec.<g>.batch.group_size) at construction and folds the
// bucket deltas of all executors into one merged distribution, so
// GroupP50() reports the median key-sorted group size formed during the
// window (0 when batching was off or never tripped the threshold).
class BatchProbe {
 public:
  explicit BatchProbe(dora::DoraEngine* engine) : engine_(engine) {
    for (dora::Executor* e : engine_->AllExecutors()) {
      std::array<uint64_t, Histogram::kNumBuckets> b{};
      const Histogram* h = e->batch_group_hist();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        b[i] = h->BucketCount(i);
      }
      base_[e->global_index()] = b;
    }
  }

  uint64_t GroupP50() const {
    std::array<uint64_t, Histogram::kNumBuckets> delta{};
    uint64_t total = 0;
    for (dora::Executor* e : engine_->AllExecutors()) {
      auto it = base_.find(e->global_index());
      if (it == base_.end()) continue;
      const Histogram* h = e->batch_group_hist();
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        const uint64_t d = h->BucketCount(i) - it->second[i];
        delta[i] += d;
        total += d;
      }
    }
    if (total == 0) return 0;
    return obs::LoadHeatmap::DeltaPercentile(delta, total, 50.0);
  }

 private:
  dora::DoraEngine* const engine_;
  std::map<uint32_t, std::array<uint64_t, Histogram::kNumBuckets>> base_;
};

class BenchJson {
 public:
  static BenchJson& Default() {
    static BenchJson b;
    return b;
  }
  void Add(const JsonRow& row) { rows_.push_back(row.Done()); }
  // Print the single BENCH_JSON line (call once, last thing in main).
  void Emit(const char* bench) {
    std::string out = "{\"bench\":\"";
    out += bench;
    out += "\",\"hw_contexts\":" + std::to_string(HardwareContexts());
    out += ",\"window_ms\":" + std::to_string(BenchMs());
    out += ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) out += ',';
      out += rows_[i];
    }
    out += "]}";
    std::printf("BENCH_JSON %s\n", out.c_str());
    std::fflush(stdout);
    rows_.clear();
  }

 private:
  std::vector<std::string> rows_;
};

inline void PrintHeader(const char* fig, const char* desc) {
  std::printf("=============================================================\n");
  std::printf("%s — %s\n", fig, desc);
  std::printf("hardware contexts: %u | window: %lu ms\n", HardwareContexts(),
              static_cast<unsigned long>(BenchMs()));
  std::printf("=============================================================\n");
}

}  // namespace bench
}  // namespace doradb

#endif  // DORADB_BENCH_BENCH_COMMON_H_
