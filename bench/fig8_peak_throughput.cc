// Figure 8: maximum throughput under perfect admission control — for each
// system and workload, sweep the offered load and report the peak (and the
// load at which it was achieved).
//
// Paper shape: DORA peaks higher on every workload (up to +82%), and
// reaches its peak closer to full utilization. TPC-C/TPC-B gains are
// smaller (less lock contention to remove; the log manager becomes the
// bottleneck, §5.4).

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

struct Peak {
  double tps = 0;
  double at_load = 0;
};

// Epoch-batch threshold the batch-on DORA ladder runs at: the env value
// when set, else a small default so the A/B stays meaningful with the env
// knob unset.
uint32_t BatchOnThreshold() {
  const uint64_t env = EnvU64("DORADB_EPOCH_BATCH", 0);
  return env != 0 ? static_cast<uint32_t>(env) : 4;
}

template <typename W>
void FindPeaks(const char* label, W* workload, dora::DoraEngine* engine,
               int txn_type) {
  // Three ladders on the same rig: Baseline, DORA with epoch batching off,
  // DORA with epoch batching on — an interleaved A/B, so the batch-on and
  // batch-off peaks see identical buffer-pool and allocator state.
  Peak peaks[3];
  double wakeups_per_action[3] = {0, 0, 0};
  int i = 0;
  const auto s0 = engine->CollectInboxStats();
  RebalanceProbe rebalance;
  // Skew over the DORA ladders only: constructed lazily at the first DORA
  // point so the baseline sweep's idle executors don't dilute the window.
  std::unique_ptr<SkewProbe> skew;
  // Group-size distribution over the batch-on ladder only.
  std::unique_ptr<BatchProbe> batch;
  struct Rung {
    EngineKind kind;
    uint32_t epoch_batch_min;
  };
  const Rung rungs[3] = {{EngineKind::kBaseline, 0},
                         {EngineKind::kDora, 0},
                         {EngineKind::kDora, BatchOnThreshold()}};
  for (const Rung& rung : rungs) {
    if (rung.kind == EngineKind::kDora) {
      engine->set_epoch_batch_min(rung.epoch_batch_min);
      if (skew == nullptr) skew = std::make_unique<SkewProbe>(engine);
      if (rung.epoch_batch_min != 0) {
        batch = std::make_unique<BatchProbe>(engine);
      }
    }
    const auto ladder0 = engine->CollectInboxStats();
    for (uint32_t clients : ClientLadder()) {
      ThreadStats::ResetAll();
      const BenchResult r =
          RunBench(workload, MakeConfig(rung.kind, engine, clients, txn_type));
      if (r.throughput_tps > peaks[i].tps) {
        peaks[i].tps = r.throughput_tps;
        peaks[i].at_load = r.offered_load_pct;
      }
    }
    wakeups_per_action[i] =
        (engine->CollectInboxStats() - ladder0).wakeups_per_action();
    ++i;
  }
  std::printf("%-28s %10.0f @%4.0f%% %10.0f @%4.0f%% %8.2fx batched %.0f\n",
              label, peaks[0].tps, peaks[0].at_load, peaks[1].tps,
              peaks[1].at_load,
              peaks[0].tps > 0 ? peaks[1].tps / peaks[0].tps : 0.0,
              peaks[2].tps);
  PrintInboxStats(engine->CollectInboxStats() - s0);
  JsonRow row;
  row.Str("workload", label)
      .Num("base_peak_tps", peaks[0].tps)
      .Num("base_peak_load_pct", peaks[0].at_load)
      .Num("dora_peak_tps", peaks[1].tps)
      .Num("dora_peak_load_pct", peaks[1].at_load)
      .Num("speedup", peaks[0].tps > 0 ? peaks[1].tps / peaks[0].tps : 0)
      .Num("dora_batch_peak_tps", peaks[2].tps)
      .Num("dora_batch_peak_load_pct", peaks[2].at_load)
      .Num("batch_speedup",
           peaks[1].tps > 0 ? peaks[2].tps / peaks[1].tps : 0)
      .Num("nobatch_wakeups_per_action", wakeups_per_action[1])
      .Num("batch_wakeups_per_action", wakeups_per_action[2])
      .Int("batch_group_p50", batch != nullptr ? batch->GroupP50() : 0);
  if (skew != nullptr) skew->Fold(&row);
  rebalance.Fold(&row);
  BenchJson::Default().Add(row);
}

}  // namespace

int main() {
  PrintHeader("Figure 8", "peak throughput under perfect admission control");
  std::printf("\n%-28s %17s %17s %9s %9s\n", "workload", "BASE peak",
              "DORA peak", "DORA/BASE", "BATCHED");
  {
    auto tm1 = MakeTm1();
    FindPeaks("TM1 (mix)", tm1.workload.get(), tm1.engine.get(), -1);
  }
  {
    auto tpcb = MakeTpcb();
    FindPeaks("TPC-B", tpcb.workload.get(), tpcb.engine.get(), -1);
  }
  {
    auto tpcc = MakeTpcc();
    FindPeaks("TPC-C NewOrder", tpcc.workload.get(), tpcc.engine.get(),
              tpcc::kNewOrder);
    FindPeaks("TPC-C Payment", tpcc.workload.get(), tpcc.engine.get(),
              tpcc::kPayment);
    FindPeaks("TPC-C OrderStatus", tpcc.workload.get(), tpcc.engine.get(),
              tpcc::kOrderStatus);
  }
  std::printf(
      "\nexpected shape (paper, 64 contexts): DORA/BASE > 1 everywhere,\n"
      "largest on TM1. On few-core hosts the Baseline may out-peak DORA at\n"
      "low load (no contention to remove); the paper-consistent signal is\n"
      "that DORA peaks at/beyond 100%% offered load while the Baseline must\n"
      "be throttled to its uncontended region (see EXPERIMENTS.md).\n");
  BenchJson::Default().Emit("fig8_peak_throughput");
  return 0;
}
