// Restart time vs. log size (the src/ckpt/ + segment-file acceptance
// experiment): TPC-B — the write-heaviest workload — run against the DORA
// engine with the partitioned WAL and pipelined commit, then crashed and
// recovered, under three checkpoint configurations:
//
//   off              no checkpoints: the stable log holds all of history
//                    and restart replays every record ever written;
//   global           the classic stall-the-world shape: one daemon visit
//                    flushes the whole pool and truncates every stream;
//   partition-local  the src/ckpt/ design: fuzzy per-partition visits
//                    (growth-weighted cadence), each flushing only that
//                    partition's dirty pages and advancing only its
//                    truncation point.
//
// Media: in-memory by default; with DORADB_DATA_DIR set, the WAL lives in
// segment files and pages in pages.db, checkpoint truncation UNLINKS
// whole segments, and the restart is real: the crashed Database object is
// destroyed and a second lifetime reopens the data directory, paying
// genuine file I/O to rebuild the streams and recover — then proves the
// recovered state consistent (TPC-B balance invariant).
//
// Reported per mode: committed tps while the daemon runs (checkpoints must
// not stall execution), on-disk log bytes + segment files at the crash,
// bytes reclaimed by truncation, records replayed by recovery, recovery
// wall time, and (file-backed) the per-stream durability counters:
// fsyncs, bytes flushed, segments sealed/unlinked.

#include <chrono>

#include "bench_common.h"
#include "log/recovery.h"
#include "util/sync_stats.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

struct Row {
  const char* name;
  double tps = 0;
  uint64_t checkpoints = 0;
  size_t log_bytes = 0;
  size_t seg_files = 0;
  uint64_t reclaimed = 0;
  uint64_t seg_unlinked = 0;
  size_t replayed = 0;
  size_t horizon_skips = 0;
  double recover_ms = 0;
};

uint64_t TotalUnlinked() {
  uint64_t n = 0;
  for (const auto& row : DurabilityStats::Snapshot()) {
    if (row.stream == kPageStoreStream) continue;
    n += row.counts[static_cast<size_t>(
        DurabilityCounter::kSegmentsUnlinked)];
  }
  return n;
}

Row RunMode(const char* name, bool enabled, bool partition_local) {
  constexpr uint32_t kAccountExecutors = 4;
  const uint32_t total_executors = kAccountExecutors + 3;

  DurabilityStats::Reset();
  Database::Options db_opts = DbOptions();
  db_opts.log_backend = LogBackendKind::kPartitioned;
  db_opts.log_partitions = total_executors;
  db_opts.checkpoint.enabled = enabled;
  db_opts.checkpoint.partition_local = partition_local;
  db_opts.checkpoint.truncate = true;
  db_opts.checkpoint.interval_us = 2000;
  const bool file_backed = !db_opts.data_dir.empty();

  dora::DoraEngine::Options engine_opts;
  engine_opts.pipelined_commit = true;
  auto rig = MakeTpcbWith(db_opts, engine_opts, kAccountExecutors,
                          /*other_executors=*/1);
  const BenchResult r =
      RunBench(rig.workload.get(),
               MakeConfig(EngineKind::kDora, rig.engine.get(),
                          /*clients=*/2 * total_executors));
  rig.engine->Stop();

  Row row;
  row.name = name;
  row.tps = r.throughput_tps;
  row.checkpoints = rig.db->checkpointer()->stats().checkpoints;
  row.log_bytes = rig.db->log_manager()->stable_size() +
                  0;  // volatile tail dies at the crash below
  row.seg_files = rig.db->log_manager()->segment_files();
  row.reclaimed = rig.db->log_manager()->reclaimed_bytes();
  row.seg_unlinked = TotalUnlinked();

  if (file_backed) {
    // The real restart: kill the process image — buffers dropped with NO
    // stable truncation, exactly as a dead process leaves its files —
    // and reopen the data directory in a second lifetime. The timed
    // region covers the cold start — segment scan, claim merge, stream
    // truncation, clock resume, catalog.db replay (constructor) — plus
    // ARIES recovery and the spec-driven index rebuild, from files alone:
    // no schema re-creation, Attach() only binds ids from the recovered
    // catalog by name.
    rig.db->SimulateKill();
    rig.engine.reset();
    rig.workload.reset();
    const tpcb::TpcbWorkload::Config cfg{};  // ids bound at Attach
    rig.db.reset();

    const auto t0 = std::chrono::steady_clock::now();
    Database db2(db_opts);
    tpcb::TpcbWorkload reopened(&db2, cfg);
    if (!reopened.Attach().ok()) {
      std::fprintf(stderr, "schema attach failed\n");
      std::abort();
    }
    RecoveryDriver driver(&db2);
    const Status s = driver.Run(nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    if (!s.ok()) {
      std::fprintf(stderr, "cold-start recovery failed: %s\n",
                   s.ToString().c_str());
      std::abort();
    }
    const Status c = reopened.CheckConsistency();
    if (!c.ok()) {
      std::fprintf(stderr, "recovered state inconsistent: %s\n",
                   c.ToString().c_str());
      std::abort();
    }
    row.replayed = driver.stats().records_scanned;
    row.horizon_skips = driver.stats().redo_skipped_horizon;
    row.recover_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    return row;
  }

  rig.db->SimulateCrash();
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryDriver driver(rig.db.get());
  const Status s = driver.Run(nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  row.replayed = driver.stats().records_scanned;
  row.horizon_skips = driver.stats().redo_skipped_horizon;
  row.recover_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return row;
}

}  // namespace

int main() {
  const bool file_backed = std::getenv("DORADB_DATA_DIR") != nullptr &&
                           std::getenv("DORADB_DATA_DIR")[0] != '\0';
  PrintHeader("Restart time",
              file_backed
                  ? "TPC-B + plog on segment files: real cold restart"
                  : "TPC-B + plog: recovery cost vs checkpoint mode");
  std::printf("%-16s %9s %7s %11s %9s %11s %9s %9s %10s %11s\n",
              "checkpoints", "tps", "ckpts", "log_bytes", "seg_files",
              "reclaimed", "unlinked", "replayed", "hzn_skips",
              "recover_ms");
  struct ModeSpec {
    const char* name;
    bool enabled;
    bool partition_local;
  };
  const ModeSpec specs[] = {
      {"off", false, false},
      {"global", true, false},
      {"partition-local", true, true},
  };
  for (const ModeSpec& spec : specs) {
    const Row row = RunMode(spec.name, spec.enabled, spec.partition_local);
    std::printf(
        "%-16s %9.0f %7llu %11zu %9zu %11llu %9llu %9zu %10zu %11.2f\n",
        row.name, row.tps, static_cast<unsigned long long>(row.checkpoints),
        row.log_bytes, row.seg_files,
        static_cast<unsigned long long>(row.reclaimed),
        static_cast<unsigned long long>(row.seg_unlinked), row.replayed,
        row.horizon_skips, row.recover_ms);
    if (file_backed) {
      std::printf("  durability counters (per stream):\n%s",
                  DurabilityStats::ToString().c_str());
    }
    BenchJson::Default().Add(JsonRow()
                                 .Str("mode", row.name)
                                 .Num("tps", row.tps)
                                 .Int("checkpoints", row.checkpoints)
                                 .Int("log_bytes", row.log_bytes)
                                 .Int("seg_files", row.seg_files)
                                 .Int("reclaimed_bytes", row.reclaimed)
                                 .Int("segments_unlinked", row.seg_unlinked)
                                 .Int("records_replayed", row.replayed)
                                 .Int("horizon_skips", row.horizon_skips)
                                 .Num("recover_ms", row.recover_ms));
  }
  std::printf(
      "\nexpected shape: without checkpoints the log and the replay grow\n"
      "with the run; either checkpoint mode bounds them to the suffix\n"
      "since the last round, and partition-local visits do it without a\n"
      "whole-pool flush stall (tps should match or beat global). With\n"
      "DORADB_DATA_DIR set, truncation deletes segment files (unlinked>0,\n"
      "seg_files stays small) and recover_ms is a real second-lifetime\n"
      "reopen from disk.\n");
  BenchJson::Default().Emit("fig_restart_time");
  return 0;
}
