// Restart time vs. log size (the src/ckpt/ acceptance experiment):
// TPC-B — the write-heaviest workload — run against the DORA engine with
// the partitioned WAL and pipelined commit, then crashed and recovered,
// under three checkpoint configurations:
//
//   off              no checkpoints: the stable log holds all of history
//                    and restart replays every record ever written;
//   global           the classic stall-the-world shape: one daemon visit
//                    flushes the whole pool and truncates every stream;
//   partition-local  the src/ckpt/ design: fuzzy per-partition visits,
//                    each flushing only that partition's dirty pages and
//                    advancing only its truncation point.
//
// Reported per mode: committed tps while the daemon runs (checkpoints must
// not stall execution), on-disk log bytes at the crash, bytes reclaimed by
// truncation, records replayed by recovery, and recovery wall time. The
// expected shape: with checkpointing on, log size and restart time stay
// bounded — O(dirty data since the last checkpoint round) — while "off"
// grows with the run length (raise DORADB_BENCH_MS to make the gap as
// dramatic as you like).

#include <chrono>

#include "bench_common.h"
#include "log/recovery.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

struct Row {
  const char* name;
  double tps = 0;
  uint64_t checkpoints = 0;
  size_t log_bytes = 0;
  uint64_t reclaimed = 0;
  size_t replayed = 0;
  size_t horizon_skips = 0;
  double recover_ms = 0;
};

Row RunMode(const char* name, bool enabled, bool partition_local) {
  constexpr uint32_t kAccountExecutors = 4;
  const uint32_t total_executors = kAccountExecutors + 3;

  Database::Options db_opts = DbOptions();
  db_opts.log_backend = LogBackendKind::kPartitioned;
  db_opts.log_partitions = total_executors;
  db_opts.checkpoint.enabled = enabled;
  db_opts.checkpoint.partition_local = partition_local;
  db_opts.checkpoint.truncate = true;
  db_opts.checkpoint.interval_us = 2000;

  dora::DoraEngine::Options engine_opts;
  engine_opts.pipelined_commit = true;

  auto rig = MakeTpcbWith(db_opts, engine_opts, kAccountExecutors,
                          /*other_executors=*/1);
  const BenchResult r =
      RunBench(rig.workload.get(),
               MakeConfig(EngineKind::kDora, rig.engine.get(),
                          /*clients=*/2 * total_executors));
  rig.engine->Stop();

  Row row;
  row.name = name;
  row.tps = r.throughput_tps;
  row.checkpoints = rig.db->checkpointer()->stats().checkpoints;
  row.log_bytes = rig.db->log_manager()->stable_size() +
                  0;  // volatile tail dies at the crash below
  row.reclaimed = rig.db->log_manager()->reclaimed_bytes();

  rig.db->SimulateCrash();
  const auto t0 = std::chrono::steady_clock::now();
  RecoveryDriver driver(rig.db.get());
  const Status s = driver.Run(nullptr);
  const auto t1 = std::chrono::steady_clock::now();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  row.replayed = driver.stats().records_scanned;
  row.horizon_skips = driver.stats().redo_skipped_horizon;
  row.recover_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return row;
}

}  // namespace

int main() {
  PrintHeader("Restart time",
              "TPC-B + plog: recovery cost vs checkpoint mode");
  std::printf("%-16s %10s %8s %12s %12s %10s %12s %12s\n", "checkpoints",
              "tps", "ckpts", "log_bytes", "reclaimed", "replayed",
              "hzn_skips", "recover_ms");
  const Row rows[] = {
      RunMode("off", false, false),
      RunMode("global", true, false),
      RunMode("partition-local", true, true),
  };
  for (const Row& row : rows) {
    std::printf("%-16s %10.0f %8llu %12zu %12llu %10zu %12zu %12.2f\n",
                row.name, row.tps,
                static_cast<unsigned long long>(row.checkpoints),
                row.log_bytes,
                static_cast<unsigned long long>(row.reclaimed),
                row.replayed, row.horizon_skips, row.recover_ms);
  }
  std::printf(
      "\nexpected shape: without checkpoints the log and the replay grow\n"
      "with the run; either checkpoint mode bounds them to the suffix\n"
      "since the last round, and partition-local visits do it without a\n"
      "whole-pool flush stall (tps should match or beat global).\n");
  return 0;
}
