// Observability overhead: the src/obs/ acceptance experiment. TM1 (mix)
// against the DORA engine at fig6-style overload (4x the hardware
// contexts), A/B-ing the metrics hot path ON (the shipping default:
// counters, gauges, histograms, commit-latency stamps) against OFF
// (obs::SetMetricsEnabled(false), which reduces every instrumentation
// site to one relaxed load).
//
// Methodology: trials are interleaved (on/off within each trial, and the
// order alternates per trial) so clock drift, thermal state, and rig aging
// cancel; the reported figure is the delta of the per-arm MEDIANS. The
// acceptance bar is overhead <= 2% of median tps. Noise on small hosts
// routinely exceeds 2%, so by default the bar only prints; set
// DORADB_OBS_STRICT=1 to turn it into the exit code.
//
// Knobs: DORADB_OBS_TRIALS (default 5), DORADB_OBS_LOAD_MULT (default 4),
// DORADB_OBS_STRICT (default 0). The commit tracer stays off in both arms
// unless DORADB_TRACE_RING forces it, matching the shipping default.

#include <algorithm>

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
}

}  // namespace

int main() {
  PrintHeader("Obs overhead", "TM1 mix, DORA: metrics ON vs OFF (A/B)");
  auto rig = MakeTm1();
  const uint32_t clients =
      HardwareContexts() *
      static_cast<uint32_t>(EnvU64("DORADB_OBS_LOAD_MULT", 4));
  const int trials = static_cast<int>(EnvU64("DORADB_OBS_TRIALS", 5));

  // One discarded warmup run with metrics on: page pool, inbox arenas, and
  // the registry's metric map all reach steady state before either arm is
  // timed.
  ThreadStats::ResetAll();
  (void)RunBench(rig.workload.get(),
                 MakeConfig(EngineKind::kDora, rig.engine.get(), clients));

  std::vector<double> on_tps, off_tps;
  std::printf("\n%-8s %14s %14s\n", "trial", "ON tps", "OFF tps");
  for (int t = 0; t < trials; ++t) {
    double tps[2] = {0, 0};  // [0]=on, [1]=off
    for (int leg = 0; leg < 2; ++leg) {
      // Alternate which arm runs first so rig aging biases neither.
      const bool on = (leg == 0) == (t % 2 == 0);
      obs::SetMetricsEnabled(on);
      ThreadStats::ResetAll();
      const BenchResult r =
          RunBench(rig.workload.get(),
                   MakeConfig(EngineKind::kDora, rig.engine.get(), clients));
      tps[on ? 0 : 1] = r.throughput_tps;
    }
    on_tps.push_back(tps[0]);
    off_tps.push_back(tps[1]);
    std::printf("%-8d %14.0f %14.0f\n", t, tps[0], tps[1]);
  }
  obs::SetMetricsEnabled(true);

  const double med_on = Median(on_tps);
  const double med_off = Median(off_tps);
  const double overhead_pct =
      med_off > 0 ? (med_off - med_on) / med_off * 100.0 : 0.0;
  const bool pass = overhead_pct <= 2.0;
  const bool strict = EnvU64("DORADB_OBS_STRICT", 0) != 0;

  std::printf("\nmedian ON  tps: %12.0f\n", med_on);
  std::printf("median OFF tps: %12.0f\n", med_off);
  std::printf("observability overhead: %+.2f%% of median tps (bar: <= 2%%) %s\n",
              overhead_pct, pass ? "PASS" : (strict ? "FAIL" : "over bar"));
  if (!pass && !strict) {
    std::printf("(informational: set DORADB_OBS_STRICT=1 to fail the run;\n"
                " raise DORADB_BENCH_MS / DORADB_OBS_TRIALS to cut noise)\n");
  }

  BenchJson::Default().Add(JsonRow()
                               .Int("clients", clients)
                               .Int("trials", trials)
                               .Num("median_on_tps", med_on)
                               .Num("median_off_tps", med_off)
                               .Num("overhead_pct", overhead_pct)
                               .Num("bar_pct", 2.0)
                               .Int("pass", pass ? 1 : 0));
  BenchJson::Default().Emit("fig_obs_overhead");
  return strict && !pass ? 1 : 0;
}
