// Figure 10: record-access traces on TPC-C Payment (District table).
// (a) thread-to-transaction: every worker touches every district —
//     uncoordinated accesses; (b) thread-to-data: each district is touched
//     by exactly one executor — coordinated, regular accesses.
//
// Emits CSV traces (thread, district, t_us) for plotting and prints a
// summary statistic: the average number of distinct threads that touched
// each district (paper expectation: ~#workers for Baseline, ~1 for DORA).

#include <fstream>
#include <map>
#include <set>

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

double RunTraced(const char* csv_path, tpcc::TpccWorkload* workload,
                 dora::DoraEngine* engine, EngineKind kind,
                 uint32_t clients) {
  AccessTrace::Enable();
  ThreadStats::ResetAll();
  (void)RunBench(workload,
                 MakeConfig(kind, engine, clients, tpcc::kPayment));
  AccessTrace::Disable();
  const auto events = AccessTrace::Drain();

  std::ofstream csv(csv_path);
  csv << "thread,district,t_us\n";
  std::map<uint64_t, std::set<uint32_t>> threads_per_district;
  for (const auto& e : events) {
    csv << e.thread << "," << e.key << "," << e.t_ns / 1000 << "\n";
    threads_per_district[e.key].insert(e.thread);
  }
  double total = 0;
  for (const auto& [d, ts] : threads_per_district) {
    total += static_cast<double>(ts.size());
  }
  const double avg = threads_per_district.empty()
                         ? 0
                         : total / static_cast<double>(
                                       threads_per_district.size());
  std::printf("%-8s events=%-8zu districts=%-4zu avg_threads_per_district=%.2f -> %s\n",
              kind == EngineKind::kBaseline ? "BASE" : "DORA", events.size(),
              threads_per_district.size(), avg, csv_path);
  BenchJson::Default().Add(
      JsonRow()
          .Str("engine", EngineName(kind))
          .Int("events", events.size())
          .Int("districts", threads_per_district.size())
          .Num("avg_threads_per_district", avg)
          .Str("csv", csv_path));
  return avg;
}

}  // namespace

int main() {
  PrintHeader("Figure 10", "TPC-C Payment District access traces");
  // Paper setup: 10 warehouses, 10 workers / 10 district executors.
  auto rig = MakeTpcc(/*warehouses=*/10, /*executors_per_table=*/10,
                      /*trace=*/true);
  const uint32_t workers = 10;

  const double base = RunTraced("fig10_baseline.csv", rig.workload.get(),
                                rig.engine.get(), EngineKind::kBaseline,
                                workers);
  const double dora = RunTraced("fig10_dora.csv", rig.workload.get(),
                                rig.engine.get(), EngineKind::kDora,
                                workers);
  std::printf(
      "\nexpected shape: Baseline ~= every worker touches every district\n"
      "(avg approaches %u); DORA coordinates accesses so each district is\n"
      "owned by ~1 thread. measured: BASE=%.2f DORA=%.2f\n",
      workers, base, dora);
  BenchJson::Default().Emit("fig10_access_trace");
  return 0;
}
