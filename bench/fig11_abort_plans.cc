// Figure 11: TM1 UpdateSubscriberData — a transaction with a ~37.5% abort
// rate and intra-transaction parallelism. Compares Baseline, DORA-P
// (parallel plan) and DORA-S (serial plan: SpecialFacility first, then
// Subscriber only if it succeeded).
//
// Paper shape: DORA-P wastes work on actions of already-doomed transactions
// and lands below Baseline; DORA-S scales as expected. Also exercises the
// resource manager's automatic plan switch (§A.4).

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

int main() {
  PrintHeader("Figure 11",
              "TM1 UpdateSubscriberData: Baseline vs DORA-P vs DORA-S");
  auto rig = MakeTm1();

  std::printf("\n%-10s %14s %14s %14s\n", "load%", "BASE tps", "DORA-P tps",
              "DORA-S tps");
  for (uint32_t clients : ClientLadder()) {
    double base = 0, dora_p = 0, dora_s = 0, load = 0;
    {
      ThreadStats::ResetAll();
      const BenchResult r = RunBench(
          rig.workload.get(),
          MakeConfig(EngineKind::kBaseline, rig.engine.get(), clients,
                     tm1::kUpdateSubscriberData));
      base = r.throughput_tps;
      load = r.offered_load_pct;
    }
    rig.workload->SetPlanMode(tm1::PlanMode::kParallel);
    {
      ThreadStats::ResetAll();
      const BenchResult r = RunBench(
          rig.workload.get(),
          MakeConfig(EngineKind::kDora, rig.engine.get(), clients,
                     tm1::kUpdateSubscriberData));
      dora_p = r.throughput_tps;
    }
    rig.workload->SetPlanMode(tm1::PlanMode::kSerial);
    {
      ThreadStats::ResetAll();
      const BenchResult r = RunBench(
          rig.workload.get(),
          MakeConfig(EngineKind::kDora, rig.engine.get(), clients,
                     tm1::kUpdateSubscriberData));
      dora_s = r.throughput_tps;
    }
    std::printf("%-10.0f %14.0f %14.0f %14.0f\n", load, base, dora_p, dora_s);
    BenchJson::Default().Add(JsonRow()
                                 .Int("clients", clients)
                                 .Num("load_pct", load)
                                 .Num("base_tps", base)
                                 .Num("dora_parallel_tps", dora_p)
                                 .Num("dora_serial_tps", dora_s));
  }

  // §A.4: the resource manager detects the high abort rate and switches to
  // the serial plan automatically.
  rig.workload->SetPlanMode(tm1::PlanMode::kAuto);
  ThreadStats::ResetAll();
  const BenchResult r = RunBench(
      rig.workload.get(),
      MakeConfig(EngineKind::kDora, rig.engine.get(), HardwareContexts(),
                 tm1::kUpdateSubscriberData));
  std::printf(
      "\nDORA-AUTO (resource manager plan selection): tps=%.0f "
      "abort_rate=%.2f -> serial=%s\n",
      r.throughput_tps,
      rig.workload->plan_advisor().AbortRate(tm1::kUpdateSubscriberData),
      rig.workload->plan_advisor().RecommendSerial(
          tm1::kUpdateSubscriberData)
          ? "yes"
          : "no");
  std::printf(
      "\nexpected shape: DORA-S >= DORA-P (no wasted sibling work on the\n"
      "37.5%% of transactions that abort); the advisor picks serial.\n");
  BenchJson::Default().Add(
      JsonRow()
          .Str("engine", "dora_auto")
          .Num("tps", r.throughput_tps)
          .Num("abort_rate", rig.workload->plan_advisor().AbortRate(
                                 tm1::kUpdateSubscriberData))
          .Int("advisor_serial",
               rig.workload->plan_advisor().RecommendSerial(
                   tm1::kUpdateSubscriberData)
                   ? 1
                   : 0));
  BenchJson::Default().Emit("fig11_abort_plans");
  return 0;
}
