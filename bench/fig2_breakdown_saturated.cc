// Figure 2: time breakdown at full utilization for (a) the TM1 mix and
// (b) TPC-C OrderStatus, Baseline vs. DORA.
//
// Paper shape: DORA eliminates the lock-manager slices entirely, replacing
// them with a much thinner "dora" slice (local locks + queues + RVPs), and
// this holds even for OrderStatus where the Baseline lock manager is not
// heavily contended — DORA also wins on the uncontended lock-manager code
// it no longer executes.

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

template <typename W>
void RunPair(const char* label, W* workload, dora::DoraEngine* engine,
             int txn_type) {
  const uint32_t clients = HardwareContexts() * 2;  // saturated
  std::printf("\n--- %s (saturated: %u clients) ---\n", label, clients);
  for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
    ThreadStats::ResetAll();
    const BenchResult r =
        RunBench(workload, MakeConfig(kind, engine, clients, txn_type));
    std::printf("%-8s tps=%10.0f  %s\n",
                kind == EngineKind::kBaseline ? "BASE" : "DORA",
                r.throughput_tps, r.breakdown.Row().c_str());
    BenchJson::Default().Add(ResultRow(label, EngineName(kind), clients, r)
                                 .Str("breakdown", r.breakdown.Row()));
  }
}

}  // namespace

int main() {
  PrintHeader("Figure 2", "time breakdown at 100% utilization");
  {
    auto tm1 = MakeTm1();
    RunPair("(a) TM1 mix", tm1.workload.get(), tm1.engine.get(), -1);
  }
  {
    auto tpcc = MakeTpcc();
    RunPair("(b) TPC-C OrderStatus", tpcc.workload.get(), tpcc.engine.get(),
            tpcc::kOrderStatus);
  }
  std::printf(
      "\nexpected shape: BASE shows a large lockmgr(+cont) share; DORA's\n"
      "lockmgr share is ~0 and its replacement 'dora' share is smaller than\n"
      "even the uncontended Baseline lock manager time.\n");
  BenchJson::Default().Emit("fig2_breakdown_saturated");
  return 0;
}
