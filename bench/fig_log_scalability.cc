// Log scalability (the §5.4 experiment this repo's plog PR targets):
// TPC-B — the write-heaviest workload — run against the DORA engine with
// the central WAL versus the partitioned WAL (plog + pipelined commit +
// early lock release), sweeping the executor count.
//
// The paper observes that once DORA removes lock-manager contention, the
// single latched log buffer "becomes the new bottleneck"; with one log
// partition per executor that latch is private, so per-executor log
// contention time should FALL (or stay flat at ~zero) as executors are
// added, while the central log's grows.
//
// Reported per point: committed tps, the TimeClass::kLogContention share
// of accounted time, the kLogWork share, and raw log-contention
// cycles / committed txn.

#include "bench_common.h"
#include "util/sync_stats.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

struct Point {
  uint32_t executors;
  double tps;
  double log_cont_pct;
  double log_work_pct;
  double cont_cycles_per_txn;
  uint64_t idle_syncs_skipped;
};

Point RunPoint(LogBackendKind backend, uint32_t account_executors) {
  DurabilityStats::Reset();
  Database::Options db_opts = DbOptions();
  db_opts.log_backend = backend;
  // One partition per executor: accounts get `account_executors`, the
  // other three tables one each.
  const uint32_t total_executors = account_executors + 3;
  db_opts.log_partitions = total_executors;

  dora::DoraEngine::Options engine_opts;
  // The plog configuration also enables the commit pipeline (ELR +
  // per-partition ack queues) — the central configuration is the paper's
  // baseline commit path, blocking in WaitFlushed on the executor.
  engine_opts.pipelined_commit = (backend == LogBackendKind::kPartitioned);

  auto rig = MakeTpcbWith(db_opts, engine_opts, account_executors,
                          /*other_executors=*/1);
  ThreadStats::ResetAll();
  // Saturate the executor group: more clients than executors keeps every
  // queue non-empty so commit stalls show up as lost throughput.
  const uint32_t clients = 2 * total_executors;
  const BenchResult r =
      RunBench(rig.workload.get(),
               MakeConfig(EngineKind::kDora, rig.engine.get(), clients));

  Point p;
  p.executors = total_executors;
  p.tps = r.throughput_tps;
  const uint64_t total = r.raw_delta.TotalCycles();
  const uint64_t cont = r.raw_delta.Cycles(TimeClass::kLogContention);
  const uint64_t work = r.raw_delta.Cycles(TimeClass::kLogWork);
  p.log_cont_pct = total == 0 ? 0 : 100.0 * static_cast<double>(cont) /
                                        static_cast<double>(total);
  p.log_work_pct = total == 0 ? 0 : 100.0 * static_cast<double>(work) /
                                        static_cast<double>(total);
  p.cont_cycles_per_txn =
      r.committed == 0 ? 0
                       : static_cast<double>(cont) /
                             static_cast<double>(r.committed);
  p.idle_syncs_skipped = rig.db->log_manager()->idle_syncs_skipped();
  return p;
}

void RunSweep(const char* name, LogBackendKind backend) {
  std::printf("\n--- %s ---\n", name);
  std::printf("%-12s %12s %12s %12s %18s %16s\n", "executors", "tps",
              "log_cont%", "log_work%", "cont_cycles/txn", "cont/txn/exec");
  const bool file_backed = std::getenv("DORADB_DATA_DIR") != nullptr &&
                           std::getenv("DORADB_DATA_DIR")[0] != '\0';
  for (uint32_t ae : {1u, 2u, 4u, 8u}) {
    const Point p = RunPoint(backend, ae);
    std::printf("%-12u %12.0f %12.2f %12.2f %18.0f %16.0f\n", p.executors,
                p.tps, p.log_cont_pct, p.log_work_pct, p.cont_cycles_per_txn,
                p.cont_cycles_per_txn / p.executors);
    BenchJson::Default().Add(
        JsonRow()
            .Str("backend",
                 backend == LogBackendKind::kCentral ? "central" : "plog")
            .Int("executors", p.executors)
            .Num("tps", p.tps)
            .Num("log_cont_pct", p.log_cont_pct)
            .Num("log_work_pct", p.log_work_pct)
            .Num("cont_cycles_per_txn", p.cont_cycles_per_txn)
            .Int("idle_syncs_skipped", p.idle_syncs_skipped));
    if (file_backed) {
      // Per-stream durability cost of this point: group commit should
      // amortize fsyncs far below the committed-txn count.
      std::printf("  durability counters (per stream):\n%s",
                  DurabilityStats::ToString().c_str());
      std::printf("  idle watermark-only header syncs skipped: %llu\n",
                  static_cast<unsigned long long>(p.idle_syncs_skipped));
    }
  }
}

}  // namespace

int main() {
  PrintHeader("Log scalability",
              "TPC-B writes: central WAL vs partitioned WAL (plog)");
  RunSweep("central log (one latched buffer, blocking commit)",
           LogBackendKind::kCentral);
  RunSweep("partitioned log (plog, pipelined commit + ELR)",
           LogBackendKind::kPartitioned);
  std::printf(
      "\nexpected shape: the central log's contention share grows with\n"
      "executor count (every executor funnels through one latch); plog's\n"
      "stays ~zero because each executor appends to a private partition\n"
      "and commits without blocking in WaitFlushed.\n");
  BenchJson::Default().Emit("fig_log_scalability");
  return 0;
}
