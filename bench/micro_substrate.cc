// Substrate micro-benchmarks (google-benchmark): the primitive costs that
// the paper's argument is built on — uncontended vs contended lock-manager
// acquires, DORA local-lock acquires, B+Tree probes, log appends, latch
// round-trips.

#include <benchmark/benchmark.h>

#include "dora/local_lock_table.h"
#include "engine/database.h"
#include "storage/btree.h"
#include "util/spinlock.h"

namespace doradb {
namespace {

void BM_TatasUncontended(benchmark::State& state) {
  TatasLock lock;
  for (auto _ : state) {
    lock.Lock();
    lock.Unlock();
  }
}
BENCHMARK(BM_TatasUncontended);

void BM_McsUncontended(benchmark::State& state) {
  McsLock lock;
  for (auto _ : state) {
    McsLock::QNode qn;
    lock.Lock(&qn);
    lock.Unlock(&qn);
  }
}
BENCHMARK(BM_McsUncontended);

void BM_LockManagerAcquireRelease(benchmark::State& state) {
  LockManager lm;
  uint64_t i = 0;
  for (auto _ : state) {
    Transaction txn(++i);
    lm.RegisterTxn(&txn);
    benchmark::DoNotOptimize(
        lm.LockRow(&txn, 1, Rid{static_cast<PageId>(i % 4096), 0},
                   LockMode::kX));
    lm.ReleaseAll(&txn);
    lm.UnregisterTxn(txn.id());
  }
}
BENCHMARK(BM_LockManagerAcquireRelease);

void BM_LockManagerContended(benchmark::State& state) {
  // All threads hammer the same row in S mode: compatible, but every
  // acquire/release latches the same lock head — the paper's §3 story.
  static LockManager* lm = new LockManager();
  static std::atomic<uint64_t> next_id{1};
  for (auto _ : state) {
    Transaction txn(next_id.fetch_add(1));
    lm->RegisterTxn(&txn);
    benchmark::DoNotOptimize(lm->LockRow(&txn, 1, Rid{7, 7}, LockMode::kS));
    lm->ReleaseAll(&txn);
    lm->UnregisterTxn(txn.id());
  }
}
BENCHMARK(BM_LockManagerContended)->Threads(1)->Threads(2)->Threads(4);

void BM_DoraLocalLock(benchmark::State& state) {
  Database db;
  dora::LocalLockTable table;
  uint64_t i = 0;
  for (auto _ : state) {
    dora::DoraTxn dtxn(&db, db.Begin());
    dora::Action a;
    a.dtxn = &dtxn;
    a.routing_value = i++ % 4096;
    a.mode = dora::LocalMode::kX;
    benchmark::DoNotOptimize(table.TryAcquire(&a));
    std::vector<dora::Action*> runnable;
    table.ReleaseAll(&dtxn, &runnable);
    (void)db.Abort(dtxn.txn());
  }
}
BENCHMARK(BM_DoraLocalLock);

void BM_BtreeProbe(benchmark::State& state) {
  static DiskManager* disk = new DiskManager();
  static BufferPool* pool = new BufferPool(disk, 1 << 14);
  static BTree* tree = [] {
    auto* t = new BTree(pool, 0, true);
    for (uint64_t i = 0; i < 100000; ++i) {
      KeyBuilder kb;
      kb.Add64(i);
      (void)t->Insert(kb.View(), IndexEntry{Rid{PageId(i), 0}, i, false});
    }
    return t;
  }();
  uint64_t i = 0;
  for (auto _ : state) {
    KeyBuilder kb;
    kb.Add64(i++ % 100000);
    IndexEntry out;
    benchmark::DoNotOptimize(tree->Probe(kb.View(), &out));
  }
}
BENCHMARK(BM_BtreeProbe)->Threads(1)->Threads(2);

void BM_BtreeInsert(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1 << 14);
  BTree tree(&pool, 0, true);
  uint64_t i = 0;
  for (auto _ : state) {
    KeyBuilder kb;
    kb.Add64(i++);
    benchmark::DoNotOptimize(
        tree.Insert(kb.View(), IndexEntry{Rid{PageId(i), 0}, i, false}));
  }
}
BENCHMARK(BM_BtreeInsert);

void BM_LogAppend(benchmark::State& state) {
  static LogManager* log = new LogManager();
  for (auto _ : state) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = 1;
    rec.before.assign(64, 'b');
    rec.after.assign(64, 'a');
    benchmark::DoNotOptimize(log->Append(&rec));
  }
}
BENCHMARK(BM_LogAppend)->Threads(1)->Threads(2)->Threads(4);

void BM_HeapInsertRead(benchmark::State& state) {
  DiskManager disk;
  BufferPool pool(&disk, 1 << 14);
  HeapFile heap(&pool, 0);
  const std::string rec(100, 'r');
  for (auto _ : state) {
    Rid rid;
    benchmark::DoNotOptimize(heap.Insert(rec, &rid));
    std::string out;
    benchmark::DoNotOptimize(heap.Get(rid, &out));
  }
}
BENCHMARK(BM_HeapInsertRead);

}  // namespace
}  // namespace doradb

BENCHMARK_MAIN();
