// Figure 1: TM1 GetSubscriberData — (a) throughput per CPU utilization as
// load increases; (b) Baseline time breakdown; (c) DORA time breakdown.
//
// Paper shape: Baseline's per-context throughput collapses (>80% drop at
// full utilization) as lock-manager contention grows to >85% of execution;
// DORA stays flat with the lock manager eliminated.

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

int main() {
  PrintHeader("Figure 1", "TM1 GetSubscriberData: throughput/util + breakdowns");
  auto rig = MakeTm1();

  std::printf("\n%-8s %-10s %12s %14s  %s\n", "system", "load%", "tps",
              "tps_per_load", "time breakdown");
  for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
    const char* name = kind == EngineKind::kBaseline ? "BASE" : "DORA";
    for (uint32_t clients : ClientLadder()) {
      ThreadStats::ResetAll();
      const BenchResult r =
          RunBench(rig.workload.get(),
                   MakeConfig(kind, rig.engine.get(), clients,
                              tm1::kGetSubscriberData));
      std::printf("%-8s %-10.0f %12.0f %14.1f  %s\n", name,
                  r.offered_load_pct, r.throughput_tps,
                  r.throughput_tps / (r.offered_load_pct / 100.0),
                  r.breakdown.Row().c_str());
      BenchJson::Default().Add(
          ResultRow("tm1_get_subscriber_data", EngineName(kind), clients, r));
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: BASE tps_per_load degrades with load while its\n"
      "lockmgr(+cont) share grows; DORA shows near-zero lock manager time\n"
      "(the 'dora' class replaces it). On few-core hosts DORA's absolute\n"
      "tps is hand-off-bound; see the scaling caveat in EXPERIMENTS.md.\n");
  BenchJson::Default().Emit("fig1_tm1_getsubdata");
  return 0;
}
