// Figure 7: single-client response times — DORA exploits intra-transaction
// parallelism to answer faster when the machine is NOT saturated.
//
// Paper shape: normalized response time (DORA/Baseline) below 1.0 for
// transactions with parallel flow graphs (up to ~60% faster for TPC-C
// NewOrder); roughly 1.0 for single-action transactions.

#include "bench_common.h"

using namespace doradb;
using namespace doradb::bench;

namespace {

template <typename W>
void Measure(const char* label, W* workload, dora::DoraEngine* engine,
             int txn_type) {
  double mean[2] = {0, 0};
  int i = 0;
  for (const EngineKind kind : {EngineKind::kBaseline, EngineKind::kDora}) {
    ThreadStats::ResetAll();
    const BenchResult r =
        RunBench(workload, MakeConfig(kind, engine, /*clients=*/1, txn_type));
    mean[i++] = r.latency->Mean();
  }
  std::printf("%-28s %12.1f %12.1f %10.2f\n", label, mean[0] / 1000.0,
              mean[1] / 1000.0, mean[0] > 0 ? mean[1] / mean[0] : 0.0);
  BenchJson::Default().Add(
      JsonRow()
          .Str("txn", label)
          .Num("base_mean_ns", mean[0])
          .Num("dora_mean_ns", mean[1])
          .Num("normalized", mean[0] > 0 ? mean[1] / mean[0] : 0.0));
}

}  // namespace

int main() {
  PrintHeader("Figure 7",
              "single-client mean response time (normalized DORA/BASE)");
  std::printf("\n%-28s %12s %12s %10s\n", "transaction", "BASE us", "DORA us",
              "norm");
  {
    auto tm1 = MakeTm1();
    Measure("TM1 GetSubscriberData", tm1.workload.get(), tm1.engine.get(),
            tm1::kGetSubscriberData);
    Measure("TM1 GetNewDestination", tm1.workload.get(), tm1.engine.get(),
            tm1::kGetNewDestination);
    Measure("TM1 UpdateSubscriberData", tm1.workload.get(), tm1.engine.get(),
            tm1::kUpdateSubscriberData);
  }
  {
    auto tpcb = MakeTpcb();
    Measure("TPC-B AccountUpdate", tpcb.workload.get(), tpcb.engine.get(), 0);
  }
  {
    auto tpcc = MakeTpcc();
    Measure("TPC-C NewOrder", tpcc.workload.get(), tpcc.engine.get(),
            tpcc::kNewOrder);
    Measure("TPC-C Payment", tpcc.workload.get(), tpcc.engine.get(),
            tpcc::kPayment);
    Measure("TPC-C OrderStatus", tpcc.workload.get(), tpcc.engine.get(),
            tpcc::kOrderStatus);
  }
  std::printf(
      "\nexpected shape: norm < 1.0 for multi-action transactions (TPC-B,\n"
      "TPC-C NewOrder/Payment, TM1 UpdateSubscriberData/GetNewDestination)\n"
      "when parallel actions overlap; ~1.0 for single-action ones.\n"
      "note: with few hardware contexts the overlap benefit shrinks and\n"
      "queueing overhead can dominate very short transactions.\n");
  BenchJson::Default().Emit("fig7_response_time");
  return 0;
}
