// Database: the storage-manager facade tying together buffer pool, catalog,
// lock manager, WAL, and transactions. Mirrors the role Shore-MT plays for
// the paper's prototype (§4.3).
//
// Record operations take AccessOptions, reproducing the paper's Shore-MT
// modification: "We added an additional parameter to the functions which
// read or update records ... This flag instructs Shore-MT to not use
// concurrency control. ... In the case of insert and delete records,
// another flag instructs Shore-MT to acquire only the row-level lock and
// avoid acquiring the whole hierarchy."
//
// Delete semantics: the row is removed from visibility (indexes) inside the
// transaction, but the heap slot is physically freed only after commit
// ("ghost until commit"). This prevents the §4.2.1 slot-reuse conflict at
// the storage level; DORA nonetheless takes the centralized RID lock on
// inserts/deletes exactly as the paper prescribes.

#ifndef DORADB_ENGINE_DATABASE_H_
#define DORADB_ENGINE_DATABASE_H_

#include <functional>
#include <memory>

#include "ckpt/checkpoint_coordinator.h"
#include "lock/lock_manager.h"
#include "log/log_backend.h"
#include "log/log_manager.h"
#include "obs/metrics.h"
#include "obs/obs_server.h"
#include "obs/reporter.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/catalog_store.h"
#include "storage/disk_manager.h"
#include "txn/txn_manager.h"

namespace doradb {

// Concurrency-control flags for one record access.
struct AccessOptions {
  // Acquire hierarchical locks through the centralized lock manager
  // (Baseline behaviour). DORA actions pass false.
  bool use_locks = true;
  // DORA §4.2.1: inserts/deletes acquire only the row (RID) lock, skipping
  // the intention-lock hierarchy.
  bool rid_lock_only = false;

  static AccessOptions Baseline() { return AccessOptions{true, false}; }
  // DORA probe/update inside an executor: no centralized CC at all.
  static AccessOptions NoCc() { return AccessOptions{false, false}; }
  // DORA insert/delete: centralized RID lock only.
  static AccessOptions RidOnly() { return AccessOptions{false, true}; }
};

// Which WAL implementation backs the engine (runtime-selectable).
enum class LogBackendKind : uint8_t {
  kCentral = 0,      // one latched buffer (the paper's §5.4 bottleneck)
  kPartitioned = 1,  // plog: one partition per executor, GSN-stamped
};

class Database {
 public:
  struct Options {
    size_t buffer_frames = 8192;  // 64 MiB
    LockManager::Options lock;
    LogManager::Options log;
    LogBackendKind log_backend = LogBackendKind::kCentral;
    // Partition count for LogBackendKind::kPartitioned; size it to the
    // executor count so each executor appends to a private partition.
    uint32_t log_partitions = 4;
    // Fuzzy-checkpoint daemon: partition-local checkpoints + log
    // truncation (src/ckpt/). Off by default; manual Checkpoint calls
    // work regardless.
    ckpt::CheckpointCoordinator::Options checkpoint;
    // Non-empty: durable mode. The WAL's stable streams live in segment
    // files under this directory (log/segment_file.h), the page store
    // becomes `<data_dir>/pages.db`, and the schema lives in
    // `<data_dir>/catalog.db` (storage/catalog_store.h), written through
    // on every DDL. Constructing a Database over a directory a previous
    // lifetime wrote is the reopen path: the log backends adopt the
    // existing segments (cold start), the catalog is rebuilt from
    // catalog.db — tables, indexes, key schemas, DORA routing config —
    // and Recover() rebuilds committed state from disk alone, with no
    // application-side schema re-creation. Empty (default): both media
    // are in-memory vectors, the seed behaviour.
    std::string data_dir;
    // Segment roll target for the file-backed log streams.
    size_t log_segment_bytes = 1 << 20;
    // Nonzero: run a background StatsReporter emitting one
    // "DORADB_STATS {json}" line to stderr per interval (src/obs/). Off by
    // default; benches and quickstart wire it to DORADB_STATS_INTERVAL_MS.
    uint64_t stats_interval_ms = 0;
    // Stall watchdog (obs/watchdog.h): nonzero runs the process-wide
    // watchdog thread at this cadence while the database lives, sweeping
    // the load heatmap and checking heartbeats + progress probes; on an
    // unhealthy verdict it dumps a flight-recorder report under
    // <data_dir>/blackbox/ (memory mode: report rendering only, no file).
    // 0 disables. Benches wire DORADB_WATCHDOG_MS.
    uint64_t watchdog_interval_ms = 250;
    // A heartbeat older than this (non-idle), or a flush horizon stuck
    // with appends outstanding for this long, counts as a stall.
    uint64_t stall_threshold_ms = 2000;
    // Live metrics endpoint (obs/obs_server.h): -1 off (default), 0 binds
    // an ephemeral loopback port (announced as "DORADB_OBS {json}" on
    // stderr), >0 binds that port. Serves /metrics, /heatmap, /healthz.
    int obs_port = -1;
  };

  explicit Database(Options options);
  Database() : Database(Options()) {}
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // Unified metrics snapshot (src/obs/): every subsystem's counters,
  // gauges, and latency histograms, aggregated from the process-wide
  // registry. Text via snapshot.ToText(), JSON via snapshot.ToJson(),
  // windowed views via Snapshot::Delta.
  obs::MetricsSnapshot Metrics() const {
    return obs::MetricsRegistry::Default().Snapshot();
  }

  // The "txn.commit_latency_ns" histogram (shared, registry-owned). The
  // non-pipelined paths record into it from Commit(); DORA's pipelined
  // finalize sites (inline ack, ack daemon) record their own — exactly one
  // record per committed transaction either way.
  static Histogram* CommitLatencyHistogram();

  // Port the live metrics endpoint bound, or -1 when disabled / failed.
  int obs_port() const { return obs_server_ == nullptr ? -1 : obs_server_->port(); }

  Catalog* catalog() { return catalog_.get(); }
  LockManager* lock_manager() { return lock_.get(); }
  LogBackend* log_manager() { return log_.get(); }
  TxnManager* txn_manager() { return txns_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  DiskManager* disk() { return disk_.get(); }
  ckpt::CheckpointCoordinator* checkpointer() { return ckpt_.get(); }

  // ---- transaction lifecycle ----

  std::unique_ptr<Transaction> Begin() { return txns_->Begin(); }

  // Commit: flush the WAL through the commit record (group commit), run
  // post-commit actions (slot frees, DORA index flagging), release locks.
  Status Commit(Transaction* txn);

  // Pipelined commit, used by DORA's early-lock-release path. CommitAsync
  // appends the commit record and returns the LSN/GSN whose durability
  // makes the commit final — without waiting for it. Once
  // WaitFlushed(that lsn) has returned, CommitFinalize runs the rest of
  // the protocol (post-commit actions, kEnd, lock release). Commit() is
  // exactly CommitAsync + WaitFlushed + CommitFinalize.
  Lsn CommitAsync(Transaction* txn);
  Status CommitFinalize(Transaction* txn);

  // The failure-side counterpart of CommitFinalize: the commit record was
  // appended (CommitAsync) but its durability wait failed — the outcome is
  // indeterminate until recovery reads the stable log. Runs no post-commit
  // actions and no rollback (undoing a possibly-durable commit would be
  // wrong); releases locks, retires the handle, and returns `why` so the
  // caller surfaces the typed error to the client.
  Status CommitIndeterminate(Transaction* txn, Status why);

  // Bulk CommitAsync for DORA's epoch-batched commit path: builds all n
  // commit records and hands them to the log backend in ONE AppendBulk
  // call (one buffer-latch reservation on the plog). out_lsn[i] receives
  // txns[i]'s commit LSN. Caller contract: every transaction is quiescent
  // — its terminal action finished, so no sibling is appending to its
  // chain concurrently (the per-txn chain lock is not taken). `recs` and
  // `ptrs` are caller-owned scratch reused across calls.
  void CommitAsyncBulk(Transaction* const* txns, size_t n,
                       std::vector<LogRecord>& recs,
                       std::vector<LogRecord*>& ptrs, Lsn* out_lsn);

  // Abort: roll back heap ops via the in-memory undo chain (logging CLRs),
  // reverse index ops logically, release locks.
  Status Abort(Transaction* txn);

  // ---- record operations ----

  Status Read(Transaction* txn, TableId table, const Rid& rid,
              std::string* record, const AccessOptions& opts);

  Status Insert(Transaction* txn, TableId table, std::string_view record,
                Rid* rid, const AccessOptions& opts);

  Status Update(Transaction* txn, TableId table, const Rid& rid,
                std::string_view record, const AccessOptions& opts);

  Status Delete(Transaction* txn, TableId table, const Rid& rid,
                const AccessOptions& opts);

  // ---- index maintenance (logical undo tracked per transaction) ----

  Status IndexInsert(Transaction* txn, IndexId index, std::string_view key,
                     const IndexEntry& entry);
  Status IndexRemove(Transaction* txn, IndexId index, std::string_view key,
                     const Rid& rid, uint64_t aux_for_undo);

  // ---- checkpoints, crash & restart ----

  // Global fuzzy checkpoint: flush all logged dirty pages, write one
  // checkpoint record covering every partition, reclaim the log below the
  // resulting redo horizon (when Options::checkpoint.truncate).
  Status Checkpoint();

  // Partition-local fuzzy checkpoint of one log partition: flush only that
  // partition's dirty pages and advance only its truncation point. The
  // background daemon (Options::checkpoint.enabled) walks partitions
  // round-robin calling exactly this.
  Status CheckpointPartition(uint32_t partition);

  // Crash simulation: drop the buffer pool and the volatile log tail.
  // In-flight transactions are forgotten (they become recovery losers);
  // the checkpoint daemon dies with the process (Recover restarts it).
  void SimulateCrash();

  // Kill simulation (durable mode): like SimulateCrash but without the
  // restart-style stable-log truncation — segment files keep their torn
  // tails and stale watermark headers, exactly as a killed process leaves
  // them. Pair with destroying this Database and reopening a new one over
  // the same data_dir to exercise the cold-start recovery path.
  void SimulateKill();

  // ARIES restart: analysis over the stable log, redo of winners' history,
  // undo of losers with CLRs. Heap page lists are rediscovered from the
  // disk image. Indexes are derived state: once the heaps are consistent,
  // every index whose persisted IndexKeySpec can rebuild it is repopulated
  // generically from its heap, then `rebuild_indexes` (optional,
  // schema-aware) runs for indexes with opaque keys. Fails with the
  // catalog's named load error if this Database was opened over a data
  // directory whose catalog.db was corrupt or of a mismatched version —
  // reopen refuses to run rather than misroute over a half-read schema.
  Status Recover(
      const std::function<Status(Database*)>& rebuild_indexes = nullptr);

  // The result of loading + replaying <data_dir>/catalog.db at
  // construction: OK in memory mode, for a fresh directory, or after a
  // clean replay; a named "catalog: ..." error otherwise.
  const Status& catalog_load_status() const { return catalog_status_; }

 private:
  friend class RecoveryDriver;

  // Shared by Commit (deferred deletes) and recovery redo.
  Status PhysicalDelete(TableId table, const Rid& rid, Lsn lsn);

  // Runs before any member constructs (options_ is the first member):
  // clears the process-wide health latch so a reopen over a previously
  // degraded engine starts healthy — the subsystems built next re-latch it
  // if the medium is still failing.
  static Options ResetHealthThenPass(Options options);

  Options options_;
  std::unique_ptr<DiskManager> disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<CatalogStore> catalog_store_;  // durable mode only
  Status catalog_status_;
  // catalog.db was present when this Database opened. False on a fresh
  // directory (an empty catalog is written immediately) and on a
  // pre-catalog or damaged directory (no file to load) — the case
  // Recover()'s missing-catalog guard protects.
  bool catalog_file_found_ = false;
  std::unique_ptr<LockManager> lock_;
  std::unique_ptr<LogBackend> log_;
  std::unique_ptr<TxnManager> txns_;
  std::unique_ptr<ckpt::CheckpointCoordinator> ckpt_;

  // Observability: registry callback tokens for this database's subsystem
  // metrics (released in the destructor before the subsystems die) and the
  // optional background reporter (Options::stats_interval_ms).
  std::vector<uint64_t> obs_tokens_;
  std::unique_ptr<obs::StatsReporter> reporter_;
  // Watchdog wiring: one Retain per database (the process-wide thread runs
  // while any retainer lives), plus a progress probe over the group-commit
  // horizon. The endpoint serves the registry/heatmap/watchdog verdict.
  bool watchdog_retained_ = false;
  uint64_t horizon_probe_token_ = 0;
  std::unique_ptr<obs::ObsServer> obs_server_;
};

}  // namespace doradb

#endif  // DORADB_ENGINE_DATABASE_H_
