#include "engine/database.h"

#include "obs/health.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "plog/partitioned_log_manager.h"
#include "util/clock.h"

namespace doradb {

namespace {
std::unique_ptr<LogBackend> MakeLogBackend(const Database::Options& options) {
  if (options.log_backend == LogBackendKind::kPartitioned) {
    plog::PartitionedLogManager::Options po;
    po.num_partitions = options.log_partitions;
    po.log = options.log;
    po.data_dir = options.data_dir;
    po.segment_target_bytes = options.log_segment_bytes;
    return std::make_unique<plog::PartitionedLogManager>(po);
  }
  LogManager::Options lo = options.log;
  lo.data_dir = options.data_dir;
  lo.segment_target_bytes = options.log_segment_bytes;
  return std::make_unique<LogManager>(lo);
}
}  // namespace

Database::Options Database::ResetHealthThenPass(Options options) {
  obs::EngineHealth::Default().Reset();
  return options;
}

Database::Database(Options options)
    : options_(ResetHealthThenPass(options)),
      disk_(std::make_unique<DiskManager>(options.data_dir)),
      pool_(std::make_unique<BufferPool>(disk_.get(), options.buffer_frames)),
      catalog_(std::make_unique<Catalog>(pool_.get())),
      lock_(std::make_unique<LockManager>(options.lock)),
      log_(MakeLogBackend(options)),
      txns_(std::make_unique<TxnManager>(lock_.get(), log_.get())),
      ckpt_(std::make_unique<ckpt::CheckpointCoordinator>(
          pool_.get(), log_.get(), txns_.get(), options.checkpoint)) {
  // Reopen ordering hazard: recovered log records can reference pages the
  // dead lifetime allocated but never flushed (they sit beyond pages.db
  // EOF). Raise the allocator past every such id NOW — before application
  // code runs — or schema setup (eager B+Tree roots) would be handed a
  // logged page id and redo would clobber it.
  const PageId recovered_pid = log_->recovered_max_page_id();
  if (recovered_pid != kInvalidPageId) {
    disk_->EnsureAllocatedThrough(recovered_pid + 1);
  }
  // Durable mode: the schema lives in <data_dir>/catalog.db. Reopening an
  // existing directory replays the stored DDL — tables, indexes (their
  // eager B+Tree roots allocate AFTER the bump above, so they can never
  // collide with logged page ids), key schemas, DORA routing config — so
  // the application never re-creates its schema. Only then is the store
  // attached for write-through: every subsequent DDL is durable before it
  // returns. A corrupt or version-mismatched catalog leaves the catalog
  // empty and parks the named error in catalog_status_; Recover() refuses
  // to run with it (misrouting over a half-read schema would be silent
  // data loss), and the bad file is left in place as evidence.
  if (!options_.data_dir.empty()) {
    catalog_store_ = std::make_unique<CatalogStore>(options_.data_dir);
    catalog_file_found_ = catalog_store_->Exists();
    if (catalog_file_found_) {
      CatalogImage img;
      catalog_status_ = catalog_store_->Load(&img);
      if (catalog_status_.ok()) {
        catalog_status_ = ReplayCatalogImage(img, catalog_.get());
      }
    } else if (log_->stable_size() == 0) {
      // First durable open of a FRESH directory: persist the (empty)
      // catalog now, so even a database that never issues DDL — whose WAL
      // will only ever hold checkpoint records — reopens self-described
      // instead of tripping Recover()'s missing-catalog guard. A
      // directory that already holds WAL content but no catalog.db (a
      // pre-catalog or damaged one) deliberately gets NO bootstrap file:
      // writing one would make a bare reopen retry indistinguishable from
      // the legitimate schema-less case and defeat the guard on the next
      // lifetime — it stays catalog-less until the application's first
      // write-through DDL describes it.
      catalog_status_ = catalog_store_->Save(CatalogImage{});
    }
    if (catalog_status_.ok()) {
      catalog_->SetStore(catalog_store_.get());
    } else {
      // New DDL on top of an unreadable catalog could never be persisted
      // or recovered; poison the catalog so every mutation path — not
      // just Recover() — surfaces the named error.
      catalog_->Poison(catalog_status_);
    }
  }
  // Checkpoints snapshot the catalog before publishing a horizon, so log
  // truncation can never outrun the schema description (a no-op while DDL
  // write-through keeps the file current).
  ckpt_->SetCatalogPersist([this] { return catalog_->Persist(); });
  pool_->SetWalFlushCallback([this](Lsn lsn) {
    // WAL rule: the covering (partition) flush horizon must pass the page
    // LSN before the dirty page may be stolen. A poisoned log stream makes
    // that impossible — report failure so the pool refuses the write-back.
    if (lsn == kInvalidLsn) return true;
    return log_->FlushTo(lsn).ok();
  });
  // Dirty-page attribution for partition-local checkpoints: a logged write
  // belongs to the writer's bound log partition.
  pool_->SetPartitionResolver(
      [this] { return log_->CurrentPartition(); });
  // A reopened durable database (data_dir with recovered log content) is
  // checkpoint-quiescent until Recover() runs: the daemon's horizon over a
  // cold empty pool would cover — and truncate — committed records whose
  // only copy is the log recovery has not replayed yet. Recover() starts
  // the daemon once the replay is done.
  if (options_.checkpoint.enabled &&
      (options_.data_dir.empty() || log_->stable_size() == 0)) {
    ckpt_->Start();
  }
  // Pull-style registry metrics over this database's subsystems. The
  // callbacks dereference members, so the destructor unregisters them
  // before any member dies.
  auto& reg = obs::MetricsRegistry::Default();
  const auto kCtr = obs::MetricType::kCounter;
  const auto kGau = obs::MetricType::kGauge;
  auto cb = [this, &reg](const std::string& name, std::function<int64_t()> fn,
                         obs::MetricType type, const char* unit) {
    obs_tokens_.push_back(reg.RegisterCallback(name, std::move(fn), type,
                                               unit));
  };
  cb("txn.started", [this] { return static_cast<int64_t>(txns_->started()); },
     kCtr, "txns");
  cb("txn.active",
     [this] { return static_cast<int64_t>(txns_->num_active()); }, kGau,
     "txns");
  cb("log.appends", [this] { return static_cast<int64_t>(log_->appends()); },
     kCtr, "records");
  cb("log.flushes", [this] { return static_cast<int64_t>(log_->flushes()); },
     kCtr, "calls");
  cb("log.idle_syncs_skipped",
     [this] { return static_cast<int64_t>(log_->idle_syncs_skipped()); },
     kCtr, "calls");
  cb("log.flushed_lsn",
     [this] { return static_cast<int64_t>(log_->flushed_lsn()); }, kGau,
     "lsn");
  cb("log.stable_bytes",
     [this] { return static_cast<int64_t>(log_->stable_size()); }, kGau,
     "bytes");
  cb("log.reclaimed_bytes",
     [this] { return static_cast<int64_t>(log_->reclaimed_bytes()); }, kCtr,
     "bytes");
  cb("ckpt.checkpoints",
     [this] { return static_cast<int64_t>(ckpt_->stats().checkpoints); },
     kCtr, "records");
  cb("ckpt.pages_flushed",
     [this] { return static_cast<int64_t>(ckpt_->stats().pages_flushed); },
     kCtr, "pages");
  cb("ckpt.pages_skipped",
     [this] { return static_cast<int64_t>(ckpt_->stats().pages_skipped); },
     kCtr, "pages");
  cb("ckpt.last_horizon",
     [this] { return static_cast<int64_t>(ckpt_->last_horizon()); }, kGau,
     "lsn");
  // Health surface: 0 = Ok, 1 = Degraded (read-only; logged commits fail
  // Unavailable). The retry/error counters come from the storage layer's
  // bounded-retry I/O wrappers and count process-wide.
  cb("engine.health_state",
     [] {
       return static_cast<int64_t>(obs::EngineHealth::Default().state());
     },
     kGau, "state");
  cb("log.io_retries",
     [] {
       return static_cast<int64_t>(obs::EngineHealth::Default().io_retries());
     },
     kCtr, "retries");
  cb("log.io_errors",
     [] {
       return static_cast<int64_t>(obs::EngineHealth::Default().io_errors());
     },
     kCtr, "errors");
  if (options_.stats_interval_ms != 0) {
    reporter_ = std::make_unique<obs::StatsReporter>(
        &reg, options_.stats_interval_ms);
    reporter_->Start();
  }
  // Stall watchdog: refcounted process-wide thread; the last-retaining
  // database's options win. A stuck group-commit horizon — appends past
  // the flushed LSN that stop advancing — is a stall even when every
  // thread still heartbeats, so it gets its own progress probe.
  if (options_.watchdog_interval_ms != 0) {
    obs::Watchdog::Options wo;
    wo.interval_ms = options_.watchdog_interval_ms;
    wo.stall_ms = options_.stall_threshold_ms;
    wo.dump_dir = options_.data_dir;  // empty: render-only, no files
    obs::Watchdog::Default().Retain(wo);
    watchdog_retained_ = true;
    horizon_probe_token_ = obs::Watchdog::Default().RegisterProgressProbe(
        "log.flush_horizon",
        [this] { return log_->current_lsn() > log_->flushed_lsn(); },
        [this] { return static_cast<uint64_t>(log_->flushed_lsn()); });
  }
  // Live metrics endpoint: loopback HTTP serving /metrics, /heatmap and
  // /healthz. Port 0 binds ephemerally and announces the choice on stderr
  // so harnesses (and humans) can find it.
  if (options_.obs_port >= 0) {
    obs::ObsServer::Options so;
    so.port = options_.obs_port;
    obs_server_ = std::make_unique<obs::ObsServer>(so);
    const Status s = obs_server_->Start();
    if (s.ok()) {
      fprintf(stderr, "DORADB_OBS {\"port\":%d}\n", obs_server_->port());
      fflush(stderr);
    } else {
      fprintf(stderr, "DORADB_OBS {\"error\":\"%s\"}\n", s.ToString().c_str());
      obs_server_.reset();
    }
  }
}

Database::~Database() {
  // Endpoint first (it serves the registry and the watchdog verdict),
  // then reporter (it snapshots the registry, whose callbacks read the
  // members below), then the callbacks themselves, then the watchdog
  // probe + retain (the probe reads log_).
  if (obs_server_ != nullptr) obs_server_->Stop();
  if (reporter_ != nullptr) reporter_->Stop();
  for (const uint64_t token : obs_tokens_) {
    obs::MetricsRegistry::Default().Unregister(token);
  }
  obs_tokens_.clear();
  if (horizon_probe_token_ != 0) {
    obs::Watchdog::Default().UnregisterProbe(horizon_probe_token_);
    horizon_probe_token_ = 0;
  }
  if (watchdog_retained_) {
    obs::Watchdog::Default().Release();
    watchdog_retained_ = false;
  }
  // The checkpoint daemon reads the pool and appends to the log; stop it
  // before either can die. Members then destroy in reverse declaration
  // order, which tears the log down before the pool — so flush dirty pages
  // while the log is still alive (WAL rule intact), then detach the
  // callback for the pool's own destructor. The seed hid this as a
  // use-after-free that virtual dispatch on LogBackend turned into a
  // crash.
  ckpt_->Stop();
  (void)pool_->FlushAll();
  (void)disk_->Sync();  // clean shutdown: flushed pages reach the medium
  pool_->SetWalFlushCallback(nullptr);
}

Histogram* Database::CommitLatencyHistogram() {
  static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
      "txn.commit_latency_ns", "ns");
  return h;
}

Status Database::Commit(Transaction* txn) {
  auto& health = obs::EngineHealth::Default();
  if (health.degraded()) {
    if (!txn->logged_work()) {
      // Read-only transaction: nothing beyond the eager kBegin was logged,
      // so its commit needs no durability wait — degraded mode keeps
      // serving reads.
      for (auto& fn : txn->post_commit()) fn();
      txn->post_commit().clear();
      lock_->ReleaseAll(txn);
      txns_->Finish(txn);
      txn->set_state(TxnState::kCommitted);
      return Status::OK();
    }
    // Logged transaction, caught before the commit record: nothing it
    // wrote can ever become durable, so roll it back cleanly while its
    // undo chain is still intact and surface the typed error.
    (void)Abort(txn);
    return Status::Unavailable("engine degraded: " + health.reason());
  }
  const Lsn end = CommitAsync(txn);
  obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kCommitAppend);
  // Durability point (group commit). A failure here is NOT an abort: the
  // commit record is already appended and may or may not have reached the
  // medium before the stream poisoned itself.
  const Status durable = log_->WaitFlushed(end);
  if (!durable.ok()) return CommitIndeterminate(txn, durable);
  obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kDurable);
  const Status s = CommitFinalize(txn);
  if (obs::MetricsEnabled() && txn->start_tsc() != 0) {
    CommitLatencyHistogram()->Record(static_cast<uint64_t>(
        Cycles::ToNanos(Cycles::Now() - txn->start_tsc())));
  }
  return s;
}

Status Database::CommitIndeterminate(Transaction* txn, Status why) {
  // The client must not assume the commit happened (no post-commit
  // actions, no kEnd record, no physical frees of ghost deletes); recovery
  // decides the outcome from the stable log on the next lifetime. Locks
  // are released and the handle retired so the client can dispose of it.
  if (obs::MetricsEnabled()) {
    static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
        "txn.commit_indeterminate", "txns");
    c->Add();
  }
  txn->post_commit().clear();
  lock_->ReleaseAll(txn);
  txns_->Finish(txn);
  txn->set_state(TxnState::kAborted);
  return why;
}

Lsn Database::CommitAsync(Transaction* txn) {
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = txn->id();
  return txn->ChainAppend(log_.get(), &rec);
}

void Database::CommitAsyncBulk(Transaction* const* txns, size_t n,
                               std::vector<LogRecord>& recs,
                               std::vector<LogRecord*>& ptrs, Lsn* out_lsn) {
  recs.resize(n);
  ptrs.resize(n);
  for (size_t i = 0; i < n; ++i) {
    recs[i] = LogRecord();
    recs[i].type = LogType::kCommit;
    recs[i].txn = txns[i]->id();
    recs[i].prev_lsn = txns[i]->last_lsn();
    ptrs[i] = &recs[i];
  }
  log_->AppendBulk(ptrs.data(), n);
  for (size_t i = 0; i < n; ++i) {
    txns[i]->set_last_lsn(recs[i].lsn);
    out_lsn[i] = recs[i].lsn;
  }
}

Status Database::CommitFinalize(Transaction* txn) {
  // Post-commit work, outside the transaction: physical frees of deleted
  // slots and DORA's secondary-index delete flagging (§4.2.2).
  for (auto& fn : txn->post_commit()) fn();
  txn->post_commit().clear();

  LogRecord end_rec;
  end_rec.type = LogType::kEnd;
  end_rec.txn = txn->id();
  txn->ChainAppend(log_.get(), &end_rec);

  lock_->ReleaseAll(txn);
  txns_->Finish(txn);
  txn->set_state(TxnState::kCommitted);
  return Status::OK();
}

Status Database::Abort(Transaction* txn) {
  if (obs::MetricsEnabled()) {
    static obs::Counter* aborts =
        obs::MetricsRegistry::Default().GetCounter("txn.aborts", "txns");
    aborts->Add();
  }
  LogRecord abort_rec;
  abort_rec.type = LogType::kAbort;
  abort_rec.txn = txn->id();
  txn->ChainAppend(log_.get(), &abort_rec);

  // Undo heap operations, newest first, logging a CLR per undone op.
  auto& undo = txn->undo();
  for (auto it = undo.rbegin(); it != undo.rend(); ++it) {
    HeapFile* heap = catalog_->Heap(it->table);
    Status s;
    LogRecord clr;
    clr.type = LogType::kClr;
    clr.txn = txn->id();
    clr.table = it->table;
    clr.rid = it->rid;
    // ARIES undo_next: the next record still requiring undo (restart undo
    // resumes here if we crash mid-rollback).
    auto next_it = it + 1;
    clr.undo_next = next_it != undo.rend() ? next_it->lsn : kInvalidLsn;
    switch (it->kind) {
      case UndoRecord::Kind::kInsert:
        clr.clr_action = LogType::kDelete;
        txn->ChainAppend(log_.get(), &clr);
        s = heap->Delete(it->rid, nullptr, clr.lsn);
        break;
      case UndoRecord::Kind::kUpdate:
        clr.clr_action = LogType::kUpdate;
        clr.after = it->before;
        txn->ChainAppend(log_.get(), &clr);
        s = heap->Update(it->rid, it->before, nullptr, clr.lsn);
        break;
      case UndoRecord::Kind::kDelete:
        // Physical free was deferred to post-commit, which never ran:
        // nothing to undo on the heap.
        continue;
    }
    if (!s.ok()) return Status::Corruption("rollback failed: " + s.ToString());
  }
  undo.clear();

  // Reverse index operations logically.
  auto& iundo = txn->index_undo();
  for (auto it = iundo.rbegin(); it != iundo.rend(); ++it) {
    BTree* tree = catalog_->Index(it->index);
    switch (it->kind) {
      case IndexUndo::Kind::kInsert:
        (void)tree->Remove(it->key, it->rid);
        break;
      case IndexUndo::Kind::kRemove:
        (void)tree->Insert(it->key, IndexEntry{it->rid, it->aux, false});
        break;
    }
  }
  iundo.clear();
  txn->post_commit().clear();

  LogRecord end_rec;
  end_rec.type = LogType::kEnd;
  end_rec.txn = txn->id();
  txn->ChainAppend(log_.get(), &end_rec);

  lock_->ReleaseAll(txn);
  txns_->Finish(txn);
  txn->set_state(TxnState::kAborted);
  return Status::OK();
}

Status Database::Read(Transaction* txn, TableId table, const Rid& rid,
                      std::string* record, const AccessOptions& opts) {
  if (opts.use_locks) {
    DORADB_RETURN_NOT_OK(lock_->LockRow(txn, table, rid, LockMode::kS));
  }
  return catalog_->Heap(table)->Get(rid, record);
}

Status Database::Insert(Transaction* txn, TableId table,
                        std::string_view record, Rid* rid,
                        const AccessOptions& opts) {
  HeapFile* heap = catalog_->Heap(table);
  DORADB_RETURN_NOT_OK(heap->Insert(record, rid));
  // Lock the freshly allocated RID. Baseline takes the full hierarchy; DORA
  // takes only the row lock (§4.2.1). The slot cannot clash with a ghost
  // (ghost slots stay occupied until their deleter commits).
  if (opts.use_locks) {
    const Status s = lock_->LockRow(txn, table, *rid, LockMode::kX);
    if (!s.ok()) {
      (void)heap->Delete(*rid);  // roll the physical insert back
      return s;
    }
  } else if (opts.rid_lock_only) {
    const Status s = lock_->Lock(txn, LockId::Row(table, *rid), LockMode::kX);
    if (!s.ok()) {
      (void)heap->Delete(*rid);
      return s;
    }
    ThreadStats::Local().CountLock(LockCounter::kRowLevel);
  }

  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn = txn->id();
  rec.table = table;
  rec.rid = *rid;
  rec.after = std::string(record);
  txn->PinUndoLow(log_->current_lsn());  // before the append: pin <= lsn
  txn->ChainAppend(log_.get(), &rec);
  // The LSN is only known after the physical insert; stamp it now (page
  // LSNs are monotone, so racing stampers are harmless).
  (void)heap->StampPageLsn(rid->page_id, rec.lsn);

  txn->PushUndo(
      UndoRecord{UndoRecord::Kind::kInsert, table, *rid, "", rec.lsn});
  return Status::OK();
}

Status Database::Update(Transaction* txn, TableId table, const Rid& rid,
                        std::string_view record, const AccessOptions& opts) {
  if (opts.use_locks) {
    DORADB_RETURN_NOT_OK(lock_->LockRow(txn, table, rid, LockMode::kX));
  }
  HeapFile* heap = catalog_->Heap(table);

  // WAL: log first (with the before image), then apply stamped with the
  // record's LSN.
  std::string before;
  DORADB_RETURN_NOT_OK(heap->Get(rid, &before));
  LogRecord rec;
  rec.type = LogType::kUpdate;
  rec.txn = txn->id();
  rec.table = table;
  rec.rid = rid;
  rec.before = before;
  rec.after = std::string(record);
  txn->PinUndoLow(log_->current_lsn());  // before the append: pin <= lsn
  txn->ChainAppend(log_.get(), &rec);

  DORADB_RETURN_NOT_OK(heap->Update(rid, record, nullptr, rec.lsn));
  txn->PushUndo(UndoRecord{UndoRecord::Kind::kUpdate, table, rid,
                           std::move(before), rec.lsn});
  return Status::OK();
}

Status Database::Delete(Transaction* txn, TableId table, const Rid& rid,
                        const AccessOptions& opts) {
  if (opts.use_locks) {
    DORADB_RETURN_NOT_OK(lock_->LockRow(txn, table, rid, LockMode::kX));
  } else if (opts.rid_lock_only) {
    DORADB_RETURN_NOT_OK(
        lock_->Lock(txn, LockId::Row(table, rid), LockMode::kX));
    ThreadStats::Local().CountLock(LockCounter::kRowLevel);
  }
  HeapFile* heap = catalog_->Heap(table);
  std::string before;
  DORADB_RETURN_NOT_OK(heap->Get(rid, &before));

  LogRecord rec;
  rec.type = LogType::kDelete;
  rec.txn = txn->id();
  rec.table = table;
  rec.rid = rid;
  rec.before = before;
  txn->PinUndoLow(log_->current_lsn());  // before the append: pin <= lsn
  txn->ChainAppend(log_.get(), &rec);

  txn->PushUndo(UndoRecord{UndoRecord::Kind::kDelete, table, rid,
                           std::move(before), rec.lsn});
  // Ghost until commit: physically free the slot only once durable.
  const Lsn lsn = rec.lsn;
  txn->AddPostCommit([this, table, rid, lsn] {
    (void)PhysicalDelete(table, rid, lsn);
  });
  return Status::OK();
}

Status Database::PhysicalDelete(TableId table, const Rid& rid, Lsn lsn) {
  return catalog_->Heap(table)->Delete(rid, nullptr, lsn);
}

Status Database::IndexInsert(Transaction* txn, IndexId index,
                             std::string_view key, const IndexEntry& entry) {
  DORADB_RETURN_NOT_OK(catalog_->Index(index)->Insert(key, entry));
  txn->PushIndexUndo(IndexUndo{IndexUndo::Kind::kInsert, index,
                               std::string(key), entry.rid, entry.aux});
  return Status::OK();
}

Status Database::IndexRemove(Transaction* txn, IndexId index,
                             std::string_view key, const Rid& rid,
                             uint64_t aux_for_undo) {
  DORADB_RETURN_NOT_OK(catalog_->Index(index)->Remove(key, rid));
  txn->PushIndexUndo(IndexUndo{IndexUndo::Kind::kRemove, index,
                               std::string(key), rid, aux_for_undo});
  return Status::OK();
}

Status Database::Checkpoint() { return ckpt_->CheckpointGlobal(); }

Status Database::CheckpointPartition(uint32_t partition) {
  return ckpt_->CheckpointPartition(partition);
}

void Database::SimulateCrash() {
  ckpt_->Stop();  // the daemon does not survive the process
  log_->DiscardVolatileTail();
  pool_->DiscardAll();
}

void Database::SimulateKill() {
  ckpt_->Stop();
  log_->SimulateKill();
  pool_->DiscardAll();
}

}  // namespace doradb
