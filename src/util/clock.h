// Cycle-granularity timestamps for time-breakdown accounting.
//
// The paper's evaluation attributes execution time to classes such as
// "lock manager contention" (Figs. 1-3). We bracket instrumented code
// sections with rdtsc reads, which cost ~10 cycles — cheap enough to leave
// enabled in benchmark builds.

#ifndef DORADB_UTIL_CLOCK_H_
#define DORADB_UTIL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <ctime>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace doradb {

// Sleep helper shared by the log flushers and group-commit waiters.
inline void NapMicros(uint64_t us) {
  timespec ts;
  ts.tv_sec = static_cast<time_t>(us / 1000000);
  ts.tv_nsec = static_cast<long>((us % 1000000) * 1000);
  nanosleep(&ts, nullptr);
}

class Cycles {
 public:
  // Raw timestamp-counter read. Monotonic and constant-rate on any
  // post-2008 x86; falls back to steady_clock elsewhere.
  static inline uint64_t Now() {
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  // Cycles per nanosecond, calibrated once at first use.
  static double PerNanosecond() {
    static const double rate = Calibrate();
    return rate;
  }

  static double ToNanos(uint64_t cycles) {
    return static_cast<double>(cycles) / PerNanosecond();
  }

  static double ToSeconds(uint64_t cycles) { return ToNanos(cycles) * 1e-9; }

 private:
  static double Calibrate() {
#if defined(__x86_64__) || defined(__i386__)
    const auto t0 = std::chrono::steady_clock::now();
    const uint64_t c0 = Now();
    // ~10ms busy window is enough for <1% calibration error.
    while (std::chrono::steady_clock::now() - t0 <
           std::chrono::milliseconds(10)) {
    }
    const uint64_t c1 = Now();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    return static_cast<double>(c1 - c0) / ns;
#else
    return 1.0;  // steady_clock ticks are nanoseconds on Linux.
#endif
  }
};

}  // namespace doradb

#endif  // DORADB_UTIL_CLOCK_H_
