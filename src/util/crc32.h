// CRC32 (IEEE 802.3 polynomial, reflected) for log record checksums.
//
// Table-driven, no hardware dependency: the WAL must decode on any machine
// that can read the log files, so the software fallback IS the format.

#ifndef DORADB_UTIL_CRC32_H_
#define DORADB_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace doradb {

namespace detail {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace detail

// One-shot or incremental: pass the previous return value as `seed` to
// extend a running checksum.
inline uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace doradb

#endif  // DORADB_UTIL_CRC32_H_
