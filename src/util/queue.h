// Blocking multi-producer multi-consumer queue.
//
// Used for the Baseline engine's shared client-request queue (the paper's
// conventional thread-to-transaction model: any worker pulls any request)
// and for driver completion channels.

#ifndef DORADB_UTIL_QUEUE_H_
#define DORADB_UTIL_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace doradb {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  void Push(T item) {
    {
      std::lock_guard<std::mutex> g(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  // Blocks until an item is available or the queue is closed.
  // Returns nullopt only after Close() with an empty queue.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Bulk drain: block until at least one item is available (or the queue
  // is closed), then take EVERYTHING under one lock round-trip. Returns an
  // empty deque only after Close() with an empty queue. Consumers that can
  // process batches should prefer this over per-item Pop(): under load it
  // amortizes the mutex + wakeup across the whole backlog.
  std::deque<T> PopAll() {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return !items_.empty() || closed_; });
    std::deque<T> out;
    out.swap(items_);
    return out;
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> g(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> g(mu_);
    return items_.size();
  }

  void Close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> g(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace doradb

#endif  // DORADB_UTIL_QUEUE_H_
