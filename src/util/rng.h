// Random number generation for workload drivers and loaders.
//
// Includes the benchmark-specified distributions: TPC-C NURand, the TATP
// (TM1) non-uniform subscriber-id rule, Zipf (for skew experiments), and the
// TPC-C last-name syllable generator used by Payment/OrderStatus customer
// selection by name.

#ifndef DORADB_UTIL_RNG_H_
#define DORADB_UTIL_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace doradb {

// xorshift128+ — fast, good-quality 64-bit generator; one instance per
// thread (not thread-safe by design).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  uint64_t Next();

  // Uniform integer in [lo, hi], inclusive.
  uint64_t UniformInt(uint64_t lo, uint64_t hi);
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // True with probability pct/100.
  bool Percent(uint32_t pct) { return UniformInt(uint64_t{1}, 100) <= pct; }

  // TPC-C 2.1.6 NURand(A, x, y) with run-time constant C.
  uint64_t NURand(uint64_t a, uint64_t x, uint64_t y);

  // TATP non-uniform subscriber id in [1, n]: (NURand-style with the
  // benchmark's A constant chosen from the population size).
  uint64_t TatpSubscriberId(uint64_t n);

  // Random alphanumeric string with length in [min_len, max_len].
  std::string AString(size_t min_len, size_t max_len);
  // Random numeric string with length in [min_len, max_len].
  std::string NString(size_t min_len, size_t max_len);

  // TPC-C 4.3.2.3 customer last name from a number in [0, 999].
  static std::string LastName(uint32_t num);
  // Random last name for transaction input (NURand(255,0,999)).
  std::string RandomLastName(uint64_t max_cid = 999);

  // Shuffle a permutation of [0, n) (TPC-C item id permutation in loaders).
  std::vector<uint32_t> Permutation(uint32_t n);

 private:
  uint64_t s0_;
  uint64_t s1_;
  uint64_t c_nurand_;  // per-generator NURand C constant
};

// Zipf-distributed integers in [1, n] with parameter theta — used by the
// skew / load-balancing experiments (paper Appendix A.2.1).
class ZipfGenerator {
 public:
  ZipfGenerator(uint64_t n, double theta);
  uint64_t Next(Rng& rng);
  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;

  static double Zeta(uint64_t n, double theta);
};

}  // namespace doradb

#endif  // DORADB_UTIL_RNG_H_
