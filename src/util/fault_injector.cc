#include "util/fault_injector.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <cstdlib>

namespace doradb {

namespace {

FaultPlan PlanFromEnv() {
  FaultPlan plan;
  const char* op = std::getenv("DORADB_FAULT_OP");
  if (op == nullptr || *op == '\0') return plan;
  if (strcmp(op, "pwrite") == 0) {
    plan.op = FaultOp::kPwrite;
  } else if (strcmp(op, "fdatasync") == 0 || strcmp(op, "fsync") == 0) {
    plan.op = FaultOp::kFdatasync;
  } else if (strcmp(op, "open") == 0) {
    plan.op = FaultOp::kOpen;
  } else {
    return plan;  // unknown op: stay disarmed rather than fault wrongly
  }
  plan.err = EIO;
  if (const char* err = std::getenv("DORADB_FAULT_ERR")) {
    if (strcmp(err, "enospc") == 0) plan.err = ENOSPC;
  }
  if (const char* nth = std::getenv("DORADB_FAULT_NTH")) {
    const long long v = atoll(nth);
    if (v > 0) plan.nth = static_cast<uint64_t>(v);
  }
  if (const char* sticky = std::getenv("DORADB_FAULT_STICKY")) {
    plan.sticky = atoi(sticky) != 0;
  }
  if (const char* mode = std::getenv("DORADB_FAULT_MODE")) {
    if (strcmp(mode, "short") == 0) plan.mode = FaultMode::kShortWrite;
    if (strcmp(mode, "torn") == 0) plan.mode = FaultMode::kTorn;
  }
  if (const char* path = std::getenv("DORADB_FAULT_PATH")) {
    plan.path_substr = path;
  }
  return plan;
}

}  // namespace

FaultInjector::FaultInjector() {
  for (auto& c : count_) c.store(0, std::memory_order_relaxed);
  const FaultPlan env = PlanFromEnv();
  if (env.op != FaultOp::kNone) Arm(env);
}

FaultInjector& FaultInjector::Default() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  armed_.store(false, std::memory_order_release);
  plan_ = plan;
  for (auto& c : count_) c.store(0, std::memory_order_relaxed);
  injected_.store(0, std::memory_order_relaxed);
  armed_.store(plan.op != FaultOp::kNone, std::memory_order_release);
}

bool FaultInjector::ShouldFault(FaultOp op, const char* path) {
  if (!armed_.load(std::memory_order_acquire)) return false;
  if (plan_.op != op) return false;
  if (!plan_.path_substr.empty() &&
      (path == nullptr ||
       strstr(path, plan_.path_substr.c_str()) == nullptr)) {
    return false;
  }
  const uint64_t seq =
      count_[static_cast<int>(op)].fetch_add(1, std::memory_order_relaxed) + 1;
  const bool hit = plan_.sticky ? seq >= plan_.nth : seq == plan_.nth;
  if (hit) injected_.fetch_add(1, std::memory_order_relaxed);
  return hit;
}

ssize_t FaultInjector::Pwrite(int fd, const void* buf, size_t n, off_t off,
                              const char* path) {
  if (ShouldFault(FaultOp::kPwrite, path)) {
    const FaultMode mode = plan_.mode;
    if (mode == FaultMode::kShortWrite || mode == FaultMode::kTorn) {
      // Really land a prefix so the medium holds a torn record. A 1-byte
      // write has no shorter prefix: short-write mode passes it through
      // whole (a 0-byte success would spin correct retry loops).
      const size_t half = n > 1 ? n / 2 : n;
      const ssize_t w = ::pwrite(fd, buf, half, off);
      if (mode == FaultMode::kShortWrite) return w;
    }
    errno = plan_.err;
    return -1;
  }
  return ::pwrite(fd, buf, n, off);
}

int FaultInjector::Fdatasync(int fd, const char* path) {
  if (ShouldFault(FaultOp::kFdatasync, path)) {
    errno = plan_.err;
    return -1;
  }
  return ::fdatasync(fd);
}

int FaultInjector::Fsync(int fd, const char* path) {
  if (ShouldFault(FaultOp::kFdatasync, path)) {
    errno = plan_.err;
    return -1;
  }
  return ::fsync(fd);
}

int FaultInjector::Open(const char* path, int flags, mode_t mode) {
  if (ShouldFault(FaultOp::kOpen, path)) {
    errno = plan_.err;
    return -1;
  }
  return ::open(path, flags, mode);
}

}  // namespace doradb
