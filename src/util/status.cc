#include "util/status.h"

namespace doradb {

namespace {
// ToString keeps its historical CamelCase labels; the metric-suffix form
// is Status::CodeName (lowercase snake).
const char* CamelCodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kDuplicate: return "Duplicate";
    case Status::Code::kDeadlock: return "Deadlock";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kTimeout: return "Timeout";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kFull: return "Full";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kIOError: return "IOError";
    case Status::Code::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CamelCodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace doradb
