#include "util/status.h"

namespace doradb {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk: return "OK";
    case Status::Code::kNotFound: return "NotFound";
    case Status::Code::kDuplicate: return "Duplicate";
    case Status::Code::kDeadlock: return "Deadlock";
    case Status::Code::kAborted: return "Aborted";
    case Status::Code::kTimeout: return "Timeout";
    case Status::Code::kBusy: return "Busy";
    case Status::Code::kInvalidArgument: return "InvalidArgument";
    case Status::Code::kFull: return "Full";
    case Status::Code::kCorruption: return "Corruption";
    case Status::Code::kNotSupported: return "NotSupported";
    case Status::Code::kIOError: return "IOError";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace doradb
