// Status: lightweight error propagation for the storage engine.
//
// Follows the RocksDB convention: operations that can fail return a Status
// (or a value + Status out-param) rather than throwing. Transaction-abort
// conditions (deadlock, conflict) are ordinary Status codes so that the
// engine can roll back and retry without unwinding through exceptions.

#ifndef DORADB_UTIL_STATUS_H_
#define DORADB_UTIL_STATUS_H_

#include <cstdint>
#include <string>

namespace doradb {

class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,       // key / record / page absent
    kDuplicate = 2,      // unique-key violation
    kDeadlock = 3,       // lock manager chose this txn as a victim
    kAborted = 4,        // transaction aborted (user or system initiated)
    kTimeout = 5,        // lock wait timed out
    kBusy = 6,           // resource transiently unavailable
    kInvalidArgument = 7,
    kFull = 8,           // page / buffer pool out of space
    kCorruption = 9,     // integrity check failed
    kNotSupported = 10,
    kIOError = 11,
    kUnavailable = 12,   // service degraded (e.g. log media poisoned)
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Duplicate(std::string msg = "") {
    return Status(Code::kDuplicate, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Timeout(std::string msg = "") {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Full(std::string msg = "") {
    return Status(Code::kFull, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsDuplicate() const { return code_ == Code::kDuplicate; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsFull() const { return code_ == Code::kFull; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  // True for any condition that must abort the enclosing transaction.
  bool ForcesAbort() const {
    return code_ == Code::kDeadlock || code_ == Code::kAborted ||
           code_ == Code::kTimeout || code_ == Code::kCorruption;
  }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string ToString() const;

  // Stable lowercase label for the code, suitable as a metric-name suffix
  // (e.g. "txn.aborts." + s.CodeName()).
  const char* CodeName() const {
    switch (code_) {
      case Code::kOk: return "ok";
      case Code::kNotFound: return "not_found";
      case Code::kDuplicate: return "duplicate";
      case Code::kDeadlock: return "deadlock";
      case Code::kAborted: return "aborted";
      case Code::kTimeout: return "timeout";
      case Code::kBusy: return "busy";
      case Code::kInvalidArgument: return "invalid_argument";
      case Code::kFull: return "full";
      case Code::kCorruption: return "corruption";
      case Code::kNotSupported: return "not_supported";
      case Code::kIOError: return "io_error";
      case Code::kUnavailable: return "unavailable";
    }
    return "unknown";
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

// Propagate non-OK status to the caller.
#define DORADB_RETURN_NOT_OK(expr)          \
  do {                                      \
    ::doradb::Status _s = (expr);           \
    if (!_s.ok()) return _s;                \
  } while (0)

}  // namespace doradb

#endif  // DORADB_UTIL_STATUS_H_
