// FaultInjector: deterministic storage fault injection for the durability
// path.
//
// Every syscall on the durability path (segment-file WAL, pages.db,
// catalog.db) goes through the wrappers below instead of calling
// pwrite/fdatasync/open directly. With no plan armed the wrappers are a
// single relaxed atomic load plus the raw syscall — cheap enough to leave
// compiled in unconditionally, which is what makes the chaos CI job able
// to drive the production binaries.
//
// A plan picks one syscall (`op`), an errno to inject (`EIO`, `ENOSPC`,
// ...), which occurrence to hit (`nth`, 1-based, counted per-op across the
// process), whether the fault repeats (`sticky`) and how the write fails:
//  * kError      — the syscall does nothing and returns -1/errno;
//  * kShortWrite — pwrite really writes about half the buffer and returns
//                  that count (no errno): the transient partial-write case
//                  a correct caller must loop on;
//  * kTorn       — pwrite really writes about half the buffer and THEN
//                  returns -1/errno: media died mid-write, leaving a torn
//                  record on disk for recovery to trim.
// `path_substr` (optional) restricts the fault to file paths containing
// the substring, so a test can target the WAL but not the catalog.
//
// Configuration: programmatic (Arm/Reset, used by tests) or environment,
// parsed once at first use — the chaos CI knobs:
//   DORADB_FAULT_OP     pwrite | fdatasync | open
//   DORADB_FAULT_ERR    eio | enospc  (default eio)
//   DORADB_FAULT_NTH    N  (1-based occurrence; default 1)
//   DORADB_FAULT_STICKY 1  (fault every occurrence >= Nth; default one-shot)
//   DORADB_FAULT_MODE   error | short | torn  (pwrite only; default error)
//   DORADB_FAULT_PATH   substring filter on the target path
//
// Determinism: occurrences are counted with a per-op atomic, so a
// single-threaded test hits exactly the Nth call. Concurrent flushers make
// the *global* ordinal racy, which is fine for chaos runs (the property
// under test — no acked commit lost — must hold wherever the fault lands).
//
// Thread safety: Arm/Reset are for quiesced moments (test setup); the
// wrappers themselves are lock-free and safe from any thread.

#ifndef DORADB_UTIL_FAULT_INJECTOR_H_
#define DORADB_UTIL_FAULT_INJECTOR_H_

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <string>

namespace doradb {

enum class FaultOp : uint8_t { kNone = 0, kPwrite, kFdatasync, kOpen };
enum class FaultMode : uint8_t { kError = 0, kShortWrite, kTorn };

struct FaultPlan {
  FaultOp op = FaultOp::kNone;
  int err = 5;                     // EIO
  uint64_t nth = 1;                // 1-based occurrence that faults
  bool sticky = false;             // fault every occurrence >= nth
  FaultMode mode = FaultMode::kError;  // pwrite failure shape
  std::string path_substr;         // empty = any path
};

class FaultInjector {
 public:
  // Process-wide instance, like obs::MetricsRegistry::Default(). Reads
  // DORADB_FAULT_* once on first use.
  static FaultInjector& Default();

  // Replace the armed plan (op = kNone disarms) and zero the occurrence
  // counters. Call while the instrumented files are quiesced.
  void Arm(const FaultPlan& plan);
  void Reset() { Arm(FaultPlan{}); }

  // Total faults actually injected since the last Arm/Reset.
  uint64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  // Syscall wrappers. Each either injects per the armed plan or performs
  // the raw syscall. `path` is the file the fd belongs to (for the
  // path_substr filter); pass what the caller knows, "" is acceptable.
  ssize_t Pwrite(int fd, const void* buf, size_t n, off_t off,
                 const char* path);
  int Fdatasync(int fd, const char* path);
  // fsync shares the kFdatasync plan and counter (one "sync" op family).
  int Fsync(int fd, const char* path);
  int Open(const char* path, int flags, mode_t mode);

 private:
  FaultInjector();

  // Returns true when this occurrence of `op` on `path` should fault.
  bool ShouldFault(FaultOp op, const char* path);

  FaultPlan plan_;
  std::atomic<bool> armed_{false};
  std::atomic<uint64_t> count_[4];  // per-op occurrence counters
  std::atomic<uint64_t> injected_{0};
};

}  // namespace doradb

#endif  // DORADB_UTIL_FAULT_INJECTOR_H_
