// Concurrent log-bucketed latency histogram.
//
// Drivers record per-transaction latencies from many client threads; the
// benchmark harness reads counts/percentiles afterwards (Fig. 7 response
// times, Fig. 8 peak-throughput search).

#ifndef DORADB_UTIL_HISTOGRAM_H_
#define DORADB_UTIL_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace doradb {

class Histogram {
 public:
  static constexpr size_t kNumBuckets = 64;  // bucket i covers [2^i, 2^(i+1))

  Histogram() = default;

  void Record(uint64_t value_ns);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t Min() const;
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  double Mean() const;
  // Approximate percentile (p in [0,100]) via linear interpolation within
  // the containing bucket.
  uint64_t Percentile(double p) const;

  // Raw log2 bucket count (bucket i covers [2^i, 2^(i+1)); values of 0
  // land in bucket 0). The metrics snapshot copies these so windowed
  // percentiles can be computed from bucket deltas.
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void Reset();
  void Merge(const Histogram& other);

  std::string ToString() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

}  // namespace doradb

#endif  // DORADB_UTIL_HISTOGRAM_H_
