#include "util/thread_pool.h"

#include <pthread.h>
#include <sched.h>

namespace doradb {

void BindToCore(unsigned core) {
  const unsigned n = HardwareContexts();
  if (n == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(core % n, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

unsigned HardwareContexts() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadGroup::Spawn(size_t count, std::function<void(size_t)> body) {
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([body, i] { body(i); });
  }
}

void ThreadGroup::SpawnOne(std::function<void()> body) {
  threads_.emplace_back(std::move(body));
}

void ThreadGroup::Join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace doradb
