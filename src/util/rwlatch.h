// Reader-writer spin latch for physical (page / node) consistency.
//
// Latching protects the physical consistency of in-memory structures and is
// distinct from logical locking (see the paper's footnote in Section 3).
// Writer-preference keeps B+Tree structure modifications from starving.

#ifndef DORADB_UTIL_RWLATCH_H_
#define DORADB_UTIL_RWLATCH_H_

#include <atomic>
#include <cstdint>

#include "util/spinlock.h"
#include "util/sync_stats.h"

namespace doradb {

class RwLatch {
 public:
  RwLatch() = default;
  RwLatch(const RwLatch&) = delete;
  RwLatch& operator=(const RwLatch&) = delete;

  bool TryReadLock() {
    uint32_t s = state_.load(std::memory_order_relaxed);
    while ((s & kWriterBits) == 0) {
      if (state_.compare_exchange_weak(s, s + kReaderOne,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void ReadLock(TimeClass tc = TimeClass::kOtherContention) {
    if (TryReadLock()) return;
    ScopedTimeClass timer(tc);
    Backoff backoff;
    while (!TryReadLock()) backoff.Spin();
  }

  void ReadUnlock() {
    state_.fetch_sub(kReaderOne, std::memory_order_release);
  }

  bool TryWriteLock() {
    uint32_t expected = 0;
    return state_.compare_exchange_strong(expected, kWriterLocked,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void WriteLock(TimeClass tc = TimeClass::kOtherContention) {
    if (TryWriteLock()) return;
    ScopedTimeClass timer(tc);
    Backoff backoff;
    // Announce intent so new readers back off (writer preference).
    state_.fetch_or(kWriterWaiting, std::memory_order_relaxed);
    for (;;) {
      uint32_t s = state_.load(std::memory_order_relaxed);
      if ((s & ~kWriterWaiting) == 0) {
        if (state_.compare_exchange_weak(s, kWriterLocked,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
      } else {
        backoff.Spin();
        // Re-announce: another writer may have consumed the flag.
        state_.fetch_or(kWriterWaiting, std::memory_order_relaxed);
      }
    }
  }

  void WriteUnlock() { state_.store(0, std::memory_order_release); }

  bool HeldExclusive() const {
    return (state_.load(std::memory_order_relaxed) & kWriterLocked) != 0;
  }

 private:
  static constexpr uint32_t kWriterLocked = 1u;
  static constexpr uint32_t kWriterWaiting = 2u;
  static constexpr uint32_t kWriterBits = kWriterLocked | kWriterWaiting;
  static constexpr uint32_t kReaderOne = 4u;

  std::atomic<uint32_t> state_{0};
};

class ReadGuard {
 public:
  explicit ReadGuard(RwLatch& latch,
                     TimeClass tc = TimeClass::kOtherContention)
      : latch_(latch) {
    latch_.ReadLock(tc);
  }
  ~ReadGuard() { latch_.ReadUnlock(); }
  ReadGuard(const ReadGuard&) = delete;
  ReadGuard& operator=(const ReadGuard&) = delete;

 private:
  RwLatch& latch_;
};

class WriteGuard {
 public:
  explicit WriteGuard(RwLatch& latch,
                      TimeClass tc = TimeClass::kOtherContention)
      : latch_(latch) {
    latch_.WriteLock(tc);
  }
  ~WriteGuard() { latch_.WriteUnlock(); }
  WriteGuard(const WriteGuard&) = delete;
  WriteGuard& operator=(const WriteGuard&) = delete;

 private:
  RwLatch& latch_;
};

}  // namespace doradb

#endif  // DORADB_UTIL_RWLATCH_H_
