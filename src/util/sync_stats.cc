#include "util/sync_stats.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace doradb {

const char* TimeClassName(TimeClass tc) {
  switch (tc) {
    case TimeClass::kUnaccounted: return "unaccounted";
    case TimeClass::kWork: return "work";
    case TimeClass::kLockAcquire: return "lock_acquire";
    case TimeClass::kLockAcquireContention: return "lock_acquire_cont";
    case TimeClass::kLockWait: return "lock_wait";
    case TimeClass::kLockRelease: return "lock_release";
    case TimeClass::kLockReleaseContention: return "lock_release_cont";
    case TimeClass::kLockOther: return "lock_other";
    case TimeClass::kDoraLocalLock: return "dora_local_lock";
    case TimeClass::kDoraQueue: return "dora_queue";
    case TimeClass::kDoraRvp: return "dora_rvp";
    case TimeClass::kLogWork: return "log_work";
    case TimeClass::kLogContention: return "log_cont";
    case TimeClass::kBufferContention: return "buffer_cont";
    case TimeClass::kOtherContention: return "other_cont";
    case TimeClass::kClassCount: break;
  }
  return "?";
}

StatsSnapshot StatsSnapshot::operator-(const StatsSnapshot& rhs) const {
  StatsSnapshot out;
  for (size_t i = 0; i < kNumTimeClasses; ++i) {
    out.cycles[i] = cycles[i] - rhs.cycles[i];
  }
  for (size_t i = 0; i < kNumLockCounters; ++i) {
    out.lock_counts[i] = lock_counts[i] - rhs.lock_counts[i];
  }
  return out;
}

uint64_t StatsSnapshot::TotalCycles() const {
  uint64_t total = 0;
  // Exclude kUnaccounted: breakdowns are over accounted (in-engine) time.
  for (size_t i = 1; i < kNumTimeClasses; ++i) total += cycles[i];
  return total;
}

double StatsSnapshot::Fraction(TimeClass tc) const {
  const uint64_t total = TotalCycles();
  if (total == 0) return 0.0;
  return static_cast<double>(cycles[static_cast<size_t>(tc)]) /
         static_cast<double>(total);
}

std::string StatsSnapshot::ToString() const {
  std::ostringstream os;
  for (size_t i = 1; i < kNumTimeClasses; ++i) {
    if (cycles[i] == 0) continue;
    os << TimeClassName(static_cast<TimeClass>(i)) << "="
       << static_cast<uint64_t>(Cycles::ToNanos(cycles[i]) / 1000) << "us ";
  }
  os << "| row_locks=" << lock_counts[0] << " higher_locks=" << lock_counts[1]
     << " dora_locks=" << lock_counts[2];
  return os.str();
}

namespace {

struct Registry {
  std::mutex mu;
  // shared_ptr keeps accumulators alive after their thread exits so that a
  // post-run AggregateSnapshot still sees their contribution.
  std::vector<std::shared_ptr<ThreadStats>> all;

  static Registry& Get() {
    static Registry* r = new Registry();  // leaked: outlives all threads
    return *r;
  }
};

std::shared_ptr<ThreadStats> MakeRegistered() {
  auto stats = std::make_shared<ThreadStats>();
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.all.push_back(stats);
  return stats;
}

}  // namespace

const char* DurabilityCounterName(DurabilityCounter dc) {
  switch (dc) {
    case DurabilityCounter::kFsyncCalls: return "fsyncs";
    case DurabilityCounter::kBytesFlushed: return "bytes";
    case DurabilityCounter::kSegmentsSealed: return "sealed";
    case DurabilityCounter::kSegmentsUnlinked: return "unlinked";
    case DurabilityCounter::kDurabilityCount: break;
  }
  return "?";
}

namespace {

// Durability counters now live in the process-wide metrics registry under
// "durability.<stream>.<counter>"; this table maps streams to the backing
// obs::Counter pointers so the legacy DurabilityStats API stays a thin
// view over the registry (one set of numbers, two read surfaces).
struct DurabilityRegistry {
  struct CRow {
    uint32_t stream;
    std::array<obs::Counter*, kNumDurabilityCounters> counters{};
  };

  std::mutex mu;
  std::vector<CRow> rows;

  static DurabilityRegistry& Get() {
    static DurabilityRegistry* r = new DurabilityRegistry();  // leaked
    return *r;
  }

  static std::string StreamName(uint32_t stream) {
    if (stream == kPageStoreStream) return "pages";
    return "log-" + std::to_string(stream);
  }

  CRow& RowFor(uint32_t stream) {  // mu held
    for (auto& row : rows) {
      if (row.stream == stream) return row;
    }
    CRow row{stream, {}};
    for (size_t i = 0; i < kNumDurabilityCounters; ++i) {
      const auto dc = static_cast<DurabilityCounter>(i);
      const std::string name =
          "durability." + StreamName(stream) + "." + DurabilityCounterName(dc);
      const char* unit =
          dc == DurabilityCounter::kBytesFlushed ? "bytes" : "calls";
      row.counters[i] = obs::MetricsRegistry::Default().GetCounter(name, unit);
    }
    rows.push_back(row);
    return rows.back();
  }
};

}  // namespace

void DurabilityStats::Count(uint32_t stream, DurabilityCounter dc,
                            uint64_t n) {
  DurabilityRegistry& reg = DurabilityRegistry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  reg.RowFor(stream).counters[static_cast<size_t>(dc)]->Add(n);
}

std::vector<DurabilityStats::Row> DurabilityStats::Snapshot() {
  DurabilityRegistry& reg = DurabilityRegistry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  std::vector<Row> out;
  out.reserve(reg.rows.size());
  for (const auto& crow : reg.rows) {
    Row row{crow.stream, {}};
    for (size_t i = 0; i < kNumDurabilityCounters; ++i) {
      row.counts[i] = crow.counters[i]->Value();
    }
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.stream < b.stream;  // kPageStoreStream sorts last
  });
  return out;
}

void DurabilityStats::Reset() {
  DurabilityRegistry& reg = DurabilityRegistry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  // Zero the backing registry counters but forget the rows, so a snapshot
  // right after Reset is empty (the pre-migration behavior tests rely on).
  for (auto& crow : reg.rows) {
    for (auto* c : crow.counters) c->Reset();
  }
  reg.rows.clear();
}

std::string DurabilityStats::ToString() {
  std::ostringstream os;
  for (const Row& row : Snapshot()) {
    if (row.stream == kPageStoreStream) {
      os << "pages:";
    } else {
      os << "log-" << row.stream << ":";
    }
    for (size_t i = 0; i < kNumDurabilityCounters; ++i) {
      os << " " << DurabilityCounterName(static_cast<DurabilityCounter>(i))
         << "=" << row.counts[i];
    }
    os << "\n";
  }
  return os.str();
}

ThreadStats::ThreadStats() : mark_(Cycles::Now()) {}

StatsSnapshot ThreadStats::Snapshot() const {
  StatsSnapshot out;
  for (size_t i = 0; i < kNumTimeClasses; ++i) {
    out.cycles[i] = cycles_[i].load(std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kNumLockCounters; ++i) {
    out.lock_counts[i] = lock_counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void ThreadStats::Reset() {
  for (auto& c : cycles_) c.store(0, std::memory_order_relaxed);
  for (auto& c : lock_counts_) c.store(0, std::memory_order_relaxed);
  mark_ = Cycles::Now();
}

ThreadStats& ThreadStats::Local() {
  thread_local std::shared_ptr<ThreadStats> local = MakeRegistered();
  return *local;
}

StatsSnapshot ThreadStats::AggregateSnapshot() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  StatsSnapshot out;
  for (const auto& t : reg.all) {
    const StatsSnapshot s = t->Snapshot();
    for (size_t i = 0; i < kNumTimeClasses; ++i) out.cycles[i] += s.cycles[i];
    for (size_t i = 0; i < kNumLockCounters; ++i) {
      out.lock_counts[i] += s.lock_counts[i];
    }
  }
  return out;
}

void ThreadStats::ResetAll() {
  Registry& reg = Registry::Get();
  std::lock_guard<std::mutex> g(reg.mu);
  for (const auto& t : reg.all) t->Reset();
}

}  // namespace doradb
