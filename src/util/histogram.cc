#include "util/histogram.h"

#include <bit>
#include <sstream>

namespace doradb {

namespace {
size_t BucketOf(uint64_t v) {
  if (v == 0) return 0;
  return static_cast<size_t>(63 - std::countl_zero(v));
}
}  // namespace

void Histogram::Record(uint64_t value_ns) {
  buckets_[BucketOf(value_ns)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_ns, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (value_ns < cur &&
         !min_.compare_exchange_weak(cur, value_ns,
                                     std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value_ns > cur &&
         !max_.compare_exchange_weak(cur, value_ns,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

double Histogram::Mean() const {
  const uint64_t c = Count();
  return c == 0 ? 0.0 : static_cast<double>(Sum()) / static_cast<double>(c);
}

uint64_t Histogram::Percentile(double p) const {
  const uint64_t total = Count();
  if (total == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const uint64_t lo = i == 0 ? 0 : (uint64_t{1} << i);
      const uint64_t hi = (i >= 63) ? UINT64_MAX : (uint64_t{1} << (i + 1));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += in_bucket;
  }
  return Max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  count_.fetch_add(other.Count(), std::memory_order_relaxed);
  sum_.fetch_add(other.Sum(), std::memory_order_relaxed);
  const uint64_t omin = other.min_.load(std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (omin < cur &&
         !min_.compare_exchange_weak(cur, omin, std::memory_order_relaxed)) {
  }
  const uint64_t omax = other.Max();
  cur = max_.load(std::memory_order_relaxed);
  while (omax > cur &&
         !max_.compare_exchange_weak(cur, omax, std::memory_order_relaxed)) {
  }
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << Count() << " mean_us=" << Mean() / 1000.0
     << " p50_us=" << Percentile(50) / 1000.0
     << " p95_us=" << Percentile(95) / 1000.0
     << " p99_us=" << Percentile(99) / 1000.0
     << " max_us=" << static_cast<double>(Max()) / 1000.0;
  return os.str();
}

}  // namespace doradb
