// Spin latches.
//
// Shore-MT (the paper's substrate) protects lock-manager and page data
// structures with a preemption-resistant variant of the MCS queue-based
// spinlock [Johnson et al., DaMoN 2009]. We provide:
//
//  * TatasLock  — test-and-test-and-set with exponential backoff; used for
//    short critical sections (queues, counters).
//  * McsLock    — queue-based FIFO spinlock; used for lock-head latches where
//    fairness under contention matters (it is exactly the spinning on these
//    latches that Figs. 1-3 of the paper measure).
//
// Preemption resistance is approximated by escalating to sched_yield() after
// a bounded number of spins, so oversubscribed runs (offered load > 100%)
// degrade rather than livelock — preserving the paper's Fig. 6 collapse
// behaviour for the baseline without hanging the benchmark.
//
// Every slow path attributes its spin time to a caller-supplied TimeClass so
// benchmarks can reconstruct the paper's contention breakdowns.

#ifndef DORADB_UTIL_SPINLOCK_H_
#define DORADB_UTIL_SPINLOCK_H_

#include <atomic>
#include <cstdint>

#include <sched.h>
#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

#include "util/sync_stats.h"

namespace doradb {

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

// Exponential backoff with yield escalation shared by all spin loops.
class Backoff {
 public:
  void Spin() {
    if (count_ < kYieldThreshold) {
      for (uint32_t i = 0; i < (1u << (count_ < 10 ? count_ : 10)); ++i) {
        CpuRelax();
      }
      ++count_;
    } else {
      sched_yield();
    }
  }

 private:
  static constexpr uint32_t kYieldThreshold = 14;
  uint32_t count_ = 0;
};

class TatasLock {
 public:
  TatasLock() = default;
  TatasLock(const TatasLock&) = delete;
  TatasLock& operator=(const TatasLock&) = delete;

  bool TryLock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void Lock(TimeClass contention_class = TimeClass::kOtherContention) {
    if (TryLock()) return;
    ScopedTimeClass timer(contention_class);
    Backoff backoff;
    do {
      while (locked_.load(std::memory_order_relaxed)) backoff.Spin();
    } while (locked_.exchange(true, std::memory_order_acquire));
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

  bool IsLocked() const { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard for TatasLock.
class TatasGuard {
 public:
  explicit TatasGuard(TatasLock& lock,
                      TimeClass tc = TimeClass::kOtherContention)
      : lock_(lock) {
    lock_.Lock(tc);
  }
  ~TatasGuard() { lock_.Unlock(); }
  TatasGuard(const TatasGuard&) = delete;
  TatasGuard& operator=(const TatasGuard&) = delete;

 private:
  TatasLock& lock_;
};

// MCS queue-based spinlock. Each waiter spins on its own cache line, and
// hand-off is FIFO. The queue node lives in the caller's frame (see Guard);
// the protected section must not outlive the node.
class McsLock {
 public:
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  McsLock() = default;
  McsLock(const McsLock&) = delete;
  McsLock& operator=(const McsLock&) = delete;

  void Lock(QNode* node,
            TimeClass contention_class = TimeClass::kOtherContention) {
    node->next.store(nullptr, std::memory_order_relaxed);
    node->locked.store(true, std::memory_order_relaxed);
    QNode* prev = tail_.exchange(node, std::memory_order_acq_rel);
    if (prev == nullptr) return;  // uncontended
    ScopedTimeClass timer(contention_class);
    prev->next.store(node, std::memory_order_release);
    Backoff backoff;
    while (node->locked.load(std::memory_order_acquire)) backoff.Spin();
  }

  void Unlock(QNode* node) {
    QNode* succ = node->next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      QNode* expected = node;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel)) {
        return;  // no successor
      }
      // A successor is in the middle of linking itself; wait for it.
      Backoff backoff;
      while ((succ = node->next.load(std::memory_order_acquire)) == nullptr) {
        backoff.Spin();
      }
    }
    succ->locked.store(false, std::memory_order_release);
  }

  bool IsLocked() const {
    return tail_.load(std::memory_order_relaxed) != nullptr;
  }

 private:
  std::atomic<QNode*> tail_{nullptr};
};

// RAII guard owning the MCS queue node on the stack.
class McsGuard {
 public:
  explicit McsGuard(McsLock& lock, TimeClass tc = TimeClass::kOtherContention)
      : lock_(lock) {
    lock_.Lock(&node_, tc);
  }
  ~McsGuard() { lock_.Unlock(&node_); }
  McsGuard(const McsGuard&) = delete;
  McsGuard& operator=(const McsGuard&) = delete;

 private:
  McsLock& lock_;
  McsLock::QNode node_;
};

}  // namespace doradb

#endif  // DORADB_UTIL_SPINLOCK_H_
