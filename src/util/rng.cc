#include "util/rng.h"

#include <cmath>

namespace doradb {

namespace {
// splitmix64, used to spread user seeds over the full state space.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;
  c_nurand_ = SplitMix64(x);
}

uint64_t Rng::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::UniformInt(uint64_t lo, uint64_t hi) {
  return lo + Next() % (hi - lo + 1);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Next() %
                                   static_cast<uint64_t>(hi - lo + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

uint64_t Rng::NURand(uint64_t a, uint64_t x, uint64_t y) {
  const uint64_t c = c_nurand_ % (a + 1);
  return (((UniformInt(uint64_t{0}, a) | UniformInt(x, y)) + c) %
          (y - x + 1)) + x;
}

uint64_t Rng::TatpSubscriberId(uint64_t n) {
  // TATP spec: A = 65535 for n <= 1M, 1048575 for n <= 10M.
  uint64_t a;
  if (n <= 1000000) {
    a = 65535;
  } else if (n <= 10000000) {
    a = 1048575;
  } else {
    a = 2097151;
  }
  return NURand(a, 1, n);
}

std::string Rng::AString(size_t min_len, size_t max_len) {
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const size_t len = static_cast<size_t>(
      UniformInt(static_cast<uint64_t>(min_len),
                 static_cast<uint64_t>(max_len)));
  std::string out(len, ' ');
  for (size_t i = 0; i < len; ++i) out[i] = kChars[Next() % 62];
  return out;
}

std::string Rng::NString(size_t min_len, size_t max_len) {
  const size_t len = static_cast<size_t>(
      UniformInt(static_cast<uint64_t>(min_len),
                 static_cast<uint64_t>(max_len)));
  std::string out(len, '0');
  for (size_t i = 0; i < len; ++i) {
    out[i] = static_cast<char>('0' + Next() % 10);
  }
  return out;
}

std::string Rng::LastName(uint32_t num) {
  static const char* kSyllables[] = {"BAR", "OUGHT", "ABLE", "PRI", "PRES",
                                     "ESE", "ANTI",  "CALLY", "ATION", "EING"};
  std::string out;
  out += kSyllables[(num / 100) % 10];
  out += kSyllables[(num / 10) % 10];
  out += kSyllables[num % 10];
  return out;
}

std::string Rng::RandomLastName(uint64_t max_cid) {
  return LastName(static_cast<uint32_t>(NURand(255, 0, max_cid)));
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> out(n);
  for (uint32_t i = 0; i < n; ++i) out[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    const uint32_t j = static_cast<uint32_t>(Next() % i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

double ZipfGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfGenerator::Next(Rng& rng) {
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 1;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 2;
  const uint64_t v = 1 + static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v > n_ ? n_ : v;
}

}  // namespace doradb
