// Per-thread time-breakdown and lock-count accounting.
//
// Reproduces the measurement methodology of the paper's evaluation:
//  * Figs. 1(b,c), 2: wall time divided into Work / LockMgr contention /
//    LockMgr other / other contention / DORA local locking.
//  * Fig. 3: time inside the lock manager divided into Acquire / Release
//    and their contention (latch spinning) components.
//  * Fig. 5: counts of acquired locks by class (row-level / higher-level /
//    DORA thread-local).
//
// Model: every thread is, at any instant, in exactly one TimeClass. A
// ScopedTimeClass guard switches the class and restores the previous one on
// destruction, so attribution is exact and non-overlapping even when
// instrumented sections nest (e.g. a latch spin inside lock acquire).

#ifndef DORADB_UTIL_SYNC_STATS_H_
#define DORADB_UTIL_SYNC_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace doradb {

enum class TimeClass : uint8_t {
  kUnaccounted = 0,      // outside any measured region (driver code, idle)
  kWork,                 // useful transaction work
  kLockAcquire,          // centralized lock manager: grant path, uncontended
  kLockAcquireContention,// spinning on a lock-head latch during acquire
  kLockWait,             // blocked waiting for an incompatible lock
  kLockRelease,          // release path, uncontended
  kLockReleaseContention,// spinning on a lock-head latch during release
  kLockOther,            // deadlock detection, hierarchy bookkeeping
  kDoraLocalLock,        // DORA thread-local lock table operations
  kDoraQueue,            // DORA incoming/completed queue transfer + latches
  kDoraRvp,              // RVP counter updates and phase hand-off
  kLogWork,              // log buffer copy / flush work
  kLogContention,        // spinning on the log buffer latch
  kBufferContention,     // buffer pool latch spinning
  kOtherContention,      // any other instrumented latch
  kClassCount
};

const char* TimeClassName(TimeClass tc);

constexpr size_t kNumTimeClasses = static_cast<size_t>(TimeClass::kClassCount);

enum class LockCounter : uint8_t {
  kRowLevel = 0,    // centralized row (RID) locks
  kHigherLevel,     // centralized non-row locks (table / database intents)
  kDoraLocal,       // DORA thread-local (key-prefix) locks
  kCounterCount
};

constexpr size_t kNumLockCounters =
    static_cast<size_t>(LockCounter::kCounterCount);

// Snapshot of accumulated statistics (aggregated or per-thread).
struct StatsSnapshot {
  std::array<uint64_t, kNumTimeClasses> cycles{};
  std::array<uint64_t, kNumLockCounters> lock_counts{};

  StatsSnapshot operator-(const StatsSnapshot& rhs) const;
  uint64_t TotalCycles() const;
  // Fraction of total accounted time spent in `tc`.
  double Fraction(TimeClass tc) const;
  uint64_t Cycles(TimeClass tc) const {
    return cycles[static_cast<size_t>(tc)];
  }
  uint64_t Locks(LockCounter lc) const {
    return lock_counts[static_cast<size_t>(lc)];
  }
  std::string ToString() const;
};

// One accumulator per thread; registered globally so benchmarks can
// aggregate across all worker threads.
class ThreadStats {
 public:
  ThreadStats();

  // Switch the current time class, accruing elapsed cycles to the previous
  // one. Returns the previous class so callers can restore it.
  TimeClass SwitchClass(TimeClass tc) {
    const uint64_t now = Cycles::Now();
    auto& slot = cycles_[static_cast<size_t>(current_)];
    // Only the owner thread writes; relaxed store avoids an atomic RMW.
    slot.store(slot.load(std::memory_order_relaxed) + (now - mark_),
               std::memory_order_relaxed);
    mark_ = now;
    const TimeClass prev = current_;
    current_ = tc;
    return prev;
  }

  void CountLock(LockCounter lc, uint64_t n = 1) {
    auto& slot = lock_counts_[static_cast<size_t>(lc)];
    slot.store(slot.load(std::memory_order_relaxed) + n,
               std::memory_order_relaxed);
  }

  // Flush the in-progress interval into the accumulator (so snapshots taken
  // from other threads see up-to-date numbers modulo the current interval).
  void Flush() { SwitchClass(current_); }

  StatsSnapshot Snapshot() const;
  void Reset();

  // The calling thread's accumulator (created and registered on first use).
  static ThreadStats& Local();

  // Aggregate across every thread that ever registered.
  static StatsSnapshot AggregateSnapshot();
  // Zero all registered accumulators. Call only while workers are quiescent.
  static void ResetAll();

 private:
  std::array<std::atomic<uint64_t>, kNumTimeClasses> cycles_{};
  std::array<std::atomic<uint64_t>, kNumLockCounters> lock_counts_{};
  TimeClass current_ = TimeClass::kUnaccounted;
  uint64_t mark_ = 0;
};

// ---- durability accounting (file-backed log segments + page store) ----

enum class DurabilityCounter : uint8_t {
  kFsyncCalls = 0,      // fsync/fdatasync system calls issued
  kBytesFlushed,        // log bytes written to segment files
  kSegmentsSealed,      // segments closed to further appends
  kSegmentsUnlinked,    // sealed segments deleted by checkpoint truncation
  kDurabilityCount
};

constexpr size_t kNumDurabilityCounters =
    static_cast<size_t>(DurabilityCounter::kDurabilityCount);

const char* DurabilityCounterName(DurabilityCounter dc);

// Stream id used by the file-backed page store (pages.db); log streams use
// their partition index (the central backend is stream 0).
constexpr uint32_t kPageStoreStream = 0xFFFFFFFFu;

// Global per-stream durability counters. Streams are log partitions plus
// the page store; counting happens on flush/checkpoint paths (rare next to
// appends), so one mutex-guarded table is cheap and keeps snapshots exact.
class DurabilityStats {
 public:
  struct Row {
    uint32_t stream;  // partition index, or kPageStoreStream
    std::array<uint64_t, kNumDurabilityCounters> counts{};
  };

  static void Count(uint32_t stream, DurabilityCounter dc, uint64_t n = 1);
  // All streams that ever counted, partitions first (ascending), the page
  // store last.
  static std::vector<Row> Snapshot();
  static void Reset();
  // One line per stream: "plog-0: fsyncs=12 bytes=4096 sealed=1 unlinked=0".
  static std::string ToString();
};

// RAII guard: enter a time class, restore the previous class on scope exit.
class ScopedTimeClass {
 public:
  explicit ScopedTimeClass(TimeClass tc)
      : stats_(ThreadStats::Local()), prev_(stats_.SwitchClass(tc)) {}
  ~ScopedTimeClass() { stats_.SwitchClass(prev_); }

  ScopedTimeClass(const ScopedTimeClass&) = delete;
  ScopedTimeClass& operator=(const ScopedTimeClass&) = delete;

 private:
  ThreadStats& stats_;
  TimeClass prev_;
};

}  // namespace doradb

#endif  // DORADB_UTIL_SYNC_STATS_H_
