// Worker-thread helpers: named thread groups and core binding.

#ifndef DORADB_UTIL_THREAD_POOL_H_
#define DORADB_UTIL_THREAD_POOL_H_

#include <functional>
#include <string>
#include <thread>
#include <vector>

namespace doradb {

// Pin the calling thread to the given core, modulo the machine's core count.
// Used to emulate the paper's fixed executor-to-context binding.
void BindToCore(unsigned core);

// Number of hardware contexts visible to the process (the paper's "64
// OS-visible CPUs" axis; offered load is expressed relative to this).
unsigned HardwareContexts();

// A group of threads all running `body(worker_index)`. Join() waits for all.
class ThreadGroup {
 public:
  ThreadGroup() = default;
  ~ThreadGroup() { Join(); }
  ThreadGroup(const ThreadGroup&) = delete;
  ThreadGroup& operator=(const ThreadGroup&) = delete;

  void Spawn(size_t count, std::function<void(size_t)> body);
  void SpawnOne(std::function<void()> body);
  void Join();
  size_t Size() const { return threads_.size(); }

 private:
  std::vector<std::thread> threads_;
};

}  // namespace doradb

#endif  // DORADB_UTIL_THREAD_POOL_H_
