// Intrusive lock-free multi-producer single-consumer queue with batch
// draining and futex-style parking.
//
// This is the executor inbox substrate (paper §4.2.3 / QueCC): producers
// enqueue with a single CAS on one word; the consumer takes the ENTIRE
// list with one exchange and processes it as a batch, so the per-message
// cost is one uncontended atomic on each side and the consumer wakes at
// most once per batch instead of once per message.
//
// Parking protocol: the head word holds either nullptr (empty), a node
// pointer (non-empty), or a sentinel kParked meaning "the consumer is
// asleep". Only the consumer installs the sentinel, and only after a drain
// came up empty; the producer that replaces the sentinel with a node is
// the unique waker, so an enqueue onto a busy consumer never issues a
// syscall. The sleep itself is an eventcount on a separate 32-bit word
// (futex on Linux, std::atomic wait elsewhere) so timed parks are
// possible; every payload hand-off rides the release/acquire pair on the
// head word, never the futex.
//
// Ordering: draining reverses the push (Treiber) order, so the returned
// chain is oldest-first — the full enqueue linearization order, which in
// particular preserves per-producer FIFO.

#ifndef DORADB_UTIL_MPSC_QUEUE_H_
#define DORADB_UTIL_MPSC_QUEUE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <ctime>
#else
#include <thread>
#endif

namespace doradb {

// Base class for anything enqueued on an MpscQueue. The queue owns `next`
// between Push and the drain that returns the node; the caller owns the
// node (and may immediately re-push it) afterwards.
struct MpscNode {
  MpscNode* next = nullptr;
};

namespace detail {

#if defined(__linux__)
inline void FutexWait(std::atomic<uint32_t>* word, uint32_t expected,
                      int64_t timeout_us) {
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (timeout_us >= 0) {
    ts.tv_sec = static_cast<time_t>(timeout_us / 1000000);
    ts.tv_nsec = static_cast<long>((timeout_us % 1000000) * 1000);
    tsp = &ts;
  }
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAIT_PRIVATE,
            expected, tsp, nullptr, 0);
}

inline void FutexWake(std::atomic<uint32_t>* word) {
  ::syscall(SYS_futex, reinterpret_cast<uint32_t*>(word), FUTEX_WAKE_PRIVATE,
            1, nullptr, nullptr, 0);
}
#else
inline void FutexWait(std::atomic<uint32_t>* word, uint32_t expected,
                      int64_t timeout_us) {
  if (timeout_us < 0) {
    word->wait(expected, std::memory_order_acquire);
  } else if (word->load(std::memory_order_acquire) == expected) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        timeout_us < 500 ? timeout_us : int64_t{500}));
  }
}

inline void FutexWake(std::atomic<uint32_t>* word) { word->notify_one(); }
#endif

inline uint64_t SteadyMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace detail

class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Enqueue `n` (any thread). Returns true iff the consumer was parked and
  // this push woke it — i.e. true means a syscall was spent.
  bool Push(MpscNode* n) {
    uintptr_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      if (h == kParked) {
        n->next = nullptr;
        if (head_.compare_exchange_weak(h, reinterpret_cast<uintptr_t>(n),
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
          // Unique waker: only one producer can swap out the sentinel.
          seq_.fetch_add(1, std::memory_order_release);
          detail::FutexWake(&seq_);
          wakeups_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      } else {
        n->next = reinterpret_cast<MpscNode*>(h);
        if (head_.compare_exchange_weak(h, reinterpret_cast<uintptr_t>(n),
                                        std::memory_order_release,
                                        std::memory_order_relaxed)) {
          return false;
        }
      }
    }
  }

  // Consumer only: take everything, oldest-first. Returns nullptr when
  // empty. Never blocks.
  MpscNode* TryDrain() {
    if (head_.load(std::memory_order_relaxed) == kEmpty) return nullptr;
    uintptr_t h = head_.exchange(kEmpty, std::memory_order_acquire);
    if (h == kEmpty || h == kParked) return nullptr;
    // Reverse the Treiber chain into enqueue (FIFO) order.
    MpscNode* node = reinterpret_cast<MpscNode*>(h);
    MpscNode* out = nullptr;
    while (node != nullptr) {
      MpscNode* next = node->next;
      node->next = out;
      out = node;
      node = next;
    }
    return out;
  }

  // Consumer only: sleep until a producer enqueues, then drain. A negative
  // timeout sleeps indefinitely; otherwise returns nullptr after
  // `timeout_us` with nothing arrived.
  MpscNode* Park(int64_t timeout_us) {
    uintptr_t expected = kEmpty;
    if (!head_.compare_exchange_strong(expected, kParked,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
      return TryDrain();  // raced with a push: work arrived
    }
    const bool bounded = timeout_us >= 0;
    const uint64_t deadline =
        bounded ? detail::SteadyMicros() + static_cast<uint64_t>(timeout_us)
                : 0;
    for (;;) {
      // Eventcount order matters: read seq BEFORE re-checking the head, so
      // a producer's post-swap increment always differs from `s` and the
      // futex wait falls through instead of missing the wake.
      const uint32_t s = seq_.load(std::memory_order_acquire);
      if (head_.load(std::memory_order_acquire) != kParked) break;
      int64_t remain = -1;
      if (bounded) {
        const uint64_t now = detail::SteadyMicros();
        if (now >= deadline) {
          uintptr_t parked = kParked;
          if (head_.compare_exchange_strong(parked, kEmpty,
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed)) {
            return nullptr;  // retracted the sentinel: clean timeout
          }
          break;  // a producer just swapped a node in
        }
        remain = static_cast<int64_t>(deadline - now);
      }
      detail::FutexWait(&seq_, s, remain);
    }
    return TryDrain();
  }

  // Producer-side syscall count (pushes that found the consumer parked).
  uint64_t wakeups() const {
    return wakeups_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr uintptr_t kEmpty = 0;
  static constexpr uintptr_t kParked = 1;  // never a valid node address

  std::atomic<uintptr_t> head_{kEmpty};
  std::atomic<uint32_t> seq_{0};  // eventcount word the consumer sleeps on
  std::atomic<uint64_t> wakeups_{0};
};

}  // namespace doradb

#endif  // DORADB_UTIL_MPSC_QUEUE_H_
