// Deadlock detection over an explicit waits-for graph.
//
// Every blocked transaction records the set of transactions it waits for
// (snapshotted under the lock-head latch). Waiters poll the detector while
// blocked; a waiter that finds itself on a cycle self-aborts with
// Status::Deadlock, releasing its locks and breaking the cycle. A timeout
// backstop catches anything detection misses (e.g. edges that became stale
// mid-walk). Detection work is charged to TimeClass::kLockOther — the
// "Other" slice of the paper's Fig. 3 lock-manager breakdown.

#ifndef DORADB_LOCK_DEADLOCK_H_
#define DORADB_LOCK_DEADLOCK_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "storage/types.h"
#include "util/spinlock.h"

namespace doradb {

class Transaction;

// Sharded registry of active transactions, so the detector can resolve
// TxnId -> Transaction* to read waits-for edges.
class ActiveTxnTable {
 public:
  static constexpr size_t kShards = 64;

  void Register(Transaction* txn);
  void Unregister(TxnId id);
  // May return nullptr if the transaction already finished.
  Transaction* Find(TxnId id) const;
  size_t Size() const;

 private:
  struct Shard {
    mutable TatasLock lock;
    std::unordered_map<TxnId, Transaction*> map;
  };
  Shard& ShardFor(TxnId id) { return shards_[id % kShards]; }
  const Shard& ShardFor(TxnId id) const { return shards_[id % kShards]; }

  Shard shards_[kShards];
};

class DeadlockDetector {
 public:
  explicit DeadlockDetector(ActiveTxnTable* txns) : txns_(txns) {}

  // DFS from `self` over waits-for edges; true if `self` is on a cycle.
  bool WouldDeadlock(TxnId self) const;

  uint64_t cycles_found() const {
    return cycles_found_.load(std::memory_order_relaxed);
  }

 private:
  ActiveTxnTable* const txns_;
  mutable std::atomic<uint64_t> cycles_found_{0};
};

}  // namespace doradb

#endif  // DORADB_LOCK_DEADLOCK_H_
