#include "lock/deadlock.h"

#include "txn/transaction.h"

namespace doradb {

void ActiveTxnTable::Register(Transaction* txn) {
  Shard& s = ShardFor(txn->id());
  TatasGuard g(s.lock, TimeClass::kLockOther);
  s.map[txn->id()] = txn;
}

void ActiveTxnTable::Unregister(TxnId id) {
  Shard& s = ShardFor(id);
  TatasGuard g(s.lock, TimeClass::kLockOther);
  s.map.erase(id);
}

Transaction* ActiveTxnTable::Find(TxnId id) const {
  const Shard& s = ShardFor(id);
  TatasGuard g(s.lock, TimeClass::kLockOther);
  auto it = s.map.find(id);
  return it == s.map.end() ? nullptr : it->second;
}

size_t ActiveTxnTable::Size() const {
  size_t n = 0;
  for (const auto& s : shards_) {
    TatasGuard g(s.lock, TimeClass::kLockOther);
    n += s.map.size();
  }
  return n;
}

bool DeadlockDetector::WouldDeadlock(TxnId self) const {
  ScopedTimeClass timer(TimeClass::kLockOther);
  // Iterative DFS; the graph is tiny (bounded by blocked transactions).
  std::vector<TxnId> stack;
  std::vector<TxnId> visited;
  {
    Transaction* t = txns_->Find(self);
    if (t == nullptr) return false;
    for (TxnId h : t->WaitsForSnapshot()) stack.push_back(h);
  }
  while (!stack.empty()) {
    const TxnId cur = stack.back();
    stack.pop_back();
    if (cur == self) {
      cycles_found_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    bool seen = false;
    for (TxnId v : visited) {
      if (v == cur) {
        seen = true;
        break;
      }
    }
    if (seen) continue;
    visited.push_back(cur);
    Transaction* t = txns_->Find(cur);
    if (t == nullptr) continue;  // already finished; edge is stale
    for (TxnId h : t->WaitsForSnapshot()) stack.push_back(h);
  }
  return false;
}

}  // namespace doradb
