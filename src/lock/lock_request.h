// Lock request node, owned by its transaction, linked into a LockHead's
// request list (the structure whose traversal cost the paper identifies as
// growing with the number of active transactions, §3).

#ifndef DORADB_LOCK_LOCK_REQUEST_H_
#define DORADB_LOCK_LOCK_REQUEST_H_

#include <atomic>

#include "lock/lock_id.h"
#include "lock/lock_mode.h"

namespace doradb {

class Transaction;
struct LockHead;

struct LockRequest {
  Transaction* txn = nullptr;
  LockHead* head = nullptr;
  LockId lock_id{};
  // Mode currently granted to this request (kNL while purely waiting).
  LockMode granted_mode = LockMode::kNL;
  // Mode the request wants; > granted_mode while an upgrade is pending.
  LockMode target_mode = LockMode::kNL;
  // Wait protocol: the releasing thread sets granted; the waiter spins/naps
  // on it. The deadlock detector may set victim instead.
  std::atomic<bool> granted{false};
  std::atomic<bool> victim{false};

  LockRequest* next = nullptr;
  LockRequest* prev = nullptr;

  bool Waiting() const { return target_mode != granted_mode; }
};

}  // namespace doradb

#endif  // DORADB_LOCK_LOCK_REQUEST_H_
