#include "lock/lock_mode.h"

namespace doradb {

namespace {
// Rows/columns indexed by LockMode value; kNL compatible with everything.
constexpr bool kCompat[6][6] = {
    //            NL     IS     IX     S      SIX    X
    /* NL  */ {true, true, true, true, true, true},
    /* IS  */ {true, true, true, true, true, false},
    /* IX  */ {true, true, true, false, false, false},
    /* S   */ {true, true, false, true, false, false},
    /* SIX */ {true, true, false, false, false, false},
    /* X   */ {true, false, false, false, false, false},
};

constexpr LockMode kSup[6][6] = {
    /* NL  */ {LockMode::kNL, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* IS  */ {LockMode::kIS, LockMode::kIS, LockMode::kIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* IX  */ {LockMode::kIX, LockMode::kIX, LockMode::kIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX},
    /* S   */ {LockMode::kS, LockMode::kS, LockMode::kSIX, LockMode::kS,
               LockMode::kSIX, LockMode::kX},
    /* SIX */ {LockMode::kSIX, LockMode::kSIX, LockMode::kSIX, LockMode::kSIX,
               LockMode::kSIX, LockMode::kX},
    /* X   */ {LockMode::kX, LockMode::kX, LockMode::kX, LockMode::kX,
               LockMode::kX, LockMode::kX},
};
}  // namespace

bool Compatible(LockMode a, LockMode b) {
  return kCompat[static_cast<int>(a)][static_cast<int>(b)];
}

LockMode Supremum(LockMode a, LockMode b) {
  return kSup[static_cast<int>(a)][static_cast<int>(b)];
}

bool Covers(LockMode held, LockMode wanted) {
  return Supremum(held, wanted) == held;
}

LockMode IntentionFor(LockMode mode) {
  switch (mode) {
    case LockMode::kNL:
      return LockMode::kNL;
    case LockMode::kIS:
    case LockMode::kS:
      return LockMode::kIS;
    case LockMode::kIX:
    case LockMode::kSIX:
    case LockMode::kX:
      return LockMode::kIX;
  }
  return LockMode::kIX;
}

const char* LockModeName(LockMode m) {
  switch (m) {
    case LockMode::kNL: return "NL";
    case LockMode::kIS: return "IS";
    case LockMode::kIX: return "IX";
    case LockMode::kS: return "S";
    case LockMode::kSIX: return "SIX";
    case LockMode::kX: return "X";
  }
  return "?";
}

}  // namespace doradb
