// Hierarchical lock modes (Gray's granularity-of-locks lattice).
//
// The Baseline engine acquires intention locks on tables automatically
// before row locks, exactly as the paper describes Shore-MT's lock manager
// (§3): "When a transaction attempts to acquire a lock the lock manager
// first ensures the transaction holds higher-level intention locks,
// requesting them automatically if needed."

#ifndef DORADB_LOCK_LOCK_MODE_H_
#define DORADB_LOCK_LOCK_MODE_H_

#include <cstdint>

namespace doradb {

enum class LockMode : uint8_t {
  kNL = 0,   // not locked
  kIS = 1,   // intention shared
  kIX = 2,   // intention exclusive
  kS = 3,    // shared
  kSIX = 4,  // shared + intention exclusive
  kX = 5,    // exclusive
};

// True if a and b may be held simultaneously by different transactions.
bool Compatible(LockMode a, LockMode b);

// Least upper bound: the weakest mode that covers both (upgrade target).
LockMode Supremum(LockMode a, LockMode b);

// True if `held` already covers `wanted` (no new request needed).
bool Covers(LockMode held, LockMode wanted);

// Intention mode to hold on the parent when locking a child with `mode`.
LockMode IntentionFor(LockMode mode);

const char* LockModeName(LockMode m);

}  // namespace doradb

#endif  // DORADB_LOCK_LOCK_MODE_H_
