// Identifier of a lockable resource in the table → row hierarchy.

#ifndef DORADB_LOCK_LOCK_ID_H_
#define DORADB_LOCK_LOCK_ID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "storage/types.h"

namespace doradb {

enum class LockLevel : uint8_t {
  kTable = 0,
  kRow = 1,
};

struct LockId {
  LockLevel level;
  TableId table;
  uint64_t row;  // Rid::Pack() for kRow; 0 for kTable

  static LockId Table(TableId t) { return LockId{LockLevel::kTable, t, 0}; }
  static LockId Row(TableId t, const Rid& rid) {
    return LockId{LockLevel::kRow, t, rid.Pack()};
  }

  bool operator==(const LockId& o) const {
    return level == o.level && table == o.table && row == o.row;
  }

  std::string ToString() const {
    if (level == LockLevel::kTable) {
      return "table:" + std::to_string(table);
    }
    return "row:" + std::to_string(table) + ":" +
           Rid::Unpack(row).ToString();
  }
};

struct LockIdHash {
  size_t operator()(const LockId& id) const {
    uint64_t h = static_cast<uint64_t>(id.level) |
                 (static_cast<uint64_t>(id.table) << 8) | (id.row << 24);
    // splitmix-style finalizer
    h ^= h >> 30;
    h *= 0xBF58476D1CE4E5B9ull;
    h ^= h >> 27;
    h *= 0x94D049BB133111EBull;
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace doradb

#endif  // DORADB_LOCK_LOCK_ID_H_
