// Centralized hierarchical lock manager, modeled on Shore-MT's (paper §3):
//
//   "In Shore-MT every logical lock is a data structure that contains the
//    lock's mode, the head of a linked list of lock requests (granted or
//    pending), and a latch. When a transaction attempts to acquire a lock
//    the lock manager first ensures the transaction holds higher-level
//    intention locks, requesting them automatically if needed. ... the
//    manager probes a hash table to find the desired lock. Once the lock is
//    located, it is latched and the new request is appended to the request
//    list. ... At transaction completion, the transaction releases the
//    locks one by one starting from the youngest."
//
// The latch on each lock head is a queue-based MCS spinlock; time spent
// spinning on it is charged to kLockAcquireContention/kLockReleaseContention
// so the benchmarks can reproduce the paper's Figs. 1-3 breakdowns. Grants
// are FIFO (upgrades jump the queue); deadlocks are resolved by waiter-side
// waits-for-graph detection with a timeout backstop.

#ifndef DORADB_LOCK_LOCK_MANAGER_H_
#define DORADB_LOCK_LOCK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "lock/deadlock.h"
#include "lock/lock_id.h"
#include "lock/lock_mode.h"
#include "lock/lock_request.h"
#include "storage/types.h"
#include "util/spinlock.h"
#include "util/status.h"

namespace doradb {

class Transaction;

// One logical lock: group mode is derivable from the granted requests; the
// request list is FIFO-ordered.
struct LockHead {
  LockId id{};
  McsLock latch;
  LockRequest* first = nullptr;
  LockRequest* last = nullptr;
  bool dead = false;       // unlinked from its bucket; retry lookup
  LockHead* bucket_next = nullptr;
};

class LockManager {
 public:
  struct Options {
    uint64_t wait_timeout_us = 2000000;   // blocked-wait backstop
    uint64_t detect_interval_us = 500;    // deadlock-poll period while blocked
    bool deadlock_detection = true;
  };

  explicit LockManager(Options options);
  LockManager() : LockManager(Options()) {}
  ~LockManager();
  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  // Transactions must be registered before locking (deadlock detection
  // resolves TxnId -> Transaction* through this table).
  void RegisterTxn(Transaction* txn) { txns_.Register(txn); }
  void UnregisterTxn(TxnId id) { txns_.Unregister(id); }

  // Acquire (or upgrade to) `mode` on an arbitrary resource.
  Status Lock(Transaction* txn, const LockId& id, LockMode mode);

  // Table lock; counted as "higher-level" for the Fig. 5 lock census.
  Status LockTable(Transaction* txn, TableId table, LockMode mode);

  // Row lock; automatically ensures the intention lock on the table first.
  Status LockRow(Transaction* txn, TableId table, const Rid& rid,
                 LockMode mode);

  // Strict 2PL: release everything, youngest first (paper §3).
  void ReleaseAll(Transaction* txn);

  // Current group mode of a resource (kNL if unlocked); test/debug hook.
  LockMode GroupModeOf(const LockId& id);

  const DeadlockDetector& detector() const { return detector_; }
  uint64_t acquires() const {
    return acquires_.load(std::memory_order_relaxed);
  }
  uint64_t waits() const { return waits_.load(std::memory_order_relaxed); }
  uint64_t deadlocks() const {
    return deadlocks_.load(std::memory_order_relaxed);
  }
  uint64_t timeouts() const {
    return timeouts_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kNumBuckets = 1 << 13;

  struct Bucket {
    TatasLock latch;
    LockHead* heads = nullptr;      // live heads (chained via bucket_next)
    LockHead* free_list = nullptr;  // dead heads available for reuse
  };

  Bucket& BucketFor(const LockId& id) {
    return buckets_[LockIdHash()(id) & (kNumBuckets - 1)];
  }

  // Find or create the head for `id` and return it latched (caller owns
  // `qn` until it unlocks). Handles the lookup/dead race internally.
  LockHead* LatchHead(const LockId& id, McsLock::QNode* qn, TimeClass tc);

  // True if `mode` is compatible with every granted request except `self`.
  static bool CompatibleWithOthers(LockHead* head, const LockRequest* self,
                                   LockMode mode);
  static bool AnyWaitersBefore(LockHead* head, const LockRequest* self);
  static void Unlink(LockHead* head, LockRequest* req);

  // Grant any waiters whose requests are now compatible (FIFO; pending
  // upgrades first). Called with the head latched.
  static void GrantWaiters(LockHead* head);

  // Snapshot of txns blocking `self` (for the waits-for graph).
  static std::vector<TxnId> BlockersOf(LockHead* head,
                                       const LockRequest* self);

  // Blocked-wait loop: polls grant/victim flags, runs deadlock detection,
  // enforces the timeout. Returns OK / Deadlock / Timeout.
  Status WaitForGrant(Transaction* txn, LockRequest* req);

  // Try to garbage-collect a (probably) empty head.
  void MaybeReapHead(const LockId& id);

  const Options options_;
  std::vector<Bucket> buckets_;
  ActiveTxnTable txns_;
  DeadlockDetector detector_;

  std::atomic<uint64_t> acquires_{0};
  std::atomic<uint64_t> waits_{0};
  std::atomic<uint64_t> deadlocks_{0};
  std::atomic<uint64_t> timeouts_{0};
};

}  // namespace doradb

#endif  // DORADB_LOCK_LOCK_MANAGER_H_
