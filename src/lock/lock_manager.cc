#include "lock/lock_manager.h"

#include "txn/transaction.h"
#include "util/clock.h"

namespace doradb {

LockManager::LockManager(Options options)
    : options_(options), buckets_(kNumBuckets), detector_(&txns_) {}

LockManager::~LockManager() {
  for (Bucket& b : buckets_) {
    LockHead* h = b.heads;
    while (h != nullptr) {
      LockHead* next = h->bucket_next;
      delete h;
      h = next;
    }
    h = b.free_list;
    while (h != nullptr) {
      LockHead* next = h->bucket_next;
      delete h;
      h = next;
    }
  }
}

LockHead* LockManager::LatchHead(const LockId& id, McsLock::QNode* qn,
                                 TimeClass tc) {
  Bucket& bucket = BucketFor(id);
  for (;;) {
    LockHead* head = nullptr;
    {
      TatasGuard g(bucket.latch, tc);
      for (LockHead* h = bucket.heads; h != nullptr; h = h->bucket_next) {
        if (h->id == id) {
          head = h;
          break;
        }
      }
      if (head == nullptr) {
        if (bucket.free_list != nullptr) {
          head = bucket.free_list;
          bucket.free_list = head->bucket_next;
          // Initialize under the head latch: late spinners from the head's
          // previous life may still be queued on it.
          McsLock::QNode init_qn;
          head->latch.Lock(&init_qn, tc);
          head->id = id;
          head->dead = false;
          head->first = head->last = nullptr;
          head->latch.Unlock(&init_qn);
        } else {
          head = new LockHead();
          head->id = id;
        }
        head->bucket_next = bucket.heads;
        bucket.heads = head;
      }
    }
    head->latch.Lock(qn, tc);
    if (!head->dead && head->id == id) return head;
    head->latch.Unlock(qn);  // reaped (and possibly reused); retry lookup
  }
}

bool LockManager::CompatibleWithOthers(LockHead* head,
                                       const LockRequest* self,
                                       LockMode mode) {
  for (LockRequest* q = head->first; q != nullptr; q = q->next) {
    if (q == self || q->granted_mode == LockMode::kNL) continue;
    if (!Compatible(mode, q->granted_mode)) return false;
  }
  return true;
}

bool LockManager::AnyWaitersBefore(LockHead* head, const LockRequest* self) {
  for (LockRequest* q = head->first; q != nullptr; q = q->next) {
    if (q == self) continue;
    if (q->Waiting()) return true;
  }
  return false;
}

void LockManager::Unlink(LockHead* head, LockRequest* req) {
  if (req->prev != nullptr) {
    req->prev->next = req->next;
  } else {
    head->first = req->next;
  }
  if (req->next != nullptr) {
    req->next->prev = req->prev;
  } else {
    head->last = req->prev;
  }
  req->next = req->prev = nullptr;
  req->granted_mode = LockMode::kNL;
  req->target_mode = LockMode::kNL;
}

void LockManager::GrantWaiters(LockHead* head) {
  // Pass 1: pending upgrades jump the queue (they already hold a weaker
  // mode; waiting behind new arrivals could deadlock them).
  for (LockRequest* q = head->first; q != nullptr; q = q->next) {
    if (!q->Waiting() || q->granted_mode == LockMode::kNL) continue;
    if (CompatibleWithOthers(head, q, q->target_mode)) {
      q->granted_mode = q->target_mode;
      q->granted.store(true, std::memory_order_release);
    }
  }
  // Pass 2: FIFO grants; the first ungrantable waiter is a barrier.
  for (LockRequest* q = head->first; q != nullptr; q = q->next) {
    if (!q->Waiting()) continue;
    if (!CompatibleWithOthers(head, q, q->target_mode)) break;
    q->granted_mode = q->target_mode;
    q->granted.store(true, std::memory_order_release);
  }
}

std::vector<TxnId> LockManager::BlockersOf(LockHead* head,
                                           const LockRequest* self) {
  std::vector<TxnId> out;
  for (LockRequest* q = head->first; q != nullptr; q = q->next) {
    if (q == self) continue;
    const bool holds_incompatible =
        q->granted_mode != LockMode::kNL &&
        !Compatible(self->target_mode, q->granted_mode);
    // Waiters queued ahead of us will be granted first; if their target
    // conflicts with ours they also block us.
    bool waits_ahead_incompatible = false;
    if (q->Waiting() && !Compatible(self->target_mode, q->target_mode)) {
      for (LockRequest* p = head->first; p != self && p != nullptr;
           p = p->next) {
        if (p == q) {
          waits_ahead_incompatible = true;
          break;
        }
      }
    }
    if (holds_incompatible || waits_ahead_incompatible) {
      out.push_back(q->txn->id());
    }
  }
  return out;
}

Status LockManager::WaitForGrant(Transaction* txn, LockRequest* req) {
  ScopedTimeClass timer(TimeClass::kLockWait);
  const uint64_t start = Cycles::Now();
  const double per_us = Cycles::PerNanosecond() * 1000.0;
  const uint64_t timeout_cycles =
      static_cast<uint64_t>(options_.wait_timeout_us * per_us);
  const uint64_t detect_cycles =
      static_cast<uint64_t>(options_.detect_interval_us * per_us);
  uint64_t next_detect = start + detect_cycles;
  uint32_t spins = 0;
  for (;;) {
    if (req->granted.load(std::memory_order_acquire)) return Status::OK();
    if (req->victim.load(std::memory_order_acquire)) {
      return Status::Deadlock("chosen as deadlock victim");
    }
    const uint64_t now = Cycles::Now();
    if (now - start > timeout_cycles) {
      return Status::Timeout("lock wait timeout");
    }
    if (options_.deadlock_detection && now > next_detect) {
      if (detector_.WouldDeadlock(txn->id())) {
        return Status::Deadlock("waits-for cycle detected");
      }
      next_detect = now + detect_cycles;
    }
    if (spins < 64) {
      CpuRelax();
      ++spins;
    } else {
      NapMicros(20);  // blocked: stay off the CPU, the paper's systems block
    }
  }
}

Status LockManager::Lock(Transaction* txn, const LockId& id, LockMode mode) {
  ScopedTimeClass timer(TimeClass::kLockAcquire);
  LockRequest* existing = txn->FindHeld(id);
  if (existing != nullptr && Covers(existing->granted_mode, mode)) {
    return Status::OK();
  }
  const LockMode target =
      existing != nullptr ? Supremum(existing->granted_mode, mode) : mode;

  McsLock::QNode qn;
  LockHead* head = LatchHead(id, &qn, TimeClass::kLockAcquireContention);
  acquires_.fetch_add(1, std::memory_order_relaxed);

  LockRequest* req;
  bool immediate = false;
  if (existing != nullptr) {
    req = existing;
    req->target_mode = target;
    if (CompatibleWithOthers(head, req, target)) {
      req->granted_mode = target;
      req->granted.store(true, std::memory_order_release);
      immediate = true;
    } else {
      req->granted.store(false, std::memory_order_relaxed);
    }
  } else {
    req = txn->NewRequest();
    req->txn = txn;
    req->head = head;
    req->lock_id = id;
    req->granted_mode = LockMode::kNL;
    req->target_mode = target;
    req->granted.store(false, std::memory_order_relaxed);
    req->victim.store(false, std::memory_order_relaxed);
    req->prev = head->last;
    req->next = nullptr;
    if (head->last != nullptr) {
      head->last->next = req;
    } else {
      head->first = req;
    }
    head->last = req;
    if (!AnyWaitersBefore(head, req) &&
        CompatibleWithOthers(head, req, target)) {
      req->granted_mode = target;
      req->granted.store(true, std::memory_order_release);
      immediate = true;
    }
  }

  std::vector<TxnId> blockers;
  if (!immediate) blockers = BlockersOf(head, req);
  head->latch.Unlock(&qn);

  if (immediate) {
    if (existing == nullptr) txn->PushHeld(id, req);
    return Status::OK();
  }

  waits_.fetch_add(1, std::memory_order_relaxed);
  txn->SetWaitsFor(std::move(blockers));
  const Status ws = WaitForGrant(txn, req);
  txn->ClearWaitsFor();
  if (ws.ok()) {
    if (existing == nullptr) txn->PushHeld(id, req);
    return Status::OK();
  }

  // Give up: unlink (or abandon the upgrade) under the head latch.
  McsLock::QNode qn2;
  head->latch.Lock(&qn2, TimeClass::kLockAcquireContention);
  if (req->granted.load(std::memory_order_acquire)) {
    // Granted in the race window before we re-latched; accept it.
    head->latch.Unlock(&qn2);
    if (existing == nullptr) txn->PushHeld(id, req);
    return Status::OK();
  }
  if (req->granted_mode == LockMode::kNL) {
    Unlink(head, req);
  } else {
    req->target_mode = req->granted_mode;  // keep the weaker held mode
  }
  GrantWaiters(head);  // our departure may unblock the queue
  head->latch.Unlock(&qn2);
  if (ws.IsDeadlock()) {
    deadlocks_.fetch_add(1, std::memory_order_relaxed);
  } else {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
  }
  return ws;
}

Status LockManager::LockTable(Transaction* txn, TableId table,
                              LockMode mode) {
  const LockId id = LockId::Table(table);
  LockRequest* existing = txn->FindHeld(id);
  if (existing != nullptr && Covers(existing->granted_mode, mode)) {
    return Status::OK();  // covered by the transaction's lock cache
  }
  DORADB_RETURN_NOT_OK(Lock(txn, id, mode));
  ThreadStats::Local().CountLock(LockCounter::kHigherLevel);
  return Status::OK();
}

Status LockManager::LockRow(Transaction* txn, TableId table, const Rid& rid,
                            LockMode mode) {
  DORADB_RETURN_NOT_OK(LockTable(txn, table, IntentionFor(mode)));
  const LockId id = LockId::Row(table, rid);
  LockRequest* existing = txn->FindHeld(id);
  if (existing != nullptr && Covers(existing->granted_mode, mode)) {
    return Status::OK();
  }
  DORADB_RETURN_NOT_OK(Lock(txn, id, mode));
  ThreadStats::Local().CountLock(LockCounter::kRowLevel);
  return Status::OK();
}

void LockManager::ReleaseAll(Transaction* txn) {
  ScopedTimeClass timer(TimeClass::kLockRelease);
  const auto held = txn->TakeHeldLocks();
  // Youngest-first release order, as in Shore-MT (§3).
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    LockRequest* req = it->req;
    LockHead* head = req->head;
    McsLock::QNode qn;
    head->latch.Lock(&qn, TimeClass::kLockReleaseContention);
    Unlink(head, req);
    GrantWaiters(head);
    const bool empty = head->first == nullptr;
    head->latch.Unlock(&qn);
    if (empty) MaybeReapHead(it->id);
  }
}

void LockManager::MaybeReapHead(const LockId& id) {
  Bucket& bucket = BucketFor(id);
  TatasGuard g(bucket.latch, TimeClass::kLockReleaseContention);
  LockHead* prev = nullptr;
  LockHead* head = bucket.heads;
  while (head != nullptr && !(head->id == id)) {
    prev = head;
    head = head->bucket_next;
  }
  if (head == nullptr) return;
  McsLock::QNode qn;
  head->latch.Lock(&qn, TimeClass::kLockReleaseContention);
  if (head->first == nullptr && !head->dead) {
    head->dead = true;
    if (prev != nullptr) {
      prev->bucket_next = head->bucket_next;
    } else {
      bucket.heads = head->bucket_next;
    }
    head->bucket_next = bucket.free_list;
    bucket.free_list = head;
  }
  head->latch.Unlock(&qn);
}

LockMode LockManager::GroupModeOf(const LockId& id) {
  Bucket& bucket = BucketFor(id);
  TatasGuard g(bucket.latch, TimeClass::kLockOther);
  for (LockHead* h = bucket.heads; h != nullptr; h = h->bucket_next) {
    if (!(h->id == id)) continue;
    McsLock::QNode qn;
    h->latch.Lock(&qn, TimeClass::kLockOther);
    LockMode mode = LockMode::kNL;
    for (LockRequest* q = h->first; q != nullptr; q = q->next) {
      mode = Supremum(mode, q->granted_mode);
    }
    h->latch.Unlock(&qn);
    return mode;
  }
  return LockMode::kNL;
}

}  // namespace doradb
