// PartitionedLogManager: the plog facade — one LogPartition per DORA
// executor behind the LogBackend surface, so TxnManager, BufferPool, and
// Recovery run unchanged against either backend.
//
// Append path: a thread appends to its bound partition (DORA executors
// bind 1:1 via BindThisThread; unbound threads get a sticky round-robin
// partition on first use). The only shared write is the GsnClock
// fetch_add — the §5.4 log-buffer latch convoy is gone by construction.
//
// Durability: flushed_lsn() is the *global* stable horizon
//     H = min over partitions p of watermark(p),
// i.e. the GSN below which every partition has persisted everything it
// hosts. WaitFlushed(gsn) triggers flushes on lagging partitions until
// H >= gsn. Because commit acks gate on H, and GSNs are issued in real-time
// order, an acked commit can never depend on an unacked one — this is the
// property that makes DORA's early lock release safe: a dependent
// transaction's commit record always carries a larger GSN and therefore
// cannot become durable-acked before its predecessor's.
//
// Recovery: ReadStable() decodes every partition stream (each tolerating
// its own torn tail), computes the recovery horizon
//     H' = min over p of max(watermark(p), last decodable GSN of p),
// drops records above H', and merges the rest by GSN. The result is a
// single totally-ordered stream containing *all* records with GSN <= H' —
// exactly the committed prefix the central log would expose — so
// RecoveryDriver runs unmodified. A crash (DiscardVolatileTail) also
// truncates every stable tail to H', as a restart would, so repeated
// crash/recover cycles replay the same prefix.

#ifndef DORADB_PLOG_PARTITIONED_LOG_MANAGER_H_
#define DORADB_PLOG_PARTITIONED_LOG_MANAGER_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "log/log_backend.h"
#include "log/log_manager.h"
#include "plog/gsn_clock.h"
#include "plog/log_partition.h"

namespace doradb {
namespace plog {

class PartitionedLogManager final : public LogBackend {
 public:
  struct Options {
    uint32_t num_partitions = 4;
    // Flush cadence / synchronous mode, shared with the central backend so
    // benchmarks can A/B them under identical settings.
    LogManager::Options log;
    // Non-empty: back each partition's stable stream with segment files
    // under `<data_dir>/plog-<i>` (see log/segment_file.h). Existing
    // segments are adopted at construction — the cold-start path — and the
    // GSN clock resumes past the highest recovered claim.
    std::string data_dir;
    size_t segment_target_bytes = 1 << 20;
  };

  explicit PartitionedLogManager(Options options);
  ~PartitionedLogManager() override;
  PartitionedLogManager(const PartitionedLogManager&) = delete;
  PartitionedLogManager& operator=(const PartitionedLogManager&) = delete;

  Lsn Append(LogRecord* rec) override;
  Lsn AppendBulk(LogRecord* const* recs, size_t n) override;
  Status WaitFlushed(Lsn lsn) override;
  Status FlushTo(Lsn lsn) override { return WaitFlushed(lsn); }
  Status WaitFlushedFrom(uint32_t partition_hint, Lsn lsn) override;

  Lsn flushed_lsn() const override;
  Lsn current_lsn() const override { return clock_.last_issued(); }

  void DiscardVolatileTail() override;
  void SimulateKill() override;
  std::vector<LogRecord> ReadStable() const override;

  void ReclaimStableBelow(Lsn point) override;
  void ReclaimPartitionBelow(uint32_t partition, Lsn point) override;
  uint64_t reclaimed_bytes() const override;

  uint64_t appends() const override;
  uint64_t flushes() const override;
  uint64_t idle_syncs_skipped() const override;
  size_t stable_size() const override;
  size_t PartitionStableSize(uint32_t partition) const override {
    return partitions_[partition % partitions_.size()]->stable_size();
  }
  size_t segment_files() const override;
  PageId recovered_max_page_id() const override;

  void BindThisThread(uint32_t hint) override;
  uint32_t CurrentPartition() const override;
  uint32_t num_partitions() const override {
    return static_cast<uint32_t>(partitions_.size());
  }

  LogPartition* partition(uint32_t i) { return partitions_[i].get(); }
  // Flush one partition only (tests drive skewed flush progress with it).
  void FlushPartition(uint32_t i) { partitions_[i]->Flush(); }

 private:
  void FlusherLoop(uint32_t index, uint32_t stride);
  // This thread's partition index (binding it round-robin on first use).
  uint32_t LocalIndex() const;

  const Options options_;
  const uint64_t instance_id_;  // distinguishes tls bindings across managers
  GsnClock clock_;
  std::vector<std::unique_ptr<LogPartition>> partitions_;

  mutable std::atomic<uint32_t> next_unbound_{0};  // sticky round-robin

  std::atomic<bool> stop_{false};
  // One per partition, capped at the core count (each sweeps a slice).
  std::vector<std::thread> flushers_;
};

}  // namespace plog
}  // namespace doradb

#endif  // DORADB_PLOG_PARTITIONED_LOG_MANAGER_H_
