// LogPartition: one partition of the plog — a private latched buffer, a
// private stable stream (in memory or segment files, see
// log/log_storage.h), and a durability watermark.
//
// An executor bound to this partition appends here without ever touching
// another partition's latch; with a 1:1 executor/partition binding the
// latch is uncontended and TimeClass::kLogContention drops to ~zero.
//
// Watermark invariant: every record this partition hosts with
// GSN <= watermark() is in the stable stream. The watermark advances on
// every flush to the clock's last_issued value read while the (drained)
// buffer latch is held — any later append of this partition must draw a
// strictly larger GSN, so the claim stays true even for an idle partition,
// which is what keeps one quiet partition from capping the global
// recovery horizon. With a file-backed stream the watermark is persisted
// (Sync) before it is advertised, so the invariant — and therefore every
// commit acknowledgement gated on it — holds across process lifetimes.

#ifndef DORADB_PLOG_LOG_PARTITION_H_
#define DORADB_PLOG_LOG_PARTITION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "log/log_record.h"
#include "log/log_storage.h"
#include "plog/gsn_clock.h"
#include "util/spinlock.h"

namespace doradb {
namespace plog {

class LogPartition {
 public:
  // `storage` nullptr selects the in-memory medium (the seed behaviour).
  LogPartition(GsnClock* clock, std::unique_ptr<LogStorage> storage)
      : clock_(clock),
        stable_(storage != nullptr
                    ? std::move(storage)
                    : std::make_unique<MemoryLogStorage>()) {
    buffer_.reserve(1 << 18);
    // Born poisoned (open-time media failure): reads/recovery still work,
    // but the watermark will never advance.
    if (stable_->poisoned()) {
      poisoned_.store(true, std::memory_order_release);
    }
  }
  explicit LogPartition(GsnClock* clock) : LogPartition(clock, nullptr) {}
  LogPartition(const LogPartition&) = delete;
  LogPartition& operator=(const LogPartition&) = delete;

  // Stamp `rec` with a fresh GSN and buffer it. Returns the GSN.
  Lsn Append(LogRecord* rec);

  // Stamp and buffer `n` records under ONE buffer-latch reservation —
  // the per-record latch/unlatch cost of the commit hot path paid once
  // per batch. GSNs are drawn consecutively inside the critical section
  // (no pre-reservation, no staleness), so the buffer stays in GSN order
  // and every Flush watermark claim holds unchanged. Returns the last
  // GSN assigned, or kInvalidLsn when n == 0.
  Lsn AppendBulk(LogRecord* const* recs, size_t n);

  // Move buffered bytes to the stable stream, make them durable, and
  // advance the watermark.
  //
  // `force_watermark` distinguishes the two callers. Waiters (commit
  // acks, WaitFlushed, shutdown) pass true — the watermark must advance
  // now, whatever it costs. The periodic flusher passes false: an IDLE
  // file-backed partition (nothing appended, only the global GSN horizon
  // moved) may then skip the watermark-only header write + fdatasync for
  // up to idle_sync_skip_ticks consecutive ticks. The in-memory watermark
  // only ever advances after the claim is persisted, so the skip trades a
  // bounded horizon lag (waiters force through it on demand) for not
  // fsyncing every quiet partition on every tick — it can never
  // un-acknowledge a commit.
  void Flush(bool force_watermark = true);

  // All records of this partition with GSN <= watermark() are stable.
  Lsn watermark() const { return watermark_.load(std::memory_order_acquire); }

  // True once the stable stream latched a persistent I/O failure (failed
  // fsync or exhausted write retries). The watermark is frozen: it can
  // never advance again, so any wait gating on a GSN above it must fail
  // Unavailable instead of spinning.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

  // Cold-start (file-backed stream recovered from a previous lifetime):
  // derive the partition's durability claim — the larger of the persisted
  // watermark and the last decodable GSN — set the watermark to it, and
  // return it so the facade can advance the shared clock past it.
  Lsn RecoverFromStorage();

  // Crash simulation: drop buffered records and return this partition's
  // durability claim — the GSN through which it is guaranteed to hold
  // every record it ever hosted. If nothing was lost (empty buffer, clean
  // stable stream) that is the clock's last issued GSN; otherwise it is
  // the last decodable stable GSN, because the stable stream is a prefix
  // of the partition's append stream and every loss is a suffix. The
  // facade takes the min across partitions and truncates to it.
  Lsn DiscardVolatileAndClaim();

  // Kill simulation (harsher than a crash): drop buffered records and
  // freeze the partition — no truncation, no further flushes, the stable
  // stream stays exactly as the "dead process" left it (torn tails, stale
  // watermark headers and all). Only meaningful for file-backed streams
  // that a second lifetime will reopen.
  void Kill();

  // Restart truncation: drop every stable record with GSN > `horizon`
  // (plus any torn bytes) and raise the watermark to the horizon, so a
  // later crash/recover cycle sees a globally consistent prefix.
  void TruncateStableTo(Lsn horizon);

  // Checkpoint truncation (the other end): reclaim every stable record
  // with GSN < `point`. The checkpoint coordinator vouches that those
  // records are reflected in the disk image and that no live transaction
  // can still need them for undo. The memory medium drops the exact byte
  // prefix; segment files seal and unlink whole segments whose max GSN
  // sits below the point — either way the surviving stream remains a
  // decodable GSN-ordered suffix of the append stream.
  void ReclaimStableBelow(Lsn point);
  uint64_t reclaimed_bytes() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // Decode the stable stream. Returns records in GSN order; if `tail` is
  // non-null it is set OK for a clean stream, or to a Corruption status
  // naming the segment file and byte offset of the first torn/corrupt
  // record — in which case the partition's effective horizon is the last
  // decoded GSN, not watermark().
  std::vector<LogRecord> ReadStable(Status* tail) const;

  // Test hook: tear `bytes` off the stable tail, simulating a partial
  // last write to this partition's log file.
  void TearStableTail(size_t bytes);

  // Test hook: flip one stable byte, simulating media corruption in the
  // middle of the stream (the per-record CRC must catch it).
  void FlipStableByte(size_t index);

  // Test hook: crash mid-flush — move only the first `bytes` bytes of the
  // volatile buffer to the stable stream (possibly ending mid-record,
  // i.e. a torn tail), drop the rest, and do NOT advance the watermark,
  // exactly as an interrupted flush would leave the partition.
  void PartialFlushTorn(size_t bytes);

  // Consecutive-tick budget for skipping idle watermark-only syncs.
  void set_idle_sync_skip_ticks(uint32_t n) { idle_skip_limit_ = n; }

  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  // Watermark-only header fdatasyncs elided on idle periodic flushes.
  uint64_t idle_syncs_skipped() const {
    return idle_syncs_skipped_.load(std::memory_order_relaxed);
  }
  size_t stable_size() const;
  size_t segment_count() const;
  PageId recovered_max_page_id() const {
    return stable_->recovered_max_page_id();
  }
  // Last decodable GSN found by the storage's open scan (0 when none).
  Lsn recovered_last_gsn() const { return stable_->recovered_last_lsn(); }

 private:
  GsnClock* const clock_;

  TatasLock buffer_latch_;       // guards buffer_, last stamp, GSN stamping
  std::vector<uint8_t> buffer_;  // volatile tail, records in GSN order
  Lsn buffer_last_gsn_ = 0;      // highest GSN currently in buffer_

  mutable std::mutex stable_mu_;  // serializes flushes + stable reads
  const std::unique_ptr<LogStorage> stable_;
  std::atomic<Lsn> watermark_{0};  // written only under stable_mu_
  bool killed_ = false;            // under stable_mu_
  std::atomic<bool> poisoned_{false};  // set under stable_mu_, one-way

  uint32_t idle_skip_limit_ = 0;  // 0 = never skip
  uint32_t idle_skips_ = 0;       // consecutive skips so far (under stable_mu_)

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> reclaimed_{0};
  std::atomic<uint64_t> idle_syncs_skipped_{0};
};

}  // namespace plog
}  // namespace doradb

#endif  // DORADB_PLOG_LOG_PARTITION_H_
