// LogPartition: one partition of the plog — a private latched buffer, a
// private stable region, and a durability watermark.
//
// An executor bound to this partition appends here without ever touching
// another partition's latch; with a 1:1 executor/partition binding the
// latch is uncontended and TimeClass::kLogContention drops to ~zero.
//
// Watermark invariant: every record this partition hosts with
// GSN <= watermark() is in the stable region. The watermark advances on
// every flush to the clock's last_issued value read while the (drained)
// buffer latch is held — any later append of this partition must draw a
// strictly larger GSN, so the claim stays true even for an idle partition,
// which is what keeps one quiet partition from capping the global
// recovery horizon.

#ifndef DORADB_PLOG_LOG_PARTITION_H_
#define DORADB_PLOG_LOG_PARTITION_H_

#include <atomic>
#include <mutex>
#include <vector>

#include "log/log_record.h"
#include "plog/gsn_clock.h"
#include "util/spinlock.h"

namespace doradb {
namespace plog {

class LogPartition {
 public:
  explicit LogPartition(GsnClock* clock) : clock_(clock) {
    buffer_.reserve(1 << 18);
    stable_.reserve(1 << 20);
  }
  LogPartition(const LogPartition&) = delete;
  LogPartition& operator=(const LogPartition&) = delete;

  // Stamp `rec` with a fresh GSN and buffer it. Returns the GSN.
  Lsn Append(LogRecord* rec);

  // Move buffered bytes to the stable region and advance the watermark.
  void Flush();

  // All records of this partition with GSN <= watermark() are stable.
  Lsn watermark() const { return watermark_.load(std::memory_order_acquire); }

  // Crash simulation: drop buffered records and return this partition's
  // durability claim — the GSN through which it is guaranteed to hold
  // every record it ever hosted. If nothing was lost (empty buffer, clean
  // stable stream) that is the clock's last issued GSN; otherwise it is
  // the last decodable stable GSN, because the stable region is a prefix
  // of the partition's append stream and every loss is a suffix. The
  // facade takes the min across partitions and truncates to it.
  Lsn DiscardVolatileAndClaim();

  // Restart truncation: drop every stable record with GSN > `horizon`
  // (plus any torn bytes) and raise the watermark to the horizon, so a
  // later crash/recover cycle sees a globally consistent prefix.
  void TruncateStableTo(Lsn horizon);

  // Checkpoint truncation (the other end): reclaim every stable record
  // with GSN < `point`. The checkpoint coordinator vouches that those
  // records are reflected in the disk image and that no live transaction
  // can still need them for undo. Whole records only — the surviving
  // stream remains a decodable GSN-ordered suffix of the append stream.
  void ReclaimStableBelow(Lsn point);
  uint64_t reclaimed_bytes() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // Decode the stable region. Returns records in GSN order; sets `*clean`
  // to false if a torn tail truncated the stream, in which case the
  // partition's effective horizon is the last decoded GSN, not watermark().
  std::vector<LogRecord> ReadStable(bool* clean) const;

  // Test hook: tear `bytes` off the stable tail, simulating a partial
  // last write to this partition's log file.
  void TearStableTail(size_t bytes);

  // Test hook: flip one stable byte, simulating media corruption in the
  // middle of the stream (the per-record CRC must catch it).
  void FlipStableByte(size_t index);

  // Test hook: crash mid-flush — move only the first `bytes` bytes of the
  // volatile buffer to the stable region (possibly ending mid-record,
  // i.e. a torn tail), drop the rest, and do NOT advance the watermark,
  // exactly as an interrupted flush would leave the partition.
  void PartialFlushTorn(size_t bytes);

  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }
  size_t stable_size() const;

 private:
  GsnClock* const clock_;

  TatasLock buffer_latch_;       // guards buffer_ and GSN stamping
  std::vector<uint8_t> buffer_;  // volatile tail, records in GSN order

  mutable std::mutex stable_mu_;  // serializes flushes + stable reads
  std::vector<uint8_t> stable_;
  std::atomic<Lsn> watermark_{0};  // written only under stable_mu_

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace plog
}  // namespace doradb

#endif  // DORADB_PLOG_LOG_PARTITION_H_
