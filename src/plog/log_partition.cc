#include "plog/log_partition.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/clock.h"

namespace doradb {
namespace plog {

Lsn LogPartition::Append(LogRecord* rec) {
  Lsn gsn;
  {
    TatasGuard g(buffer_latch_, TimeClass::kLogContention);
    ScopedTimeClass timer(TimeClass::kLogWork);
    // Stamping under the latch keeps this partition's buffer in GSN order
    // and lets Flush() read a safe watermark from the drained buffer.
    gsn = clock_->Next();
    rec->lsn = gsn;
    rec->SerializeTo(&buffer_);
    buffer_last_gsn_ = gsn;
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return gsn;
}

Lsn LogPartition::AppendBulk(LogRecord* const* recs, size_t n) {
  if (n == 0) return kInvalidLsn;
  Lsn last = kInvalidLsn;
  {
    TatasGuard g(buffer_latch_, TimeClass::kLogContention);
    ScopedTimeClass timer(TimeClass::kLogWork);
    for (size_t i = 0; i < n; ++i) {
      const Lsn gsn = clock_->Next();
      recs[i]->lsn = gsn;
      recs[i]->SerializeTo(&buffer_);
      last = gsn;
    }
    buffer_last_gsn_ = last;
  }
  appends_.fetch_add(n, std::memory_order_relaxed);
  if (obs::MetricsEnabled()) {
    static obs::Counter* c = obs::MetricsRegistry::Default().GetCounter(
        "log.bulk_reservations", "batches");
    c->Add();
  }
  return last;
}

void LogPartition::Flush(bool force_watermark) {
  // Histogram records happen after stable_mu_ drops: commit acks gate on
  // this mutex, so any cycles spent inside it (including the rdtsc pair)
  // stretch the serialized flush section for every waiter. fsync timing
  // is only taken on durable media — on the in-memory medium Sync() is a
  // no-op and timing it would just measure the clock.
  size_t flushed_bytes = 0;
  uint64_t sync_ns = 0;
  bool synced = false;
  const bool metrics = obs::MetricsEnabled();
  {
    std::lock_guard<std::mutex> g(stable_mu_);
    if (killed_ || poisoned_.load(std::memory_order_relaxed)) return;
    std::vector<uint8_t> pending;
    Lsn horizon, batch_gsn;
    {
      TatasGuard b(buffer_latch_, TimeClass::kLogContention);
      pending.swap(buffer_);
      batch_gsn = buffer_last_gsn_;
      // Buffer is empty and the latch blocks new stamps: every future record
      // of this partition gets a GSN > horizon.
      horizon = clock_->last_issued();
    }
    if (!pending.empty()) {
      ScopedTimeClass timer(TimeClass::kLogWork);
      if (!stable_->AppendBatch(pending.data(), pending.size(), batch_gsn)
               .ok()) {
        // Persistent write failure (the storage latched itself poisoned):
        // the watermark freezes here and waiters fail Unavailable.
        poisoned_.store(true, std::memory_order_release);
        return;
      }
      flushes_.fetch_add(1, std::memory_order_relaxed);
      flushed_bytes = pending.size();
    }
    if (horizon > watermark_.load(std::memory_order_relaxed)) {
      // Idle watermark-only advance on a durable medium: the header write +
      // fdatasync buys no local durability (no new records), only a fresher
      // persisted claim for cold restart. Periodic flushes may defer it for
      // a bounded run of ticks; the watermark then stays put, so any waiter
      // gating on it will come back with force_watermark and pay the sync.
      if (pending.empty() && !force_watermark && stable_->durable() &&
          idle_skips_ < idle_skip_limit_) {
        ++idle_skips_;
        idle_syncs_skipped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      // Durability before advertisement: commit acks gate on the watermark,
      // so it must be persisted (data + claim, one fsync) before it moves.
      ScopedTimeClass timer(TimeClass::kLogWork);
      const bool time_sync = metrics && stable_->durable();
      const uint64_t t0 = time_sync ? Cycles::Now() : 0;
      if (!stable_->Sync(horizon).ok()) {
        // fsyncgate rule: one failed durability point freezes the
        // watermark permanently — never re-ack over a failed fsync.
        poisoned_.store(true, std::memory_order_release);
        return;
      }
      if (time_sync) {
        sync_ns = static_cast<uint64_t>(Cycles::ToNanos(Cycles::Now() - t0));
        synced = true;
      }
      watermark_.store(horizon, std::memory_order_release);
    }
    idle_skips_ = 0;
  }
  if (metrics && flushed_bytes > 0) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "log.group_commit_bytes", "bytes");
    h->Record(flushed_bytes);
  }
  if (synced) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "log.fsync_ns", "ns");
    h->Record(sync_ns);
  }
}

Lsn LogPartition::RecoverFromStorage() {
  std::lock_guard<std::mutex> g(stable_mu_);
  // Two independently valid claims, both found by the storage's open
  // scan: the persisted watermark (covers idle stretches — the partition
  // hosted nothing above the last record when it was written) and the
  // last decodable GSN (the stable stream is a prefix of the append
  // stream, so everything hosted at or below it is present).
  const Lsn claim = std::max(stable_->recovered_watermark(),
                             stable_->recovered_last_lsn());
  if (claim > watermark_.load(std::memory_order_relaxed)) {
    watermark_.store(claim, std::memory_order_release);
  }
  return claim;
}

Lsn LogPartition::DiscardVolatileAndClaim() {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  const bool lost_buffered = !buffer_.empty();
  buffer_.clear();
  Status tail;
  std::vector<LogRecord> recs = stable_->Decode(&tail);
  const Lsn last = recs.empty() ? 0 : recs.back().lsn;
  const bool torn = !tail.ok();
  if (lost_buffered || torn) {
    // Losses are a suffix of the stream and every lost GSN exceeds the
    // watermark, so the partition still vouches for the larger of the two.
    return std::max(last, watermark_.load(std::memory_order_relaxed));
  }
  // Nothing of this partition was lost: it cannot constrain the horizon,
  // and any future append draws a GSN beyond last_issued.
  return clock_->last_issued();
}

void LogPartition::Kill() {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  buffer_.clear();
  killed_ = true;
}

void LogPartition::TruncateStableTo(Lsn horizon) {
  std::lock_guard<std::mutex> g(stable_mu_);
  stable_->TruncateTo(horizon);
  if (horizon > watermark_.load(std::memory_order_relaxed)) {
    watermark_.store(horizon, std::memory_order_release);
  }
}

std::vector<LogRecord> LogPartition::ReadStable(Status* tail) const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->Decode(tail);
}

void LogPartition::ReclaimStableBelow(Lsn point) {
  std::lock_guard<std::mutex> g(stable_mu_);
  reclaimed_.fetch_add(stable_->ReclaimBelow(point),
                       std::memory_order_relaxed);
}

void LogPartition::FlipStableByte(size_t index) {
  std::lock_guard<std::mutex> g(stable_mu_);
  stable_->FlipByte(index);
}

void LogPartition::PartialFlushTorn(size_t bytes) {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  bytes = std::min(bytes, buffer_.size());
  // kInvalidLsn batch GSN: the receiving segment may hold a torn record,
  // so it must never be unlinked on the strength of a known max GSN.
  (void)stable_->AppendBatch(buffer_.data(), bytes, kInvalidLsn);
  buffer_.clear();
}

void LogPartition::TearStableTail(size_t bytes) {
  std::lock_guard<std::mutex> g(stable_mu_);
  stable_->TearTail(bytes);
}

size_t LogPartition::stable_size() const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->size();
}

size_t LogPartition::segment_count() const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->segment_count();
}

}  // namespace plog
}  // namespace doradb
