#include "plog/log_partition.h"

#include <algorithm>

namespace doradb {
namespace plog {

Lsn LogPartition::Append(LogRecord* rec) {
  Lsn gsn;
  {
    TatasGuard g(buffer_latch_, TimeClass::kLogContention);
    ScopedTimeClass timer(TimeClass::kLogWork);
    // Stamping under the latch keeps this partition's buffer in GSN order
    // and lets Flush() read a safe watermark from the drained buffer.
    gsn = clock_->Next();
    rec->lsn = gsn;
    rec->SerializeTo(&buffer_);
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  return gsn;
}

void LogPartition::Flush() {
  std::lock_guard<std::mutex> g(stable_mu_);
  std::vector<uint8_t> pending;
  Lsn horizon;
  {
    TatasGuard b(buffer_latch_, TimeClass::kLogContention);
    pending.swap(buffer_);
    // Buffer is empty and the latch blocks new stamps: every future record
    // of this partition gets a GSN > horizon.
    horizon = clock_->last_issued();
  }
  if (!pending.empty()) {
    ScopedTimeClass timer(TimeClass::kLogWork);
    stable_.insert(stable_.end(), pending.begin(), pending.end());
    flushes_.fetch_add(1, std::memory_order_relaxed);
  }
  if (horizon > watermark_.load(std::memory_order_relaxed)) {
    watermark_.store(horizon, std::memory_order_release);
  }
}

Lsn LogPartition::DiscardVolatileAndClaim() {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  const bool lost_buffered = !buffer_.empty();
  buffer_.clear();
  size_t off = 0;
  LogRecord rec;
  Lsn last = 0;
  while (LogRecord::DeserializeFrom(stable_, &off, &rec)) last = rec.lsn;
  const bool torn = off != stable_.size();
  if (lost_buffered || torn) {
    // Losses are a suffix of the stream and every lost GSN exceeds the
    // watermark, so the partition still vouches for the larger of the two.
    return std::max(last, watermark_.load(std::memory_order_relaxed));
  }
  // Nothing of this partition was lost: it cannot constrain the horizon,
  // and any future append draws a GSN beyond last_issued.
  return clock_->last_issued();
}

void LogPartition::TruncateStableTo(Lsn horizon) {
  std::lock_guard<std::mutex> g(stable_mu_);
  size_t keep = 0, off = 0;
  LogRecord rec;
  // The stream is GSN-ordered, so the survivors are a byte prefix.
  while (LogRecord::DeserializeFrom(stable_, &off, &rec)) {
    if (rec.lsn > horizon) break;
    keep = off;
  }
  stable_.resize(keep);
  if (horizon > watermark_.load(std::memory_order_relaxed)) {
    watermark_.store(horizon, std::memory_order_release);
  }
}

std::vector<LogRecord> LogPartition::ReadStable(bool* clean) const {
  std::lock_guard<std::mutex> g(stable_mu_);
  std::vector<LogRecord> out;
  size_t off = 0;
  LogRecord rec;
  while (LogRecord::DeserializeFrom(stable_, &off, &rec)) {
    out.push_back(rec);
  }
  if (clean != nullptr) *clean = (off == stable_.size());
  return out;
}

void LogPartition::ReclaimStableBelow(Lsn point) {
  std::lock_guard<std::mutex> g(stable_mu_);
  reclaimed_.fetch_add(ReclaimLogPrefixBelow(&stable_, point),
                       std::memory_order_relaxed);
}

void LogPartition::FlipStableByte(size_t index) {
  std::lock_guard<std::mutex> g(stable_mu_);
  if (index < stable_.size()) stable_[index] ^= 0xFF;
}

void LogPartition::PartialFlushTorn(size_t bytes) {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  bytes = std::min(bytes, buffer_.size());
  stable_.insert(stable_.end(), buffer_.begin(), buffer_.begin() + bytes);
  buffer_.clear();
}

void LogPartition::TearStableTail(size_t bytes) {
  std::lock_guard<std::mutex> g(stable_mu_);
  stable_.resize(stable_.size() - std::min(bytes, stable_.size()));
}

size_t LogPartition::stable_size() const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_.size();
}

}  // namespace plog
}  // namespace doradb
