// GsnClock: the global sequence number authority of the partitioned log.
//
// Every log record, regardless of which partition it lands in, is stamped
// with a GSN drawn from this single atomic counter. GSNs give the merged
// multi-partition log a total order that embeds every per-transaction
// prev_lsn chain and every per-page update order, so recovery can merge
// the partition streams by GSN and replay exactly as if there had been one
// log (cf. the queue-oriented WAL designs descending from Shore-MT's
// Aether line).
//
// The fetch_add is the only cross-partition synchronization on the append
// path — one uncontended cache line versus the central log's latch held
// across the full record memcpy.

#ifndef DORADB_PLOG_GSN_CLOCK_H_
#define DORADB_PLOG_GSN_CLOCK_H_

#include <atomic>

#include "storage/types.h"

namespace doradb {
namespace plog {

class GsnClock {
 public:
  // Issue the next GSN (first issued value is 1; 0 is kInvalidLsn).
  // acq_rel: an observer whose last_issued() covers a GSN must also see
  // everything the issuing thread wrote before drawing it (the checkpoint
  // horizon cap reads the clock and then trusts per-transaction undo-low
  // pins that were stored before their records' GSNs were drawn; RMWs
  // extend the release sequence, so the acquire load below synchronizes
  // with every issuance it covers).
  Lsn Next() { return next_.fetch_add(1, std::memory_order_acq_rel); }

  // Highest GSN issued so far. A partition that observes this value while
  // its buffer is empty knows every GSN it will ever host from now on is
  // strictly greater (stamping happens under the partition latch).
  Lsn last_issued() const {
    return next_.load(std::memory_order_acquire) - 1;
  }

  // Cold-start: ensure every future GSN exceeds `gsn` (the highest value
  // recovered from any partition's segment files or watermark header).
  // Called before any appends, so a plain CAS loop suffices.
  void AdvanceTo(Lsn gsn) {
    Lsn cur = next_.load(std::memory_order_relaxed);
    while (gsn + 1 > cur &&
           !next_.compare_exchange_weak(cur, gsn + 1,
                                        std::memory_order_acq_rel)) {
    }
  }

 private:
  std::atomic<Lsn> next_{1};
};

}  // namespace plog
}  // namespace doradb

#endif  // DORADB_PLOG_GSN_CLOCK_H_
