#include "plog/partitioned_log_manager.h"

#include <algorithm>

#include "log/segment_file.h"
#include "obs/heartbeat.h"
#include "util/clock.h"
#include "util/thread_pool.h"

namespace doradb {
namespace plog {

namespace {

std::atomic<uint64_t> g_next_instance_id{1};

// Sticky thread->partition binding, per manager instance. A thread touches
// at most a handful of managers over its life (tests create several
// Databases), so a tiny linear-scanned vector beats a hash map. Entries
// for destroyed managers cannot be pruned from here (their ids are only
// known to the owning thread), so the vector is capped: evicting a live
// binding is harmless — the thread simply rebinds on its next append.
constexpr size_t kMaxBindings = 64;

struct Binding {
  uint64_t instance;
  uint32_t index;
};
thread_local std::vector<Binding> t_bindings;

uint32_t* FindBinding(uint64_t instance) {
  for (auto& b : t_bindings) {
    if (b.instance == instance) return &b.index;
  }
  return nullptr;
}

void InsertBinding(uint64_t instance, uint32_t index) {
  if (t_bindings.size() >= kMaxBindings) {
    t_bindings.erase(t_bindings.begin());  // oldest first
  }
  t_bindings.push_back(Binding{instance, index});
}

}  // namespace

PartitionedLogManager::PartitionedLogManager(Options options)
    : options_(options),
      instance_id_(g_next_instance_id.fetch_add(1,
                                                std::memory_order_relaxed)) {
  const uint32_t n = std::max<uint32_t>(1, options_.num_partitions);
  partitions_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::unique_ptr<LogStorage> storage;
    if (!options_.data_dir.empty()) {
      SegmentFileStorage::Options so;
      so.target_segment_bytes = options_.segment_target_bytes;
      storage = std::make_unique<SegmentFileStorage>(
          options_.data_dir + "/plog-" + std::to_string(i), i, so);
    }
    partitions_.push_back(
        std::make_unique<LogPartition>(&clock_, std::move(storage)));
    partitions_.back()->set_idle_sync_skip_ticks(
        options_.log.idle_sync_skip_ticks);
  }
  if (!options_.data_dir.empty()) {
    // Cold start: every partition derives its durability claim from its
    // segment files, and the shared clock resumes past the highest one so
    // no GSN is ever reissued across lifetimes.
    Lsn max_claim = 0;
    Lsn horizon = ~Lsn{0};
    for (auto& p : partitions_) {
      const Lsn claim = p->RecoverFromStorage();
      max_claim = std::max(max_claim, claim);
      horizon = std::min(horizon, claim);
    }
    // A kill can leave the streams mutually inconsistent — one partition
    // flushed ahead of another's lost tail. Do on disk what
    // DiscardVolatileTail does at an in-process crash: truncate every
    // stream to the merged horizon. Left in place, a suprahorizon record
    // would merely be hidden by this recovery's merge, then resurrected
    // by a later lifetime whose horizon has moved past it — undoing an
    // old before-image over newer committed data.
    for (auto& p : partitions_) {
      if (p->recovered_last_gsn() > horizon) p->TruncateStableTo(horizon);
    }
    clock_.AdvanceTo(max_claim);
  }
  // One flusher per partition on hardware that can host them; on smaller
  // machines each flusher thread sweeps a slice of partitions so the
  // thread count never exceeds the core count (oversubscription turns
  // latch holds into scheduling stalls).
  const uint32_t nf = std::min(n, std::max(1u, HardwareContexts()));
  flushers_.reserve(nf);
  for (uint32_t i = 0; i < nf; ++i) {
    flushers_.emplace_back([this, i, nf] { FlusherLoop(i, nf); });
  }
}

PartitionedLogManager::~PartitionedLogManager() {
  stop_.store(true, std::memory_order_release);
  for (auto& f : flushers_) {
    if (f.joinable()) f.join();
  }
  for (auto& p : partitions_) p->Flush();
}

void PartitionedLogManager::BindThisThread(uint32_t hint) {
  const uint32_t index = hint % num_partitions();
  if (uint32_t* bound = FindBinding(instance_id_)) {
    *bound = index;
  } else {
    InsertBinding(instance_id_, index);
  }
}

uint32_t PartitionedLogManager::LocalIndex() const {
  if (uint32_t* bound = FindBinding(instance_id_)) return *bound;
  const uint32_t index =
      next_unbound_.fetch_add(1, std::memory_order_relaxed) %
      num_partitions();
  InsertBinding(instance_id_, index);
  return index;
}

uint32_t PartitionedLogManager::CurrentPartition() const {
  return LocalIndex();
}

Lsn PartitionedLogManager::Append(LogRecord* rec) {
  const Lsn gsn = partitions_[LocalIndex()]->Append(rec);
  if (options_.log.synchronous) (void)WaitFlushed(gsn);
  return gsn;
}

Lsn PartitionedLogManager::AppendBulk(LogRecord* const* recs, size_t n) {
  if (n == 0) return kInvalidLsn;
  const Lsn last = partitions_[LocalIndex()]->AppendBulk(recs, n);
  if (options_.log.synchronous) (void)WaitFlushed(last);
  return last;
}

Lsn PartitionedLogManager::flushed_lsn() const {
  Lsn h = partitions_[0]->watermark();
  for (size_t i = 1; i < partitions_.size(); ++i) {
    h = std::min(h, partitions_[i]->watermark());
  }
  return h;
}

Status PartitionedLogManager::WaitFlushed(Lsn lsn) {
  if (flushed_lsn() >= lsn) return Status::OK();
  // Self-service group commit across partitions: flush only the laggards;
  // one pass typically covers every record buffered so far system-wide.
  // (Flush() attributes its own copy work; the nap is idle, not log work.)
  for (;;) {
    for (auto& p : partitions_) {
      if (p->watermark() < lsn) {
        p->Flush();
        // A poisoned partition's watermark is frozen: if it still gates
        // `lsn`, the global horizon can never get there — bail with the
        // typed error rather than spin on an unreachable durability point.
        if (p->poisoned() && p->watermark() < lsn) {
          return Status::Unavailable("log: partition stream poisoned");
        }
      }
    }
    if (flushed_lsn() >= lsn) return Status::OK();
    NapMicros(options_.log.flush_interval_us);
  }
}

Status PartitionedLogManager::WaitFlushedFrom(uint32_t partition_hint,
                                              Lsn lsn) {
  // Flush the record's own partition eagerly, then fall through to the
  // shared laggard sweep. Other partitions normally advance on their own
  // flushers, but an IDLE partition may be deferring its watermark-only
  // header sync (idle_sync_skip_ticks), so a waiter must force laggards
  // through rather than poll the horizon forever.
  LogPartition* own = partitions_[partition_hint % partitions_.size()].get();
  if (own->watermark() < lsn) own->Flush();
  return WaitFlushed(lsn);
}

void PartitionedLogManager::DiscardVolatileTail() {
  // Crash: every partition loses its volatile buffer — independently, so
  // one partition may retain durable records whose same-transaction
  // predecessors just died in another's buffer. Do what a restart does:
  // compute the consistent horizon and truncate every stable tail to it,
  // so the surviving state is one committed prefix no matter how many
  // crash/recover cycles follow.
  Lsn horizon = ~Lsn{0};
  for (auto& p : partitions_) {
    horizon = std::min(horizon, p->DiscardVolatileAndClaim());
  }
  for (auto& p : partitions_) p->TruncateStableTo(horizon);
}

void PartitionedLogManager::SimulateKill() {
  // The process dies mid-flight: buffers vanish, the stable media keep
  // whatever bytes (and stale watermark headers) they happened to hold.
  // No truncation — a second lifetime's cold start must cope with it.
  for (auto& p : partitions_) p->Kill();
}

std::vector<LogRecord> PartitionedLogManager::ReadStable() const {
  // Per-partition decode with torn-tail tolerance, then horizon merge.
  std::vector<std::vector<LogRecord>> streams;
  Lsn horizon = ~Lsn{0};
  for (const auto& p : partitions_) {
    std::vector<LogRecord> recs = p->ReadStable(nullptr);
    // Two independently valid durability claims per partition: the
    // watermark (all its records <= w are stable — covers idle
    // partitions), and the last decodable GSN (its stable region is a
    // prefix of its append stream, so everything up to that record is
    // present — covers completed-but-unmarked partial flushes). Take the
    // stronger; a torn tail only ever truncates the unmarked suffix.
    const Lsn decoded_upto = recs.empty() ? 0 : recs.back().lsn;
    horizon = std::min(horizon, std::max(p->watermark(), decoded_upto));
    streams.push_back(std::move(recs));
  }
  std::vector<LogRecord> merged;
  for (auto& stream : streams) {
    for (auto& rec : stream) {
      // Records above the horizon may have siblings (same txn, lower GSN,
      // different partition) that were lost; dropping them restores the
      // committed-prefix property the recovery driver assumes.
      if (rec.lsn <= horizon) merged.push_back(std::move(rec));
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const LogRecord& a, const LogRecord& b) {
              return a.lsn < b.lsn;
            });
  return merged;
}

void PartitionedLogManager::ReclaimStableBelow(Lsn point) {
  for (auto& p : partitions_) p->ReclaimStableBelow(point);
}

void PartitionedLogManager::ReclaimPartitionBelow(uint32_t partition,
                                                  Lsn point) {
  partitions_[partition % partitions_.size()]->ReclaimStableBelow(point);
}

uint64_t PartitionedLogManager::reclaimed_bytes() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->reclaimed_bytes();
  return n;
}

void PartitionedLogManager::FlusherLoop(uint32_t index, uint32_t stride) {
  // Watchdog heartbeat: one per flusher thread, named by its stride slot.
  obs::ScopedHeartbeat hb("log.flusher.plog." + std::to_string(index));
  while (!stop_.load(std::memory_order_acquire)) {
    hb->SetStage("nap");
    hb->SetIdle(true);
    NapMicros(options_.log.flush_interval_us);
    hb->SetIdle(false);
    hb->SetStage("flush");
    for (size_t p = index; p < partitions_.size(); p += stride) {
      // Periodic flush: idle partitions may defer the watermark-only
      // header fdatasync (see LogPartition::Flush).
      partitions_[p]->Flush(/*force_watermark=*/false);
      hb->Beat();
    }
  }
}

uint64_t PartitionedLogManager::idle_syncs_skipped() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->idle_syncs_skipped();
  return n;
}

uint64_t PartitionedLogManager::appends() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->appends();
  return n;
}

uint64_t PartitionedLogManager::flushes() const {
  uint64_t n = 0;
  for (const auto& p : partitions_) n += p->flushes();
  return n;
}

size_t PartitionedLogManager::stable_size() const {
  size_t n = 0;
  for (const auto& p : partitions_) n += p->stable_size();
  return n;
}

size_t PartitionedLogManager::segment_files() const {
  if (options_.data_dir.empty()) return 0;
  size_t n = 0;
  for (const auto& p : partitions_) n += p->segment_count();
  return n;
}

PageId PartitionedLogManager::recovered_max_page_id() const {
  PageId max_pid = kInvalidPageId;
  for (const auto& p : partitions_) {
    const PageId pid = p->recovered_max_page_id();
    if (pid == kInvalidPageId) continue;
    if (max_pid == kInvalidPageId || pid > max_pid) max_pid = pid;
  }
  return max_pid;
}

}  // namespace plog
}  // namespace doradb
