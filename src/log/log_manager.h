// Central write-ahead log with group commit.
//
// All transactions append through one latched buffer — the paper observes
// (§5.4) that once DORA removes lock-manager contention, "the log manager
// becomes the new bottleneck" for write-heavy workloads (TPC-B, TPC-C
// NewOrder/Payment); spin time on the buffer latch is charged to
// TimeClass::kLogContention so benchmarks can show exactly that.
//
// Durability model: a background flusher moves buffered bytes to the
// "stable" region (the paper's in-memory log file system) and advances
// flushed_lsn. Commit waits until its commit record is covered. A crash
// (SimulateCrash) discards the volatile buffer; recovery reads only the
// stable region and must tolerate a torn tail.

#ifndef DORADB_LOG_LOG_MANAGER_H_
#define DORADB_LOG_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "log/log_backend.h"
#include "log/log_record.h"
#include "log/log_storage.h"
#include "util/spinlock.h"
#include "util/status.h"

namespace doradb {

class LogManager final : public LogBackend {
 public:
  struct Options {
    uint64_t flush_interval_us = 50;  // group-commit window
    bool synchronous = false;         // flush inline on every append (tests)
    // File-backed partitioned log only: an idle partition whose periodic
    // flush would persist nothing but a watermark-header advance may skip
    // the fdatasync up to this many consecutive ticks (then a heartbeat
    // sync bounds the persisted claim's lag). Waiters (commit acks,
    // explicit WaitFlushed) always force the sync, so durability
    // acknowledgements never observe the skip. The central backend — whose
    // single stream only syncs when it has data — ignores this.
    uint32_t idle_sync_skip_ticks = 64;
    // Non-empty: back the stable region with segment files under
    // `<data_dir>/central` (log/segment_file.h); existing segments are
    // adopted at construction and LSN allocation resumes past them. The
    // partitioned backend ignores this field (it has its own data_dir).
    std::string data_dir;
    size_t segment_target_bytes = 1 << 20;
  };

  explicit LogManager(Options options);
  LogManager() : LogManager(Options()) {}
  ~LogManager() override;
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  // Append a record; assigns and returns its LSN (end-of-record byte
  // offset, so flushed_lsn >= lsn means the record is durable).
  Lsn Append(LogRecord* rec) override;

  // Block until everything up to `lsn` is stable (group commit wait).
  // Unavailable once the stable medium is poisoned and lsn is uncovered.
  Status WaitFlushed(Lsn lsn) override;
  // Trigger + wait: used by the buffer pool's WAL rule before page steals.
  Status FlushTo(Lsn lsn) override;

  Lsn flushed_lsn() const override {
    return flushed_lsn_.load(std::memory_order_acquire);
  }
  Lsn current_lsn() const override {
    return next_lsn_.load(std::memory_order_relaxed);
  }

  // Crash simulation: drop all unflushed bytes.
  void DiscardVolatileTail() override;

  // Recovery: decode the stable region (tolerates a torn last record).
  std::vector<LogRecord> ReadStable() const override;

  // Checkpoint truncation: drop whole stable records with lsn < point.
  // LSNs are byte offsets, but nothing indexes the stable region by
  // offset — records carry their own LSN and decode sequentially, so
  // dropping a byte prefix keeps the stream self-describing.
  void ReclaimStableBelow(Lsn point) override;
  uint64_t reclaimed_bytes() const override {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  // Test hook: flip one stable byte, simulating media corruption in the
  // middle of the log (the per-record CRC must catch it).
  void FlipStableByte(size_t index);

  uint64_t appends() const override {
    return appends_.load(std::memory_order_relaxed);
  }
  uint64_t flushes() const override {
    return flushes_.load(std::memory_order_relaxed);
  }
  size_t stable_size() const override;
  size_t segment_files() const override;
  PageId recovered_max_page_id() const override {
    return stable_->recovered_max_page_id();
  }

  // True once the stable medium latched a persistent I/O failure: the
  // flush horizon is frozen, logged commits fail Unavailable, reads keep
  // serving from what is already durable.
  bool poisoned() const { return poisoned_.load(std::memory_order_acquire); }

 private:
  void FlusherLoop();
  // Moves the volatile buffer into the stable region. Returns new flushed lsn.
  Lsn DoFlush();

  const Options options_;

  TatasLock buffer_latch_;          // guards buffer_ and next_lsn_ assignment
  std::vector<uint8_t> buffer_;     // volatile tail [flushed_lsn_, next_lsn_)
  std::atomic<Lsn> next_lsn_{1};    // LSN 0 is kInvalidLsn
  std::atomic<Lsn> flushed_lsn_{1};

  mutable std::mutex stable_mu_;
  // The durability medium: in-memory bytes, or segment files when
  // Options::data_dir is set (see log/log_storage.h).
  std::unique_ptr<LogStorage> stable_;

  std::atomic<bool> stop_{false};
  std::atomic<bool> poisoned_{false};  // mirrors stable_->poisoned()
  std::thread flusher_;

  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> flushes_{0};
  std::atomic<uint64_t> reclaimed_{0};
};

}  // namespace doradb

#endif  // DORADB_LOG_LOG_MANAGER_H_
