#include "log/log_record.h"

#include <cstring>
#include <sstream>

#include "util/crc32.h"

namespace doradb {

namespace {

template <typename T>
void Put(std::vector<uint8_t>* out, T v) {
  const size_t n = out->size();
  out->resize(n + sizeof(T));
  std::memcpy(out->data() + n, &v, sizeof(T));
}

void PutBytes(std::vector<uint8_t>* out, const std::string& s) {
  Put<uint32_t>(out, static_cast<uint32_t>(s.size()));
  const size_t n = out->size();
  out->resize(n + s.size());
  std::memcpy(out->data() + n, s.data(), s.size());
}

template <typename T>
bool Get(const std::vector<uint8_t>& in, size_t* off, T* v) {
  if (*off + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *off, sizeof(T));
  *off += sizeof(T);
  return true;
}

bool GetBytes(const std::vector<uint8_t>& in, size_t* off, std::string* s) {
  uint32_t len;
  if (!Get(in, off, &len)) return false;
  if (*off + len > in.size()) return false;
  s->assign(reinterpret_cast<const char*>(in.data() + *off), len);
  *off += len;
  return true;
}

// Wire prefix: u32 total length + u32 payload CRC.
constexpr size_t kPrefixBytes = 2 * sizeof(uint32_t);

}  // namespace

size_t LogRecord::SerializeTo(std::vector<uint8_t>* out) const {
  const size_t start = out->size();
  Put<uint32_t>(out, 0);  // placeholder for total length
  Put<uint32_t>(out, 0);  // placeholder for payload CRC32
  Put<uint8_t>(out, static_cast<uint8_t>(type));
  Put<uint64_t>(out, txn);
  Put<uint64_t>(out, lsn);
  Put<uint64_t>(out, prev_lsn);
  Put<uint16_t>(out, table);
  Put<uint64_t>(out, rid.Pack());
  Put<uint64_t>(out, undo_next);
  Put<uint8_t>(out, static_cast<uint8_t>(clr_action));
  Put<uint32_t>(out, ckpt_partition);
  Put<uint64_t>(out, redo_horizon);
  PutBytes(out, before);
  PutBytes(out, after);
  Put<uint32_t>(out, static_cast<uint32_t>(active_txns.size()));
  for (TxnId t : active_txns) Put<uint64_t>(out, t);
  const uint32_t total = static_cast<uint32_t>(out->size() - start);
  std::memcpy(out->data() + start, &total, sizeof(total));
  // CRC over the payload — everything after the (length, crc) prefix — so
  // a bit flip anywhere in the record body fails decode, not just a short
  // read at the tail.
  const size_t payload = start + kPrefixBytes;
  const uint32_t crc = Crc32(out->data() + payload, out->size() - payload);
  std::memcpy(out->data() + start + sizeof(uint32_t), &crc, sizeof(crc));
  return total;
}

bool LogRecord::DeserializeFrom(const std::vector<uint8_t>& data,
                                size_t* offset, LogRecord* out) {
  size_t off = *offset;
  uint32_t total;
  if (!Get(data, &off, &total)) return false;
  if (total < kPrefixBytes) return false;            // garbage length
  if (*offset + total > data.size()) return false;   // torn tail
  uint32_t stored_crc;
  if (!Get(data, &off, &stored_crc)) return false;
  const uint32_t actual_crc =
      Crc32(data.data() + *offset + kPrefixBytes, total - kPrefixBytes);
  if (stored_crc != actual_crc) return false;  // corrupted middle
  uint8_t type8;
  if (!Get(data, &off, &type8)) return false;
  out->type = static_cast<LogType>(type8);
  if (!Get(data, &off, &out->txn)) return false;
  if (!Get(data, &off, &out->lsn)) return false;
  if (!Get(data, &off, &out->prev_lsn)) return false;
  if (!Get(data, &off, &out->table)) return false;
  uint64_t rid_pack;
  if (!Get(data, &off, &rid_pack)) return false;
  out->rid = Rid::Unpack(rid_pack);
  if (!Get(data, &off, &out->undo_next)) return false;
  uint8_t clr8;
  if (!Get(data, &off, &clr8)) return false;
  out->clr_action = static_cast<LogType>(clr8);
  if (!Get(data, &off, &out->ckpt_partition)) return false;
  if (!Get(data, &off, &out->redo_horizon)) return false;
  if (!GetBytes(data, &off, &out->before)) return false;
  if (!GetBytes(data, &off, &out->after)) return false;
  uint32_t nactive;
  if (!Get(data, &off, &nactive)) return false;
  out->active_txns.clear();
  for (uint32_t i = 0; i < nactive; ++i) {
    TxnId t;
    if (!Get(data, &off, &t)) return false;
    out->active_txns.push_back(t);
  }
  *offset = *offset + total;
  return true;
}

size_t DecodeRecordStream(const std::vector<uint8_t>& data,
                          const std::string& medium,
                          std::vector<LogRecord>* out, Status* tail) {
  size_t off = 0;
  LogRecord rec;
  while (LogRecord::DeserializeFrom(data, &off, &rec)) {
    out->push_back(std::move(rec));
    rec = LogRecord();
  }
  if (tail != nullptr) {
    if (off == data.size()) {
      *tail = Status::OK();
    } else {
      // Distinguish a record that runs past the end of the medium (a torn
      // partial write) from one whose bytes are all present but fail the
      // checksum (media corruption): the former is expected at a crash,
      // the latter never is.
      uint32_t total = 0;
      const bool have_len = off + sizeof(total) <= data.size();
      if (have_len) std::memcpy(&total, data.data() + off, sizeof(total));
      const bool torn = !have_len || total < 2 * sizeof(uint32_t) ||
                        off + total > data.size();
      *tail = Status::Corruption(
          std::string(torn ? "torn record in " : "corrupt record (checksum "
                                                 "mismatch) in ") +
          medium + " at offset " + std::to_string(off));
    }
  }
  return off;
}

size_t ReclaimLogPrefixBelow(std::vector<uint8_t>* stable, Lsn point) {
  size_t drop = 0, off = 0;
  LogRecord rec;
  while (LogRecord::DeserializeFrom(*stable, &off, &rec)) {
    if (rec.lsn >= point) break;
    drop = off;
  }
  if (drop != 0) stable->erase(stable->begin(), stable->begin() + drop);
  return drop;
}

std::string LogRecord::ToString() const {
  static const char* kNames[] = {"?",      "BEGIN",  "INSERT", "UPDATE",
                                 "DELETE", "COMMIT", "ABORT",  "END",
                                 "CLR",    "CKPT",   "CKPT-P"};
  std::ostringstream os;
  os << "[" << lsn << "] " << kNames[static_cast<int>(type)] << " txn="
     << txn << " prev=" << prev_lsn;
  if (type == LogType::kInsert || type == LogType::kUpdate ||
      type == LogType::kDelete || type == LogType::kClr) {
    os << " table=" << table << " rid=" << rid.ToString();
  }
  return os.str();
}

}  // namespace doradb
