#include "log/log_manager.h"

#include <algorithm>

#include "log/segment_file.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace doradb {

LogManager::LogManager(Options options) : options_(options) {
  buffer_.reserve(1 << 20);
  if (options_.data_dir.empty()) {
    stable_ = std::make_unique<MemoryLogStorage>();
  } else {
    SegmentFileStorage::Options so;
    so.target_segment_bytes = options_.segment_target_bytes;
    stable_ = std::make_unique<SegmentFileStorage>(
        options_.data_dir + "/central", 0, so);
    // Cold start: resume LSN allocation past everything a previous
    // lifetime made durable. Central LSNs are byte offsets, so the stream
    // ends at the last record's start plus its encoded size — found by
    // the storage's open scan.
    const Lsn end = std::max(stable_->recovered_watermark(),
                             stable_->recovered_stream_end());
    if (end > 1) {
      next_lsn_.store(end, std::memory_order_relaxed);
      flushed_lsn_.store(end, std::memory_order_relaxed);
    }
    // Born poisoned (open-time media failure): reads and recovery still
    // work; logged commits will fail Unavailable from the first wait.
    if (stable_->poisoned()) poisoned_.store(true, std::memory_order_release);
  }
  flusher_ = std::thread([this] { FlusherLoop(); });
}

LogManager::~LogManager() {
  stop_.store(true, std::memory_order_release);
  if (flusher_.joinable()) flusher_.join();
  DoFlush();
}

Lsn LogManager::Append(LogRecord* rec) {
  Lsn end;
  {
    // The single latched buffer every transaction appends through: the
    // §5.4 "new bottleneck" once lock contention is gone.
    TatasGuard g(buffer_latch_, TimeClass::kLogContention);
    ScopedTimeClass timer(TimeClass::kLogWork);
    rec->lsn = next_lsn_.load(std::memory_order_relaxed);
    const size_t sz = rec->SerializeTo(&buffer_);
    end = rec->lsn + sz;
    next_lsn_.store(end, std::memory_order_relaxed);
  }
  appends_.fetch_add(1, std::memory_order_relaxed);
  if (options_.synchronous) (void)FlushTo(end);
  return end;
}

Status LogManager::WaitFlushed(Lsn lsn) {
  if (flushed_lsn_.load(std::memory_order_acquire) >= lsn) return Status::OK();
  ScopedTimeClass timer(TimeClass::kLogWork);
  // Self-service group commit: the waiter performs a flush, carrying every
  // record buffered so far (its own and everyone else's).
  DoFlush();
  while (flushed_lsn_.load(std::memory_order_acquire) < lsn) {
    // A poisoned stream's horizon is frozen: waiting longer cannot make
    // `lsn` durable, and pretending otherwise would re-ack over a failed
    // fsync. Bail with the typed error commits surface to clients.
    if (poisoned_.load(std::memory_order_acquire)) {
      return Status::Unavailable("log: central stream poisoned");
    }
    NapMicros(options_.flush_interval_us);
    DoFlush();
  }
  return Status::OK();
}

Status LogManager::FlushTo(Lsn lsn) { return WaitFlushed(lsn); }

Lsn LogManager::DoFlush() {
  // Metrics are recorded after stable_mu_ is released: in the central
  // backend every committing client funnels through this mutex, so extra
  // cycles inside it (even two rdtsc reads) serialize all committers.
  // fsync timing is only taken on durable media — timing a no-op memory
  // Sync() would just measure the clock.
  size_t flushed_bytes = 0;
  uint64_t sync_ns = 0;
  bool synced = false;
  bool failed = false;
  const bool metrics = obs::MetricsEnabled();
  Lsn upto;
  {
    std::lock_guard<std::mutex> g(stable_mu_);
    if (poisoned_.load(std::memory_order_relaxed)) {
      return flushed_lsn_.load(std::memory_order_relaxed);
    }
    std::vector<uint8_t> pending;
    {
      TatasGuard b(buffer_latch_, TimeClass::kLogContention);
      pending.swap(buffer_);
      upto = next_lsn_.load(std::memory_order_relaxed);
    }
    if (!pending.empty()) {
      // `upto` upper-bounds every record LSN in the batch — conservative
      // for segment unlinking, exact for the flush horizon.
      if (!stable_->AppendBatch(pending.data(), pending.size(), upto).ok()) {
        failed = true;
      } else {
        flushes_.fetch_add(1, std::memory_order_relaxed);
        flushed_bytes = pending.size();
      }
    }
    if (!failed && upto > flushed_lsn_.load(std::memory_order_relaxed)) {
      // Durability before advertisement: commits gate on flushed_lsn.
      const bool time_sync = metrics && stable_->durable();
      const uint64_t t0 = time_sync ? Cycles::Now() : 0;
      if (!stable_->Sync(upto).ok()) {
        failed = true;
      } else if (time_sync) {
        sync_ns = static_cast<uint64_t>(Cycles::ToNanos(Cycles::Now() - t0));
        synced = true;
      }
    }
    if (failed) {
      // The medium poisoned itself (storage latches on the first hard
      // failure); freeze the advertised horizon exactly where the last
      // successful Sync left it — anything past it is unprovable.
      poisoned_.store(true, std::memory_order_release);
      return flushed_lsn_.load(std::memory_order_relaxed);
    }
    flushed_lsn_.store(upto, std::memory_order_release);
  }
  if (metrics && flushed_bytes > 0) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "log.group_commit_bytes", "bytes");
    h->Record(flushed_bytes);
  }
  if (synced) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "log.fsync_ns", "ns");
    h->Record(sync_ns);
  }
  return upto;
}

void LogManager::FlusherLoop() {
  // Watchdog heartbeat: the nap is idle time; a DoFlush that hangs in
  // fsync shows up as stalled-in-"flush".
  obs::ScopedHeartbeat hb("log.flusher.central");
  while (!stop_.load(std::memory_order_acquire)) {
    hb->SetStage("nap");
    hb->SetIdle(true);
    NapMicros(options_.flush_interval_us);
    hb->SetIdle(false);
    hb->SetStage("flush");
    DoFlush();
    hb->Beat();
  }
}

void LogManager::DiscardVolatileTail() {
  std::lock_guard<std::mutex> g(stable_mu_);
  TatasGuard b(buffer_latch_, TimeClass::kLogContention);
  buffer_.clear();
  // Restart LSN allocation at the stable boundary so log-offset == LSN
  // stays true for recovery.
  next_lsn_.store(flushed_lsn_.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
}

std::vector<LogRecord> LogManager::ReadStable() const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->Decode(nullptr);
}

void LogManager::ReclaimStableBelow(Lsn point) {
  std::lock_guard<std::mutex> g(stable_mu_);
  reclaimed_.fetch_add(stable_->ReclaimBelow(point),
                       std::memory_order_relaxed);
}

void LogManager::FlipStableByte(size_t index) {
  std::lock_guard<std::mutex> g(stable_mu_);
  stable_->FlipByte(index);
}

size_t LogManager::stable_size() const {
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->size();
}

size_t LogManager::segment_files() const {
  if (options_.data_dir.empty()) return 0;
  std::lock_guard<std::mutex> g(stable_mu_);
  return stable_->segment_count();
}

}  // namespace doradb
