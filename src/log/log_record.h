// ARIES-style physiological log records.
//
// Heap operations are logged with full before/after images chained per
// transaction through prev_lsn; compensation records (CLRs) carry undo_next.
// Index operations are not logged: indexes are treated as derived state and
// rebuilt from the heaps at restart (see DESIGN.md, "Fidelity notes").

#ifndef DORADB_LOG_LOG_RECORD_H_
#define DORADB_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"

namespace doradb {

enum class LogType : uint8_t {
  kBegin = 1,
  kInsert = 2,
  kUpdate = 3,
  kDelete = 4,
  kCommit = 5,
  kAbort = 6,   // abort decided; CLRs follow
  kEnd = 7,     // transaction fully finished (after commit or rollback)
  kClr = 8,     // compensation: redo-only
  kCheckpoint = 9,
};

struct LogRecord {
  LogType type = LogType::kBegin;
  TxnId txn = kInvalidTxnId;
  Lsn lsn = kInvalidLsn;        // assigned by the log manager
  Lsn prev_lsn = kInvalidLsn;   // previous record of the same transaction
  TableId table = 0;
  Rid rid{};
  std::string before;           // old image (kUpdate, kDelete)
  std::string after;            // new image (kInsert, kUpdate, kClr redo)
  Lsn undo_next = kInvalidLsn;  // kClr: next record to undo
  // kClr: the operation this CLR compensates, to make its redo applicable.
  LogType clr_action = LogType::kBegin;
  // kCheckpoint: transactions active at checkpoint time.
  std::vector<TxnId> active_txns;

  // Wire encoding (appended to `out`); returns encoded size.
  size_t SerializeTo(std::vector<uint8_t>* out) const;
  // Decodes one record at `data + offset`; advances offset. False if the
  // buffer is exhausted or the record is torn (partial tail write).
  static bool DeserializeFrom(const std::vector<uint8_t>& data,
                              size_t* offset, LogRecord* out);

  std::string ToString() const;
};

}  // namespace doradb

#endif  // DORADB_LOG_LOG_RECORD_H_
