// ARIES-style physiological log records.
//
// Heap operations are logged with full before/after images chained per
// transaction through prev_lsn; compensation records (CLRs) carry undo_next.
// Index operations are not logged: indexes are treated as derived state and
// rebuilt from the heaps at restart (see DESIGN.md, "Fidelity notes").

#ifndef DORADB_LOG_LOG_RECORD_H_
#define DORADB_LOG_LOG_RECORD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace doradb {

enum class LogType : uint8_t {
  kBegin = 1,
  kInsert = 2,
  kUpdate = 3,
  kDelete = 4,
  kCommit = 5,
  kAbort = 6,   // abort decided; CLRs follow
  kEnd = 7,     // transaction fully finished (after commit or rollback)
  kClr = 8,     // compensation: redo-only
  kCheckpoint = 9,      // legacy global fuzzy checkpoint (whole pool flushed)
  kCheckpointPart = 10,  // partition-local fuzzy checkpoint (src/ckpt/)
};

// ckpt_partition value for a checkpoint record covering every partition
// (the legacy global Checkpoint() path and the central backend).
constexpr uint32_t kCheckpointAllPartitions = 0xFFFFFFFFu;

struct LogRecord {
  LogType type = LogType::kBegin;
  TxnId txn = kInvalidTxnId;
  Lsn lsn = kInvalidLsn;        // assigned by the log manager
  Lsn prev_lsn = kInvalidLsn;   // previous record of the same transaction
  TableId table = 0;
  Rid rid{};
  std::string before;           // old image (kUpdate, kDelete)
  std::string after;            // new image (kInsert, kUpdate, kClr redo)
  Lsn undo_next = kInvalidLsn;  // kClr: next record to undo
  // kClr: the operation this CLR compensates, to make its redo applicable.
  LogType clr_action = LogType::kBegin;
  // kCheckpoint / kCheckpointPart: transactions active at checkpoint time.
  std::vector<TxnId> active_txns;
  // kCheckpointPart: which log partition this checkpoint belongs to
  // (kCheckpointAllPartitions for a coordinator-driven global round), and
  // the redo horizon it vouches for — every record with lsn < redo_horizon
  // was reflected in the disk image when the checkpoint was taken, so
  // recovery may start redo there and the log may reclaim below it.
  uint32_t ckpt_partition = 0;
  Lsn redo_horizon = kInvalidLsn;

  // Wire encoding (appended to `out`); returns encoded size. Every record
  // carries a CRC32 of its payload so recovery detects a corrupted middle,
  // not just a structurally torn tail.
  size_t SerializeTo(std::vector<uint8_t>* out) const;
  // Decodes one record at `data + offset`; advances offset. False if the
  // buffer is exhausted, the record is torn (partial tail write), or the
  // checksum does not match (corruption).
  static bool DeserializeFrom(const std::vector<uint8_t>& data,
                              size_t* offset, LogRecord* out);

  std::string ToString() const;
};

// Decode a whole serialized record stream, appending records to *out in
// stream order. Stops at the first undecodable record and returns its byte
// offset (== data.size() when the stream is clean). If `tail` is non-null
// it is left OK for a clean stream and otherwise set to a Corruption
// status naming `medium` (segment file path or "<memory>"), the offset,
// and whether the record was torn (ran past the end of the medium) or
// failed its checksum — so a restart error points at the exact bad spot.
size_t DecodeRecordStream(const std::vector<uint8_t>& data,
                          const std::string& medium,
                          std::vector<LogRecord>* out, Status* tail);

// Drop the byte prefix of an LSN-ordered serialized record stream holding
// every whole record with lsn < point (survivors are a byte suffix).
// Returns the number of bytes removed. Shared by both WAL backends'
// checkpoint truncation; callers hold their own stable-region lock.
size_t ReclaimLogPrefixBelow(std::vector<uint8_t>* stable, Lsn point);

}  // namespace doradb

#endif  // DORADB_LOG_LOG_RECORD_H_
