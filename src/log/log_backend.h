// LogBackend: the append/wait/read surface of the write-ahead log, shared
// by the central LogManager and the partitioned plog backend.
//
// LSN semantics differ per backend but callers never need to care:
//  * Central log: an LSN is a byte offset into one log file; Append returns
//    the end-of-record offset and flushed_lsn() is the stable byte horizon.
//  * Partitioned log: an LSN is a GSN (global sequence number) drawn from
//    one atomic clock shared by all partitions; Append returns the record's
//    own GSN and flushed_lsn() is the GSN below which *every* partition is
//    stable.
// Both satisfy the two properties the rest of the engine relies on:
//  1. LSNs are totally ordered and assigned in append order per
//     transaction and per page (page-LSN monotonicity for redo).
//  2. WaitFlushed(Append(rec)) returning implies rec — and everything
//     ordered before it — survives DiscardVolatileTail.

#ifndef DORADB_LOG_LOG_BACKEND_H_
#define DORADB_LOG_LOG_BACKEND_H_

#include <cstdint>
#include <vector>

#include "log/log_record.h"
#include "util/status.h"

namespace doradb {

class LogBackend {
 public:
  virtual ~LogBackend() = default;

  // Append a record; assigns rec->lsn and returns the LSN that, once
  // covered by flushed_lsn(), makes the record durable.
  virtual Lsn Append(LogRecord* rec) = 0;

  // Append `n` records in one call, assigning each rec->lsn in array
  // order; returns the last (largest) assigned LSN, or kInvalidLsn when
  // n == 0. Backends with a per-stream reservation cost override this to
  // pay it once for the whole batch (the plog takes its partition buffer
  // latch once); the default is a plain loop with identical semantics.
  // DORA's epoch-batched commit path funnels one executor epoch's commit
  // records through here.
  virtual Lsn AppendBulk(LogRecord* const* recs, size_t n) {
    Lsn last = kInvalidLsn;
    for (size_t i = 0; i < n; ++i) last = Append(recs[i]);
    return last;
  }

  // Block until everything up to `lsn` is stable (group commit wait).
  // Returns Unavailable when the stable medium is poisoned (a failed
  // durability point — see LogStorage::poisoned()) and the horizon can
  // never reach `lsn`: the record may or may not be on the platter, but
  // it must NOT be acknowledged as durable.
  virtual Status WaitFlushed(Lsn lsn) = 0;
  // Trigger + wait: used by the buffer pool's WAL rule before page steals.
  virtual Status FlushTo(Lsn lsn) = 0;

  // Commit-pipelining wait: like WaitFlushed, but the caller vouches that
  // `lsn` lives in `partition_hint`, so the backend may flush only that
  // partition and let the others' flushers advance the horizon on their
  // own cadence — avoiding an all-partition flush storm per commit.
  virtual Status WaitFlushedFrom(uint32_t partition_hint, Lsn lsn) {
    (void)partition_hint;
    return WaitFlushed(lsn);
  }

  virtual Lsn flushed_lsn() const = 0;
  virtual Lsn current_lsn() const = 0;

  // Crash simulation: drop all unflushed bytes.
  virtual void DiscardVolatileTail() = 0;

  // Kill simulation: like a crash, but without the restart-style stable
  // truncation DiscardVolatileTail performs — the stable medium is left
  // exactly as the dead process would leave it (torn tails and all), for
  // tests that reopen a file-backed log in a second lifetime.
  virtual void SimulateKill() { DiscardVolatileTail(); }

  // Recovery: decode the stable region as one LSN-ordered stream
  // (tolerates torn tails; a partitioned backend merges its streams and
  // truncates to the consistent recovery horizon).
  virtual std::vector<LogRecord> ReadStable() const = 0;

  // Checkpoint-driven truncation: drop stable records with LSN strictly
  // below `point` — the caller (src/ckpt/) vouches that everything below
  // is reflected in the disk image and belongs to no transaction that
  // could still need undo. Whole records only; the stream stays decodable.
  virtual void ReclaimStableBelow(Lsn point) { (void)point; }
  // Partition-scoped variant: reclaim only one partition's stable region
  // (the checkpoint coordinator advances truncation points per partition).
  // Single-stream backends ignore the partition and reclaim globally.
  virtual void ReclaimPartitionBelow(uint32_t partition, Lsn point) {
    (void)partition;
    ReclaimStableBelow(point);
  }

  virtual uint64_t appends() const = 0;
  virtual uint64_t flushes() const = 0;
  // Watermark-only header fdatasyncs elided on idle periodic flushes
  // (file-backed partitioned log; see LogManager::Options::
  // idle_sync_skip_ticks). 0 for backends without the optimization.
  virtual uint64_t idle_syncs_skipped() const { return 0; }
  virtual size_t stable_size() const = 0;
  // One partition's stable bytes (the whole stream for single-stream
  // backends) — the checkpoint coordinator weights its visit cadence by
  // per-partition growth of this value.
  virtual size_t PartitionStableSize(uint32_t partition) const {
    (void)partition;
    return stable_size();
  }
  // Segment files currently backing the stable region (0 when in-memory).
  virtual size_t segment_files() const { return 0; }
  // Highest page id referenced by any record recovered at cold start
  // (kInvalidPageId when none / in-memory). A reopened Database raises
  // the page allocator past it before application code (eager index
  // roots) can allocate, or redo would clobber the reused page.
  virtual PageId recovered_max_page_id() const { return kInvalidPageId; }
  // Total bytes dropped by ReclaimStableBelow over this backend's life.
  virtual uint64_t reclaimed_bytes() const { return 0; }

  // Partition-affinity hint: a DORA executor calls this once with its
  // global index so its appends go to a private partition. No-op for the
  // central log.
  virtual void BindThisThread(uint32_t hint) { (void)hint; }
  // The partition this thread's appends currently go to (0 centrally);
  // DORA routes commit acks to the matching per-partition queue.
  virtual uint32_t CurrentPartition() const { return 0; }
  virtual uint32_t num_partitions() const { return 1; }
};

}  // namespace doradb

#endif  // DORADB_LOG_LOG_BACKEND_H_
