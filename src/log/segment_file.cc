#include "log/segment_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/health.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/fault_injector.h"
#include "util/sync_stats.h"

namespace doradb {

namespace {

constexpr uint64_t kSegmentMagic = 0x3147455341524F44ull;  // "DORASEG1"
constexpr size_t kHeaderBytes = 32;
// A batch whose max LSN is unknown pins its segment against unlinking.
constexpr Lsn kPinnedLsn = ~Lsn{0};

// Tier-(a) of the I/O error policy: transient write errors get a bounded
// number of retries with exponential backoff before the stream is declared
// failed. EINTR is retried unconditionally (it is not a media error).
// Sync failures are tier-(b): NEVER retried — see Sync().
constexpr int kIoRetries = 3;
constexpr uint64_t kRetryBackoffUs = 200;

// Fallback for failures with no graceful path upstream: syscalls outside
// the fault-injectable durability set (rename, unlink, ftruncate, pread,
// read-side opens). The commit-path syscalls — pwrite, fdatasync/fsync,
// write-side open — never come here; they flow through the retry/poison
// policy below instead.
void OrDie(bool ok, const char* what, const std::string& path) {
  if (ok) return;
  std::fprintf(stderr, "segment_file: %s failed for %s: %s\n", what,
               path.c_str(), std::strerror(errno));
  std::abort();
}

// Write all `n` bytes, looping on partial writes, retrying EINTR freely
// and transient errors (EIO/ENOSPC/...) kIoRetries times with backoff.
// Exhaustion returns IOError; the caller decides whether that poisons the
// stream. On failure a prefix may have landed (a torn record): recovery's
// decode-and-truncate scan owns cleaning that up.
Status PwriteAll(int fd, const uint8_t* data, size_t n, size_t offset,
                 const std::string& path) {
  auto& health = obs::EngineHealth::Default();
  int attempts = 0;
  while (n > 0) {
    const ssize_t w = FaultInjector::Default().Pwrite(
        fd, data, n, static_cast<off_t>(offset), path.c_str());
    if (w < 0) {
      if (errno == EINTR) continue;
      if (attempts >= kIoRetries) {
        return Status::IOError("pwrite " + path + ": " +
                               std::strerror(errno));
      }
      health.CountRetry();
      NapMicros(kRetryBackoffUs << attempts);
      ++attempts;
      continue;
    }
    data += w;
    n -= static_cast<size_t>(w);
    offset += static_cast<size_t>(w);
  }
  return Status::OK();
}

// Header: [magic u64][watermark u64][covered_len u64][crc u32][pad u32].
// `covered_len` is the segment's record-byte length at the instant the
// watermark claim was written. The claim and the records it covers ride
// ONE fdatasync, which the kernel may complete out of order at a real
// crash — a header block can land while its data blocks tear. The open
// scan therefore trusts a header's watermark only when the segment's
// cleanly-decodable prefix reaches covered_len: a claim whose covered
// bytes are torn is discarded in favour of the decoded-records claim.
void EncodeHeader(uint8_t out[kHeaderBytes], Lsn watermark,
                  uint64_t covered_len) {
  std::memset(out, 0, kHeaderBytes);
  std::memcpy(out, &kSegmentMagic, sizeof(kSegmentMagic));
  std::memcpy(out + 8, &watermark, sizeof(watermark));
  std::memcpy(out + 16, &covered_len, sizeof(covered_len));
  const uint32_t crc = Crc32(out + 8, 16);
  std::memcpy(out + 24, &crc, sizeof(crc));
}

// Returns false on bad magic or a torn/corrupt claim field.
bool DecodeHeader(const uint8_t in[kHeaderBytes], Lsn* watermark,
                  uint64_t* covered_len) {
  uint64_t magic;
  std::memcpy(&magic, in, sizeof(magic));
  if (magic != kSegmentMagic) return false;
  uint32_t crc;
  std::memcpy(&crc, in + 24, sizeof(crc));
  if (crc != Crc32(in + 8, 16)) return false;
  std::memcpy(watermark, in + 8, sizeof(*watermark));
  std::memcpy(covered_len, in + 16, sizeof(*covered_len));
  return true;
}

}  // namespace

SegmentFileStorage::SegmentFileStorage(std::string dir, uint32_t stream_id,
                                       Options options)
    : dir_(std::move(dir)), stream_id_(stream_id), options_(options) {
  OpenDir();
}

SegmentFileStorage::~SegmentFileStorage() {
  if (active_fd_ >= 0) {
    // Clean shutdown: leave the active segment durable but do not count it
    // as sealed — it reopens for appends next lifetime. A failed sync here
    // cannot be acked over (the stream is ending), but it must not pass
    // silently either: anything still dirty may not have reached the
    // platter, so record the hard error for the blackbox/metrics trail.
    if (FaultInjector::Default().Fdatasync(
            active_fd_, PathOf(segments_.back().seq).c_str()) != 0 &&
        dirty_) {
      obs::EngineHealth::Default().CountIOError();
      std::fprintf(stderr,
                   "segment_file: shutdown fdatasync failed for %s: %s\n",
                   PathOf(segments_.back().seq).c_str(),
                   std::strerror(errno));
    }
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

Status SegmentFileStorage::Poison(Status s) {
  if (!poisoned_) {
    poisoned_ = true;
    io_status_ = std::move(s);
    obs::EngineHealth::Default().CountIOError();
    obs::EngineHealth::Default().Degrade("log: " + io_status_.ToString());
    std::fprintf(stderr, "segment_file: stream %s poisoned: %s\n",
                 dir_.c_str(), io_status_.ToString().c_str());
  }
  return io_status_;
}

std::string SegmentFileStorage::PathOf(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08llu.log",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Status SegmentFileStorage::SyncDirectory() {
  const int fd =
      FaultInjector::Default().Open(dir_.c_str(), O_RDONLY | O_DIRECTORY, 0);
  if (fd < 0) {
    return Poison(Status::IOError("open(dir) " + dir_ + ": " +
                                  std::strerror(errno)));
  }
  if (FaultInjector::Default().Fsync(fd, dir_.c_str()) != 0) {
    ::close(fd);
    return Poison(Status::IOError("fsync(dir) " + dir_ + ": " +
                                  std::strerror(errno)));
  }
  ::close(fd);
  DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
  return Status::OK();
}

void SegmentFileStorage::OpenDir() {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OrDie(!ec, "create_directories", dir_);

  // Discover segments by name.
  std::vector<uint64_t> seqs;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("seg-", 0) != 0 || name.size() < 9) continue;
    if (name.substr(name.size() - 4) != ".log") continue;
    seqs.push_back(std::strtoull(name.c_str() + 4, nullptr, 10));
  }
  std::sort(seqs.begin(), seqs.end());

  // Adopt the decodable prefix of the stream; physically truncate at the
  // first bad record so appends resume at a record boundary (the on-disk
  // equivalent of the crash-time truncation the memory medium gets via
  // DiscardVolatileTail).
  // A break in the stream (torn tail, corrupt middle, unreadable header)
  // makes everything after it unreachable for replay. The expected case —
  // the break sits in the LAST segment (a crash tears the final write) —
  // is repaired by truncating the tail so appends resume at a record
  // boundary. Anything else is media corruption: the unreachable later
  // segments are quarantined (renamed aside), never silently deleted, and
  // the damage is reported on stderr. Neither path counts into
  // kSegmentsUnlinked — that counter reports checkpoint-truncation
  // deletions, and mixing recovery drops in would fake reclamation.
  bool stream_broken = false;
  LogRecord last_rec;
  bool have_last = false;
  auto quarantine = [this](const std::string& path, const char* why) {
    const std::string aside = path + ".quarantine";
    std::fprintf(stderr,
                 "segment_file: %s — quarantining unreachable %s as %s\n",
                 why, path.c_str(), aside.c_str());
    OrDie(::rename(path.c_str(), aside.c_str()) == 0, "rename", path);
  };
  for (uint64_t seq : seqs) {
    const std::string path = PathOf(seq);
    if (stream_broken) {
      quarantine(path, "stream broken in an earlier segment");
      continue;
    }
    std::vector<uint8_t> bytes;
    Segment seg;
    seg.seq = seq;
    const uintmax_t fsize = std::filesystem::file_size(path, ec);
    seg.data_bytes = !ec && fsize > kHeaderBytes ? fsize - kHeaderBytes : 0;
    if (ec || fsize < kHeaderBytes || !ReadSegment(seg, &bytes)) {
      quarantine(path, "unreadable or headerless segment");
      stream_broken = true;
      continue;
    }
    std::vector<uint8_t> header(kHeaderBytes);
    {
      const int fd = ::open(path.c_str(), O_RDONLY);
      OrDie(fd >= 0, "open", path);
      const ssize_t r = ::pread(fd, header.data(), kHeaderBytes, 0);
      ::close(fd);
      if (r != static_cast<ssize_t>(kHeaderBytes)) {
        quarantine(path, "short header read");
        stream_broken = true;
        continue;
      }
    }
    Lsn header_watermark = 0;
    uint64_t covered_len = 0;
    if (!DecodeHeader(header.data(), &header_watermark, &covered_len)) {
      quarantine(path, "bad segment magic or header checksum");
      stream_broken = true;
      continue;
    }
    std::vector<LogRecord> recs;
    Status tail;
    const size_t clean = DecodeRecordStream(bytes, path, &recs, &tail);
    if (clean != bytes.size()) {
      // Keep the clean prefix; truncate so appends resume at a record
      // boundary. A tear in the last segment is the normal crash shape;
      // anywhere else this is corruption, and `tail` says exactly where.
      if (seq != seqs.back()) {
        std::fprintf(stderr, "segment_file: %s\n", tail.ToString().c_str());
      }
      const int fd = FaultInjector::Default().Open(path.c_str(), O_RDWR, 0);
      if (fd < 0) {
        (void)Poison(Status::IOError("open " + path + ": " +
                                     std::strerror(errno)));
        return;
      }
      OrDie(::ftruncate(fd, static_cast<off_t>(kHeaderBytes + clean)) == 0,
            "ftruncate", path);
      if (FaultInjector::Default().Fdatasync(fd, path.c_str()) != 0) {
        ::close(fd);
        (void)Poison(Status::IOError("fdatasync " + path + ": " +
                                     std::strerror(errno)));
        return;
      }
      ::close(fd);
      DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
      stream_broken = true;
    }
    seg.data_bytes = clean;
    seg.max_lsn = recs.empty() ? 0 : recs.back().lsn;
    if (!recs.empty()) {
      last_rec = recs.back();
      have_last = true;
    }
    for (const LogRecord& rec : recs) {
      if (rec.rid.page_id == kInvalidPageId) continue;  // no page reference
      if (recovered_max_page_id_ == kInvalidPageId ||
          rec.rid.page_id > recovered_max_page_id_) {
        recovered_max_page_id_ = rec.rid.page_id;
      }
    }
    // Trust the claim only when every byte it covered decodes: a real
    // crash can persist the header block of the final fdatasync while its
    // data blocks tear, and such a claim would overstate durability.
    if (clean >= covered_len) {
      recovered_watermark_ = std::max(recovered_watermark_, header_watermark);
    }
    segments_.push_back(seg);
  }
  if (have_last) {
    recovered_last_lsn_ = last_rec.lsn;
    std::vector<uint8_t> tmp;
    recovered_stream_end_ = last_rec.lsn + last_rec.SerializeTo(&tmp);
  }
  if (!segments_.empty()) {
    next_seq_ = segments_.back().seq + 1;
    durable_watermark_ = recovered_watermark_;
    const std::string path = PathOf(segments_.back().seq);
    active_fd_ = FaultInjector::Default().Open(path.c_str(), O_RDWR, 0);
    if (active_fd_ < 0) {
      // Born poisoned: recovery can still Decode (read-side opens work),
      // but the stream accepts no appends — the owner sees poisoned().
      (void)Poison(Status::IOError("open " + path + ": " +
                                   std::strerror(errno)));
      return;
    }
    if (stream_broken) (void)SyncDirectory();
  } else {
    (void)CreateActive(next_seq_++, 0);
  }
}

Status SegmentFileStorage::CreateActive(uint64_t seq, Lsn watermark) {
  const std::string path = PathOf(seq);
  const int fd = FaultInjector::Default().Open(
      path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Poison(Status::IOError("open(create) " + path + ": " +
                                  std::strerror(errno)));
  }
  uint8_t header[kHeaderBytes];
  // Covered length 0: the carried-forward claim's covering records were
  // sealed (fsynced) into earlier segments before this header exists.
  EncodeHeader(header, watermark, 0);
  Status s = PwriteAll(fd, header, kHeaderBytes, 0, path);
  if (s.ok() && FaultInjector::Default().Fdatasync(fd, path.c_str()) != 0) {
    s = Status::IOError("fdatasync " + path + ": " + std::strerror(errno));
  }
  if (!s.ok()) {
    ::close(fd);
    return Poison(std::move(s));
  }
  DORADB_RETURN_NOT_OK(SyncDirectory());
  DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
  Segment seg;
  seg.seq = seq;
  segments_.push_back(seg);
  active_fd_ = fd;
  durable_watermark_ = watermark;
  dirty_ = false;
  return Status::OK();
}

Status SegmentFileStorage::SealActive() {
  // The seal fsync is a durability point like Sync's: a failure here means
  // the segment's tail may never have reached the platter, so it poisons
  // the stream rather than sealing over the doubt.
  if (FaultInjector::Default().Fdatasync(
          active_fd_, PathOf(segments_.back().seq).c_str()) != 0) {
    return Poison(Status::IOError("fdatasync " +
                                  PathOf(segments_.back().seq) + ": " +
                                  std::strerror(errno)));
  }
  ::close(active_fd_);
  active_fd_ = -1;
  dirty_ = false;
  DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
  DurabilityStats::Count(stream_id_, DurabilityCounter::kSegmentsSealed);
  return Status::OK();
}

Status SegmentFileStorage::AppendBatch(const uint8_t* data, size_t n,
                                       Lsn last_lsn) {
  if (poisoned_) return io_status_;
  if (n == 0) return Status::OK();
  if (segments_.back().data_bytes >= options_.target_segment_bytes) {
    DORADB_RETURN_NOT_OK(SealActive());
    DORADB_RETURN_NOT_OK(CreateActive(next_seq_++, durable_watermark_));
  }
  Segment& seg = segments_.back();
  const Status s = PwriteAll(active_fd_, data, n, kHeaderBytes + seg.data_bytes,
                             PathOf(seg.seq));
  if (!s.ok()) return Poison(s);
  seg.data_bytes += n;
  seg.max_lsn = last_lsn == kInvalidLsn ? kPinnedLsn
                                        : std::max(seg.max_lsn, last_lsn);
  dirty_ = true;
  DurabilityStats::Count(stream_id_, DurabilityCounter::kBytesFlushed, n);
  return Status::OK();
}

Status SegmentFileStorage::WriteHeaderWatermark(int fd, Lsn watermark,
                                                uint64_t covered_len) {
  uint8_t header[kHeaderBytes];
  EncodeHeader(header, watermark, covered_len);
  // A torn header here is safe: the covered_len CRC makes recovery fall
  // back to the decoded-records claim, never an overstated one.
  return PwriteAll(fd, header, kHeaderBytes, 0, PathOf(segments_.back().seq));
}

Status SegmentFileStorage::Sync(Lsn watermark) {
  if (poisoned_) return io_status_;
  const bool advance = watermark > durable_watermark_;
  if (!dirty_ && !advance) return Status::OK();
  if (advance) {
    const Status s = WriteHeaderWatermark(active_fd_, watermark,
                                          segments_.back().data_bytes);
    if (!s.ok()) return Poison(s);
  }
  // One fdatasync covers the appended records and the claim: group commit
  // — every pipelined commit behind this watermark rides the same call.
  // Tier-(b): a failure is NOT retried. After a failed fsync the kernel
  // may mark the dirty pages clean, so a later fsync can "succeed" without
  // anything having reached the platter (the fsyncgate trap) — one failed
  // durability point permanently poisons the stream, and the in-memory
  // watermark the owner acks against never advances past it.
  if (FaultInjector::Default().Fdatasync(
          active_fd_, PathOf(segments_.back().seq).c_str()) != 0) {
    return Poison(Status::IOError("fdatasync " +
                                  PathOf(segments_.back().seq) + ": " +
                                  std::strerror(errno)));
  }
  if (advance) durable_watermark_ = watermark;
  dirty_ = false;
  DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
  return Status::OK();
}

bool SegmentFileStorage::ReadSegment(const Segment& seg,
                                     std::vector<uint8_t>* out) const {
  out->clear();
  out->resize(seg.data_bytes);
  if (seg.data_bytes == 0) return true;
  const std::string path = PathOf(seg.seq);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  size_t got = 0;
  while (got < seg.data_bytes) {
    const ssize_t r = ::pread(fd, out->data() + got, seg.data_bytes - got,
                              static_cast<off_t>(kHeaderBytes + got));
    if (r <= 0) break;
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  if (got != seg.data_bytes) {
    out->resize(got);
    return false;
  }
  return true;
}

std::vector<LogRecord> SegmentFileStorage::Decode(Status* tail) const {
  std::vector<LogRecord> out;
  if (tail != nullptr) *tail = Status::OK();
  for (const Segment& seg : segments_) {
    std::vector<uint8_t> bytes;
    const bool read_ok = ReadSegment(seg, &bytes);
    Status seg_tail;
    const size_t off = DecodeRecordStream(bytes, PathOf(seg.seq), &out,
                                          &seg_tail);
    if (!read_ok) {
      if (tail != nullptr) {
        *tail = Status::IOError("short read in " + PathOf(seg.seq));
      }
      break;
    }
    if (off != bytes.size()) {
      if (tail != nullptr) *tail = seg_tail;
      break;  // everything after the first bad record is unreachable
    }
  }
  return out;
}

uint64_t SegmentFileStorage::ReclaimBelow(Lsn point) {
  uint64_t freed = 0;
  bool unlinked = false;
  while (segments_.size() > 1 && segments_.front().max_lsn < point) {
    const Segment seg = segments_.front();
    OrDie(::unlink(PathOf(seg.seq).c_str()) == 0, "unlink", PathOf(seg.seq));
    DurabilityStats::Count(stream_id_, DurabilityCounter::kSegmentsUnlinked);
    freed += seg.data_bytes;
    segments_.erase(segments_.begin());
    unlinked = true;
  }
  // The active segment too, when it is wholly below the horizon: seal,
  // unlink, start fresh — the checkpoint vouches nothing in it is needed.
  if (segments_.size() == 1 && segments_.front().data_bytes > 0 &&
      segments_.front().max_lsn != 0 && segments_.front().max_lsn < point &&
      !poisoned_) {
    const Segment seg = segments_.front();
    if (!SealActive().ok()) {
      // The checkpoint vouches for the records, but a poisoned stream
      // accepts no fresh active segment; keep what is on disk.
      return freed;
    }
    OrDie(::unlink(PathOf(seg.seq).c_str()) == 0, "unlink", PathOf(seg.seq));
    DurabilityStats::Count(stream_id_, DurabilityCounter::kSegmentsUnlinked);
    freed += seg.data_bytes;
    segments_.clear();
    if (!CreateActive(next_seq_++, durable_watermark_).ok()) return freed;
    unlinked = true;
  }
  if (unlinked) (void)SyncDirectory();
  return freed;
}

void SegmentFileStorage::TruncateTo(Lsn horizon) {
  for (size_t i = 0; i < segments_.size(); ++i) {
    Segment& seg = segments_[i];
    std::vector<uint8_t> bytes;
    (void)ReadSegment(seg, &bytes);
    size_t keep = 0, off = 0;
    bool cut = false;
    LogRecord rec;
    while (LogRecord::DeserializeFrom(bytes, &off, &rec)) {
      if (rec.lsn > horizon) {
        cut = true;
        break;
      }
      keep = off;
    }
    if (!cut && keep == bytes.size() && bytes.size() == seg.data_bytes) {
      continue;  // wholly surviving (clean and under the horizon)
    }
    // Cut here: this segment keeps its byte prefix and becomes the active
    // segment; every later segment holds only larger LSNs and is dropped.
    if (active_fd_ >= 0) {
      ::close(active_fd_);
      active_fd_ = -1;
    }
    // Restart truncation, not checkpoint reclamation: the drops stay out
    // of kSegmentsUnlinked, which reports reclaimed history only.
    for (size_t j = i + 1; j < segments_.size(); ++j) {
      const std::string path = PathOf(segments_[j].seq);
      OrDie(::unlink(path.c_str()) == 0, "unlink", path);
    }
    segments_.resize(i + 1);
    const std::string path = PathOf(seg.seq);
    active_fd_ = FaultInjector::Default().Open(path.c_str(), O_RDWR, 0);
    if (active_fd_ < 0) {
      (void)Poison(Status::IOError("open " + path + ": " +
                                   std::strerror(errno)));
      return;
    }
    OrDie(::ftruncate(active_fd_,
                      static_cast<off_t>(kHeaderBytes + keep)) == 0,
          "ftruncate", path);
    seg.data_bytes = keep;
    seg.max_lsn = std::min(seg.max_lsn, horizon);
    // Carry the newest claim into the (possibly older) now-active header;
    // like the memory medium's watermark, it never goes backwards.
    const Status hs = WriteHeaderWatermark(
        active_fd_, std::max(durable_watermark_, horizon), keep);
    if (!hs.ok()) {
      (void)Poison(hs);
      return;
    }
    durable_watermark_ = std::max(durable_watermark_, horizon);
    if (FaultInjector::Default().Fdatasync(active_fd_, path.c_str()) != 0) {
      (void)Poison(Status::IOError("fdatasync " + path + ": " +
                                   std::strerror(errno)));
      return;
    }
    DurabilityStats::Count(stream_id_, DurabilityCounter::kFsyncCalls);
    (void)SyncDirectory();
    dirty_ = false;
    return;
  }
}

size_t SegmentFileStorage::size() const {
  size_t n = 0;
  for (const Segment& seg : segments_) n += seg.data_bytes;
  return n;
}

void SegmentFileStorage::TearTail(size_t bytes) {
  while (bytes > 0 && !segments_.empty()) {
    Segment& seg = segments_.back();
    const size_t cut = std::min(bytes, seg.data_bytes);
    if (cut == seg.data_bytes && bytes > seg.data_bytes &&
        segments_.size() > 1) {
      // The whole segment tears away and more remains: unlink it and keep
      // tearing into the previous one.
      ::close(active_fd_);
      const std::string path = PathOf(seg.seq);
      OrDie(::unlink(path.c_str()) == 0, "unlink", path);
      segments_.pop_back();
      const std::string prev = PathOf(segments_.back().seq);
      active_fd_ = ::open(prev.c_str(), O_RDWR);
      OrDie(active_fd_ >= 0, "open", prev);
      bytes -= cut;
      continue;
    }
    const std::string path = PathOf(seg.seq);
    seg.data_bytes -= cut;
    OrDie(::ftruncate(active_fd_,
                      static_cast<off_t>(kHeaderBytes + seg.data_bytes)) == 0,
          "ftruncate", path);
    bytes -= cut;
    break;
  }
}

void SegmentFileStorage::FlipByte(size_t index) {
  size_t acc = 0;
  for (const Segment& seg : segments_) {
    if (index < acc + seg.data_bytes) {
      const size_t rel = index - acc;
      const std::string path = PathOf(seg.seq);
      const int fd = ::open(path.c_str(), O_RDWR);
      OrDie(fd >= 0, "open", path);
      uint8_t b = 0;
      OrDie(::pread(fd, &b, 1, static_cast<off_t>(kHeaderBytes + rel)) == 1,
            "pread", path);
      b ^= 0xFF;
      OrDie(::pwrite(fd, &b, 1, static_cast<off_t>(kHeaderBytes + rel)) == 1,
            "pwrite", path);
      ::close(fd);
      return;
    }
    acc += seg.data_bytes;
  }
}

}  // namespace doradb
