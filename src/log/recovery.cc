#include "log/recovery.h"

#include <algorithm>

#include "engine/database.h"

namespace doradb {

Status Database::Recover(
    const std::function<Status(Database*)>& rebuild_indexes) {
  // A durable database whose catalog.db failed to load has no trustworthy
  // schema: running ARIES over it would misattribute every record. Surface
  // the named load error instead.
  if (!catalog_status_.ok()) return catalog_status_;
  // A non-empty stable log whose directory carried NO catalog.db and for
  // which no schema was declared is the missing-catalog shape (the file
  // deleted or never copied alongside the WAL): recovery would silently
  // skip every record as unknown-table, report success over an empty
  // database, and the restarted checkpoint daemon would then truncate
  // the orphaned log — permanent loss of acked commits. Refuse with a
  // named error. Directories this engine opened always have a catalog.db
  // (an empty one is written at first open), and a pre-catalog directory
  // is still adoptable: declare the schema (as those lifetimes always
  // had to) before calling Recover and this guard passes.
  if (!options_.data_dir.empty() && !catalog_file_found_ &&
      catalog_->num_tables() == 0 && log_->stable_size() > 0) {
    return Status::Corruption(
        "catalog: data directory holds WAL content but no schema — "
        "catalog.db is missing and none was declared; refusing to recover "
        "over an undescribed log");
  }
  RecoveryDriver driver(this);
  const Status s = driver.Run(rebuild_indexes);
  // The restarted system resumes checkpointing where the crashed one died.
  if (s.ok() && options_.checkpoint.enabled) ckpt_->Start();
  return s;
}

Status RecoveryDriver::Run(
    const std::function<Status(Database*)>& rebuild_indexes) {
  DORADB_RETURN_NOT_OK(Analysis());
  // Cold-start id resume: no future transaction may be issued an id that
  // still has records in the recovered log — an uncommitted reuse would
  // inherit the old id's surviving kCommit and replay as a winner. (Page
  // ids got the equivalent treatment in the Database constructor, before
  // schema setup could allocate.)
  TxnId max_txn = kInvalidTxnId;
  for (const auto& [txn, lsn] : last_lsn_) max_txn = std::max(max_txn, txn);
  if (max_txn != kInvalidTxnId) {
    db_->txn_manager()->AdvanceTxnIdPast(max_txn);
  }
  DORADB_RETURN_NOT_OK(RebuildHeapDirectory());
  DORADB_RETURN_NOT_OK(Redo());
  DORADB_RETURN_NOT_OK(UndoLosers());
  DORADB_RETURN_NOT_OK(RebuildSpecIndexes());
  if (rebuild_indexes) DORADB_RETURN_NOT_OK(rebuild_indexes(db_));
  // Every index must have been repopulated by now — by its key spec or by
  // the callback. An opaque-key index still empty over a non-empty heap
  // means the caller relied on Recover()'s no-callback default for a
  // schema that cannot self-rebuild: succeeding would leave every probe
  // returning NotFound over live rows (silent read-level data loss), so
  // refuse by name instead. (An in-process restart's surviving tree has
  // entries and passes; a legitimately fresh index has an empty heap.)
  for (const auto& idx : db_->catalog()->indexes()) {
    if (idx->key_spec.CanRebuild() || idx->tree->num_entries() != 0) {
      continue;
    }
    if (db_->catalog()->Heap(idx->table_id)->record_count() == 0) continue;
    return Status::Corruption(
        "index '" + idx->name +
        "' has opaque keys (no IndexKeySpec), a non-empty heap, and no "
        "rebuild callback repopulated it — rows would be unreachable; pass "
        "a rebuild_indexes callback or declare a key spec");
  }
  return db_->buffer_pool()->FlushAll();
}

Status RecoveryDriver::RebuildSpecIndexes() {
  // After redo + undo the heaps hold exactly the committed rows, so an
  // index is a pure function of its heap and its key spec. Only EMPTY
  // trees are rebuilt: a cold-started lifetime creates every tree empty
  // (B+Trees are unlogged derived state), while an in-process restart may
  // still hold a live tree the workload manages through its own callback.
  Catalog* catalog = db_->catalog();
  for (const auto& idx : catalog->indexes()) {
    if (!idx->key_spec.CanRebuild()) continue;
    BTree* tree = idx->tree.get();
    if (tree->num_entries() != 0) continue;
    HeapFile* heap = catalog->Heap(idx->table_id);
    Status row_status;
    DORADB_RETURN_NOT_OK(
        heap->Scan([&](const Rid& rid, std::string_view rec) {
          std::string key;
          uint64_t aux;
          row_status = idx->key_spec.Extract(rec, &key, &aux);
          if (!row_status.ok()) return false;
          row_status = tree->Insert(key, IndexEntry{rid, aux, false});
          if (!row_status.ok()) return false;
          ++stats_.index_entries_rebuilt;
          return true;
        }));
    if (!row_status.ok()) {
      return Status::Corruption("index rebuild failed for '" + idx->name +
                                "': " + row_status.ToString());
    }
    ++stats_.indexes_rebuilt;
  }
  return Status::OK();
}

Status RecoveryDriver::Analysis() {
  records_ = db_->log_manager()->ReadStable();
  stats_.records_scanned = records_.size();
  for (const LogRecord& rec : records_) {
    by_lsn_[rec.lsn] = &rec;
    if (rec.txn != kInvalidTxnId) last_lsn_[rec.txn] = rec.lsn;
    switch (rec.type) {
      case LogType::kCommit:
        committed_.insert(rec.txn);
        break;
      case LogType::kEnd:
        ended_.insert(rec.txn);
        break;
      case LogType::kCheckpointPart:
        // Each durable checkpoint record's horizon is an independently
        // valid global claim (everything below it was on disk when it was
        // taken); the strongest one bounds redo. Records below it may
        // already be truncated away — the claim holds regardless.
        if (rec.redo_horizon != kInvalidLsn &&
            (stats_.redo_start == kInvalidLsn ||
             rec.redo_horizon > stats_.redo_start)) {
          stats_.redo_start = rec.redo_horizon;
        }
        break;
      default:
        break;
    }
  }
  for (const auto& [txn, lsn] : last_lsn_) {
    if (committed_.count(txn) != 0) {
      ++stats_.winners;
    } else if (ended_.count(txn) == 0) {
      // A transaction still undecided at the crash has every undoable
      // record at or above the strongest surviving redo horizon: either
      // it had logged heap work when that checkpoint ran (its undo-low
      // pin held the horizon at or below its first such record) or its
      // work postdates the horizon's clock snapshot. So a commit-less
      // transaction whose LAST surviving record sits below the horizon
      // was decided before that checkpoint — its commit/end record was
      // legitimately truncated along with its reflected-on-disk history —
      // and undoing it would roll back a committed transaction. (A
      // work-less transaction cleared here has nothing to undo anyway.)
      if (stats_.redo_start != kInvalidLsn && lsn < stats_.redo_start) {
        ++stats_.cleared_by_horizon;
        ended_.insert(txn);  // decided pre-checkpoint: nothing to undo
      } else {
        ++stats_.losers;
      }
    }
    // Aborted-and-ended transactions were fully compensated before the
    // crash; replaying their ops + CLRs nets out (repeating history).
  }
  return Status::OK();
}

Status RecoveryDriver::RebuildHeapDirectory() {
  // Scan the disk image for heap pages and hand each table its pages.
  DiskManager* disk = db_->disk();
  Catalog* catalog = db_->catalog();
  const PageId end = disk->end_page_id();
  std::unordered_map<TableId, std::vector<PageId>> pages;
  std::unordered_map<TableId, uint64_t> counts;
  std::vector<uint8_t> buf(kPageSize);
  for (PageId pid = 0; pid < end; ++pid) {
    if (!disk->ReadPage(pid, buf.data()).ok()) continue;
    const auto* hdr = reinterpret_cast<const PageHeaderBase*>(buf.data());
    if (hdr->page_type != PageType::kHeap) continue;
    if (catalog->GetTable(hdr->owner_id) == nullptr) continue;
    pages[hdr->owner_id].push_back(pid);
    counts[hdr->owner_id] += SlottedPage(buf.data()).record_count();
  }
  for (auto& [table, pids] : pages) {
    std::sort(pids.begin(), pids.end());
    stats_.heap_pages_adopted += pids.size();
    catalog->Heap(table)->AdoptPages(std::move(pids), counts[table]);
  }
  return Status::OK();
}

Status RecoveryDriver::PageLsnOf(TableId table, PageId pid, Lsn* lsn) {
  BufferPool* pool = db_->buffer_pool();
  HeapFile* heap = db_->catalog()->Heap(table);
  heap->EnsureRegistered(pid);
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool->FetchPage(pid, &guard));
  guard.LatchExclusive();
  SlottedPage page = guard.AsSlotted();
  const auto* hdr = reinterpret_cast<const PageHeaderBase*>(guard.data());
  if (hdr->page_type != PageType::kHeap) {
    // The page never reached the disk before the crash; materialize it.
    page.Init(pid, table);
    guard.MarkDirty();
  }
  *lsn = page.page_lsn();
  return Status::OK();
}

Status RecoveryDriver::Redo() {
  Catalog* catalog = db_->catalog();
  for (const LogRecord& rec : records_) {
    const bool is_heap_op =
        rec.type == LogType::kInsert || rec.type == LogType::kUpdate ||
        rec.type == LogType::kDelete || rec.type == LogType::kClr;
    if (!is_heap_op) continue;
    // Ghost-until-commit: a kDelete's physical effect happened only if the
    // transaction committed.
    if (rec.type == LogType::kDelete && committed_.count(rec.txn) == 0) {
      continue;
    }
    if (catalog->GetTable(rec.table) == nullptr) continue;
    // Below the checkpoint redo horizon: the effect was already in the
    // disk image before the crash — skip without even fetching the page.
    if (stats_.redo_start != kInvalidLsn && rec.lsn < stats_.redo_start) {
      ++stats_.redo_skipped_horizon;
      continue;
    }
    Lsn page_lsn;
    DORADB_RETURN_NOT_OK(PageLsnOf(rec.table, rec.rid.page_id, &page_lsn));
    if (page_lsn >= rec.lsn) {
      ++stats_.redo_skipped_lsn;  // already on the page before the crash
      continue;
    }
    HeapFile* heap = catalog->Heap(rec.table);
    Status s;
    const LogType action = rec.type == LogType::kClr ? rec.clr_action
                                                     : rec.type;
    switch (action) {
      case LogType::kInsert:
        s = heap->InsertAt(rec.rid, rec.after, rec.lsn);
        if (s.IsBusy()) {
          // Idempotent redo: a checkpoint or eviction may have flushed the
          // page in the window between the physical insert and its
          // page-LSN stamp, so the tuple is already on disk under a stale
          // LSN. Accept an identical occupant and just advance the stamp;
          // a different occupant is genuine corruption.
          std::string existing;
          if (heap->Get(rec.rid, &existing).ok() && existing == rec.after) {
            s = heap->StampPageLsn(rec.rid.page_id, rec.lsn);
          }
        }
        break;
      case LogType::kUpdate:
        s = heap->Update(rec.rid, rec.after, nullptr, rec.lsn);
        break;
      case LogType::kDelete:
        s = heap->Delete(rec.rid, nullptr, rec.lsn);
        break;
      default:
        continue;
    }
    if (!s.ok()) {
      return Status::Corruption("redo failed: " + rec.ToString() + " -> " +
                                s.ToString());
    }
    ++stats_.redo_applied;
  }
  return Status::OK();
}

Status RecoveryDriver::UndoLosers() {
  Catalog* catalog = db_->catalog();
  LogBackend* log = db_->log_manager();
  for (const auto& [txn, last] : last_lsn_) {
    if (committed_.count(txn) != 0 || ended_.count(txn) != 0) continue;
    Lsn cur = last;
    while (cur != kInvalidLsn) {
      auto it = by_lsn_.find(cur);
      if (it == by_lsn_.end()) break;
      const LogRecord& rec = *it->second;
      if (rec.type == LogType::kClr) {
        cur = rec.undo_next;  // skip everything this CLR already covered
        continue;
      }
      if (rec.type == LogType::kBegin) break;
      if (rec.type == LogType::kInsert || rec.type == LogType::kUpdate) {
        HeapFile* heap = catalog->Heap(rec.table);
        LogRecord clr;
        clr.type = LogType::kClr;
        clr.txn = txn;
        clr.prev_lsn = last;
        clr.table = rec.table;
        clr.rid = rec.rid;
        clr.undo_next = rec.prev_lsn;
        Status s;
        if (rec.type == LogType::kInsert) {
          clr.clr_action = LogType::kDelete;
          log->Append(&clr);
          s = heap->Delete(rec.rid, nullptr, clr.lsn);
        } else {
          clr.clr_action = LogType::kUpdate;
          clr.after = rec.before;
          log->Append(&clr);
          s = heap->Update(rec.rid, rec.before, nullptr, clr.lsn);
        }
        if (!s.ok()) {
          return Status::Corruption("restart undo failed: " + rec.ToString());
        }
        ++stats_.undo_applied;
      }
      // kDelete: no physical change happened pre-commit; nothing to undo.
      cur = rec.prev_lsn;
    }
    LogRecord end_rec;
    end_rec.type = LogType::kEnd;
    end_rec.txn = txn;
    log->Append(&end_rec);
  }
  // Persist the undo's CLRs and end records. On a poisoned medium the
  // flush cannot complete — recovery's in-memory result is still correct
  // (the heaps are consistent), so surface the typed error rather than
  // pretend the recovered state is durable.
  return log->FlushTo(log->current_lsn());
}

}  // namespace doradb
