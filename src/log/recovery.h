// ARIES restart recovery: Analysis — Redo (repeating history) — Undo.
//
// Adaptations for this engine (see DESIGN.md "Fidelity notes"):
//  * Heap page lists are rediscovered by scanning the disk image for pages
//    whose header says kHeap (plus pages named by redo records that never
//    reached the disk).
//  * Deletes are "ghost until commit": the physical slot free happens after
//    commit, so redo applies kDelete records only for committed
//    transactions, and loser undo skips them.
//  * Indexes are derived state, rebuilt by a schema-aware callback after
//    the heaps are consistent.

#ifndef DORADB_LOG_RECOVERY_H_
#define DORADB_LOG_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "log/log_record.h"
#include "util/status.h"

namespace doradb {

class Database;

class RecoveryDriver {
 public:
  struct Stats {
    size_t records_scanned = 0;
    size_t winners = 0;
    size_t losers = 0;
    size_t redo_applied = 0;
    size_t redo_skipped_lsn = 0;      // page LSN said already applied
    size_t redo_skipped_horizon = 0;  // below a checkpoint's redo horizon
    // Commit-less transactions whose surviving records all sit below the
    // redo horizon: decided before that checkpoint (the deciding record
    // was truncated), so they are NOT losers and must not be undone.
    size_t cleared_by_horizon = 0;
    size_t undo_applied = 0;
    size_t heap_pages_adopted = 0;
    // Indexes repopulated generically from their persisted IndexKeySpec
    // (self-contained reopen: no workload callback needed), and the leaf
    // entries those rebuilds inserted.
    size_t indexes_rebuilt = 0;
    size_t index_entries_rebuilt = 0;
    // Redo start point: the maximum redo horizon among durable checkpoint
    // records (kInvalidLsn if none survived). Everything below it was in
    // the disk image when that checkpoint ran.
    Lsn redo_start = kInvalidLsn;
  };

  explicit RecoveryDriver(Database* db) : db_(db) {}

  Status Run(const std::function<Status(Database*)>& rebuild_indexes);

  const Stats& stats() const { return stats_; }

 private:
  Status Analysis();
  Status RebuildHeapDirectory();
  Status Redo();
  Status UndoLosers();
  // Repopulate empty indexes whose catalog entry carries a key spec by
  // scanning their heaps — the self-describing half of index recovery;
  // the schema-aware callback covers the rest.
  Status RebuildSpecIndexes();

  // Fetch-or-init the heap page `pid` of `table` and return its page LSN.
  Status PageLsnOf(TableId table, PageId pid, Lsn* lsn);

  Database* const db_;
  Stats stats_;

  std::vector<LogRecord> records_;
  std::unordered_map<Lsn, const LogRecord*> by_lsn_;
  std::unordered_set<TxnId> committed_;
  std::unordered_set<TxnId> ended_;  // kEnd seen (finished rollback/commit)
  std::unordered_map<TxnId, Lsn> last_lsn_;
};

}  // namespace doradb

#endif  // DORADB_LOG_RECOVERY_H_
