// LogStorage: the durability medium under a WAL stable region.
//
// Both WAL backends (the central LogManager and each plog LogPartition)
// keep a volatile append buffer and a "stable" stream of whole records.
// This interface is the stable stream's medium: an in-memory byte vector
// (the seed behaviour — Database::Options::data_dir empty) or a directory
// of segment files (src/log/segment_file.h) whose appends survive process
// death.
//
// Contract shared by both implementations:
//  * AppendBatch bytes are whole records in LSN order; a batch never needs
//    to be split across segments, so records never straddle a segment
//    boundary.
//  * Sync(w) makes every appended byte durable and persists `w` as the
//    stream's durability claim ("every record this stream's owner hosts
//    with LSN <= w is here"). Callers advance their in-memory watermark —
//    the value commit acknowledgements gate on — only after Sync returns,
//    which is what makes an acked commit durable across process lifetimes.
//  * Decode tolerates a torn tail (partial last write) and a corrupted
//    middle (per-record CRC), reporting the exact medium location of the
//    first bad record through its Status.
//  * ReclaimBelow(point) may keep records below the point: the file
//    implementation drops whole sealed segments only. Survivors below a
//    checkpoint horizon are redo-skipped by recovery, never harmful.
//
// Thread safety: none. The owning backend serializes every call under its
// stable-region mutex.

#ifndef DORADB_LOG_LOG_STORAGE_H_
#define DORADB_LOG_LOG_STORAGE_H_

#include <algorithm>
#include <vector>

#include "log/log_record.h"
#include "util/status.h"

namespace doradb {

class LogStorage {
 public:
  virtual ~LogStorage() = default;

  // Append `n` bytes of whole records whose highest LSN is `last_lsn`
  // (pass kInvalidLsn when unknown — e.g. a deliberately torn test write —
  // which pins the receiving segment against unlinking).
  // Returns non-OK when the medium failed persistently (see poisoned()):
  // the bytes must be treated as not durable and never acked.
  virtual Status AppendBatch(const uint8_t* data, size_t n, Lsn last_lsn) = 0;

  // Durability point: fsync appended bytes and persist `watermark` as the
  // stream's claim. No-op for memory. A non-OK return means the claim did
  // NOT become durable; per the fsyncgate rule a failed sync poisons the
  // stream permanently — the owner must never advance its in-memory
  // watermark past this point, however later calls fare.
  virtual Status Sync(Lsn watermark) = 0;

  // True once a persistent media failure latched the stream read-only.
  // Poison is one-way for the stream's lifetime: a failed fsync may leave
  // the kernel's dirty pages marked clean, so a retry that "succeeds"
  // proves nothing about what reached the platter.
  virtual bool poisoned() const { return false; }

  // True when Sync actually pays for durability (file-backed media): the
  // owner may then rate-limit watermark-only syncs for idle streams. The
  // memory medium's Sync is free, so there is nothing to skip.
  virtual bool durable() const { return false; }

  // The claim persisted by the last Sync of a previous lifetime (0 when
  // the medium is fresh or volatile).
  virtual Lsn recovered_watermark() const { return 0; }
  // Cold-start scan results, so callers need not re-Decode the stream:
  // the last decodable record's LSN, and the stream end (that LSN plus
  // the record's encoded size — the central backend's resume offset).
  virtual Lsn recovered_last_lsn() const { return 0; }
  virtual Lsn recovered_stream_end() const { return 0; }
  // Highest page id any recovered record references (kInvalidPageId when
  // none): a reopened Database raises the page allocator past it BEFORE
  // application code can allocate, or a pre-recovery allocation (e.g. an
  // eager B+Tree root) would reuse a logged page id and redo would then
  // clobber the new page.
  virtual PageId recovered_max_page_id() const { return kInvalidPageId; }

  // Decode the whole stream in order; see DecodeRecordStream for `tail`.
  virtual std::vector<LogRecord> Decode(Status* tail) const = 0;

  // Reclaim storage for records with lsn < point; returns bytes dropped.
  virtual uint64_t ReclaimBelow(Lsn point) = 0;

  // Drop every record with lsn > horizon, plus any torn tail bytes.
  virtual void TruncateTo(Lsn horizon) = 0;

  virtual size_t size() const = 0;
  virtual size_t segment_count() const { return 1; }

  // Crash/corruption simulation hooks (tests).
  virtual void TearTail(size_t bytes) = 0;
  virtual void FlipByte(size_t index) = 0;
};

// The seed medium: one in-memory byte vector. Dies with the process.
class MemoryLogStorage final : public LogStorage {
 public:
  Status AppendBatch(const uint8_t* data, size_t n, Lsn last_lsn) override {
    (void)last_lsn;
    stable_.insert(stable_.end(), data, data + n);
    return Status::OK();
  }

  Status Sync(Lsn watermark) override {
    (void)watermark;
    return Status::OK();
  }

  std::vector<LogRecord> Decode(Status* tail) const override {
    std::vector<LogRecord> out;
    DecodeRecordStream(stable_, "<memory>", &out, tail);
    return out;
  }

  uint64_t ReclaimBelow(Lsn point) override {
    return ReclaimLogPrefixBelow(&stable_, point);
  }

  void TruncateTo(Lsn horizon) override {
    size_t keep = 0, off = 0;
    LogRecord rec;
    // The stream is LSN-ordered, so the survivors are a byte prefix.
    while (LogRecord::DeserializeFrom(stable_, &off, &rec)) {
      if (rec.lsn > horizon) break;
      keep = off;
    }
    stable_.resize(keep);
  }

  size_t size() const override { return stable_.size(); }

  void TearTail(size_t bytes) override {
    stable_.resize(stable_.size() - std::min(bytes, stable_.size()));
  }

  void FlipByte(size_t index) override {
    if (index < stable_.size()) stable_[index] ^= 0xFF;
  }

 private:
  std::vector<uint8_t> stable_;
};

}  // namespace doradb

#endif  // DORADB_LOG_LOG_STORAGE_H_
