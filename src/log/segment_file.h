// SegmentFileStorage: a WAL stable region as a directory of segment files.
//
// Layout (one directory per log stream — "plog-<i>" per partition,
// "central" for the single-stream backend, under Database data_dir):
//
//   seg-00000001.log
//   seg-00000002.log      <- sealed (full): never written again
//   seg-00000003.log      <- active: appends + watermark header updates
//
// Each file starts with a 32-byte header
//
//   [magic u64 'DORASEG1'][watermark u64][covered_len u64][crc u32][pad]
//
// followed by whole serialized LogRecords. The watermark is the stream's
// durability claim (see log_storage.h); it is rewritten in place on every
// Sync of the active segment, so one fdatasync per group-commit flush
// covers both the appended records and the claim. `covered_len` records
// the segment's data length at claim time: the open scan trusts a
// header's watermark only when that many bytes decode cleanly, so a real
// crash that persists the header block but tears the data blocks of the
// same fdatasync cannot overstate durability. A torn or stale header
// falls back to the decoded-records claim — always safe, conservative.
//
// Seal/unlink protocol: when the active segment reaches the target size,
// it is fsynced, closed, and a new active segment is created (the new
// file and the directory entry are fsynced before any append). Checkpoint
// truncation (ReclaimBelow) unlinks sealed segments whose max record LSN
// sits below the redo horizon — whole files, no rewriting; if even the
// active segment is wholly below the horizon it is sealed and unlinked
// too, leaving a fresh empty active segment.
//
// Open scan (cold start): segment files are discovered by name, decoded
// oldest-first, and the stream is physically truncated at the first
// undecodable record (torn tail or CRC failure) so later appends resume at
// a record boundary — exactly the truncation an in-process crash performs
// on the memory medium.

#ifndef DORADB_LOG_SEGMENT_FILE_H_
#define DORADB_LOG_SEGMENT_FILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "log/log_storage.h"

namespace doradb {

class SegmentFileStorage final : public LogStorage {
 public:
  struct Options {
    // Roll to a new segment once the active one's record bytes reach this.
    size_t target_segment_bytes = 1 << 20;
  };

  // Creates `dir` (and parents) if needed and scans it for segments.
  // `stream_id` labels this stream in DurabilityStats (partition index).
  SegmentFileStorage(std::string dir, uint32_t stream_id, Options options);
  ~SegmentFileStorage() override;
  SegmentFileStorage(const SegmentFileStorage&) = delete;
  SegmentFileStorage& operator=(const SegmentFileStorage&) = delete;

  Status AppendBatch(const uint8_t* data, size_t n, Lsn last_lsn) override;
  Status Sync(Lsn watermark) override;
  bool durable() const override { return true; }
  bool poisoned() const override { return poisoned_; }
  Lsn recovered_watermark() const override { return recovered_watermark_; }
  Lsn recovered_last_lsn() const override { return recovered_last_lsn_; }
  Lsn recovered_stream_end() const override { return recovered_stream_end_; }
  PageId recovered_max_page_id() const override {
    return recovered_max_page_id_;
  }
  std::vector<LogRecord> Decode(Status* tail) const override;
  uint64_t ReclaimBelow(Lsn point) override;
  void TruncateTo(Lsn horizon) override;
  size_t size() const override;
  size_t segment_count() const override { return segments_.size(); }
  void TearTail(size_t bytes) override;
  void FlipByte(size_t index) override;

  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    uint64_t seq = 0;
    size_t data_bytes = 0;  // record bytes (header excluded)
    // Highest LSN a record in this segment may carry (~0 when a batch of
    // unknown LSN landed here — pins the segment against unlinking).
    Lsn max_lsn = 0;
  };

  std::string PathOf(uint64_t seq) const;
  // Scan the directory, adopt decodable prefixes, truncate the rest.
  void OpenDir();
  // Create segment `seq` with a header carrying `watermark`; becomes the
  // active segment (fd open, file + directory entry fsynced).
  Status CreateActive(uint64_t seq, Lsn watermark);
  // fsync + close the active segment.
  Status SealActive();
  Status SyncDirectory();
  // Read one segment's record bytes (header stripped).
  bool ReadSegment(const Segment& seg, std::vector<uint8_t>* out) const;
  Status WriteHeaderWatermark(int fd, Lsn watermark, uint64_t covered_len);
  // Latch the stream failed (one-way); records + degrades engine health.
  Status Poison(Status s);

  const std::string dir_;
  const uint32_t stream_id_;
  const Options options_;

  std::vector<Segment> segments_;  // oldest..newest; back() is active
  int active_fd_ = -1;
  bool dirty_ = false;  // active segment has un-fsynced appends
  bool poisoned_ = false;  // persistent media failure; one-way latch
  Status io_status_;       // the failure that poisoned the stream
  Lsn durable_watermark_ = 0;  // last claim written to the active header
  Lsn recovered_watermark_ = 0;
  Lsn recovered_last_lsn_ = 0;    // last decodable LSN found by the scan
  Lsn recovered_stream_end_ = 0;  // its end (LSN + encoded size)
  PageId recovered_max_page_id_ = kInvalidPageId;
  uint64_t next_seq_ = 1;
};

}  // namespace doradb

#endif  // DORADB_LOG_SEGMENT_FILE_H_
