// Per-executor load heatmap: a compact time-series ring of periodic
// load sweeps across all executors.
//
// DORA's health is the shape of its per-executor queues — a hot logical
// partition shows up as one deep inbox, one saturated busy fraction, and
// one fat queue-wait tail while the other executors idle. The heatmap
// turns the instantaneous counters the executors already maintain into
// a windowed time series the adaptive-routing roadmap item (and a human
// reading /heatmap) can consume:
//
//   inbox depth      level at sweep time
//   drained/s        actions executed per second over the window
//   queue-wait p99   windowed percentile from the per-executor
//                    `dora.exec.<g>.queue_wait_ns` histogram's bucket
//                    delta across the window
//   busy fraction    executor cycles spent processing drained batches /
//                    wall cycles in the window
//
// Engines register a *source* (a pull callback returning raw per-
// executor samples); Sweep() — driven by the watchdog tick — diffs each
// executor's raws against the previous sweep, pushes one window into the
// ring, and mirrors busy%/drain-rate into registry gauges so plain
// `Database::Metrics()` snapshots and DORADB_STATS lines carry the
// signal too. The reporter additionally emits one `DORADB_HEATMAP
// {json}` line per interval.

#ifndef DORADB_OBS_HEATMAP_H_
#define DORADB_OBS_HEATMAP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/histogram.h"

namespace doradb {
namespace obs {

// Raw per-executor state pulled from a source at sweep time. Counters
// are lifetime totals; the heatmap does the windowing.
struct ExecLoadRaw {
  uint32_t executor = 0;
  int64_t inbox_depth = 0;
  uint64_t actions_executed = 0;  // lifetime total
  uint64_t busy_cycles = 0;       // lifetime tsc cycles spent processing
  const Histogram* queue_wait = nullptr;  // per-executor queue-wait (may be null)
};
using HeatmapSource = std::function<std::vector<ExecLoadRaw>()>;

// One executor's row in one window.
struct ExecutorSample {
  uint32_t executor = 0;
  int64_t inbox_depth = 0;
  double drained_per_s = 0.0;
  uint64_t queue_wait_p99_ns = 0;  // over this window only
  double busy_frac = 0.0;          // [0,1]
};

struct HeatmapWindow {
  uint64_t seq = 0;      // monotonically increasing sweep number
  int64_t wall_ms = 0;   // unix epoch ms at sweep
  double span_ms = 0.0;  // window length (previous sweep → this one)
  std::vector<ExecutorSample> rows;  // sorted by executor index
};

class LoadHeatmap {
 public:
  static constexpr size_t kDefaultCapacity = 64;

  explicit LoadHeatmap(size_t capacity = kDefaultCapacity);

  // Sources are pulled on every Sweep(). Unregister before the engine
  // the callback reads is stopped (DoraEngine::Stop does).
  uint64_t RegisterSource(HeatmapSource fn);
  void UnregisterSource(uint64_t token);

  // Take one window: pull every source, diff against the previous sweep,
  // append to the ring (evicting the oldest past capacity), and mirror
  // per-executor busy%/drain-rate into registry gauges. The first sweep
  // after a source appears only primes the diff state (rates read 0).
  void Sweep();

  // Tests / synthetic writers: append a pre-built window (seq/wall_ms
  // are assigned by the ring so sequences stay monotonic).
  void Push(HeatmapWindow w);

  std::vector<HeatmapWindow> Windows() const;  // oldest → newest
  HeatmapWindow Latest() const;                // rows empty if none yet
  size_t capacity() const { return capacity_; }
  uint64_t sweeps() const;

  // {"ts_ms":..,"windows":[{...},...]} — oldest → newest.
  std::string ToJson() const;
  static std::string WindowJson(const HeatmapWindow& w);

  // Percentile over a window's bucket delta: Histogram::Percentile's
  // linear interpolation applied to subtracted counts. Shared with the
  // bench skew probes, which window the same per-executor histograms.
  static uint64_t DeltaPercentile(
      const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
      uint64_t total, double p);

  // The process-wide heatmap the watchdog sweeps and /heatmap serves.
  static LoadHeatmap& Default();

 private:
  struct PrevRaw {
    uint64_t actions = 0;
    uint64_t busy_cycles = 0;
    uint64_t tsc = 0;
    uint64_t qwait_count = 0;
    std::array<uint64_t, Histogram::kNumBuckets> qwait_buckets{};
    bool valid = false;
  };

  HeatmapWindow LockedAssignSeq(HeatmapWindow w);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::deque<HeatmapWindow> ring_;
  uint64_t next_seq_ = 1;
  uint64_t next_token_ = 1;
  uint64_t last_sweep_tsc_ = 0;
  std::map<uint64_t, HeatmapSource> sources_;
  std::map<uint32_t, PrevRaw> prev_;  // by executor index
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_HEATMAP_H_
