// EngineHealth: process-wide degradation latch + durability fault counters.
//
// The durability path (WAL storage, DiskManager, CatalogStore) reports
// persistent media failure here instead of aborting the process. The latch
// is one-way per lifetime: the first Degrade() wins and pins its reason;
// Reset() exists for tests and for a fresh Database lifetime reopening
// over healed media.
//
// Consumers:
//  * Database::Commit / the DORA commit pipeline check state() and fail
//    new logged commits with Status::Unavailable while degraded — reads
//    (and read-only commits, which never touch the log) keep serving.
//  * The watchdog folds a degraded state into /healthz (503) and the
//    blackbox dump.
//  * Database registers `engine.health_state` (gauge: 0 ok, 1 degraded),
//    `log.io_retries` and `log.io_errors` (counters) over these atomics,
//    so every stats snapshot carries them.
//
// The counters are bumped unconditionally (not gated on MetricsEnabled):
// retries and hard I/O errors are rare and already syscall-priced, and the
// chaos CI asserts on them with metrics both on and off.

#ifndef DORADB_OBS_HEALTH_H_
#define DORADB_OBS_HEALTH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace doradb {
namespace obs {

enum class HealthState : uint8_t { kOk = 0, kDegraded = 1 };

class EngineHealth {
 public:
  static EngineHealth& Default();

  // Latch the degraded state. The first caller's reason sticks (it names
  // the root fault; later failures are usually fallout).
  void Degrade(const std::string& reason);

  // Back to healthy; clears reason and counters. Tests / fresh lifetimes.
  void Reset();

  HealthState state() const {
    return degraded_.load(std::memory_order_acquire) ? HealthState::kDegraded
                                                     : HealthState::kOk;
  }
  bool degraded() const { return degraded_.load(std::memory_order_acquire); }
  std::string reason() const;

  void CountRetry() { io_retries_.fetch_add(1, std::memory_order_relaxed); }
  void CountIOError() { io_errors_.fetch_add(1, std::memory_order_relaxed); }
  uint64_t io_retries() const {
    return io_retries_.load(std::memory_order_relaxed);
  }
  uint64_t io_errors() const {
    return io_errors_.load(std::memory_order_relaxed);
  }

 private:
  EngineHealth() = default;

  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> io_retries_{0};
  std::atomic<uint64_t> io_errors_{0};
  mutable std::mutex mu_;  // guards reason_ only
  std::string reason_;
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_HEALTH_H_
