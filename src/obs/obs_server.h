// Live metrics endpoint: a minimal single-threaded HTTP/1.0 server over
// a plain POSIX socket — the first listening socket in the codebase and
// a deliberate stepping stone toward the network front end on the
// roadmap.
//
// Routes (GET only):
//   /metrics   200, registry snapshot JSON — byte-identical schema to a
//              DORADB_STATS line, so ci/check_metrics_json.py checks it
//   /heatmap   200, the per-executor load heatmap ring (heatmap.h)
//   /healthz   200 when the watchdog verdict is healthy, 503 when a
//              stall is in progress; body is Watchdog::Health JSON
//
// Deliberately primitive: binds 127.0.0.1, handles one connection at a
// time, reads one request line, writes one response, closes. It is a
// diagnostics port, not the client protocol — curl, a dashboard
// scraper, or the CI smoke are the intended peers. The accept loop
// polls with a timeout so Stop() never hangs on a quiet socket.
//
// Enabled per Database via Options::obs_port (bench knob
// DORADB_OBS_PORT): -1 off (default), 0 bind an ephemeral port
// (port() reports it; the startup line `DORADB_OBS {"port":N}` on
// stderr lets scripts find it), >0 bind that port.

#ifndef DORADB_OBS_OBS_SERVER_H_
#define DORADB_OBS_OBS_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>

#include "util/status.h"

namespace doradb {
namespace obs {

class ObsServer {
 public:
  struct Options {
    int port = 0;  // 0 = ephemeral
  };

  explicit ObsServer(Options options);
  ObsServer() : ObsServer(Options()) {}
  ~ObsServer();
  ObsServer(const ObsServer&) = delete;
  ObsServer& operator=(const ObsServer&) = delete;

  // Bind + listen + start the serving thread. Named error if the port
  // cannot be bound.
  Status Start();
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  int port() const { return port_; }
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  // Route a request path to (http status, body). Exposed so tests can
  // check routing without a socket.
  static std::pair<int, std::string> Handle(const std::string& path);

 private:
  void Loop();

  Options options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_OBS_SERVER_H_
