#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>

namespace doradb {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool on) {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  // Sticky per-thread slot, like ThreadStats: two threads may share a
  // shard (bounded loss of isolation, never of correctness).
  static std::atomic<size_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

const char* MetricTypeName(MetricType t) {
  switch (t) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "?";
}

// ---- MetricValue ----

uint64_t MetricValue::Percentile(double p) const {
  if (count == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(count);
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const uint64_t lo = i == 0 ? 0 : (uint64_t{1} << i);
      const uint64_t hi = (i >= 63) ? UINT64_MAX : (uint64_t{1} << (i + 1));
      const double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(in_bucket);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += in_bucket;
  }
  return max;
}

void MetricValue::RecomputePercentiles() {
  has_percentiles = count != 0;
  p50 = Percentile(50);
  p95 = Percentile(95);
  p99 = Percentile(99);
  p999 = Percentile(99.9);
}

// ---- MetricsSnapshot ----

const MetricValue* MetricsSnapshot::Find(std::string_view name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::Delta(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& m : out.metrics) {
    const MetricValue* prev = earlier.Find(m.name);
    if (prev == nullptr || prev->type != m.type) continue;
    switch (m.type) {
      case MetricType::kCounter:
        m.value -= prev->value;
        break;
      case MetricType::kGauge:
        break;  // a level, not a flow: keep the later reading
      case MetricType::kHistogram:
        m.count -= prev->count;
        m.sum -= prev->sum;
        for (size_t i = 0; i < m.buckets.size(); ++i) {
          m.buckets[i] -= prev->buckets[i];
        }
        // min/max are not subtractable; they stay the later snapshot's
        // lifetime bounds. Percentiles become window-exact.
        m.RecomputePercentiles();
        break;
    }
  }
  return out;
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream os;
  for (const auto& m : metrics) {
    os << m.name << " (" << MetricTypeName(m.type);
    if (!m.unit.empty()) os << ", " << m.unit;
    os << "): ";
    if (m.type == MetricType::kHistogram && !m.has_percentiles) {
      os << "count=" << m.count << " (no samples in window)";
    } else if (m.type == MetricType::kHistogram) {
      os << "count=" << m.count << " mean=" << static_cast<uint64_t>(m.Mean())
         << " min=" << m.min << " p50=" << m.p50 << " p95=" << m.p95
         << " p99=" << m.p99 << " p999=" << m.p999 << " max=" << m.max;
    } else {
      os << m.value;
    }
    os << "\n";
  }
  return os.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"ts_ms\":" << wall_ms;
  if (!reason.empty()) os << ",\"reason\":\"" << reason << "\"";
  os << ",\"metrics\":{";
  bool first = true;
  for (const auto& m : metrics) {
    if (!first) os << ",";
    first = false;
    os << "\"" << m.name << "\":{\"type\":\"" << MetricTypeName(m.type)
       << "\"";
    if (!m.unit.empty()) os << ",\"unit\":\"" << m.unit << "\"";
    if (m.type == MetricType::kHistogram) {
      os << ",\"count\":" << m.count << ",\"sum\":" << m.sum
         << ",\"min\":" << m.min << ",\"max\":" << m.max;
      const auto pct = [&os, &m](const char* key, uint64_t v) {
        os << ",\"" << key << "\":";
        if (m.has_percentiles) {
          os << v;
        } else {
          os << "null";  // zero-sample window: absent, not a fake 0
        }
      };
      pct("p50", m.p50);
      pct("p95", m.p95);
      pct("p99", m.p99);
      pct("p999", m.p999);
    } else {
      os << ",\"value\":" << m.value;
    }
    os << "}";
  }
  os << "}}";
  return os.str();
}

// ---- minimal parser for ToJson()'s own output ----
//
// Not a general JSON parser: accepts exactly the subset ToJson emits
// (string keys, string/integer values, two nesting levels, no escapes —
// metric names never contain quotes or backslashes by construction).

namespace {

struct JsonCursor {
  std::string_view s;
  size_t i = 0;

  void SkipWs() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipWs();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool Peek(char c) {
    SkipWs();
    return i < s.size() && s[i] == c;
  }
  bool String(std::string* out) {
    if (!Eat('"')) return false;
    const size_t start = i;
    while (i < s.size() && s[i] != '"') ++i;
    if (i >= s.size()) return false;
    out->assign(s.substr(start, i - start));
    ++i;  // closing quote
    return true;
  }
  bool Null() {
    SkipWs();
    if (i + 4 <= s.size() && s.substr(i, 4) == "null") {
      i += 4;
      return true;
    }
    return false;
  }
  bool Integer(int64_t* out) {
    SkipWs();
    const size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i == start) return false;
    *out = std::strtoll(std::string(s.substr(start, i - start)).c_str(),
                        nullptr, 10);
    return true;
  }
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("metrics json: ") + what);
}

}  // namespace

Status MetricsSnapshot::FromJson(std::string_view json, MetricsSnapshot* out) {
  *out = MetricsSnapshot{};
  JsonCursor c{json};
  if (!c.Eat('{')) return Malformed("expected top-level object");
  std::string key;
  bool first = true;
  bool saw_metrics = false;
  while (!c.Peek('}')) {
    if (!first && !c.Eat(',')) return Malformed("expected ','");
    first = false;
    if (!c.String(&key) || !c.Eat(':')) return Malformed("expected key");
    if (key == "ts_ms") {
      if (!c.Integer(&out->wall_ms)) return Malformed("bad ts_ms");
    } else if (key == "reason") {
      if (!c.String(&out->reason)) return Malformed("bad reason");
    } else if (key == "metrics") {
      saw_metrics = true;
      if (!c.Eat('{')) return Malformed("expected metrics object");
      bool first_metric = true;
      while (!c.Peek('}')) {
        if (!first_metric && !c.Eat(',')) return Malformed("expected ','");
        first_metric = false;
        MetricValue m;
        if (!c.String(&m.name) || !c.Eat(':') || !c.Eat('{')) {
          return Malformed("expected metric object");
        }
        bool first_field = true;
        while (!c.Peek('}')) {
          if (!first_field && !c.Eat(',')) return Malformed("expected ','");
          first_field = false;
          std::string field;
          if (!c.String(&field) || !c.Eat(':')) {
            return Malformed("expected field");
          }
          if (field == "type" || field == "unit") {
            std::string sval;
            if (!c.String(&sval)) return Malformed("bad string field");
            if (field == "unit") {
              m.unit = sval;
            } else if (sval == "counter") {
              m.type = MetricType::kCounter;
            } else if (sval == "gauge") {
              m.type = MetricType::kGauge;
            } else if (sval == "histogram") {
              m.type = MetricType::kHistogram;
            } else {
              return Malformed("unknown metric type");
            }
          } else if (c.Null()) {
            // Only percentiles of a zero-sample window serialize as null.
            if (field == "p50" || field == "p95" || field == "p99" ||
                field == "p999") {
              m.has_percentiles = false;
            } else {
              return Malformed("unexpected null");
            }
          } else {
            int64_t ival = 0;
            if (!c.Integer(&ival)) return Malformed("bad numeric field");
            const uint64_t uval = static_cast<uint64_t>(ival);
            if (field == "value") m.value = ival;
            else if (field == "count") m.count = uval;
            else if (field == "sum") m.sum = uval;
            else if (field == "min") m.min = uval;
            else if (field == "max") m.max = uval;
            else if (field == "p50") m.p50 = uval;
            else if (field == "p95") m.p95 = uval;
            else if (field == "p99") m.p99 = uval;
            else if (field == "p999") m.p999 = uval;
            else return Malformed("unknown field");
          }
        }
        if (!c.Eat('}')) return Malformed("unterminated metric");
        out->metrics.push_back(std::move(m));
      }
      if (!c.Eat('}')) return Malformed("unterminated metrics");
    } else {
      return Malformed("unknown top-level key");
    }
  }
  if (!c.Eat('}')) return Malformed("unterminated object");
  if (!saw_metrics) return Malformed("missing metrics object");
  c.SkipWs();
  if (c.i != json.size()) return Malformed("trailing bytes");
  return Status::OK();
}

// ---- MetricsRegistry ----

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& unit) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kCounter;
    o.unit = unit;
    o.counter = std::make_unique<Counter>();
    it = owned_.emplace(name, std::move(o)).first;
  }
  return it->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& unit) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kGauge;
    o.unit = unit;
    o.gauge = std::make_unique<Gauge>();
    it = owned_.emplace(name, std::move(o)).first;
  }
  return it->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& unit) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = owned_.find(name);
  if (it == owned_.end()) {
    Owned o;
    o.type = MetricType::kHistogram;
    o.unit = unit;
    o.histogram = std::make_unique<Histogram>();
    it = owned_.emplace(name, std::move(o)).first;
  }
  return it->second.histogram.get();
}

uint64_t MetricsRegistry::RegisterCallback(const std::string& name,
                                           std::function<int64_t()> fn,
                                           MetricType type,
                                           const std::string& unit) {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t token = next_token_++;
  callbacks_[name] = Callback{type, unit, token, std::move(fn)};
  return token;
}

void MetricsRegistry::Unregister(uint64_t token) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = callbacks_.begin(); it != callbacks_.end(); ++it) {
    if (it->second.token == token) {
      callbacks_.erase(it);
      return;
    }
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  out.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
  std::lock_guard<std::mutex> g(mu_);
  out.metrics.reserve(owned_.size() + callbacks_.size());
  for (const auto& [name, o] : owned_) {
    MetricValue m;
    m.name = name;
    m.unit = o.unit;
    m.type = o.type;
    switch (o.type) {
      case MetricType::kCounter:
        m.value = static_cast<int64_t>(o.counter->Value());
        break;
      case MetricType::kGauge:
        m.value = o.gauge->Value();
        break;
      case MetricType::kHistogram: {
        const Histogram& h = *o.histogram;
        m.count = h.Count();
        m.sum = h.Sum();
        m.min = h.Min();
        m.max = h.Max();
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          m.buckets[i] = h.BucketCount(i);
        }
        m.RecomputePercentiles();
        break;
      }
    }
    out.metrics.push_back(std::move(m));
  }
  for (const auto& [name, cb] : callbacks_) {
    MetricValue m;
    m.name = name;
    m.unit = cb.unit;
    m.type = cb.type;
    m.value = cb.fn();
    out.metrics.push_back(std::move(m));
  }
  // Callbacks and owned metrics interleave; one sorted order for stable
  // text/JSON output. Names are unique per map; a name used both ways
  // keeps both entries (don't do that).
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> g(mu_);
  for (auto& [name, o] : owned_) {
    switch (o.type) {
      case MetricType::kCounter: o.counter->Reset(); break;
      case MetricType::kGauge: o.gauge->Reset(); break;
      case MetricType::kHistogram: o.histogram->Reset(); break;
    }
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* r = new MetricsRegistry();  // leaked: outlives all
  return *r;
}

}  // namespace obs
}  // namespace doradb
