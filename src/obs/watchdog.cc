#include "obs/watchdog.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/health.h"
#include "obs/heartbeat.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace doradb {
namespace obs {

namespace {

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double AgeMs(uint64_t now_tsc, uint64_t then_tsc) {
  if (then_tsc == 0 || now_tsc <= then_tsc) return 0.0;
  return Cycles::ToNanos(now_tsc - then_tsc) / 1e6;
}

// Fatal-signal flight recorder (DORADB_BLACKBOX_SIGNALS=1): the watchdog
// tick pre-renders the thread table into this buffer and pre-opens the
// crash file; the handler only write(2)s — async-signal-safe.
constexpr size_t kCrashBufSize = 16384;
char g_crash_buf[kCrashBufSize];
std::atomic<size_t> g_crash_len{0};
std::atomic<int> g_crash_fd{-1};

void CrashHandler(int sig) {
  const int fd = g_crash_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    char head[64];
    int n = snprintf(head, sizeof(head), "DORADB_BLACKBOX crash signal=%d\n",
                     sig);
    if (n > 0) {
      ssize_t ignored = write(fd, head, static_cast<size_t>(n));
      ignored = write(fd, g_crash_buf,
                      g_crash_len.load(std::memory_order_relaxed));
      (void)ignored;
    }
  }
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process still dies with the original signal.
  raise(sig);
}

}  // namespace

std::string Watchdog::Health::ToJson() const {
  std::string out = "{\"ok\":";
  out += ok ? "true" : "false";
  char buf[160];
  snprintf(buf, sizeof(buf),
           ",\"threads\":%zu,\"dumps\":%llu,\"health_state\":%d"
           ",\"io_retries\":%llu,\"io_errors\":%llu",
           threads, static_cast<unsigned long long>(dumps), degraded ? 1 : 0,
           static_cast<unsigned long long>(io_retries),
           static_cast<unsigned long long>(io_errors));
  out += buf;
  out += ",\"complaints\":[";
  for (size_t i = 0; i < complaints.size(); ++i) {
    if (i) out.push_back(',');
    out.push_back('"');
    for (char c : complaints[i]) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
  }
  out += "]}";
  return out;
}

void Watchdog::Retain(const Options& options) {
  std::lock_guard<std::mutex> g(mu_);
  options_ = options;  // last retainer's options win
  if (++retainers_ == 1) {
    stop_.store(false, std::memory_order_relaxed);
    MaybeInstallSignalHandlers();
    thread_ = std::thread([this] { Loop(); });
  }
}

void Watchdog::Release() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (retainers_ == 0) return;
    if (--retainers_ > 0) return;
    stop_.store(true, std::memory_order_release);
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

bool Watchdog::running() const {
  std::lock_guard<std::mutex> g(mu_);
  return retainers_ > 0;
}

uint64_t Watchdog::RegisterProgressProbe(std::string name,
                                         std::function<bool()> outstanding,
                                         std::function<uint64_t()> position) {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t token = next_probe_token_++;
  Probe p;
  p.name = std::move(name);
  p.outstanding = std::move(outstanding);
  p.position = std::move(position);
  probes_[token] = std::move(p);
  return token;
}

void Watchdog::UnregisterProbe(uint64_t token) {
  std::lock_guard<std::mutex> g(mu_);
  probes_.erase(token);
}

Watchdog::Health Watchdog::Check() {
  Health h;
  const uint64_t now = Cycles::Now();
  uint64_t stall_ms;
  {
    std::lock_guard<std::mutex> g(mu_);
    stall_ms = options_.stall_ms;
    for (auto& [token, p] : probes_) {
      const uint64_t pos = p.position();
      if (!p.primed || pos != p.last_position) {
        p.last_position = pos;
        p.last_change_tsc = now;
        p.primed = true;
        continue;
      }
      if (p.outstanding() &&
          AgeMs(now, p.last_change_tsc) > static_cast<double>(stall_ms)) {
        char buf[256];
        snprintf(buf, sizeof(buf),
                 "probe %s stuck at %llu with work outstanding for %.0f ms",
                 p.name.c_str(), static_cast<unsigned long long>(pos),
                 AgeMs(now, p.last_change_tsc));
        h.complaints.push_back(buf);
      }
    }
  }
  const auto rows = Heartbeats::Default().Snapshot();
  h.threads = rows.size();
  for (const auto& r : rows) {
    if (r.idle) continue;
    const double age = AgeMs(now, r.last_beat_tsc);
    if (age > static_cast<double>(stall_ms)) {
      char buf[256];
      snprintf(buf, sizeof(buf), "thread %s stalled in stage %s for %.0f ms",
               r.name.c_str(), r.stage, age);
      h.complaints.push_back(buf);
    }
  }
  // Engine health latch: a degraded engine (poisoned log/page medium) is
  // unhealthy even with every thread beating on time — commits are failing
  // Unavailable, and /healthz must say 503 so writers get routed away.
  auto& eh = EngineHealth::Default();
  if (eh.degraded()) {
    h.degraded = true;
    h.degraded_reason = eh.reason();
    h.complaints.push_back("engine degraded (read-only): " +
                           h.degraded_reason);
  }
  h.io_retries = eh.io_retries();
  h.io_errors = eh.io_errors();
  h.ok = h.complaints.empty();
  h.dumps = dumps_.load(std::memory_order_relaxed);
  return h;
}

std::string Watchdog::RenderReport(const std::string& reason) {
  Health h = Check();
  const uint64_t now = Cycles::Now();
  std::string out;
  out.reserve(1 << 16);
  out += "DORADB_BLACKBOX v1\n";
  out += "reason: " + reason + "\n";
  char buf[320];
  snprintf(buf, sizeof(buf), "wall_ms: %lld\n",
           static_cast<long long>(WallMs()));
  out += buf;
  out += "== threads ==\n";
  for (const auto& r : Heartbeats::Default().Snapshot()) {
    snprintf(buf, sizeof(buf), "%-28s stage=%-14s idle=%d age_ms=%.1f\n",
             r.name.c_str(), r.stage, r.idle ? 1 : 0,
             AgeMs(now, r.last_beat_tsc));
    out += buf;
  }
  out += "== health ==\n";
  out += h.ToJson();
  out += "\n== heatmap ==\n";
  out += LoadHeatmap::Default().ToJson();
  out += "\n== metrics ==\n";
  out += MetricsRegistry::Default().Snapshot().ToJson();
  out += "\n== trace ==\n";
  out += CommitTracer::DumpText();
  out += "== end ==\n";
  return out;
}

std::string Watchdog::WriteBlackbox(const std::string& reason) {
  std::string dir;
  {
    std::lock_guard<std::mutex> g(mu_);
    if (options_.dump_dir.empty()) return "";
    dir = options_.dump_dir + "/blackbox";
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "";
  const uint64_t n = dumps_.fetch_add(1, std::memory_order_relaxed) + 1;
  char name[96];
  snprintf(name, sizeof(name), "/blackbox-%lld-%llu.txt",
           static_cast<long long>(WallMs()),
           static_cast<unsigned long long>(n));
  const std::string path = dir + name;
  std::ofstream f(path, std::ios::trunc);
  if (!f) return "";
  f << RenderReport(reason);
  f.close();
  {
    std::lock_guard<std::mutex> g(mu_);
    last_dump_tsc_ = Cycles::Now();
  }
  return path;
}

void Watchdog::Loop() {
  ScopedHeartbeat hb("obs.watchdog");
  for (;;) {
    uint64_t interval_ms;
    {
      std::lock_guard<std::mutex> g(mu_);
      interval_ms = options_.interval_ms;
    }
    // Nap in short slices so Release() never waits a full interval; the
    // nap is marked idle so a long interval never looks like a stall of
    // the watchdog itself.
    hb->SetIdle(true);
    uint64_t slept = 0;
    while (slept < interval_ms && !stop_.load(std::memory_order_acquire)) {
      const uint64_t slice = std::min<uint64_t>(10, interval_ms - slept);
      NapMicros(slice * 1000);
      slept += slice;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    hb->SetIdle(false);
    hb->SetStage("sweep");
    LoadHeatmap::Default().Sweep();
    hb->SetStage("check");
    Health h = Check();
    ticks_.fetch_add(1, std::memory_order_relaxed);

    bool dump = false;
    {
      std::lock_guard<std::mutex> g(mu_);
      if (!h.ok && !options_.dump_dir.empty()) {
        const double gap = AgeMs(Cycles::Now(), last_dump_tsc_);
        if (was_healthy_ || last_dump_tsc_ == 0 ||
            gap > static_cast<double>(options_.dump_min_gap_ms)) {
          dump = true;
        }
      }
      was_healthy_ = h.ok;
    }
    if (dump) {
      hb->SetStage("dump");
      WriteBlackbox(h.complaints.empty() ? "stall" : h.complaints.front());
    }

    // Keep the fatal-signal buffer fresh: thread table + verdict only
    // (the handler must not allocate or lock).
    if (g_crash_fd.load(std::memory_order_relaxed) >= 0) {
      std::string snap = "== threads ==\n";
      const uint64_t now = Cycles::Now();
      for (const auto& r : Heartbeats::Default().Snapshot()) {
        char buf[320];
        snprintf(buf, sizeof(buf), "%-28s stage=%-14s idle=%d age_ms=%.1f\n",
                 r.name.c_str(), r.stage, r.idle ? 1 : 0,
                 AgeMs(now, r.last_beat_tsc));
        snap += buf;
      }
      snap += h.ToJson();
      snap.push_back('\n');
      const size_t len = std::min(snap.size(), kCrashBufSize);
      memcpy(g_crash_buf, snap.data(), len);
      g_crash_len.store(len, std::memory_order_relaxed);
    }
    hb->SetStage("nap");
  }
}

void Watchdog::MaybeInstallSignalHandlers() {
  // Called under mu_ from the first Retain. Off by default: installing
  // process-wide handlers from a library surprises embedders and test
  // harnesses, so it is an explicit opt-in.
  static bool installed = false;
  if (installed) return;
  const char* env = std::getenv("DORADB_BLACKBOX_SIGNALS");
  if (env == nullptr || env[0] != '1') return;
  installed = true;
  if (!options_.dump_dir.empty()) {
    const std::string dir = options_.dump_dir + "/blackbox";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) {
      const int fd = open((dir + "/crash.txt").c_str(),
                          O_CREAT | O_WRONLY | O_TRUNC, 0644);
      if (fd >= 0) g_crash_fd.store(fd, std::memory_order_relaxed);
    }
  }
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = CrashHandler;
  sa.sa_flags = SA_RESETHAND;
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGABRT, &sa, nullptr);
  sigaction(SIGBUS, &sa, nullptr);
}

Watchdog& Watchdog::Default() {
  static Watchdog* dog = new Watchdog();  // leaked: process lifetime
  return *dog;
}

}  // namespace obs
}  // namespace doradb
