// Per-thread heartbeat table: the watchdog's view of every engine
// background thread (executors, log flushers, checkpoint coordinator,
// commit-ack daemons).
//
// Each long-running loop registers a named Handle and calls Beat() once
// per iteration — one relaxed tsc store, cheap enough for the executor
// drain loop. Threads that block *by design* (an executor parked on an
// empty inbox, an ack daemon waiting on its condvar) mark themselves
// idle first so the watchdog never confuses "no work" with "stuck".
// SetStage() publishes a static string naming what the thread is doing
// right now; it is read by the watchdog for the blackbox per-thread
// table, so stage strings must have static storage duration.
//
// Handles are owned by the table and freed on Unregister — every loop
// must unregister before its thread object is joined and destroyed
// (ScopedHeartbeat does this). Snapshot() copies rows under the table
// mutex, so the watchdog never dereferences a dying handle.

#ifndef DORADB_OBS_HEARTBEAT_H_
#define DORADB_OBS_HEARTBEAT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/clock.h"

namespace doradb {
namespace obs {

class Heartbeats {
 public:
  class Handle {
   public:
    void Beat() { last_beat_.store(Cycles::Now(), std::memory_order_relaxed); }
    // `stage` must point at a string literal / static storage.
    void SetStage(const char* stage) {
      stage_.store(stage, std::memory_order_relaxed);
    }
    // Idle threads (parked, condvar wait) are exempt from staleness
    // checks. Leaving idle counts as a beat.
    void SetIdle(bool idle) {
      idle_.store(idle, std::memory_order_relaxed);
      if (!idle) Beat();
    }
    const std::string& name() const { return name_; }

   private:
    friend class Heartbeats;
    explicit Handle(std::string name) : name_(std::move(name)) { Beat(); }

    const std::string name_;
    std::atomic<uint64_t> last_beat_{0};
    std::atomic<const char*> stage_{"start"};
    std::atomic<bool> idle_{false};
  };

  struct Row {
    std::string name;
    const char* stage;
    bool idle;
    uint64_t last_beat_tsc;
  };

  Handle* Register(std::string name);
  void Unregister(Handle* h);
  std::vector<Row> Snapshot() const;
  size_t size() const;

  // The process-wide table the engine's threads beat into.
  static Heartbeats& Default();

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Handle>> handles_;
};

// RAII registration for thread loops: registers against the default
// table on entry, unregisters on scope exit (i.e. before the thread
// function returns and the thread becomes joinable-dead).
class ScopedHeartbeat {
 public:
  explicit ScopedHeartbeat(std::string name)
      : h_(Heartbeats::Default().Register(std::move(name))) {}
  ~ScopedHeartbeat() { Heartbeats::Default().Unregister(h_); }
  ScopedHeartbeat(const ScopedHeartbeat&) = delete;
  ScopedHeartbeat& operator=(const ScopedHeartbeat&) = delete;

  Heartbeats::Handle* get() const { return h_; }
  Heartbeats::Handle* operator->() const { return h_; }

 private:
  Heartbeats::Handle* h_;
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_HEARTBEAT_H_
