#include "obs/profiler.h"

#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace doradb {
namespace obs {

namespace {

struct GapHistos {
  Histogram* queue_wait = nullptr;
  Histogram* service = nullptr;
  Histogram* flush_wait = nullptr;
  Histogram* ack = nullptr;
};

std::atomic<uint32_t> g_sample_n{0};
std::atomic<uint64_t> g_recorded{0};

// Cold state: touched at Enable() and once per *sampled* txn retirement
// (~1-in-64), so a plain mutex is fine.
std::mutex g_mu;
bool g_env_checked = false;
GapHistos g_global;                // valid while g_sample_n != 0
std::vector<GapHistos> g_by_exec;  // index = executor global index

GapHistos MakeGapHistos(const std::string& prefix) {
  auto& reg = MetricsRegistry::Default();
  GapHistos h;
  h.queue_wait = reg.GetHistogram(prefix + "queue_wait_ns", "ns");
  h.service = reg.GetHistogram(prefix + "service_ns", "ns");
  h.flush_wait = reg.GetHistogram(prefix + "flush_wait_ns", "ns");
  h.ack = reg.GetHistogram(prefix + "ack_ns", "ns");
  return h;
}

// Record `later - earlier` when both endpoints were stamped and in
// order; a missing endpoint means that txn never reached the stage
// (abort, non-pipelined path) and the gap is simply not a sample.
void RecordGap(Histogram* h, const StageStamps& s, TraceStage from,
               TraceStage to) {
  const uint64_t a = s.At(from);
  const uint64_t b = s.At(to);
  if (a == 0 || b == 0 || b < a) return;
  h->Record(static_cast<uint64_t>(Cycles::ToNanos(b - a)));
}

}  // namespace

void StageGapProfiler::Enable(uint32_t sample_n) {
  std::lock_guard<std::mutex> g(g_mu);
  g_env_checked = true;  // explicit choice beats the env default
  if (sample_n != 0 && g_global.queue_wait == nullptr) {
    g_global = MakeGapHistos("prof.gap.");
  }
  g_sample_n.store(sample_n, std::memory_order_relaxed);
}

bool StageGapProfiler::Enabled() {
  return g_sample_n.load(std::memory_order_relaxed) != 0;
}

uint32_t StageGapProfiler::sample_n() {
  return g_sample_n.load(std::memory_order_relaxed);
}

void StageGapProfiler::EnsureInitFromEnv() {
  {
    std::lock_guard<std::mutex> g(g_mu);
    if (g_env_checked) return;
    g_env_checked = true;
  }
  const char* env = std::getenv("DORADB_PROF_SAMPLE");
  uint32_t n = kDefaultSampleN;
  if (env != nullptr && *env != '\0') {
    n = static_cast<uint32_t>(std::strtoul(env, nullptr, 10));
  }
  // Re-take the lock inside Enable (it re-sets g_env_checked, harmless).
  Enable(n);
}

bool StageGapProfiler::Sample(uint64_t txn_id) {
  const uint32_t n = g_sample_n.load(std::memory_order_relaxed);
  if (n == 0 || !MetricsEnabled()) return false;
  return txn_id % n == 0;
}

void StageGapProfiler::RecordTxn(const StageStamps& s) {
  if (!Enabled()) return;
  std::lock_guard<std::mutex> g(g_mu);
  if (g_global.queue_wait == nullptr) return;
  RecordGap(g_global.queue_wait, s, TraceStage::kEnqueue, TraceStage::kDrain);
  RecordGap(g_global.service, s, TraceStage::kDrain, TraceStage::kExecute);
  RecordGap(g_global.flush_wait, s, TraceStage::kCommitAppend,
            TraceStage::kDurable);
  RecordGap(g_global.ack, s, TraceStage::kDurable, TraceStage::kAck);

  const uint32_t exec = s.executor.load(std::memory_order_relaxed);
  if (exec != StageStamps::kNoExecutor && exec < 4096) {
    if (g_by_exec.size() <= exec) g_by_exec.resize(exec + 1);
    GapHistos& eh = g_by_exec[exec];
    if (eh.queue_wait == nullptr) {
      eh = MakeGapHistos("dora.exec." + std::to_string(exec) + ".gap.");
    }
    RecordGap(eh.queue_wait, s, TraceStage::kEnqueue, TraceStage::kDrain);
    RecordGap(eh.service, s, TraceStage::kDrain, TraceStage::kExecute);
    RecordGap(eh.flush_wait, s, TraceStage::kCommitAppend,
              TraceStage::kDurable);
    RecordGap(eh.ack, s, TraceStage::kDurable, TraceStage::kAck);
  }
  g_recorded.fetch_add(1, std::memory_order_relaxed);
}

uint64_t StageGapProfiler::recorded() {
  return g_recorded.load(std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace doradb
