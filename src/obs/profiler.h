// Stage-gap profiler: continuous aggregation of the CommitTracer's
// seven-stage commit path into always-on registry histograms.
//
// The tracer (trace.h) answers "what happened to txn 4217" with a one-off
// per-txn dump; the profiler answers "where do transactions wait, right
// now, continuously" by folding the stage-to-stage gaps of a sampled
// subset of transactions into the metrics registry:
//
//   prof.gap.queue_wait_ns   enqueue → drain    (inbox queueing delay)
//   prof.gap.service_ns      drain → execute    (admission + run)
//   prof.gap.flush_wait_ns   commit-append → durable (group-commit wait)
//   prof.gap.ack_ns          durable → ack      (completion delivery)
//
// plus the same four gaps keyed per draining executor
// (`dora.exec.<g>.gap.*`), which is the per-executor queue-delay signal
// the adaptive-routing roadmap item consumes.
//
// Cost model: instead of a shared hash table keyed by txn id, each
// DoraTxn context embeds a StageStamps card. Arming is decided once per
// transaction at dispatch (1-in-N by txn id, `DORADB_PROF_SAMPLE`,
// default 64); unarmed transactions pay one branch per stamp site. Armed
// transactions stamp raw tsc values along the pipeline and fold them
// into the histograms exactly once, at completion — so the steady-state
// hot-path cost stays inside the fig_obs_overhead ≤2% bar.

#ifndef DORADB_OBS_PROFILER_H_
#define DORADB_OBS_PROFILER_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "obs/trace.h"
#include "util/clock.h"

namespace doradb {
namespace obs {

// Per-transaction stage timestamp card, embedded in dora::DoraTxn and
// recycled with it. Stamps are first-wins: a multi-action transaction
// profiles its first action through enqueue/drain/execute, which is the
// leading edge of the pipeline. Slots are relaxed atomics because
// different executors may race to stamp the same stage for sibling
// actions (first CAS wins; either contender's tsc is an equally valid
// "first time this stage was reached").
struct StageStamps {
  static constexpr uint32_t kNoExecutor = UINT32_MAX;

  std::array<std::atomic<uint64_t>, kNumTraceStages> tsc;
  std::atomic<uint32_t> executor{kNoExecutor};
  // Written by the dispatching client before any action is pushed, read
  // by executors after a drain — ordered by the inbox handoff.
  bool armed = false;

  StageStamps() { Reset(); }
  void Reset() {
    for (auto& t : tsc) t.store(0, std::memory_order_relaxed);
    executor.store(kNoExecutor, std::memory_order_relaxed);
    armed = false;
  }
  void Stamp(TraceStage s) {
    auto& slot = tsc[static_cast<size_t>(s)];
    uint64_t expected = 0;
    slot.compare_exchange_strong(expected, Cycles::Now(),
                                 std::memory_order_relaxed,
                                 std::memory_order_relaxed);
  }
  // Record which executor drained the (first) action.
  void SetExecutor(uint32_t global_index) {
    uint32_t expected = kNoExecutor;
    executor.compare_exchange_strong(expected, global_index,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed);
  }
  uint64_t At(TraceStage s) const {
    return tsc[static_cast<size_t>(s)].load(std::memory_order_relaxed);
  }
};

class StageGapProfiler {
 public:
  static constexpr uint32_t kDefaultSampleN = 64;

  // Enable with 1-in-N sampling by txn id (n == 0 disables). Registers
  // the global gap histograms eagerly so they appear in snapshots before
  // the first sampled transaction retires.
  static void Enable(uint32_t sample_n);
  static void Disable() { Enable(0); }
  static bool Enabled();
  static uint32_t sample_n();

  // One-time lazy init from `DORADB_PROF_SAMPLE` (absent → default 64,
  // "0" → off). Called by DoraEngine::Start; an explicit Enable()
  // beforehand wins. Idempotent.
  static void EnsureInitFromEnv();

  // Arming gate, evaluated once per transaction at dispatch: profiler
  // on, metrics gate on, and this txn id selected by the sampler.
  static bool Sample(uint64_t txn_id);

  // Fold one retired transaction's stamps into the gap histograms. A gap
  // whose endpoints are not both stamped (e.g. an aborted transaction
  // never reaching commit-append) is skipped, not recorded as 0. Called
  // at most once per armed transaction, off the per-action path.
  static void RecordTxn(const StageStamps& s);

  // Total transactions folded in (tests).
  static uint64_t recorded();
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_PROFILER_H_
