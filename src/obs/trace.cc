#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

#include "util/clock.h"

namespace doradb {
namespace obs {

std::atomic<bool> CommitTracer::enabled_{false};

const char* TraceStageName(TraceStage s) {
  switch (s) {
    case TraceStage::kDispatch: return "dispatch";
    case TraceStage::kEnqueue: return "enqueue";
    case TraceStage::kDrain: return "drain";
    case TraceStage::kExecute: return "execute";
    case TraceStage::kCommitAppend: return "commit-append";
    case TraceStage::kDurable: return "durable";
    case TraceStage::kAck: return "ack";
  }
  return "?";
}

namespace {

// One thread's wrapping event ring. The mutex is uncontended in steady
// state (only the owning thread stamps); Dump/Enable take it briefly to
// copy or clear. Same shape as the ThreadStats registry: rings leak so a
// stamp from a thread that outlives an enable/disable cycle stays safe.
struct TraceRing {
  std::mutex mu;
  std::vector<TraceEvent> buf;
  size_t capacity = CommitTracer::kDefaultRingSize;
  size_t next = 0;       // total events ever stamped (mod for slot)
};

struct TraceRegistry {
  std::mutex mu;
  std::vector<std::shared_ptr<TraceRing>> rings;
  size_t ring_size = CommitTracer::kDefaultRingSize;
};

TraceRegistry& Registry() {
  static TraceRegistry* r = new TraceRegistry();  // leaked: outlives threads
  return *r;
}

TraceRing* MyRing() {
  thread_local std::shared_ptr<TraceRing> ring = [] {
    auto r = std::make_shared<TraceRing>();
    TraceRegistry& reg = Registry();
    std::lock_guard<std::mutex> g(reg.mu);
    r->capacity = reg.ring_size;
    reg.rings.push_back(r);
    return r;
  }();
  return ring.get();
}

}  // namespace

void CommitTracer::Enable(size_t ring_size) {
  if (ring_size == 0) ring_size = 1;
  TraceRegistry& reg = Registry();
  {
    std::lock_guard<std::mutex> g(reg.mu);
    reg.ring_size = ring_size;
    for (auto& ring : reg.rings) {
      std::lock_guard<std::mutex> rg(ring->mu);
      ring->buf.clear();
      ring->capacity = ring_size;
      ring->next = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void CommitTracer::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void CommitTracer::StampSlow(uint64_t txn_id, TraceStage stage) {
  TraceRing* ring = MyRing();
  const uint64_t now = Cycles::Now();
  std::lock_guard<std::mutex> g(ring->mu);
  const size_t slot = ring->next % ring->capacity;
  if (slot < ring->buf.size()) {
    ring->buf[slot] = TraceEvent{txn_id, now, stage};
  } else {
    ring->buf.push_back(TraceEvent{txn_id, now, stage});
  }
  ring->next++;
}

std::vector<TraceEvent> CommitTracer::Dump() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    TraceRegistry& reg = Registry();
    std::lock_guard<std::mutex> g(reg.mu);
    rings = reg.rings;
  }
  std::vector<TraceEvent> out;
  for (auto& ring : rings) {
    std::lock_guard<std::mutex> g(ring->mu);
    out.insert(out.end(), ring->buf.begin(), ring->buf.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.txn_id != b.txn_id) return a.txn_id < b.txn_id;
              if (a.tsc != b.tsc) return a.tsc < b.tsc;
              return static_cast<uint8_t>(a.stage) <
                     static_cast<uint8_t>(b.stage);
            });
  return out;
}

std::string CommitTracer::DumpText() {
  const std::vector<TraceEvent> events = Dump();
  std::ostringstream os;
  uint64_t cur_txn = 0;
  uint64_t t0 = 0;
  bool have_txn = false;
  for (const TraceEvent& e : events) {
    if (!have_txn || e.txn_id != cur_txn) {
      cur_txn = e.txn_id;
      t0 = e.tsc;
      have_txn = true;
      os << "txn " << cur_txn << ":\n";
    }
    os << "  " << TraceStageName(e.stage) << " +"
       << static_cast<uint64_t>(Cycles::ToNanos(e.tsc - t0)) << "ns\n";
  }
  return os.str();
}

}  // namespace obs
}  // namespace doradb
