#include "obs/obs_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/watchdog.h"

namespace doradb {
namespace obs {

namespace {

const char* StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.0 200 OK";
    case 404:
      return "HTTP/1.0 404 Not Found";
    case 503:
      return "HTTP/1.0 503 Service Unavailable";
    default:
      return "HTTP/1.0 500 Internal Server Error";
  }
}

void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
    off += static_cast<size_t>(n);
  }
}

}  // namespace

ObsServer::ObsServer(Options options) : options_(options) {}

ObsServer::~ObsServer() { Stop(); }

Status ObsServer::Start() {
  if (listen_fd_ >= 0) return Status::OK();
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError("obs_server: socket: " +
                           std::string(strerror(errno)));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // diagnostics stay local
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError("obs_server: bind port " +
                           std::to_string(options_.port) + ": " +
                           strerror(err));
  }
  if (listen(fd, 16) != 0) {
    const int err = errno;
    close(fd);
    return Status::IOError("obs_server: listen: " +
                           std::string(strerror(err)));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void ObsServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = -1;
}

std::pair<int, std::string> ObsServer::Handle(const std::string& path) {
  if (path == "/metrics") {
    return {200, MetricsRegistry::Default().Snapshot().ToJson()};
  }
  if (path == "/heatmap") {
    return {200, LoadHeatmap::Default().ToJson()};
  }
  if (path == "/healthz") {
    Watchdog::Health h = Watchdog::Default().Check();
    return {h.ok ? 200 : 503, h.ToJson()};
  }
  return {404, "{\"error\":\"not found\"}"};
}

void ObsServer::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = poll(&pfd, 1, 100 /*ms*/);
    if (r <= 0) continue;  // timeout / EINTR: re-check stop
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    // One request line is all we need; a 2s receive timeout bounds the
    // damage a stuck client can do to the (single) serving thread.
    timeval tv{2, 0};
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char buf[1024];
    const ssize_t n = read(conn, buf, sizeof(buf) - 1);
    if (n > 0) {
      buf[n] = '\0';
      std::string path;
      if (strncmp(buf, "GET ", 4) == 0) {
        const char* start = buf + 4;
        const char* end = start;
        while (*end != '\0' && *end != ' ' && *end != '\r' && *end != '\n') {
          ++end;
        }
        path.assign(start, end);
      }
      const auto [code, body] = Handle(path);
      char head[160];
      snprintf(head, sizeof(head),
               "%s\r\nContent-Type: application/json\r\n"
               "Content-Length: %zu\r\nConnection: close\r\n\r\n",
               StatusLine(code), body.size());
      WriteAll(conn, std::string(head) + body);
      requests_.fetch_add(1, std::memory_order_relaxed);
    }
    close(conn);
  }
}

}  // namespace obs
}  // namespace doradb
