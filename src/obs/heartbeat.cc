#include "obs/heartbeat.h"

#include <algorithm>

namespace doradb {
namespace obs {

Heartbeats::Handle* Heartbeats::Register(std::string name) {
  std::lock_guard<std::mutex> g(mu_);
  handles_.emplace_back(new Handle(std::move(name)));
  return handles_.back().get();
}

void Heartbeats::Unregister(Handle* h) {
  std::lock_guard<std::mutex> g(mu_);
  handles_.erase(
      std::remove_if(handles_.begin(), handles_.end(),
                     [h](const std::unique_ptr<Handle>& p) {
                       return p.get() == h;
                     }),
      handles_.end());
}

std::vector<Heartbeats::Row> Heartbeats::Snapshot() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<Row> rows;
  rows.reserve(handles_.size());
  for (const auto& h : handles_) {
    rows.push_back(Row{h->name_,
                       h->stage_.load(std::memory_order_relaxed),
                       h->idle_.load(std::memory_order_relaxed),
                       h->last_beat_.load(std::memory_order_relaxed)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.name < b.name; });
  return rows;
}

size_t Heartbeats::size() const {
  std::lock_guard<std::mutex> g(mu_);
  return handles_.size();
}

Heartbeats& Heartbeats::Default() {
  static Heartbeats* table = new Heartbeats();  // leaked: process lifetime
  return *table;
}

}  // namespace obs
}  // namespace doradb
