// Commit-path span tracer: stamps each transaction's lifecycle into
// per-thread ring buffers, dumpable on demand.
//
// The seven stages mirror the path a DORA transaction takes through the
// engine (§3 of the paper: route → enqueue → serve → commit):
//
//   dispatch       flow graph admitted, actions about to be routed
//   enqueue        actions pushed onto executor inboxes
//   drain          an executor pulled the action out of its inbox
//   execute        the action ran against the executor's partition
//   commit-append  commit record handed to the log
//   durable        group commit reported the record stable
//   ack            client completion signaled
//
// Design mirrors ThreadStats: each thread lazily registers a ring in a
// leaked global registry and stamps without coordination beyond its own
// ring mutex (uncontended except while a dump is copying). Tracing is off
// by default; when off, Stamp() is one relaxed bool load. Rings wrap —
// the newest events win — so the tracer is safe to leave enabled during
// long runs; Dump() merges all rings and sorts by (txn, time).

#ifndef DORADB_OBS_TRACE_H_
#define DORADB_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace doradb {
namespace obs {

enum class TraceStage : uint8_t {
  kDispatch = 0,
  kEnqueue = 1,
  kDrain = 2,
  kExecute = 3,
  kCommitAppend = 4,
  kDurable = 5,
  kAck = 6,
};
constexpr size_t kNumTraceStages = 7;
const char* TraceStageName(TraceStage s);

struct TraceEvent {
  uint64_t txn_id = 0;
  uint64_t tsc = 0;  // Cycles::Now() at the stamp
  TraceStage stage = TraceStage::kDispatch;
};

class CommitTracer {
 public:
  static constexpr size_t kDefaultRingSize = 4096;

  // Start tracing with per-thread rings of `ring_size` events. Clears any
  // events from a previous enable and resizes existing rings.
  static void Enable(size_t ring_size = kDefaultRingSize);
  static void Disable();
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Record `stage` for `txn_id` at the current cycle count. A no-op
  // (single relaxed load) while tracing is disabled.
  static void Stamp(uint64_t txn_id, TraceStage stage) {
    if (!Enabled()) return;
    StampSlow(txn_id, stage);
  }

  // Merge every thread's ring into one list sorted by (txn_id, tsc).
  // Safe to call while tracing is live; events stamped concurrently with
  // the dump may or may not appear.
  static std::vector<TraceEvent> Dump();

  // Dump() grouped by transaction: one line per event with the stage name
  // and nanoseconds since the transaction's first stamped event.
  static std::string DumpText();

 private:
  static void StampSlow(uint64_t txn_id, TraceStage stage);

  static std::atomic<bool> enabled_;
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_TRACE_H_
