#include "obs/heatmap.h"

#include <algorithm>
#include <chrono>
#include <cstdarg>
#include <cstdio>

#include "obs/metrics.h"
#include "util/clock.h"

namespace doradb {
namespace obs {

namespace {

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void AppendF(std::string* out, const char* fmt, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, fmt);
  vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  out->append(buf);
}

}  // namespace

LoadHeatmap::LoadHeatmap(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

uint64_t LoadHeatmap::DeltaPercentile(
    const std::array<uint64_t, Histogram::kNumBuckets>& buckets,
    uint64_t total, double p) {
  if (total == 0) return 0;
  const double target = p / 100.0 * static_cast<double>(total);
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
    const uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const uint64_t lo = i == 0 ? 0 : (uint64_t{1} << i);
      const uint64_t hi = (i >= 63) ? UINT64_MAX : (uint64_t{1} << (i + 1));
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += in_bucket;
  }
  return 0;
}

uint64_t LoadHeatmap::RegisterSource(HeatmapSource fn) {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t token = next_token_++;
  sources_[token] = std::move(fn);
  return token;
}

void LoadHeatmap::UnregisterSource(uint64_t token) {
  std::lock_guard<std::mutex> g(mu_);
  sources_.erase(token);
}

void LoadHeatmap::Sweep() {
  std::lock_guard<std::mutex> g(mu_);
  const uint64_t now = Cycles::Now();

  std::vector<ExecLoadRaw> raws;
  for (const auto& [token, fn] : sources_) {
    auto part = fn();
    raws.insert(raws.end(), part.begin(), part.end());
  }

  HeatmapWindow w;
  w.seq = next_seq_++;
  w.wall_ms = WallMs();
  for (const ExecLoadRaw& raw : raws) {
    PrevRaw& prev = prev_[raw.executor];
    ExecutorSample s;
    s.executor = raw.executor;
    s.inbox_depth = raw.inbox_depth;
    if (prev.valid && now > prev.tsc) {
      const double span_s = Cycles::ToNanos(now - prev.tsc) / 1e9;
      const double span_cycles = static_cast<double>(now - prev.tsc);
      if (span_s > 0) {
        s.drained_per_s =
            static_cast<double>(raw.actions_executed - prev.actions) / span_s;
      }
      const double busy =
          static_cast<double>(raw.busy_cycles - prev.busy_cycles) /
          span_cycles;
      s.busy_frac = std::clamp(busy, 0.0, 1.0);
      if (raw.queue_wait != nullptr) {
        std::array<uint64_t, Histogram::kNumBuckets> delta{};
        uint64_t total = 0;
        for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          const uint64_t c = raw.queue_wait->BucketCount(i);
          delta[i] = c - prev.qwait_buckets[i];
          total += delta[i];
          prev.qwait_buckets[i] = c;
        }
        s.queue_wait_p99_ns = DeltaPercentile(delta, total, 99.0);
        prev.qwait_count += total;
      }
    } else if (raw.queue_wait != nullptr) {
      // Prime the diff state on the first sweep for this executor.
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        prev.qwait_buckets[i] = raw.queue_wait->BucketCount(i);
      }
    }
    prev.actions = raw.actions_executed;
    prev.busy_cycles = raw.busy_cycles;
    prev.tsc = now;
    prev.valid = true;
    w.rows.push_back(s);

    // Mirror the levels into registry gauges so /metrics and DORADB_STATS
    // carry the per-executor load signal without parsing heatmap JSON.
    // GetGauge's name lookup is a mutex, but Sweep runs at watchdog
    // cadence (~4 Hz), not on the hot path.
    auto& reg = MetricsRegistry::Default();
    const std::string prefix = "dora.exec." + std::to_string(s.executor);
    reg.GetGauge(prefix + ".busy_pct", "%")
        ->Set(static_cast<int64_t>(s.busy_frac * 100.0 + 0.5));
    reg.GetGauge(prefix + ".drained_per_s", "actions/s")
        ->Set(static_cast<int64_t>(s.drained_per_s + 0.5));
    reg.GetGauge(prefix + ".queue_wait_p99_ns", "ns")
        ->Set(static_cast<int64_t>(s.queue_wait_p99_ns));
  }
  if (now > last_sweep_tsc_ && last_sweep_tsc_ != 0) {
    w.span_ms = Cycles::ToNanos(now - last_sweep_tsc_) / 1e6;
  }
  last_sweep_tsc_ = now;

  std::sort(w.rows.begin(), w.rows.end(),
            [](const ExecutorSample& a, const ExecutorSample& b) {
              return a.executor < b.executor;
            });
  ring_.push_back(std::move(w));
  while (ring_.size() > capacity_) ring_.pop_front();
}

void LoadHeatmap::Push(HeatmapWindow w) {
  std::lock_guard<std::mutex> g(mu_);
  w.seq = next_seq_++;
  if (w.wall_ms == 0) w.wall_ms = WallMs();
  ring_.push_back(std::move(w));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<HeatmapWindow> LoadHeatmap::Windows() const {
  std::lock_guard<std::mutex> g(mu_);
  return {ring_.begin(), ring_.end()};
}

HeatmapWindow LoadHeatmap::Latest() const {
  std::lock_guard<std::mutex> g(mu_);
  if (ring_.empty()) return HeatmapWindow{};
  return ring_.back();
}

uint64_t LoadHeatmap::sweeps() const {
  std::lock_guard<std::mutex> g(mu_);
  return next_seq_ - 1;
}

std::string LoadHeatmap::WindowJson(const HeatmapWindow& w) {
  std::string out = "{";
  AppendF(&out, "\"seq\":%llu,\"ts_ms\":%lld,\"span_ms\":%.3f,\"executors\":[",
          static_cast<unsigned long long>(w.seq),
          static_cast<long long>(w.wall_ms), w.span_ms);
  bool first = true;
  for (const ExecutorSample& s : w.rows) {
    if (!first) out.push_back(',');
    first = false;
    AppendF(&out,
            "{\"exec\":%u,\"depth\":%lld,\"drained_per_s\":%.1f,"
            "\"qwait_p99_ns\":%llu,\"busy_frac\":%.4f}",
            s.executor, static_cast<long long>(s.inbox_depth), s.drained_per_s,
            static_cast<unsigned long long>(s.queue_wait_p99_ns), s.busy_frac);
  }
  out += "]}";
  return out;
}

std::string LoadHeatmap::ToJson() const {
  std::vector<HeatmapWindow> windows = Windows();
  std::string out = "{";
  AppendF(&out, "\"ts_ms\":%lld,\"windows\":[", static_cast<long long>(WallMs()));
  for (size_t i = 0; i < windows.size(); ++i) {
    if (i) out.push_back(',');
    out += WindowJson(windows[i]);
  }
  out += "]}";
  return out;
}

LoadHeatmap& LoadHeatmap::Default() {
  static LoadHeatmap* map = new LoadHeatmap();  // leaked: process lifetime
  return *map;
}

}  // namespace obs
}  // namespace doradb
