// Unified engine metrics registry: named counters, gauges, and
// log2-bucketed latency histograms shared by every subsystem.
//
// The paper's contribution was proven with measurement — its figures are
// time-breakdown and contention attributions — but until this module the
// engine's instrumentation was three disconnected pull-only mechanisms
// (ThreadStats, DoraEngine::InboxStats, DurabilityStats) that only the
// benchmark rigs knew how to read. The registry gives every counter one
// home, one naming scheme, and one snapshot surface (text + JSON), so the
// adaptive-execution roadmap items (live repartitioning, epoch batching,
// admission control) can consume live telemetry instead of bench plumbing.
//
// Hot-path discipline (same as ThreadStats::SwitchClass): counters are
// sharded across cache-line-padded per-thread slots written with relaxed
// stores — an Add is one relaxed fetch_add on a line no other thread
// writes in steady state — and aggregation happens only on snapshot.
// Registration (name lookup) takes a mutex and belongs at startup; hot
// sites hold the returned pointer, which stays valid for the registry's
// lifetime.
//
// Three metric flavors:
//  * owned metrics (GetCounter/GetGauge/GetHistogram): storage lives in
//    the registry, instrumentation sites push into it;
//  * callback metrics (RegisterCallback): the registry *pulls* a value at
//    snapshot time from subsystems that already maintain their own atomics
//    (executor inbox counters, log manager LSNs, checkpoint stats) — the
//    zero-cost way to fold existing stats in without double counting.
//    Callbacks must be unregistered before their subject dies;
//  * the process-wide Default() registry, which DurabilityStats and the
//    engine instrumentation feed. Tests may build private registries.
//
// Disabling (SetMetricsEnabled(false)) stops the *new* histogram/gauge
// instrumentation on hot paths (each site checks one relaxed bool);
// pre-existing engine counters keep counting so legacy accessors
// (InboxStats et al.) never regress. fig_obs_overhead A/Bs the two modes.

#ifndef DORADB_OBS_METRICS_H_
#define DORADB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/histogram.h"
#include "util/status.h"

namespace doradb {
namespace obs {

// Global hot-path gate for the metrics instrumentation added by this
// module (histogram records, tsc stamps, depth accounting). One relaxed
// load per site.
bool MetricsEnabled();
void SetMetricsEnabled(bool on);

// Monotonic counter, sharded to keep concurrent Add()s off one cache
// line. Each thread writes a sticky slot chosen at first use.
class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    auto& slot = shards_[ShardIndex()].v;
    slot.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static size_t ShardIndex();

  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

// Point-in-time signed value (queue depth, horizon, active count).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> v_{0};
};

enum class MetricType : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };
const char* MetricTypeName(MetricType t);

// One metric's state at snapshot time. Histograms carry their full bucket
// array so Delta() can subtract two snapshots and recompute percentiles
// over exactly the window between them.
struct MetricValue {
  std::string name;
  std::string unit;  // "ns", "bytes", "actions", ... (informational)
  MetricType type = MetricType::kCounter;

  // counter / gauge
  int64_t value = 0;

  // histogram summary (+ buckets for delta math)
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  // Percentiles of this snapshot (recomputed from the buckets after a
  // Delta, so a windowed snapshot's percentiles cover only the window).
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  // False when a histogram (typically a Delta window) holds zero samples:
  // the percentiles above are then meaningless and serialize as JSON
  // null rather than a fake 0.
  bool has_percentiles = true;
  std::array<uint64_t, Histogram::kNumBuckets> buckets{};

  // Percentile over the snapshot's buckets (histograms only; linear
  // interpolation within the containing log2 bucket).
  uint64_t Percentile(double p) const;
  void RecomputePercentiles();
  double Mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

struct MetricsSnapshot {
  int64_t wall_ms = 0;  // wall-clock ms at capture (unix epoch)
  // Why this snapshot was emitted ("interval" / "final" from the
  // reporter); empty snapshots omit it from JSON.
  std::string reason;
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* Find(std::string_view name) const;

  // Window math: counters and histogram counts/sums/buckets subtract
  // (this - earlier); gauges keep this snapshot's value (a level, not a
  // flow); histogram min/max keep this snapshot's bounds (they are not
  // subtractable). Metrics absent from `earlier` pass through unchanged.
  MetricsSnapshot Delta(const MetricsSnapshot& earlier) const;

  // Human-readable table, one metric per line.
  std::string ToText() const;
  // One JSON object: {"ts_ms":..,["reason":..,]"metrics":{...}}.
  // Histograms serialize count/sum/min/max/p50/p95/p99/p999 (summary, not
  // buckets); zero-sample windows emit the percentiles as null.
  // Deterministic key order (sorted by name).
  std::string ToJson() const;
  // Parse ToJson() output back: summary fields round-trip exactly; bucket
  // arrays are not serialized, so a parsed snapshot supports no further
  // Delta percentile math. Returns a named error on malformed input.
  static Status FromJson(std::string_view json, MetricsSnapshot* out);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name. Pointers are stable for the registry's
  // lifetime. A name keeps its first-registered type; a kind mismatch
  // returns the existing metric of the other kind as nullptr.
  Counter* GetCounter(const std::string& name, const std::string& unit = "");
  Gauge* GetGauge(const std::string& name, const std::string& unit = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& unit = "ns");

  // Pull-style metric: `fn` is evaluated under the registry mutex at
  // snapshot time. `type` declares the delta semantics (kCounter:
  // subtractable flow, kGauge: level). Returns a token for Unregister;
  // re-registering a live name replaces the previous callback (its token
  // dies). Callers MUST Unregister before anything `fn` touches is
  // destroyed.
  uint64_t RegisterCallback(const std::string& name,
                            std::function<int64_t()> fn,
                            MetricType type = MetricType::kGauge,
                            const std::string& unit = "");
  void Unregister(uint64_t token);

  // Aggregate every metric (owned + callback) into one sorted snapshot.
  MetricsSnapshot Snapshot() const;

  // Zero every owned counter/gauge/histogram (callback metrics reset with
  // their owners). For benches/tests; prefer snapshot deltas.
  void ResetAll();

  // The process-wide registry the engine instruments into.
  static MetricsRegistry& Default();

 private:
  struct Owned {
    MetricType type;
    std::string unit;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Callback {
    MetricType type;
    std::string unit;
    uint64_t token;
    std::function<int64_t()> fn;
  };

  mutable std::mutex mu_;
  std::map<std::string, Owned> owned_;
  std::map<std::string, Callback> callbacks_;
  uint64_t next_token_ = 1;
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_METRICS_H_
