#include "obs/health.h"

namespace doradb {
namespace obs {

EngineHealth& EngineHealth::Default() {
  static EngineHealth* instance = new EngineHealth();
  return *instance;
}

void EngineHealth::Degrade(const std::string& reason) {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (reason_.empty()) reason_ = reason;
  }
  degraded_.store(true, std::memory_order_release);
}

void EngineHealth::Reset() {
  degraded_.store(false, std::memory_order_release);
  io_retries_.store(0, std::memory_order_relaxed);
  io_errors_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> g(mu_);
  reason_.clear();
}

std::string EngineHealth::reason() const {
  std::lock_guard<std::mutex> g(mu_);
  return reason_;
}

}  // namespace obs
}  // namespace doradb
