// Stall watchdog + flight recorder: the engine's self-diagnosis thread.
//
// Every background loop beats a heartbeat (heartbeat.h); the watchdog
// wakes at `interval_ms`, drives one heatmap sweep, and checks:
//
//  * heartbeats — a non-idle registered thread silent for longer than
//    `stall_ms` is stalled (an executor stuck in an action body, a
//    flusher wedged in fsync, a checkpoint that never returns);
//  * progress probes — a subsystem position (e.g. the log flush
//    horizon) that has outstanding work but hasn't moved for `stall_ms`
//    is stuck (the group-commit-never-completes failure the pipelined
//    path gates every ack on).
//
// On a fresh unhealthy verdict it writes a black-box report to
// `<dump_dir>/blackbox/` — the last heatmap windows, a full metrics
// snapshot, the commit tracer's rings, and the per-thread stage table —
// rate-limited by `dump_min_gap_ms` so a wedged engine leaves a handful
// of reports, not a disk full of them. `/healthz` (obs_server.h) serves
// Check()'s verdict live.
//
// The watchdog is process-wide and refcounted: every Database retains it
// at construction (unless disabled by options) and releases it at
// destruction; the thread runs while any retainer is alive, and the last
// retainer's options win. With DORADB_BLACKBOX_SIGNALS=1 it also
// installs fatal-signal handlers that write the most recent pre-rendered
// thread table to `blackbox/crash.txt` via async-signal-safe write(2).

#ifndef DORADB_OBS_WATCHDOG_H_
#define DORADB_OBS_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace doradb {
namespace obs {

class Watchdog {
 public:
  struct Options {
    uint64_t interval_ms = 250;       // tick period (sweep + check)
    uint64_t stall_ms = 2000;         // silence/stuck threshold
    std::string dump_dir;             // blackbox under <dump_dir>/blackbox
    uint64_t dump_min_gap_ms = 5000;  // min spacing between dumps
  };

  struct Health {
    bool ok = true;
    std::vector<std::string> complaints;
    size_t threads = 0;    // registered heartbeats at check time
    uint64_t dumps = 0;    // blackbox reports written so far
    // Engine health latch (obs/health.h): a degraded engine serves reads
    // but fails logged commits Unavailable — /healthz reports 503 so
    // orchestration stops routing writes here.
    bool degraded = false;
    std::string degraded_reason;
    uint64_t io_retries = 0;  // transient storage errors retried away
    uint64_t io_errors = 0;   // storage errors that exhausted retries
    std::string ToJson() const;
  };

  // Refcounted lifecycle: Retain starts the thread on 0→1 (and installs
  // the latest options on every call); Release stops and joins on 1→0.
  void Retain(const Options& options);
  void Release();
  bool running() const;

  // A progress probe: `outstanding()` says whether the subsystem has
  // work in flight; `position()` is its progress position. Stalled =
  // outstanding and position unchanged for stall_ms. Unregister before
  // the probed subsystem dies.
  uint64_t RegisterProgressProbe(std::string name,
                                 std::function<bool()> outstanding,
                                 std::function<uint64_t()> position);
  void UnregisterProbe(uint64_t token);

  // Evaluate health right now (also advances probe change-tracking).
  // Thread-safe; called by the watchdog tick and by /healthz.
  Health Check();

  // Render / write a blackbox report immediately (also used by the
  // tick on a fresh stall). Returns the report path, or "" when no
  // dump_dir is configured.
  std::string RenderReport(const std::string& reason);
  std::string WriteBlackbox(const std::string& reason);

  uint64_t ticks() const { return ticks_.load(std::memory_order_relaxed); }
  uint64_t dumps_written() const {
    return dumps_.load(std::memory_order_relaxed);
  }

  // The process-wide watchdog Database retains and /healthz queries.
  static Watchdog& Default();

 private:
  struct Probe {
    std::string name;
    std::function<bool()> outstanding;
    std::function<uint64_t()> position;
    uint64_t last_position = 0;
    uint64_t last_change_tsc = 0;
    bool primed = false;
  };

  void Loop();
  void MaybeInstallSignalHandlers();

  mutable std::mutex mu_;       // options, refcount, probes
  Options options_;
  int retainers_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::map<uint64_t, Probe> probes_;
  uint64_t next_probe_token_ = 1;

  std::atomic<uint64_t> ticks_{0};
  std::atomic<uint64_t> dumps_{0};
  uint64_t last_dump_tsc_ = 0;   // guarded by mu_
  bool was_healthy_ = true;      // guarded by mu_
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_WATCHDOG_H_
