// Background stats reporter: a thread that periodically snapshots a
// MetricsRegistry and emits one JSON line per interval.
//
// Off by default; Database wires it to Options::stats_interval_ms. Lines
// go to stderr (configurable) so stdout stays clean for benchmark output
// and the CI smoke test can redirect and schema-check them
// (ci/check_metrics_json.py). Each line is a complete
// MetricsSnapshot::ToJson() object prefixed with "DORADB_STATS ", making
// the lines trivially greppable out of mixed logs.

#ifndef DORADB_OBS_REPORTER_H_
#define DORADB_OBS_REPORTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <thread>

namespace doradb {
namespace obs {

class MetricsRegistry;

class StatsReporter {
 public:
  // Reports `registry` every `interval_ms` to `out`. interval_ms == 0
  // means the reporter stays idle (Start becomes a no-op).
  explicit StatsReporter(MetricsRegistry* registry, uint64_t interval_ms,
                         FILE* out = stderr);
  ~StatsReporter();

  StatsReporter(const StatsReporter&) = delete;
  StatsReporter& operator=(const StatsReporter&) = delete;

  void Start();
  // Joins the thread, then emits one final snapshot line (tagged
  // "reason":"final") so runs shorter than one interval still leave a
  // sample behind. Idempotent.
  void Stop();

  uint64_t lines_emitted() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  // `reason` lands in the line's "reason" field: "interval" for periodic
  // lines, "final" for the Stop() flush.
  void EmitLine(const char* reason);

  MetricsRegistry* const registry_;
  const uint64_t interval_ms_;
  FILE* const out_;

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
  std::atomic<uint64_t> lines_{0};
};

}  // namespace obs
}  // namespace doradb

#endif  // DORADB_OBS_REPORTER_H_
