#include "obs/reporter.h"

#include <chrono>
#include <string>

#include "obs/heatmap.h"
#include "obs/metrics.h"

namespace doradb {
namespace obs {

StatsReporter::StatsReporter(MetricsRegistry* registry, uint64_t interval_ms,
                             FILE* out)
    : registry_(registry), interval_ms_(interval_ms), out_(out) {}

StatsReporter::~StatsReporter() { Stop(); }

void StatsReporter::Start() {
  if (interval_ms_ == 0) return;
  std::lock_guard<std::mutex> g(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread(&StatsReporter::Loop, this);
}

void StatsReporter::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> g(mu_);
    running_ = false;
  }
  // Final snapshot so short-lived processes (shorter than one interval)
  // still leave one line behind; tagged so consumers can tell it apart.
  EmitLine("final");
}

void StatsReporter::EmitLine(const char* reason) {
  MetricsSnapshot snap = registry_->Snapshot();
  snap.reason = reason;
  fprintf(out_, "DORADB_STATS %s\n", snap.ToJson().c_str());
  // Piggyback the latest heatmap window (if any engine is sweeping one)
  // so interval logs carry the per-executor load signal too.
  const HeatmapWindow w = LoadHeatmap::Default().Latest();
  if (!w.rows.empty()) {
    fprintf(out_, "DORADB_HEATMAP %s\n", LoadHeatmap::WindowJson(w).c_str());
  }
  fflush(out_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

void StatsReporter::Loop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    if (cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_; })) {
      break;
    }
    lk.unlock();
    EmitLine("interval");
    lk.lock();
  }
}

}  // namespace obs
}  // namespace doradb
