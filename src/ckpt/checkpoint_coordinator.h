// CheckpointCoordinator: partition-local fuzzy checkpoints with
// checkpoint-driven log truncation.
//
// Database::Checkpoint used to stall the world — flush the entire buffer
// pool, then write one global checkpoint record — and the stable log grew
// without bound, so restart time scaled with total history. This daemon
// decomposes the checkpoint the same way plog decomposed the append path:
// it walks the log partitions round-robin and, per visit, runs one *fuzzy*
// checkpoint of one partition, concurrent with transaction execution (no
// quiescence — executors keep appending and dirtying pages throughout):
//
//   1. snapshot `begin_lsn` from the log clock — every record stamped
//      after this instant exceeds it, capping the horizon against all
//      in-flight races;
//   2. snapshot the active-transaction table with its minimum undo-low
//      pin — a registered transaction pins, just before its first heap-op
//      append, a lower bound on every undoable record it will ever log,
//      and stays registered until its last heap apply (post-commit deletes
//      included), so un-applied or un-stamped changes are always covered
//      by this term while lock-only transactions never hold it back;
//   3. flush the dirty pages whose last logged writer was bound to this
//      partition (a consistent copy per page, under the frame read latch),
//      collecting the minimum rec_lsn of the dirty pages left to other
//      partitions' visits;
//   4. the redo horizon H = min(1, 2, 3): every record with LSN < H is
//      reflected in the disk image and belongs to no transaction that
//      could still need undo;
//   5. append a kCheckpointPart record carrying H and the active set into
//      this partition's own stream, wait for it to become durable, and
//   6. advance this partition's truncation point: reclaim its stable
//      region below H.
//
// Recovery consumes the horizons instead of the global record: redo starts
// at the maximum durable H (records below it never need replay), and with
// truncation on, the on-disk log itself is bounded by the un-checkpointed
// suffix — restart cost is O(dirty data), not O(history).

#ifndef DORADB_CKPT_CHECKPOINT_COORDINATOR_H_
#define DORADB_CKPT_CHECKPOINT_COORDINATOR_H_

#include <atomic>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "log/log_backend.h"
#include "storage/buffer_pool.h"
#include "txn/txn_manager.h"
#include "util/status.h"

namespace doradb {
namespace ckpt {

class CheckpointCoordinator {
 public:
  struct Options {
    // Run the background daemon (manual Checkpoint* calls work either way).
    bool enabled = false;
    // Pause between partition visits.
    uint64_t interval_us = 2000;
    // Reclaim each partition's stable log below the redo horizon.
    bool truncate = true;
    // false: every visit flushes the whole pool and writes one global
    // record — the pre-plog behaviour, kept for A/B benchmarking.
    bool partition_local = true;
    // Adaptive cadence: weight the daemon's partition choice by stable-log
    // growth since that partition's last visit, so hot partitions
    // checkpoint (and, file-backed, unlink segments) more often. Falls
    // back to round-robin when nothing grew. false: plain round-robin.
    bool adaptive = true;
  };

  struct Stats {
    uint64_t checkpoints = 0;    // kCheckpointPart records written
    uint64_t pages_flushed = 0;  // dirty pages written back by checkpoints
    uint64_t pages_skipped = 0;  // dirty pages left to other partitions
  };

  CheckpointCoordinator(BufferPool* pool, LogBackend* log, TxnManager* txns,
                        Options options);
  ~CheckpointCoordinator();
  CheckpointCoordinator(const CheckpointCoordinator&) = delete;
  CheckpointCoordinator& operator=(const CheckpointCoordinator&) = delete;

  // Start/stop the round-robin daemon. Idempotent; Stop joins the thread
  // (a crashed process takes its checkpointer with it, so SimulateCrash
  // stops the daemon and Recover restarts it).
  void Start();
  void Stop();
  bool running() const { return !stop_.load(std::memory_order_acquire); }

  // One fuzzy checkpoint of one partition, synchronously, on the calling
  // thread (which gets log-bound to `partition` so the checkpoint record
  // lands in that partition's stream).
  Status CheckpointPartition(uint32_t partition);

  // One classic global checkpoint: whole-pool flush, one record covering
  // all partitions, truncation of every stream.
  Status CheckpointGlobal();

  // One full pass: every partition in partition-local mode, or one global
  // checkpoint otherwise.
  Status CheckpointAll();

  // The redo horizon of the most recent completed checkpoint.
  Lsn last_horizon() const {
    return last_horizon_.load(std::memory_order_acquire);
  }
  Stats stats() const;
  // Completed checkpoint visits per log partition (adaptive-cadence
  // observability: hot partitions should show more visits).
  std::vector<uint64_t> partition_visits() const;
  const Options& options() const { return options_; }

  // Catalog snapshot hook, run at the start of every checkpoint round
  // before a horizon is published: log truncation must never outrun the
  // durable schema description (DDL write-through normally keeps
  // catalog.db current, making this a cheap no-op — see
  // storage/catalog_store.h). A failing persist fails the checkpoint.
  void SetCatalogPersist(std::function<Status()> fn) {
    persist_catalog_ = std::move(fn);
  }

  // The partition the adaptive daemon would visit next: the one whose
  // stable log grew the most since its last visit, round-robin when
  // nothing grew (Options::adaptive). Public for observability/tests;
  // advances the round-robin cursor.
  uint32_t PickPartition();

 private:
  void DaemonLoop();
  Status DoCheckpoint(uint32_t partition, bool all_partitions);

  BufferPool* const pool_;
  LogBackend* const log_;
  TxnManager* const txns_;
  const Options options_;
  std::function<Status()> persist_catalog_;

  mutable std::mutex ckpt_mu_;  // serializes rounds (daemon + manual callers)
  // Adaptive cadence bookkeeping, under ckpt_mu_: per-partition stable
  // size at last visit, and completed visits.
  std::vector<size_t> size_at_last_visit_;
  std::vector<uint64_t> visits_;
  std::atomic<Lsn> last_horizon_{0};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> pages_flushed_{0};
  std::atomic<uint64_t> pages_skipped_{0};

  std::atomic<bool> stop_{true};
  std::thread daemon_;
  uint32_t cursor_ = 0;  // next partition to visit (daemon only)
};

}  // namespace ckpt
}  // namespace doradb

#endif  // DORADB_CKPT_CHECKPOINT_COORDINATOR_H_
