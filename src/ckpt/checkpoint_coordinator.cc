#include "ckpt/checkpoint_coordinator.h"

#include <algorithm>

#include "obs/health.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "util/clock.h"

namespace doradb {
namespace ckpt {

CheckpointCoordinator::CheckpointCoordinator(BufferPool* pool,
                                             LogBackend* log,
                                             TxnManager* txns,
                                             Options options)
    : pool_(pool), log_(log), txns_(txns), options_(options) {
  size_at_last_visit_.resize(log_->num_partitions(), 0);
  visits_.resize(log_->num_partitions(), 0);
}

CheckpointCoordinator::~CheckpointCoordinator() { Stop(); }

void CheckpointCoordinator::Start() {
  if (!stop_.exchange(false, std::memory_order_acq_rel)) return;  // running
  daemon_ = std::thread([this] { DaemonLoop(); });
}

void CheckpointCoordinator::Stop() {
  stop_.store(true, std::memory_order_release);
  if (daemon_.joinable()) daemon_.join();
}

void CheckpointCoordinator::DaemonLoop() {
  // Watchdog heartbeat: checkpoints legitimately take a while (they flush
  // pages), so the beat lands before AND after each DoCheckpoint — only a
  // checkpoint exceeding the stall threshold reads as stuck.
  obs::ScopedHeartbeat hb("ckpt.daemon");
  while (!stop_.load(std::memory_order_acquire)) {
    hb->SetStage("nap");
    hb->SetIdle(true);
    NapMicros(options_.interval_us);
    hb->SetIdle(false);
    if (stop_.load(std::memory_order_acquire)) return;
    hb->SetStage("checkpoint");
    hb->Beat();
    if (options_.partition_local) {
      const uint32_t p = options_.adaptive
                             ? PickPartition()
                             : cursor_++ % log_->num_partitions();
      (void)DoCheckpoint(p, /*all_partitions=*/false);
    } else {
      (void)DoCheckpoint(kCheckpointAllPartitions, /*all_partitions=*/true);
    }
    hb->Beat();
  }
}

uint32_t CheckpointCoordinator::PickPartition() {
  std::lock_guard<std::mutex> g(ckpt_mu_);
  const uint32_t n = log_->num_partitions();
  // Hottest first: the partition whose stable log grew the most since its
  // last visit has the most reclaimable history (and, file-backed, the
  // most unlinkable segments). Scanning from the cursor breaks ties
  // round-robin so equal growth still rotates fairly.
  uint32_t best = cursor_ % n;
  size_t best_growth = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t p = (cursor_ + i) % n;
    const size_t size = log_->PartitionStableSize(p);
    const size_t growth =
        size > size_at_last_visit_[p] ? size - size_at_last_visit_[p] : 0;
    if (growth > best_growth) {
      best = p;
      best_growth = growth;
    }
  }
  if (best_growth == 0) best = cursor_ % n;  // idle system: round-robin
  ++cursor_;
  return best;
}

Status CheckpointCoordinator::CheckpointPartition(uint32_t partition) {
  return DoCheckpoint(partition % log_->num_partitions(),
                      /*all_partitions=*/false);
}

Status CheckpointCoordinator::CheckpointGlobal() {
  return DoCheckpoint(kCheckpointAllPartitions, /*all_partitions=*/true);
}

Status CheckpointCoordinator::CheckpointAll() {
  if (!options_.partition_local) return CheckpointGlobal();
  for (uint32_t p = 0; p < log_->num_partitions(); ++p) {
    DORADB_RETURN_NOT_OK(DoCheckpoint(p, /*all_partitions=*/false));
  }
  return Status::OK();
}

Status CheckpointCoordinator::DoCheckpoint(uint32_t partition,
                                           bool all_partitions) {
  std::lock_guard<std::mutex> g(ckpt_mu_);
  // A degraded engine takes no new checkpoints: the log horizon may be
  // frozen behind a poisoned partition, and any truncation computed now
  // could drop records recovery still needs to reach that frozen point.
  if (obs::EngineHealth::Default().degraded()) {
    return Status::Unavailable("ckpt: engine degraded, checkpoint skipped");
  }
  const bool metrics = obs::MetricsEnabled();
  const uint64_t t0 = metrics ? Cycles::Now() : 0;
  const uint64_t reclaimed_before = metrics ? log_->reclaimed_bytes() : 0;

  // (0) Catalog snapshot: the schema description must be durable before
  // this round may truncate any log it describes.
  if (persist_catalog_) DORADB_RETURN_NOT_OK(persist_catalog_());

  // (1) Horizon cap, snapshotted before anything else: any record stamped
  // after this instant carries a larger LSN, so every in-flight operation
  // the scans below might miss is beyond the horizon by construction.
  const Lsn begin_lsn = log_->current_lsn();

  // (2) Active transactions: their undo-low pins lower-bound every
  // undoable record they ever log, covering changes whose rec_lsn stamp or
  // heap apply is still in flight (registration outlives the last apply).
  // Lock-only transactions (DORA's table-IX system transaction) never pin.
  Lsn min_active_pin;
  std::vector<TxnId> active = txns_->ActiveTxnSnapshot(&min_active_pin);

  // (3) Fuzzy flush of this partition's share of the dirty pages; the
  // pages left to other partitions' visits bound the horizon instead.
  BufferPool::CheckpointScan scan;
  DORADB_RETURN_NOT_OK(
      pool_->FlushPartition(partition, all_partitions, &scan));
  // File-backed page store: the horizon's claim is "reflected in the disk
  // image", so the flushed pages must actually be on the medium before
  // the checkpoint record (and any truncation) trusts them.
  DORADB_RETURN_NOT_OK(pool_->SyncDisk());

  // (4) The redo horizon this checkpoint vouches for.
  const Lsn horizon =
      std::min({begin_lsn, min_active_pin, scan.min_rec_lsn});

  // (5) Publish it: the record rides this partition's own stream. The
  // caller's binding is restored afterwards — a bound executor invoking a
  // manual checkpoint must not lose its private partition affinity.
  const uint32_t prev_binding = log_->CurrentPartition();
  if (!all_partitions) log_->BindThisThread(partition);
  LogRecord rec;
  rec.type = LogType::kCheckpointPart;
  rec.ckpt_partition = all_partitions ? kCheckpointAllPartitions : partition;
  rec.redo_horizon = horizon;
  rec.active_txns = std::move(active);
  const Lsn end = log_->Append(&rec);
  if (!all_partitions) log_->BindThisThread(prev_binding);
  // If the wait fails (a partition poisoned mid-checkpoint) the round must
  // NOT truncate: the computed horizon assumed a flush that never became
  // durable, and truncating past a poisoned partition's frozen watermark
  // would drop records recovery still needs.
  DORADB_RETURN_NOT_OK(log_->WaitFlushed(end));

  // (6) Advance the truncation point. Safe regardless of whether the
  // checkpoint record itself survives a crash: the horizon's validity
  // rests on the page flushes above, which are already in the disk image.
  if (options_.truncate) {
    if (all_partitions) {
      log_->ReclaimStableBelow(horizon);
    } else {
      log_->ReclaimPartitionBelow(partition, horizon);
    }
  }

  last_horizon_.store(horizon, std::memory_order_release);
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  pages_flushed_.fetch_add(scan.pages_flushed, std::memory_order_relaxed);
  pages_skipped_.fetch_add(scan.pages_skipped, std::memory_order_relaxed);
  if (!all_partitions && partition < visits_.size()) {
    // Adaptive-cadence baseline: growth is measured from the post-visit
    // (post-truncation) size.
    ++visits_[partition];
    size_at_last_visit_[partition] = log_->PartitionStableSize(partition);
  }
  if (metrics) {
    static Histogram* dur = obs::MetricsRegistry::Default().GetHistogram(
        "ckpt.duration_ns", "ns");
    dur->Record(static_cast<uint64_t>(Cycles::ToNanos(Cycles::Now() - t0)));
    const uint64_t reclaimed = log_->reclaimed_bytes();
    if (reclaimed > reclaimed_before) {
      static obs::Counter* trunc = obs::MetricsRegistry::Default().GetCounter(
          "ckpt.truncated_bytes", "bytes");
      trunc->Add(reclaimed - reclaimed_before);
    }
  }
  return Status::OK();
}

std::vector<uint64_t> CheckpointCoordinator::partition_visits() const {
  std::lock_guard<std::mutex> g(ckpt_mu_);
  return visits_;
}

CheckpointCoordinator::Stats CheckpointCoordinator::stats() const {
  Stats s;
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.pages_flushed = pages_flushed_.load(std::memory_order_relaxed);
  s.pages_skipped = pages_skipped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ckpt
}  // namespace doradb
