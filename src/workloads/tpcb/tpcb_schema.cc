#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace tpcb {

Status Schema::Create(Database* db) {
  Catalog* cat = db->catalog();
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_branch", &branch));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_teller", &teller));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_account", &account));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_history", &history));
  DORADB_RETURN_NOT_OK(
      cat->CreateIndex(branch, "tpcb_branch_pk", true, false, &branch_pk));
  DORADB_RETURN_NOT_OK(
      cat->CreateIndex(teller, "tpcb_teller_pk", true, false, &teller_pk));
  DORADB_RETURN_NOT_OK(
      cat->CreateIndex(account, "tpcb_account_pk", true, false, &account_pk));
  return Status::OK();
}

}  // namespace tpcb
}  // namespace doradb
