#include "workloads/tpcb/tpcb.h"

#include <cstddef>

namespace doradb {
namespace tpcb {

// Every TPC-B primary key is Add64 of the row's leading id field, and every
// leaf entry carries the branch id (the routing field) in aux — declared to
// the catalog as IndexKeySpecs so a reopened lifetime can rebuild the
// indexes from the heaps without this file's help.
Status Schema::Create(Database* db) {
  Catalog* cat = db->catalog();
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_branch", &branch));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_teller", &teller));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_account", &account));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcb_history", &history));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      branch, "tpcb_branch_pk", true, false,
      IndexKeySpec::U64At(offsetof(BranchRow, b_id), offsetof(BranchRow, b_id)),
      &branch_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      teller, "tpcb_teller_pk", true, false,
      IndexKeySpec::U64At(offsetof(TellerRow, t_id), offsetof(TellerRow, b_id)),
      &teller_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      account, "tpcb_account_pk", true, false,
      IndexKeySpec::U64At(offsetof(AccountRow, a_id),
                          offsetof(AccountRow, b_id)),
      &account_pk));
  return Status::OK();
}

Status Schema::Attach(Database* db) {
  Catalog* cat = db->catalog();
  const struct {
    const char* table;
    TableId* tid;
    const char* index;  // nullptr: no primary index (history)
    IndexId* iid;
  } entries[] = {
      {"tpcb_branch", &branch, "tpcb_branch_pk", &branch_pk},
      {"tpcb_teller", &teller, "tpcb_teller_pk", &teller_pk},
      {"tpcb_account", &account, "tpcb_account_pk", &account_pk},
      {"tpcb_history", &history, nullptr, nullptr},
  };
  for (const auto& e : entries) {
    TableInfo* t = cat->GetTable(e.table);
    if (t == nullptr) {
      return Status::NotFound(std::string("recovered catalog has no '") +
                              e.table + "' (not a TPC-B data directory?)");
    }
    *e.tid = t->id;
    if (e.index != nullptr) {
      IndexInfo* i = cat->GetIndex(e.index);
      if (i == nullptr) {
        return Status::NotFound(std::string("recovered catalog has no '") +
                                e.index + "'");
      }
      *e.iid = i->id;
    }
  }
  return Status::OK();
}

}  // namespace tpcb
}  // namespace doradb
