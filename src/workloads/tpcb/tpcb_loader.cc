#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace tpcb {

Status TpcbWorkload::Load() {
  DORADB_RETURN_NOT_OK(schema_.Create(db_));
  const AccessOptions opts = AccessOptions::NoCc();

  auto txn = db_->Begin();
  size_t in_txn = 0;
  auto maybe_commit = [&]() -> Status {
    if (++in_txn >= 1000) {
      DORADB_RETURN_NOT_OK(db_->Commit(txn.get()));
      txn = db_->Begin();
      in_txn = 0;
    }
    return Status::OK();
  };

  for (uint64_t b = 1; b <= config_.branches; ++b) {
    BranchRow br{};
    br.b_id = b;
    Rid rid;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.branch, AsBytes(br), &rid, opts));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.branch_pk,
                                          Schema::Key(b),
                                          IndexEntry{rid, b, false}));
    DORADB_RETURN_NOT_OK(maybe_commit());
    for (uint64_t t = 0; t < config_.tellers_per_branch; ++t) {
      TellerRow tr{};
      tr.t_id = (b - 1) * config_.tellers_per_branch + t + 1;
      tr.b_id = b;
      DORADB_RETURN_NOT_OK(
          db_->Insert(txn.get(), schema_.teller, AsBytes(tr), &rid, opts));
      DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.teller_pk,
                                            Schema::Key(tr.t_id),
                                            IndexEntry{rid, b, false}));
      DORADB_RETURN_NOT_OK(maybe_commit());
    }
    for (uint64_t a = 0; a < config_.accounts_per_branch; ++a) {
      AccountRow ar{};
      ar.a_id = (b - 1) * config_.accounts_per_branch + a + 1;
      ar.b_id = b;
      DORADB_RETURN_NOT_OK(
          db_->Insert(txn.get(), schema_.account, AsBytes(ar), &rid, opts));
      DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.account_pk,
                                            Schema::Key(ar.a_id),
                                            IndexEntry{rid, b, false}));
      DORADB_RETURN_NOT_OK(maybe_commit());
    }
  }
  return db_->Commit(txn.get());
}

Status TpcbWorkload::CheckConsistency() {
  Catalog* cat = db_->catalog();
  int64_t branch_sum = 0, teller_sum = 0, account_sum = 0, history_sum = 0;
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.branch)
                           ->Scan([&](const Rid&, std::string_view b) {
                             branch_sum += FromBytes<BranchRow>(b).balance;
                             return true;
                           }));
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.teller)
                           ->Scan([&](const Rid&, std::string_view b) {
                             teller_sum += FromBytes<TellerRow>(b).balance;
                             return true;
                           }));
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.account)
                           ->Scan([&](const Rid&, std::string_view b) {
                             account_sum += FromBytes<AccountRow>(b).balance;
                             return true;
                           }));
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.history)
                           ->Scan([&](const Rid&, std::string_view b) {
                             history_sum += FromBytes<HistoryRow>(b).delta;
                             return true;
                           }));
  if (branch_sum != teller_sum || teller_sum != account_sum ||
      account_sum != history_sum) {
    return Status::Corruption("TPC-B balance invariant violated");
  }
  return Status::OK();
}

}  // namespace tpcb
}  // namespace doradb
