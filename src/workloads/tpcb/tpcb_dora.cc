#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace tpcb {

namespace {
constexpr AccessOptions kNoCc = AccessOptions{false, false};
constexpr AccessOptions kRid = AccessOptions{false, true};
}  // namespace

void TpcbWorkload::SetupDora(dora::DoraEngine* engine) {
  engine->RegisterTable(schema_.branch, config_.branches + 1,
                        config_.other_executors);
  engine->RegisterTable(schema_.teller,
                        config_.branches * config_.tellers_per_branch + 1,
                        config_.other_executors);
  engine->RegisterTable(schema_.account,
                        config_.branches * config_.accounts_per_branch + 1,
                        config_.account_executors);
  engine->RegisterTable(schema_.history, config_.branches + 1,
                        config_.other_executors);
}

Status TpcbWorkload::RunDora(dora::DoraEngine* e, uint32_t, Rng& rng) {
  const Input in = MakeInput(rng);
  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  // All four actions are mutually independent: a single phase (the history
  // row is built from transaction inputs alone, unlike TPC-C Payment).
  g.AddPhase()
      .AddAction(schema_.account, in.a_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   // env.Probe: leaf-cursor cached under epoch batching.
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.account_pk, Schema::Key(in.a_id), &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.account, ie.rid, &bytes, kNoCc));
                   auto acc = FromBytes<AccountRow>(bytes);
                   acc.balance += in.delta;
                   return env.db->Update(env.txn, schema_.account, ie.rid,
                                         AsBytes(acc), kNoCc);
                 })
      .AddAction(schema_.teller, in.t_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.teller_pk, Schema::Key(in.t_id), &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.teller, ie.rid, &bytes, kNoCc));
                   auto tel = FromBytes<TellerRow>(bytes);
                   tel.balance += in.delta;
                   return env.db->Update(env.txn, schema_.teller, ie.rid,
                                         AsBytes(tel), kNoCc);
                 })
      .AddAction(schema_.branch, in.b_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.branch_pk, Schema::Key(in.b_id), &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.branch, ie.rid, &bytes, kNoCc));
                   auto br = FromBytes<BranchRow>(bytes);
                   br.balance += in.delta;
                   return env.db->Update(env.txn, schema_.branch, ie.rid,
                                         AsBytes(br), kNoCc);
                 })
      .AddAction(schema_.history, in.b_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   HistoryRow h{};
                   h.a_id = in.a_id;
                   h.t_id = in.t_id;
                   h.b_id = in.b_id;
                   h.delta = in.delta;
                   Rid rid;
                   // Insert takes only the centralized RID lock (§4.2.1).
                   return env.db->Insert(env.txn, schema_.history, AsBytes(h),
                                         &rid, kRid);
                 });
  return e->Run(dtxn, std::move(g));
}

}  // namespace tpcb
}  // namespace doradb
