// TPC-B: the classic bank debit/credit benchmark [Anon et al., Datamation
// 1985]. One transaction type: update an account, its teller, its branch,
// and append a history record. Write-heavy — the workload where the paper
// observes the log manager becoming the next bottleneck once DORA removes
// lock contention (§5.4).
//
// Routing fields: Account by a_id, Teller by t_id, Branch by b_id, History
// by b_id.

#ifndef DORADB_WORKLOADS_TPCB_TPCB_H_
#define DORADB_WORKLOADS_TPCB_TPCB_H_

#include <memory>

#include "workloads/common/workload.h"

namespace doradb {
namespace tpcb {

struct BranchRow {
  uint64_t b_id;
  int64_t balance;
  char filler[40];
};

struct TellerRow {
  uint64_t t_id;
  uint64_t b_id;
  int64_t balance;
  char filler[40];
};

struct AccountRow {
  uint64_t a_id;
  uint64_t b_id;
  int64_t balance;
  char filler[40];
};

struct HistoryRow {
  uint64_t a_id;
  uint64_t t_id;
  uint64_t b_id;
  int64_t delta;
  uint64_t timestamp;
};

struct Schema {
  TableId branch, teller, account, history;
  IndexId branch_pk, teller_pk, account_pk;

  // Fresh database: create tables + indexes (with IndexKeySpecs, so a
  // durable catalog can rebuild the indexes at restart by itself).
  Status Create(Database* db);

  // Reopened database: bind ids from the recovered catalog by name — no
  // DDL. Fails with kNotFound if the directory's catalog is not TPC-B's.
  Status Attach(Database* db);

  static std::string Key(uint64_t id) {
    KeyBuilder kb;
    kb.Add64(id);
    return kb.Str();
  }
};

class TpcbWorkload : public Workload {
 public:
  struct Config {
    uint64_t branches = 8;
    uint64_t tellers_per_branch = 10;
    uint64_t accounts_per_branch = 10000;
    uint32_t account_executors = 2;
    uint32_t other_executors = 1;
    // > 0: account picks are Zipf(theta)-distributed across the whole
    // account space (rank 1 = a_id 1, hot set contiguous at the low end),
    // replacing the uniform 85/15 local/remote pick; teller/branch stay
    // uniform. Bench knob: DORADB_SKEW_THETA.
    double skew_theta = 0.0;
  };

  TpcbWorkload(Database* db, Config config) : db_(db), config_(config) {
    if (config_.skew_theta > 0.0) {
      zipf_ = std::make_unique<ZipfGenerator>(
          config_.branches * config_.accounts_per_branch,
          config_.skew_theta);
    }
  }

  std::string name() const override { return "TPC-B"; }
  Status Load() override;
  // The reopen path: bind schema ids from the catalog the Database
  // recovered out of <data_dir>/catalog.db. No DDL, no loading — the
  // data directory describes itself.
  Status Attach() { return schema_.Attach(db_); }
  void SetupDora(dora::DoraEngine* engine) override;
  uint32_t NumTxnTypes() const override { return 1; }
  const char* TxnName(uint32_t) const override { return "AccountUpdate"; }
  uint32_t PickTxnType(Rng&) const override { return 0; }
  Status RunBaseline(uint32_t type, Rng& rng) override;
  Status RunDora(dora::DoraEngine* engine, uint32_t type, Rng& rng) override;

  const Schema& schema() const { return schema_; }
  const Config& config() const { return config_; }

  // Invariant: sum(branch) == sum(teller) == sum(account) == sum(history
  // deltas).
  Status CheckConsistency();

 private:
  struct Input {
    uint64_t b_id, t_id, a_id;
    int64_t delta;
  };
  Input MakeInput(Rng& rng) const;

  Database* const db_;
  const Config config_;
  Schema schema_;
  std::unique_ptr<ZipfGenerator> zipf_;  // shared across client Rngs
};

}  // namespace tpcb
}  // namespace doradb

#endif  // DORADB_WORKLOADS_TPCB_TPCB_H_
