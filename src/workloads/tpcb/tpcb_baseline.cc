#include "workloads/tpcb/tpcb.h"

namespace doradb {
namespace tpcb {

namespace {
constexpr AccessOptions kCc = AccessOptions{true, false};
}

TpcbWorkload::Input TpcbWorkload::MakeInput(Rng& rng) const {
  Input in;
  in.t_id = rng.UniformInt(
      uint64_t{1}, config_.branches * config_.tellers_per_branch);
  in.b_id = (in.t_id - 1) / config_.tellers_per_branch + 1;
  if (zipf_ != nullptr) {
    // Skewed mode: Zipf rank over the whole account space (rank 1 = a_id
    // 1). The balance invariant does not care which branch the account
    // belongs to, so the 85/15 locality rule is simply replaced.
    in.a_id = zipf_->Next(rng);
  } else {
    // 85% of accounts belong to the teller's branch, 15% are remote.
    uint64_t a_branch = in.b_id;
    if (config_.branches > 1 && rng.Percent(15)) {
      do {
        a_branch = rng.UniformInt(uint64_t{1}, config_.branches);
      } while (a_branch == in.b_id);
    }
    in.a_id = (a_branch - 1) * config_.accounts_per_branch +
              rng.UniformInt(uint64_t{1}, config_.accounts_per_branch);
  }
  in.delta = rng.UniformInt(int64_t{-99999}, int64_t{99999});
  return in;
}

Status TpcbWorkload::RunBaseline(uint32_t, Rng& rng) {
  const Input in = MakeInput(rng);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Catalog* cat = db_->catalog();
    // Account.
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.account_pk)->Probe(Schema::Key(in.a_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.account, ie.rid, &bytes, kCc));
    auto acc = FromBytes<AccountRow>(bytes);
    acc.balance += in.delta;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.account, ie.rid, AsBytes(acc), kCc));
    // Teller.
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.teller_pk)->Probe(Schema::Key(in.t_id), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.teller, ie.rid, &bytes, kCc));
    auto tel = FromBytes<TellerRow>(bytes);
    tel.balance += in.delta;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.teller, ie.rid, AsBytes(tel), kCc));
    // Branch.
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.branch_pk)->Probe(Schema::Key(in.b_id), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.branch, ie.rid, &bytes, kCc));
    auto br = FromBytes<BranchRow>(bytes);
    br.balance += in.delta;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.branch, ie.rid, AsBytes(br), kCc));
    // History append.
    HistoryRow h{};
    h.a_id = in.a_id;
    h.t_id = in.t_id;
    h.b_id = in.b_id;
    h.delta = in.delta;
    Rid hrid;
    return db_->Insert(txn.get(), schema_.history, AsBytes(h), &hrid, kCc);
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

}  // namespace tpcb
}  // namespace doradb
