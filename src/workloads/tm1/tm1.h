// TM1 — Nokia Network Database Benchmark (TATP): 4 tables, 7 transaction
// types, non-uniform subscriber access. "The transactions are extremely
// short, yet exercise all the codepaths in typical transaction processing"
// (paper §5.1). Routing field for every table: the subscriber id.

#ifndef DORADB_WORKLOADS_TM1_TM1_H_
#define DORADB_WORKLOADS_TM1_TM1_H_

#include <atomic>
#include <memory>

#include "dora/resource_manager.h"
#include "workloads/common/workload.h"

namespace doradb {
namespace tm1 {

// ---- rows (fixed-layout records, serialized byte-wise) ----

struct SubscriberRow {
  uint64_t s_id;
  char sub_nbr[16];  // 15-digit string, NUL padded
  uint16_t bits;     // bit_1..bit_10
  uint8_t hex[10];
  uint8_t bytes2[10];
  uint32_t msc_location;
  uint32_t vlr_location;
};

struct AccessInfoRow {
  uint64_t s_id;
  uint8_t ai_type;  // 1..4
  uint8_t data1;
  uint8_t data2;
  char data3[4];
  char data4[6];
};

struct SpecialFacilityRow {
  uint64_t s_id;
  uint8_t sf_type;  // 1..4
  uint8_t is_active;
  uint8_t error_cntrl;
  uint8_t data_a;
  char data_b[6];
};

struct CallForwardingRow {
  uint64_t s_id;
  uint8_t sf_type;
  uint8_t start_time;  // 0, 8, 16
  uint8_t end_time;    // start_time + 1..8
  char numberx[16];
};

// ---- schema handles ----

struct Schema {
  TableId subscriber, access_info, special_facility, call_forwarding;
  IndexId sub_pk, sub_nbr_idx, ai_pk, sf_pk, cf_pk;

  Status Create(Database* db);

  static std::string SubKey(uint64_t s_id);
  static std::string SubNbrKey(const char* sub_nbr);
  static std::string AiKey(uint64_t s_id, uint8_t ai_type);
  static std::string SfKey(uint64_t s_id, uint8_t sf_type);
  static std::string CfKey(uint64_t s_id, uint8_t sf_type,
                           uint8_t start_time);
  static std::string CfPrefix(uint64_t s_id, uint8_t sf_type);
};

// ---- workload ----

enum TxnType : uint32_t {
  kGetSubscriberData = 0,
  kGetNewDestination = 1,
  kGetAccessData = 2,
  kUpdateSubscriberData = 3,
  kUpdateLocation = 4,
  kInsertCallForwarding = 5,
  kDeleteCallForwarding = 6,
  kNumTxnTypes = 7,
};

// Execution plan for intra-parallel transactions with aborts (§A.4).
enum class PlanMode { kParallel, kSerial, kAuto };

class Tm1Workload : public Workload {
 public:
  struct Config {
    uint64_t subscribers = 20000;
    uint32_t executors_per_table = 1;
    bool trace_subscriber_accesses = false;  // Fig. 10-style tracing
    // > 0: subscriber picks are Zipf(theta)-distributed by rank, rank 1 =
    // s_id 1 — the hot set is the contiguous low end of the key space, so
    // one executor of a range-partitioned table soaks up the skew (the
    // workload shape the live-repartitioning path exists for). 0 =
    // classic TATP non-uniform pick. Bench knob: DORADB_SKEW_THETA.
    double skew_theta = 0.0;
  };

  Tm1Workload(Database* db, Config config) : db_(db), config_(config) {
    if (config_.skew_theta > 0.0) {
      zipf_ = std::make_unique<ZipfGenerator>(config_.subscribers,
                                              config_.skew_theta);
    }
  }

  std::string name() const override { return "TM1"; }
  Status Load() override;
  void SetupDora(dora::DoraEngine* engine) override;
  uint32_t NumTxnTypes() const override { return kNumTxnTypes; }
  const char* TxnName(uint32_t type) const override;
  uint32_t PickTxnType(Rng& rng) const override;
  Status RunBaseline(uint32_t type, Rng& rng) override;
  Status RunDora(dora::DoraEngine* engine, uint32_t type, Rng& rng) override;

  // §A.4 plan selection for UpdateSubscriberData (Fig. 11).
  void SetPlanMode(PlanMode mode) { plan_mode_ = mode; }
  dora::PlanAdvisor& plan_advisor() { return advisor_; }

  const Schema& schema() const { return schema_; }
  const Config& config() const { return config_; }

  // Test hook: full referential/integrity check across tables and indexes.
  Status CheckConsistency();

 private:
  // Baseline transaction bodies (conventional, hierarchical locking).
  Status BaseGetSubscriberData(Rng& rng);
  Status BaseGetNewDestination(Rng& rng);
  Status BaseGetAccessData(Rng& rng);
  Status BaseUpdateSubscriberData(Rng& rng);
  Status BaseUpdateLocation(Rng& rng);
  Status BaseInsertCallForwarding(Rng& rng);
  Status BaseDeleteCallForwarding(Rng& rng);

  // DORA flow graphs.
  Status DoraGetSubscriberData(dora::DoraEngine* e, Rng& rng);
  Status DoraGetNewDestination(dora::DoraEngine* e, Rng& rng);
  Status DoraGetAccessData(dora::DoraEngine* e, Rng& rng);
  Status DoraUpdateSubscriberData(dora::DoraEngine* e, Rng& rng);
  Status DoraUpdateLocation(dora::DoraEngine* e, Rng& rng);
  Status DoraInsertCallForwarding(dora::DoraEngine* e, Rng& rng);
  Status DoraDeleteCallForwarding(dora::DoraEngine* e, Rng& rng);

  // Commit on OK; abort (rolling back) on failure, preserving the status.
  Status FinishBaseline(Transaction* txn, Status s);

  uint64_t RandomSid(Rng& rng) const {
    // ZipfGenerator::Next reads only ctor-computed members, so one shared
    // generator serves every client thread's private Rng.
    if (zipf_ != nullptr) return zipf_->Next(rng);
    return rng.TatpSubscriberId(config_.subscribers);
  }

  Database* const db_;
  const Config config_;
  std::unique_ptr<ZipfGenerator> zipf_;
  Schema schema_;
  PlanMode plan_mode_ = PlanMode::kParallel;
  dora::PlanAdvisor advisor_;
};

}  // namespace tm1
}  // namespace doradb

#endif  // DORADB_WORKLOADS_TM1_TM1_H_
