#include "workloads/tm1/tm1.h"

#include <cstddef>

namespace doradb {
namespace tm1 {

// Key specs mirror the Key() builders below field-for-field (and every
// leaf carries the routing field s_id in aux), so a durable catalog can
// rebuild these indexes from the heaps at restart without workload code.
Status Schema::Create(Database* db) {
  Catalog* cat = db->catalog();
  DORADB_RETURN_NOT_OK(cat->CreateTable("tm1_subscriber", &subscriber));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tm1_access_info", &access_info));
  DORADB_RETURN_NOT_OK(
      cat->CreateTable("tm1_special_facility", &special_facility));
  DORADB_RETURN_NOT_OK(
      cat->CreateTable("tm1_call_forwarding", &call_forwarding));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      subscriber, "tm1_sub_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(SubscriberRow, s_id), 8)
          .Aux(offsetof(SubscriberRow, s_id)),
      &sub_pk));
  // The sub_nbr index is the benchmark's non-routing-aligned access path:
  // a DORA "secondary action" index whose leaves carry the routing field
  // (s_id) in aux (§4.2.2).
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      subscriber, "tm1_sub_nbr", true, true,
      IndexKeySpec{}.Bytes(offsetof(SubscriberRow, sub_nbr), 15)
          .Aux(offsetof(SubscriberRow, s_id)),
      &sub_nbr_idx));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      access_info, "tm1_ai_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(AccessInfoRow, s_id), 8)
          .Uint(offsetof(AccessInfoRow, ai_type), 1)
          .Aux(offsetof(AccessInfoRow, s_id)),
      &ai_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      special_facility, "tm1_sf_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(SpecialFacilityRow, s_id), 8)
          .Uint(offsetof(SpecialFacilityRow, sf_type), 1)
          .Aux(offsetof(SpecialFacilityRow, s_id)),
      &sf_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      call_forwarding, "tm1_cf_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(CallForwardingRow, s_id), 8)
          .Uint(offsetof(CallForwardingRow, sf_type), 1)
          .Uint(offsetof(CallForwardingRow, start_time), 1)
          .Aux(offsetof(CallForwardingRow, s_id)),
      &cf_pk));
  return Status::OK();
}

std::string Schema::SubKey(uint64_t s_id) {
  KeyBuilder kb;
  kb.Add64(s_id);
  return kb.Str();
}

std::string Schema::SubNbrKey(const char* sub_nbr) {
  KeyBuilder kb;
  kb.AddString(std::string_view(sub_nbr, 15), 15);
  return kb.Str();
}

std::string Schema::AiKey(uint64_t s_id, uint8_t ai_type) {
  KeyBuilder kb;
  kb.Add64(s_id).Add8(ai_type);
  return kb.Str();
}

std::string Schema::SfKey(uint64_t s_id, uint8_t sf_type) {
  KeyBuilder kb;
  kb.Add64(s_id).Add8(sf_type);
  return kb.Str();
}

std::string Schema::CfKey(uint64_t s_id, uint8_t sf_type,
                          uint8_t start_time) {
  KeyBuilder kb;
  kb.Add64(s_id).Add8(sf_type).Add8(start_time);
  return kb.Str();
}

std::string Schema::CfPrefix(uint64_t s_id, uint8_t sf_type) {
  KeyBuilder kb;
  kb.Add64(s_id).Add8(sf_type);
  return kb.Str();
}

const char* Tm1Workload::TxnName(uint32_t type) const {
  switch (type) {
    case kGetSubscriberData: return "GetSubscriberData";
    case kGetNewDestination: return "GetNewDestination";
    case kGetAccessData: return "GetAccessData";
    case kUpdateSubscriberData: return "UpdateSubscriberData";
    case kUpdateLocation: return "UpdateLocation";
    case kInsertCallForwarding: return "InsertCallForwarding";
    case kDeleteCallForwarding: return "DeleteCallForwarding";
  }
  return "?";
}

uint32_t Tm1Workload::PickTxnType(Rng& rng) const {
  // Standard TATP mix: 35/10/35/2/14/2/2.
  const uint64_t p = rng.UniformInt(uint64_t{1}, uint64_t{100});
  if (p <= 35) return kGetSubscriberData;
  if (p <= 45) return kGetNewDestination;
  if (p <= 80) return kGetAccessData;
  if (p <= 82) return kUpdateSubscriberData;
  if (p <= 96) return kUpdateLocation;
  if (p <= 98) return kInsertCallForwarding;
  return kDeleteCallForwarding;
}

Status Tm1Workload::RunBaseline(uint32_t type, Rng& rng) {
  switch (type) {
    case kGetSubscriberData: return BaseGetSubscriberData(rng);
    case kGetNewDestination: return BaseGetNewDestination(rng);
    case kGetAccessData: return BaseGetAccessData(rng);
    case kUpdateSubscriberData: return BaseUpdateSubscriberData(rng);
    case kUpdateLocation: return BaseUpdateLocation(rng);
    case kInsertCallForwarding: return BaseInsertCallForwarding(rng);
    case kDeleteCallForwarding: return BaseDeleteCallForwarding(rng);
  }
  return Status::InvalidArgument("bad txn type");
}

Status Tm1Workload::RunDora(dora::DoraEngine* engine, uint32_t type,
                            Rng& rng) {
  switch (type) {
    case kGetSubscriberData: return DoraGetSubscriberData(engine, rng);
    case kGetNewDestination: return DoraGetNewDestination(engine, rng);
    case kGetAccessData: return DoraGetAccessData(engine, rng);
    case kUpdateSubscriberData: return DoraUpdateSubscriberData(engine, rng);
    case kUpdateLocation: return DoraUpdateLocation(engine, rng);
    case kInsertCallForwarding: return DoraInsertCallForwarding(engine, rng);
    case kDeleteCallForwarding: return DoraDeleteCallForwarding(engine, rng);
  }
  return Status::InvalidArgument("bad txn type");
}

}  // namespace tm1
}  // namespace doradb
