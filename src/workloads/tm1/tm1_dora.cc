// DORA (thread-to-data) implementations of the seven TM1 transactions.
// Record accesses inside actions use AccessOptions::NoCc() — isolation
// comes from the owning executor's thread-local locks; inserts/deletes take
// only the centralized RID lock (§4.2.1). The sub_nbr index is the
// non-routing-aligned path: probes to it run as secondary actions on the
// dispatcher, using the routing field stored in each leaf entry (§4.2.2).

#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"

namespace doradb {
namespace tm1 {

namespace {
constexpr AccessOptions kNoCc = AccessOptions{false, false};
constexpr AccessOptions kRid = AccessOptions{false, true};
}  // namespace

void Tm1Workload::SetupDora(dora::DoraEngine* engine) {
  const uint64_t space = config_.subscribers + 1;
  engine->RegisterTable(schema_.subscriber, space,
                        config_.executors_per_table);
  engine->RegisterTable(schema_.access_info, space,
                        config_.executors_per_table);
  engine->RegisterTable(schema_.special_facility, space,
                        config_.executors_per_table);
  engine->RegisterTable(schema_.call_forwarding, space,
                        config_.executors_per_table);
}

Status Tm1Workload::DoraGetSubscriberData(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase().AddAction(
      schema_.subscriber, s_id, dora::LocalMode::kS,
      [this, s_id](dora::ActionEnv& env) -> Status {
        IndexEntry ie;
        // env.Probe: leaf-cursor cached under epoch batching.
        DORADB_RETURN_NOT_OK(
            env.Probe(schema_.sub_pk, Schema::SubKey(s_id), &ie));
        std::string bytes;
        DORADB_RETURN_NOT_OK(
            env.db->Read(env.txn, schema_.subscriber, ie.rid, &bytes, kNoCc));
        if (config_.trace_subscriber_accesses) {
          AccessTrace::Record(schema_.subscriber, s_id);
        }
        return Status::OK();
      });
  return e->Run(dtxn, std::move(g));
}

Status Tm1Workload::DoraGetNewDestination(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);
  const uint8_t end_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{24}));

  struct State {
    std::atomic<bool> sf_active{false};
    std::atomic<bool> cf_found{false};
  };
  auto st = std::make_shared<State>();

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase()
      .AddAction(schema_.special_facility, s_id, dora::LocalMode::kS,
                 [this, s_id, sf_type, st](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   const Status ps =
                       env.Probe(schema_.sf_pk,
                                 Schema::SfKey(s_id, sf_type), &ie);
                   if (!ps.ok()) return Status::OK();  // decided client-side
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.special_facility, ie.rid, &bytes,
                       kNoCc));
                   st->sf_active =
                       FromBytes<SpecialFacilityRow>(bytes).is_active != 0;
                   return Status::OK();
                 })
      .AddAction(
          schema_.call_forwarding, s_id, dora::LocalMode::kS,
          [this, s_id, sf_type, start_time, end_time,
           st](dora::ActionEnv& env) -> Status {
            std::vector<IndexEntry> cfs;
            DORADB_RETURN_NOT_OK(
                db_->catalog()
                    ->Index(schema_.cf_pk)
                    ->ScanPrefix(Schema::CfPrefix(s_id, sf_type),
                                 [&](std::string_view, const IndexEntry& e2) {
                                   cfs.push_back(e2);
                                   return true;
                                 }));
            for (const auto& ie : cfs) {
              std::string bytes;
              DORADB_RETURN_NOT_OK(env.db->Read(
                  env.txn, schema_.call_forwarding, ie.rid, &bytes, kNoCc));
              const auto cf = FromBytes<CallForwardingRow>(bytes);
              if (cf.start_time <= start_time && end_time < cf.end_time) {
                st->cf_found = true;
                break;
              }
            }
            return Status::OK();
          });
  DORADB_RETURN_NOT_OK(e->Run(dtxn, std::move(g)));
  if (!st->sf_active.load() || !st->cf_found.load()) {
    return Status::NotFound("no destination");  // user-level failure
  }
  return Status::OK();
}

Status Tm1Workload::DoraGetAccessData(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t ai_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase().AddAction(
      schema_.access_info, s_id, dora::LocalMode::kS,
      [this, s_id, ai_type](dora::ActionEnv& env) -> Status {
        IndexEntry ie;
        DORADB_RETURN_NOT_OK(
            env.Probe(schema_.ai_pk, Schema::AiKey(s_id, ai_type), &ie));
        std::string bytes;
        return env.db->Read(env.txn, schema_.access_info, ie.rid, &bytes,
                            kNoCc);
      });
  return e->Run(dtxn, std::move(g));
}

Status Tm1Workload::DoraUpdateSubscriberData(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t bit = rng.Percent(50) ? 1 : 0;
  const uint8_t data_a =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{255}));

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase();
  // SpecialFacility first: under the serial plan (DORA-S) this runs first
  // and aborts cheaply before any Subscriber work is wasted (§A.4, Fig 11).
  g.AddAction(schema_.special_facility, s_id, dora::LocalMode::kX,
              [this, s_id, sf_type, data_a](dora::ActionEnv& env) -> Status {
                IndexEntry ie;
                DORADB_RETURN_NOT_OK(env.Probe(
                    schema_.sf_pk, Schema::SfKey(s_id, sf_type), &ie));
                std::string bytes;
                DORADB_RETURN_NOT_OK(env.db->Read(
                    env.txn, schema_.special_facility, ie.rid, &bytes,
                    kNoCc));
                auto sf = FromBytes<SpecialFacilityRow>(bytes);
                sf.data_a = data_a;
                return env.db->Update(env.txn, schema_.special_facility,
                                      ie.rid, AsBytes(sf), kNoCc);
              });
  g.AddAction(schema_.subscriber, s_id, dora::LocalMode::kX,
              [this, s_id, bit](dora::ActionEnv& env) -> Status {
                IndexEntry ie;
                DORADB_RETURN_NOT_OK(
                    env.Probe(schema_.sub_pk, Schema::SubKey(s_id), &ie));
                std::string bytes;
                DORADB_RETURN_NOT_OK(env.db->Read(
                    env.txn, schema_.subscriber, ie.rid, &bytes, kNoCc));
                auto sub = FromBytes<SubscriberRow>(bytes);
                sub.bits = static_cast<uint16_t>((sub.bits & ~1u) | bit);
                if (config_.trace_subscriber_accesses) {
                  AccessTrace::Record(schema_.subscriber, s_id);
                }
                return env.db->Update(env.txn, schema_.subscriber, ie.rid,
                                      AsBytes(sub), kNoCc);
              });

  const bool serial =
      plan_mode_ == PlanMode::kSerial ||
      (plan_mode_ == PlanMode::kAuto &&
       advisor_.RecommendSerial(kUpdateSubscriberData));
  const Status s = e->Run(
      dtxn, serial ? std::move(g).Serialized() : std::move(g));
  if (plan_mode_ == PlanMode::kAuto) {
    advisor_.RecordOutcome(kUpdateSubscriberData, !s.ok());
  }
  return s;
}

Status Tm1Workload::DoraUpdateLocation(dora::DoraEngine* e, Rng& rng) {
  char sub_nbr[16];
  {
    uint64_t v = RandomSid(rng);
    for (int i = 14; i >= 0; --i) {
      sub_nbr[i] = static_cast<char>('0' + v % 10);
      v /= 10;
    }
    sub_nbr[15] = '\0';
  }
  const uint32_t new_vlr = static_cast<uint32_t>(rng.Next());

  // Secondary action (§4.2.2): the dispatcher probes the non-routing
  // sub_nbr index; the leaf entry's aux carries the routing field (s_id),
  // which determines the owning executor for the record access.
  IndexEntry ie;
  DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sub_nbr_idx)
                           ->Probe(Schema::SubNbrKey(sub_nbr), &ie));
  const uint64_t s_id = ie.aux;
  const Rid rid = ie.rid;

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase().AddAction(
      schema_.subscriber, s_id, dora::LocalMode::kX,
      [this, rid, s_id, new_vlr](dora::ActionEnv& env) -> Status {
        std::string bytes;
        DORADB_RETURN_NOT_OK(
            env.db->Read(env.txn, schema_.subscriber, rid, &bytes, kNoCc));
        auto sub = FromBytes<SubscriberRow>(bytes);
        sub.vlr_location = new_vlr;
        if (config_.trace_subscriber_accesses) {
          AccessTrace::Record(schema_.subscriber, s_id);
        }
        return env.db->Update(env.txn, schema_.subscriber, rid, AsBytes(sub),
                              kNoCc);
      });
  return e->Run(dtxn, std::move(g));
}

Status Tm1Workload::DoraInsertCallForwarding(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);
  const uint8_t end_time = static_cast<uint8_t>(
      start_time + rng.UniformInt(uint64_t{1}, uint64_t{8}));

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  // Phase 1: the special facility must exist (read-only check).
  g.AddPhase().AddAction(
      schema_.special_facility, s_id, dora::LocalMode::kS,
      [this, s_id, sf_type](dora::ActionEnv& env) -> Status {
        IndexEntry ie;
        DORADB_RETURN_NOT_OK(
            env.Probe(schema_.sf_pk, Schema::SfKey(s_id, sf_type), &ie));
        std::string bytes;
        return env.db->Read(env.txn, schema_.special_facility, ie.rid,
                            &bytes, kNoCc);
      });
  // Phase 2 (after the RVP): insert the call forwarding. The insert takes
  // the centralized RID lock — the only lock manager interaction (§4.2.1).
  g.AddPhase().AddAction(
      schema_.call_forwarding, s_id, dora::LocalMode::kX,
      [this, s_id, sf_type, start_time,
       end_time](dora::ActionEnv& env) -> Status {
        CallForwardingRow cf{};
        cf.s_id = s_id;
        cf.sf_type = sf_type;
        cf.start_time = start_time;
        cf.end_time = end_time;
        std::memcpy(cf.numberx, "000000000000000", 16);
        Rid rid;
        DORADB_RETURN_NOT_OK(env.db->Insert(env.txn, schema_.call_forwarding,
                                            AsBytes(cf), &rid, kRid));
        return env.db->IndexInsert(env.txn, schema_.cf_pk,
                                   Schema::CfKey(s_id, sf_type, start_time),
                                   IndexEntry{rid, s_id, false});
      });
  return e->Run(dtxn, std::move(g));
}

Status Tm1Workload::DoraDeleteCallForwarding(dora::DoraEngine* e, Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase().AddAction(
      schema_.call_forwarding, s_id, dora::LocalMode::kX,
      [this, s_id, sf_type, start_time](dora::ActionEnv& env) -> Status {
        IndexEntry ie;
        DORADB_RETURN_NOT_OK(env.Probe(
            schema_.cf_pk, Schema::CfKey(s_id, sf_type, start_time), &ie));
        DORADB_RETURN_NOT_OK(
            env.db->Delete(env.txn, schema_.call_forwarding, ie.rid, kRid));
        return env.db->IndexRemove(env.txn, schema_.cf_pk,
                                   Schema::CfKey(s_id, sf_type, start_time),
                                   ie.rid, s_id);
      });
  return e->Run(dtxn, std::move(g));
}

}  // namespace tm1
}  // namespace doradb
