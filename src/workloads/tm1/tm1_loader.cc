#include "workloads/tm1/tm1.h"

namespace doradb {
namespace tm1 {

namespace {

void FillSubNbr(uint64_t s_id, char* out /*16 bytes*/) {
  for (int i = 14; i >= 0; --i) {
    out[i] = static_cast<char>('0' + s_id % 10);
    s_id /= 10;
  }
  out[15] = '\0';
}

}  // namespace

Status Tm1Workload::Load() {
  DORADB_RETURN_NOT_OK(schema_.Create(db_));
  Rng rng(0xDADA);
  const AccessOptions opts = AccessOptions::NoCc();  // single-threaded load

  for (uint64_t s = 1; s <= config_.subscribers; ++s) {
    auto txn = db_->Begin();

    SubscriberRow sub{};
    sub.s_id = s;
    FillSubNbr(s, sub.sub_nbr);
    sub.bits = static_cast<uint16_t>(rng.Next());
    for (int i = 0; i < 10; ++i) {
      sub.hex[i] = static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, 15));
      sub.bytes2[i] = static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, 255));
    }
    sub.msc_location = static_cast<uint32_t>(rng.Next());
    sub.vlr_location = static_cast<uint32_t>(rng.Next());
    Rid rid;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.subscriber, AsBytes(sub), &rid, opts));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.sub_pk,
                                          Schema::SubKey(s),
                                          IndexEntry{rid, s, false}));
    // The non-routing-aligned index stores the routing field (s_id) in aux.
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.sub_nbr_idx,
                                          Schema::SubNbrKey(sub.sub_nbr),
                                          IndexEntry{rid, s, false}));

    // 1..4 distinct access-info types (avg 2.5).
    const uint32_t num_ai =
        static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
    auto ai_perm = rng.Permutation(4);
    for (uint32_t i = 0; i < num_ai; ++i) {
      AccessInfoRow ai{};
      ai.s_id = s;
      ai.ai_type = static_cast<uint8_t>(ai_perm[i] + 1);
      ai.data1 = static_cast<uint8_t>(rng.Next());
      ai.data2 = static_cast<uint8_t>(rng.Next());
      Rid ai_rid;
      DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.access_info,
                                       AsBytes(ai), &ai_rid, opts));
      DORADB_RETURN_NOT_OK(
          db_->IndexInsert(txn.get(), schema_.ai_pk,
                           Schema::AiKey(s, ai.ai_type),
                           IndexEntry{ai_rid, s, false}));
    }

    // 1..4 distinct special facilities; each active 85% of the time.
    const uint32_t num_sf =
        static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
    auto sf_perm = rng.Permutation(4);
    for (uint32_t i = 0; i < num_sf; ++i) {
      SpecialFacilityRow sf{};
      sf.s_id = s;
      sf.sf_type = static_cast<uint8_t>(sf_perm[i] + 1);
      sf.is_active = rng.Percent(85) ? 1 : 0;
      sf.error_cntrl = static_cast<uint8_t>(rng.Next());
      sf.data_a = static_cast<uint8_t>(rng.Next());
      Rid sf_rid;
      DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.special_facility,
                                       AsBytes(sf), &sf_rid, opts));
      DORADB_RETURN_NOT_OK(
          db_->IndexInsert(txn.get(), schema_.sf_pk,
                           Schema::SfKey(s, sf.sf_type),
                           IndexEntry{sf_rid, s, false}));

      // 0..3 call forwardings with distinct start times in {0, 8, 16}.
      const uint32_t num_cf =
          static_cast<uint32_t>(rng.UniformInt(uint64_t{0}, uint64_t{3}));
      auto cf_perm = rng.Permutation(3);
      for (uint32_t j = 0; j < num_cf; ++j) {
        CallForwardingRow cf{};
        cf.s_id = s;
        cf.sf_type = sf.sf_type;
        cf.start_time = static_cast<uint8_t>(cf_perm[j] * 8);
        cf.end_time = static_cast<uint8_t>(
            cf.start_time + rng.UniformInt(uint64_t{1}, uint64_t{8}));
        FillSubNbr(rng.UniformInt(uint64_t{1}, config_.subscribers),
                   cf.numberx);
        Rid cf_rid;
        DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.call_forwarding,
                                         AsBytes(cf), &cf_rid, opts));
        DORADB_RETURN_NOT_OK(db_->IndexInsert(
            txn.get(), schema_.cf_pk,
            Schema::CfKey(s, cf.sf_type, cf.start_time),
            IndexEntry{cf_rid, s, false}));
      }
    }
    DORADB_RETURN_NOT_OK(db_->Commit(txn.get()));
  }
  return Status::OK();
}

Status Tm1Workload::CheckConsistency() {
  // Every subscriber reachable through both indexes; every AI/SF/CF row's
  // s_id has a subscriber; CF rows have a matching SF row.
  Catalog* cat = db_->catalog();
  uint64_t subs = 0;
  Status out = Status::OK();
  Status s = cat->Heap(schema_.subscriber)
                 ->Scan([&](const Rid& rid, std::string_view bytes) {
                   const auto row = FromBytes<SubscriberRow>(bytes);
                   ++subs;
                   IndexEntry e;
                   if (!cat->Index(schema_.sub_pk)
                            ->Probe(Schema::SubKey(row.s_id), &e)
                            .ok() ||
                       !(e.rid == rid)) {
                     out = Status::Corruption("sub_pk mismatch");
                     return false;
                   }
                   if (!cat->Index(schema_.sub_nbr_idx)
                            ->Probe(Schema::SubNbrKey(row.sub_nbr), &e)
                            .ok() ||
                       e.aux != row.s_id) {
                     out = Status::Corruption("sub_nbr mismatch");
                     return false;
                   }
                   return true;
                 });
  DORADB_RETURN_NOT_OK(s);
  DORADB_RETURN_NOT_OK(out);
  if (subs != config_.subscribers) {
    return Status::Corruption("subscriber count mismatch");
  }
  s = cat->Heap(schema_.call_forwarding)
          ->Scan([&](const Rid&, std::string_view bytes) {
            const auto row = FromBytes<CallForwardingRow>(bytes);
            IndexEntry e;
            if (!cat->Index(schema_.sf_pk)
                     ->Probe(Schema::SfKey(row.s_id, row.sf_type), &e)
                     .ok()) {
              out = Status::Corruption("CF row without SF parent");
              return false;
            }
            if (!cat->Index(schema_.cf_pk)
                     ->Probe(Schema::CfKey(row.s_id, row.sf_type,
                                           row.start_time),
                             &e)
                     .ok()) {
              out = Status::Corruption("CF row missing from cf_pk");
              return false;
            }
            return true;
          });
  DORADB_RETURN_NOT_OK(s);
  return out;
}

}  // namespace tm1
}  // namespace doradb
