// Conventional (thread-to-transaction) implementations of the seven TM1
// transactions: every record access goes through the centralized
// hierarchical lock manager, exactly like the paper's Baseline system.

#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"

namespace doradb {
namespace tm1 {

namespace {
constexpr AccessOptions kCc = AccessOptions{true, false};
}

Status Tm1Workload::FinishBaseline(Transaction* txn, Status s) {
  if (s.ok()) return db_->Commit(txn);
  (void)db_->Abort(txn);
  return s;
}

Status Tm1Workload::BaseGetSubscriberData(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sub_pk)
                             ->Probe(Schema::SubKey(s_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.subscriber, ie.rid, &bytes, kCc));
    if (config_.trace_subscriber_accesses) {
      AccessTrace::Record(schema_.subscriber, s_id);
    }
    return Status::OK();
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseGetNewDestination(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);
  const uint8_t end_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{24}));
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sf_pk)
                             ->Probe(Schema::SfKey(s_id, sf_type), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(db_->Read(txn.get(), schema_.special_facility,
                                   ie.rid, &bytes, kCc));
    const auto sf = FromBytes<SpecialFacilityRow>(bytes);
    if (sf.is_active == 0) return Status::NotFound("sf inactive");
    // Range over this (s_id, sf_type)'s call forwardings.
    std::vector<IndexEntry> cfs;
    DORADB_RETURN_NOT_OK(
        db_->catalog()
            ->Index(schema_.cf_pk)
            ->ScanPrefix(Schema::CfPrefix(s_id, sf_type),
                         [&](std::string_view, const IndexEntry& e) {
                           cfs.push_back(e);
                           return true;
                         }));
    for (const auto& e : cfs) {
      std::string cf_bytes;
      DORADB_RETURN_NOT_OK(db_->Read(txn.get(), schema_.call_forwarding,
                                     e.rid, &cf_bytes, kCc));
      const auto cf = FromBytes<CallForwardingRow>(cf_bytes);
      if (cf.start_time <= start_time && end_time < cf.end_time) {
        return Status::OK();  // destination found
      }
    }
    return Status::NotFound("no destination");
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseGetAccessData(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t ai_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.ai_pk)
                             ->Probe(Schema::AiKey(s_id, ai_type), &ie));
    std::string bytes;
    return db_->Read(txn.get(), schema_.access_info, ie.rid, &bytes, kCc);
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseUpdateSubscriberData(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t bit = rng.Percent(50) ? 1 : 0;
  const uint8_t data_a =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{255}));
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    // Update Subscriber.bit_1 — always succeeds.
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sub_pk)
                             ->Probe(Schema::SubKey(s_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.subscriber, ie.rid, &bytes, kCc));
    auto sub = FromBytes<SubscriberRow>(bytes);
    sub.bits = static_cast<uint16_t>((sub.bits & ~1u) | bit);
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.subscriber, ie.rid, AsBytes(sub), kCc));
    if (config_.trace_subscriber_accesses) {
      AccessTrace::Record(schema_.subscriber, s_id);
    }
    // Update SpecialFacility.data_a — fails ~37.5% (wrong input, §A.4).
    IndexEntry sfe;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sf_pk)
                             ->Probe(Schema::SfKey(s_id, sf_type), &sfe));
    std::string sf_bytes;
    DORADB_RETURN_NOT_OK(db_->Read(txn.get(), schema_.special_facility,
                                   sfe.rid, &sf_bytes, kCc));
    auto sf = FromBytes<SpecialFacilityRow>(sf_bytes);
    sf.data_a = data_a;
    return db_->Update(txn.get(), schema_.special_facility, sfe.rid,
                       AsBytes(sf), kCc);
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseUpdateLocation(Rng& rng) {
  char sub_nbr[16];
  {
    uint64_t v = RandomSid(rng);
    for (int i = 14; i >= 0; --i) {
      sub_nbr[i] = static_cast<char>('0' + v % 10);
      v /= 10;
    }
    sub_nbr[15] = '\0';
  }
  const uint32_t new_vlr = static_cast<uint32_t>(rng.Next());
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sub_nbr_idx)
                             ->Probe(Schema::SubNbrKey(sub_nbr), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.subscriber, ie.rid, &bytes, kCc));
    auto sub = FromBytes<SubscriberRow>(bytes);
    sub.vlr_location = new_vlr;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.subscriber, ie.rid, AsBytes(sub), kCc));
    if (config_.trace_subscriber_accesses) {
      AccessTrace::Record(schema_.subscriber, sub.s_id);
    }
    return Status::OK();
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseInsertCallForwarding(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    // The special facility must exist.
    IndexEntry sfe;
    DORADB_RETURN_NOT_OK(db_->catalog()->Index(schema_.sf_pk)
                             ->Probe(Schema::SfKey(s_id, sf_type), &sfe));
    std::string sf_bytes;
    DORADB_RETURN_NOT_OK(db_->Read(txn.get(), schema_.special_facility,
                                   sfe.rid, &sf_bytes, kCc));
    CallForwardingRow cf{};
    cf.s_id = s_id;
    cf.sf_type = sf_type;
    cf.start_time = start_time;
    cf.end_time = static_cast<uint8_t>(
        start_time + rng.UniformInt(uint64_t{1}, uint64_t{8}));
    std::memcpy(cf.numberx, "000000000000000", 16);
    Rid rid;
    DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.call_forwarding,
                                     AsBytes(cf), &rid, kCc));
    // Duplicate (s, sf, start) fails the transaction (user abort).
    return db_->IndexInsert(txn.get(), schema_.cf_pk,
                            Schema::CfKey(s_id, sf_type, start_time),
                            IndexEntry{rid, s_id, false});
  }();
  return FinishBaseline(txn.get(), s);
}

Status Tm1Workload::BaseDeleteCallForwarding(Rng& rng) {
  const uint64_t s_id = RandomSid(rng);
  const uint8_t sf_type =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, uint64_t{4}));
  const uint8_t start_time =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{0}, uint64_t{2}) * 8);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        db_->catalog()
            ->Index(schema_.cf_pk)
            ->Probe(Schema::CfKey(s_id, sf_type, start_time), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Delete(txn.get(), schema_.call_forwarding, ie.rid, kCc));
    return db_->IndexRemove(txn.get(), schema_.cf_pk,
                            Schema::CfKey(s_id, sf_type, start_time), ie.rid,
                            s_id);
  }();
  return FinishBaseline(txn.get(), s);
}

}  // namespace tm1
}  // namespace doradb
