// TPC-C Delivery and StockLevel — the remaining two transactions of the
// full mix (deferred-execution and read-heavy decision-support styles).
//
// Both DORA variants span several phases while holding earlier-phase local
// locks, so they can form cross-graph waits with NewOrder/OrderStatus; the
// executors' parked-action expiration (the paper's §4.2.3 "propagate local
// waits to the deadlock detector") resolves any such cycle by aborting a
// participant, which the driver counts as a system abort.

#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace tpcc {

namespace {
constexpr AccessOptions kCc = AccessOptions{true, false};
constexpr AccessOptions kNoCc = AccessOptions{false, false};
constexpr AccessOptions kRid = AccessOptions{false, true};
}  // namespace

Status TpccWorkload::OldestNewOrder(uint32_t w, uint8_t d, uint32_t* o_id) {
  // no_pk keys are (w, d, o) big-endian: the first entry in the prefix
  // range is the minimum order id.
  bool found = false;
  KeyBuilder prefix;
  prefix.Add32(w).Add8(d);
  DORADB_RETURN_NOT_OK(
      db_->catalog()
          ->Index(schema_.no_pk)
          ->ScanPrefix(prefix.View(),
                       [&](std::string_view key, const IndexEntry&) {
                         uint32_t o = 0;
                         for (int i = 0; i < 4; ++i) {
                           o = (o << 8) |
                               static_cast<uint8_t>(key[key.size() - 4 + i]);
                         }
                         *o_id = o;
                         found = true;
                         return false;  // first = oldest
                       }));
  return found ? Status::OK() : Status::NotFound("no pending orders");
}

// ------------------------------------------------------------- Delivery

Status TpccWorkload::BaseDelivery(Rng& rng) {
  const uint32_t w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  const uint32_t carrier =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, uint64_t{10}));
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Catalog* cat = db_->catalog();
    for (uint8_t d = 1; d <= config_.districts; ++d) {
      uint32_t o_id;
      if (OldestNewOrder(w_id, d, &o_id).IsNotFound()) continue;  // skip
      // Consume the NewOrder row.
      IndexEntry no_ie;
      DORADB_RETURN_NOT_OK(cat->Index(schema_.no_pk)
                               ->Probe(Schema::NoKey(w_id, d, o_id), &no_ie));
      DORADB_RETURN_NOT_OK(
          db_->Delete(txn.get(), schema_.new_order, no_ie.rid, kCc));
      DORADB_RETURN_NOT_OK(db_->IndexRemove(txn.get(), schema_.no_pk,
                                            Schema::NoKey(w_id, d, o_id),
                                            no_ie.rid, w_id));
      // Stamp the carrier on the order.
      IndexEntry or_ie;
      DORADB_RETURN_NOT_OK(cat->Index(schema_.or_pk)
                               ->Probe(Schema::OrKey(w_id, d, o_id), &or_ie));
      std::string bytes;
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.order, or_ie.rid, &bytes, kCc));
      auto ord = FromBytes<OrderRow>(bytes);
      ord.carrier_id = carrier;
      DORADB_RETURN_NOT_OK(
          db_->Update(txn.get(), schema_.order, or_ie.rid, AsBytes(ord), kCc));
      // Deliver the lines, summing amounts.
      int64_t total = 0;
      std::vector<IndexEntry> lines;
      DORADB_RETURN_NOT_OK(
          cat->Index(schema_.ol_pk)
              ->ScanPrefix(Schema::OlPrefix(w_id, d, o_id),
                           [&](std::string_view, const IndexEntry& e) {
                             lines.push_back(e);
                             return true;
                           }));
      for (const auto& e : lines) {
        DORADB_RETURN_NOT_OK(
            db_->Read(txn.get(), schema_.order_line, e.rid, &bytes, kCc));
        auto line = FromBytes<OrderLineRow>(bytes);
        line.delivery_d = 1;
        total += line.amount;
        DORADB_RETURN_NOT_OK(db_->Update(txn.get(), schema_.order_line,
                                         e.rid, AsBytes(line), kCc));
      }
      // Credit the customer.
      IndexEntry cu_ie;
      DORADB_RETURN_NOT_OK(
          cat->Index(schema_.cu_pk)
              ->Probe(Schema::CuKey(w_id, d, ord.c_id), &cu_ie));
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.customer, cu_ie.rid, &bytes, kCc));
      auto cu = FromBytes<CustomerRow>(bytes);
      cu.balance += total;
      cu.delivery_cnt++;
      DORADB_RETURN_NOT_OK(db_->Update(txn.get(), schema_.customer, cu_ie.rid,
                                       AsBytes(cu), kCc));
    }
    return Status::OK();
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

Status TpccWorkload::DoraDelivery(dora::DoraEngine* e, Rng& rng) {
  const uint32_t w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  const uint32_t carrier =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, uint64_t{10}));

  struct State {
    // Per district: delivered order id (0 = none), customer, line total.
    std::array<std::atomic<uint32_t>, 11> o_id{};
    std::array<std::atomic<uint32_t>, 11> c_id{};
    std::array<std::atomic<int64_t>, 11> total{};
  };
  auto st = std::make_shared<State>();
  const uint8_t districts = config_.districts;

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  // Phase 1: consume the oldest NewOrder of every district.
  g.AddPhase().AddAction(
      schema_.new_order, w_id, dora::LocalMode::kX,
      [this, w_id, districts, st](dora::ActionEnv& env) -> Status {
        for (uint8_t d = 1; d <= districts; ++d) {
          uint32_t o_id;
          if (OldestNewOrder(w_id, d, &o_id).IsNotFound()) continue;
          IndexEntry ie;
          // env.Probe: leaf-cursor cached under epoch batching.
          DORADB_RETURN_NOT_OK(env.Probe(
              schema_.no_pk, Schema::NoKey(w_id, d, o_id), &ie));
          DORADB_RETURN_NOT_OK(
              env.db->Delete(env.txn, schema_.new_order, ie.rid, kRid));
          DORADB_RETURN_NOT_OK(env.db->IndexRemove(
              env.txn, schema_.no_pk, Schema::NoKey(w_id, d, o_id), ie.rid,
              w_id));
          st->o_id[d].store(o_id, std::memory_order_relaxed);
        }
        return Status::OK();
      });
  // Phase 2: order carrier stamps + order-line delivery, one action per
  // table (atomically enqueued together to keep {OR, OL} ordering
  // consistent with NewOrder's and OrderStatus's batches).
  g.AddPhase()
      .AddAction(schema_.order, w_id, dora::LocalMode::kX,
                 [this, w_id, districts, carrier,
                  st](dora::ActionEnv& env) -> Status {
                   for (uint8_t d = 1; d <= districts; ++d) {
                     const uint32_t o_id =
                         st->o_id[d].load(std::memory_order_relaxed);
                     if (o_id == 0) continue;
                     IndexEntry ie;
                     DORADB_RETURN_NOT_OK(env.Probe(
                         schema_.or_pk, Schema::OrKey(w_id, d, o_id), &ie));
                     std::string bytes;
                     DORADB_RETURN_NOT_OK(env.db->Read(
                         env.txn, schema_.order, ie.rid, &bytes, kNoCc));
                     auto ord = FromBytes<OrderRow>(bytes);
                     ord.carrier_id = carrier;
                     st->c_id[d].store(ord.c_id, std::memory_order_relaxed);
                     DORADB_RETURN_NOT_OK(
                         env.db->Update(env.txn, schema_.order, ie.rid,
                                        AsBytes(ord), kNoCc));
                   }
                   return Status::OK();
                 })
      .AddAction(schema_.order_line, w_id, dora::LocalMode::kX,
                 [this, w_id, districts, st](dora::ActionEnv& env) -> Status {
                   for (uint8_t d = 1; d <= districts; ++d) {
                     const uint32_t o_id =
                         st->o_id[d].load(std::memory_order_relaxed);
                     if (o_id == 0) continue;
                     std::vector<IndexEntry> lines;
                     DORADB_RETURN_NOT_OK(
                         db_->catalog()->Index(schema_.ol_pk)
                             ->ScanPrefix(
                                 Schema::OlPrefix(w_id, d, o_id),
                                 [&](std::string_view, const IndexEntry& le) {
                                   lines.push_back(le);
                                   return true;
                                 }));
                     int64_t total = 0;
                     for (const auto& le : lines) {
                       std::string bytes;
                       DORADB_RETURN_NOT_OK(env.db->Read(
                           env.txn, schema_.order_line, le.rid, &bytes,
                           kNoCc));
                       auto line = FromBytes<OrderLineRow>(bytes);
                       line.delivery_d = 1;
                       total += line.amount;
                       DORADB_RETURN_NOT_OK(
                           env.db->Update(env.txn, schema_.order_line,
                                          le.rid, AsBytes(line), kNoCc));
                     }
                     st->total[d].store(total, std::memory_order_relaxed);
                   }
                   return Status::OK();
                 });
  // Phase 3: credit the customers.
  g.AddPhase().AddAction(
      schema_.customer, w_id, dora::LocalMode::kX,
      [this, w_id, districts, st](dora::ActionEnv& env) -> Status {
        for (uint8_t d = 1; d <= districts; ++d) {
          const uint32_t o_id = st->o_id[d].load(std::memory_order_relaxed);
          if (o_id == 0) continue;
          IndexEntry ie;
          DORADB_RETURN_NOT_OK(env.Probe(
              schema_.cu_pk,
              Schema::CuKey(w_id, d,
                            st->c_id[d].load(std::memory_order_relaxed)),
              &ie));
          std::string bytes;
          DORADB_RETURN_NOT_OK(env.db->Read(env.txn, schema_.customer,
                                            ie.rid, &bytes, kNoCc));
          auto cu = FromBytes<CustomerRow>(bytes);
          cu.balance += st->total[d].load(std::memory_order_relaxed);
          cu.delivery_cnt++;
          DORADB_RETURN_NOT_OK(env.db->Update(env.txn, schema_.customer,
                                              ie.rid, AsBytes(cu), kNoCc));
        }
        return Status::OK();
      });
  return e->Run(dtxn, std::move(g));
}

// ------------------------------------------------------------ StockLevel

Status TpccWorkload::BaseStockLevel(Rng& rng) {
  const uint32_t w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  const uint8_t d_id =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  const int32_t threshold =
      static_cast<int32_t>(rng.UniformInt(uint64_t{10}, uint64_t{20}));
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Catalog* cat = db_->catalog();
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.di_pk)->Probe(Schema::DiKey(w_id, d_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.district, ie.rid, &bytes, kCc));
    const uint32_t next_o = FromBytes<DistrictRow>(bytes).next_o_id;
    const uint32_t from = next_o > 20 ? next_o - 20 : 1;
    // Distinct items in the last 20 orders' lines.
    std::vector<uint32_t> items;
    for (uint32_t o = from; o < next_o; ++o) {
      std::vector<IndexEntry> lines;
      DORADB_RETURN_NOT_OK(
          cat->Index(schema_.ol_pk)
              ->ScanPrefix(Schema::OlPrefix(w_id, d_id, o),
                           [&](std::string_view, const IndexEntry& e) {
                             lines.push_back(e);
                             return true;
                           }));
      for (const auto& e : lines) {
        DORADB_RETURN_NOT_OK(
            db_->Read(txn.get(), schema_.order_line, e.rid, &bytes, kCc));
        items.push_back(FromBytes<OrderLineRow>(bytes).i_id);
      }
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    int low = 0;
    for (uint32_t i_id : items) {
      IndexEntry st_ie;
      DORADB_RETURN_NOT_OK(cat->Index(schema_.st_pk)
                               ->Probe(Schema::StKey(w_id, i_id), &st_ie));
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.stock, st_ie.rid, &bytes, kCc));
      if (FromBytes<StockRow>(bytes).quantity < threshold) ++low;
    }
    return Status::OK();
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

Status TpccWorkload::DoraStockLevel(dora::DoraEngine* e, Rng& rng) {
  const uint32_t w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  const uint8_t d_id =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  const int32_t threshold =
      static_cast<int32_t>(rng.UniformInt(uint64_t{10}, uint64_t{20}));

  struct State {
    std::atomic<uint32_t> next_o{0};
    std::mutex mu;
    std::vector<uint32_t> items;
  };
  auto st = std::make_shared<State>();

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase().AddAction(
      schema_.district, w_id, dora::LocalMode::kS,
      [this, w_id, d_id, st](dora::ActionEnv& env) -> Status {
        IndexEntry ie;
        DORADB_RETURN_NOT_OK(
            env.Probe(schema_.di_pk, Schema::DiKey(w_id, d_id), &ie));
        std::string bytes;
        DORADB_RETURN_NOT_OK(env.db->Read(env.txn, schema_.district, ie.rid,
                                          &bytes, kNoCc));
        st->next_o.store(FromBytes<DistrictRow>(bytes).next_o_id,
                         std::memory_order_relaxed);
        return Status::OK();
      });
  g.AddPhase().AddAction(
      schema_.order_line, w_id, dora::LocalMode::kS,
      [this, w_id, d_id, st](dora::ActionEnv& env) -> Status {
        const uint32_t next_o = st->next_o.load(std::memory_order_relaxed);
        const uint32_t from = next_o > 20 ? next_o - 20 : 1;
        for (uint32_t o = from; o < next_o; ++o) {
          std::vector<IndexEntry> lines;
          DORADB_RETURN_NOT_OK(
              db_->catalog()->Index(schema_.ol_pk)
                  ->ScanPrefix(Schema::OlPrefix(w_id, d_id, o),
                               [&](std::string_view, const IndexEntry& le) {
                                 lines.push_back(le);
                                 return true;
                               }));
          for (const auto& le : lines) {
            std::string bytes;
            DORADB_RETURN_NOT_OK(env.db->Read(env.txn, schema_.order_line,
                                              le.rid, &bytes, kNoCc));
            st->items.push_back(FromBytes<OrderLineRow>(bytes).i_id);
          }
        }
        std::sort(st->items.begin(), st->items.end());
        st->items.erase(std::unique(st->items.begin(), st->items.end()),
                        st->items.end());
        return Status::OK();
      });
  g.AddPhase().AddAction(
      schema_.stock, w_id, dora::LocalMode::kS,
      [this, w_id, threshold, st](dora::ActionEnv& env) -> Status {
        int low = 0;
        for (uint32_t i_id : st->items) {
          IndexEntry ie;
          DORADB_RETURN_NOT_OK(
              env.Probe(schema_.st_pk, Schema::StKey(w_id, i_id), &ie));
          std::string bytes;
          DORADB_RETURN_NOT_OK(env.db->Read(env.txn, schema_.stock, ie.rid,
                                            &bytes, kNoCc));
          if (FromBytes<StockRow>(bytes).quantity < threshold) ++low;
        }
        return Status::OK();
      });
  return e->Run(dtxn, std::move(g));
}

}  // namespace tpcc
}  // namespace doradb
