// Conventional implementations of TPC-C NewOrder, Payment, OrderStatus,
// plus input generation and shared customer/order resolution helpers.

#include "workloads/common/driver.h"
#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace tpcc {

namespace {
constexpr AccessOptions kCc = AccessOptions{true, false};
}

// ------------------------------------------------------------ input makers

TpccWorkload::PaymentInput TpccWorkload::MakePaymentInput(Rng& rng) const {
  PaymentInput in{};
  in.w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  in.d_id =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  // 15% remote customer (spec 2.5.1.2) — the case that forces a
  // distributed transaction in shared-nothing designs but is just another
  // routed action in DORA (§4.1.2).
  if (config_.warehouses > 1 && rng.Percent(15)) {
    do {
      in.c_w_id = static_cast<uint32_t>(
          rng.UniformInt(uint64_t{1}, config_.warehouses));
    } while (in.c_w_id == in.w_id);
    in.c_d_id =
        static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  } else {
    in.c_w_id = in.w_id;
    in.c_d_id = in.d_id;
  }
  in.by_name = rng.Percent(60);
  const std::string last =
      Rng::LastName(static_cast<uint32_t>(rng.NURand(255, 0, MaxNameNum())));
  std::snprintf(in.last, sizeof(in.last), "%s", last.c_str());
  in.c_id = static_cast<uint32_t>(
      rng.NURand(1023, 1, config_.customers_per_district));
  in.amount = static_cast<int64_t>(rng.UniformInt(uint64_t{100},
                                                  uint64_t{500000}));
  return in;
}

TpccWorkload::NewOrderInput TpccWorkload::MakeNewOrderInput(Rng& rng) const {
  NewOrderInput in{};
  in.w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  in.d_id =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  in.c_id = static_cast<uint32_t>(
      rng.NURand(1023, 1, config_.customers_per_district));
  in.ol_cnt = static_cast<uint8_t>(rng.UniformInt(uint64_t{5}, uint64_t{15}));
  in.rollback = rng.Percent(1);  // spec 2.4.1.4: 1% use an invalid item
  for (uint8_t i = 0; i < in.ol_cnt; ++i) {
    in.items[i] =
        static_cast<uint32_t>(rng.NURand(8191, 1, config_.items));
    in.supply_w[i] = in.w_id;
    if (config_.warehouses > 1 && rng.Percent(1)) {
      do {
        in.supply_w[i] = static_cast<uint32_t>(
            rng.UniformInt(uint64_t{1}, config_.warehouses));
      } while (in.supply_w[i] == in.w_id);
    }
    in.qty[i] = static_cast<uint8_t>(rng.UniformInt(uint64_t{1},
                                                    uint64_t{10}));
  }
  if (in.rollback) in.items[in.ol_cnt - 1] = config_.items + 1;  // invalid
  return in;
}

TpccWorkload::OrderStatusInput TpccWorkload::MakeOrderStatusInput(
    Rng& rng) const {
  OrderStatusInput in{};
  in.w_id =
      static_cast<uint32_t>(rng.UniformInt(uint64_t{1}, config_.warehouses));
  in.d_id =
      static_cast<uint8_t>(rng.UniformInt(uint64_t{1}, config_.districts));
  in.by_name = rng.Percent(60);
  const std::string last =
      Rng::LastName(static_cast<uint32_t>(rng.NURand(255, 0, MaxNameNum())));
  std::snprintf(in.last, sizeof(in.last), "%s", last.c_str());
  in.c_id = static_cast<uint32_t>(
      rng.NURand(1023, 1, config_.customers_per_district));
  return in;
}

// --------------------------------------------------------- shared helpers

Status TpccWorkload::ResolveCustomer(Transaction* txn, uint32_t w, uint8_t d,
                                     bool by_name, const char* last,
                                     uint32_t c_id, const AccessOptions& opts,
                                     Rid* rid, CustomerRow* row) {
  Catalog* cat = db_->catalog();
  if (by_name) {
    // Spec 2.5.2.2: collect matches sorted by first name, take the middle.
    std::vector<IndexEntry> matches;
    DORADB_RETURN_NOT_OK(cat->Index(schema_.cu_name)
                             ->ProbeAll(Schema::CuNameKey(w, d, last),
                                        &matches));
    if (matches.empty()) return Status::NotFound("no customer by name");
    const IndexEntry& pick = matches[matches.size() / 2];
    *rid = pick.rid;
  } else {
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.cu_pk)->Probe(Schema::CuKey(w, d, c_id), &ie));
    *rid = ie.rid;
  }
  std::string bytes;
  DORADB_RETURN_NOT_OK(db_->Read(txn, schema_.customer, *rid, &bytes, opts));
  *row = FromBytes<CustomerRow>(bytes);
  return Status::OK();
}

Status TpccWorkload::LastOrderOf(uint32_t w, uint8_t d, uint32_t c,
                                 uint32_t* o_id) {
  uint32_t max_o = 0;
  DORADB_RETURN_NOT_OK(
      db_->catalog()
          ->Index(schema_.or_cust)
          ->ScanPrefix(Schema::OrCustPrefix(w, d, c),
                       [&](std::string_view key, const IndexEntry&) {
                         // Last 4 key bytes are the big-endian o_id.
                         uint32_t o = 0;
                         for (int i = 0; i < 4; ++i) {
                           o = (o << 8) |
                               static_cast<uint8_t>(key[key.size() - 4 + i]);
                         }
                         max_o = std::max(max_o, o);
                         return true;
                       }));
  if (max_o == 0) return Status::NotFound("customer has no orders");
  *o_id = max_o;
  return Status::OK();
}

// ------------------------------------------------------------ transactions

Status TpccWorkload::BasePayment(Rng& rng) {
  const PaymentInput in = MakePaymentInput(rng);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Catalog* cat = db_->catalog();
    // Warehouse: reflect payment in YTD.
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.wh_pk)->Probe(Schema::WhKey(in.w_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.warehouse, ie.rid, &bytes, kCc));
    auto wh = FromBytes<WarehouseRow>(bytes);
    wh.ytd += in.amount;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.warehouse, ie.rid, AsBytes(wh), kCc));
    // District.
    DORADB_RETURN_NOT_OK(cat->Index(schema_.di_pk)
                             ->Probe(Schema::DiKey(in.w_id, in.d_id), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.district, ie.rid, &bytes, kCc));
    auto di = FromBytes<DistrictRow>(bytes);
    di.ytd += in.amount;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.district, ie.rid, AsBytes(di), kCc));
    if (config_.trace_district_accesses) {
      AccessTrace::Record(schema_.district,
                          uint64_t(in.w_id - 1) * config_.districts +
                              in.d_id - 1);
    }
    // Customer (60% by last name).
    Rid c_rid;
    CustomerRow cu;
    DORADB_RETURN_NOT_OK(ResolveCustomer(txn.get(), in.c_w_id, in.c_d_id,
                                         in.by_name, in.last, in.c_id, kCc,
                                         &c_rid, &cu));
    cu.balance -= in.amount;
    cu.ytd_payment += in.amount;
    cu.payment_cnt++;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.customer, c_rid, AsBytes(cu), kCc));
    // History.
    HistoryRow h{};
    h.w_id = in.w_id;
    h.d_id = in.d_id;
    h.c_id = cu.c_id;
    h.c_w_id = in.c_w_id;
    h.c_d_id = in.c_d_id;
    h.amount = in.amount;
    Rid h_rid;
    return db_->Insert(txn.get(), schema_.history, AsBytes(h), &h_rid, kCc);
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

Status TpccWorkload::BaseNewOrder(Rng& rng) {
  const NewOrderInput in = MakeNewOrderInput(rng);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Catalog* cat = db_->catalog();
    // Warehouse tax (read-only).
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.wh_pk)->Probe(Schema::WhKey(in.w_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.warehouse, ie.rid, &bytes, kCc));
    // Customer discount (read-only).
    DORADB_RETURN_NOT_OK(
        cat->Index(schema_.cu_pk)
            ->Probe(Schema::CuKey(in.w_id, in.d_id, in.c_id), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.customer, ie.rid, &bytes, kCc));
    // District: allocate the order id.
    DORADB_RETURN_NOT_OK(cat->Index(schema_.di_pk)
                             ->Probe(Schema::DiKey(in.w_id, in.d_id), &ie));
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.district, ie.rid, &bytes, kCc));
    auto di = FromBytes<DistrictRow>(bytes);
    const uint32_t o_id = di.next_o_id;
    di.next_o_id++;
    DORADB_RETURN_NOT_OK(
        db_->Update(txn.get(), schema_.district, ie.rid, AsBytes(di), kCc));
    // Per line: item price (1% invalid aborts), stock update.
    int64_t prices[15];
    for (uint8_t i = 0; i < in.ol_cnt; ++i) {
      IndexEntry it_ie;
      const Status is =
          cat->Index(schema_.it_pk)->Probe(Schema::ItKey(in.items[i]),
                                           &it_ie);
      if (!is.ok()) return Status::Aborted("invalid item");  // spec rollback
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.item, it_ie.rid, &bytes, kCc));
      prices[i] = FromBytes<ItemRow>(bytes).price;

      IndexEntry st_ie;
      DORADB_RETURN_NOT_OK(
          cat->Index(schema_.st_pk)
              ->Probe(Schema::StKey(in.supply_w[i], in.items[i]), &st_ie));
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.stock, st_ie.rid, &bytes, kCc));
      auto st = FromBytes<StockRow>(bytes);
      st.quantity = st.quantity >= in.qty[i] + 10
                        ? st.quantity - in.qty[i]
                        : st.quantity - in.qty[i] + 91;
      st.ytd += in.qty[i];
      st.order_cnt++;
      if (in.supply_w[i] != in.w_id) st.remote_cnt++;
      DORADB_RETURN_NOT_OK(db_->Update(txn.get(), schema_.stock, st_ie.rid,
                                       AsBytes(st), kCc));
    }
    // Order + NewOrder + OrderLines.
    OrderRow ord{};
    ord.w_id = in.w_id;
    ord.d_id = in.d_id;
    ord.o_id = o_id;
    ord.c_id = in.c_id;
    ord.ol_cnt = in.ol_cnt;
    ord.all_local = 1;
    Rid rid;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.order, AsBytes(ord), &rid, kCc));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.or_pk,
                                          Schema::OrKey(in.w_id, in.d_id,
                                                        o_id),
                                          IndexEntry{rid, in.w_id, false}));
    DORADB_RETURN_NOT_OK(
        db_->IndexInsert(txn.get(), schema_.or_cust,
                         Schema::OrCustKey(in.w_id, in.d_id, in.c_id, o_id),
                         IndexEntry{rid, in.w_id, false}));
    NewOrderRow no{};
    no.w_id = in.w_id;
    no.d_id = in.d_id;
    no.o_id = o_id;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.new_order, AsBytes(no), &rid, kCc));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.no_pk,
                                          Schema::NoKey(in.w_id, in.d_id,
                                                        o_id),
                                          IndexEntry{rid, in.w_id, false}));
    for (uint8_t i = 0; i < in.ol_cnt; ++i) {
      OrderLineRow line{};
      line.w_id = in.w_id;
      line.d_id = in.d_id;
      line.o_id = o_id;
      line.ol_number = static_cast<uint8_t>(i + 1);
      line.i_id = in.items[i];
      line.supply_w_id = in.supply_w[i];
      line.quantity = in.qty[i];
      line.amount = prices[i] * in.qty[i];
      DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.order_line,
                                       AsBytes(line), &rid, kCc));
      DORADB_RETURN_NOT_OK(db_->IndexInsert(
          txn.get(), schema_.ol_pk,
          Schema::OlKey(in.w_id, in.d_id, o_id, line.ol_number),
          IndexEntry{rid, in.w_id, false}));
    }
    return Status::OK();
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

Status TpccWorkload::BaseOrderStatus(Rng& rng) {
  const OrderStatusInput in = MakeOrderStatusInput(rng);
  auto txn = db_->Begin();
  Status s = [&]() -> Status {
    ScopedTimeClass work(TimeClass::kWork);
    Rid c_rid;
    CustomerRow cu;
    DORADB_RETURN_NOT_OK(ResolveCustomer(txn.get(), in.w_id, in.d_id,
                                         in.by_name, in.last, in.c_id, kCc,
                                         &c_rid, &cu));
    uint32_t o_id;
    DORADB_RETURN_NOT_OK(LastOrderOf(in.w_id, in.d_id, cu.c_id, &o_id));
    IndexEntry ie;
    DORADB_RETURN_NOT_OK(
        db_->catalog()
            ->Index(schema_.or_pk)
            ->Probe(Schema::OrKey(in.w_id, in.d_id, o_id), &ie));
    std::string bytes;
    DORADB_RETURN_NOT_OK(
        db_->Read(txn.get(), schema_.order, ie.rid, &bytes, kCc));
    const auto ord = FromBytes<OrderRow>(bytes);
    // Read every order line.
    std::vector<IndexEntry> lines;
    DORADB_RETURN_NOT_OK(
        db_->catalog()
            ->Index(schema_.ol_pk)
            ->ScanPrefix(Schema::OlPrefix(in.w_id, in.d_id, o_id),
                         [&](std::string_view, const IndexEntry& e) {
                           lines.push_back(e);
                           return true;
                         }));
    if (lines.size() != ord.ol_cnt) {
      return Status::Corruption("order line count mismatch");
    }
    for (const auto& e : lines) {
      DORADB_RETURN_NOT_OK(
          db_->Read(txn.get(), schema_.order_line, e.rid, &bytes, kCc));
    }
    return Status::OK();
  }();
  if (s.ok()) return db_->Commit(txn.get());
  (void)db_->Abort(txn.get());
  return s;
}

}  // namespace tpcc
}  // namespace doradb
