// DORA implementations of TPC-C NewOrder, Payment, OrderStatus.
//
// Payment follows the paper's Fig. 4 flow graph exactly: phase 1 runs the
// merged retrieve+update actions on Warehouse, District and Customer in
// parallel; an RVP separates the History insert (data dependency) into
// phase 2. A remote customer (15%) is "simply routing the Customer action
// to a different executor" — no distributed-transaction machinery.

#include <array>

#include "workloads/common/driver.h"
#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace tpcc {

namespace {
constexpr AccessOptions kNoCc = AccessOptions{false, false};
constexpr AccessOptions kRid = AccessOptions{false, true};
}  // namespace

void TpccWorkload::SetupDora(dora::DoraEngine* engine) {
  const uint64_t wspace = config_.warehouses + 1;
  const uint32_t n = config_.executors_per_table;
  engine->RegisterTable(schema_.warehouse, wspace, n);
  engine->RegisterTable(schema_.district, wspace, n);
  engine->RegisterTable(schema_.customer, wspace, n);
  engine->RegisterTable(schema_.history, wspace, n);
  engine->RegisterTable(schema_.order, wspace, n);
  engine->RegisterTable(schema_.new_order, wspace, n);
  engine->RegisterTable(schema_.order_line, wspace, n);
  engine->RegisterTable(schema_.stock, wspace, n);
  engine->RegisterTable(schema_.item, config_.items + 1, n);
}

Status TpccWorkload::DoraPayment(dora::DoraEngine* e, Rng& rng) {
  const PaymentInput in = MakePaymentInput(rng);
  // The History row needs the customer id resolved in phase 1.
  auto resolved_c = std::make_shared<std::atomic<uint32_t>>(0);

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase()
      .AddAction(schema_.warehouse, in.w_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   // env.Probe: leaf-cursor cached under epoch batching.
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.wh_pk, Schema::WhKey(in.w_id), &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.warehouse, ie.rid, &bytes, kNoCc));
                   auto wh = FromBytes<WarehouseRow>(bytes);
                   wh.ytd += in.amount;
                   return env.db->Update(env.txn, schema_.warehouse, ie.rid,
                                         AsBytes(wh), kNoCc);
                 })
      .AddAction(schema_.district, in.w_id, dora::LocalMode::kX,
                 [this, in](dora::ActionEnv& env) -> Status {
                   IndexEntry ie;
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.di_pk, Schema::DiKey(in.w_id, in.d_id), &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.district, ie.rid, &bytes, kNoCc));
                   auto di = FromBytes<DistrictRow>(bytes);
                   di.ytd += in.amount;
                   if (config_.trace_district_accesses) {
                     AccessTrace::Record(
                         schema_.district,
                         uint64_t(in.w_id - 1) * config_.districts + in.d_id -
                             1);
                   }
                   return env.db->Update(env.txn, schema_.district, ie.rid,
                                         AsBytes(di), kNoCc);
                 })
      .AddAction(schema_.customer, in.c_w_id, dora::LocalMode::kX,
                 [this, in, resolved_c](dora::ActionEnv& env) -> Status {
                   Rid c_rid;
                   CustomerRow cu;
                   DORADB_RETURN_NOT_OK(ResolveCustomer(
                       env.txn, in.c_w_id, in.c_d_id, in.by_name, in.last,
                       in.c_id, kNoCc, &c_rid, &cu));
                   cu.balance -= in.amount;
                   cu.ytd_payment += in.amount;
                   cu.payment_cnt++;
                   resolved_c->store(cu.c_id, std::memory_order_relaxed);
                   return env.db->Update(env.txn, schema_.customer, c_rid,
                                         AsBytes(cu), kNoCc);
                 });
  // RVP, then the History insert (the only centralized lock: its RID).
  g.AddPhase().AddAction(
      schema_.history, in.w_id, dora::LocalMode::kX,
      [this, in, resolved_c](dora::ActionEnv& env) -> Status {
        HistoryRow h{};
        h.w_id = in.w_id;
        h.d_id = in.d_id;
        h.c_id = resolved_c->load(std::memory_order_relaxed);
        h.c_w_id = in.c_w_id;
        h.c_d_id = in.c_d_id;
        h.amount = in.amount;
        Rid rid;
        return env.db->Insert(env.txn, schema_.history, AsBytes(h), &rid,
                              kRid);
      });
  return e->Run(dtxn, std::move(g));
}

Status TpccWorkload::DoraNewOrder(dora::DoraEngine* e, Rng& rng) {
  const NewOrderInput in = MakeNewOrderInput(rng);

  struct State {
    std::atomic<uint32_t> o_id{0};
    std::array<int64_t, 15> price{};
  };
  auto st = std::make_shared<State>();

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  g.AddPhase();
  // Phase 1: reads + district order-id allocation, in parallel.
  g.AddAction(schema_.warehouse, in.w_id, dora::LocalMode::kS,
              [this, in](dora::ActionEnv& env) -> Status {
                IndexEntry ie;
                DORADB_RETURN_NOT_OK(env.Probe(
                    schema_.wh_pk, Schema::WhKey(in.w_id), &ie));
                std::string bytes;
                return env.db->Read(env.txn, schema_.warehouse, ie.rid,
                                    &bytes, kNoCc);
              });
  g.AddAction(schema_.customer, in.w_id, dora::LocalMode::kS,
              [this, in](dora::ActionEnv& env) -> Status {
                IndexEntry ie;
                DORADB_RETURN_NOT_OK(env.Probe(
                    schema_.cu_pk, Schema::CuKey(in.w_id, in.d_id, in.c_id),
                    &ie));
                std::string bytes;
                return env.db->Read(env.txn, schema_.customer, ie.rid,
                                    &bytes, kNoCc);
              });
  g.AddAction(schema_.district, in.w_id, dora::LocalMode::kX,
              [this, in, st](dora::ActionEnv& env) -> Status {
                IndexEntry ie;
                DORADB_RETURN_NOT_OK(env.Probe(
                    schema_.di_pk, Schema::DiKey(in.w_id, in.d_id), &ie));
                std::string bytes;
                DORADB_RETURN_NOT_OK(env.db->Read(
                    env.txn, schema_.district, ie.rid, &bytes, kNoCc));
                auto di = FromBytes<DistrictRow>(bytes);
                st->o_id.store(di.next_o_id, std::memory_order_relaxed);
                di.next_o_id++;
                return env.db->Update(env.txn, schema_.district, ie.rid,
                                      AsBytes(di), kNoCc);
              });
  // Item reads, grouped by executor (identifier = first item of the group;
  // Item is read-only so the group lock is only a routing anchor).
  {
    std::unordered_map<uint32_t, std::vector<uint8_t>> groups;
    for (uint8_t i = 0; i < in.ol_cnt; ++i) {
      groups[e->RouteIndex(schema_.item, in.items[i])].push_back(i);
    }
    for (auto& [exec_idx, line_idxs] : groups) {
      const uint64_t anchor = in.items[line_idxs[0]];
      g.AddAction(schema_.item, anchor, dora::LocalMode::kS,
                  [this, in, st, line_idxs](dora::ActionEnv& env) -> Status {
                    for (uint8_t i : line_idxs) {
                      IndexEntry ie;
                      const Status is = env.Probe(
                          schema_.it_pk, Schema::ItKey(in.items[i]), &ie);
                      if (!is.ok()) return Status::Aborted("invalid item");
                      std::string bytes;
                      DORADB_RETURN_NOT_OK(env.db->Read(
                          env.txn, schema_.item, ie.rid, &bytes, kNoCc));
                      st->price[i] = FromBytes<ItemRow>(bytes).price;
                    }
                    return Status::OK();
                  });
    }
  }

  // Phase 2 (after the RVP): stock updates + all inserts.
  g.AddPhase();
  {
    // One stock action per supplying warehouse (routing field = w).
    std::unordered_map<uint32_t, std::vector<uint8_t>> by_supplier;
    for (uint8_t i = 0; i < in.ol_cnt; ++i) {
      by_supplier[in.supply_w[i]].push_back(i);
    }
    for (auto& [supply_w, line_idxs] : by_supplier) {
      const uint32_t sw = supply_w;
      g.AddAction(
          schema_.stock, sw, dora::LocalMode::kX,
          [this, in, sw, line_idxs](dora::ActionEnv& env) -> Status {
            for (uint8_t i : line_idxs) {
              IndexEntry ie;
              DORADB_RETURN_NOT_OK(env.Probe(
                  schema_.st_pk, Schema::StKey(sw, in.items[i]), &ie));
              std::string bytes;
              DORADB_RETURN_NOT_OK(env.db->Read(env.txn, schema_.stock,
                                                ie.rid, &bytes, kNoCc));
              auto stk = FromBytes<StockRow>(bytes);
              stk.quantity = stk.quantity >= in.qty[i] + 10
                                 ? stk.quantity - in.qty[i]
                                 : stk.quantity - in.qty[i] + 91;
              stk.ytd += in.qty[i];
              stk.order_cnt++;
              if (sw != in.w_id) stk.remote_cnt++;
              DORADB_RETURN_NOT_OK(env.db->Update(
                  env.txn, schema_.stock, ie.rid, AsBytes(stk), kNoCc));
            }
            return Status::OK();
          });
    }
  }
  g.AddAction(schema_.order, in.w_id, dora::LocalMode::kX,
              [this, in, st](dora::ActionEnv& env) -> Status {
                const uint32_t o_id =
                    st->o_id.load(std::memory_order_relaxed);
                OrderRow ord{};
                ord.w_id = in.w_id;
                ord.d_id = in.d_id;
                ord.o_id = o_id;
                ord.c_id = in.c_id;
                ord.ol_cnt = in.ol_cnt;
                ord.all_local = 1;
                Rid rid;
                DORADB_RETURN_NOT_OK(env.db->Insert(
                    env.txn, schema_.order, AsBytes(ord), &rid, kRid));
                DORADB_RETURN_NOT_OK(env.db->IndexInsert(
                    env.txn, schema_.or_pk,
                    Schema::OrKey(in.w_id, in.d_id, o_id),
                    IndexEntry{rid, in.w_id, false}));
                return env.db->IndexInsert(
                    env.txn, schema_.or_cust,
                    Schema::OrCustKey(in.w_id, in.d_id, in.c_id, o_id),
                    IndexEntry{rid, in.w_id, false});
              });
  g.AddAction(schema_.new_order, in.w_id, dora::LocalMode::kX,
              [this, in, st](dora::ActionEnv& env) -> Status {
                const uint32_t o_id =
                    st->o_id.load(std::memory_order_relaxed);
                NewOrderRow no{};
                no.w_id = in.w_id;
                no.d_id = in.d_id;
                no.o_id = o_id;
                Rid rid;
                DORADB_RETURN_NOT_OK(env.db->Insert(
                    env.txn, schema_.new_order, AsBytes(no), &rid, kRid));
                return env.db->IndexInsert(
                    env.txn, schema_.no_pk,
                    Schema::NoKey(in.w_id, in.d_id, o_id),
                    IndexEntry{rid, in.w_id, false});
              });
  g.AddAction(schema_.order_line, in.w_id, dora::LocalMode::kX,
              [this, in, st](dora::ActionEnv& env) -> Status {
                const uint32_t o_id =
                    st->o_id.load(std::memory_order_relaxed);
                for (uint8_t i = 0; i < in.ol_cnt; ++i) {
                  OrderLineRow line{};
                  line.w_id = in.w_id;
                  line.d_id = in.d_id;
                  line.o_id = o_id;
                  line.ol_number = static_cast<uint8_t>(i + 1);
                  line.i_id = in.items[i];
                  line.supply_w_id = in.supply_w[i];
                  line.quantity = in.qty[i];
                  line.amount = st->price[i] * in.qty[i];
                  Rid rid;
                  DORADB_RETURN_NOT_OK(env.db->Insert(env.txn,
                                                      schema_.order_line,
                                                      AsBytes(line), &rid,
                                                      kRid));
                  DORADB_RETURN_NOT_OK(env.db->IndexInsert(
                      env.txn, schema_.ol_pk,
                      Schema::OlKey(in.w_id, in.d_id, o_id, line.ol_number),
                      IndexEntry{rid, in.w_id, false}));
                }
                return Status::OK();
              });
  return e->Run(dtxn, std::move(g));
}

Status TpccWorkload::DoraOrderStatus(dora::DoraEngine* e, Rng& rng) {
  const OrderStatusInput in = MakeOrderStatusInput(rng);

  struct State {
    std::atomic<uint32_t> c_id{0};
    std::atomic<uint32_t> o_id{0};
    std::atomic<uint32_t> ol_cnt{0};
  };
  auto st = std::make_shared<State>();

  auto dtxn = e->BeginTxn();
  dora::FlowGraph g;
  // Phase 1: resolve + read the customer (by-name probes stay on the
  // customer executor — the index key embeds the routing field).
  g.AddPhase().AddAction(
      schema_.customer, in.w_id, dora::LocalMode::kS,
      [this, in, st](dora::ActionEnv& env) -> Status {
        Rid c_rid;
        CustomerRow cu;
        DORADB_RETURN_NOT_OK(ResolveCustomer(env.txn, in.w_id, in.d_id,
                                             in.by_name, in.last, in.c_id,
                                             kNoCc, &c_rid, &cu));
        st->c_id.store(cu.c_id, std::memory_order_relaxed);
        return Status::OK();
      });
  // Phase 2: the order AND its lines in ONE atomically-enqueued phase.
  // Both actions re-derive the last order id from the or_cust index (probe
  // is latch-safe) instead of passing it through an extra RVP: acquiring
  // {Order, OrderLine} in a single atomic batch keeps the local-lock
  // acquisition order consistent with NewOrder's phase-2 batch — the
  // cross-graph deadlock §4.2.3's ordered enqueue is meant to prevent.
  g.AddPhase()
      .AddAction(schema_.order, in.w_id, dora::LocalMode::kS,
                 [this, in, st](dora::ActionEnv& env) -> Status {
                   uint32_t o_id;
                   DORADB_RETURN_NOT_OK(LastOrderOf(
                       in.w_id, in.d_id,
                       st->c_id.load(std::memory_order_relaxed), &o_id));
                   IndexEntry ie;
                   DORADB_RETURN_NOT_OK(env.Probe(
                       schema_.or_pk, Schema::OrKey(in.w_id, in.d_id, o_id),
                       &ie));
                   std::string bytes;
                   DORADB_RETURN_NOT_OK(env.db->Read(
                       env.txn, schema_.order, ie.rid, &bytes, kNoCc));
                   st->o_id.store(o_id, std::memory_order_relaxed);
                   st->ol_cnt.store(FromBytes<OrderRow>(bytes).ol_cnt,
                                    std::memory_order_relaxed);
                   return Status::OK();
                 })
      .AddAction(schema_.order_line, in.w_id, dora::LocalMode::kS,
                 [this, in, st](dora::ActionEnv& env) -> Status {
                   uint32_t o_id;
                   DORADB_RETURN_NOT_OK(LastOrderOf(
                       in.w_id, in.d_id,
                       st->c_id.load(std::memory_order_relaxed), &o_id));
                   std::vector<IndexEntry> lines;
                   DORADB_RETURN_NOT_OK(
                       db_->catalog()
                           ->Index(schema_.ol_pk)
                           ->ScanPrefix(
                               Schema::OlPrefix(in.w_id, in.d_id, o_id),
                               [&](std::string_view, const IndexEntry& le) {
                                 lines.push_back(le);
                                 return true;
                               }));
                   for (const auto& le : lines) {
                     std::string bytes;
                     DORADB_RETURN_NOT_OK(env.db->Read(
                         env.txn, schema_.order_line, le.rid, &bytes,
                         kNoCc));
                   }
                   return Status::OK();
                 });
  return e->Run(dtxn, std::move(g));
}

}  // namespace tpcc
}  // namespace doradb
