#include "workloads/tpcc/tpcc.h"

#include <cstddef>

namespace doradb {
namespace tpcc {

// Key specs mirror the Key() builders below field-for-field; aux mirrors
// what the insert sites store (warehouse id almost everywhere, item id for
// Item, customer id for the by-name customer index), so a durable catalog
// can rebuild every index from the heaps at restart without workload code
// and a rebuilt entry is byte-identical to a live-inserted one.
Status Schema::Create(Database* db) {
  Catalog* cat = db->catalog();
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_warehouse", &warehouse));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_district", &district));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_customer", &customer));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_history", &history));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_order", &order));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_new_order", &new_order));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_order_line", &order_line));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_item", &item));
  DORADB_RETURN_NOT_OK(cat->CreateTable("tpcc_stock", &stock));

  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      warehouse, "tpcc_wh_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(WarehouseRow, w_id), 4)
          .Aux(offsetof(WarehouseRow, w_id), 4),
      &wh_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      district, "tpcc_di_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(DistrictRow, w_id), 4)
          .Uint(offsetof(DistrictRow, d_id), 1)
          .Aux(offsetof(DistrictRow, w_id), 4),
      &di_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      customer, "tpcc_cu_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(CustomerRow, w_id), 4)
          .Uint(offsetof(CustomerRow, d_id), 1)
          .Uint(offsetof(CustomerRow, c_id), 4)
          .Aux(offsetof(CustomerRow, w_id), 4),
      &cu_pk));
  // Key embeds (w, d, last): routing-aligned, so probes to it are NOT
  // secondary actions (paper §4.1.2 discussion of the Payment example).
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      customer, "tpcc_cu_name", false, false,
      IndexKeySpec{}.Uint(offsetof(CustomerRow, w_id), 4)
          .Uint(offsetof(CustomerRow, d_id), 1)
          .Bytes(offsetof(CustomerRow, last), 16)
          .Aux(offsetof(CustomerRow, c_id), 4),
      &cu_name));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      order, "tpcc_or_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(OrderRow, w_id), 4)
          .Uint(offsetof(OrderRow, d_id), 1)
          .Uint(offsetof(OrderRow, o_id), 4)
          .Aux(offsetof(OrderRow, w_id), 4),
      &or_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      order, "tpcc_or_cust", true, false,
      IndexKeySpec{}.Uint(offsetof(OrderRow, w_id), 4)
          .Uint(offsetof(OrderRow, d_id), 1)
          .Uint(offsetof(OrderRow, c_id), 4)
          .Uint(offsetof(OrderRow, o_id), 4)
          .Aux(offsetof(OrderRow, w_id), 4),
      &or_cust));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      new_order, "tpcc_no_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(NewOrderRow, w_id), 4)
          .Uint(offsetof(NewOrderRow, d_id), 1)
          .Uint(offsetof(NewOrderRow, o_id), 4)
          .Aux(offsetof(NewOrderRow, w_id), 4),
      &no_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      order_line, "tpcc_ol_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(OrderLineRow, w_id), 4)
          .Uint(offsetof(OrderLineRow, d_id), 1)
          .Uint(offsetof(OrderLineRow, o_id), 4)
          .Uint(offsetof(OrderLineRow, ol_number), 1)
          .Aux(offsetof(OrderLineRow, w_id), 4),
      &ol_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      item, "tpcc_it_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(ItemRow, i_id), 4)
          .Aux(offsetof(ItemRow, i_id), 4),
      &it_pk));
  DORADB_RETURN_NOT_OK(cat->CreateIndex(
      stock, "tpcc_st_pk", true, false,
      IndexKeySpec{}.Uint(offsetof(StockRow, w_id), 4)
          .Uint(offsetof(StockRow, i_id), 4)
          .Aux(offsetof(StockRow, w_id), 4),
      &st_pk));
  return Status::OK();
}

std::string Schema::WhKey(uint32_t w) {
  KeyBuilder kb;
  kb.Add32(w);
  return kb.Str();
}

std::string Schema::DiKey(uint32_t w, uint8_t d) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d);
  return kb.Str();
}

std::string Schema::CuKey(uint32_t w, uint8_t d, uint32_t c) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(c);
  return kb.Str();
}

std::string Schema::CuNameKey(uint32_t w, uint8_t d, const char* last) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).AddString(last, 16);
  return kb.Str();
}

std::string Schema::OrKey(uint32_t w, uint8_t d, uint32_t o) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(o);
  return kb.Str();
}

std::string Schema::OrCustPrefix(uint32_t w, uint8_t d, uint32_t c) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(c);
  return kb.Str();
}

std::string Schema::OrCustKey(uint32_t w, uint8_t d, uint32_t c, uint32_t o) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(c).Add32(o);
  return kb.Str();
}

std::string Schema::NoKey(uint32_t w, uint8_t d, uint32_t o) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(o);
  return kb.Str();
}

std::string Schema::OlKey(uint32_t w, uint8_t d, uint32_t o, uint8_t ol) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(o).Add8(ol);
  return kb.Str();
}

std::string Schema::OlPrefix(uint32_t w, uint8_t d, uint32_t o) {
  KeyBuilder kb;
  kb.Add32(w).Add8(d).Add32(o);
  return kb.Str();
}

std::string Schema::ItKey(uint32_t i) {
  KeyBuilder kb;
  kb.Add32(i);
  return kb.Str();
}

std::string Schema::StKey(uint32_t w, uint32_t i) {
  KeyBuilder kb;
  kb.Add32(w).Add32(i);
  return kb.Str();
}

const char* TpccWorkload::TxnName(uint32_t type) const {
  switch (type) {
    case kNewOrder: return "NewOrder";
    case kPayment: return "Payment";
    case kOrderStatus: return "OrderStatus";
    case kDelivery: return "Delivery";
    case kStockLevel: return "StockLevel";
  }
  return "?";
}

uint32_t TpccWorkload::PickTxnType(Rng& rng) const {
  // Standard TPC-C weights: 45/43/4/4/4.
  const uint64_t p = rng.UniformInt(uint64_t{1}, uint64_t{100});
  if (p <= 45) return kNewOrder;
  if (p <= 88) return kPayment;
  if (p <= 92) return kOrderStatus;
  if (p <= 96) return kDelivery;
  return kStockLevel;
}

Status TpccWorkload::RunBaseline(uint32_t type, Rng& rng) {
  switch (type) {
    case kNewOrder: return BaseNewOrder(rng);
    case kPayment: return BasePayment(rng);
    case kOrderStatus: return BaseOrderStatus(rng);
    case kDelivery: return BaseDelivery(rng);
    case kStockLevel: return BaseStockLevel(rng);
  }
  return Status::InvalidArgument("bad txn type");
}

Status TpccWorkload::RunDora(dora::DoraEngine* engine, uint32_t type,
                             Rng& rng) {
  switch (type) {
    case kNewOrder: return DoraNewOrder(engine, rng);
    case kPayment: return DoraPayment(engine, rng);
    case kOrderStatus: return DoraOrderStatus(engine, rng);
    case kDelivery: return DoraDelivery(engine, rng);
    case kStockLevel: return DoraStockLevel(engine, rng);
  }
  return Status::InvalidArgument("bad txn type");
}

}  // namespace tpcc
}  // namespace doradb
