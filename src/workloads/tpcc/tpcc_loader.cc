#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace tpcc {

Status TpccWorkload::Load() {
  DORADB_RETURN_NOT_OK(schema_.Create(db_));
  Rng rng(0xCC);
  const AccessOptions opts = AccessOptions::NoCc();

  auto txn = db_->Begin();
  size_t in_txn = 0;
  auto maybe_commit = [&]() -> Status {
    if (++in_txn >= 2000) {
      DORADB_RETURN_NOT_OK(db_->Commit(txn.get()));
      txn = db_->Begin();
      in_txn = 0;
    }
    return Status::OK();
  };

  // Items (shared across warehouses).
  for (uint32_t i = 1; i <= config_.items; ++i) {
    ItemRow it{};
    it.i_id = i;
    it.im_id = static_cast<uint32_t>(rng.UniformInt(uint64_t{1},
                                                    uint64_t{10000}));
    it.price = static_cast<int64_t>(rng.UniformInt(uint64_t{100},
                                                   uint64_t{10000}));
    Rid rid;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.item, AsBytes(it), &rid, opts));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.it_pk,
                                          Schema::ItKey(i),
                                          IndexEntry{rid, i, false}));
    DORADB_RETURN_NOT_OK(maybe_commit());
  }

  for (uint32_t w = 1; w <= config_.warehouses; ++w) {
    WarehouseRow wh{};
    wh.w_id = w;
    wh.tax = static_cast<int32_t>(rng.UniformInt(uint64_t{0}, uint64_t{2000}));
    Rid rid;
    DORADB_RETURN_NOT_OK(
        db_->Insert(txn.get(), schema_.warehouse, AsBytes(wh), &rid, opts));
    DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.wh_pk,
                                          Schema::WhKey(w),
                                          IndexEntry{rid, w, false}));
    DORADB_RETURN_NOT_OK(maybe_commit());

    // Stock for every item.
    for (uint32_t i = 1; i <= config_.items; ++i) {
      StockRow st{};
      st.w_id = w;
      st.i_id = i;
      st.quantity = static_cast<int32_t>(
          rng.UniformInt(uint64_t{10}, uint64_t{100}));
      DORADB_RETURN_NOT_OK(
          db_->Insert(txn.get(), schema_.stock, AsBytes(st), &rid, opts));
      DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.st_pk,
                                            Schema::StKey(w, i),
                                            IndexEntry{rid, w, false}));
      DORADB_RETURN_NOT_OK(maybe_commit());
    }

    for (uint8_t d = 1; d <= config_.districts; ++d) {
      DistrictRow di{};
      di.w_id = w;
      di.d_id = d;
      di.tax = static_cast<int32_t>(
          rng.UniformInt(uint64_t{0}, uint64_t{2000}));
      di.next_o_id = config_.initial_orders_per_district + 1;
      DORADB_RETURN_NOT_OK(
          db_->Insert(txn.get(), schema_.district, AsBytes(di), &rid, opts));
      DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.di_pk,
                                            Schema::DiKey(w, d),
                                            IndexEntry{rid, w, false}));
      DORADB_RETURN_NOT_OK(maybe_commit());

      for (uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerRow cu{};
        cu.w_id = w;
        cu.d_id = d;
        cu.c_id = c;
        cu.balance = -1000;  // spec: -10.00
        cu.discount = static_cast<int32_t>(
            rng.UniformInt(uint64_t{0}, uint64_t{5000}));
        // First customers get deterministic names so by-name lookups work
        // (spec 4.3.3.1).
        const std::string last =
            Rng::LastName(c <= 1000 ? c - 1 : static_cast<uint32_t>(
                                                  rng.NURand(255, 0, 999)));
        std::snprintf(cu.last, sizeof(cu.last), "%s", last.c_str());
        std::memcpy(cu.credit, rng.Percent(10) ? "BC" : "GC", 3);
        DORADB_RETURN_NOT_OK(
            db_->Insert(txn.get(), schema_.customer, AsBytes(cu), &rid,
                        opts));
        DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.cu_pk,
                                              Schema::CuKey(w, d, c),
                                              IndexEntry{rid, w, false}));
        DORADB_RETURN_NOT_OK(
            db_->IndexInsert(txn.get(), schema_.cu_name,
                             Schema::CuNameKey(w, d, cu.last),
                             IndexEntry{rid, c, false}));
        DORADB_RETURN_NOT_OK(maybe_commit());
      }

      // Initial (delivered) orders so OrderStatus has data from the start.
      for (uint32_t o = 1; o <= config_.initial_orders_per_district; ++o) {
        OrderRow ord{};
        ord.w_id = w;
        ord.d_id = d;
        ord.o_id = o;
        ord.c_id = static_cast<uint32_t>(
            rng.UniformInt(uint64_t{1}, config_.customers_per_district));
        ord.carrier_id = static_cast<uint32_t>(
            rng.UniformInt(uint64_t{1}, uint64_t{10}));
        ord.ol_cnt = static_cast<uint8_t>(
            rng.UniformInt(uint64_t{5}, uint64_t{15}));
        ord.all_local = 1;
        DORADB_RETURN_NOT_OK(
            db_->Insert(txn.get(), schema_.order, AsBytes(ord), &rid, opts));
        DORADB_RETURN_NOT_OK(db_->IndexInsert(txn.get(), schema_.or_pk,
                                              Schema::OrKey(w, d, o),
                                              IndexEntry{rid, w, false}));
        DORADB_RETURN_NOT_OK(
            db_->IndexInsert(txn.get(), schema_.or_cust,
                             Schema::OrCustKey(w, d, ord.c_id, o),
                             IndexEntry{rid, w, false}));
        for (uint8_t ol = 1; ol <= ord.ol_cnt; ++ol) {
          OrderLineRow line{};
          line.w_id = w;
          line.d_id = d;
          line.o_id = o;
          line.ol_number = ol;
          line.i_id = static_cast<uint32_t>(
              rng.UniformInt(uint64_t{1}, config_.items));
          line.supply_w_id = w;
          line.quantity = 5;
          line.amount = static_cast<int64_t>(
              rng.UniformInt(uint64_t{1}, uint64_t{999999}));
          line.delivery_d = 1;
          Rid ol_rid;
          DORADB_RETURN_NOT_OK(db_->Insert(txn.get(), schema_.order_line,
                                           AsBytes(line), &ol_rid, opts));
          DORADB_RETURN_NOT_OK(
              db_->IndexInsert(txn.get(), schema_.ol_pk,
                               Schema::OlKey(w, d, o, ol),
                               IndexEntry{ol_rid, w, false}));
          DORADB_RETURN_NOT_OK(maybe_commit());
        }
      }
    }
  }
  return db_->Commit(txn.get());
}

Status TpccWorkload::CheckConsistency() {
  Catalog* cat = db_->catalog();
  // W_YTD == sum of its districts' D_YTD.
  std::vector<int64_t> wh_ytd(config_.warehouses + 1, 0);
  std::vector<int64_t> di_ytd_sum(config_.warehouses + 1, 0);
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.warehouse)
                           ->Scan([&](const Rid&, std::string_view b) {
                             const auto wh = FromBytes<WarehouseRow>(b);
                             wh_ytd[wh.w_id] = wh.ytd;
                             return true;
                           }));
  std::vector<std::pair<uint64_t, uint32_t>> district_next;  // (w,d)->next
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.district)
                           ->Scan([&](const Rid&, std::string_view b) {
                             const auto di = FromBytes<DistrictRow>(b);
                             di_ytd_sum[di.w_id] += di.ytd;
                             district_next.push_back(
                                 {(uint64_t(di.w_id) << 8) | di.d_id,
                                  di.next_o_id});
                             return true;
                           }));
  for (uint32_t w = 1; w <= config_.warehouses; ++w) {
    if (wh_ytd[w] != di_ytd_sum[w]) {
      return Status::Corruption("W_YTD != sum(D_YTD) for warehouse " +
                                std::to_string(w));
    }
  }
  // D_NEXT_O_ID - 1 == max(O_ID) per district; order line counts match.
  std::unordered_map<uint64_t, uint32_t> max_o;
  std::unordered_map<uint64_t, uint32_t> ol_counts;  // (w,d,o) -> lines
  std::unordered_map<uint64_t, uint8_t> o_declared;
  DORADB_RETURN_NOT_OK(
      cat->Heap(schema_.order)->Scan([&](const Rid&, std::string_view b) {
        const auto o = FromBytes<OrderRow>(b);
        const uint64_t dk = (uint64_t(o.w_id) << 8) | o.d_id;
        max_o[dk] = std::max(max_o[dk], o.o_id);
        o_declared[(dk << 32) | o.o_id] = o.ol_cnt;
        return true;
      }));
  DORADB_RETURN_NOT_OK(cat->Heap(schema_.order_line)
                           ->Scan([&](const Rid&, std::string_view b) {
                             const auto l = FromBytes<OrderLineRow>(b);
                             const uint64_t dk =
                                 (uint64_t(l.w_id) << 8) | l.d_id;
                             ol_counts[(dk << 32) | l.o_id]++;
                             return true;
                           }));
  for (const auto& [dk, next] : district_next) {
    const uint32_t expect = next - 1;
    if (max_o.count(dk) != 0 && max_o[dk] != expect) {
      return Status::Corruption("D_NEXT_O_ID inconsistent with max(O_ID)");
    }
  }
  for (const auto& [ok, cnt] : o_declared) {
    if (ol_counts[ok] != cnt) {
      return Status::Corruption("order line count != O_OL_CNT");
    }
  }
  return Status::OK();
}

}  // namespace tpcc
}  // namespace doradb
