// TPC-C (order-entry OLTP) — Warehouse/District/Customer/History/Order/
// NewOrder/OrderLine/Item/Stock, with the three transactions the paper's
// figures use: NewOrder, Payment (the §4.1 running example, Fig. 4),
// and OrderStatus.
//
// Routing field: Warehouse id for every warehouse-partitioned table (the
// paper's choice in §4.1.1); Item is routed by item id. The customer
// last-name index embeds (w, d, last name) so its key contains the routing
// field and probes stay routing-aligned (§4.1.2).

#ifndef DORADB_WORKLOADS_TPCC_TPCC_H_
#define DORADB_WORKLOADS_TPCC_TPCC_H_

#include "workloads/common/workload.h"

namespace doradb {
namespace tpcc {

struct WarehouseRow {
  uint32_t w_id;
  int64_t ytd;        // money in cents
  int32_t tax;        // basis points
  char name[12];
  char data[32];
};

struct DistrictRow {
  uint32_t w_id;
  uint8_t d_id;
  int64_t ytd;
  int32_t tax;
  uint32_t next_o_id;
  char name[12];
  char data[32];
};

struct CustomerRow {
  uint32_t w_id;
  uint8_t d_id;
  uint32_t c_id;
  int64_t balance;
  int64_t ytd_payment;
  uint32_t payment_cnt;
  uint32_t delivery_cnt;
  int32_t discount;  // basis points
  char last[17];
  char first[17];
  char credit[3];
  char data[64];
};

struct HistoryRow {
  uint32_t w_id;
  uint8_t d_id;
  uint32_t c_id;
  uint32_t c_w_id;
  uint8_t c_d_id;
  int64_t amount;
  char data[25];
};

struct OrderRow {
  uint32_t w_id;
  uint8_t d_id;
  uint32_t o_id;
  uint32_t c_id;
  uint32_t carrier_id;  // 0 = not delivered
  uint8_t ol_cnt;
  uint8_t all_local;
  uint64_t entry_d;
};

struct NewOrderRow {
  uint32_t w_id;
  uint8_t d_id;
  uint32_t o_id;
};

struct OrderLineRow {
  uint32_t w_id;
  uint8_t d_id;
  uint32_t o_id;
  uint8_t ol_number;
  uint32_t i_id;
  uint32_t supply_w_id;
  uint8_t quantity;
  int64_t amount;
  uint64_t delivery_d;
  char dist_info[25];
};

struct ItemRow {
  uint32_t i_id;
  uint32_t im_id;
  int64_t price;
  char name[25];
  char data[32];
};

struct StockRow {
  uint32_t w_id;
  uint32_t i_id;
  int32_t quantity;
  int64_t ytd;
  uint32_t order_cnt;
  uint32_t remote_cnt;
  char data[32];
};

struct Schema {
  TableId warehouse, district, customer, history, order, new_order,
      order_line, item, stock;
  IndexId wh_pk, di_pk, cu_pk, cu_name, or_pk, or_cust, no_pk, ol_pk, it_pk,
      st_pk;

  Status Create(Database* db);

  static std::string WhKey(uint32_t w);
  static std::string DiKey(uint32_t w, uint8_t d);
  static std::string CuKey(uint32_t w, uint8_t d, uint32_t c);
  static std::string CuNameKey(uint32_t w, uint8_t d, const char* last);
  static std::string OrKey(uint32_t w, uint8_t d, uint32_t o);
  static std::string OrCustPrefix(uint32_t w, uint8_t d, uint32_t c);
  static std::string OrCustKey(uint32_t w, uint8_t d, uint32_t c, uint32_t o);
  static std::string NoKey(uint32_t w, uint8_t d, uint32_t o);
  static std::string OlKey(uint32_t w, uint8_t d, uint32_t o, uint8_t ol);
  static std::string OlPrefix(uint32_t w, uint8_t d, uint32_t o);
  static std::string ItKey(uint32_t i);
  static std::string StKey(uint32_t w, uint32_t i);
};

enum TxnType : uint32_t {
  kNewOrder = 0,
  kPayment = 1,
  kOrderStatus = 2,
  kDelivery = 3,
  kStockLevel = 4,
  kNumTxnTypes = 5,
};

class TpccWorkload : public Workload {
 public:
  struct Config {
    uint32_t warehouses = 4;
    uint8_t districts = 10;
    uint32_t customers_per_district = 300;
    uint32_t items = 1000;
    uint32_t initial_orders_per_district = 10;
    uint32_t executors_per_table = 1;
    bool trace_district_accesses = false;  // Fig. 10
  };

  TpccWorkload(Database* db, Config config) : db_(db), config_(config) {}

  std::string name() const override { return "TPC-C"; }
  Status Load() override;
  void SetupDora(dora::DoraEngine* engine) override;
  uint32_t NumTxnTypes() const override { return kNumTxnTypes; }
  const char* TxnName(uint32_t type) const override;
  uint32_t PickTxnType(Rng& rng) const override;
  Status RunBaseline(uint32_t type, Rng& rng) override;
  Status RunDora(dora::DoraEngine* engine, uint32_t type, Rng& rng) override;

  const Schema& schema() const { return schema_; }
  const Config& config() const { return config_; }

  // Invariants: W_YTD == sum(D_YTD); D_NEXT_O_ID - 1 == max(O_ID);
  // per-order line counts match O_OL_CNT.
  Status CheckConsistency();

 private:
  struct PaymentInput {
    uint32_t w_id;
    uint8_t d_id;
    uint32_t c_w_id;
    uint8_t c_d_id;
    bool by_name;
    char last[17];
    uint32_t c_id;
    int64_t amount;
  };
  struct NewOrderInput {
    uint32_t w_id;
    uint8_t d_id;
    uint32_t c_id;
    uint8_t ol_cnt;
    bool rollback;  // 1%: last item id invalid
    uint32_t items[15];
    uint32_t supply_w[15];
    uint8_t qty[15];
  };
  struct OrderStatusInput {
    uint32_t w_id;
    uint8_t d_id;
    bool by_name;
    char last[17];
    uint32_t c_id;
  };

  PaymentInput MakePaymentInput(Rng& rng) const;
  NewOrderInput MakeNewOrderInput(Rng& rng) const;
  OrderStatusInput MakeOrderStatusInput(Rng& rng) const;

  // Shared helpers (engine-agnostic; locking controlled by opts).
  Status ResolveCustomer(Transaction* txn, uint32_t w, uint8_t d,
                         bool by_name, const char* last, uint32_t c_id,
                         const AccessOptions& opts, Rid* rid,
                         CustomerRow* row);
  Status LastOrderOf(uint32_t w, uint8_t d, uint32_t c, uint32_t* o_id);

  Status BasePayment(Rng& rng);
  Status BaseNewOrder(Rng& rng);
  Status BaseOrderStatus(Rng& rng);
  Status BaseDelivery(Rng& rng);
  Status BaseStockLevel(Rng& rng);
  Status DoraPayment(dora::DoraEngine* e, Rng& rng);
  Status DoraNewOrder(dora::DoraEngine* e, Rng& rng);
  Status DoraOrderStatus(dora::DoraEngine* e, Rng& rng);
  Status DoraDelivery(dora::DoraEngine* e, Rng& rng);
  Status DoraStockLevel(dora::DoraEngine* e, Rng& rng);

  // Oldest undelivered order of a district (min o_id in new_order), via
  // the no_pk index. kNotFound if the district has no pending orders.
  Status OldestNewOrder(uint32_t w, uint8_t d, uint32_t* o_id);

  uint32_t MaxNameNum() const {
    return config_.customers_per_district < 1000
               ? config_.customers_per_district - 1
               : 999;
  }

  Database* const db_;
  const Config config_;
  Schema schema_;
};

}  // namespace tpcc
}  // namespace doradb

#endif  // DORADB_WORKLOADS_TPCC_TPCC_H_
