// Workload interface: a benchmark = schema + loader + transaction mix, with
// two execution paths per transaction — conventional (Baseline, thread-to-
// transaction) and DORA (thread-to-data flow graphs) — exactly the two
// systems the paper compares.

#ifndef DORADB_WORKLOADS_COMMON_WORKLOAD_H_
#define DORADB_WORKLOADS_COMMON_WORKLOAD_H_

#include <cstring>
#include <string>
#include <string_view>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "util/rng.h"

namespace doradb {

// POD record <-> byte-string helpers (records are standard-layout structs).
template <typename T>
std::string_view AsBytes(const T& rec) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::string_view(reinterpret_cast<const char*>(&rec), sizeof(T));
}

template <typename T>
T FromBytes(std::string_view bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  T out;
  std::memcpy(&out, bytes.data(), sizeof(T));
  return out;
}

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  // Populate tables and indexes (called once, outside any benchmark).
  virtual Status Load() = 0;

  // Register tables + routing rules with a DORA engine (before Start()).
  virtual void SetupDora(dora::DoraEngine* engine) = 0;

  virtual uint32_t NumTxnTypes() const = 0;
  virtual const char* TxnName(uint32_t type) const = 0;

  // Draw a transaction type according to the benchmark's standard mix.
  virtual uint32_t PickTxnType(Rng& rng) const = 0;

  // Execute one transaction conventionally (begin/ops/commit inside).
  // Status semantics: OK = committed; kAborted/kNotFound-driven aborts with
  // code kAborted = user abort (counted as executed, per the benchmarks);
  // kDeadlock / kTimeout = system abort.
  virtual Status RunBaseline(uint32_t type, Rng& rng) = 0;

  // Execute one transaction through DORA flow graphs (closed loop).
  virtual Status RunDora(dora::DoraEngine* engine, uint32_t type,
                         Rng& rng) = 0;
};

}  // namespace doradb

#endif  // DORADB_WORKLOADS_COMMON_WORKLOAD_H_
