// Benchmark driver: closed-loop clients submitting transactions against
// either engine, with the paper's measurement methodology — offered CPU
// load as the control variable (§5.2: clients relative to hardware
// contexts), committed-transaction throughput, latency histograms, and
// time-breakdown deltas over the measurement window.

#ifndef DORADB_WORKLOADS_COMMON_DRIVER_H_
#define DORADB_WORKLOADS_COMMON_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "workloads/common/breakdown.h"
#include "workloads/common/workload.h"
#include "util/histogram.h"

namespace doradb {

enum class EngineKind { kBaseline, kDora };

struct BenchConfig {
  EngineKind engine = EngineKind::kBaseline;
  uint32_t num_clients = 1;
  uint64_t duration_ms = 1000;
  uint64_t warmup_ms = 200;
  // Fixed transaction type, or -1 for the benchmark's standard mix.
  int txn_type = -1;
  uint64_t seed = 42;
  // DORA engine to drive (required for kDora).
  dora::DoraEngine* dora_engine = nullptr;
  // Baseline dispatch mode. 0 (default): each client runs its transaction
  // inline — the classic closed loop. >0: clients submit requests to one
  // shared BlockingQueue drained in batches (PopAll) by this many worker
  // threads — the paper's thread-to-transaction shape with an explicit
  // request queue — and completions return on per-client channels. Both
  // queue ends use bulk drains, so the baseline pays one lock round-trip
  // per batch, not per item.
  uint32_t baseline_workers = 0;
};

struct BenchResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t user_aborts = 0;    // benchmark-defined failures (count as done)
  uint64_t system_aborts = 0;  // deadlock / timeout
  double throughput_tps = 0;   // (committed + user_aborts) / seconds
  double offered_load_pct = 0; // clients / hardware contexts * 100
  std::shared_ptr<Histogram> latency = std::make_shared<Histogram>();
  PaperBreakdown breakdown;    // over the measurement window
  StatsSnapshot raw_delta;

  std::string Summary() const;
};

// Run a closed-loop benchmark. Clients are spawned fresh; statistics are
// reset after warmup so the breakdown covers only the measured window.
BenchResult RunBench(Workload* workload, const BenchConfig& config);

// Global record-access trace for the Fig. 10 experiment. Disabled (and
// free) unless explicitly enabled.
class AccessTrace {
 public:
  struct Event {
    uint32_t thread;    // dense per-thread id
    TableId table;
    uint64_t key;       // routing-field value (e.g. district number)
    uint64_t t_ns;      // time since Enable()
  };

  static void Enable();
  static void Disable();
  static bool enabled();
  static void Record(TableId table, uint64_t key);
  static std::vector<Event> Drain();
};

}  // namespace doradb

#endif  // DORADB_WORKLOADS_COMMON_DRIVER_H_
