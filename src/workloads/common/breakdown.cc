#include "workloads/common/breakdown.h"

#include <cstdio>

namespace doradb {

PaperBreakdown PaperBreakdown::From(const StatsSnapshot& s) {
  auto cy = [&](TimeClass tc) {
    return static_cast<double>(s.Cycles(tc));
  };
  PaperBreakdown out;
  out.work = cy(TimeClass::kWork) + cy(TimeClass::kLogWork);
  out.lock_mgr = cy(TimeClass::kLockAcquire) + cy(TimeClass::kLockRelease) +
                 cy(TimeClass::kLockOther);
  out.lock_mgr_cont = cy(TimeClass::kLockAcquireContention) +
                      cy(TimeClass::kLockReleaseContention) +
                      cy(TimeClass::kLockWait);
  out.dora = cy(TimeClass::kDoraLocalLock) + cy(TimeClass::kDoraQueue) +
             cy(TimeClass::kDoraRvp);
  out.other_cont = cy(TimeClass::kBufferContention) +
                   cy(TimeClass::kLogContention) +
                   cy(TimeClass::kOtherContention);

  out.lm_acquire = cy(TimeClass::kLockAcquire);
  out.lm_acquire_cont = cy(TimeClass::kLockAcquireContention) +
                        cy(TimeClass::kLockWait);
  out.lm_release = cy(TimeClass::kLockRelease);
  out.lm_release_cont = cy(TimeClass::kLockReleaseContention);
  out.lm_other = cy(TimeClass::kLockOther);
  return out;
}

std::string PaperBreakdown::Row() const {
  const double t = Total();
  if (t == 0) return "(no samples)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "work=%5.1f%% lockmgr=%5.1f%% lockmgr_cont=%5.1f%% "
                "dora=%5.1f%% other_cont=%5.1f%%",
                100 * work / t, 100 * lock_mgr / t, 100 * lock_mgr_cont / t,
                100 * dora / t, 100 * other_cont / t);
  return buf;
}

std::string PaperBreakdown::LockManagerRow() const {
  const double t = lm_acquire + lm_acquire_cont + lm_release +
                   lm_release_cont + lm_other;
  if (t == 0) return "(no lock manager time)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "acquire=%5.1f%% acquire_cont=%5.1f%% release=%5.1f%% "
                "release_cont=%5.1f%% other=%5.1f%%",
                100 * lm_acquire / t, 100 * lm_acquire_cont / t,
                100 * lm_release / t, 100 * lm_release_cont / t,
                100 * lm_other / t);
  return buf;
}

}  // namespace doradb
