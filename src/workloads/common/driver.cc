#include "workloads/common/driver.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/queue.h"
#include "util/thread_pool.h"

namespace doradb {

namespace {

using Clock = std::chrono::steady_clock;

struct ClientCounters {
  uint64_t committed = 0;
  uint64_t user_aborts = 0;
  uint64_t system_aborts = 0;
};

}  // namespace

std::string BenchResult::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "load=%6.1f%% tps=%10.0f committed=%lu user_aborts=%lu "
                "sys_aborts=%lu p50=%.0fus p95=%.0fus",
                offered_load_pct, throughput_tps,
                static_cast<unsigned long>(committed),
                static_cast<unsigned long>(user_aborts),
                static_cast<unsigned long>(system_aborts),
                latency->Percentile(50) / 1000.0,
                latency->Percentile(95) / 1000.0);
  return buf;
}

namespace {

// One queued-baseline request: the submitting client's RNG runs the
// transaction on the worker (the client is blocked on `done` meanwhile, so
// the RNG is never used concurrently).
struct BaselineRequest {
  uint32_t type = 0;
  Rng* rng = nullptr;
  BlockingQueue<Status>* done = nullptr;
};

}  // namespace

BenchResult RunBench(Workload* workload, const BenchConfig& config) {
  BenchResult result;
  result.offered_load_pct =
      100.0 * config.num_clients / HardwareContexts();

  std::atomic<bool> warmup_done{false};
  std::atomic<bool> stop{false};
  std::vector<ClientCounters> counters(config.num_clients);
  Histogram latency;

  StatsSnapshot measure_start;
  std::mutex snap_mu;  // protects measure_start assignment

  // Queued-baseline plumbing (BenchConfig::baseline_workers): one shared
  // request queue, bulk-drained by the worker pool, plus one completion
  // channel per client.
  const bool queued_baseline = config.engine == EngineKind::kBaseline &&
                               config.baseline_workers > 0;
  BlockingQueue<BaselineRequest> requests;
  std::vector<std::unique_ptr<BlockingQueue<Status>>> done_channels;
  ThreadGroup workers;
  if (queued_baseline) {
    for (uint32_t i = 0; i < config.num_clients; ++i) {
      done_channels.push_back(std::make_unique<BlockingQueue<Status>>());
    }
    workers.Spawn(config.baseline_workers, [&](size_t) {
      for (;;) {
        // PopAll: one lock round-trip per backlog, not per request.
        std::deque<BaselineRequest> batch = requests.PopAll();
        if (batch.empty()) return;  // closed and drained
        for (auto& r : batch) {
          r.done->Push(workload->RunBaseline(r.type, *r.rng));
        }
      }
    });
  }

  ThreadGroup clients;
  clients.Spawn(config.num_clients, [&](size_t id) {
    Rng rng(config.seed * 7919 + id * 104729 + 1);
    ClientCounters local;
    bool counted_from_warmup = false;
    while (!stop.load(std::memory_order_acquire)) {
      if (!counted_from_warmup &&
          warmup_done.load(std::memory_order_acquire)) {
        local = ClientCounters{};  // discard warmup counts
        counted_from_warmup = true;
      }
      const uint32_t type = config.txn_type >= 0
                                ? static_cast<uint32_t>(config.txn_type)
                                : workload->PickTxnType(rng);
      const auto t0 = Clock::now();
      Status s;
      if (config.engine == EngineKind::kBaseline) {
        if (queued_baseline) {
          requests.Push(BaselineRequest{type, &rng, done_channels[id].get()});
          // Exactly one completion is ever outstanding per client; the
          // bulk drain returns it.
          s = done_channels[id]->PopAll().front();
        } else {
          s = workload->RunBaseline(type, rng);
        }
      } else {
        s = workload->RunDora(config.dora_engine, type, rng);
      }
      const auto t1 = Clock::now();
      if (counted_from_warmup) {
        latency.Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      if (s.ok()) {
        ++local.committed;
      } else if (s.IsDeadlock() || s.IsTimeout()) {
        ++local.system_aborts;
      } else {
        ++local.user_aborts;
      }
    }
    counters[id] = local;
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(config.warmup_ms));
  {
    std::lock_guard<std::mutex> g(snap_mu);
    measure_start = ThreadStats::AggregateSnapshot();
  }
  const auto measure_t0 = Clock::now();
  warmup_done.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::milliseconds(config.duration_ms));
  stop.store(true, std::memory_order_release);
  clients.Join();
  if (queued_baseline) {
    requests.Close();  // workers drain the backlog, then exit
    workers.Join();
  }
  const auto measure_t1 = Clock::now();

  const StatsSnapshot measure_end = ThreadStats::AggregateSnapshot();
  result.raw_delta = measure_end - measure_start;
  result.breakdown = PaperBreakdown::From(result.raw_delta);
  result.seconds =
      std::chrono::duration<double>(measure_t1 - measure_t0).count();
  for (const auto& c : counters) {
    result.committed += c.committed;
    result.user_aborts += c.user_aborts;
    result.system_aborts += c.system_aborts;
  }
  result.throughput_tps =
      static_cast<double>(result.committed + result.user_aborts) /
      result.seconds;
  result.latency->Merge(latency);
  return result;
}

// ----------------------------------------------------------- AccessTrace

namespace {
struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex mu;
  std::vector<AccessTrace::Event> events;
  std::atomic<uint32_t> next_thread_id{0};
  Clock::time_point t0;

  static TraceState& Get() {
    static TraceState* s = new TraceState();
    return *s;
  }
};

uint32_t DenseThreadId() {
  thread_local uint32_t id =
      TraceState::Get().next_thread_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}
}  // namespace

void AccessTrace::Enable() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> g(s.mu);
  s.events.clear();
  s.t0 = Clock::now();
  s.enabled.store(true, std::memory_order_release);
}

void AccessTrace::Disable() {
  TraceState::Get().enabled.store(false, std::memory_order_release);
}

bool AccessTrace::enabled() {
  return TraceState::Get().enabled.load(std::memory_order_acquire);
}

void AccessTrace::Record(TableId table, uint64_t key) {
  TraceState& s = TraceState::Get();
  if (!s.enabled.load(std::memory_order_acquire)) return;
  const uint64_t t_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           s.t0)
          .count());
  std::lock_guard<std::mutex> g(s.mu);
  s.events.push_back(Event{DenseThreadId(), table, key, t_ns});
}

std::vector<AccessTrace::Event> AccessTrace::Drain() {
  TraceState& s = TraceState::Get();
  std::lock_guard<std::mutex> g(s.mu);
  std::vector<Event> out;
  out.swap(s.events);
  return out;
}

}  // namespace doradb
