// Mapping from raw TimeClass accounting to the paper's breakdown categories
// (Figs. 1-3) and the Fig. 5 lock census.

#ifndef DORADB_WORKLOADS_COMMON_BREAKDOWN_H_
#define DORADB_WORKLOADS_COMMON_BREAKDOWN_H_

#include <string>

#include "util/sync_stats.h"

namespace doradb {

// The five stacked categories of Figs. 1(b,c) and 2.
struct PaperBreakdown {
  double work = 0;           // useful work incl. log work
  double lock_mgr = 0;       // uncontended lock manager code
  double lock_mgr_cont = 0;  // latch spinning + blocked waits in the LM
  double dora = 0;           // DORA local locks + queues + RVPs
  double other_cont = 0;     // buffer / log latch contention

  // Fig. 3's finer-grain split of time inside the lock manager.
  double lm_acquire = 0;
  double lm_acquire_cont = 0;
  double lm_release = 0;
  double lm_release_cont = 0;
  double lm_other = 0;

  static PaperBreakdown From(const StatsSnapshot& s);

  // Fractions normalized over the five top categories.
  double Total() const {
    return work + lock_mgr + lock_mgr_cont + dora + other_cont;
  }
  std::string Row() const;           // "work=..% lockmgr=..% ..."
  std::string LockManagerRow() const;  // Fig. 3 style row
};

}  // namespace doradb

#endif  // DORADB_WORKLOADS_COMMON_BREAKDOWN_H_
