// Slotted heap page: variable-length records behind a slot directory.
//
// Layout (kPageSize bytes):
//   [PageHeader][record data grows ->        <- slot directory grows]
//
// Slots are stable: a record keeps its SlotId for life, so RIDs remain valid
// across updates. Deleting frees a slot for reuse; DORA's insert/delete RID
// locks (paper §4.2.1) exist precisely because a freed slot may be reused by
// a concurrent insert before the deleter commits.

#ifndef DORADB_STORAGE_SLOTTED_PAGE_H_
#define DORADB_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "storage/page_header.h"
#include "storage/types.h"
#include "util/status.h"

namespace doradb {

// A view over a kPageSize buffer; does not own memory.
class SlottedPage {
 public:
  struct Header {
    PageHeaderBase base;
    uint16_t slot_count;       // size of the slot directory
    uint16_t free_space_off;   // start of unallocated region
    uint16_t record_count;     // live records
    PageId next_page;          // heap-file chain
  };

  explicit SlottedPage(void* buf) : buf_(static_cast<uint8_t*>(buf)) {}

  // Format an empty page.
  void Init(PageId page_id, TableId table_id);

  PageId page_id() const { return header()->base.page_id; }
  TableId table_id() const { return header()->base.owner_id; }
  Lsn page_lsn() const { return header()->base.page_lsn; }
  void set_page_lsn(Lsn lsn) { header()->base.page_lsn = lsn; }
  PageId next_page() const { return header()->next_page; }
  void set_next_page(PageId p) { header()->next_page = p; }
  uint16_t slot_count() const { return header()->slot_count; }
  uint16_t record_count() const { return header()->record_count; }

  // Bytes available for a new record (including a possibly-new slot entry).
  size_t FreeSpace() const;

  // Append a record; reuses a free slot if any. kFull if it does not fit.
  Status Insert(std::string_view data, SlotId* slot);

  // Insert into a specific slot (rollback of delete / recovery redo).
  // Fails with kBusy if the slot is already occupied — this is exactly the
  // physical conflict of paper §4.2.1.
  Status InsertAt(SlotId slot, std::string_view data);

  // Remove the record, freeing its slot.
  Status Delete(SlotId slot);

  // Replace record contents (any size that fits; compacts if needed).
  Status Update(SlotId slot, std::string_view data);

  // Read access; the view is valid until the next mutation of this page.
  Status Get(SlotId slot, std::string_view* data) const;

  bool SlotOccupied(SlotId slot) const;

  // Reclaim holes left by deletes/updates.
  void Compact();

  static size_t MaxRecordSize() {
    return kPageSize - sizeof(Header) - sizeof(Slot);
  }

 private:
  struct Slot {
    uint16_t offset;  // 0 = free slot
    uint16_t length;
  };

  Header* header() { return reinterpret_cast<Header*>(buf_); }
  const Header* header() const { return reinterpret_cast<const Header*>(buf_); }

  Slot* slot_array() {
    return reinterpret_cast<Slot*>(buf_ + kPageSize) - 1;  // grows downward
  }
  const Slot* slot_array() const {
    return reinterpret_cast<const Slot*>(buf_ + kPageSize) - 1;
  }
  // Slot i lives at slot_array()[-i].
  Slot& slot(SlotId i) { return slot_array()[-static_cast<int>(i)]; }
  const Slot& slot(SlotId i) const {
    return slot_array()[-static_cast<int>(i)];
  }

  size_t ContiguousFree() const;

  uint8_t* buf_;
};

}  // namespace doradb

#endif  // DORADB_STORAGE_SLOTTED_PAGE_H_
