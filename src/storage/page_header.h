// Common prefix of every on-disk page.
//
// Both slotted heap pages and B+Tree node pages begin with this header so
// that generic code (buffer-pool write-back honoring the WAL rule, recovery
// analysis) can identify a page and read its LSN without knowing its type.

#ifndef DORADB_STORAGE_PAGE_HEADER_H_
#define DORADB_STORAGE_PAGE_HEADER_H_

#include <cstdint>

#include "storage/types.h"

namespace doradb {

enum class PageType : uint16_t {
  kFree = 0,
  kHeap = 1,
  kBTreeLeaf = 2,
  kBTreeInternal = 3,
};

struct PageHeaderBase {
  PageId page_id;
  uint16_t owner_id;   // TableId for heap pages, IndexId for index pages
  PageType page_type;
  Lsn page_lsn;        // LSN of the last logged update (ARIES redo test)
};

static_assert(sizeof(PageHeaderBase) == 16);

}  // namespace doradb

#endif  // DORADB_STORAGE_PAGE_HEADER_H_
