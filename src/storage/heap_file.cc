#include "storage/heap_file.h"

namespace doradb {

HeapFile::HeapFile(BufferPool* pool, TableId table_id)
    : pool_(pool), table_id_(table_id) {}

size_t HeapFile::page_count() const {
  TatasGuard g(meta_lock_, TimeClass::kBufferContention);
  return pages_.size();
}

void HeapFile::AdoptPages(std::vector<PageId> pages, uint64_t record_count) {
  TatasGuard g(meta_lock_, TimeClass::kBufferContention);
  pages_ = std::move(pages);
  reuse_hints_.clear();
  fill_page_ = pages_.empty() ? kInvalidPageId : pages_.back();
  record_count_.store(record_count, std::memory_order_relaxed);
}

void HeapFile::EnsureRegistered(PageId pid) {
  TatasGuard g(meta_lock_, TimeClass::kBufferContention);
  for (PageId p : pages_) {
    if (p == pid) return;
  }
  pages_.push_back(pid);
}

Status HeapFile::PageForInsert(size_t size, PageGuard* guard,
                               PageId* page_id) {
  // Candidate order: reuse hints (pages with freed space), then the current
  // fill page, then a fresh allocation.
  std::vector<PageId> candidates;
  {
    TatasGuard g(meta_lock_, TimeClass::kBufferContention);
    while (!reuse_hints_.empty()) {
      candidates.push_back(reuse_hints_.back());
      reuse_hints_.pop_back();
      if (candidates.size() >= 2) break;
    }
    if (fill_page_ != kInvalidPageId) candidates.push_back(fill_page_);
  }
  for (PageId pid : candidates) {
    PageGuard g;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(pid, &g));
    g.LatchExclusive();
    if (g.AsSlotted().FreeSpace() >= size) {
      *guard = std::move(g);
      *page_id = pid;
      return Status::OK();
    }
  }
  // Allocate a new page and chain it.
  PageGuard g;
  PageId pid;
  DORADB_RETURN_NOT_OK(pool_->NewPage(&g, &pid));
  g.LatchExclusive();
  g.AsSlotted().Init(pid, table_id_);
  g.MarkDirty();
  {
    TatasGuard meta(meta_lock_, TimeClass::kBufferContention);
    pages_.push_back(pid);
    fill_page_ = pid;
  }
  *guard = std::move(g);
  *page_id = pid;
  return Status::OK();
}

Status HeapFile::Insert(std::string_view record, Rid* rid, Lsn lsn) {
  if (record.size() > SlottedPage::MaxRecordSize()) {
    return Status::InvalidArgument("record exceeds page capacity");
  }
  for (int attempt = 0; attempt < 4; ++attempt) {
    PageGuard guard;
    PageId pid;
    DORADB_RETURN_NOT_OK(PageForInsert(record.size(), &guard, &pid));
    SlottedPage page = guard.AsSlotted();
    SlotId slot;
    const Status s = page.Insert(record, &slot);
    if (s.ok()) {
      if (lsn != kInvalidLsn && lsn > page.page_lsn()) page.set_page_lsn(lsn);
      guard.MarkDirty(lsn);
      rid->page_id = pid;
      rid->slot = slot;
      record_count_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (!s.IsFull()) return s;
    // Lost the race for this page's space; retry with a fresh candidate.
  }
  return Status::Full("insert retries exhausted");
}

Status HeapFile::InsertAt(const Rid& rid, std::string_view record, Lsn lsn) {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  guard.LatchExclusive();
  SlottedPage page = guard.AsSlotted();
  DORADB_RETURN_NOT_OK(page.InsertAt(rid.slot, record));
  if (lsn != kInvalidLsn && lsn > page.page_lsn()) page.set_page_lsn(lsn);
  guard.MarkDirty(lsn);
  record_count_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status HeapFile::Delete(const Rid& rid, std::string* old_record, Lsn lsn) {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  guard.LatchExclusive();
  SlottedPage page = guard.AsSlotted();
  if (old_record != nullptr) {
    std::string_view old;
    DORADB_RETURN_NOT_OK(page.Get(rid.slot, &old));
    old_record->assign(old.data(), old.size());
  }
  DORADB_RETURN_NOT_OK(page.Delete(rid.slot));
  if (lsn != kInvalidLsn && lsn > page.page_lsn()) page.set_page_lsn(lsn);
  guard.MarkDirty(lsn);
  record_count_.fetch_sub(1, std::memory_order_relaxed);
  {
    TatasGuard meta(meta_lock_, TimeClass::kBufferContention);
    if (reuse_hints_.size() < 16) reuse_hints_.push_back(rid.page_id);
  }
  return Status::OK();
}

Status HeapFile::Update(const Rid& rid, std::string_view record,
                        std::string* old_record, Lsn lsn) {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  guard.LatchExclusive();
  SlottedPage page = guard.AsSlotted();
  if (old_record != nullptr) {
    std::string_view old;
    DORADB_RETURN_NOT_OK(page.Get(rid.slot, &old));
    old_record->assign(old.data(), old.size());
  }
  DORADB_RETURN_NOT_OK(page.Update(rid.slot, record));
  if (lsn != kInvalidLsn && lsn > page.page_lsn()) page.set_page_lsn(lsn);
  guard.MarkDirty(lsn);
  return Status::OK();
}

Status HeapFile::StampPageLsn(PageId pid, Lsn lsn) {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
  guard.LatchExclusive();
  SlottedPage page = guard.AsSlotted();
  if (lsn > page.page_lsn()) page.set_page_lsn(lsn);
  guard.MarkDirty(lsn);
  return Status::OK();
}

Status HeapFile::Get(const Rid& rid, std::string* record) const {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(rid.page_id, &guard));
  guard.LatchShared();
  SlottedPage page = guard.AsSlotted();
  std::string_view data;
  DORADB_RETURN_NOT_OK(page.Get(rid.slot, &data));
  record->assign(data.data(), data.size());
  return Status::OK();
}

Status HeapFile::Scan(
    const std::function<bool(const Rid&, std::string_view)>& cb) const {
  std::vector<PageId> snapshot;
  {
    TatasGuard g(meta_lock_, TimeClass::kBufferContention);
    snapshot = pages_;
  }
  for (PageId pid : snapshot) {
    PageGuard guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    guard.LatchShared();
    SlottedPage page = guard.AsSlotted();
    for (SlotId s = 0; s < page.slot_count(); ++s) {
      std::string_view data;
      if (!page.Get(s, &data).ok()) continue;
      if (!cb(Rid{pid, s}, data)) return Status::OK();
    }
  }
  return Status::OK();
}

}  // namespace doradb
