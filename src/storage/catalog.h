// Catalog: registry of tables (heap files) and indexes (B+Trees).
//
// Mirrors the paper's prototype arrangement (§4.3): "the database metadata
// and back-end processing are schema-agnostic and general purpose, but the
// [transaction] code is schema-aware" — workloads serialize their own record
// structs; the catalog only names tables, owns their storage objects, and
// records which indexes belong to which table.
//
// Self-describing metadata: besides the storage objects, each entry carries
// the declarative facts a fresh process needs to reopen a data directory
// cold — an index's key schema (how leaf keys and the DORA aux payload are
// derived from record bytes, see IndexKeySpec) and a table's routing
// configuration (key space + executor count, recorded by
// DoraEngine::RegisterTable). With a CatalogStore attached (durable mode),
// every DDL writes the whole catalog through to <data_dir>/catalog.db
// before returning, so `Database(Options{data_dir})` + `Recover()` is
// self-contained: no application-side schema re-creation.

#ifndef DORADB_STORAGE_CATALOG_H_
#define DORADB_STORAGE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/types.h"
#include "util/status.h"

namespace doradb {

class CatalogStore;
struct CatalogImage;

// Bound on a table's persisted DORA executor count, enforced symmetrically
// at registration (SetDoraConfig) and at catalog load (ValidateImage): the
// engine must never persist a value it would refuse to load, and a
// CRC-valid hostile file must not size a thread-spawning loop.
constexpr uint32_t kMaxDoraExecutors = 4096;

// Bound on a persisted routing rule's dataset count, enforced with the same
// symmetry: live repartitioning splits ranges one at a time, so any real
// rule is far below this, but a CRC-valid hostile file must not size a
// multi-gigabyte boundary vector.
constexpr uint32_t kMaxRoutingDatasets = 65536;

// One field of an index key, extracted from the record bytes at a fixed
// offset. kUint fields are read little-endian (the in-record layout of the
// workloads' POD row structs) and appended big-endian, byte-for-byte what
// KeyBuilder::Add8/16/32/64 produces; kBytes fields are copied verbatim
// (KeyBuilder::AddString on an in-record char array).
struct IndexKeyField {
  enum class Kind : uint8_t { kUint = 0, kBytes = 1 };
  uint16_t offset = 0;
  uint8_t width = 8;  // kUint: 1/2/4/8; kBytes: any
  Kind kind = Kind::kUint;
};

// Declarative key schema: enough for the engine to rebuild an index from
// its heap at restart without a workload callback. Empty fields = opaque
// keys (the index is left to Recover()'s rebuild_indexes callback).
struct IndexKeySpec {
  static constexpr uint16_t kNoAux = 0xFFFF;

  std::vector<IndexKeyField> fields;
  // Offset/width of a little-endian unsigned field in the record that
  // becomes the leaf entry's aux payload, zero-extended to 64 bits (DORA
  // routing fields, §4.2.2); aux_offset == kNoAux = aux 0.
  uint16_t aux_offset = kNoAux;
  uint8_t aux_width = 8;

  bool CanRebuild() const { return !fields.empty(); }

  // Structural validity, shared by DDL-time acceptance (CreateIndex) and
  // load-time validation (catalog_store's ValidateImage): the engine must
  // never persist a spec it would refuse to load — that would brick the
  // data directory at its next reopen.
  Status Validate() const;

  // Build (key, aux) from one record. Fails if the record is too short for
  // any field — a spec/record mismatch is corruption, not a missing value.
  Status Extract(std::string_view record, std::string* key,
                 uint64_t* aux) const;

  // The common single-u64-key shape (TPC-B's primary keys): key =
  // Add64(LE u64 at key_offset), aux from a u64 at aux_offset.
  static IndexKeySpec U64At(uint16_t key_offset, uint16_t aux = kNoAux) {
    IndexKeySpec spec;
    spec.fields.push_back(IndexKeyField{key_offset, 8,
                                        IndexKeyField::Kind::kUint});
    spec.aux_offset = aux;
    return spec;
  }

  // Builder helpers for composite keys (TM1 / TPC-C shapes).
  IndexKeySpec& Uint(uint16_t offset, uint8_t width) {
    fields.push_back(IndexKeyField{offset, width, IndexKeyField::Kind::kUint});
    return *this;
  }
  IndexKeySpec& Bytes(uint16_t offset, uint8_t width) {
    fields.push_back(
        IndexKeyField{offset, width, IndexKeyField::Kind::kBytes});
    return *this;
  }
  IndexKeySpec& Aux(uint16_t offset, uint8_t width = 8) {
    aux_offset = offset;
    aux_width = width;
    return *this;
  }
};

struct IndexInfo {
  IndexId id;
  std::string name;
  TableId table_id;
  bool unique;
  // True for indexes whose key does not embed all routing fields; their
  // leaf entries carry routing fields in `aux` and probes to them become
  // DORA "secondary actions" (§4.2.2).
  bool secondary;
  // Persisted key schema; empty = not generically rebuildable.
  IndexKeySpec key_spec;
  std::unique_ptr<BTree> tree;
};

struct TableInfo {
  TableId id;
  std::string name;
  // DORA routing configuration (paper §4.1.1), recorded by
  // DoraEngine::RegisterTable and persisted so a reopened process can
  // rebuild the same executor wiring (RegisterFromCatalog). executors == 0
  // means the table was never registered with a DORA engine.
  uint64_t key_space = 0;
  uint32_t dora_executors = 0;
  // Persisted routing-rule override (live repartitioning, §A.2.1): dataset
  // boundaries, executor per dataset, and the rule version, written through
  // by DoraEngine::MigrateRoutingRule so a range split survives restart.
  // Empty routing_executors = no override; the engine installs the uniform
  // default. Cleared whenever key_space/dora_executors change — an old
  // rule is meaningless against new wiring.
  std::vector<uint64_t> routing_boundaries;
  std::vector<uint32_t> routing_executors;
  uint64_t routing_version = 0;
  std::unique_ptr<HeapFile> heap;
  std::vector<IndexId> indexes;
};

class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  // Create a table; names must be unique. With a store attached, the
  // catalog file is durable before this returns (or the DDL is rolled
  // back and the write error returned).
  Status CreateTable(const std::string& name, TableId* id);

  // Create an index on a table. The overload without a spec registers
  // opaque keys (no generic restart rebuild).
  Status CreateIndex(TableId table, const std::string& name, bool unique,
                     bool secondary, IndexId* id);
  Status CreateIndex(TableId table, const std::string& name, bool unique,
                     bool secondary, const IndexKeySpec& spec, IndexId* id);

  // Record a table's DORA routing configuration (write-through when it
  // changes). Called by DoraEngine::RegisterTable. A genuine config change
  // clears any persisted routing-rule override.
  Status SetDoraConfig(TableId table, uint64_t key_space, uint32_t executors);

  // Record a table's live routing rule (write-through when it changes;
  // rolled back in memory if the write fails). Called by
  // DoraEngine::MigrateRoutingRule after the new rule is published, and by
  // catalog replay. Empty vectors clear the override.
  Status SetDoraRouting(TableId table, std::vector<uint64_t> boundaries,
                        std::vector<uint32_t> executors, uint64_t version);

  TableInfo* GetTable(TableId id);
  TableInfo* GetTable(const std::string& name);
  IndexInfo* GetIndex(IndexId id);
  IndexInfo* GetIndex(const std::string& name);

  HeapFile* Heap(TableId id) {
    TableInfo* t = GetTable(id);
    return t == nullptr ? nullptr : t->heap.get();
  }
  BTree* Index(IndexId id) {
    IndexInfo* i = GetIndex(id);
    return i == nullptr ? nullptr : i->tree.get();
  }

  size_t num_tables() const { return tables_.size(); }
  size_t num_indexes() const { return indexes_.size(); }

  // Stable iteration for recovery / integrity checks. Vector position ==
  // id == creation order, which is what makes catalog replay reproduce
  // identical ids in a later lifetime.
  const std::vector<std::unique_ptr<TableInfo>>& tables() const {
    return tables_;
  }
  const std::vector<std::unique_ptr<IndexInfo>>& indexes() const {
    return indexes_;
  }

  // ---- durability (data_dir mode) ----

  // Attach the durable store; subsequent DDL writes through. Set AFTER
  // replaying a recovered image — the replay must not re-save, so the
  // current state is marked clean (the file it just came from is current).
  void SetStore(CatalogStore* store) {
    store_ = store;
    saved_epoch_ = ddl_epoch_;
  }

  // Refuse all further DDL with `why` (set by a Database whose catalog.db
  // failed to load): new schema on top of an unreadable catalog could
  // never be persisted or recovered, so it must not be creatable either —
  // not only Recover() but every mutation path surfaces the named error.
  void Poison(Status why) { poison_ = std::move(why); }

  // Plain-data snapshot of the metadata (no storage objects).
  void Snapshot(CatalogImage* out) const;

  // Save a snapshot if there is un-persisted DDL (checkpoint hook; no-op
  // without a store or when the file is current).
  Status Persist();

 private:
  void BuildImageLocked(CatalogImage* out) const;
  // Write the catalog through to the store (mu_ held). On failure the
  // caller rolls its DDL back and surfaces the error.
  Status WriteThroughLocked();

  BufferPool* const pool_;
  mutable std::mutex mu_;  // DDL only; the hot path never takes it
  std::vector<std::unique_ptr<TableInfo>> tables_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;

  CatalogStore* store_ = nullptr;
  Status poison_;             // non-OK: every DDL fails with this
  uint64_t ddl_epoch_ = 0;    // bumped by every metadata mutation
  uint64_t saved_epoch_ = 0;  // epoch the store last persisted
};

}  // namespace doradb

#endif  // DORADB_STORAGE_CATALOG_H_
