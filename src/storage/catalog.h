// Catalog: registry of tables (heap files) and indexes (B+Trees).
//
// Mirrors the paper's prototype arrangement (§4.3): "the database metadata
// and back-end processing are schema-agnostic and general purpose, but the
// [transaction] code is schema-aware" — workloads serialize their own record
// structs; the catalog only names tables, owns their storage objects, and
// records which indexes belong to which table.

#ifndef DORADB_STORAGE_CATALOG_H_
#define DORADB_STORAGE_CATALOG_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/btree.h"
#include "storage/heap_file.h"
#include "storage/types.h"
#include "util/status.h"

namespace doradb {

struct IndexInfo {
  IndexId id;
  std::string name;
  TableId table_id;
  bool unique;
  // True for indexes whose key does not embed all routing fields; their
  // leaf entries carry routing fields in `aux` and probes to them become
  // DORA "secondary actions" (§4.2.2).
  bool secondary;
  std::unique_ptr<BTree> tree;
};

struct TableInfo {
  TableId id;
  std::string name;
  std::unique_ptr<HeapFile> heap;
  std::vector<IndexId> indexes;
};

class Catalog {
 public:
  explicit Catalog(BufferPool* pool) : pool_(pool) {}

  // Create a table; names must be unique.
  Status CreateTable(const std::string& name, TableId* id);

  // Create an index on a table.
  Status CreateIndex(TableId table, const std::string& name, bool unique,
                     bool secondary, IndexId* id);

  TableInfo* GetTable(TableId id);
  TableInfo* GetTable(const std::string& name);
  IndexInfo* GetIndex(IndexId id);
  IndexInfo* GetIndex(const std::string& name);

  HeapFile* Heap(TableId id) {
    TableInfo* t = GetTable(id);
    return t == nullptr ? nullptr : t->heap.get();
  }
  BTree* Index(IndexId id) {
    IndexInfo* i = GetIndex(id);
    return i == nullptr ? nullptr : i->tree.get();
  }

  size_t num_tables() const { return tables_.size(); }
  size_t num_indexes() const { return indexes_.size(); }

  // Stable iteration for recovery / integrity checks.
  const std::vector<std::unique_ptr<TableInfo>>& tables() const {
    return tables_;
  }
  const std::vector<std::unique_ptr<IndexInfo>>& indexes() const {
    return indexes_;
  }

 private:
  BufferPool* const pool_;
  mutable std::mutex mu_;  // DDL only; the hot path never takes it
  std::vector<std::unique_ptr<TableInfo>> tables_;
  std::vector<std::unique_ptr<IndexInfo>> indexes_;
};

}  // namespace doradb

#endif  // DORADB_STORAGE_CATALOG_H_
