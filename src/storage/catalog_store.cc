#include "storage/catalog_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/health.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/fault_injector.h"

namespace doradb {

namespace {

// Same transient-error policy as the WAL segment layer and the page store.
constexpr int kIoRetries = 3;
constexpr uint64_t kRetryBackoffUs = 200;

void Put16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}
void Put32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (i * 8)));
}
void Put64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (i * 8)));
}
void PutString(std::vector<uint8_t>* out, const std::string& s) {
  Put16(out, static_cast<uint16_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

// Bounds-checked little-endian reads; false = truncated payload.
bool Get8(const std::vector<uint8_t>& b, size_t* off, uint8_t* v) {
  if (*off + 1 > b.size()) return false;
  *v = b[(*off)++];
  return true;
}
bool Get16(const std::vector<uint8_t>& b, size_t* off, uint16_t* v) {
  if (*off + 2 > b.size()) return false;
  *v = static_cast<uint16_t>(b[*off] | (b[*off + 1] << 8));
  *off += 2;
  return true;
}
bool Get32(const std::vector<uint8_t>& b, size_t* off, uint32_t* v) {
  if (*off + 4 > b.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(b[*off + i]) << (i * 8);
  *off += 4;
  return true;
}
bool Get64(const std::vector<uint8_t>& b, size_t* off, uint64_t* v) {
  if (*off + 8 > b.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(b[*off + i]) << (i * 8);
  *off += 8;
  return true;
}
bool GetString(const std::vector<uint8_t>& b, size_t* off, std::string* s) {
  uint16_t n;
  if (!Get16(b, off, &n) || *off + n > b.size()) return false;
  s->assign(reinterpret_cast<const char*>(b.data() + *off), n);
  *off += n;
  return true;
}

Status Truncated(const char* what) {
  return Status::Corruption(std::string("catalog: truncated ") + what);
}

}  // namespace

CatalogStore::CatalogStore(const std::string& data_dir)
    : dir_(data_dir), path_(data_dir + "/catalog.db") {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
}

bool CatalogStore::Exists() const {
  std::error_code ec;
  return std::filesystem::exists(path_, ec);
}

void CatalogStore::Serialize(const CatalogImage& img,
                             std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  Put32(&payload, static_cast<uint32_t>(img.tables.size()));
  for (const auto& t : img.tables) {
    Put16(&payload, t.id);
    PutString(&payload, t.name);
    Put64(&payload, t.key_space);
    Put32(&payload, t.dora_executors);
    Put64(&payload, t.routing_version);
    Put32(&payload, static_cast<uint32_t>(t.routing_executors.size()));
    for (const uint64_t b : t.routing_boundaries) Put64(&payload, b);
    for (const uint32_t e : t.routing_executors) Put32(&payload, e);
  }
  Put32(&payload, static_cast<uint32_t>(img.indexes.size()));
  for (const auto& i : img.indexes) {
    Put16(&payload, i.id);
    PutString(&payload, i.name);
    Put16(&payload, i.table_id);
    payload.push_back(i.unique ? 1 : 0);
    payload.push_back(i.secondary ? 1 : 0);
    Put16(&payload, i.key_spec.aux_offset);
    payload.push_back(i.key_spec.aux_width);
    Put16(&payload, static_cast<uint16_t>(i.key_spec.fields.size()));
    for (const IndexKeyField& f : i.key_spec.fields) {
      Put16(&payload, f.offset);
      payload.push_back(f.width);
      payload.push_back(static_cast<uint8_t>(f.kind));
    }
  }

  out->clear();
  Put64(out, kMagic);
  Put32(out, kFormatVersion);
  Put32(out, 0);
  Put64(out, payload.size());
  Put32(out, Crc32(payload.data(), payload.size()));
  Put32(out, 0);
  out->insert(out->end(), payload.begin(), payload.end());
}

Status CatalogStore::Deserialize(const std::vector<uint8_t>& bytes,
                                 CatalogImage* out) {
  size_t off = 0;
  uint64_t magic, payload_len;
  uint32_t version, pad, crc;
  if (bytes.size() < kHeaderSize) return Truncated("header");
  (void)Get64(bytes, &off, &magic);
  (void)Get32(bytes, &off, &version);
  (void)Get32(bytes, &off, &pad);
  (void)Get64(bytes, &off, &payload_len);
  (void)Get32(bytes, &off, &crc);
  (void)Get32(bytes, &off, &pad);
  if (magic != kMagic) return Status::Corruption("catalog: bad magic");
  if (version < kMinFormatVersion || version > kFormatVersion) {
    return Status::Corruption(
        "catalog: format version mismatch (file v" + std::to_string(version) +
        ", engine v" + std::to_string(kFormatVersion) + ")");
  }
  if (bytes.size() - kHeaderSize < payload_len) return Truncated("payload");
  std::vector<uint8_t> payload(bytes.begin() + kHeaderSize,
                               bytes.begin() + kHeaderSize + payload_len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::Corruption("catalog: checksum mismatch");
  }

  out->tables.clear();
  out->indexes.clear();
  off = 0;
  uint32_t n;
  if (!Get32(payload, &off, &n)) return Truncated("table count");
  for (uint32_t i = 0; i < n; ++i) {
    CatalogImage::Table t;
    if (!Get16(payload, &off, &t.id) || !GetString(payload, &off, &t.name) ||
        !Get64(payload, &off, &t.key_space) ||
        !Get32(payload, &off, &t.dora_executors)) {
      return Truncated("table entry");
    }
    if (version >= 2) {
      // v1 files predate live repartitioning: no routing section, override
      // stays empty and the engine installs the uniform default.
      uint32_t datasets;
      if (!Get64(payload, &off, &t.routing_version) ||
          !Get32(payload, &off, &datasets)) {
        return Truncated("routing entry");
      }
      if (datasets > kMaxRoutingDatasets) {
        return Status::Corruption("catalog: implausible routing dataset "
                                  "count " + std::to_string(datasets));
      }
      for (uint32_t d = 0; d + 1 < datasets; ++d) {
        uint64_t b;
        if (!Get64(payload, &off, &b)) return Truncated("routing boundary");
        t.routing_boundaries.push_back(b);
      }
      for (uint32_t d = 0; d < datasets; ++d) {
        uint32_t e;
        if (!Get32(payload, &off, &e)) return Truncated("routing executor");
        t.routing_executors.push_back(e);
      }
    }
    out->tables.push_back(std::move(t));
  }
  if (!Get32(payload, &off, &n)) return Truncated("index count");
  for (uint32_t i = 0; i < n; ++i) {
    CatalogImage::Index x;
    uint8_t unique, secondary;
    uint16_t field_count;
    if (!Get16(payload, &off, &x.id) || !GetString(payload, &off, &x.name) ||
        !Get16(payload, &off, &x.table_id) ||
        !Get8(payload, &off, &unique) || !Get8(payload, &off, &secondary) ||
        !Get16(payload, &off, &x.key_spec.aux_offset) ||
        !Get8(payload, &off, &x.key_spec.aux_width) ||
        !Get16(payload, &off, &field_count)) {
      return Truncated("index entry");
    }
    x.unique = unique != 0;
    x.secondary = secondary != 0;
    for (uint16_t f = 0; f < field_count; ++f) {
      IndexKeyField field;
      uint8_t kind;
      if (!Get16(payload, &off, &field.offset) ||
          !Get8(payload, &off, &field.width) || !Get8(payload, &off, &kind)) {
        return Truncated("key field");
      }
      field.kind = static_cast<IndexKeyField::Kind>(kind);
      x.key_spec.fields.push_back(field);
    }
    out->indexes.push_back(std::move(x));
  }
  return Status::OK();
}

Status CatalogStore::Save(const CatalogImage& img) {
  std::vector<uint8_t> bytes;
  Serialize(img, &bytes);

  const std::string tmp = path_ + ".tmp";
  const int fd =
      FaultInjector::Default().Open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    obs::EngineHealth::Default().CountIOError();
    return Status::IOError("catalog: open failed: " + tmp + ": " +
                           std::strerror(errno));
  }
  size_t put = 0;
  int attempts = 0;
  while (put < bytes.size()) {
    const ssize_t w = FaultInjector::Default().Pwrite(
        fd, bytes.data() + put, bytes.size() - put, static_cast<off_t>(put),
        tmp.c_str());
    if (w > 0) {
      put += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (attempts >= kIoRetries) {
      obs::EngineHealth::Default().CountIOError();
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::IOError("catalog: write failed: " + tmp);
    }
    obs::EngineHealth::Default().CountRetry();
    NapMicros(kRetryBackoffUs << attempts);
    ++attempts;
  }
  // The tmp file is fresh, so this fsync vouches for nothing yet — a
  // failure is an ordinary rollback-able error, not a poison event.
  if (FaultInjector::Default().Fsync(fd, tmp.c_str()) != 0) {
    obs::EngineHealth::Default().CountIOError();
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::IOError("catalog: fsync failed: " + tmp);
  }
  ::close(fd);
  // Acquire the directory fd BEFORE the rename: an open failure (EMFILE,
  // ...) is then an ordinary, rollback-able error — nothing has replaced
  // catalog.db yet.
  const int dfd = ::open(dir_.c_str(), O_RDONLY);
  if (dfd < 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("catalog: directory open failed: " + dir_ + ": " +
                           std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    ::close(dfd);
    ::unlink(tmp.c_str());
    return Status::IOError("catalog: rename failed: " + path_);
  }
  // Persist the directory entry so the rename survives power loss. The
  // rename has already replaced catalog.db, so a failure HERE is past the
  // point of clean rollback: the caller will undo its DDL in memory while
  // the new schema is (probably) durable on disk. Degrade the engine —
  // the divergence cannot compound once DDL and commits stop — and return
  // the error; the next lifetime reloads whichever file the medium kept.
  if (FaultInjector::Default().Fsync(dfd, dir_.c_str()) != 0) {
    ::close(dfd);
    const Status s = Status::IOError(
        "catalog: directory fsync failed after rename: " + dir_ + ": " +
        std::strerror(errno));
    obs::EngineHealth::Default().CountIOError();
    obs::EngineHealth::Default().Degrade(s.ToString());
    std::fprintf(stderr, "catalog: degraded: %s\n", s.ToString().c_str());
    return s;
  }
  ::close(dfd);
  return Status::OK();
}

Status CatalogStore::Load(CatalogImage* out) const {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IOError("catalog: open failed: " + path_ + ": " +
                           std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[4096];
  for (;;) {
    const ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r < 0) {
      ::close(fd);
      return Status::IOError("catalog: read failed: " + path_);
    }
    if (r == 0) break;
    bytes.insert(bytes.end(), buf, buf + r);
  }
  ::close(fd);
  const Status s = Deserialize(bytes, out);
  if (!s.ok()) {
    return Status::Corruption(s.ToString() + " (" + path_ + ")");
  }
  return s;
}

namespace {

// Structural validation of a decoded image BEFORE any DDL is issued, so a
// replay either applies completely or touches nothing — the caller's
// "a bad catalog leaves the catalog empty" invariant. Ids must be
// contiguous in entry order (ids are positional), names unique, and every
// index's table in range; with those facts established, the create calls
// below cannot fail against an empty catalog.
Status ValidateImage(const CatalogImage& img) {
  for (size_t i = 0; i < img.tables.size(); ++i) {
    const auto& t = img.tables[i];
    if (t.id != static_cast<TableId>(i)) {
      return Status::Corruption("catalog: non-contiguous table ids");
    }
    for (size_t j = 0; j < i; ++j) {
      if (img.tables[j].name == t.name) {
        return Status::Corruption("catalog: duplicate table name '" +
                                  t.name + "'");
      }
    }
  }
  // Bound the config values a replay would act on: a CRC-valid file from
  // a buggy or hostile writer must still get a named rejection, not drive
  // reopen into resource exhaustion (executors sizes a thread-spawning
  // loop) or silent misdecoding (an unknown field kind).
  for (const auto& t : img.tables) {
    if (t.dora_executors > kMaxDoraExecutors) {
      return Status::Corruption("catalog: implausible executor count " +
                                std::to_string(t.dora_executors) +
                                " for table '" + t.name + "'");
    }
    // Routing override: the same shape rules SetDoraRouting enforces at
    // write time, so the store never persists what the loader rejects.
    if (t.routing_executors.empty()) {
      if (!t.routing_boundaries.empty()) {
        return Status::Corruption("catalog: routing boundaries without "
                                  "executors for table '" + t.name + "'");
      }
      continue;
    }
    if (t.dora_executors == 0 ||
        t.routing_executors.size() != t.routing_boundaries.size() + 1 ||
        t.routing_executors.size() > kMaxRoutingDatasets) {
      return Status::Corruption("catalog: malformed routing rule for table '" +
                                t.name + "'");
    }
    for (size_t b = 0; b < t.routing_boundaries.size(); ++b) {
      if (t.routing_boundaries[b] == 0 ||
          (b > 0 && t.routing_boundaries[b] <= t.routing_boundaries[b - 1]) ||
          (t.key_space > 0 && t.routing_boundaries[b] >= t.key_space)) {
        return Status::Corruption(
            "catalog: routing boundaries not strictly increasing inside the "
            "key space for table '" + t.name + "'");
      }
    }
    for (const uint32_t e : t.routing_executors) {
      if (e >= t.dora_executors) {
        return Status::Corruption(
            "catalog: routing executor out of range for table '" + t.name +
            "'");
      }
    }
  }
  for (size_t i = 0; i < img.indexes.size(); ++i) {
    const auto& x = img.indexes[i];
    if (x.id != static_cast<IndexId>(i)) {
      return Status::Corruption("catalog: non-contiguous index ids");
    }
    if (x.table_id >= img.tables.size()) {
      return Status::Corruption("catalog: index '" + x.name +
                                "' references unknown table id " +
                                std::to_string(x.table_id));
    }
    // Same rules CreateIndex enforces at DDL time (IndexKeySpec::Validate)
    // — a spec can only get here from a foreign or corrupted writer.
    const Status sv = x.key_spec.Validate();
    if (!sv.ok()) {
      return Status::Corruption("catalog: index '" + x.name +
                                "': " + sv.ToString());
    }
    for (size_t j = 0; j < i; ++j) {
      if (img.indexes[j].name == x.name) {
        return Status::Corruption("catalog: duplicate index name '" +
                                  x.name + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ReplayCatalogImage(const CatalogImage& img, Catalog* catalog) {
  DORADB_RETURN_NOT_OK(ValidateImage(img));
  for (const auto& t : img.tables) {
    TableId id;
    DORADB_RETURN_NOT_OK(catalog->CreateTable(t.name, &id));
    if (id != t.id) {
      return Status::Corruption("catalog: replay id mismatch for table '" +
                                t.name + "'");
    }
    if (t.dora_executors != 0) {
      DORADB_RETURN_NOT_OK(
          catalog->SetDoraConfig(id, t.key_space, t.dora_executors));
      if (!t.routing_executors.empty()) {
        DORADB_RETURN_NOT_OK(catalog->SetDoraRouting(
            id, t.routing_boundaries, t.routing_executors,
            t.routing_version));
      }
    }
  }
  for (const auto& i : img.indexes) {
    IndexId id;
    DORADB_RETURN_NOT_OK(catalog->CreateIndex(i.table_id, i.name, i.unique,
                                              i.secondary, i.key_spec, &id));
    if (id != i.id) {
      return Status::Corruption("catalog: replay id mismatch for index '" +
                                i.name + "'");
    }
  }
  return Status::OK();
}

}  // namespace doradb
