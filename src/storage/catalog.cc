#include "storage/catalog.h"

#include "storage/catalog_store.h"

namespace doradb {

Status IndexKeySpec::Validate() const {
  if (fields.size() > 0xFFFF) {
    return Status::InvalidArgument("too many key fields");
  }
  size_t total_width = 0;
  for (const IndexKeyField& f : fields) {
    if (f.kind == IndexKeyField::Kind::kUint) {
      if (f.width != 1 && f.width != 2 && f.width != 4 && f.width != 8) {
        return Status::InvalidArgument("bad uint key-field width " +
                                       std::to_string(f.width));
      }
    } else if (f.kind != IndexKeyField::Kind::kBytes) {
      return Status::InvalidArgument("unknown key-field kind");
    } else if (f.width == 0) {
      return Status::InvalidArgument("zero-width bytes key field");
    }
    total_width += f.width;
  }
  // KeyBuilder::Push silently drops bytes past kMaxKeySize; a wider spec
  // would build on truncated (colliding) keys.
  if (total_width > kMaxKeySize) {
    return Status::InvalidArgument(
        "key spec is wider (" + std::to_string(total_width) +
        " bytes) than the max key size");
  }
  if (aux_offset != kNoAux && (aux_width == 0 || aux_width > 8)) {
    return Status::InvalidArgument("bad aux width " +
                                   std::to_string(aux_width));
  }
  return Status::OK();
}

Status IndexKeySpec::Extract(std::string_view record, std::string* key,
                             uint64_t* aux) const {
  KeyBuilder kb;
  for (const IndexKeyField& f : fields) {
    if (record.size() < static_cast<size_t>(f.offset) + f.width) {
      return Status::Corruption("key spec past record end");
    }
    const auto* p =
        reinterpret_cast<const uint8_t*>(record.data()) + f.offset;
    if (f.kind == IndexKeyField::Kind::kBytes) {
      kb.AddString(record.substr(f.offset, f.width), f.width);
      continue;
    }
    // Validate the width BEFORE the shift loop: an out-of-range width
    // (hostile or future-format catalog file) must hit this guard, not a
    // >= 64-bit shift.
    if (f.width != 1 && f.width != 2 && f.width != 4 && f.width != 8) {
      return Status::Corruption("key spec: bad uint width " +
                                std::to_string(f.width));
    }
    uint64_t v = 0;
    for (uint8_t i = 0; i < f.width; ++i) {
      v |= static_cast<uint64_t>(p[i]) << (i * 8);  // record fields are LE
    }
    switch (f.width) {
      case 1: kb.Add8(static_cast<uint8_t>(v)); break;
      case 2: kb.Add16(static_cast<uint16_t>(v)); break;
      case 4: kb.Add32(static_cast<uint32_t>(v)); break;
      default: kb.Add64(v); break;
    }
  }
  *key = kb.Str();
  *aux = 0;
  if (aux_offset != kNoAux) {
    if (aux_width == 0 || aux_width > 8) {
      return Status::Corruption("key spec: bad aux width " +
                                std::to_string(aux_width));
    }
    if (record.size() < static_cast<size_t>(aux_offset) + aux_width) {
      return Status::Corruption("key spec aux past record end");
    }
    const auto* p =
        reinterpret_cast<const uint8_t*>(record.data()) + aux_offset;
    for (uint8_t i = 0; i < aux_width; ++i) {
      *aux |= static_cast<uint64_t>(p[i]) << (i * 8);
    }
  }
  return Status::OK();
}

namespace {
// Names are stored behind a u16 length prefix in catalog.db; reject longer
// ones at DDL time rather than serializing a structurally corrupt payload.
constexpr size_t kMaxNameLen = 0xFFFF;
}  // namespace

Status Catalog::CreateTable(const std::string& name, TableId* id) {
  std::lock_guard<std::mutex> g(mu_);
  if (!poison_.ok()) return poison_;
  if (name.size() > kMaxNameLen) {
    return Status::InvalidArgument("table name too long");
  }
  for (const auto& t : tables_) {
    if (t->name == name) return Status::Duplicate("table exists: " + name);
  }
  auto info = std::make_unique<TableInfo>();
  info->id = static_cast<TableId>(tables_.size());
  info->name = name;
  info->heap = std::make_unique<HeapFile>(pool_, info->id);
  *id = info->id;
  tables_.push_back(std::move(info));
  ++ddl_epoch_;
  const Status s = WriteThroughLocked();
  if (!s.ok()) {
    tables_.pop_back();  // durable mode: an unpersisted table never existed
    --ddl_epoch_;
    return s;
  }
  return Status::OK();
}

Status Catalog::CreateIndex(TableId table, const std::string& name,
                            bool unique, bool secondary, IndexId* id) {
  return CreateIndex(table, name, unique, secondary, IndexKeySpec{}, id);
}

Status Catalog::CreateIndex(TableId table, const std::string& name,
                            bool unique, bool secondary,
                            const IndexKeySpec& spec, IndexId* id) {
  std::lock_guard<std::mutex> g(mu_);
  if (!poison_.ok()) return poison_;
  if (table >= tables_.size()) {
    return Status::InvalidArgument("no such table");
  }
  if (name.size() > kMaxNameLen) {
    return Status::InvalidArgument("index name too long");
  }
  // Reject at DDL time exactly what load-time validation would reject: a
  // persisted-but-unloadable spec would make the data directory
  // permanently unopenable at its next lifetime.
  const Status sv = spec.Validate();
  if (!sv.ok()) {
    return Status::InvalidArgument("index '" + name + "': " + sv.ToString());
  }
  for (const auto& i : indexes_) {
    if (i->name == name) return Status::Duplicate("index exists: " + name);
  }
  auto info = std::make_unique<IndexInfo>();
  info->id = static_cast<IndexId>(indexes_.size());
  info->name = name;
  info->table_id = table;
  info->unique = unique;
  info->secondary = secondary;
  info->key_spec = spec;
  tables_[table]->indexes.push_back(info->id);
  *id = info->id;
  indexes_.push_back(std::move(info));
  ++ddl_epoch_;
  // Persist BEFORE allocating the eager B+Tree root: a failed write-through
  // then rolls back pure metadata, leaking nothing (there is no page-free
  // path the rollback could use, and one orphaned root per retry would
  // accumulate in pages.db forever).
  const Status s = WriteThroughLocked();
  if (!s.ok()) {
    indexes_.pop_back();
    tables_[table]->indexes.pop_back();
    --ddl_epoch_;
    return s;
  }
  indexes_.back()->tree = std::make_unique<BTree>(pool_, *id, unique);
  return Status::OK();
}

Status Catalog::SetDoraConfig(TableId table, uint64_t key_space,
                              uint32_t executors) {
  std::lock_guard<std::mutex> g(mu_);
  if (!poison_.ok()) return poison_;
  if (table >= tables_.size()) {
    return Status::InvalidArgument("no such table");
  }
  if (executors > kMaxDoraExecutors) {
    // Mirror of ValidateImage's load-time bound: persisting a value the
    // loader rejects would brick the directory at its next reopen.
    return Status::InvalidArgument("executor count " +
                                   std::to_string(executors) +
                                   " exceeds the catalog limit");
  }
  TableInfo* info = tables_[table].get();
  if (info->key_space == key_space && info->dora_executors == executors) {
    return Status::OK();  // reopen path re-registers identical wiring
  }
  const uint64_t prev_space = info->key_space;
  const uint32_t prev_exec = info->dora_executors;
  // A persisted rule is only meaningful against the wiring it was split
  // under; a real config change invalidates it.
  auto prev_bounds = std::move(info->routing_boundaries);
  auto prev_routing_exec = std::move(info->routing_executors);
  const uint64_t prev_version = info->routing_version;
  info->key_space = key_space;
  info->dora_executors = executors;
  info->routing_boundaries.clear();
  info->routing_executors.clear();
  info->routing_version = 0;
  ++ddl_epoch_;
  const Status s = WriteThroughLocked();
  if (!s.ok()) {
    info->key_space = prev_space;
    info->dora_executors = prev_exec;
    info->routing_boundaries = std::move(prev_bounds);
    info->routing_executors = std::move(prev_routing_exec);
    info->routing_version = prev_version;
    --ddl_epoch_;
    return s;
  }
  return Status::OK();
}

Status Catalog::SetDoraRouting(TableId table, std::vector<uint64_t> boundaries,
                               std::vector<uint32_t> executors,
                               uint64_t version) {
  std::lock_guard<std::mutex> g(mu_);
  if (!poison_.ok()) return poison_;
  if (table >= tables_.size()) {
    return Status::InvalidArgument("no such table");
  }
  TableInfo* info = tables_[table].get();
  // Same rules ValidateImage enforces at load: never persist a rule the
  // loader would reject.
  if (executors.empty()) {
    if (!boundaries.empty()) {
      return Status::InvalidArgument("routing boundaries without executors");
    }
  } else {
    if (info->dora_executors == 0) {
      return Status::InvalidArgument(
          "routing rule for a table with no DORA wiring");
    }
    if (executors.size() != boundaries.size() + 1) {
      return Status::InvalidArgument("routing rule sizes disagree");
    }
    if (executors.size() > kMaxRoutingDatasets) {
      return Status::InvalidArgument("routing rule has too many datasets");
    }
    for (size_t i = 0; i < boundaries.size(); ++i) {
      if (boundaries[i] == 0 ||
          (i > 0 && boundaries[i] <= boundaries[i - 1]) ||
          (info->key_space > 0 && boundaries[i] >= info->key_space)) {
        return Status::InvalidArgument(
            "routing boundaries must be strictly increasing inside the key "
            "space");
      }
    }
    for (const uint32_t e : executors) {
      if (e >= info->dora_executors) {
        return Status::InvalidArgument("routing executor out of range");
      }
    }
  }
  if (info->routing_boundaries == boundaries &&
      info->routing_executors == executors &&
      info->routing_version == version) {
    return Status::OK();
  }
  auto prev_bounds = std::move(info->routing_boundaries);
  auto prev_exec = std::move(info->routing_executors);
  const uint64_t prev_version = info->routing_version;
  info->routing_boundaries = std::move(boundaries);
  info->routing_executors = std::move(executors);
  info->routing_version = version;
  ++ddl_epoch_;
  const Status s = WriteThroughLocked();
  if (!s.ok()) {
    info->routing_boundaries = std::move(prev_bounds);
    info->routing_executors = std::move(prev_exec);
    info->routing_version = prev_version;
    --ddl_epoch_;
    return s;
  }
  return Status::OK();
}

TableInfo* Catalog::GetTable(TableId id) {
  return id < tables_.size() ? tables_[id].get() : nullptr;
}

TableInfo* Catalog::GetTable(const std::string& name) {
  for (const auto& t : tables_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

IndexInfo* Catalog::GetIndex(IndexId id) {
  return id < indexes_.size() ? indexes_[id].get() : nullptr;
}

IndexInfo* Catalog::GetIndex(const std::string& name) {
  for (const auto& i : indexes_) {
    if (i->name == name) return i.get();
  }
  return nullptr;
}

void Catalog::BuildImageLocked(CatalogImage* out) const {
  out->tables.clear();
  out->indexes.clear();
  for (const auto& t : tables_) {
    CatalogImage::Table img_t;
    img_t.id = t->id;
    img_t.name = t->name;
    img_t.key_space = t->key_space;
    img_t.dora_executors = t->dora_executors;
    img_t.routing_boundaries = t->routing_boundaries;
    img_t.routing_executors = t->routing_executors;
    img_t.routing_version = t->routing_version;
    out->tables.push_back(std::move(img_t));
  }
  for (const auto& i : indexes_) {
    out->indexes.push_back(CatalogImage::Index{
        i->id, i->name, i->table_id, i->unique, i->secondary, i->key_spec});
  }
}

void Catalog::Snapshot(CatalogImage* out) const {
  std::lock_guard<std::mutex> g(mu_);
  BuildImageLocked(out);
}

Status Catalog::Persist() {
  std::lock_guard<std::mutex> g(mu_);
  return WriteThroughLocked();
}

Status Catalog::WriteThroughLocked() {
  if (store_ == nullptr || saved_epoch_ == ddl_epoch_) return Status::OK();
  CatalogImage img;
  BuildImageLocked(&img);
  DORADB_RETURN_NOT_OK(store_->Save(img));
  saved_epoch_ = ddl_epoch_;
  return Status::OK();
}

}  // namespace doradb
