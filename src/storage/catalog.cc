#include "storage/catalog.h"

namespace doradb {

Status Catalog::CreateTable(const std::string& name, TableId* id) {
  std::lock_guard<std::mutex> g(mu_);
  for (const auto& t : tables_) {
    if (t->name == name) return Status::Duplicate("table exists: " + name);
  }
  auto info = std::make_unique<TableInfo>();
  info->id = static_cast<TableId>(tables_.size());
  info->name = name;
  info->heap = std::make_unique<HeapFile>(pool_, info->id);
  *id = info->id;
  tables_.push_back(std::move(info));
  return Status::OK();
}

Status Catalog::CreateIndex(TableId table, const std::string& name,
                            bool unique, bool secondary, IndexId* id) {
  std::lock_guard<std::mutex> g(mu_);
  if (table >= tables_.size()) {
    return Status::InvalidArgument("no such table");
  }
  for (const auto& i : indexes_) {
    if (i->name == name) return Status::Duplicate("index exists: " + name);
  }
  auto info = std::make_unique<IndexInfo>();
  info->id = static_cast<IndexId>(indexes_.size());
  info->name = name;
  info->table_id = table;
  info->unique = unique;
  info->secondary = secondary;
  info->tree = std::make_unique<BTree>(pool_, info->id, unique);
  tables_[table]->indexes.push_back(info->id);
  *id = info->id;
  indexes_.push_back(std::move(info));
  return Status::OK();
}

TableInfo* Catalog::GetTable(TableId id) {
  return id < tables_.size() ? tables_[id].get() : nullptr;
}

TableInfo* Catalog::GetTable(const std::string& name) {
  for (const auto& t : tables_) {
    if (t->name == name) return t.get();
  }
  return nullptr;
}

IndexInfo* Catalog::GetIndex(IndexId id) {
  return id < indexes_.size() ? indexes_[id].get() : nullptr;
}

IndexInfo* Catalog::GetIndex(const std::string& name) {
  for (const auto& i : indexes_) {
    if (i->name == name) return i.get();
  }
  return nullptr;
}

}  // namespace doradb
