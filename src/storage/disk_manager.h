// Page store standing in for the disk.
//
// The paper stores database and log on an in-memory file system to saturate
// the CPU while still exercising every storage-manager code path (§5.1); we
// do the same by default. Page frames are allocated in fixed-size extents
// whose addresses never move, so reads/writes need no global lock.
//
// With a data directory (Database::Options::data_dir) the store becomes a
// real file — `<data_dir>/pages.db`, pages at fixed offsets page_id *
// kPageSize — so checkpointed pages survive process death and a second
// lifetime can recover from disk alone. Reads of never-written pages (file
// holes, or ids beyond EOF that recovery re-materializes from the log)
// return zeroed frames, exactly what a fresh in-memory extent would hold.

#ifndef DORADB_STORAGE_DISK_MANAGER_H_
#define DORADB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace doradb {

class DiskManager {
 public:
  // `simulated_latency_ns` > 0 adds a busy-wait to each I/O, for experiments
  // that want to model slower devices.
  explicit DiskManager(uint64_t simulated_latency_ns = 0);
  // Non-empty `data_dir`: file-backed mode (pages.db); a pre-existing file
  // is adopted, with allocation resuming past its highest page.
  explicit DiskManager(const std::string& data_dir,
                       uint64_t simulated_latency_ns = 0);
  ~DiskManager();
  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  // Allocate a fresh page (possibly reusing a deallocated one).
  PageId AllocatePage();
  void DeallocatePage(PageId page_id);

  Status ReadPage(PageId page_id, void* out);
  Status WritePage(PageId page_id, const void* data);

  // Make every written page durable (fdatasync; no-op in memory mode).
  // Checkpoints call this before trusting flushed pages in a redo horizon.
  Status Sync();

  // Recovery support: extend the device so every id below `end` is a valid
  // page (redo may reference pages a dead process allocated but never
  // wrote back — they read as zeroes and are re-materialized from the log).
  void EnsureAllocatedThrough(PageId end);

  bool file_backed() const { return fd_ >= 0; }

  // Failed-store latch: set when durable mode could not open its file or a
  // page-store fdatasync failed (fsyncgate: a retry proving nothing, the
  // store stops vouching for its pages). Writes and syncs return the
  // parked error; reads keep serving whenever the medium still answers.
  bool poisoned() const { return poisoned_; }
  const Status& io_status() const { return io_status_; }

  uint64_t NumAllocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  // One past the highest page id ever allocated; recovery scans [0, end).
  PageId end_page_id() const {
    std::lock_guard<std::mutex> g(mu_);
    return next_page_id_;
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kPagesPerExtent = 1024;

  uint8_t* FrameFor(PageId page_id);  // nullptr if out of range

  void SimulateLatency();

  // Latch the store failed (one-way), report degraded engine health, and
  // return the parked error for the caller to propagate.
  Status Poison(Status s);

  mutable std::mutex mu_;  // guards extent growth + free list
  std::vector<std::unique_ptr<uint8_t[]>> extents_;
  std::vector<PageId> free_list_;
  PageId next_page_id_ = 0;

  int fd_ = -1;  // pages.db (file-backed mode only)
  std::string path_;
  bool poisoned_ = false;
  Status io_status_;

  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  const uint64_t simulated_latency_ns_;
};

}  // namespace doradb

#endif  // DORADB_STORAGE_DISK_MANAGER_H_
