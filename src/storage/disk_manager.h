// In-memory page store standing in for the disk.
//
// The paper stores database and log on an in-memory file system to saturate
// the CPU while still exercising every storage-manager code path (§5.1); we
// do the same. Page frames are allocated in fixed-size extents whose
// addresses never move, so reads/writes need no global lock.

#ifndef DORADB_STORAGE_DISK_MANAGER_H_
#define DORADB_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace doradb {

class DiskManager {
 public:
  // `simulated_latency_ns` > 0 adds a busy-wait to each I/O, for experiments
  // that want to model slower devices.
  explicit DiskManager(uint64_t simulated_latency_ns = 0);

  // Allocate a fresh page (possibly reusing a deallocated one).
  PageId AllocatePage();
  void DeallocatePage(PageId page_id);

  Status ReadPage(PageId page_id, void* out);
  Status WritePage(PageId page_id, const void* data);

  uint64_t NumAllocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }
  // One past the highest page id ever allocated; recovery scans [0, end).
  PageId end_page_id() const {
    std::lock_guard<std::mutex> g(mu_);
    return next_page_id_;
  }
  uint64_t reads() const { return reads_.load(std::memory_order_relaxed); }
  uint64_t writes() const { return writes_.load(std::memory_order_relaxed); }

 private:
  static constexpr size_t kPagesPerExtent = 1024;

  uint8_t* FrameFor(PageId page_id);  // nullptr if out of range

  void SimulateLatency();

  mutable std::mutex mu_;  // guards extent growth + free list
  std::vector<std::unique_ptr<uint8_t[]>> extents_;
  std::vector<PageId> free_list_;
  PageId next_page_id_ = 0;

  std::atomic<uint64_t> allocated_{0};
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  const uint64_t simulated_latency_ns_;
};

}  // namespace doradb

#endif  // DORADB_STORAGE_DISK_MANAGER_H_
