// Fundamental storage identifiers and constants.

#ifndef DORADB_STORAGE_TYPES_H_
#define DORADB_STORAGE_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

namespace doradb {

using PageId = uint32_t;
using SlotId = uint16_t;
using TableId = uint16_t;
using IndexId = uint16_t;
using TxnId = uint64_t;
using Lsn = uint64_t;

constexpr PageId kInvalidPageId = 0xFFFFFFFFu;
constexpr TxnId kInvalidTxnId = 0;
constexpr Lsn kInvalidLsn = 0;
constexpr size_t kPageSize = 8192;

// Record identifier: physical address of a record (page, slot). The unit of
// DORA's residual centralized locking (§4.2.1: inserts/deletes lock the RID
// through the centralized lock manager).
struct Rid {
  PageId page_id = kInvalidPageId;
  SlotId slot = 0;

  bool Valid() const { return page_id != kInvalidPageId; }

  bool operator==(const Rid& o) const {
    return page_id == o.page_id && slot == o.slot;
  }
  bool operator!=(const Rid& o) const { return !(*this == o); }
  bool operator<(const Rid& o) const {
    return page_id != o.page_id ? page_id < o.page_id : slot < o.slot;
  }

  uint64_t Pack() const {
    return (static_cast<uint64_t>(page_id) << 16) | slot;
  }
  static Rid Unpack(uint64_t v) {
    return Rid{static_cast<PageId>(v >> 16), static_cast<SlotId>(v & 0xFFFF)};
  }
  std::string ToString() const {
    return "(" + std::to_string(page_id) + "," + std::to_string(slot) + ")";
  }
};

struct RidHash {
  size_t operator()(const Rid& r) const {
    return std::hash<uint64_t>()(r.Pack());
  }
};

}  // namespace doradb

#endif  // DORADB_STORAGE_TYPES_H_
