#include "storage/buffer_pool.h"

#include <cassert>
#include <cstring>

namespace doradb {

PageGuard::PageGuard(BufferPool* pool, size_t frame_idx, uint8_t* data)
    : pool_(pool), frame_idx_(frame_idx), data_(data) {}

PageGuard& PageGuard::operator=(PageGuard&& o) noexcept {
  if (this != &o) {
    Release();
    pool_ = o.pool_;
    frame_idx_ = o.frame_idx_;
    data_ = o.data_;
    latch_state_ = o.latch_state_;
    o.pool_ = nullptr;
    o.data_ = nullptr;
    o.latch_state_ = LatchState::kNone;
  }
  return *this;
}

void PageGuard::LatchShared() {
  assert(latch_state_ == LatchState::kNone);
  pool_->frames_[frame_idx_].latch.ReadLock(TimeClass::kBufferContention);
  latch_state_ = LatchState::kShared;
}

void PageGuard::LatchExclusive() {
  assert(latch_state_ == LatchState::kNone);
  pool_->frames_[frame_idx_].latch.WriteLock(TimeClass::kBufferContention);
  latch_state_ = LatchState::kExclusive;
}

void PageGuard::Unlatch() {
  if (latch_state_ == LatchState::kShared) {
    pool_->frames_[frame_idx_].latch.ReadUnlock();
  } else if (latch_state_ == LatchState::kExclusive) {
    pool_->frames_[frame_idx_].latch.WriteUnlock();
  }
  latch_state_ = LatchState::kNone;
}

void PageGuard::MarkDirty() {
  assert(latch_state_ == LatchState::kExclusive);
  pool_->frames_[frame_idx_].dirty.store(true, std::memory_order_relaxed);
}

void PageGuard::MarkDirty(Lsn rec_lsn) {
  assert(latch_state_ == LatchState::kExclusive);
  BufferPool::Frame& f = pool_->frames_[frame_idx_];
  f.dirty.store(true, std::memory_order_relaxed);
  if (rec_lsn != kInvalidLsn) {
    // rec_lsn keeps the FIRST dirtier since the frame was last clean (the
    // redo horizon must reach back to the oldest un-persisted change);
    // attribution follows the LAST logged writer (that partition's
    // checkpoint will flush the page). The exclusive frame latch excludes
    // competing dirty-path writers, so load+store suffices.
    const Lsn cur = f.rec_lsn.load(std::memory_order_relaxed);
    if (cur == kInvalidLsn || rec_lsn < cur) {
      f.rec_lsn.store(rec_lsn, std::memory_order_relaxed);
    }
    f.writer_partition.store(pool_->partition_of_thread_
                                 ? pool_->partition_of_thread_()
                                 : 0,
                             std::memory_order_relaxed);
  }
}

void PageGuard::Release() {
  if (pool_ == nullptr) return;
  Unlatch();
  pool_->Unpin(frame_idx_);
  pool_ = nullptr;
  data_ = nullptr;
}

BufferPool::BufferPool(DiskManager* disk, size_t num_frames)
    : disk_(disk),
      num_frames_(num_frames),
      slab_(std::make_unique<uint8_t[]>(num_frames * kPageSize)),
      frames_(std::make_unique<Frame[]>(num_frames)) {
  page_table_.reserve(num_frames * 2);
}

BufferPool::~BufferPool() { (void)FlushAll(); }

bool BufferPool::AllocateFrame(size_t* out_idx) {
  // CLOCK sweep: at most two full passes (first clears reference bits).
  for (size_t scanned = 0; scanned < num_frames_ * 2; ++scanned) {
    Frame& f = frames_[clock_hand_];
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % num_frames_;
    if (f.page_id == kInvalidPageId) {
      *out_idx = idx;
      return true;
    }
    if (f.pin_count.load(std::memory_order_relaxed) != 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    // Victim found: write back if dirty, then unmap.
    if (f.dirty.load(std::memory_order_relaxed)) {
      const auto* hdr = reinterpret_cast<const PageHeaderBase*>(FrameData(idx));
      // WAL rule under failure: if the log cannot become durable through
      // this page's LSN (poisoned stream), the page must not be stolen —
      // keep scanning for a clean victim instead.
      if (wal_flush_ && !wal_flush_(hdr->page_lsn)) continue;
      disk_->WritePage(f.page_id, FrameData(idx));
      CleanFrame(f);
    }
    page_table_.erase(f.page_id);
    f.page_id = kInvalidPageId;
    evictions_.fetch_add(1, std::memory_order_relaxed);
    *out_idx = idx;
    return true;
  }
  return false;
}

Status BufferPool::NewPage(PageGuard* out, PageId* page_id) {
  const PageId id = disk_->AllocatePage();
  TatasGuard g(map_lock_, TimeClass::kBufferContention);
  size_t idx;
  if (!AllocateFrame(&idx)) return Status::Full("all frames pinned");
  Frame& f = frames_[idx];
  f.page_id = id;
  f.referenced = true;
  // A new page must eventually reach the disk image.
  f.dirty.store(true, std::memory_order_relaxed);
  f.rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
  f.writer_partition.store(kNoWriterPartition, std::memory_order_relaxed);
  f.pin_count.store(1, std::memory_order_relaxed);
  std::memset(FrameData(idx), 0, kPageSize);
  page_table_[id] = idx;
  *out = PageGuard(this, idx, FrameData(idx));
  *page_id = id;
  return Status::OK();
}

Status BufferPool::FetchPage(PageId page_id, PageGuard* out) {
  TatasGuard g(map_lock_, TimeClass::kBufferContention);
  auto it = page_table_.find(page_id);
  if (it != page_table_.end()) {
    Frame& f = frames_[it->second];
    f.pin_count.fetch_add(1, std::memory_order_relaxed);
    f.referenced = true;
    hits_.fetch_add(1, std::memory_order_relaxed);
    *out = PageGuard(this, it->second, FrameData(it->second));
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  size_t idx;
  if (!AllocateFrame(&idx)) return Status::Full("all frames pinned");
  DORADB_RETURN_NOT_OK(disk_->ReadPage(page_id, FrameData(idx)));
  Frame& f = frames_[idx];
  f.page_id = page_id;
  f.referenced = true;
  CleanFrame(f);
  f.pin_count.store(1, std::memory_order_relaxed);
  page_table_[page_id] = idx;
  *out = PageGuard(this, idx, FrameData(idx));
  return Status::OK();
}

Status BufferPool::FlushPage(PageId page_id) {
  TatasGuard g(map_lock_, TimeClass::kBufferContention);
  auto it = page_table_.find(page_id);
  if (it == page_table_.end()) return Status::NotFound("page not resident");
  Frame& f = frames_[it->second];
  if (f.dirty.load(std::memory_order_relaxed)) {
    const auto* hdr =
        reinterpret_cast<const PageHeaderBase*>(FrameData(it->second));
    if (wal_flush_ && !wal_flush_(hdr->page_lsn)) {
      return Status::Unavailable("wal: flush horizon unreachable");
    }
    DORADB_RETURN_NOT_OK(disk_->WritePage(page_id, FrameData(it->second)));
    CleanFrame(f);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  TatasGuard g(map_lock_, TimeClass::kBufferContention);
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    if (f.page_id == kInvalidPageId ||
        !f.dirty.load(std::memory_order_relaxed)) {
      continue;
    }
    const auto* hdr = reinterpret_cast<const PageHeaderBase*>(FrameData(i));
    if (wal_flush_ && !wal_flush_(hdr->page_lsn)) {
      return Status::Unavailable("wal: flush horizon unreachable");
    }
    DORADB_RETURN_NOT_OK(disk_->WritePage(f.page_id, FrameData(i)));
    CleanFrame(f);
  }
  return Status::OK();
}

Status BufferPool::FlushPartition(uint32_t partition, bool all_partitions,
                                  CheckpointScan* scan) {
  *scan = CheckpointScan{};
  for (size_t i = 0; i < num_frames_; ++i) {
    Frame& f = frames_[i];
    PageId pid;
    {
      TatasGuard g(map_lock_, TimeClass::kBufferContention);
      if (f.page_id == kInvalidPageId ||
          !f.dirty.load(std::memory_order_relaxed)) {
        continue;
      }
      const Lsn rec_lsn = f.rec_lsn.load(std::memory_order_relaxed);
      if (rec_lsn == kInvalidLsn) continue;  // unlogged; see header
      const bool mine =
          all_partitions ||
          f.writer_partition.load(std::memory_order_relaxed) == partition;
      if (!mine) {
        if (rec_lsn < scan->min_rec_lsn) scan->min_rec_lsn = rec_lsn;
        ++scan->pages_skipped;
        continue;
      }
      // Pin under the map lock so the frame cannot be evicted, then drop
      // the lock before latching — a writer holding the frame latch never
      // needs the map lock, so this ordering cannot deadlock.
      f.pin_count.fetch_add(1, std::memory_order_relaxed);
      pid = f.page_id;
    }
    f.latch.ReadLock(TimeClass::kBufferContention);
    Status s;
    if (f.dirty.load(std::memory_order_relaxed)) {
      // The read latch excludes writers: the copy below is a consistent
      // page version, and nobody can re-dirty it until we unlatch — so
      // clearing the dirty metadata after the write is race-free.
      const auto* hdr = reinterpret_cast<const PageHeaderBase*>(FrameData(i));
      if (wal_flush_ && !wal_flush_(hdr->page_lsn)) {
        // Abort the scan: the caller's checkpoint must not publish a
        // horizon computed from a flush that could not complete.
        s = Status::Unavailable("wal: flush horizon unreachable");
      } else {
        s = disk_->WritePage(pid, FrameData(i));
      }
      if (s.ok()) {
        CleanFrame(f);
        ++scan->pages_flushed;
      }
    }
    f.latch.ReadUnlock();
    Unpin(i);
    DORADB_RETURN_NOT_OK(s);
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  TatasGuard g(map_lock_, TimeClass::kBufferContention);
  for (size_t i = 0; i < num_frames_; ++i) {
    frames_[i].page_id = kInvalidPageId;
    frames_[i].pin_count.store(0, std::memory_order_relaxed);
    frames_[i].referenced = false;
    CleanFrame(frames_[i]);
  }
  page_table_.clear();
  clock_hand_ = 0;
}

void BufferPool::Unpin(size_t frame_idx) {
  frames_[frame_idx].pin_count.fetch_sub(1, std::memory_order_release);
}

}  // namespace doradb
