#include "storage/btree.h"

#include <cassert>

#include "obs/metrics.h"

namespace doradb {

std::string PrefixUpperBound(std::string_view prefix) {
  std::string hi(prefix);
  // Increment the last incrementable byte; trailing 0xFF bytes are dropped.
  while (!hi.empty()) {
    auto& b = reinterpret_cast<uint8_t&>(hi.back());
    if (b != 0xFF) {
      ++b;
      return hi;
    }
    hi.pop_back();
  }
  return hi;  // empty = +infinity (scan to end)
}

BTree::BTree(BufferPool* pool, IndexId index_id, bool unique)
    : pool_(pool),
      index_id_(index_id),
      unique_(unique),
      descents_saved_metric_(obs::MetricsRegistry::Default().GetCounter(
          "btree.descents_saved", "descents")) {
  PageGuard guard;
  PageId pid;
  const Status s = pool_->NewPage(&guard, &pid);
  assert(s.ok());
  (void)s;
  guard.LatchExclusive();
  InitLeaf(guard.data(), pid);
  guard.MarkDirty();
  root_ = pid;
  first_leaf_ = pid;
}

void BTree::InitLeaf(uint8_t* p, PageId pid) {
  std::memset(p, 0, kPageSize);
  NodeHeader* h = Node(p);
  h->base.page_id = pid;
  h->base.owner_id = index_id_;
  h->base.page_type = PageType::kBTreeLeaf;
  h->base.page_lsn = kInvalidLsn;
  h->count = 0;
  h->level = 0;
  h->next_leaf = kInvalidPageId;
  h->child0 = kInvalidPageId;
}

void BTree::InitInternal(uint8_t* p, PageId pid, uint16_t level) {
  std::memset(p, 0, kPageSize);
  NodeHeader* h = Node(p);
  h->base.page_id = pid;
  h->base.owner_id = index_id_;
  h->base.page_type = PageType::kBTreeInternal;
  h->base.page_lsn = kInvalidLsn;
  h->count = 0;
  h->level = level;
  h->next_leaf = kInvalidPageId;
  h->child0 = kInvalidPageId;
}

int BTree::Compare(std::string_view a, std::string_view b) {
  const size_t n = a.size() < b.size() ? a.size() : b.size();
  const int c = std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

void BTree::SetLeafKey(LeafEntry* e, std::string_view key) {
  e->key_len = static_cast<uint8_t>(key.size());
  std::memcpy(e->key, key.data(), key.size());
}

void BTree::SetInternalKey(InternalEntry* e, std::string_view key) {
  e->key_len = static_cast<uint8_t>(key.size());
  std::memcpy(e->key, key.data(), key.size());
}

PageId BTree::ChildFor(const uint8_t* node, std::string_view key) {
  const NodeHeader* h = Node(node);
  const InternalEntry* ents = Internals(node);
  // Rightmost child whose separator is <= key; child0 if all separators > key.
  uint32_t lo = 0, hi = h->count;  // first index with sep > key
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (Compare(ents[mid].KeyView(), key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? h->child0 : ents[lo - 1].child;
}

uint16_t BTree::LowerBound(const uint8_t* leaf, std::string_view key) {
  const NodeHeader* h = Node(leaf);
  const LeafEntry* ents = Leaves(leaf);
  uint32_t lo = 0, hi = h->count;
  while (lo < hi) {
    const uint32_t mid = (lo + hi) / 2;
    if (Compare(ents[mid].KeyView(), key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return static_cast<uint16_t>(lo);
}

Status BTree::DescendToLeaf(std::string_view key, bool exclusive_leaf,
                            PageGuard* out) const {
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(root_, &guard));
  if (Node(guard.data())->level == 0) {
    if (exclusive_leaf) {
      guard.LatchExclusive();
    } else {
      guard.LatchShared();
    }
    *out = std::move(guard);
    return Status::OK();
  }
  guard.LatchShared();
  for (;;) {
    const NodeHeader* h = Node(guard.data());
    const PageId child_pid = ChildFor(guard.data(), key);
    const bool child_is_leaf = (h->level == 1);
    PageGuard child;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(child_pid, &child));
    if (child_is_leaf && exclusive_leaf) {
      child.LatchExclusive();
    } else {
      child.LatchShared();
    }
    guard.Release();  // crab: parent released after child latched
    if (child_is_leaf) {
      *out = std::move(child);
      return Status::OK();
    }
    guard = std::move(child);
  }
}

Status BTree::UniqueCheck(uint8_t* leaf, std::string_view key) {
  NodeHeader* h = Node(leaf);
  LeafEntry* ents = Leaves(leaf);
  uint16_t i = LowerBound(leaf, key);
  while (i < h->count && Compare(ents[i].KeyView(), key) == 0) {
    if (!ents[i].deleted()) return Status::Duplicate("unique key exists");
    // Committed-deleted entry: superseded by the new insert (§4.2.2).
    std::memmove(&ents[i], &ents[i + 1],
                 sizeof(LeafEntry) * (h->count - i - 1));
    h->count--;
    num_entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BTree::TryLeafInsert(std::string_view key, const IndexEntry& entry) {
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/true, &leaf));
  uint8_t* p = leaf.data();
  NodeHeader* h = Node(p);
  if (unique_) DORADB_RETURN_NOT_OK(UniqueCheck(p, key));
  if (h->count >= kLeafCapacity) {
    // Split-time GC: purge flagged entries before deciding to split.
    if (PurgeDeleted(p) == 0) return Status::Full("leaf full");
    leaf.MarkDirty();
    if (h->count >= kLeafCapacity) return Status::Full("leaf full");
  }
  LeafEntry* ents = Leaves(p);
  // Insert after any equal keys (stable duplicate order).
  uint16_t pos = LowerBound(p, key);
  while (pos < h->count && Compare(ents[pos].KeyView(), key) == 0) ++pos;
  std::memmove(&ents[pos + 1], &ents[pos],
               sizeof(LeafEntry) * (h->count - pos));
  LeafEntry& e = ents[pos];
  SetLeafKey(&e, key);
  e.flags = entry.deleted ? LeafEntry::kDeletedBit : 0;
  e.page = entry.rid.page_id;
  e.slot = entry.rid.slot;
  e.aux = entry.aux;
  h->count++;
  leaf.MarkDirty();
  num_entries_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

uint16_t BTree::PurgeDeleted(uint8_t* leaf) {
  NodeHeader* h = Node(leaf);
  LeafEntry* ents = Leaves(leaf);
  uint16_t out = 0;
  for (uint16_t i = 0; i < h->count; ++i) {
    if (!ents[i].deleted()) {
      if (out != i) ents[out] = ents[i];
      ++out;
    }
  }
  const uint16_t purged = h->count - out;
  h->count = out;
  if (purged != 0) {
    gc_purged_.fetch_add(purged, std::memory_order_relaxed);
    num_entries_.fetch_sub(purged, std::memory_order_relaxed);
  }
  return purged;
}

Status BTree::Insert(std::string_view key, const IndexEntry& entry) {
  if (key.empty() || key.size() > kMaxKeySize) {
    return Status::InvalidArgument("bad key length");
  }
  {
    ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
    const Status s = TryLeafInsert(key, entry);
    if (!s.IsFull()) return s;
  }
  WriteGuard tree(tree_latch_, TimeClass::kBufferContention);
  return ExclusiveInsert(key, entry);
}

Status BTree::ExclusiveInsert(std::string_view key, const IndexEntry& entry) {
  std::string split_key;
  PageId split_page = kInvalidPageId;
  bool split = false;
  DORADB_RETURN_NOT_OK(
      InsertRecursive(root_, key, entry, &split_key, &split_page, &split));
  if (split) {
    PageGuard old_root;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(root_, &old_root));
    const uint16_t old_level = Node(old_root.data())->level;
    old_root.Release();

    PageGuard new_root;
    PageId new_root_pid;
    DORADB_RETURN_NOT_OK(pool_->NewPage(&new_root, &new_root_pid));
    InitInternal(new_root.data(), new_root_pid,
                 static_cast<uint16_t>(old_level + 1));
    NodeHeader* h = Node(new_root.data());
    h->child0 = root_;
    InternalEntry* ents = Internals(new_root.data());
    SetInternalKey(&ents[0], split_key);
    ents[0].child = split_page;
    h->count = 1;
    new_root.LatchExclusive();
    new_root.MarkDirty();
    new_root.Unlatch();
    root_ = new_root_pid;
    structure_version_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BTree::InsertRecursive(PageId node_pid, std::string_view key,
                              const IndexEntry& entry, std::string* split_key,
                              PageId* split_page, bool* split) {
  *split = false;
  PageGuard guard;
  DORADB_RETURN_NOT_OK(pool_->FetchPage(node_pid, &guard));
  uint8_t* p = guard.data();
  NodeHeader* h = Node(p);

  if (h->level == 0) {
    if (unique_) DORADB_RETURN_NOT_OK(UniqueCheck(p, key));
    if (h->count >= kLeafCapacity) PurgeDeleted(p);
    LeafEntry* ents = Leaves(p);
    if (h->count >= kLeafCapacity) {
      // Split. Prefer a key-boundary split point so one key's duplicate run
      // never spans two leaves (keeps rightmost descent exact).
      uint16_t mid = h->count / 2;
      uint16_t fwd = mid;
      while (fwd < h->count &&
             Compare(ents[fwd - 1].KeyView(), ents[fwd].KeyView()) == 0) {
        ++fwd;
      }
      if (fwd >= h->count) {
        uint16_t back = mid;
        while (back > 0 &&
               Compare(ents[back - 1].KeyView(), ents[back].KeyView()) == 0) {
          --back;
        }
        if (back == 0) {
          return Status::Full("single key overflows a leaf");
        }
        mid = back;
      } else {
        mid = fwd;
      }

      PageGuard right;
      PageId right_pid;
      DORADB_RETURN_NOT_OK(pool_->NewPage(&right, &right_pid));
      InitLeaf(right.data(), right_pid);
      NodeHeader* rh = Node(right.data());
      LeafEntry* rents = Leaves(right.data());
      std::memcpy(rents, &ents[mid], sizeof(LeafEntry) * (h->count - mid));
      rh->count = static_cast<uint16_t>(h->count - mid);
      rh->next_leaf = h->next_leaf;
      h->next_leaf = right_pid;
      h->count = mid;
      splits_.fetch_add(1, std::memory_order_relaxed);
      structure_version_.fetch_add(1, std::memory_order_relaxed);

      *split_key = std::string(rents[0].KeyView());
      *split_page = right_pid;
      *split = true;

      // Insert into the proper half.
      uint8_t* target = Compare(key, *split_key) < 0 ? p : right.data();
      NodeHeader* th = Node(target);
      LeafEntry* tents = Leaves(target);
      uint16_t pos = LowerBound(target, key);
      while (pos < th->count && Compare(tents[pos].KeyView(), key) == 0) {
        ++pos;
      }
      std::memmove(&tents[pos + 1], &tents[pos],
                   sizeof(LeafEntry) * (th->count - pos));
      LeafEntry& e = tents[pos];
      SetLeafKey(&e, key);
      e.flags = entry.deleted ? LeafEntry::kDeletedBit : 0;
      e.page = entry.rid.page_id;
      e.slot = entry.rid.slot;
      e.aux = entry.aux;
      th->count++;
      num_entries_.fetch_add(1, std::memory_order_relaxed);

      right.LatchExclusive();
      right.MarkDirty();
      right.Unlatch();
      guard.LatchExclusive();
      guard.MarkDirty();
      guard.Unlatch();
      return Status::OK();
    }
    // Fits without split.
    uint16_t pos = LowerBound(p, key);
    while (pos < h->count && Compare(ents[pos].KeyView(), key) == 0) ++pos;
    std::memmove(&ents[pos + 1], &ents[pos],
                 sizeof(LeafEntry) * (h->count - pos));
    LeafEntry& e = ents[pos];
    SetLeafKey(&e, key);
    e.flags = entry.deleted ? LeafEntry::kDeletedBit : 0;
    e.page = entry.rid.page_id;
    e.slot = entry.rid.slot;
    e.aux = entry.aux;
    h->count++;
    num_entries_.fetch_add(1, std::memory_order_relaxed);
    guard.LatchExclusive();
    guard.MarkDirty();
    guard.Unlatch();
    return Status::OK();
  }

  // Internal node.
  const PageId child = ChildFor(p, key);
  std::string child_split_key;
  PageId child_split_page = kInvalidPageId;
  bool child_split = false;
  DORADB_RETURN_NOT_OK(InsertRecursive(child, key, entry, &child_split_key,
                                       &child_split_page, &child_split));
  if (!child_split) return Status::OK();

  InternalEntry* ents = Internals(p);
  // Position for the new separator: first index with key > separator.
  uint32_t lo = 0, hi = h->count;
  while (lo < hi) {
    const uint32_t mid2 = (lo + hi) / 2;
    if (Compare(ents[mid2].KeyView(), child_split_key) <= 0) {
      lo = mid2 + 1;
    } else {
      hi = mid2;
    }
  }
  const uint16_t pos = static_cast<uint16_t>(lo);

  if (h->count < kInternalCapacity) {
    std::memmove(&ents[pos + 1], &ents[pos],
                 sizeof(InternalEntry) * (h->count - pos));
    SetInternalKey(&ents[pos], child_split_key);
    ents[pos].child = child_split_page;
    h->count++;
    guard.LatchExclusive();
    guard.MarkDirty();
    guard.Unlatch();
    return Status::OK();
  }

  // Split this internal node: promote the middle separator.
  PageGuard right;
  PageId right_pid;
  DORADB_RETURN_NOT_OK(pool_->NewPage(&right, &right_pid));
  InitInternal(right.data(), right_pid, h->level);
  NodeHeader* rh = Node(right.data());
  InternalEntry* rents = Internals(right.data());

  const uint16_t mid = h->count / 2;
  const std::string promoted(ents[mid].KeyView());
  rh->child0 = ents[mid].child;
  const uint16_t right_count = static_cast<uint16_t>(h->count - mid - 1);
  std::memcpy(rents, &ents[mid + 1], sizeof(InternalEntry) * right_count);
  rh->count = right_count;
  h->count = mid;
  splits_.fetch_add(1, std::memory_order_relaxed);
  structure_version_.fetch_add(1, std::memory_order_relaxed);

  // Insert the pending separator into the proper half.
  uint8_t* target = Compare(child_split_key, promoted) < 0 ? p : right.data();
  NodeHeader* th = Node(target);
  InternalEntry* tents = Internals(target);
  uint32_t l2 = 0, h2 = th->count;
  while (l2 < h2) {
    const uint32_t m2 = (l2 + h2) / 2;
    if (Compare(tents[m2].KeyView(), child_split_key) <= 0) {
      l2 = m2 + 1;
    } else {
      h2 = m2;
    }
  }
  std::memmove(&tents[l2 + 1], &tents[l2],
               sizeof(InternalEntry) * (th->count - l2));
  SetInternalKey(&tents[l2], child_split_key);
  tents[l2].child = child_split_page;
  th->count++;

  right.LatchExclusive();
  right.MarkDirty();
  right.Unlatch();
  guard.LatchExclusive();
  guard.MarkDirty();
  guard.Unlatch();

  *split_key = promoted;
  *split_page = right_pid;
  *split = true;
  return Status::OK();
}

Status BTree::Probe(std::string_view key, IndexEntry* out) const {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/false, &leaf));
  const uint8_t* p = leaf.data();
  const NodeHeader* h = Node(p);
  const LeafEntry* ents = Leaves(p);
  for (uint16_t i = LowerBound(p, key);
       i < h->count && Compare(ents[i].KeyView(), key) == 0; ++i) {
    if (ents[i].deleted()) continue;
    out->rid = ents[i].rid();
    out->aux = ents[i].aux;
    out->deleted = false;
    return Status::OK();
  }
  return Status::NotFound("key not in index");
}

void BTree::FillCursor(const uint8_t* p, PageId pid,
                       LeafCursor* cursor) const {
  const NodeHeader* h = Node(p);
  if (h->count == 0) {
    cursor->Invalidate();
    return;
  }
  const LeafEntry* ents = Leaves(p);
  cursor->leaf = pid;
  cursor->version = structure_version_.load(std::memory_order_relaxed);
  cursor->lo_len = ents[0].key_len;
  std::memcpy(cursor->lo, ents[0].key, ents[0].key_len);
  cursor->hi_len = ents[h->count - 1].key_len;
  std::memcpy(cursor->hi, ents[h->count - 1].key, ents[h->count - 1].key_len);
  cursor->rightmost = (h->next_leaf == kInvalidPageId);
}

Status BTree::ProbeCached(std::string_view key, IndexEntry* out,
                          LeafCursor* cursor) const {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  bool hit = false;
  // The cached entry bounds are a conservative subset of the leaf's
  // separator range: if the key falls inside them (or above them on the
  // rightmost leaf) and no SMO happened since the fill, this leaf is still
  // the unique leaf that can hold the key. The version read is stable for
  // the whole probe — SMOs take the tree latch exclusive.
  if (cursor->Valid() &&
      cursor->version ==
          structure_version_.load(std::memory_order_relaxed)) {
    const std::string_view lo(reinterpret_cast<const char*>(cursor->lo),
                              cursor->lo_len);
    const std::string_view hi(reinterpret_cast<const char*>(cursor->hi),
                              cursor->hi_len);
    if (Compare(key, lo) >= 0 &&
        (cursor->rightmost || Compare(key, hi) <= 0)) {
      if (pool_->FetchPage(cursor->leaf, &leaf).ok()) {
        leaf.LatchShared();
        hit = true;
        descents_saved_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled()) descents_saved_metric_->Add();
      }
    }
  }
  if (!hit) {
    DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/false, &leaf));
  }
  const uint8_t* p = leaf.data();
  const NodeHeader* h = Node(p);
  FillCursor(p, h->base.page_id, cursor);
  const LeafEntry* ents = Leaves(p);
  for (uint16_t i = LowerBound(p, key);
       i < h->count && Compare(ents[i].KeyView(), key) == 0; ++i) {
    if (ents[i].deleted()) continue;
    out->rid = ents[i].rid();
    out->aux = ents[i].aux;
    out->deleted = false;
    return Status::OK();
  }
  return Status::NotFound("key not in index");
}

Status BTree::ProbeAll(std::string_view key, std::vector<IndexEntry>* out,
                       bool include_deleted) const {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/false, &leaf));
  for (;;) {
    const uint8_t* p = leaf.data();
    const NodeHeader* h = Node(p);
    const LeafEntry* ents = Leaves(p);
    uint16_t i = LowerBound(p, key);
    for (; i < h->count && Compare(ents[i].KeyView(), key) == 0; ++i) {
      if (ents[i].deleted() && !include_deleted) continue;
      out->push_back(
          IndexEntry{ents[i].rid(), ents[i].aux, ents[i].deleted()});
    }
    if (i < h->count) break;  // stopped at a larger key — run is finished
    const PageId next = h->next_leaf;
    if (next == kInvalidPageId) break;
    PageGuard next_guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(next, &next_guard));
    next_guard.LatchShared();
    leaf.Release();
    leaf = std::move(next_guard);
    // Stop if the next leaf starts beyond our key.
    const uint8_t* np = leaf.data();
    if (Node(np)->count > 0 &&
        Compare(Leaves(np)[0].KeyView(), key) > 0) {
      break;
    }
  }
  return Status::OK();
}

Status BTree::Remove(std::string_view key, const Rid& rid) {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/true, &leaf));
  for (;;) {
    uint8_t* p = leaf.data();
    NodeHeader* h = Node(p);
    LeafEntry* ents = Leaves(p);
    uint16_t i = LowerBound(p, key);
    for (; i < h->count && Compare(ents[i].KeyView(), key) == 0; ++i) {
      if (rid.Valid() && ents[i].rid() != rid) continue;
      std::memmove(&ents[i], &ents[i + 1],
                   sizeof(LeafEntry) * (h->count - i - 1));
      h->count--;
      leaf.MarkDirty();
      num_entries_.fetch_sub(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (i < h->count) return Status::NotFound("entry not in index");
    const PageId next = h->next_leaf;
    if (next == kInvalidPageId) return Status::NotFound("entry not in index");
    PageGuard next_guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(next, &next_guard));
    next_guard.LatchExclusive();
    leaf.Release();
    leaf = std::move(next_guard);
    const uint8_t* np = leaf.data();
    if (Node(np)->count > 0 && Compare(Leaves(np)[0].KeyView(), key) > 0) {
      return Status::NotFound("entry not in index");
    }
  }
}

Status BTree::SetDeleted(std::string_view key, const Rid& rid, bool deleted) {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(key, /*exclusive_leaf=*/true, &leaf));
  for (;;) {
    uint8_t* p = leaf.data();
    NodeHeader* h = Node(p);
    LeafEntry* ents = Leaves(p);
    uint16_t i = LowerBound(p, key);
    for (; i < h->count && Compare(ents[i].KeyView(), key) == 0; ++i) {
      if (rid.Valid() && ents[i].rid() != rid) continue;
      if (deleted) {
        ents[i].flags |= LeafEntry::kDeletedBit;
      } else {
        ents[i].flags &= static_cast<uint8_t>(~LeafEntry::kDeletedBit);
      }
      leaf.MarkDirty();
      return Status::OK();
    }
    if (i < h->count) return Status::NotFound("entry not in index");
    const PageId next = h->next_leaf;
    if (next == kInvalidPageId) return Status::NotFound("entry not in index");
    PageGuard next_guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(next, &next_guard));
    next_guard.LatchExclusive();
    leaf.Release();
    leaf = std::move(next_guard);
    const uint8_t* np = leaf.data();
    if (Node(np)->count > 0 && Compare(Leaves(np)[0].KeyView(), key) > 0) {
      return Status::NotFound("entry not in index");
    }
  }
}

Status BTree::Scan(
    std::string_view lo, std::string_view hi,
    const std::function<bool(std::string_view, const IndexEntry&)>& cb) const {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  PageGuard leaf;
  DORADB_RETURN_NOT_OK(DescendToLeaf(lo, /*exclusive_leaf=*/false, &leaf));
  uint16_t i = LowerBound(leaf.data(), lo);
  for (;;) {
    const uint8_t* p = leaf.data();
    const NodeHeader* h = Node(p);
    const LeafEntry* ents = Leaves(p);
    for (; i < h->count; ++i) {
      if (!hi.empty() && Compare(ents[i].KeyView(), hi) >= 0) {
        return Status::OK();
      }
      if (ents[i].deleted()) continue;
      if (!cb(ents[i].KeyView(),
              IndexEntry{ents[i].rid(), ents[i].aux, false})) {
        return Status::OK();
      }
    }
    const PageId next = h->next_leaf;
    if (next == kInvalidPageId) return Status::OK();
    PageGuard next_guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(next, &next_guard));
    next_guard.LatchShared();
    leaf.Release();
    leaf = std::move(next_guard);
    i = 0;
  }
}

Status BTree::ScanPrefix(
    std::string_view prefix,
    const std::function<bool(std::string_view, const IndexEntry&)>& cb) const {
  return Scan(prefix, PrefixUpperBound(prefix), cb);
}

int BTree::Height() const {
  ReadGuard tree(tree_latch_, TimeClass::kBufferContention);
  int height = 1;
  PageId pid = root_;
  for (;;) {
    PageGuard guard;
    if (!pool_->FetchPage(pid, &guard).ok()) return -1;
    guard.LatchShared();
    const NodeHeader* h = Node(guard.data());
    if (h->level == 0) return height;
    pid = h->child0;
    ++height;
  }
}

Status BTree::CheckIntegrity() const {
  WriteGuard tree(tree_latch_, TimeClass::kBufferContention);
  // Iterative BFS over internal levels, then walk the leaf chain checking
  // global key ordering.
  std::vector<PageId> level_pages{root_};
  for (;;) {
    std::vector<PageId> next_level;
    bool is_leaf_level = false;
    for (PageId pid : level_pages) {
      PageGuard guard;
      DORADB_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
      const uint8_t* p = guard.data();
      const NodeHeader* h = Node(p);
      if (h->level == 0) {
        is_leaf_level = true;
        const LeafEntry* ents = Leaves(p);
        for (uint16_t i = 1; i < h->count; ++i) {
          if (Compare(ents[i - 1].KeyView(), ents[i].KeyView()) > 0) {
            return Status::Corruption("leaf keys out of order");
          }
        }
      } else {
        const InternalEntry* ents = Internals(p);
        if (h->count == 0) return Status::Corruption("empty internal node");
        for (uint16_t i = 1; i < h->count; ++i) {
          if (Compare(ents[i - 1].KeyView(), ents[i].KeyView()) >= 0) {
            return Status::Corruption("internal keys out of order");
          }
        }
        next_level.push_back(h->child0);
        for (uint16_t i = 0; i < h->count; ++i) {
          next_level.push_back(ents[i].child);
        }
      }
    }
    if (is_leaf_level) break;
    level_pages = std::move(next_level);
  }
  // Leaf chain must be globally ordered.
  PageId pid = first_leaf_;
  std::string prev;
  bool have_prev = false;
  uint64_t counted = 0;
  while (pid != kInvalidPageId) {
    PageGuard guard;
    DORADB_RETURN_NOT_OK(pool_->FetchPage(pid, &guard));
    const uint8_t* p = guard.data();
    const NodeHeader* h = Node(p);
    const LeafEntry* ents = Leaves(p);
    for (uint16_t i = 0; i < h->count; ++i) {
      if (have_prev && Compare(prev, ents[i].KeyView()) > 0) {
        return Status::Corruption("leaf chain out of order");
      }
      prev = std::string(ents[i].KeyView());
      have_prev = true;
      ++counted;
    }
    pid = h->next_leaf;
  }
  if (counted != num_entries_.load(std::memory_order_relaxed)) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

}  // namespace doradb
