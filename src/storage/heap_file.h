// Heap file: unordered record storage for one table.
//
// Records are addressed by RID (page, slot) and never move across pages for
// the lifetime of the record, so indexes can store RIDs durably. Page-level
// physical consistency uses the buffer pool's frame latches; logical
// consistency is the job of the lock manager (Baseline) or DORA executors.

#ifndef DORADB_STORAGE_HEAP_FILE_H_
#define DORADB_STORAGE_HEAP_FILE_H_

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/types.h"
#include "util/spinlock.h"
#include "util/status.h"

namespace doradb {

class HeapFile {
 public:
  HeapFile(BufferPool* pool, TableId table_id);

  TableId table_id() const { return table_id_; }

  // Insert a record, stamping `lsn` on the page if valid.
  Status Insert(std::string_view record, Rid* rid, Lsn lsn = kInvalidLsn);

  // Re-insert into a specific slot (abort rollback of a delete, recovery
  // redo). Fails with kBusy if the slot was taken by a concurrent insert —
  // the §4.2.1 physical conflict that RID locks prevent.
  Status InsertAt(const Rid& rid, std::string_view record,
                  Lsn lsn = kInvalidLsn);

  // Delete, optionally returning the old image (for undo logging).
  Status Delete(const Rid& rid, std::string* old_record = nullptr,
                Lsn lsn = kInvalidLsn);

  // In-place update, optionally returning the old image.
  Status Update(const Rid& rid, std::string_view record,
                std::string* old_record = nullptr, Lsn lsn = kInvalidLsn);

  Status Get(const Rid& rid, std::string* record) const;

  // Raise the page LSN to at least `lsn` (WAL bookkeeping for operations
  // that learn their LSN only after the page mutation, i.e. inserts).
  Status StampPageLsn(PageId pid, Lsn lsn);

  // Full scan; stop early when the callback returns false.
  Status Scan(
      const std::function<bool(const Rid&, std::string_view)>& cb) const;

  uint64_t record_count() const {
    return record_count_.load(std::memory_order_relaxed);
  }
  size_t page_count() const;

  // Recovery support: replace the page list (discovered by scanning the
  // disk image) and reset volatile hints / counters.
  void AdoptPages(std::vector<PageId> pages, uint64_t record_count);
  // Ensure `pid` is tracked (redo may materialize never-flushed pages).
  void EnsureRegistered(PageId pid);

 private:
  // Pick a page to try inserting `size` bytes into; allocates when needed.
  Status PageForInsert(size_t size, PageGuard* guard, PageId* page_id);

  BufferPool* const pool_;
  const TableId table_id_;

  mutable TatasLock meta_lock_;        // guards pages_ and fill hints
  std::vector<PageId> pages_;          // all pages ever allocated, in order
  std::vector<PageId> reuse_hints_;    // pages that recently freed space
  PageId fill_page_ = kInvalidPageId;  // current append target

  std::atomic<uint64_t> record_count_{0};
};

}  // namespace doradb

#endif  // DORADB_STORAGE_HEAP_FILE_H_
