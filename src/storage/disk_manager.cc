#include "storage/disk_manager.h"

#include <cstring>

#include "util/clock.h"

namespace doradb {

DiskManager::DiskManager(uint64_t simulated_latency_ns)
    : simulated_latency_ns_(simulated_latency_ns) {}

PageId DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  const PageId id = next_page_id_++;
  const size_t extent = id / kPagesPerExtent;
  if (extent >= extents_.size()) {
    extents_.push_back(
        std::make_unique<uint8_t[]>(kPagesPerExtent * kPageSize));
  }
  return id;
}

void DiskManager::DeallocatePage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_sub(1, std::memory_order_relaxed);
  free_list_.push_back(page_id);
}

uint8_t* DiskManager::FrameFor(PageId page_id) {
  const size_t extent = page_id / kPagesPerExtent;
  const size_t off = (page_id % kPagesPerExtent) * kPageSize;
  std::lock_guard<std::mutex> g(mu_);
  if (extent >= extents_.size()) return nullptr;
  return extents_[extent].get() + off;
}

void DiskManager::SimulateLatency() {
  if (simulated_latency_ns_ == 0) return;
  const uint64_t start = Cycles::Now();
  const uint64_t target =
      static_cast<uint64_t>(simulated_latency_ns_ * Cycles::PerNanosecond());
  while (Cycles::Now() - start < target) {
  }
}

Status DiskManager::ReadPage(PageId page_id, void* out) {
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(out, frame, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const void* data) {
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(frame, data, kPageSize);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace doradb
