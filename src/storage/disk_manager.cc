#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "util/clock.h"
#include "util/sync_stats.h"

namespace doradb {

DiskManager::DiskManager(uint64_t simulated_latency_ns)
    : simulated_latency_ns_(simulated_latency_ns) {}

DiskManager::DiskManager(const std::string& data_dir,
                         uint64_t simulated_latency_ns)
    : simulated_latency_ns_(simulated_latency_ns) {
  if (data_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  path_ = data_dir + "/pages.db";
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    // Fail fast, like the WAL's segment layer: durable mode was requested,
    // and silently degrading to memory pages while checkpoints keep
    // truncating the file-backed log would lose committed data without a
    // single error surfacing.
    std::fprintf(stderr, "disk_manager: open failed for %s: %s\n",
                 path_.c_str(), std::strerror(errno));
    std::abort();
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    next_page_id_ = static_cast<PageId>(
        (static_cast<uint64_t>(size) + kPageSize - 1) / kPageSize);
  }
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    ::fdatasync(fd_);
    ::close(fd_);
  }
}

PageId DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  const PageId id = next_page_id_++;
  if (fd_ < 0) {
    const size_t extent = id / kPagesPerExtent;
    if (extent >= extents_.size()) {
      extents_.push_back(
          std::make_unique<uint8_t[]>(kPagesPerExtent * kPageSize));
    }
  }
  return id;
}

void DiskManager::DeallocatePage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_sub(1, std::memory_order_relaxed);
  free_list_.push_back(page_id);
}

void DiskManager::EnsureAllocatedThrough(PageId end) {
  std::lock_guard<std::mutex> g(mu_);
  while (next_page_id_ < end) {
    const PageId id = next_page_id_++;
    if (fd_ < 0) {
      const size_t extent = id / kPagesPerExtent;
      if (extent >= extents_.size()) {
        extents_.push_back(
            std::make_unique<uint8_t[]>(kPagesPerExtent * kPageSize));
      }
    }
  }
}

uint8_t* DiskManager::FrameFor(PageId page_id) {
  const size_t extent = page_id / kPagesPerExtent;
  const size_t off = (page_id % kPagesPerExtent) * kPageSize;
  std::lock_guard<std::mutex> g(mu_);
  if (extent >= extents_.size()) return nullptr;
  return extents_[extent].get() + off;
}

void DiskManager::SimulateLatency() {
  if (simulated_latency_ns_ == 0) return;
  const uint64_t start = Cycles::Now();
  const uint64_t target =
      static_cast<uint64_t>(simulated_latency_ns_ * Cycles::PerNanosecond());
  while (Cycles::Now() - start < target) {
  }
}

Status DiskManager::ReadPage(PageId page_id, void* out) {
  if (fd_ >= 0) {
    if (page_id >= end_page_id()) {
      return Status::IOError("page beyond device size");
    }
    SimulateLatency();
    // Short reads (file holes / ids past EOF that recovery materializes
    // from the log) read as zeroes, like a fresh extent.
    uint8_t* dst = static_cast<uint8_t*>(out);
    size_t got = 0;
    const off_t base = static_cast<off_t>(page_id) * kPageSize;
    while (got < kPageSize) {
      const ssize_t r = ::pread(fd_, dst + got, kPageSize - got,
                                base + static_cast<off_t>(got));
      if (r < 0) return Status::IOError("pread failed: " + path_);
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    std::memset(dst + got, 0, kPageSize - got);
    reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(out, frame, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const void* data) {
  if (fd_ >= 0) {
    if (page_id >= end_page_id()) {
      return Status::IOError("page beyond device size");
    }
    SimulateLatency();
    const uint8_t* src = static_cast<const uint8_t*>(data);
    size_t put = 0;
    const off_t base = static_cast<off_t>(page_id) * kPageSize;
    while (put < kPageSize) {
      const ssize_t w = ::pwrite(fd_, src + put, kPageSize - put,
                                 base + static_cast<off_t>(put));
      if (w <= 0) return Status::IOError("pwrite failed: " + path_);
      put += static_cast<size_t>(w);
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    DurabilityStats::Count(kPageStoreStream,
                           DurabilityCounter::kBytesFlushed, kPageSize);
    return Status::OK();
  }
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(frame, data, kPageSize);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::Sync() {
  if (fd_ < 0) return Status::OK();
  const bool metrics = obs::MetricsEnabled();
  const uint64_t t0 = metrics ? Cycles::Now() : 0;
  if (::fdatasync(fd_) != 0) {
    return Status::IOError("fdatasync failed: " + path_);
  }
  if (metrics) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "pages.fsync_ns", "ns");
    h->Record(static_cast<uint64_t>(Cycles::ToNanos(Cycles::Now() - t0)));
  }
  DurabilityStats::Count(kPageStoreStream, DurabilityCounter::kFsyncCalls);
  return Status::OK();
}

}  // namespace doradb
