#include "storage/disk_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>

#include "obs/health.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/fault_injector.h"
#include "util/sync_stats.h"

namespace doradb {

namespace {
// Transient-error policy for the page store, matching the WAL's segment
// layer: EINTR retries free, other pwrite errors get a few backed-off
// attempts before the write is declared failed.
constexpr int kIoRetries = 3;
constexpr uint64_t kRetryBackoffUs = 200;
}  // namespace

DiskManager::DiskManager(uint64_t simulated_latency_ns)
    : simulated_latency_ns_(simulated_latency_ns) {}

DiskManager::DiskManager(const std::string& data_dir,
                         uint64_t simulated_latency_ns)
    : simulated_latency_ns_(simulated_latency_ns) {
  if (data_dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(data_dir, ec);
  path_ = data_dir + "/pages.db";
  fd_ = FaultInjector::Default().Open(path_.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd_ < 0) {
    // Durable mode was requested and the medium refused it. Silently
    // falling back to memory pages — while checkpoints keep truncating the
    // file-backed log — would lose committed data without a single error
    // surfacing; aborting would take reads down with the writes. Degrade
    // instead: every page I/O on this store fails with the parked error.
    Poison(Status::IOError("pages: open failed: " + path_ + ": " +
                           std::strerror(errno)));
    return;
  }
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size > 0) {
    next_page_id_ = static_cast<PageId>(
        (static_cast<uint64_t>(size) + kPageSize - 1) / kPageSize);
  }
}

DiskManager::~DiskManager() {
  if (fd_ >= 0) {
    // Close-time sync failure cannot be returned; at least count and log
    // it instead of silently losing the last flushed pages.
    if (::fdatasync(fd_) != 0 && !poisoned_) {
      obs::EngineHealth::Default().CountIOError();
      std::fprintf(stderr,
                   "disk_manager: close-time fdatasync failed for %s: %s\n",
                   path_.c_str(), std::strerror(errno));
    }
    ::close(fd_);
  }
}

PageId DiskManager::AllocatePage() {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    return id;
  }
  const PageId id = next_page_id_++;
  if (fd_ < 0) {
    const size_t extent = id / kPagesPerExtent;
    if (extent >= extents_.size()) {
      extents_.push_back(
          std::make_unique<uint8_t[]>(kPagesPerExtent * kPageSize));
    }
  }
  return id;
}

void DiskManager::DeallocatePage(PageId page_id) {
  std::lock_guard<std::mutex> g(mu_);
  allocated_.fetch_sub(1, std::memory_order_relaxed);
  free_list_.push_back(page_id);
}

void DiskManager::EnsureAllocatedThrough(PageId end) {
  std::lock_guard<std::mutex> g(mu_);
  while (next_page_id_ < end) {
    const PageId id = next_page_id_++;
    if (fd_ < 0) {
      const size_t extent = id / kPagesPerExtent;
      if (extent >= extents_.size()) {
        extents_.push_back(
            std::make_unique<uint8_t[]>(kPagesPerExtent * kPageSize));
      }
    }
  }
}

uint8_t* DiskManager::FrameFor(PageId page_id) {
  const size_t extent = page_id / kPagesPerExtent;
  const size_t off = (page_id % kPagesPerExtent) * kPageSize;
  std::lock_guard<std::mutex> g(mu_);
  if (extent >= extents_.size()) return nullptr;
  return extents_[extent].get() + off;
}

void DiskManager::SimulateLatency() {
  if (simulated_latency_ns_ == 0) return;
  const uint64_t start = Cycles::Now();
  const uint64_t target =
      static_cast<uint64_t>(simulated_latency_ns_ * Cycles::PerNanosecond());
  while (Cycles::Now() - start < target) {
  }
}

Status DiskManager::Poison(Status s) {
  // One-way latch, first error wins (later failures keep their counters).
  obs::EngineHealth::Default().CountIOError();
  if (!poisoned_) {
    poisoned_ = true;
    io_status_ = s;
    obs::EngineHealth::Default().Degrade(io_status_.ToString());
    std::fprintf(stderr, "disk_manager: degraded: %s\n",
                 io_status_.ToString().c_str());
  }
  return io_status_;
}

Status DiskManager::ReadPage(PageId page_id, void* out) {
  if (poisoned_ && fd_ < 0) return io_status_;  // born poisoned: no medium
  if (fd_ >= 0) {
    if (page_id >= end_page_id()) {
      return Status::IOError("page beyond device size");
    }
    SimulateLatency();
    // Short reads (file holes / ids past EOF that recovery materializes
    // from the log) read as zeroes, like a fresh extent.
    uint8_t* dst = static_cast<uint8_t*>(out);
    size_t got = 0;
    const off_t base = static_cast<off_t>(page_id) * kPageSize;
    while (got < kPageSize) {
      const ssize_t r = ::pread(fd_, dst + got, kPageSize - got,
                                base + static_cast<off_t>(got));
      if (r < 0) return Status::IOError("pread failed: " + path_);
      if (r == 0) break;  // EOF
      got += static_cast<size_t>(r);
    }
    std::memset(dst + got, 0, kPageSize - got);
    reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(out, frame, kPageSize);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::WritePage(PageId page_id, const void* data) {
  if (poisoned_) return io_status_;
  if (fd_ >= 0) {
    if (page_id >= end_page_id()) {
      return Status::IOError("page beyond device size");
    }
    SimulateLatency();
    const uint8_t* src = static_cast<const uint8_t*>(data);
    size_t put = 0;
    int attempts = 0;
    const off_t base = static_cast<off_t>(page_id) * kPageSize;
    // Short writes continue from the written prefix; EINTR retries free;
    // other errors get bounded backed-off retries before failing the page.
    while (put < kPageSize) {
      const ssize_t w = FaultInjector::Default().Pwrite(
          fd_, src + put, kPageSize - put, base + static_cast<off_t>(put),
          path_.c_str());
      if (w > 0) {
        put += static_cast<size_t>(w);
        continue;
      }
      if (w < 0 && errno == EINTR) continue;
      if (attempts >= kIoRetries) {
        obs::EngineHealth::Default().CountIOError();
        return Status::IOError("pages: pwrite failed: " + path_ + ": " +
                               std::strerror(w < 0 ? errno : EIO));
      }
      obs::EngineHealth::Default().CountRetry();
      NapMicros(kRetryBackoffUs << attempts);
      ++attempts;
    }
    writes_.fetch_add(1, std::memory_order_relaxed);
    DurabilityStats::Count(kPageStoreStream,
                           DurabilityCounter::kBytesFlushed, kPageSize);
    return Status::OK();
  }
  uint8_t* frame = FrameFor(page_id);
  if (frame == nullptr) return Status::IOError("page beyond device size");
  SimulateLatency();
  std::memcpy(frame, data, kPageSize);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::Sync() {
  if (poisoned_) return io_status_;
  if (fd_ < 0) return Status::OK();
  const bool metrics = obs::MetricsEnabled();
  const uint64_t t0 = metrics ? Cycles::Now() : 0;
  // fsyncgate rule, same as the WAL's segment layer: after a failed
  // fdatasync the kernel may have marked dirty pages clean, so a retried
  // "success" proves nothing about the pages this sync was vouching for.
  // Latch the store failed — checkpoints stop publishing horizons over it.
  if (FaultInjector::Default().Fdatasync(fd_, path_.c_str()) != 0) {
    return Poison(Status::IOError("pages: fdatasync failed: " + path_ + ": " +
                                  std::strerror(errno)));
  }
  if (metrics) {
    static Histogram* h = obs::MetricsRegistry::Default().GetHistogram(
        "pages.fsync_ns", "ns");
    h->Record(static_cast<uint64_t>(Cycles::ToNanos(Cycles::Now() - t0)));
  }
  DurabilityStats::Count(kPageStoreStream, DurabilityCounter::kFsyncCalls);
  return Status::OK();
}

}  // namespace doradb
