#include "storage/slotted_page.h"

#include <vector>

namespace doradb {

void SlottedPage::Init(PageId page_id, TableId table_id) {
  std::memset(buf_, 0, kPageSize);
  Header* h = header();
  h->base.page_id = page_id;
  h->base.owner_id = table_id;
  h->base.page_type = PageType::kHeap;
  h->base.page_lsn = kInvalidLsn;
  h->slot_count = 0;
  h->free_space_off = sizeof(Header);
  h->record_count = 0;
  h->next_page = kInvalidPageId;
}

size_t SlottedPage::ContiguousFree() const {
  const Header* h = header();
  const size_t dir_bytes = sizeof(Slot) * h->slot_count;
  const size_t dir_start = kPageSize - dir_bytes;
  return dir_start - h->free_space_off;
}

size_t SlottedPage::FreeSpace() const {
  // Conservative: assume a new slot entry is needed.
  const size_t c = ContiguousFree();
  return c < sizeof(Slot) ? 0 : c - sizeof(Slot);
}

bool SlottedPage::SlotOccupied(SlotId s) const {
  return s < header()->slot_count && slot(s).offset != 0;
}

Status SlottedPage::Insert(std::string_view data, SlotId* out) {
  Header* h = header();
  // Look for a reusable free slot first: RID stability requires never
  // shifting live slots, and reuse bounds directory growth.
  SlotId target = h->slot_count;
  for (SlotId i = 0; i < h->slot_count; ++i) {
    if (slot(i).offset == 0) {
      target = i;
      break;
    }
  }
  const bool new_slot = (target == h->slot_count);
  const size_t need = data.size() + (new_slot ? sizeof(Slot) : 0);
  if (ContiguousFree() < need) {
    Compact();
    if (ContiguousFree() < need) return Status::Full("page full");
  }
  if (new_slot) h->slot_count++;
  Slot& s = slot(target);
  s.offset = h->free_space_off;
  s.length = static_cast<uint16_t>(data.size());
  std::memcpy(buf_ + s.offset, data.data(), data.size());
  h->free_space_off += static_cast<uint16_t>(data.size());
  h->record_count++;
  *out = target;
  return Status::OK();
}

Status SlottedPage::InsertAt(SlotId target, std::string_view data) {
  Header* h = header();
  if (target < h->slot_count && slot(target).offset != 0) {
    return Status::Busy("slot occupied");
  }
  const bool new_slots = target >= h->slot_count;
  const size_t added_dir =
      new_slots ? sizeof(Slot) * (target + 1 - h->slot_count) : 0;
  if (ContiguousFree() < data.size() + added_dir) {
    Compact();
    if (ContiguousFree() < data.size() + added_dir) {
      return Status::Full("page full");
    }
  }
  if (new_slots) {
    for (SlotId i = h->slot_count; i <= target; ++i) {
      slot(i).offset = 0;
      slot(i).length = 0;
    }
    h->slot_count = static_cast<uint16_t>(target + 1);
  }
  Slot& s = slot(target);
  s.offset = h->free_space_off;
  s.length = static_cast<uint16_t>(data.size());
  std::memcpy(buf_ + s.offset, data.data(), data.size());
  h->free_space_off += static_cast<uint16_t>(data.size());
  h->record_count++;
  return Status::OK();
}

Status SlottedPage::Delete(SlotId target) {
  Header* h = header();
  if (!SlotOccupied(target)) return Status::NotFound("empty slot");
  slot(target).offset = 0;
  slot(target).length = 0;
  h->record_count--;
  return Status::OK();
}

Status SlottedPage::Update(SlotId target, std::string_view data) {
  Header* h = header();
  if (!SlotOccupied(target)) return Status::NotFound("empty slot");
  Slot& s = slot(target);
  if (data.size() <= s.length) {
    // Shrink / same size: overwrite in place.
    std::memcpy(buf_ + s.offset, data.data(), data.size());
    s.length = static_cast<uint16_t>(data.size());
    return Status::OK();
  }
  // Grow: relocate within the page. Free the old copy so compaction can
  // reclaim its bytes, keeping a copy to restore on failure.
  const std::string old_copy(reinterpret_cast<const char*>(buf_ + s.offset),
                             s.length);
  s.offset = 0;
  if (ContiguousFree() < data.size()) {
    Compact();
    if (ContiguousFree() < data.size()) {
      // Not enough room even compacted: restore the old record (its bytes
      // were just freed, so it is guaranteed to fit) and report kFull —
      // higher layers treat that as "relocate the record to another page".
      s.offset = h->free_space_off;
      s.length = static_cast<uint16_t>(old_copy.size());
      std::memcpy(buf_ + s.offset, old_copy.data(), old_copy.size());
      h->free_space_off += static_cast<uint16_t>(old_copy.size());
      return Status::Full("record does not fit after growth");
    }
  }
  s.offset = h->free_space_off;
  s.length = static_cast<uint16_t>(data.size());
  std::memcpy(buf_ + s.offset, data.data(), data.size());
  h->free_space_off += static_cast<uint16_t>(data.size());
  return Status::OK();
}

Status SlottedPage::Get(SlotId target, std::string_view* data) const {
  if (!SlotOccupied(target)) return Status::NotFound("empty slot");
  const Slot& s = slot(target);
  *data = std::string_view(reinterpret_cast<const char*>(buf_ + s.offset),
                           s.length);
  return Status::OK();
}

void SlottedPage::Compact() {
  Header* h = header();
  std::vector<uint8_t> tmp(kPageSize);
  uint16_t write_off = sizeof(Header);
  for (SlotId i = 0; i < h->slot_count; ++i) {
    Slot& s = slot(i);
    if (s.offset == 0) continue;
    std::memcpy(tmp.data() + write_off, buf_ + s.offset, s.length);
    s.offset = write_off;
    write_off += s.length;
  }
  std::memcpy(buf_ + sizeof(Header), tmp.data() + sizeof(Header),
              write_off - sizeof(Header));
  h->free_space_off = write_off;
}

}  // namespace doradb
