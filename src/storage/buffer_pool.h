// Buffer pool with CLOCK replacement (the Shore-MT substrate's design).
//
// All tables share one pool ("all data resides in the same bufferpool",
// §4.1.1 — DORA's partitioning is purely logical). Frames are pinned by
// PageGuard RAII handles; physical consistency within a page is protected by
// a per-frame reader-writer latch, attributed to TimeClass::kBufferContention
// when contended.
//
// WAL rule: a dirty page may only be written back after the log has been
// flushed up to the page's LSN; the pool calls the registered wal-flush
// callback before every dirty eviction/flush.

#ifndef DORADB_STORAGE_BUFFER_POOL_H_
#define DORADB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/types.h"
#include "util/rwlatch.h"
#include "util/spinlock.h"
#include "util/status.h"

namespace doradb {

class BufferPool;

// RAII pin on a page frame. Move-only. Latching is explicit (callers decide
// shared vs exclusive); the destructor releases any held latch and the pin.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_idx, uint8_t* data);
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool Valid() const { return pool_ != nullptr; }

  void LatchShared();
  void LatchExclusive();
  void Unlatch();

  // Mark the frame dirty (must hold the exclusive latch).
  void MarkDirty();

  uint8_t* data() { return data_; }
  SlottedPage AsSlotted() { return SlottedPage(data_); }

  // Unpin (and unlatch) immediately.
  void Release();

 private:
  enum class LatchState { kNone, kShared, kExclusive };

  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  uint8_t* data_ = nullptr;
  LatchState latch_state_ = LatchState::kNone;
};

class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t num_frames);
  ~BufferPool();

  // Called with the page LSN before any dirty page write-back.
  void SetWalFlushCallback(std::function<void(Lsn)> cb) {
    wal_flush_ = std::move(cb);
  }

  // Allocate + pin a fresh, zero-initialized page.
  Status NewPage(PageGuard* out, PageId* page_id);

  // Pin an existing page, reading it from disk on miss.
  Status FetchPage(PageId page_id, PageGuard* out);

  Status FlushPage(PageId page_id);
  Status FlushAll();

  // Crash simulation: drop every frame WITHOUT writing dirty pages back.
  // All pins must have been released (the system is quiesced).
  void DiscardAll();

  size_t num_frames() const { return num_frames_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::atomic<uint32_t> pin_count{0};
    bool referenced = false;
    bool dirty = false;
    RwLatch latch;
  };

  // Find a free or evictable frame; returns false if every frame is pinned.
  // Called with map_lock_ held; may perform write-back I/O.
  bool AllocateFrame(size_t* out_idx);

  void Unpin(size_t frame_idx);

  uint8_t* FrameData(size_t idx) { return slab_.get() + idx * kPageSize; }

  DiskManager* const disk_;
  const size_t num_frames_;
  std::unique_ptr<uint8_t[]> slab_;
  std::unique_ptr<Frame[]> frames_;

  TatasLock map_lock_;  // guards page_table_, frame metadata, clock hand
  std::unordered_map<PageId, size_t> page_table_;
  size_t clock_hand_ = 0;

  std::function<void(Lsn)> wal_flush_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace doradb

#endif  // DORADB_STORAGE_BUFFER_POOL_H_
