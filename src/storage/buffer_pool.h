// Buffer pool with CLOCK replacement (the Shore-MT substrate's design).
//
// All tables share one pool ("all data resides in the same bufferpool",
// §4.1.1 — DORA's partitioning is purely logical). Frames are pinned by
// PageGuard RAII handles; physical consistency within a page is protected by
// a per-frame reader-writer latch, attributed to TimeClass::kBufferContention
// when contended.
//
// WAL rule: a dirty page may only be written back after the log has been
// flushed up to the page's LSN; the pool calls the registered wal-flush
// callback before every dirty eviction/flush.
//
// Checkpoint support (src/ckpt/): each frame remembers the LSN of the
// record that first dirtied it since it was last clean (its rec_lsn — the
// ARIES dirty-page-table entry) and the log partition of its most recent
// logged writer. FlushPartition() writes back only one partition's dirty
// pages — under the frame read latch, so the disk image is a consistent
// page version — and reports the minimum rec_lsn over the dirty pages it
// left behind, which is the redo-horizon contribution of the pool.

#ifndef DORADB_STORAGE_BUFFER_POOL_H_
#define DORADB_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <unordered_map>

#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/types.h"
#include "util/rwlatch.h"
#include "util/spinlock.h"
#include "util/status.h"

namespace doradb {

class BufferPool;

// RAII pin on a page frame. Move-only. Latching is explicit (callers decide
// shared vs exclusive); the destructor releases any held latch and the pin.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, size_t frame_idx, uint8_t* data);
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept;
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool Valid() const { return pool_ != nullptr; }

  void LatchShared();
  void LatchExclusive();
  void Unlatch();

  // Mark the frame dirty (must hold the exclusive latch).
  void MarkDirty();
  // Mark dirty with the dirtying record's LSN: records the frame's rec_lsn
  // (first dirtier since last clean) and attributes the write to the
  // calling thread's log partition. Heap operations use this; unlogged
  // writers (B+Tree nodes — derived state) use the plain overload and
  // never constrain the checkpoint redo horizon.
  void MarkDirty(Lsn rec_lsn);

  uint8_t* data() { return data_; }
  SlottedPage AsSlotted() { return SlottedPage(data_); }

  // Unpin (and unlatch) immediately.
  void Release();

 private:
  enum class LatchState { kNone, kShared, kExclusive };

  BufferPool* pool_ = nullptr;
  size_t frame_idx_ = 0;
  uint8_t* data_ = nullptr;
  LatchState latch_state_ = LatchState::kNone;
};

class BufferPool {
 public:
  // writer_partition value when the last dirtier is unknown (unlogged
  // writes, or pages dirtied before any logged operation touched them).
  static constexpr uint32_t kNoWriterPartition = 0xFFFFFFFFu;

  // What one fuzzy checkpoint scan observed.
  struct CheckpointScan {
    // Minimum rec_lsn over dirty pages left unflushed by this scan (~0 if
    // none): the pool's contribution to the checkpoint redo horizon.
    Lsn min_rec_lsn = ~Lsn{0};
    size_t pages_flushed = 0;   // dirty pages written back by this scan
    size_t pages_skipped = 0;   // dirty pages left to other partitions
  };

  BufferPool(DiskManager* disk, size_t num_frames);
  ~BufferPool();

  // Called with the page LSN before any dirty page write-back. Returns
  // true once the log is durable through that LSN. Returning false means
  // the flush horizon cannot reach it (poisoned log stream): the WAL rule
  // then forbids the write-back — eviction skips the victim, explicit
  // flushes fail Unavailable — because a stolen page whose records never
  // became durable would survive a crash with no log to undo it.
  void SetWalFlushCallback(std::function<bool(Lsn)> cb) {
    wal_flush_ = std::move(cb);
  }

  // Resolves the calling thread's log partition for write attribution
  // (Database wires this to LogBackend::CurrentPartition). Unset: all
  // logged writes attribute to partition 0.
  void SetPartitionResolver(std::function<uint32_t()> fn) {
    partition_of_thread_ = std::move(fn);
  }

  // Allocate + pin a fresh, zero-initialized page.
  Status NewPage(PageGuard* out, PageId* page_id);

  // Pin an existing page, reading it from disk on miss.
  Status FetchPage(PageId page_id, PageGuard* out);

  Status FlushPage(PageId page_id);
  Status FlushAll();

  // Durability point for previously flushed pages (no-op when the page
  // store is in-memory). A checkpoint's redo horizon is only valid once
  // the pages it vouches for are actually on the medium.
  Status SyncDisk() { return disk_->Sync(); }

  // Fuzzy checkpoint flush: write back dirty pages attributed to
  // `partition` (all logged-writer pages when `all_partitions`), without
  // quiescing writers — each page is copied under its frame read latch, so
  // the disk image is a consistent version even while executors keep
  // updating other pages. Dirty pages left behind report their minimum
  // rec_lsn through `scan`. Unlogged dirty pages (rec_lsn unknown) are
  // skipped entirely: B+Tree nodes are derived state, and a logged write
  // whose rec_lsn stamp is still in flight belongs to a registered
  // transaction, which the checkpoint's active-txn minimum already covers.
  Status FlushPartition(uint32_t partition, bool all_partitions,
                        CheckpointScan* scan);

  // Crash simulation: drop every frame WITHOUT writing dirty pages back.
  // All pins must have been released (the system is quiesced).
  void DiscardAll();

  size_t num_frames() const { return num_frames_; }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  friend class PageGuard;

  struct Frame {
    PageId page_id = kInvalidPageId;
    std::atomic<uint32_t> pin_count{0};
    bool referenced = false;
    // Atomic for the same reason as rec_lsn below: the checkpoint scan
    // reads it under map_lock_ while MarkDirty sets it under the frame
    // latch.
    std::atomic<bool> dirty{false};
    // LSN of the record that first dirtied this frame since it was last
    // clean (kInvalidLsn if no logged write since then) and the log
    // partition of the most recent logged writer. Atomics because the
    // checkpoint scan reads them under map_lock_ while writers mutate
    // them under the frame latch — the values feed the redo horizon, so a
    // torn read is a correctness bug, not noise. Relaxed ordering is
    // enough: a scan that misses an in-flight store is covered by the
    // writer transaction's undo-low pin (see ckpt/README.md).
    std::atomic<Lsn> rec_lsn{kInvalidLsn};
    std::atomic<uint32_t> writer_partition{kNoWriterPartition};
    RwLatch latch;
  };

  // Reset a frame's dirty-tracking metadata (after write-back or discard).
  static void CleanFrame(Frame& f) {
    f.dirty.store(false, std::memory_order_relaxed);
    f.rec_lsn.store(kInvalidLsn, std::memory_order_relaxed);
    f.writer_partition.store(kNoWriterPartition, std::memory_order_relaxed);
  }

  // Find a free or evictable frame; returns false if every frame is pinned.
  // Called with map_lock_ held; may perform write-back I/O.
  bool AllocateFrame(size_t* out_idx);

  void Unpin(size_t frame_idx);

  uint8_t* FrameData(size_t idx) { return slab_.get() + idx * kPageSize; }

  DiskManager* const disk_;
  const size_t num_frames_;
  std::unique_ptr<uint8_t[]> slab_;
  std::unique_ptr<Frame[]> frames_;

  TatasLock map_lock_;  // guards page_table_, frame metadata, clock hand
  std::unordered_map<PageId, size_t> page_table_;
  size_t clock_hand_ = 0;

  std::function<bool(Lsn)> wal_flush_;
  std::function<uint32_t()> partition_of_thread_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace doradb

#endif  // DORADB_STORAGE_BUFFER_POOL_H_
