// Page-based B+Tree index.
//
// Features required by the paper:
//  * leaf entries carry, besides the RID, an auxiliary 64-bit payload used
//    by DORA secondary indexes to store the routing fields (§4.2.2: "the
//    indexes whose accesses cannot be mapped to executors store the RID as
//    well as all the routing fields at each leaf entry");
//  * a 'deleted' flag per leaf entry — deleting transactions flag rather
//    than remove entries, so concurrent probes route through the owning
//    executor instead of observing an uncommitted delete (§4.2.2);
//  * leaf-split garbage collection: before splitting, a leaf first purges
//    flagged entries and may avoid the split entirely (§4.2.2).
//
// Concurrency: every operation holds the tree latch in shared mode; descent
// uses read-latch crabbing; leaf-local writes take the leaf latch exclusive.
// Structure modifications (splits, root growth) retry holding the tree latch
// exclusive, which excludes all other operations. Leaves are chained for
// range scans. No merge on underflow (standard engineering simplification;
// space is reclaimed by the split-time GC and slot reuse).
//
// Keys are order-preserving byte strings up to kMaxKeySize bytes; KeyBuilder
// encodes composite integer keys big-endian.

#ifndef DORADB_STORAGE_BTREE_H_
#define DORADB_STORAGE_BTREE_H_

#include <atomic>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_header.h"
#include "storage/types.h"
#include "util/rwlatch.h"
#include "util/status.h"

namespace doradb {

namespace obs {
class Counter;
}  // namespace obs

constexpr size_t kMaxKeySize = 32;

// Order-preserving composite-key encoder (big-endian integer fields).
class KeyBuilder {
 public:
  KeyBuilder& Add64(uint64_t v) {
    for (int i = 7; i >= 0; --i) Push(static_cast<uint8_t>(v >> (i * 8)));
    return *this;
  }
  KeyBuilder& Add32(uint32_t v) {
    for (int i = 3; i >= 0; --i) Push(static_cast<uint8_t>(v >> (i * 8)));
    return *this;
  }
  KeyBuilder& Add16(uint16_t v) {
    Push(static_cast<uint8_t>(v >> 8));
    Push(static_cast<uint8_t>(v));
    return *this;
  }
  KeyBuilder& Add8(uint8_t v) {
    Push(v);
    return *this;
  }
  // Fixed-width string field: padded/truncated to `width` so that key
  // comparison stays field-aligned.
  KeyBuilder& AddString(std::string_view s, size_t width) {
    for (size_t i = 0; i < width; ++i) {
      Push(i < s.size() ? static_cast<uint8_t>(s[i]) : 0);
    }
    return *this;
  }

  std::string_view View() const {
    return std::string_view(reinterpret_cast<const char*>(buf_), len_);
  }
  std::string Str() const { return std::string(View()); }
  size_t size() const { return len_; }
  void Clear() { len_ = 0; }

 private:
  void Push(uint8_t b) {
    if (len_ < kMaxKeySize) buf_[len_++] = b;
  }
  uint8_t buf_[kMaxKeySize];
  size_t len_ = 0;
};

// Smallest key strictly greater than every key with the given prefix —
// used to turn a key prefix into a [lo, hi) scan range.
std::string PrefixUpperBound(std::string_view prefix);

struct IndexEntry {
  Rid rid;
  uint64_t aux = 0;      // DORA routing-field payload for secondary indexes
  bool deleted = false;  // §4.2.2 deleted flag
};

// Memoized descent target for ProbeCached. A cursor remembers the leaf a
// previous probe landed on plus the key range that leaf covered and the
// tree's structure version at that time. A later probe for a key inside
// the remembered range can latch the leaf directly — skipping the root-to-
// leaf descent — as long as no split or root growth happened since
// (structure_version_ is only bumped by structure modifications, which run
// under the exclusive tree latch; there are no merges, so separator ranges
// never shrink any other way). Epoch-batched DORA executors keep one
// cursor per index: a drained batch sorted by key resolves neighbors from
// a single descent.
struct LeafCursor {
  PageId leaf = kInvalidPageId;
  uint64_t version = 0;
  uint8_t lo_len = 0;
  uint8_t hi_len = 0;
  bool rightmost = false;  // leaf had no right sibling at fill time
  uint8_t lo[kMaxKeySize];
  uint8_t hi[kMaxKeySize];

  bool Valid() const { return leaf != kInvalidPageId; }
  void Invalidate() { leaf = kInvalidPageId; }
};

class BTree {
 public:
  BTree(BufferPool* pool, IndexId index_id, bool unique);

  IndexId index_id() const { return index_id_; }
  bool unique() const { return unique_; }

  // Insert an entry. For unique indexes, fails with kDuplicate if a live
  // (non-deleted) entry with the same key exists; a flagged entry with the
  // same key may be superseded ("may safely re-insert a new record with the
  // same primary key", §4.2.2) — the flagged entry is dropped.
  Status Insert(std::string_view key, const IndexEntry& entry);

  // First live entry with exactly this key.
  Status Probe(std::string_view key, IndexEntry* out) const;

  // Probe through a caller-owned cursor. When `cursor` still names the
  // leaf that covers `key` (same structure version, key within the cached
  // range) the descent is skipped and the leaf is latched directly; either
  // way the cursor is refilled to the leaf this probe landed on. Exactly
  // Probe()'s semantics otherwise. The cursor is plain memory owned by one
  // thread; all cross-thread coordination stays inside the tree latches.
  Status ProbeCached(std::string_view key, IndexEntry* out,
                     LeafCursor* cursor) const;

  // All entries with exactly this key (live only unless include_deleted).
  Status ProbeAll(std::string_view key, std::vector<IndexEntry>* out,
                  bool include_deleted = false) const;

  // Physically remove the entry (key, rid).
  Status Remove(std::string_view key, const Rid& rid);

  // Set / clear the deleted flag in place (done by the committing deleter
  // outside any transaction, §4.2.2).
  Status SetDeleted(std::string_view key, const Rid& rid, bool deleted);

  // Range scan over [lo, hi); callback returns false to stop. Deleted
  // entries are skipped.
  Status Scan(std::string_view lo, std::string_view hi,
              const std::function<bool(std::string_view, const IndexEntry&)>&
                  cb) const;

  // Scan every entry with the given key prefix.
  Status ScanPrefix(std::string_view prefix,
                    const std::function<bool(std::string_view,
                                             const IndexEntry&)>& cb) const;

  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  uint64_t splits() const { return splits_.load(std::memory_order_relaxed); }
  uint64_t gc_purged() const {
    return gc_purged_.load(std::memory_order_relaxed);
  }
  // Descents skipped by ProbeCached hits on this tree.
  uint64_t descents_saved() const {
    return descents_saved_.load(std::memory_order_relaxed);
  }
  int Height() const;

  // Validate tree invariants (ordering, separator consistency); test hook.
  Status CheckIntegrity() const;

 private:
  struct NodeHeader {
    PageHeaderBase base;
    uint16_t count;
    uint16_t level;     // 0 = leaf
    PageId next_leaf;   // leaves only
    PageId child0;      // internal only: leftmost child
  };

  struct LeafEntry {
    uint8_t key_len;
    uint8_t flags;  // bit 0: deleted
    uint8_t key[kMaxKeySize];
    SlotId slot;
    PageId page;
    uint64_t aux;

    static constexpr uint8_t kDeletedBit = 1;
    Rid rid() const { return Rid{page, slot}; }
    bool deleted() const { return (flags & kDeletedBit) != 0; }
    std::string_view KeyView() const {
      return std::string_view(reinterpret_cast<const char*>(key), key_len);
    }
  };

  struct InternalEntry {
    uint8_t key_len;
    uint8_t key[kMaxKeySize];
    PageId child;

    std::string_view KeyView() const {
      return std::string_view(reinterpret_cast<const char*>(key), key_len);
    }
  };

  static constexpr size_t kLeafCapacity =
      (kPageSize - sizeof(NodeHeader)) / sizeof(LeafEntry);
  static constexpr size_t kInternalCapacity =
      (kPageSize - sizeof(NodeHeader)) / sizeof(InternalEntry);

  static NodeHeader* Node(uint8_t* p) {
    return reinterpret_cast<NodeHeader*>(p);
  }
  static const NodeHeader* Node(const uint8_t* p) {
    return reinterpret_cast<const NodeHeader*>(p);
  }
  static LeafEntry* Leaves(uint8_t* p) {
    return reinterpret_cast<LeafEntry*>(p + sizeof(NodeHeader));
  }
  static const LeafEntry* Leaves(const uint8_t* p) {
    return reinterpret_cast<const LeafEntry*>(p + sizeof(NodeHeader));
  }
  static InternalEntry* Internals(uint8_t* p) {
    return reinterpret_cast<InternalEntry*>(p + sizeof(NodeHeader));
  }
  static const InternalEntry* Internals(const uint8_t* p) {
    return reinterpret_cast<const InternalEntry*>(p + sizeof(NodeHeader));
  }

  static int Compare(std::string_view a, std::string_view b);
  static void SetLeafKey(LeafEntry* e, std::string_view key);
  static void SetInternalKey(InternalEntry* e, std::string_view key);

  // Child to descend into for `key`.
  static PageId ChildFor(const uint8_t* node, std::string_view key);
  // Index of the first leaf entry >= key.
  static uint16_t LowerBound(const uint8_t* leaf, std::string_view key);

  void InitLeaf(uint8_t* p, PageId pid);
  void InitInternal(uint8_t* p, PageId pid, uint16_t level);

  // Shared-latch descent to the leaf that may contain `key`. On return the
  // leaf guard is latched as requested; the tree shared latch must be held
  // by the caller for the whole operation.
  Status DescendToLeaf(std::string_view key, bool exclusive_leaf,
                       PageGuard* leaf) const;

  // Leaf-local insert attempt under the shared tree latch. Returns kFull if
  // a split is required.
  Status TryLeafInsert(std::string_view key, const IndexEntry& entry);

  // Insert with splits, caller holds the tree latch exclusive.
  Status ExclusiveInsert(std::string_view key, const IndexEntry& entry);
  // Recursive helper: returns (in *split_key, *split_page) the new right
  // sibling to link into the parent, if a split happened.
  Status InsertRecursive(PageId node_pid, std::string_view key,
                         const IndexEntry& entry, std::string* split_key,
                         PageId* split_page, bool* split);

  // Purge deleted entries from a full leaf (split-time GC). Returns the
  // number purged.
  uint16_t PurgeDeleted(uint8_t* leaf);

  // Check for a live duplicate in this leaf and, when superseding a flagged
  // entry is possible, drop it. Returns kDuplicate on a live conflict.
  Status UniqueCheck(uint8_t* leaf, std::string_view key);

  BufferPool* const pool_;
  const IndexId index_id_;
  const bool unique_;

  // Refill `cursor` from the latched leaf `p` (pid `pid`), or invalidate
  // it when the leaf is empty. Caller holds the tree latch.
  void FillCursor(const uint8_t* p, PageId pid, LeafCursor* cursor) const;

  mutable RwLatch tree_latch_;
  PageId root_ = kInvalidPageId;
  PageId first_leaf_ = kInvalidPageId;

  // Bumped (under the exclusive tree latch) by every structure
  // modification — leaf/internal split or root growth. Non-SMO writes
  // never move a key across leaves (PurgeDeleted and UniqueCheck compact
  // within one leaf; there are no merges), so an unchanged version means
  // every leaf still covers the same separator range it did when a cursor
  // was filled.
  std::atomic<uint64_t> structure_version_{0};

  std::atomic<uint64_t> num_entries_{0};
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> gc_purged_{0};
  mutable std::atomic<uint64_t> descents_saved_{0};
  // Registry mirror of descents_saved_, resolved once at construction so
  // the hot path records through a cached pointer.
  obs::Counter* const descents_saved_metric_;
};

}  // namespace doradb

#endif  // DORADB_STORAGE_BTREE_H_
