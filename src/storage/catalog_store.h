// CatalogStore: the durable, self-describing catalog file.
//
// `<data_dir>/catalog.db` holds everything a fresh process needs to rebuild
// the Catalog — and, through it, the DORA routing/executor wiring — before
// replaying the WAL: table and index names, their creation-order ids, each
// index's declarative key schema (IndexKeySpec) and uniqueness/secondary
// flags, and each table's routing configuration (key space + executor
// count). This closes the reopen contract the ROADMAP called out: the
// application no longer re-creates its schema before Recover(); the data
// directory describes itself (the same role the catalog plays for
// partition/routing setup in H-Store-style systems, and stored per-queue
// schema plays in queue-oriented designs).
//
// File format (little-endian), one 32-byte header + one payload:
//
//   [magic u64 'DORACAT1'][version u32][pad u32]
//   [payload_len u64][payload_crc u32][pad u32]
//   payload:
//     u32 table_count
//       per table:  u16 id | u16 name_len | name bytes
//                   u64 key_space | u32 dora_executors
//                   (v2+) u64 routing_version | u32 dataset_count
//                         | (dataset_count-1) x u64 boundary
//                         | dataset_count x u32 executor_of_dataset
//                         (dataset_count == 0: no routing override)
//     u32 index_count
//       per index:  u16 id | u16 name_len | name bytes | u16 table_id
//                   u8 unique | u8 secondary | u16 aux_offset | u8 aux_width
//                   u16 field_count | per field: u16 offset, u8 width, u8 kind
//
// Entries are stored in id order, which IS creation order (catalog ids are
// positional), so replaying the image re-issues identical ids.
//
// Durability: Save() writes a temp file, fsyncs it, renames it over
// catalog.db, and fsyncs the directory — a torn write can never replace a
// good catalog. Load() rejects a bad magic, a format version it does not
// speak, a payload CRC mismatch, or a truncated entry with a named
// Corruption status ("catalog: ..."), which Database::Recover surfaces
// instead of silently misrouting over a half-read schema.

#ifndef DORADB_STORAGE_CATALOG_STORE_H_
#define DORADB_STORAGE_CATALOG_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/catalog.h"
#include "util/status.h"

namespace doradb {

// Plain-data image of the catalog metadata: what the file stores, nothing
// the file cannot rebuild (heap page lists are rediscovered from pages.db,
// B+Trees are derived state re-created empty and rebuilt after redo).
struct CatalogImage {
  struct Table {
    TableId id = 0;
    std::string name;
    uint64_t key_space = 0;
    uint32_t dora_executors = 0;
    // Live-repartitioning override (empty routing_executors = none); see
    // TableInfo in catalog.h.
    std::vector<uint64_t> routing_boundaries;
    std::vector<uint32_t> routing_executors;
    uint64_t routing_version = 0;
  };
  struct Index {
    IndexId id = 0;
    std::string name;
    TableId table_id = 0;
    bool unique = false;
    bool secondary = false;
    IndexKeySpec key_spec;
  };
  std::vector<Table> tables;    // id order == creation order
  std::vector<Index> indexes;   // id order == creation order
};

class CatalogStore {
 public:
  static constexpr uint64_t kMagic = 0x31544143'41524F44ull;  // "DORACAT1"
  // v2 appends the per-table routing-rule section. Load() still accepts v1
  // files (no routing override); Save() always writes v2.
  static constexpr uint32_t kFormatVersion = 2;
  static constexpr uint32_t kMinFormatVersion = 1;
  static constexpr size_t kHeaderSize = 32;

  // `data_dir` is created if missing; the file is `<data_dir>/catalog.db`.
  explicit CatalogStore(const std::string& data_dir);

  const std::string& path() const { return path_; }
  bool Exists() const;

  // Atomically replace the catalog file with `img` (tmp + fsync + rename +
  // directory fsync).
  Status Save(const CatalogImage& img);

  // Read and validate the file. Named errors: "catalog: bad magic",
  // "catalog: format version mismatch", "catalog: checksum mismatch",
  // "catalog: truncated ...".
  Status Load(CatalogImage* out) const;

  // Wire codec, exposed for tests.
  static void Serialize(const CatalogImage& img, std::vector<uint8_t>* out);
  static Status Deserialize(const std::vector<uint8_t>& bytes,
                            CatalogImage* out);

 private:
  std::string dir_;
  std::string path_;
};

// Re-issue the image's DDL against an empty catalog, in creation order,
// verifying that every re-created id matches the stored one. Called by the
// Database constructor on reopen, after the page allocator has been raised
// past every logged page id (index roots allocate eagerly) and before any
// application code or recovery runs.
Status ReplayCatalogImage(const CatalogImage& img, Catalog* catalog);

}  // namespace doradb

#endif  // DORADB_STORAGE_CATALOG_STORE_H_
