// RebalanceController: closes the loop between the load heatmap and the
// engine's ticket-fenced routing migration (the "adaptive routing under
// skew" roadmap item; paper §6 names the fixed partition→executor binding
// as DORA's weakness under skewed access, §A.2.1 sketches the handoff).
//
// The controller consumes per-executor busy fractions from an
// obs::LoadHeatmap window. When one executor of a table runs at least
// `min_busy_gap` busier than the coldest executor of the same table, it
// either MOVES one of the hot executor's datasets to the cold one (hot
// owns more than one) or SPLITS the hot executor's single range at its
// midpoint and hands the upper half over. The new rule — version =
// current + 1 — is applied through DoraEngine::MigrateRoutingRule, which
// fences the cutover with a dispatch ticket, persists the assignment
// through the durable catalog, and records dora.rebalance.* metrics; the
// controller additionally prints one `DORADB_REBALANCE {json}` line per
// migration in the reporter's stderr line format.
//
// Determinism hooks (the migration test harness): the controller needs no
// thread at all — DecideFromWindow() is a pure function of a heatmap
// window, StepOnce() runs one decide+apply cycle inline, and Options can
// point at a private LoadHeatmap fed with Push()ed scripted windows. The
// optional Start()/Stop() background loop (used by benches and the demo)
// is pausable mid-run.

#ifndef DORADB_DORA_REBALANCE_H_
#define DORADB_DORA_REBALANCE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "dora/dora_engine.h"
#include "dora/routing.h"
#include "obs/heatmap.h"

namespace doradb {
namespace dora {

class RebalanceController {
 public:
  struct Options {
    // Minimum busy-fraction gap (hot - cold, in [0,1]) between two
    // executors of one table before a migration is considered.
    double min_busy_gap = 0.25;
    // Extra gate: the hot executor's windowed queue-wait p99 must be at
    // least this (0 = gate off). Filters "busy but keeping up".
    uint64_t min_qwait_p99_ns = 0;
    // Background-loop cadence and the minimum spacing between two
    // migrations it performs.
    uint64_t interval_ms = 100;
    uint64_t cooldown_ms = 0;
    // Pull a LoadHeatmap::Sweep() before each decision, so the controller
    // works without the watchdog driving sweeps. Scripted tests Push()
    // windows instead and turn this off.
    bool sweep = true;
    // Heatmap to consume; null = LoadHeatmap::Default(). Tests use a
    // private instance so scripted windows cannot leak across tests.
    obs::LoadHeatmap* heatmap = nullptr;
  };

  // One planned migration, fully describable before any lock is taken.
  struct Decision {
    TableId table = 0;
    uint32_t hot_executor = 0;   // index within the table's group
    uint32_t cold_executor = 0;
    bool split = false;          // false = whole-dataset move
    double busy_hot = 0.0;
    double busy_cold = 0.0;
    std::shared_ptr<const RoutingRule> rule;  // version = current + 1
  };

  RebalanceController(DoraEngine* engine, Options options);
  ~RebalanceController();
  RebalanceController(const RebalanceController&) = delete;
  RebalanceController& operator=(const RebalanceController&) = delete;

  // Background loop (idempotent Start/Stop).
  void Start();
  void Stop();
  // Freeze/unfreeze the loop without tearing the thread down; StepOnce()
  // still works while paused (the deterministic harness drives it).
  void Pause() { paused_.store(true, std::memory_order_relaxed); }
  void Resume() { paused_.store(false, std::memory_order_relaxed); }
  bool paused() const { return paused_.load(std::memory_order_relaxed); }

  // Plan a migration from one heatmap window. Pure: no engine state is
  // modified. Returns false when no table shows an actionable gap.
  bool DecideFromWindow(const obs::HeatmapWindow& w, Decision* out) const;

  // Execute a planned migration (fence + publish + persist + metrics +
  // DORADB_REBALANCE line).
  Status Apply(const Decision& d);

  // One synchronous cycle: optional sweep, decide from the latest window
  // (each window seq is consumed at most once), apply. True if a
  // migration was performed.
  bool StepOnce();

  uint64_t migrations() const {
    return migrations_.load(std::memory_order_relaxed);
  }
  uint64_t splits() const { return splits_.load(std::memory_order_relaxed); }
  uint64_t moves() const { return moves_.load(std::memory_order_relaxed); }
  uint64_t failed() const { return failed_.load(std::memory_order_relaxed); }

 private:
  void Loop();
  obs::LoadHeatmap& heatmap() const {
    return options_.heatmap != nullptr ? *options_.heatmap
                                       : obs::LoadHeatmap::Default();
  }

  DoraEngine* const engine_;
  const Options options_;

  std::atomic<bool> paused_{false};
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint64_t> splits_{0};
  std::atomic<uint64_t> moves_{0};
  std::atomic<uint64_t> failed_{0};

  // StepOnce state: last heatmap seq acted on (a window is only decided
  // once) and the wall time of the last migration (cooldown).
  uint64_t last_seq_ = 0;
  int64_t last_migration_ms_ = 0;
  std::mutex step_mu_;  // serializes StepOnce (loop vs. explicit calls)

  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_REBALANCE_H_
