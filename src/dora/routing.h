// Routing rules: the mapping from routing-field values to datasets to
// executors (paper §4.1.1).
//
// A routing rule partitions a table's routing-field domain into contiguous
// ranges, one per dataset; each dataset is owned by one executor. Rules are
// maintained at runtime by the resource manager, which swaps in a new rule
// version to rebalance load (§A.2.1). Dispatchers read rules lock-free via
// shared_ptr snapshots; executors re-validate ownership on dequeue, so a
// stale-routed action bounces to the right executor instead of executing on
// the wrong one.

#ifndef DORADB_DORA_ROUTING_H_
#define DORADB_DORA_ROUTING_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/types.h"
#include "util/status.h"

namespace doradb {
namespace dora {

// One immutable version of a table's routing rule.
struct RoutingRule {
  // boundaries[i] is the first routing value owned by dataset i+1; dataset 0
  // owns [0, boundaries[0]). Values >= boundaries.back() map to the last
  // dataset. Empty boundaries = single dataset.
  std::vector<uint64_t> boundaries;
  // executor (index within the table's executor group) per dataset;
  // size = boundaries.size() + 1.
  std::vector<uint32_t> executor_of_dataset;
  uint64_t version = 0;

  uint32_t DatasetOf(uint64_t value) const {
    uint32_t lo = 0, hi = static_cast<uint32_t>(boundaries.size());
    while (lo < hi) {
      const uint32_t mid = (lo + hi) / 2;
      if (value >= boundaries[mid]) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  uint32_t Route(uint64_t value) const {
    return executor_of_dataset[DatasetOf(value)];
  }

  // Evenly split [0, key_space) across `executors` datasets.
  static std::shared_ptr<const RoutingRule> Uniform(uint64_t key_space,
                                                    uint32_t executors);

  // Structural validity against a table's registered wiring: one executor
  // per dataset, boundaries strictly increasing inside (0, key_space),
  // every dataset's executor below `executors`. Shared by the engine's
  // migration path and by catalog-load adoption, so a rule can only be
  // installed (or persisted) if the other side would accept it.
  Status Validate(uint64_t key_space, uint32_t executors) const;
};

// Mutable holder of the current rule for one table. Route() — called once
// per action at dispatch and once more at admission (stale-route check) —
// is a single atomic pointer load; the mutex is paid only by Install and
// by snapshot readers. Installed rules are retained for the table's
// lifetime so a reader's raw pointer can never dangle: rules are tiny and
// rebalances are rare, so retention is bounded and cheap.
class RoutingTable {
 public:
  RoutingTable() = default;

  void Install(std::shared_ptr<const RoutingRule> rule) {
    std::lock_guard<std::mutex> g(mu_);
    current_.store(rule.get(), std::memory_order_release);
    retained_.push_back(std::move(rule));
  }

  std::shared_ptr<const RoutingRule> Current() const {
    std::lock_guard<std::mutex> g(mu_);
    return retained_.empty() ? nullptr : retained_.back();
  }

  uint32_t Route(uint64_t value) const {
    return current_.load(std::memory_order_acquire)->Route(value);
  }

 private:
  std::atomic<const RoutingRule*> current_{nullptr};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const RoutingRule>> retained_;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_ROUTING_H_
