// DORA resource manager (paper §4.1.1, §A.2.1, §A.4):
//  * monitors per-executor load and rebalances routing rules when the load
//    assigned to an executor is disproportionately large;
//  * monitors per-transaction-type abort rates and recommends serial
//    execution plans (DORA-S) for high-abort intra-parallel transactions.

#ifndef DORADB_DORA_RESOURCE_MANAGER_H_
#define DORADB_DORA_RESOURCE_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dora/dora_engine.h"

namespace doradb {
namespace dora {

// Tracks abort rates per transaction type; recommends the serial plan when
// the observed rate crosses the threshold (§A.4: "When the abort rates are
// high, DORA switches to serial execution plans").
class PlanAdvisor {
 public:
  struct Options {
    double serial_threshold = 0.10;  // switch to DORA-S above 10% aborts
    double hysteresis = 0.05;        // switch back below threshold-hysteresis
    uint64_t min_samples = 50;
  };

  explicit PlanAdvisor(Options options) : options_(options) {}
  PlanAdvisor() : PlanAdvisor(Options()) {}

  void RecordOutcome(uint32_t txn_type, bool aborted);
  bool RecommendSerial(uint32_t txn_type) const;
  double AbortRate(uint32_t txn_type) const;

 private:
  struct TypeStats {
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> aborted{0};
    std::atomic<bool> serial{false};
  };

  const Options options_;
  mutable std::mutex mu_;
  // Keyed by caller-assigned transaction-type id.
  mutable std::unordered_map<uint32_t, std::unique_ptr<TypeStats>> stats_;

  TypeStats& StatsFor(uint32_t txn_type) const;
};

// Periodically samples executor load counters and re-partitions a table's
// routing rule when imbalance exceeds the threshold. Rebalancing goes
// through DoraEngine::Rebalance, i.e. the drain-then-install system-action
// protocol of §A.2.1.
class ResourceManager {
 public:
  struct Options {
    uint64_t sample_interval_us = 50000;
    double imbalance_threshold = 2.0;  // max/mean load ratio triggering move
    bool auto_rebalance = true;
  };

  ResourceManager(DoraEngine* engine, Options options);
  ResourceManager(DoraEngine* engine)
      : ResourceManager(engine, Options()) {}
  ~ResourceManager();

  void Start();
  void Stop();

  PlanAdvisor& plan_advisor() { return advisor_; }

  // One monitoring pass (exposed for deterministic tests).
  void SampleOnce();

  uint64_t rebalances() const {
    return rebalances_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  void MaybeRebalanceTable(TableId table,
                           const std::vector<uint64_t>& loads);

  DoraEngine* const engine_;
  const Options options_;
  PlanAdvisor advisor_;

  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::unordered_map<const Executor*, uint64_t> last_load_;
  std::atomic<uint64_t> rebalances_{0};
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_RESOURCE_MANAGER_H_
