// DoraEngine: the data-oriented transaction execution engine (paper §4).
//
// Couples worker threads (executors) to disjoint datasets via per-table
// routing rules, decomposes transactions into flow graphs of actions, and
// executes them with thread-local locking. Built as a layer over the
// conventional storage manager (engine::Database), exactly as the paper's
// prototype is layered over Shore-MT (§4.3).
//
// Messaging fabric: each executor owns a lock-free MPSC inbox
// (util/mpsc_queue.h) carrying actions and completion messages alike; the
// §4.2.3 atomic multi-queue enqueue is preserved by global dispatch
// tickets (dora/ticket.h) instead of ordered queue latches. Transaction
// contexts are pooled in per-executor arenas (dora/arena.h).
//
// Usage:
//   DoraEngine engine(&db, options);
//   engine.RegisterTable(warehouse_tid, /*key_space=*/W, /*executors=*/2);
//   ...
//   engine.Start();
//   auto dtxn = engine.BeginTxn();
//   FlowGraph g; ...build phases/actions...
//   Status s = engine.Run(dtxn, std::move(g));   // blocks (closed loop)

#ifndef DORADB_DORA_DORA_ENGINE_H_
#define DORADB_DORA_DORA_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "dora/action.h"
#include "dora/arena.h"
#include "dora/executor.h"
#include "dora/routing.h"
#include "dora/ticket.h"

namespace doradb {
namespace dora {

class DoraEngine {
 public:
  struct Options {
    // Pin each executor to the core matching its global index (which is
    // also its log-partition binding) — the first step of the NUMA
    // placement roadmap item: one partition's locks, WAL, and working set
    // stay on one context. Leave off on hosts with fewer cores than
    // executors + clients.
    bool pin_threads = false;
    bool hold_table_locks = true;  // executors hold table IX across txns
    // Parked actions older than this are expired and their transactions
    // aborted with kDeadlock — the local-lock deadlock resolution the
    // paper requires the storage manager to support (§4.2.3). Local locks
    // are held only until commit, normally sub-millisecond; the margin
    // absorbs scheduling hiccups on oversubscribed hosts.
    uint64_t local_wait_timeout_us = 150000;
    // Pipelined commit with early lock release: the executor that zeroes
    // the terminal RVP appends the commit record, releases the txn's
    // thread-local locks immediately, hands the txn to a per-log-partition
    // commit-ack queue, and picks up its next action instead of blocking
    // in WaitFlushed. An ack daemon completes the client once the commit
    // GSN is stable. Safe because commit acks gate on the global GSN
    // horizon: a dependent txn's commit always carries a larger GSN, so it
    // can never be acknowledged before the txn it read from.
    bool pipelined_commit = false;
    // Epoch-batched execution (bench env: DORADB_EPOCH_BATCH). 0 = off.
    // Nonzero: a drain delivering at least this many unticketed actions is
    // executed as one epoch — granted actions run key-sorted (amortizing
    // B+Tree descents through per-executor leaf cursors), and every
    // pipelined commit that finishes inside the epoch is appended with a
    // single log-buffer reservation and acknowledged through one batched
    // ack handoff. Drains below the threshold take the per-action path
    // unchanged, so low-load latency keeps the non-batched profile.
    // Runtime-adjustable via set_epoch_batch_min (benchmarks A/B on one
    // rig).
    uint32_t epoch_batch_min = 0;
  };

  // Inbox / arena / ticket counters, aggregated over all executors.
  struct InboxStats {
    uint64_t batches = 0;        // non-empty drains
    uint64_t items = 0;          // messages those drains carried
    uint64_t wakeups = 0;        // producer-side futex wakes
    uint64_t actions = 0;        // actions executed
    uint64_t tickets = 0;        // multi-queue dispatches issued
    uint64_t arena_allocs = 0;   // DoraTxn contexts ever constructed
    uint64_t arena_recycles = 0; // contexts returned for reuse
    uint64_t epoch_groups = 0;   // key-sorted epoch groups executed
    uint64_t epoch_actions = 0;  // actions those groups carried

    InboxStats operator-(const InboxStats& rhs) const {
      InboxStats d;
      d.batches = batches - rhs.batches;
      d.items = items - rhs.items;
      d.wakeups = wakeups - rhs.wakeups;
      d.actions = actions - rhs.actions;
      d.tickets = tickets - rhs.tickets;
      d.arena_allocs = arena_allocs - rhs.arena_allocs;
      d.arena_recycles = arena_recycles - rhs.arena_recycles;
      d.epoch_groups = epoch_groups - rhs.epoch_groups;
      d.epoch_actions = epoch_actions - rhs.epoch_actions;
      return d;
    }
    double actions_per_drain() const {
      return batches == 0 ? 0.0 : static_cast<double>(items) / batches;
    }
    double wakeups_per_action() const {
      return actions == 0 ? 0.0 : static_cast<double>(wakeups) / actions;
    }
  };

  DoraEngine(Database* db, Options options);
  DoraEngine(Database* db) : DoraEngine(db, Options()) {}
  ~DoraEngine();
  DoraEngine(const DoraEngine&) = delete;
  DoraEngine& operator=(const DoraEngine&) = delete;

  // Declare a table and its executor group. Must precede Start().
  // `key_space` is the routing-field domain size (used for the initial
  // uniform partitioning). The configuration is recorded in the catalog
  // (durable mode: written through to catalog.db), so a later lifetime
  // can rebuild the same wiring with RegisterFromCatalog.
  void RegisterTable(TableId table, uint64_t key_space, uint32_t executors);

  // Self-contained reopen: register every catalog table that carries a
  // persisted DORA configuration, in creation (id) order — reproducing
  // each table's executor group and routing rule without workload code.
  // Executor global indexes (and with them log-partition/core bindings)
  // follow creation order, which matches the prior lifetime only if the
  // workload also registered in creation order; any assignment is
  // functionally equivalent — routing is per table. Returns the number of
  // tables registered. Must precede Start().
  uint32_t RegisterFromCatalog();

  void Start();
  void Stop();

  Database* db() { return db_; }

  // --- transaction execution (dispatcher side) ---

  DoraTxnRef BeginTxn();

  // Materialize the graph, dispatch phase 0 (ticket-ordered enqueue), wait
  // for the terminal RVP. Returns the transaction's final status.
  Status Run(const DoraTxnRef& dtxn, FlowGraph&& graph);

  // --- routing ---

  uint32_t RouteIndex(TableId table, uint64_t routing_value) const;
  Executor* RouteToExecutor(TableId table, uint64_t routing_value) const;
  Executor* ExecutorAt(TableId table, uint32_t index) const;
  uint32_t executors_of(TableId table) const;
  const RoutingTable* routing_of(TableId table) const;
  uint64_t key_space_of(TableId table) const;
  // Registered table ids in registration order (stable decision order for
  // the rebalance controller).
  std::vector<TableId> RegisteredTables() const;

  // Ticket-fenced live migration of a table's routing rule (§A.2.1 made
  // online). The fence is a system transaction whose first phase takes a
  // whole-dataset X lock on every executor whose ownership differs between
  // the current rule and `rule` — a multi-executor phase, so DispatchPhase
  // stamps it with a dispatch ticket. Every action ticketed before the
  // fence is admitted ahead of it (FIFO inboxes + ticket order) and
  // executes under the old rule; the X grant doubles as the drain barrier
  // (commit-held local locks). Phase 2 publishes the rule while the
  // affected executors are still locked out; anything admitted afterwards
  // re-checks routing at admission and bounces to its new owner — there is
  // no window in which two executors accept the same range, and §4.2.3
  // deadlock freedom is untouched because the fence is ordered by the same
  // ticket discipline as any other multi-queue enqueue.
  //
  // `rule->version` must exceed the current version; a concurrent migration
  // that wins the fence first fails this one with kBusy (the check runs
  // under the X locks). After publication the assignment is
  // written through the durable catalog (SetDoraRouting) so the split
  // survives restart; a persist failure is returned (the rule stays live
  // in memory — routing is a dispatch concern, recovery does not depend on
  // it). Emits dora.rebalance.{splits,moved_ranges,fence_wait_ns};
  // `fence_wait_ns` (optional) receives the fence's wall-clock cost.
  Status MigrateRoutingRule(TableId table,
                            std::shared_ptr<const RoutingRule> rule,
                            uint64_t* fence_wait_ns = nullptr);

  // Legacy entry (resource manager, tests): stamps version = current + 1
  // when the caller left it unset or stale, then migrates as above.
  Status Rebalance(TableId table, std::shared_ptr<const RoutingRule> rule);

  const Options& options() const { return options_; }
  TicketLine& tickets() { return tickets_; }

  // Live epoch-batching threshold (seeded from Options::epoch_batch_min).
  // Mutable at runtime: executors read it per drain, so benchmarks can A/B
  // batching on one warmed-up rig and the adaptive threshold can be tuned
  // without a restart. 0 disables batching.
  uint32_t epoch_batch_min() const {
    return epoch_batch_min_.load(std::memory_order_relaxed);
  }
  void set_epoch_batch_min(uint32_t v) {
    epoch_batch_min_.store(v, std::memory_order_relaxed);
  }

  // First error parked by RegisterTable's catalog write-through (OK when
  // every registration persisted). Run() refuses with it, so a durable
  // database can never execute on routing wiring a reopened lifetime
  // would not see.
  const Status& registration_status() const { return registration_status_; }

  // --- internal (executor callbacks) ---

  // Enqueue all actions of `phase`. Phases targeting more than one
  // executor are stamped with a global ticket and published afterwards
  // (§4.2.3 ordering without queue latches).
  void DispatchPhase(DoraTxn* dtxn, size_t phase);

  // Re-route a stale-routed action to its current owner (after a routing
  // rule change).
  void Redispatch(Action* a);

  // Commit/abort + completion fan-out; runs on the executor that zeroed the
  // terminal (or aborting) RVP. `self` is that executor (null when called
  // off-executor, e.g. from tests): while it is mid-epoch, pipelined
  // commits are parked in its epoch_commits_ and appended together at
  // epoch close (CommitEpoch) instead of one reservation each.
  void FinishTxn(DoraTxn* dtxn, Executor* self = nullptr);

  // Close `self`'s epoch: bulk-append every deferred commit record (one
  // log-buffer reservation), then fan out completions and acknowledge —
  // inline for commits the flush horizon already covers, else one batched
  // handoff to the executor's ack queue. GSNs are drawn inside the bulk
  // append, BEFORE any of the epoch's locks release, so a dependent
  // transaction admitted afterwards still draws a larger commit GSN — the
  // invariant pipelined ack ordering rests on.
  void CommitEpoch(Executor* self);

  // --- stats ---
  uint64_t txns_committed() const {
    return committed_.load(std::memory_order_relaxed);
  }
  uint64_t txns_aborted() const {
    return aborted_.load(std::memory_order_relaxed);
  }
  // Commits that went through the pipelined (ELR) path.
  uint64_t txns_pipelined() const {
    return pipelined_.load(std::memory_order_relaxed);
  }
  // Pipelined commits acknowledged inline because the flush horizon
  // already covered their commit GSN (no ack-daemon round trip).
  uint64_t txns_acked_inline() const {
    return acked_inline_.load(std::memory_order_relaxed);
  }
  InboxStats CollectInboxStats() const;
  std::vector<Executor*> AllExecutors() const;

 private:
  friend class Executor;

  // One commit-ack queue per log partition (§5.4 flush pipelining): FIFO
  // of transactions whose commit record is appended but not yet stable.
  // Queues are grouped into shards, one daemon thread each; the shard
  // count is capped at the core count so constrained hosts get one daemon
  // sweeping every queue instead of an oversubscribed thread herd.
  struct CommitAck {
    DoraTxn* dtxn = nullptr;  // carries one reference
    Lsn gsn = kInvalidLsn;
  };
  struct AckShard {
    std::mutex mu;
    std::condition_variable cv;
    // (log partition, its FIFO of unacknowledged commits)
    std::vector<std::pair<uint32_t, std::deque<CommitAck>>> queues;
    bool stop = false;
    std::thread daemon;
  };

  // `idx` is the shard's position in ack_shards_, used only to name the
  // daemon's watchdog heartbeat ("dora.ack.<idx>").
  void AckLoop(AckShard* shard, size_t idx);
  // Completion fan-out (§A.1 steps 10-12): hand the txn back to every
  // executor that ran one of its actions so they release local locks.
  // Each message carries one reference on the context.
  void FanOutCompletions(DoraTxn* dtxn);
  // Durable-now finalize for a pipelined commit acknowledged on the
  // executor (no ack-daemon round trip): CommitFinalize + counters +
  // latency histogram + client completion. Shared by FinishTxn's inline
  // fast path and CommitEpoch's covered prefix.
  void FinalizeInline(DoraTxn* dtxn);

  struct TableGroup {
    TableId table;
    uint64_t key_space;
    RoutingTable routing;
    std::vector<std::unique_ptr<Executor>> executors;
  };

  Database* const db_;
  const Options options_;
  // Live mirror of Options::epoch_batch_min (see epoch_batch_min()).
  std::atomic<uint32_t> epoch_batch_min_;
  bool started_ = false;
  Status registration_status_;

  std::unordered_map<TableId, std::unique_ptr<TableGroup>> tables_;
  uint32_t next_global_index_ = 0;

  // Long-lived system transaction through which executors hold table IX
  // locks across client transactions (§4.1.3: "Each executor implicitly
  // holds an intent exclusive (IX) lock for the whole table").
  std::unique_ptr<Transaction> system_txn_;

  TicketLine tickets_;

  // Per-executor transaction-context arenas; clients pick one with a
  // sticky thread-local slot.
  std::vector<std::unique_ptr<TxnArena>> arenas_;
  std::atomic<uint64_t> next_client_slot_{0};

  std::vector<std::unique_ptr<AckShard>> ack_shards_;

  std::atomic<uint64_t> committed_{0};
  std::atomic<uint64_t> aborted_{0};
  std::atomic<uint64_t> pipelined_{0};
  std::atomic<uint64_t> acked_inline_{0};

  // Metrics-registry callback tokens (registered by Start, released by
  // Stop — the callbacks read this engine's executors, so they must not
  // outlive it in the process-wide registry).
  std::vector<uint64_t> obs_tokens_;

  // Load-heatmap source token (obs/heatmap.h): Start registers a source
  // that snapshots every executor's raw load counters; Stop unregisters it
  // before stopping executors, for the same lifetime reason as above.
  uint64_t heatmap_token_ = 0;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_DORA_ENGINE_H_
