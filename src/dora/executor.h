// Executor: the worker thread bound to one or more datasets of a table
// (paper §4.1.3). It owns one lock-free MPSC inbox carrying both incoming
// actions and completion messages, and a thread-local lock table. Actions
// are served FIFO; conflicting actions park in the local lock table and
// resume when the blocking transaction's completion message releases its
// locks.
//
// Inbox protocol: producers (dispatchers and other executors) push with
// one CAS; this thread drains the whole list per iteration and parks on a
// futex only when a drain comes up empty — so an executor wakes at most
// once per batch and a push onto a busy executor costs no syscall.
// Multi-queue dispatches carry a global ticket (dora/ticket.h); drained
// ticketed actions are deferred until the published horizon covers them
// and then admitted in ticket order, preserving the §4.2.3 atomic-enqueue
// guarantee without latching any queue.
//
// Epoch-batched execution (DoraEngine::Options::epoch_batch_min): when a
// drain's backlog (unticketed ready actions plus the ticket-covered
// deferred prefix) reaches that threshold, the executor admits everything
// exactly as usual — FIFO, then ticket order — but executes the GRANTED
// subset as one key-sorted run, amortizing B+Tree descents via per-index
// leaf cursors (ProbeIndex), and closes the epoch with one bulk
// commit-record append plus batched acks for every transaction that
// finished inside it. Lock ADMISSION order is untouched (deadlock freedom
// and ticket ordering rest on admission, not execution, order; granted
// actions of distinct transactions can never conflict), so reordering
// execution is free. See src/dora/README.md for the full argument.

#ifndef DORADB_DORA_EXECUTOR_H_
#define DORADB_DORA_EXECUTOR_H_

#include <atomic>
#include <memory>
#include <string_view>
#include <thread>
#include <vector>

#include "dora/action.h"
#include "dora/local_lock_table.h"
#include "obs/heartbeat.h"
#include "obs/metrics.h"
#include "storage/btree.h"
#include "util/mpsc_queue.h"

namespace doradb {
namespace dora {

class DoraEngine;

class Executor {
 public:
  // `global_index` defines the executor's position in the engine-wide
  // order: its log-partition binding, its pinned core (Options::
  // pin_threads), and its arena all key off it.
  Executor(DoraEngine* engine, Database* db, TableId table,
           uint32_t index_in_table, uint32_t global_index);

  void Start();
  void Stop();

  TableId table() const { return table_; }
  uint32_t index_in_table() const { return index_in_table_; }
  uint32_t global_index() const { return global_index_; }

  // Lock-free inbox; push Action / CompletionMsg / StopMsg nodes.
  MpscQueue& inbox() { return inbox_; }

  // Preferred producer entry point: stamps the entry's enqueue timestamp
  // and the depth accounting (metrics on), then pushes. Pushing to
  // inbox() directly stays correct — such messages just don't feed the
  // queue-wait histogram or the depth gauge.
  void PushToInbox(InboxEntry* entry);

  // --- stats ---
  uint64_t actions_executed() const {
    return actions_executed_.load(std::memory_order_relaxed);
  }
  uint64_t local_lock_acquires() const { return locks_.acquires(); }
  uint64_t local_lock_conflicts() const { return locks_.conflicts(); }
  // Non-empty inbox drains and the messages they carried.
  uint64_t inbox_batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  uint64_t inbox_items() const {
    return items_.load(std::memory_order_relaxed);
  }
  // Producer-side futex wakes (pushes that found this executor parked).
  uint64_t inbox_wakeups() const { return inbox_.wakeups(); }
  // Load metric for the resource manager.
  uint64_t load_counter() const {
    return load_counter_.load(std::memory_order_relaxed);
  }
  // Messages ever pushed via PushToInbox. pushed - items approximates the
  // live inbox depth (the per-executor load gauge the repartitioning
  // roadmap item consumes); it undercounts by pushes that bypassed the
  // wrapper and by the drained-but-unprocessed window, never below zero
  // after clamping.
  uint64_t inbox_pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }
  int64_t inbox_depth() const {
    const int64_t d = static_cast<int64_t>(inbox_pushed()) -
                      static_cast<int64_t>(inbox_items());
    return d > 0 ? d : 0;
  }
  // Cycles spent inside ProcessInbox batches that did work (metrics on).
  // busy_cycles delta / wall cycles delta = the executor's busy fraction
  // over a window; the load heatmap sweeps this.
  uint64_t busy_cycles() const {
    return busy_cycles_.load(std::memory_order_relaxed);
  }
  // Per-executor queue-wait histogram (dora.exec.<g>.queue_wait_ns);
  // the heatmap computes windowed p99 from its bucket deltas.
  const Histogram* queue_wait_hist() const { return queue_wait_hist_; }
  // Per-executor epoch group-size histogram
  // (dora.exec.<g>.batch.group_size); benches fold windowed percentiles
  // from its bucket deltas.
  const Histogram* batch_group_hist() const { return batch_group_hist_; }
  // Epoch-batched execution counters: key-sorted groups formed and the
  // actions they carried (0/0 while batching is off or load stays under
  // the threshold).
  uint64_t epoch_groups() const {
    return epoch_groups_.load(std::memory_order_relaxed);
  }
  uint64_t epoch_group_actions() const {
    return epoch_group_actions_.load(std::memory_order_relaxed);
  }

  // Index probe on behalf of an action body (ActionEnv::Probe). With epoch
  // batching on, routes through this executor's per-index leaf cursor so
  // the key-sorted actions of a group amortize one B+Tree descent across
  // neighboring keys; otherwise a plain BTree::Probe. Executor-thread only.
  Status ProbeIndex(IndexId index, std::string_view key, IndexEntry* out);

 private:
  friend class DoraEngine;

  void Loop();
  // Split a drained chain into completions / ready / deferred.
  void Classify(MpscNode* chain);
  // Completions first (paper steps 11-12), then unticketed actions FIFO,
  // then the ticket-ordered admission loop. Returns true if any work ran.
  bool ProcessInbox(MpscNode* chain);
  // Admit one action: bounce if stale-routed, else local-lock + run.
  void AdmitAction(Action* a);
  // Local-lock deadlock resolution (§4.2.3): abort over-age parked waits.
  void ExpireStaleParked(uint64_t timeout_cycles);
  // Execute the woken actions in runnable_, re-checking routing first: an
  // action parked before a migration published may wake on an executor
  // that no longer owns its key — it gives the grant back and redispatches
  // instead of executing here. Index loop: ReleaseGrant can append.
  void RunRunnable();
  // Run the body (unless the txn already aborted) and report to the RVP.
  void ExecuteGranted(Action* a);
  void ReportToRvp(Action* a);
  // Epoch batch (QueCC-style): sort the captured granted actions by
  // (table, routing value), record group sizes, execute them as tight
  // per-group loops. Runs with epoch_capture_ set so FinishTxn defers
  // pipelined commits into epoch_commits_.
  void ExecuteEpochRun();
  // Close the epoch: one bulk commit-record append for every deferred
  // commit, then fan-out + acks (DoraEngine::CommitEpoch).
  void CloseEpoch();
  // Execute the captured run and close the epoch, if one is open. Called
  // at every ProcessInbox exit point so commits and lock releases are
  // never deferred past the batch that produced them.
  void FlushEpoch();

  DoraEngine* const engine_;
  Database* const db_;
  const TableId table_;
  const uint32_t index_in_table_;
  const uint32_t global_index_;

  MpscQueue inbox_;
  StopMsg stop_msg_;

  // Consumer-thread state (touched only by Loop()).
  bool stop_seen_ = false;
  std::vector<DoraTxn*> comps_;
  std::vector<Action*> ready_;
  std::vector<Action*> deferred_;  // ticketed, sorted by ticket (stable)
  std::vector<Action*> runnable_;

  // Epoch-batch state (executor thread only). While epoch_capture_ is set,
  // AdmitAction collects granted actions into epoch_run_ instead of
  // executing them, and FinishTxn parks pipelined commits in
  // epoch_commits_ for the epoch-close bulk append.
  bool epoch_capture_ = false;
  std::vector<Action*> epoch_run_;
  std::vector<DoraTxn*> epoch_commits_;
  // CommitAsyncBulk scratch (capacities survive across epochs).
  std::vector<Transaction*> commit_txns_;
  std::vector<Lsn> commit_gsns_;
  std::vector<LogRecord> commit_recs_;
  std::vector<LogRecord*> commit_rec_ptrs_;

  // Per-index leaf cursors for ProbeIndex. An executor serves one table —
  // a handful of indexes — so a linear-scanned fixed-cap vector beats any
  // map; overflow indexes simply take the uncached descent.
  static constexpr size_t kMaxCursors = 4;
  struct IndexCursor {
    IndexId index;
    LeafCursor cursor;
  };
  std::vector<IndexCursor> cursors_;

  LocalLockTable locks_;  // executor-private: no latching

  std::thread thread_;
  std::atomic<uint64_t> actions_executed_{0};
  std::atomic<uint64_t> load_counter_{0};
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> items_{0};
  std::atomic<uint64_t> pushed_{0};
  std::atomic<uint64_t> busy_cycles_{0};
  std::atomic<uint64_t> epoch_groups_{0};
  std::atomic<uint64_t> epoch_group_actions_{0};

  // Watchdog heartbeat, registered for the lifetime of Loop(). Only this
  // thread writes through it; the watchdog reads via table snapshots.
  obs::Heartbeats::Handle* hb_ = nullptr;

  // Registry-owned instrumentation, shared across executors (resolved once
  // at construction; hot paths record through the cached pointers gated on
  // obs::MetricsEnabled()).
  Histogram* batch_size_hist_;      // dora.inbox.batch_size
  Histogram* drain_wait_hist_;      // dora.inbox.drain_wait_ns
  Histogram* queue_wait_hist_;      // dora.exec.<g>.queue_wait_ns
  Histogram* batch_group_hist_;     // dora.exec.<g>.batch.group_size
  obs::Counter* ticket_deferred_;   // dora.tickets.deferred
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_EXECUTOR_H_
