// Executor: the worker thread bound to one or more datasets of a table
// (paper §4.1.3). It owns three structures: an incoming action queue, a
// completed-transaction queue, and a thread-local lock table. Actions are
// served FIFO; conflicting actions park in the local lock table and resume
// when the blocking transaction's completion message releases its locks.

#ifndef DORADB_DORA_EXECUTOR_H_
#define DORADB_DORA_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include "dora/action.h"
#include "dora/local_lock_table.h"

namespace doradb {
namespace dora {

class DoraEngine;

class Executor {
 public:
  // `global_index` defines the total order used for atomic multi-queue
  // enqueues (§4.2.3 footnote: "There is a strict ordering between
  // executors. The threads acquire the latches in that order").
  Executor(DoraEngine* engine, Database* db, TableId table,
           uint32_t index_in_table, uint32_t global_index);

  void Start();
  void Stop();

  TableId table() const { return table_; }
  uint32_t index_in_table() const { return index_in_table_; }
  uint32_t global_index() const { return global_index_; }

  // --- queue interface (incoming latched externally for atomic enqueue) ---

  std::mutex& queue_mutex() { return mu_; }
  // Requires queue_mutex() held.
  void EnqueueIncomingLocked(Action* a) { incoming_.push_back(a); }
  void Notify() { cv_.notify_one(); }

  // Completion message (§4.1.3 steps 10-12): release dtxn's local locks.
  void EnqueueCompleted(std::shared_ptr<DoraTxn> dtxn);

  // --- stats ---
  uint64_t actions_executed() const {
    return actions_executed_.load(std::memory_order_relaxed);
  }
  uint64_t local_lock_acquires() const { return locks_.acquires(); }
  uint64_t local_lock_conflicts() const { return locks_.conflicts(); }
  size_t queue_depth() const {
    std::lock_guard<std::mutex> g(mu_);
    return incoming_.size();
  }
  // Load metric for the resource manager.
  uint64_t load_counter() const {
    return load_counter_.load(std::memory_order_relaxed);
  }

 private:
  friend class DoraEngine;

  void Loop();
  // Run the body (unless the txn already aborted) and report to the RVP.
  void ExecuteGranted(Action* a);
  void ReportToRvp(Action* a);
  void FinishTxn(DoraTxn* dtxn);

  DoraEngine* const engine_;
  Database* const db_;
  const TableId table_;
  const uint32_t index_in_table_;
  const uint32_t global_index_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Action*> incoming_;
  std::deque<std::shared_ptr<DoraTxn>> completed_;
  bool stop_ = false;

  LocalLockTable locks_;  // executor-private: no latching

  std::thread thread_;
  std::atomic<uint64_t> actions_executed_{0};
  std::atomic<uint64_t> load_counter_{0};
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_EXECUTOR_H_
