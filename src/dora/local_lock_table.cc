#include "dora/local_lock_table.h"

#include "util/sync_stats.h"

namespace doradb {
namespace dora {

bool LocalLockTable::EntryGrantable(const Entry& e, const Action* a) {
  DoraTxn* txn = a->dtxn;
  if (e.x_owner != nullptr && e.x_owner != txn) return false;
  if (a->mode == LocalMode::kX) {
    for (DoraTxn* s : e.s_owners) {
      if (s != txn) return false;
    }
  }
  return true;
}

bool LocalLockTable::Grantable(const Action* a) const {
  DoraTxn* txn = a->dtxn;
  if (a->whole_dataset) {
    if (!EntryGrantable(whole_, a)) return false;
    // Conservative: a whole-dataset action waits for every exact lock held
    // by other transactions (multi-partition ops are rare, §4.1.3).
    uint32_t own_exact = 0;
    auto it = holdings_.find(txn);
    if (it != holdings_.end()) {
      for (const Holding& h : it->second) {
        if (!h.whole) ++own_exact;
      }
    }
    return exact_granted_ == own_exact;
  }
  // Exact action: must also be compatible with any whole-dataset holders.
  if (whole_.x_owner != nullptr && whole_.x_owner != txn) return false;
  // Drain-barrier fairness: a PARKED whole-dataset action (a migration
  // fence, typically) must not starve behind a steady stream of fresh
  // exact grants. Actions ticketed BEFORE the fence pass — they are the
  // in-flight work the drain waits for, and blocking one that already
  // holds locks elsewhere would close a cycle through the fence. Later-
  // ticketed and unticketed actions queue behind the barrier unless
  // their transaction already holds locks here (it must run to
  // completion for the drain to finish).
  if (!whole_.waiters.empty()) {
    const uint64_t fence_ticket = whole_.waiters.front()->ticket;
    const bool pre_fence =
        a->ticket != 0 && fence_ticket != 0 && a->ticket < fence_ticket;
    if (!pre_fence && holdings_.find(txn) == holdings_.end()) return false;
  }
  if (a->mode == LocalMode::kX) {
    for (DoraTxn* s : whole_.s_owners) {
      if (s != txn) return false;
    }
  }
  auto it = exact_.find(a->routing_value);
  if (it == exact_.end()) return true;
  return EntryGrantable(it->second, a);
}

void LocalLockTable::Grant(Action* a) {
  Entry& e = a->whole_dataset ? whole_ : exact_[a->routing_value];
  if (a->mode == LocalMode::kX) {
    e.x_owner = a->dtxn;
    ++e.x_count;
  } else {
    e.s_owners.push_back(a->dtxn);
  }
  if (!a->whole_dataset) ++exact_granted_;
  holdings_[a->dtxn].push_back(Holding{a->routing_value, a->whole_dataset});
  ++acquires_;
  ThreadStats::Local().CountLock(LockCounter::kDoraLocal);
}

bool LocalLockTable::TryAcquire(Action* a) {
  ScopedTimeClass timer(TimeClass::kDoraLocalLock);
  Entry& e = a->whole_dataset ? whole_ : exact_[a->routing_value];
  // Re-entrant grants must bypass queue fairness, or a transaction's second
  // action could queue behind a waiter that waits for that transaction.
  bool reentrant = e.x_owner == a->dtxn;
  if (!reentrant) {
    for (DoraTxn* s : e.s_owners) {
      if (s == a->dtxn) {
        reentrant = true;
        break;
      }
    }
  }
  if ((e.waiters.empty() || reentrant) && Grantable(a)) {
    Grant(a);
    return true;
  }
  a->parked_at = Cycles::Now();
  e.waiters.push_back(a);
  ++parked_;
  ++conflicts_;
  return false;
}

void LocalLockTable::CollectExpired(uint64_t deadline_cycles,
                                    std::vector<Action*>* expired,
                                    std::vector<Action*>* runnable) {
  auto sweep = [&](Entry& e) {
    for (auto it = e.waiters.begin(); it != e.waiters.end();) {
      if ((*it)->parked_at != 0 && (*it)->parked_at < deadline_cycles) {
        expired->push_back(*it);
        it = e.waiters.erase(it);
        --parked_;
      } else {
        ++it;
      }
    }
  };
  for (auto& [key, entry] : exact_) sweep(entry);
  sweep(whole_);
  // Expiring a queue head may unblock (grant) the waiters behind it.
  if (!expired->empty()) {
    for (auto& [key, entry] : exact_) WakeEntry(entry, runnable);
    WakeEntry(whole_, runnable);
  }
}

void LocalLockTable::WakeEntry(Entry& e, std::vector<Action*>* runnable) {
  while (!e.waiters.empty()) {
    Action* a = e.waiters.front();
    if (!Grantable(a)) break;  // FIFO: first blocked waiter is a barrier
    e.waiters.pop_front();
    --parked_;
    Grant(a);
    runnable->push_back(a);
  }
}

void LocalLockTable::ReleaseGrant(Action* a, std::vector<Action*>* runnable) {
  DoraTxn* txn = a->dtxn;
  auto hit = holdings_.find(txn);
  if (hit == holdings_.end()) return;
  bool found = false;
  for (auto i = hit->second.begin(); i != hit->second.end(); ++i) {
    if (i->whole == a->whole_dataset &&
        (a->whole_dataset || i->key == a->routing_value)) {
      hit->second.erase(i);
      found = true;
      break;
    }
  }
  if (!found) return;
  Entry& e = a->whole_dataset ? whole_ : exact_[a->routing_value];
  // Same undo branch as ReleaseAll: an X owner's grants all count on
  // x_count, otherwise drop one shared owner slot.
  if (e.x_owner == txn) {
    if (--e.x_count == 0) e.x_owner = nullptr;
  } else {
    for (auto s = e.s_owners.begin(); s != e.s_owners.end(); ++s) {
      if (*s == txn) {
        e.s_owners.erase(s);
        break;
      }
    }
  }
  if (!a->whole_dataset) --exact_granted_;
  if (hit->second.empty()) holdings_.erase(hit);
  if (!a->whole_dataset) {
    auto eit = exact_.find(a->routing_value);
    if (eit != exact_.end()) {
      WakeEntry(eit->second, runnable);
      if (eit->second.Free() && eit->second.x_count == 0) {
        exact_.erase(eit);
      }
    }
  }
  WakeEntry(whole_, runnable);
}

void LocalLockTable::ReleaseAll(DoraTxn* dtxn,
                                std::vector<Action*>* runnable) {
  ScopedTimeClass timer(TimeClass::kDoraLocalLock);
  auto it = holdings_.find(dtxn);
  if (it == holdings_.end()) return;

  bool released_whole = false;
  std::vector<uint64_t> touched_keys;
  for (const Holding& h : it->second) {
    Entry& e = h.whole ? whole_ : exact_[h.key];
    if (e.x_owner == dtxn) {
      if (--e.x_count == 0) e.x_owner = nullptr;
    } else {
      for (auto s = e.s_owners.begin(); s != e.s_owners.end(); ++s) {
        if (*s == dtxn) {
          e.s_owners.erase(s);
          break;
        }
      }
    }
    if (h.whole) {
      released_whole = true;
    } else {
      --exact_granted_;
      touched_keys.push_back(h.key);
    }
  }
  holdings_.erase(it);

  // Wake waiters on the entries we touched, then whole-dataset waiters,
  // then — if a whole lock was dropped — every parked exact action.
  for (uint64_t key : touched_keys) {
    auto eit = exact_.find(key);
    if (eit != exact_.end()) WakeEntry(eit->second, runnable);
  }
  WakeEntry(whole_, runnable);
  if (released_whole) {
    for (auto& [key, entry] : exact_) WakeEntry(entry, runnable);
  }
  // Drop fully-free entries so the table stays small.
  for (uint64_t key : touched_keys) {
    auto eit = exact_.find(key);
    if (eit != exact_.end() && eit->second.Free() &&
        eit->second.x_count == 0) {
      exact_.erase(eit);
    }
  }
}

}  // namespace dora
}  // namespace doradb
