#include "dora/routing.h"

namespace doradb {
namespace dora {

std::shared_ptr<const RoutingRule> RoutingRule::Uniform(uint64_t key_space,
                                                        uint32_t executors) {
  auto rule = std::make_shared<RoutingRule>();
  if (executors == 0) executors = 1;
  if (key_space < executors) key_space = executors;
  const uint64_t per = key_space / executors;
  for (uint32_t i = 1; i < executors; ++i) {
    rule->boundaries.push_back(per * i);
  }
  for (uint32_t i = 0; i < executors; ++i) {
    rule->executor_of_dataset.push_back(i);
  }
  return rule;
}

Status RoutingRule::Validate(uint64_t key_space, uint32_t executors) const {
  if (executor_of_dataset.empty()) {
    return Status::InvalidArgument("routing rule has no datasets");
  }
  if (executor_of_dataset.size() != boundaries.size() + 1) {
    return Status::InvalidArgument(
        "routing rule sizes disagree: " +
        std::to_string(executor_of_dataset.size()) + " executors for " +
        std::to_string(boundaries.size()) + " boundaries");
  }
  for (size_t i = 0; i < boundaries.size(); ++i) {
    if (boundaries[i] == 0 || (i > 0 && boundaries[i] <= boundaries[i - 1]) ||
        (key_space > 0 && boundaries[i] >= key_space)) {
      return Status::InvalidArgument(
          "routing boundaries must be strictly increasing inside the key "
          "space");
    }
  }
  for (const uint32_t e : executor_of_dataset) {
    if (e >= executors) {
      return Status::InvalidArgument("routing executor " + std::to_string(e) +
                                     " out of range (group has " +
                                     std::to_string(executors) + ")");
    }
  }
  return Status::OK();
}

}  // namespace dora
}  // namespace doradb
