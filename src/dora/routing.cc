#include "dora/routing.h"

namespace doradb {
namespace dora {

std::shared_ptr<const RoutingRule> RoutingRule::Uniform(uint64_t key_space,
                                                        uint32_t executors) {
  auto rule = std::make_shared<RoutingRule>();
  if (executors == 0) executors = 1;
  if (key_space < executors) key_space = executors;
  const uint64_t per = key_space / executors;
  for (uint32_t i = 1; i < executors; ++i) {
    rule->boundaries.push_back(per * i);
  }
  for (uint32_t i = 0; i < executors; ++i) {
    rule->executor_of_dataset.push_back(i);
  }
  return rule;
}

}  // namespace dora
}  // namespace doradb
