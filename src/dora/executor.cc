#include "dora/executor.h"

#include <sched.h>

#include <algorithm>

#include "dora/dora_engine.h"
#include "dora/ticket.h"
#include "obs/trace.h"
#include "storage/catalog.h"
#include "util/thread_pool.h"

namespace doradb {
namespace dora {

Executor::Executor(DoraEngine* engine, Database* db, TableId table,
                   uint32_t index_in_table, uint32_t global_index)
    : engine_(engine),
      db_(db),
      table_(table),
      index_in_table_(index_in_table),
      global_index_(global_index),
      batch_size_hist_(obs::MetricsRegistry::Default().GetHistogram(
          "dora.inbox.batch_size", "msgs")),
      drain_wait_hist_(obs::MetricsRegistry::Default().GetHistogram(
          "dora.inbox.drain_wait_ns", "ns")),
      queue_wait_hist_(obs::MetricsRegistry::Default().GetHistogram(
          "dora.exec." + std::to_string(global_index) + ".queue_wait_ns",
          "ns")),
      batch_group_hist_(obs::MetricsRegistry::Default().GetHistogram(
          "dora.exec." + std::to_string(global_index) + ".batch.group_size",
          "actions")),
      ticket_deferred_(obs::MetricsRegistry::Default().GetCounter(
          "dora.tickets.deferred", "actions")) {}

void Executor::PushToInbox(InboxEntry* entry) {
  if (obs::MetricsEnabled()) {
    entry->enqueued_tsc = Cycles::Now();
    pushed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    entry->enqueued_tsc = 0;
  }
  inbox_.Push(entry);
}

void Executor::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void Executor::Stop() {
  if (!thread_.joinable()) return;
  PushToInbox(&stop_msg_);
  thread_.join();
}

void Executor::Loop() {
  // Watchdog heartbeat: beaten once per batch, marked idle across the
  // park so an empty inbox never reads as a stall, but a body that never
  // returns does (stage stays "execute", beats stop).
  obs::ScopedHeartbeat hb("dora.exec." + std::to_string(global_index_));
  hb_ = hb.get();
  // First step of the NUMA roadmap item: partition-index affinity. The
  // executor, its log partition, and its core all share global_index_, so
  // an action's locks, WAL appends, and working set stay on one context.
  if (engine_->options().pin_threads) BindToCore(global_index_);
  // Partitioned WAL affinity: this executor's appends (and its
  // transactions' commit records) go to a private log partition.
  db_->log_manager()->BindThisThread(global_index_);
  const uint64_t timeout_cycles = static_cast<uint64_t>(
      engine_->options().local_wait_timeout_us * 1000.0 *
      Cycles::PerNanosecond());
  for (;;) {
    MpscNode* chain;
    {
      ScopedTimeClass timer(TimeClass::kDoraQueue);
      chain = inbox_.TryDrain();
    }
    if (locks_.num_parked() != 0) ExpireStaleParked(timeout_cycles);
    // Busy-fraction accounting for the load heatmap: cycles spent in
    // batches that did work, over the wall cycles of the window.
    const bool metrics = obs::MetricsEnabled();
    const uint64_t t0 = metrics ? Cycles::Now() : 0;
    const bool did = ProcessInbox(chain);
    if (metrics && did) {
      busy_cycles_.fetch_add(Cycles::Now() - t0, std::memory_order_relaxed);
    }
    if (did) continue;
    if (!deferred_.empty()) {
      // Waiting on the published-ticket horizon: the owning dispatcher is
      // mid-enqueue (a nanosecond-scale window). Yield so it can finish —
      // spinning here would starve it on saturated or single-core hosts.
      sched_yield();
      continue;
    }
    if (stop_seen_) {
      hb_ = nullptr;
      return;
    }
    // Nothing runnable anywhere: park. With parked actions present, wake
    // periodically to expire stale waits (cross-graph local-lock deadlock
    // resolution); otherwise sleep until a producer pushes.
    hb->SetStage("park");
    hb->SetIdle(true);
    chain = inbox_.Park(locks_.num_parked() != 0 ? 20000 : -1);
    hb->SetIdle(false);
    if (chain != nullptr) ProcessInbox(chain);
  }
}

void Executor::Classify(MpscNode* chain) {
  const bool metrics = obs::MetricsEnabled();
  const bool tracing = obs::CommitTracer::Enabled();
  uint64_t n = 0;
  uint64_t oldest_tsc = 0;  // oldest stamped enqueue in this drain
  while (chain != nullptr) {
    MpscNode* next = chain->next;
    auto* entry = static_cast<InboxEntry*>(chain);
    ++n;
    if (entry->enqueued_tsc != 0 &&
        (oldest_tsc == 0 || entry->enqueued_tsc < oldest_tsc)) {
      oldest_tsc = entry->enqueued_tsc;
    }
    switch (entry->kind) {
      case InboxEntry::Kind::kAction: {
        Action* a = static_cast<Action*>(entry);
        if (tracing) {
          obs::CommitTracer::Stamp(a->dtxn->txn()->id(),
                                   obs::TraceStage::kDrain);
        }
        if (a->dtxn->prof.armed) {
          a->dtxn->prof.Stamp(obs::TraceStage::kDrain);
          a->dtxn->prof.SetExecutor(global_index_);
        }
        if (a->ticket == 0) {
          ready_.push_back(a);
        } else {
          if (metrics) ticket_deferred_->Add();
          // Insertion keeps deferred_ sorted by ticket; strict comparison
          // preserves arrival order among equal tickets (same dispatch).
          deferred_.push_back(a);
          size_t i = deferred_.size() - 1;
          while (i > 0 && deferred_[i - 1]->ticket > a->ticket) {
            deferred_[i] = deferred_[i - 1];
            --i;
          }
          deferred_[i] = a;
        }
        break;
      }
      case InboxEntry::Kind::kCompletion:
        comps_.push_back(static_cast<CompletionMsg*>(entry)->dtxn);
        break;
      case InboxEntry::Kind::kStop:
        stop_seen_ = true;
        break;
    }
    chain = next;
  }
  if (n != 0) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    items_.fetch_add(n, std::memory_order_relaxed);
    if (metrics) {
      // One record per drain, not per message: the histograms stay off the
      // per-action path. Queue wait is the drain's worst case (oldest
      // stamped enqueue).
      batch_size_hist_->Record(n);
      if (oldest_tsc != 0) {
        const uint64_t now = Cycles::Now();
        if (now > oldest_tsc) {
          const uint64_t wait_ns =
              static_cast<uint64_t>(Cycles::ToNanos(now - oldest_tsc));
          drain_wait_hist_->Record(wait_ns);
          queue_wait_hist_->Record(wait_ns);  // per-executor skew signal
        }
      }
    }
  }
}

bool Executor::ProcessInbox(MpscNode* chain) {
  bool did = chain != nullptr;
  for (;;) {
    if (hb_ != nullptr) {
      hb_->Beat();
      hb_->SetStage("run");
    }
    if (chain != nullptr) {
      ScopedTimeClass timer(TimeClass::kDoraQueue);
      Classify(chain);
      chain = nullptr;
    }
    // Completions first (paper steps 11-12): release the transaction's
    // local locks and serially execute any actions that become runnable.
    if (!comps_.empty()) {
      did = true;
      for (size_t i = 0; i < comps_.size(); ++i) {
        DoraTxn* t = comps_[i];
        runnable_.clear();
        locks_.ReleaseAll(t, &runnable_);
        RunRunnable();
        t->Unref();  // completion message's reference
      }
      comps_.clear();
    }
    // Then unticketed (single-queue) actions, FIFO. With epoch batching on
    // and a deep enough backlog (ready + ticketed-deferred), admission
    // still runs FIFO — the batching reorders only the execution of
    // actions whose locks were GRANTED, which is conflict-free by
    // construction — but granted actions are captured into a key-sorted
    // epoch run and the epoch closes with one bulk commit append. The
    // capture window also spans the ticket-ordered admission below
    // (admission order, the thing §4.2.3 relies on, is untouched either
    // way). Below the threshold (or with batching off) this is
    // byte-for-byte the per-action path: no latency cliff at low load.
    const uint32_t min_batch = engine_->epoch_batch_min();
    if (!ready_.empty()) {
      did = true;
      if (min_batch != 0 && !epoch_capture_ &&
          ready_.size() + deferred_.size() >= min_batch) {
        epoch_capture_ = true;
      }
      for (size_t i = 0; i < ready_.size(); ++i) AdmitAction(ready_[i]);
      ready_.clear();
    }
    if (deferred_.empty()) {
      FlushEpoch();
      return did;
    }
    // Ticket-ordered admission (§4.2.3 without latches): an action with
    // ticket t may be admitted only after (a) observing the published
    // horizon at >= t and (b) draining the inbox once more AFTER that
    // observation. Every multi-queue dispatch with a smaller ticket was
    // fully enqueued before the horizon reached t, so that drain provably
    // holds any smaller-ticket action bound for this executor — admission
    // order here therefore matches the global ticket order at every
    // executor, which is exactly what the ordered-latch protocol enforced.
    const uint64_t h = engine_->tickets().horizon();
    if (deferred_.front()->ticket > h) {
      FlushEpoch();
      return did;
    }
    {
      ScopedTimeClass timer(TimeClass::kDoraQueue);
      Classify(inbox_.TryDrain());
    }
    // Completions that arrived in that drain must release before admitted
    // actions acquire; loop back if any.
    if (!comps_.empty() || !ready_.empty()) {
      // Admit the covered prefix after the next pass's completion run.
      // (Re-reading the horizon then only ever admits more.)
      continue;
    }
    size_t admit = 0;
    while (admit < deferred_.size() && deferred_[admit]->ticket <= h) {
      ++admit;
    }
    // Ticketed actions batch too: the covered prefix is admitted in ticket
    // order exactly as before; only the execution of its granted subset is
    // deferred into the epoch run.
    if (min_batch != 0 && !epoch_capture_ && admit >= min_batch) {
      epoch_capture_ = true;
    }
    for (size_t i = 0; i < admit; ++i) AdmitAction(deferred_[i]);
    deferred_.erase(deferred_.begin(), deferred_.begin() + admit);
    did = true;
  }
}

void Executor::FlushEpoch() {
  if (!epoch_capture_) return;
  // Order matters: the run executes while capture is still on, so every
  // pipelined commit it finishes lands in epoch_commits_; the epoch then
  // closes with one bulk append + batched acks for all of them.
  ExecuteEpochRun();
  epoch_capture_ = false;
  CloseEpoch();
}

void Executor::AdmitAction(Action* a) {
  load_counter_.fetch_add(1, std::memory_order_relaxed);
  // A routing-rule change may have happened after this action was
  // dispatched; bounce stale-routed actions to the current owner.
  if (!a->whole_dataset &&
      engine_->RouteToExecutor(a->table, a->routing_value) != this) {
    engine_->Redispatch(a);
    return;
  }
  if (locks_.TryAcquire(a)) {
    if (epoch_capture_) {
      // Epoch batch: lock admission happened in arrival order (above);
      // execution is deferred into the key-sorted run.
      epoch_run_.push_back(a);
    } else {
      ExecuteGranted(a);
    }
  }
  // else parked: a Release will hand it back via `runnable`.
}

void Executor::ExecuteEpochRun() {
  if (epoch_run_.empty()) return;
  // Granted actions of different transactions never conflict (a conflict
  // would have parked the later one), and stable sorting preserves arrival
  // order among equal keys (same-transaction sequences), so reordering
  // execution by key is serialization-neutral. Sorting lines neighboring
  // keys up so ProbeIndex resolves them from one B+Tree descent.
  std::stable_sort(epoch_run_.begin(), epoch_run_.end(),
                   [](const Action* a, const Action* b) {
                     if (a->table != b->table) return a->table < b->table;
                     return a->routing_value < b->routing_value;
                   });
  const bool metrics = obs::MetricsEnabled();
  size_t group_start = 0;
  for (size_t i = 1; i <= epoch_run_.size(); ++i) {
    if (i == epoch_run_.size() ||
        epoch_run_[i]->table != epoch_run_[group_start]->table) {
      const uint64_t n = i - group_start;
      epoch_groups_.fetch_add(1, std::memory_order_relaxed);
      epoch_group_actions_.fetch_add(n, std::memory_order_relaxed);
      if (metrics) batch_group_hist_->Record(n);
      group_start = i;
    }
  }
  for (Action* a : epoch_run_) ExecuteGranted(a);
  epoch_run_.clear();
}

void Executor::CloseEpoch() {
  if (epoch_commits_.empty()) return;
  engine_->CommitEpoch(this);
}

Status Executor::ProbeIndex(IndexId index, std::string_view key,
                            IndexEntry* out) {
  BTree* tree = db_->catalog()->Index(index);
  if (tree == nullptr) return Status::NotFound("no such index");
  if (engine_->epoch_batch_min() == 0) return tree->Probe(key, out);
  for (auto& c : cursors_) {
    if (c.index == index) return tree->ProbeCached(key, out, &c.cursor);
  }
  if (cursors_.size() < kMaxCursors) {
    cursors_.push_back(IndexCursor{index, LeafCursor()});
    return tree->ProbeCached(key, out, &cursors_.back().cursor);
  }
  return tree->Probe(key, out);
}

void Executor::ExpireStaleParked(uint64_t timeout_cycles) {
  std::vector<Action*> expired;
  runnable_.clear();
  const uint64_t now = Cycles::Now();
  locks_.CollectExpired(now > timeout_cycles ? now - timeout_cycles : 0,
                        &expired, &runnable_);
  for (Action* a : expired) {
    a->dtxn->MarkAborted(
        Status::Deadlock("local lock wait expired (§4.2.3 detector)"));
    actions_executed_.fetch_add(1, std::memory_order_relaxed);
    ReportToRvp(a);  // participates in RVP accounting, body skipped
  }
  RunRunnable();
}

void Executor::RunRunnable() {
  // Wake-path twin of AdmitAction's stale-route bounce: an action that
  // parked under the OLD routing rule can be granted here AFTER a
  // migration published — executing it would race the new owner. Give the
  // grant back (which may wake further waiters, hence the index loop) and
  // redispatch it through the current table.
  for (size_t i = 0; i < runnable_.size(); ++i) {
    Action* a = runnable_[i];
    if (!a->whole_dataset &&
        engine_->RouteToExecutor(a->table, a->routing_value) != this) {
      locks_.ReleaseGrant(a, &runnable_);
      engine_->Redispatch(a);
      continue;
    }
    ExecuteGranted(a);
  }
  runnable_.clear();
}

void Executor::ExecuteGranted(Action* a) {
  DoraTxn* dtxn = a->dtxn;
  // DORA-P abort handling (§A.4): check for a sibling's abort before doing
  // any work; the action still participates in RVP accounting.
  if (!dtxn->aborted() && a->body) {
    // Publish the stage so a body that never returns shows up in the
    // watchdog's per-thread table as stalled-in-execute.
    if (hb_ != nullptr) hb_->SetStage("execute");
    ActionEnv env{db_, dtxn->txn(), dtxn, this};
    ScopedTimeClass work(TimeClass::kWork);
    const Status s = a->body(env);
    if (!s.ok()) dtxn->MarkAborted(s);
  }
  actions_executed_.fetch_add(1, std::memory_order_relaxed);
  obs::CommitTracer::Stamp(dtxn->txn()->id(), obs::TraceStage::kExecute);
  if (dtxn->prof.armed) dtxn->prof.Stamp(obs::TraceStage::kExecute);
  ReportToRvp(a);
}

void Executor::ReportToRvp(Action* a) {
  DoraTxn* dtxn = a->dtxn;
  Rvp& rvp = dtxn->rvps[a->phase];
  ScopedTimeClass timer(TimeClass::kDoraRvp);
  if (rvp.remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // This executor zeroed the RVP: it initiates the next phase, or the
  // commit/abort if this was the terminal RVP (or the txn aborted).
  const bool terminal = a->phase + 1 >= dtxn->num_phases();
  if (terminal || dtxn->aborted()) {
    engine_->FinishTxn(dtxn, this);
  } else {
    engine_->DispatchPhase(dtxn, a->phase + 1);
  }
}

}  // namespace dora
}  // namespace doradb
