#include "dora/executor.h"

#include "dora/dora_engine.h"
#include "util/thread_pool.h"

namespace doradb {
namespace dora {

Executor::Executor(DoraEngine* engine, Database* db, TableId table,
                   uint32_t index_in_table, uint32_t global_index)
    : engine_(engine),
      db_(db),
      table_(table),
      index_in_table_(index_in_table),
      global_index_(global_index) {}

void Executor::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void Executor::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Executor::EnqueueCompleted(std::shared_ptr<DoraTxn> dtxn) {
  {
    std::lock_guard<std::mutex> g(mu_);
    completed_.push_back(std::move(dtxn));
  }
  cv_.notify_one();
}

void Executor::Loop() {
  if (engine_->options().bind_cores) BindToCore(global_index_);
  // Partitioned WAL affinity: this executor's appends (and its
  // transactions' commit records) go to a private log partition.
  db_->log_manager()->BindThisThread(global_index_);
  const uint64_t timeout_cycles = static_cast<uint64_t>(
      engine_->options().local_wait_timeout_us * 1000.0 *
      Cycles::PerNanosecond());
  std::vector<Action*> runnable;
  std::deque<Action*> in;
  std::deque<std::shared_ptr<DoraTxn>> comp;
  for (;;) {
    in.clear();
    comp.clear();
    {
      std::unique_lock<std::mutex> lk(mu_);
      const auto pred = [&] {
        return stop_ || !incoming_.empty() || !completed_.empty();
      };
      if (locks_.num_parked() == 0) {
        cv_.wait(lk, pred);
      } else {
        // Parked actions exist: wake periodically to expire stale waits
        // (cross-graph local-lock deadlock resolution).
        cv_.wait_for(lk, std::chrono::milliseconds(20), pred);
      }
      if (stop_ && incoming_.empty() && completed_.empty()) return;
      in.swap(incoming_);
      comp.swap(completed_);
    }
    if (locks_.num_parked() != 0) {
      std::vector<Action*> expired;
      runnable.clear();
      const uint64_t now = Cycles::Now();
      locks_.CollectExpired(now > timeout_cycles ? now - timeout_cycles : 0,
                            &expired, &runnable);
      for (Action* a : expired) {
        a->dtxn->MarkAborted(
            Status::Deadlock("local lock wait expired (§4.2.3 detector)"));
        actions_executed_.fetch_add(1, std::memory_order_relaxed);
        ReportToRvp(a);  // participates in RVP accounting, body skipped
      }
      for (Action* a : runnable) ExecuteGranted(a);
    }
    // Completions first (paper steps 11-12): release the transaction's
    // local locks and serially execute any actions that become runnable.
    for (auto& dtxn : comp) {
      runnable.clear();
      locks_.ReleaseAll(dtxn.get(), &runnable);
      for (Action* a : runnable) ExecuteGranted(a);
    }
    // Then incoming actions, FIFO.
    for (Action* a : in) {
      load_counter_.fetch_add(1, std::memory_order_relaxed);
      // A routing-rule change may have happened after this action was
      // dispatched; bounce stale-routed actions to the current owner.
      if (!a->whole_dataset &&
          engine_->RouteToExecutor(a->table, a->routing_value) != this) {
        engine_->Redispatch(a);
        continue;
      }
      if (locks_.TryAcquire(a)) {
        ExecuteGranted(a);
      }
      // else parked: a Release will hand it back via `runnable`.
    }
  }
}

void Executor::ExecuteGranted(Action* a) {
  DoraTxn* dtxn = a->dtxn;
  // DORA-P abort handling (§A.4): check for a sibling's abort before doing
  // any work; the action still participates in RVP accounting.
  if (!dtxn->aborted() && a->body) {
    ActionEnv env{db_, dtxn->txn(), dtxn, this};
    ScopedTimeClass work(TimeClass::kWork);
    const Status s = a->body(env);
    if (!s.ok()) dtxn->MarkAborted(s);
  }
  actions_executed_.fetch_add(1, std::memory_order_relaxed);
  ReportToRvp(a);
}

void Executor::ReportToRvp(Action* a) {
  DoraTxn* dtxn = a->dtxn;
  Rvp* rvp = dtxn->rvps[a->phase].get();
  ScopedTimeClass timer(TimeClass::kDoraRvp);
  if (rvp->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
  // This executor zeroed the RVP: it initiates the next phase, or the
  // commit/abort if this was the terminal RVP (or the txn aborted).
  const bool terminal = a->phase + 1 >= dtxn->num_phases();
  if (terminal || dtxn->aborted()) {
    engine_->FinishTxn(dtxn);
  } else {
    engine_->DispatchPhase(dtxn, a->phase + 1);
  }
}

}  // namespace dora
}  // namespace doradb
