// Per-executor transaction-context arenas.
//
// BeginTxn used to malloc a shared_ptr control block, a DoraTxn, one
// unique_ptr'd Action per action, one Rvp per phase, and the registry
// entry keeping it all alive — a dozen allocator round-trips per
// transaction sitting squarely on the per-action hot path the paper wants
// contention-free. The arena keeps a free list of fully-constructed
// DoraTxn contexts: recycling happens when the last reference (client
// handle, completion message, or commit ack) drops — i.e. as a consequence
// of FinishTxn's fan-out draining — and returns the context with every
// vector's capacity intact, so a warmed-up engine runs transactions with
// zero graph-state allocations.
//
// One arena per executor (clients pick one with a sticky thread-local
// index) keeps the free-list latch sharded the same way the inboxes are.

#ifndef DORADB_DORA_ARENA_H_
#define DORADB_DORA_ARENA_H_

#include <atomic>
#include <memory>
#include <vector>

#include "dora/action.h"
#include "util/spinlock.h"

namespace doradb {
namespace dora {

class TxnArena {
 public:
  TxnArena() = default;
  ~TxnArena() = default;
  TxnArena(const TxnArena&) = delete;
  TxnArena& operator=(const TxnArena&) = delete;

  // Pop a recycled context or construct a new one. The caller must Reset()
  // it before use; it carries one reference.
  DoraTxn* Acquire() {
    {
      TatasGuard g(mu_);
      if (!free_.empty()) {
        DoraTxn* t = free_.back();
        free_.pop_back();
        return t;
      }
    }
    allocs_.fetch_add(1, std::memory_order_relaxed);
    auto t = std::make_unique<DoraTxn>(this);
    DoraTxn* raw = t.get();
    TatasGuard g(mu_);
    owned_.push_back(std::move(t));
    return raw;
  }

  // Called by DoraTxn::Unref on the last release. Drops the storage-level
  // Transaction (its work finished at commit/abort) but keeps the graph
  // vectors' capacity.
  void Recycle(DoraTxn* t) {
    t->txn_.reset();
    recycles_.fetch_add(1, std::memory_order_relaxed);
    TatasGuard g(mu_);
    free_.push_back(t);
  }

  uint64_t allocs() const { return allocs_.load(std::memory_order_relaxed); }
  uint64_t recycles() const {
    return recycles_.load(std::memory_order_relaxed);
  }

 private:
  TatasLock mu_;
  std::vector<DoraTxn*> free_;
  std::vector<std::unique_ptr<DoraTxn>> owned_;  // everything ever created
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> recycles_{0};
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_ARENA_H_
