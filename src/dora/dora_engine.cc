#include "dora/dora_engine.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

#include "obs/health.h"
#include "obs/heartbeat.h"
#include "obs/heatmap.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace doradb {
namespace dora {

DoraEngine::DoraEngine(Database* db, Options options)
    : db_(db),
      options_(options),
      epoch_batch_min_(options.epoch_batch_min) {}

DoraEngine::~DoraEngine() { Stop(); }

void DoraEngine::RegisterTable(TableId table, uint64_t key_space,
                               uint32_t executors) {
  assert(!started_);
  auto group = std::make_unique<TableGroup>();
  group->table = table;
  group->key_space = key_space;
  group->routing.Install(RoutingRule::Uniform(key_space, executors));
  // Adopt a persisted routing override (a live split written through by a
  // prior lifetime's MigrateRoutingRule) when it matches this wiring —
  // the piece of RegisterFromCatalog that makes a split survive restart.
  // A mismatched override (different key space or executor count) is
  // ignored; SetDoraConfig below clears it from the catalog.
  if (TableInfo* info = db_->catalog()->GetTable(table);
      info != nullptr && !info->routing_executors.empty() &&
      info->key_space == key_space && info->dora_executors == executors) {
    auto persisted = std::make_shared<RoutingRule>();
    persisted->boundaries = info->routing_boundaries;
    persisted->executor_of_dataset = info->routing_executors;
    persisted->version = info->routing_version;
    if (persisted->Validate(key_space, executors).ok()) {
      group->routing.Install(std::move(persisted));
    }
  }
  for (uint32_t i = 0; i < executors; ++i) {
    group->executors.push_back(std::make_unique<Executor>(
        this, db_, table, i, next_global_index_++));
  }
  tables_[table] = std::move(group);
  // Make the routing configuration part of the self-describing catalog
  // (no-op re-save when a reopened lifetime re-registers identical wiring).
  // A persist failure (SetDoraConfig rolls its in-memory change back) is
  // parked rather than returned — registration keeps the void signature
  // the Workload::SetupDora contract relies on — and every subsequent
  // Run() surfaces it: the engine must not execute on wiring the next
  // lifetime cannot see, but the application, not SIGABRT, decides what
  // to do about it.
  if (db_->catalog()->GetTable(table) != nullptr) {
    const Status s = db_->catalog()->SetDoraConfig(table, key_space,
                                                   executors);
    if (!s.ok() && registration_status_.ok()) registration_status_ = s;
  }
}

uint32_t DoraEngine::RegisterFromCatalog() {
  assert(!started_);
  uint32_t n = 0;
  // Creation order == id order, so executor global indexes (and with them
  // the plog partition and core bindings) come out exactly as a workload
  // registering tables in creation order would produce.
  for (const auto& t : db_->catalog()->tables()) {
    if (t->dora_executors == 0 || tables_.count(t->id) != 0) continue;
    RegisterTable(t->id, t->key_space, t->dora_executors);
    ++n;
  }
  return n;
}

void DoraEngine::Start() {
  assert(!started_);
  started_ = true;
  // One transaction-context arena per executor (at least one): BeginTxn
  // shards clients across them, FinishTxn's last release recycles.
  const uint32_t n_arenas = std::max(1u, next_global_index_);
  while (arenas_.size() < n_arenas) {
    arenas_.push_back(std::make_unique<TxnArena>());
  }
  if (options_.hold_table_locks) {
    // §4.1.3: executors implicitly hold a table IX lock across
    // transactions — modeled by one long-lived system transaction, so
    // client transactions never touch the table locks.
    system_txn_ = db_->Begin();
    for (auto& [table, group] : tables_) {
      (void)db_->lock_manager()->LockTable(system_txn_.get(), table,
                                           LockMode::kIX);
    }
  }
  if (options_.pipelined_commit) {
    // One commit-ack queue per log partition, sharded over at most
    // core-count daemons; with the central backend this degenerates to a
    // single group-commit daemon. Shards must be fully built before any
    // executor runs: a transaction can finish (and consult ack_shards_)
    // as soon as the first executor is live.
    const uint32_t n = db_->log_manager()->num_partitions();
    const uint32_t shards = std::min(n, std::max(1u, HardwareContexts()));
    for (uint32_t s = 0; s < shards; ++s) {
      ack_shards_.push_back(std::make_unique<AckShard>());
    }
    for (uint32_t p = 0; p < n; ++p) {
      ack_shards_[p % shards]->queues.emplace_back(p,
                                                   std::deque<CommitAck>());
    }
    for (size_t i = 0; i < ack_shards_.size(); ++i) {
      AckShard* s = ack_shards_[i].get();
      ack_shards_[i]->daemon = std::thread([this, s, i] { AckLoop(s, i); });
    }
  }
  for (auto& [table, group] : tables_) {
    for (auto& e : group->executors) e->Start();
  }

  // Stage-gap profiler: picks up DORADB_PROF_SAMPLE on the first engine
  // start (an explicit StageGapProfiler::Enable beforehand wins).
  obs::StageGapProfiler::EnsureInitFromEnv();

  // Register this engine's executors as a load-heatmap source: the
  // watchdog's periodic sweep (or an explicit LoadHeatmap::Sweep in tests)
  // pulls each executor's raw counters and turns deltas into per-window
  // rates. Unregistered in Stop() before executors die.
  heatmap_token_ = obs::LoadHeatmap::Default().RegisterSource([this] {
    std::vector<obs::ExecLoadRaw> out;
    for (Executor* e : AllExecutors()) {
      out.push_back(obs::ExecLoadRaw{
          e->global_index(), static_cast<uint64_t>(e->inbox_depth()),
          e->actions_executed(), e->busy_cycles(), e->queue_wait_hist()});
    }
    return out;
  });

  // Fold the engine's existing atomics into the metrics registry as
  // pull-style callbacks — InboxStats and the txn counters keep their
  // legacy accessors, the registry reads the same storage at snapshot
  // time. Tokens are released in Stop(): the callbacks dereference this
  // engine.
  auto& reg = obs::MetricsRegistry::Default();
  const auto kCtr = obs::MetricType::kCounter;
  auto cb = [this, &reg, kCtr](const std::string& name,
                               std::function<int64_t()> fn,
                               obs::MetricType type, const char* unit) {
    obs_tokens_.push_back(reg.RegisterCallback(name, std::move(fn), type,
                                               unit));
  };
  cb("dora.txns.committed",
     [this] { return static_cast<int64_t>(txns_committed()); }, kCtr, "txns");
  cb("dora.txns.aborted",
     [this] { return static_cast<int64_t>(txns_aborted()); }, kCtr, "txns");
  cb("dora.txns.pipelined",
     [this] { return static_cast<int64_t>(txns_pipelined()); }, kCtr, "txns");
  cb("dora.txns.acked_inline",
     [this] { return static_cast<int64_t>(txns_acked_inline()); }, kCtr,
     "txns");
  cb("dora.tickets.issued",
     [this] { return static_cast<int64_t>(tickets_.issued()); }, kCtr,
     "tickets");
  cb("dora.inbox.batches", [this] {
       return static_cast<int64_t>(CollectInboxStats().batches);
     }, kCtr, "drains");
  cb("dora.inbox.items", [this] {
       return static_cast<int64_t>(CollectInboxStats().items);
     }, kCtr, "msgs");
  cb("dora.inbox.wakeups", [this] {
       return static_cast<int64_t>(CollectInboxStats().wakeups);
     }, kCtr, "wakes");
  cb("dora.actions.executed", [this] {
       return static_cast<int64_t>(CollectInboxStats().actions);
     }, kCtr, "actions");
  cb("dora.epoch.groups", [this] {
       return static_cast<int64_t>(CollectInboxStats().epoch_groups);
     }, kCtr, "groups");
  cb("dora.epoch.actions", [this] {
       return static_cast<int64_t>(CollectInboxStats().epoch_actions);
     }, kCtr, "actions");
  // Per-executor load signals — the direct prerequisite for the ROADMAP's
  // live-repartitioning item: depth says "queued now", load says "served
  // so far".
  for (Executor* e : AllExecutors()) {
    const std::string prefix =
        "dora.exec." + std::to_string(e->global_index());
    cb(prefix + ".inbox_depth", [e] { return e->inbox_depth(); },
       obs::MetricType::kGauge, "msgs");
    cb(prefix + ".load",
       [e] { return static_cast<int64_t>(e->load_counter()); }, kCtr,
       "actions");
  }
}

void DoraEngine::Stop() {
  if (!started_) return;
  // Callbacks first: they read executors this function is about to join
  // (and, for short-lived engines in tests, a global-registry snapshot
  // must never race a dying engine).
  for (const uint64_t token : obs_tokens_) {
    obs::MetricsRegistry::Default().Unregister(token);
  }
  obs_tokens_.clear();
  if (heatmap_token_ != 0) {
    obs::LoadHeatmap::Default().UnregisterSource(heatmap_token_);
    heatmap_token_ = 0;
  }
  // Executors first (no new commits enter the ack queues), then drain the
  // ack daemons so every in-flight commit is acknowledged durable.
  for (auto& [table, group] : tables_) {
    for (auto& e : group->executors) e->Stop();
  }
  for (auto& shard : ack_shards_) {
    {
      std::lock_guard<std::mutex> g(shard->mu);
      shard->stop = true;
    }
    shard->cv.notify_all();
    if (shard->daemon.joinable()) shard->daemon.join();
  }
  ack_shards_.clear();
  if (system_txn_ != nullptr) {
    (void)db_->Commit(system_txn_.get());
    system_txn_.reset();
  }
  started_ = false;
}

void DoraEngine::AckLoop(AckShard* shard, size_t idx) {
  // Watchdog heartbeat: a daemon blocked in WaitFlushedFrom with commits
  // outstanding shows up as stalled-in-"wait-durable"; an empty queue is
  // marked idle so quiet periods never read as stalls.
  obs::ScopedHeartbeat hb("dora.ack." + std::to_string(idx));
  // (partition, batch) pairs drained from the shard's queues.
  std::vector<std::pair<uint32_t, std::deque<CommitAck>>> drained;
  for (;;) {
    drained.clear();
    {
      std::unique_lock<std::mutex> lk(shard->mu);
      hb->SetStage("wait-work");
      hb->SetIdle(true);
      shard->cv.wait(lk, [&] {
        if (shard->stop) return true;
        for (const auto& [p, q] : shard->queues) {
          if (!q.empty()) return true;
        }
        return false;
      });
      hb->SetIdle(false);
      bool any = false;
      for (auto& [p, q] : shard->queues) {
        if (q.empty()) continue;
        any = true;
        drained.emplace_back(p, std::deque<CommitAck>());
        drained.back().second.swap(q);
      }
      if (!any && shard->stop) return;
    }
    for (auto& [partition, batch] : drained) {
      // Group commit: one wait for the batch's highest GSN covers every
      // commit queued behind the same flush horizon. The daemon's blocked
      // time is idle overlap — the executors it unblocked are busy
      // elsewhere — so it is left unattributed.
      Lsn max_gsn = kInvalidLsn;
      for (const auto& ack : batch) max_gsn = std::max(max_gsn, ack.gsn);
      hb->SetStage("wait-durable");
      const Status durable =
          db_->log_manager()->WaitFlushedFrom(partition, max_gsn);
      hb->Beat();
      hb->SetStage("ack");
      // On a durability failure the frozen horizon still covers a prefix
      // of the batch — those commits ARE durable and ack normally. The
      // rest are indeterminate: never re-acked over a failed fsync, never
      // rolled back either (their records may have reached the medium).
      const Lsn covered =
          durable.ok() ? max_gsn : db_->log_manager()->flushed_lsn();
      for (auto& ack : batch) {
        Transaction* txn = ack.dtxn->txn();
        if (!durable.ok() && ack.gsn > covered) {
          const Status s = db_->CommitIndeterminate(txn, durable);
          ack.dtxn->Complete(s);
          ack.dtxn->Unref();  // ack queue's reference
          continue;
        }
        obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kDurable);
        if (ack.dtxn->prof.armed) {
          ack.dtxn->prof.Stamp(obs::TraceStage::kDurable);
        }
        const Status s = db_->CommitFinalize(txn);
        committed_.fetch_add(1, std::memory_order_relaxed);
        pipelined_.fetch_add(1, std::memory_order_relaxed);
        if (obs::MetricsEnabled() && txn->start_tsc() != 0) {
          Database::CommitLatencyHistogram()->Record(static_cast<uint64_t>(
              Cycles::ToNanos(Cycles::Now() - txn->start_tsc())));
        }
        obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kAck);
        if (ack.dtxn->prof.armed) {
          ack.dtxn->prof.Stamp(obs::TraceStage::kAck);
          obs::StageGapProfiler::RecordTxn(ack.dtxn->prof);
        }
        ack.dtxn->Complete(s);
        ack.dtxn->Unref();  // ack queue's reference
      }
    }
  }
}

DoraTxnRef DoraEngine::BeginTxn() {
  thread_local uint64_t slot = ~uint64_t{0};
  if (slot == ~uint64_t{0}) {
    slot = next_client_slot_.fetch_add(1, std::memory_order_relaxed);
  }
  TxnArena* arena = arenas_[slot % arenas_.size()].get();
  DoraTxn* t = arena->Acquire();
  t->Reset(db_, db_->Begin());
  return DoraTxnRef::Adopt(t);
}

Status DoraEngine::Run(const DoraTxnRef& dtxn, FlowGraph&& graph) {
  // A registration whose routing config never reached the catalog must
  // not execute: after a restart that wiring would silently not exist.
  if (!registration_status_.ok()) return registration_status_;
  DoraTxn* t = dtxn.get();
  // Materialize the flow graph into actions + RVPs owned by the txn
  // context (all storage capacity-recycled across transactions).
  auto& phases = graph.phases();
  const size_t total = graph.num_actions();
  if (phases.empty() || total == 0) {
    const Status s = db_->Commit(t->txn());
    t->Complete(s);
    return s;
  }
  t->actions.clear();
  t->actions.resize(total);
  t->rvps.clear();
  t->rvps.resize(phases.size());
  t->phase_actions.resize(phases.size());
  size_t idx = 0;
  for (size_t p = 0; p < phases.size(); ++p) {
    t->rvps[p].remaining.store(static_cast<int32_t>(phases[p].size()),
                               std::memory_order_relaxed);
    auto& pa = t->phase_actions[p];
    pa.clear();
    for (auto& spec : phases[p]) {
      Action& a = t->actions[idx++];
      a.dtxn = t;
      a.table = spec.table;
      a.routing_value = spec.routing_value;
      a.whole_dataset = spec.whole_dataset;
      a.mode = spec.mode;
      a.body = std::move(spec.body);
      a.phase = p;
      a.owner = nullptr;
      a.ticket = 0;
      a.parked_at = 0;
      pa.push_back(&a);
    }
  }
  obs::CommitTracer::Stamp(t->txn()->id(), obs::TraceStage::kDispatch);
  // Arm the always-on stage-gap profiler for 1-in-N transactions: the
  // stamps ride in the txn context (relaxed first-wins CAS per slot) and
  // fold into registry histograms exactly once at completion.
  if (obs::StageGapProfiler::Sample(t->txn()->id())) {
    t->prof.armed = true;
    t->prof.Stamp(obs::TraceStage::kDispatch);
  }
  DispatchPhase(t, 0);
  return t->Wait();
}

uint32_t DoraEngine::RouteIndex(TableId table, uint64_t routing_value) const {
  auto it = tables_.find(table);
  assert(it != tables_.end());
  return it->second->routing.Route(routing_value);
}

Executor* DoraEngine::RouteToExecutor(TableId table,
                                      uint64_t routing_value) const {
  auto it = tables_.find(table);
  assert(it != tables_.end());
  const uint32_t idx = it->second->routing.Route(routing_value);
  return it->second->executors[idx].get();
}

Executor* DoraEngine::ExecutorAt(TableId table, uint32_t index) const {
  auto it = tables_.find(table);
  assert(it != tables_.end());
  return it->second->executors[index % it->second->executors.size()].get();
}

uint32_t DoraEngine::executors_of(TableId table) const {
  auto it = tables_.find(table);
  return it == tables_.end()
             ? 0
             : static_cast<uint32_t>(it->second->executors.size());
}

const RoutingTable* DoraEngine::routing_of(TableId table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? nullptr : &it->second->routing;
}

uint64_t DoraEngine::key_space_of(TableId table) const {
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : it->second->key_space;
}

std::vector<TableId> DoraEngine::RegisteredTables() const {
  std::vector<TableId> out;
  for (const auto& [table, group] : tables_) out.push_back(table);
  std::sort(out.begin(), out.end());
  return out;
}

void DoraEngine::DispatchPhase(DoraTxn* dtxn, size_t phase) {
  ScopedTimeClass timer(TimeClass::kDoraQueue);
  auto& actions = dtxn->phase_actions[phase];
  Executor* first = nullptr;
  bool multi = false;
  for (Action* a : actions) {
    a->owner = a->whole_dataset
                   ? ExecutorAt(a->table,
                                static_cast<uint32_t>(a->routing_value))
                   : RouteToExecutor(a->table, a->routing_value);
    if (first == nullptr) {
      first = a->owner;
    } else if (a->owner != first) {
      multi = true;
    }
  }
  // §4.2.3 without queue latches: a phase fanning out to several executors
  // takes one global ticket, enqueues everywhere, then publishes. The
  // executors admit ticketed actions in ticket order once the published
  // horizon covers them (see Executor::ProcessInbox), so two transactions
  // with overlapping executor sets can never interleave their submissions
  // — which, with FIFO admission and commit-held local locks, rules out
  // deadlocks between them. Single-executor phases (the common case) skip
  // the ticket entirely.
  const uint64_t ticket = multi ? tickets_.Take() : 0;
  // Profiler enqueue stamp lands BEFORE the pushes (first-wins: only the
  // txn's first phase records), so drain - enqueue is a true queue wait
  // even when the executor drains faster than this loop finishes.
  if (dtxn->prof.armed) dtxn->prof.Stamp(obs::TraceStage::kEnqueue);
  for (Action* a : actions) {
    a->ticket = ticket;
    a->owner->PushToInbox(a);
  }
  if (multi) tickets_.Publish(ticket);
  obs::CommitTracer::Stamp(dtxn->txn()->id(), obs::TraceStage::kEnqueue);
}

void DoraEngine::Redispatch(Action* a) {
  ScopedTimeClass timer(TimeClass::kDoraQueue);
  Executor* owner = RouteToExecutor(a->table, a->routing_value);
  a->owner = owner;
  // The bounce is a single enqueue: no ticket needed (same as the mutex
  // protocol, which re-latched only the new owner's queue).
  a->ticket = 0;
  owner->PushToInbox(a);
}

void DoraEngine::FanOutCompletions(DoraTxn* dtxn) {
  auto& owners = dtxn->scratch_owners;
  owners.clear();
  for (const auto& a : dtxn->actions) {
    if (a.owner != nullptr) owners.push_back(a.owner);
  }
  std::sort(owners.begin(), owners.end());
  owners.erase(std::unique(owners.begin(), owners.end()), owners.end());
  if (owners.empty()) return;
  // Messages are embedded in the context; size the vector BEFORE the first
  // push (no reallocation while nodes are enqueued) and take one reference
  // per message — the context stays alive until the last executor drains.
  dtxn->completion_msgs.clear();
  dtxn->completion_msgs.resize(owners.size());
  dtxn->Ref(static_cast<uint32_t>(owners.size()));
  for (size_t i = 0; i < owners.size(); ++i) {
    CompletionMsg& m = dtxn->completion_msgs[i];
    m.dtxn = dtxn;
    owners[i]->PushToInbox(&m);
  }
}

void DoraEngine::FinalizeInline(DoraTxn* dtxn) {
  Transaction* txn = dtxn->txn();
  obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kDurable);
  if (dtxn->prof.armed) {
    dtxn->prof.Stamp(obs::TraceStage::kDurable);
  }
  const Status s = db_->CommitFinalize(txn);
  committed_.fetch_add(1, std::memory_order_relaxed);
  pipelined_.fetch_add(1, std::memory_order_relaxed);
  acked_inline_.fetch_add(1, std::memory_order_relaxed);
  if (obs::MetricsEnabled() && txn->start_tsc() != 0) {
    Database::CommitLatencyHistogram()->Record(static_cast<uint64_t>(
        Cycles::ToNanos(Cycles::Now() - txn->start_tsc())));
  }
  obs::CommitTracer::Stamp(txn->id(), obs::TraceStage::kAck);
  if (dtxn->prof.armed) {
    dtxn->prof.Stamp(obs::TraceStage::kAck);
    obs::StageGapProfiler::RecordTxn(dtxn->prof);
  }
  dtxn->Complete(s);
}

void DoraEngine::FinishTxn(DoraTxn* dtxn, Executor* self) {
  // A degraded engine takes the synchronous fallback below: Database::
  // Commit handles the read-only/rollback split and surfaces the typed
  // Unavailable — pipelining a commit that can never become durable would
  // only park it in an ack queue to fail later.
  if (!dtxn->aborted() && options_.pipelined_commit && !ack_shards_.empty() &&
      !obs::EngineHealth::Default().degraded()) {
    // Mid-epoch finish: park the commit for the epoch-close bulk append.
    // Locks stay held until CommitEpoch's fan-out — which runs AFTER the
    // epoch's GSNs are drawn, preserving the dependent-GSN ordering ELR
    // relies on. Bounded deferral: the epoch closes within this same
    // ProcessInbox iteration.
    if (self != nullptr && self->epoch_capture_) {
      self->epoch_commits_.push_back(dtxn);
      return;
    }
    // Pipelined commit (§5.4 flush pipelining + ELR): append the commit
    // record, release thread-local locks immediately, queue the ack, and
    // let this executor pick up its next action instead of stalling in
    // WaitFlushed. The client is completed by the ack daemon once the
    // commit GSN is covered by the global stable horizon.
    const Lsn commit_gsn = db_->CommitAsync(dtxn->txn());
    obs::CommitTracer::Stamp(dtxn->txn()->id(),
                             obs::TraceStage::kCommitAppend);
    if (dtxn->prof.armed) {
      dtxn->prof.Stamp(obs::TraceStage::kCommitAppend);
    }
    FanOutCompletions(dtxn);  // early lock release, pre-durability
    // Inline-ack fast path: when the global flush horizon already covers
    // the commit GSN (synchronous log, or a flusher won the race), the
    // commit is durable right now — finalize and complete the client on
    // this executor instead of round-tripping through the ack daemon.
    if (db_->log_manager()->flushed_lsn() >= commit_gsn) {
      FinalizeInline(dtxn);
      return;
    }
    dtxn->Ref();  // the ack queue's reference
    // The commit record went to this thread's bound partition; its ack
    // queue lives at slot partition/shards of shard partition%shards.
    const uint32_t partition = db_->log_manager()->CurrentPartition() %
                               db_->log_manager()->num_partitions();
    const uint32_t shards = static_cast<uint32_t>(ack_shards_.size());
    AckShard* shard = ack_shards_[partition % shards].get();
    {
      std::lock_guard<std::mutex> g(shard->mu);
      shard->queues[partition / shards].second.push_back(
          CommitAck{dtxn, commit_gsn});
    }
    shard->cv.notify_one();
    return;
  }

  Status final_status;
  if (dtxn->aborted()) {
    (void)db_->Abort(dtxn->txn());
    final_status = dtxn->abort_reason();
    if (final_status.ok()) final_status = Status::Aborted();
    aborted_.fetch_add(1, std::memory_order_relaxed);
    if (obs::MetricsEnabled()) {
      // Abort attribution by reason ("dora.aborts.deadlock" etc.) — the
      // paper's resource manager decides serial-plan switches on exactly
      // this signal.
      obs::MetricsRegistry::Default()
          .GetCounter(std::string("dora.aborts.") + final_status.CodeName(),
                      "txns")
          ->Add();
    }
  } else {
    // Synchronous commit bundles append + durable flush; bracket it so the
    // profiled flush_wait gap (append->durable) covers the blocking wait.
    if (dtxn->prof.armed) {
      dtxn->prof.Stamp(obs::TraceStage::kCommitAppend);
    }
    final_status = db_->Commit(dtxn->txn());
    if (dtxn->prof.armed) {
      dtxn->prof.Stamp(obs::TraceStage::kDurable);
    }
    if (final_status.ok()) {
      committed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      // Degraded engine: the commit failed Unavailable (rolled back or
      // indeterminate) — counting it as committed would overstate the
      // engine's own throughput numbers.
      aborted_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Completion fan-out (§A.1 steps 10-12) after commit/abort completes.
  FanOutCompletions(dtxn);
  obs::CommitTracer::Stamp(dtxn->txn()->id(), obs::TraceStage::kAck);
  if (dtxn->prof.armed) {
    dtxn->prof.Stamp(obs::TraceStage::kAck);
    // Aborted transactions record too: their missing durable/append
    // endpoints simply skip those gaps.
    obs::StageGapProfiler::RecordTxn(dtxn->prof);
  }
  dtxn->Complete(std::move(final_status));
}

void DoraEngine::CommitEpoch(Executor* self) {
  auto& dtxns = self->epoch_commits_;
  const size_t n = dtxns.size();
  if (n == 0) return;
  // One log-buffer reservation covers the epoch's commit records
  // (log.bulk_reservations). GSNs come out of the bulk append in issue
  // order, so commit_gsns_ is monotonically increasing.
  self->commit_txns_.resize(n);
  self->commit_gsns_.resize(n);
  for (size_t i = 0; i < n; ++i) self->commit_txns_[i] = dtxns[i]->txn();
  db_->CommitAsyncBulk(self->commit_txns_.data(), n, self->commit_recs_,
                       self->commit_rec_ptrs_, self->commit_gsns_.data());
  for (size_t i = 0; i < n; ++i) {
    obs::CommitTracer::Stamp(dtxns[i]->txn()->id(),
                             obs::TraceStage::kCommitAppend);
    if (dtxns[i]->prof.armed) {
      dtxns[i]->prof.Stamp(obs::TraceStage::kCommitAppend);
    }
  }
  // Early lock release for the whole epoch — only now, with every commit
  // GSN drawn, so any transaction that acquires these locks afterwards
  // draws a strictly larger GSN (the ack-ordering invariant).
  for (size_t i = 0; i < n; ++i) FanOutCompletions(dtxns[i]);
  // Epoch-granular ack: one horizon read decides the whole batch. GSNs
  // increase with i, so the covered commits form a prefix — finalize those
  // inline; the suffix takes one batched handoff (single lock, single
  // wake) to this executor's bound ack queue.
  const Lsn flushed = db_->log_manager()->flushed_lsn();
  size_t covered = 0;
  while (covered < n && self->commit_gsns_[covered] <= flushed) ++covered;
  for (size_t i = 0; i < covered; ++i) FinalizeInline(dtxns[i]);
  if (covered < n) {
    const uint32_t partition = db_->log_manager()->CurrentPartition() %
                               db_->log_manager()->num_partitions();
    const uint32_t shards = static_cast<uint32_t>(ack_shards_.size());
    AckShard* shard = ack_shards_[partition % shards].get();
    {
      std::lock_guard<std::mutex> g(shard->mu);
      auto& queue = shard->queues[partition / shards].second;
      for (size_t i = covered; i < n; ++i) {
        dtxns[i]->Ref();  // the ack queue's reference
        queue.push_back(CommitAck{dtxns[i], self->commit_gsns_[i]});
      }
    }
    shard->cv.notify_one();
  }
  dtxns.clear();
}

namespace {

// Walk the merged boundary lists of two rules over the same key space and
// report (a) every executor on either side of an ownership change — the
// set the migration fence must drain — and (b) the number of maximal
// contiguous ranges whose owner changes (the moved_ranges metric).
void DiffOwnership(const RoutingRule& from, const RoutingRule& to,
                   std::set<uint32_t>* affected, uint64_t* changed_ranges) {
  size_t ia = 0, ib = 0;
  uint64_t changed = 0;
  bool in_changed_run = false;
  for (;;) {
    const uint32_t oa = from.executor_of_dataset[ia];
    const uint32_t ob = to.executor_of_dataset[ib];
    if (oa != ob) {
      affected->insert(oa);
      affected->insert(ob);
      if (!in_changed_run) {
        ++changed;
        in_changed_run = true;
      }
    } else {
      in_changed_run = false;
    }
    const uint64_t na =
        ia < from.boundaries.size() ? from.boundaries[ia] : UINT64_MAX;
    const uint64_t nb =
        ib < to.boundaries.size() ? to.boundaries[ib] : UINT64_MAX;
    if (na == UINT64_MAX && nb == UINT64_MAX) break;
    if (na <= nb) ++ia;
    if (nb <= na) ++ib;
  }
  *changed_ranges = changed;
}

}  // namespace

Status DoraEngine::MigrateRoutingRule(TableId table,
                                      std::shared_ptr<const RoutingRule> rule,
                                      uint64_t* fence_wait_ns) {
  if (fence_wait_ns != nullptr) *fence_wait_ns = 0;
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::InvalidArgument("unknown table");
  TableGroup* group = it->second.get();
  const uint32_t n = static_cast<uint32_t>(group->executors.size());
  DORADB_RETURN_NOT_OK(rule->Validate(group->key_space, n));
  auto old_rule = group->routing.Current();
  if (rule->version <= old_rule->version) {
    return Status::Busy(
        "routing rule version " + std::to_string(rule->version) +
        " is not newer than the installed version " +
        std::to_string(old_rule->version));
  }
  std::set<uint32_t> affected;
  uint64_t moved_ranges = 0;
  DiffOwnership(*old_rule, *rule, &affected, &moved_ranges);
  const bool split = rule->boundaries.size() > old_rule->boundaries.size();

  if (affected.empty()) {
    // Ownership function unchanged (a same-owner re-split or a pure
    // version bump): no executor can mis-admit under either rule, so no
    // fence is needed.
    group->routing.Install(rule);
  } else {
    // §A.2.1 via system actions, scoped to the executors whose ownership
    // actually changes (always >= 2: a range moves FROM one executor TO
    // another). Phase 1 takes a whole-dataset X lock on each — a
    // multi-executor phase, so it is stamped with a dispatch ticket; the
    // X grant (FIFO inboxes + commit-held local locks) is the drain
    // barrier. Phase 2 publishes the rule while they are still locked
    // out; the stale-route re-check at admission bounces anything
    // enqueued under the old rule afterwards.
    const auto t0 = std::chrono::steady_clock::now();
    auto dtxn = BeginTxn();
    FlowGraph g;
    g.AddPhase();
    for (const uint32_t i : affected) {
      g.AddWholeDatasetAction(table, i, LocalMode::kX,
                              [](ActionEnv&) { return Status::OK(); });
    }
    g.AddPhase();
    g.AddWholeDatasetAction(
        table, *affected.begin(), LocalMode::kX,
        [group, rule](ActionEnv&) {
          // Under the fence's X locks: a concurrent migration that won the
          // race already advanced the version, and installing over it
          // would silently undo its handoff.
          if (rule->version <= group->routing.Current()->version) {
            return Status::Busy(
                "routing rule version lost a concurrent migration");
          }
          group->routing.Install(rule);
          return Status::OK();
        });
    DORADB_RETURN_NOT_OK(Run(dtxn, std::move(g)));
    const uint64_t ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (fence_wait_ns != nullptr) *fence_wait_ns = ns;
    obs::MetricsRegistry::Default()
        .GetHistogram("dora.rebalance.fence_wait_ns", "ns")
        ->Record(ns);
  }

  auto& reg = obs::MetricsRegistry::Default();
  if (split) reg.GetCounter("dora.rebalance.splits")->Add(1);
  if (moved_ranges != 0) {
    reg.GetCounter("dora.rebalance.moved_ranges")->Add(moved_ranges);
  }

  // Write-through AFTER publication: the new rule is already live, so a
  // crash in this window loses only the split (the next lifetime adopts
  // the old assignment — exactly one of the two, never a blend), while
  // persisting first could hand a restarted process a rule the fence
  // never published.
  if (db_->catalog()->GetTable(table) != nullptr) {
    DORADB_RETURN_NOT_OK(db_->catalog()->SetDoraRouting(
        table, rule->boundaries, rule->executor_of_dataset, rule->version));
  }
  return Status::OK();
}

Status DoraEngine::Rebalance(TableId table,
                             std::shared_ptr<const RoutingRule> rule) {
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::InvalidArgument("unknown table");
  auto current = it->second->routing.Current();
  if (rule->version <= current->version) {
    auto stamped = std::make_shared<RoutingRule>(*rule);
    stamped->version = current->version + 1;
    rule = std::move(stamped);
  }
  return MigrateRoutingRule(table, std::move(rule));
}

DoraEngine::InboxStats DoraEngine::CollectInboxStats() const {
  InboxStats s;
  for (const auto& [table, group] : tables_) {
    for (const auto& e : group->executors) {
      s.batches += e->inbox_batches();
      s.items += e->inbox_items();
      s.wakeups += e->inbox_wakeups();
      s.actions += e->actions_executed();
      s.epoch_groups += e->epoch_groups();
      s.epoch_actions += e->epoch_group_actions();
    }
  }
  s.tickets = tickets_.issued();
  for (const auto& a : arenas_) {
    s.arena_allocs += a->allocs();
    s.arena_recycles += a->recycles();
  }
  return s;
}

std::vector<Executor*> DoraEngine::AllExecutors() const {
  std::vector<Executor*> out;
  for (const auto& [table, group] : tables_) {
    for (const auto& e : group->executors) out.push_back(e.get());
  }
  std::sort(out.begin(), out.end(),
            [](const Executor* a, const Executor* b) {
              return a->global_index() < b->global_index();
            });
  return out;
}

}  // namespace dora
}  // namespace doradb
