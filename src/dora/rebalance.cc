#include "dora/rebalance.h"

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <map>

#include "obs/heartbeat.h"
#include "obs/metrics.h"

namespace doradb {
namespace dora {

namespace {

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Dataset d's half-open range under `rule` over [0, key_space).
void DatasetRange(const RoutingRule& rule, uint64_t key_space, size_t d,
                  uint64_t* lo, uint64_t* hi) {
  *lo = d == 0 ? 0 : rule.boundaries[d - 1];
  *hi = d == rule.boundaries.size() ? key_space : rule.boundaries[d];
}

}  // namespace

RebalanceController::RebalanceController(DoraEngine* engine, Options options)
    : engine_(engine), options_(options) {
  // Register the rebalance metrics eagerly so a DORADB_REBALANCE=1 run
  // carries the namespace in its stats snapshots even before (or without)
  // the first migration.
  auto& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("dora.rebalance.splits");
  reg.GetCounter("dora.rebalance.moved_ranges");
  reg.GetHistogram("dora.rebalance.fence_wait_ns", "ns");
}

RebalanceController::~RebalanceController() { Stop(); }

void RebalanceController::Start() {
  std::lock_guard<std::mutex> g(loop_mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void RebalanceController::Stop() {
  {
    std::lock_guard<std::mutex> g(loop_mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
  }
  loop_cv_.notify_all();
  thread_.join();
}

void RebalanceController::Loop() {
  obs::ScopedHeartbeat hb("dora.rebalance");
  std::unique_lock<std::mutex> lk(loop_mu_);
  while (!stop_) {
    loop_cv_.wait_for(lk, std::chrono::milliseconds(options_.interval_ms),
                      [this] { return stop_; });
    if (stop_) break;
    hb->Beat();
    if (paused_.load(std::memory_order_relaxed)) continue;
    lk.unlock();
    StepOnce();
    lk.lock();
  }
}

bool RebalanceController::DecideFromWindow(const obs::HeatmapWindow& w,
                                           Decision* out) const {
  if (w.rows.empty()) return false;
  std::map<uint32_t, const obs::ExecutorSample*> by_global;
  for (const auto& r : w.rows) by_global[r.executor] = &r;

  for (const TableId table : engine_->RegisteredTables()) {
    const uint32_t n = engine_->executors_of(table);
    if (n < 2) continue;
    // Hot/cold by busy fraction among THIS table's executors (the window
    // keys rows by global executor index).
    uint32_t hot = 0, cold = 0;
    double busy_hot = -1.0, busy_cold = 2.0;
    uint64_t hot_qwait = 0;
    bool complete = true;
    for (uint32_t i = 0; i < n; ++i) {
      auto it = by_global.find(engine_->ExecutorAt(table, i)->global_index());
      if (it == by_global.end()) {
        complete = false;
        break;
      }
      const double busy = it->second->busy_frac;
      if (busy > busy_hot) {
        busy_hot = busy;
        hot = i;
        hot_qwait = it->second->queue_wait_p99_ns;
      }
      if (busy < busy_cold) {
        busy_cold = busy;
        cold = i;
      }
    }
    if (!complete || hot == cold) continue;
    if (busy_hot - busy_cold < options_.min_busy_gap) continue;
    if (options_.min_qwait_p99_ns != 0 &&
        hot_qwait < options_.min_qwait_p99_ns) {
      continue;
    }

    const RoutingTable* routing = engine_->routing_of(table);
    auto current = routing->Current();
    const uint64_t key_space = engine_->key_space_of(table);

    // Datasets the hot executor owns, widest first.
    size_t widest = SIZE_MAX, owned = 0;
    uint64_t widest_span = 0;
    for (size_t d = 0; d < current->executor_of_dataset.size(); ++d) {
      if (current->executor_of_dataset[d] != hot) continue;
      ++owned;
      uint64_t lo, hi;
      DatasetRange(*current, key_space, d, &lo, &hi);
      if (hi - lo >= widest_span) {
        widest_span = hi - lo;
        widest = d;
      }
    }
    if (owned == 0 || widest == SIZE_MAX) continue;

    auto rule = std::make_shared<RoutingRule>();
    rule->boundaries = current->boundaries;
    rule->executor_of_dataset = current->executor_of_dataset;
    rule->version = current->version + 1;
    bool split = false;
    if (owned > 1) {
      // MOVE: reassign the hot executor's widest dataset wholesale.
      rule->executor_of_dataset[widest] = cold;
    } else {
      // SPLIT: the hot executor owns a single range — halve it and hand
      // the upper half to the cold executor.
      uint64_t lo, hi;
      DatasetRange(*current, key_space, widest, &lo, &hi);
      if (hi - lo < 2) continue;  // one key cannot be split
      const uint64_t mid = lo + (hi - lo) / 2;
      rule->boundaries.insert(rule->boundaries.begin() + widest, mid);
      rule->executor_of_dataset.insert(
          rule->executor_of_dataset.begin() + widest + 1, cold);
      split = true;
    }

    out->table = table;
    out->hot_executor = hot;
    out->cold_executor = cold;
    out->split = split;
    out->busy_hot = busy_hot;
    out->busy_cold = busy_cold;
    out->rule = std::move(rule);
    return true;
  }
  return false;
}

Status RebalanceController::Apply(const Decision& d) {
  uint64_t fence_wait_ns = 0;
  const Status s =
      engine_->MigrateRoutingRule(d.table, d.rule, &fence_wait_ns);
  if (!s.ok()) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return s;
  }
  migrations_.fetch_add(1, std::memory_order_relaxed);
  if (d.split) {
    splits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    moves_.fetch_add(1, std::memory_order_relaxed);
  }
  // One reporter-style line per migration (same stderr stream the
  // DORADB_STATS / DORADB_HEATMAP lines use).
  std::fprintf(stderr,
               "DORADB_REBALANCE {\"ts_ms\":%" PRId64 ",\"table\":%u,"
               "\"kind\":\"%s\",\"hot\":%u,\"cold\":%u,\"version\":%" PRIu64
               ",\"fence_wait_ns\":%" PRIu64
               ",\"busy_hot\":%.3f,\"busy_cold\":%.3f}\n",
               WallMs(), static_cast<unsigned>(d.table),
               d.split ? "split" : "move", d.hot_executor, d.cold_executor,
               d.rule->version, fence_wait_ns, d.busy_hot, d.busy_cold);
  return s;
}

bool RebalanceController::StepOnce() {
  std::lock_guard<std::mutex> g(step_mu_);
  if (options_.sweep) heatmap().Sweep();
  const obs::HeatmapWindow w = heatmap().Latest();
  if (w.rows.empty() || w.seq <= last_seq_) return false;
  last_seq_ = w.seq;
  if (options_.cooldown_ms != 0 && last_migration_ms_ != 0 &&
      WallMs() - last_migration_ms_ <
          static_cast<int64_t>(options_.cooldown_ms)) {
    return false;
  }
  Decision d;
  if (!DecideFromWindow(w, &d)) return false;
  if (!Apply(d).ok()) return false;
  last_migration_ms_ = WallMs();
  return true;
}

}  // namespace dora
}  // namespace doradb
