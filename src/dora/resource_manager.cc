#include "dora/resource_manager.h"

#include "util/clock.h"

namespace doradb {
namespace dora {

PlanAdvisor::TypeStats& PlanAdvisor::StatsFor(uint32_t txn_type) const {
  std::lock_guard<std::mutex> g(mu_);
  auto& slot = stats_[txn_type];
  if (slot == nullptr) slot = std::make_unique<TypeStats>();
  return *slot;
}

void PlanAdvisor::RecordOutcome(uint32_t txn_type, bool aborted) {
  TypeStats& s = StatsFor(txn_type);
  const uint64_t total = s.total.fetch_add(1, std::memory_order_relaxed) + 1;
  const uint64_t ab =
      s.aborted.fetch_add(aborted ? 1 : 0, std::memory_order_relaxed) +
      (aborted ? 1 : 0);
  if (total < options_.min_samples) return;
  const double rate = static_cast<double>(ab) / static_cast<double>(total);
  if (rate > options_.serial_threshold) {
    s.serial.store(true, std::memory_order_relaxed);
  } else if (rate < options_.serial_threshold - options_.hysteresis) {
    s.serial.store(false, std::memory_order_relaxed);
  }
}

bool PlanAdvisor::RecommendSerial(uint32_t txn_type) const {
  return StatsFor(txn_type).serial.load(std::memory_order_relaxed);
}

double PlanAdvisor::AbortRate(uint32_t txn_type) const {
  TypeStats& s = StatsFor(txn_type);
  const uint64_t total = s.total.load(std::memory_order_relaxed);
  if (total == 0) return 0.0;
  return static_cast<double>(s.aborted.load(std::memory_order_relaxed)) /
         static_cast<double>(total);
}

ResourceManager::ResourceManager(DoraEngine* engine, Options options)
    : engine_(engine), options_(options) {}

ResourceManager::~ResourceManager() { Stop(); }

void ResourceManager::Start() {
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
}

void ResourceManager::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void ResourceManager::Loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    NapMicros(options_.sample_interval_us);
    if (stop_.load(std::memory_order_acquire)) break;
    SampleOnce();
  }
}

void ResourceManager::SampleOnce() {
  // Group executors by table, compute load deltas since the last sample.
  std::unordered_map<TableId, std::vector<uint64_t>> loads;
  for (Executor* e : engine_->AllExecutors()) {
    const uint64_t now = e->load_counter();
    const uint64_t before = last_load_[e];
    last_load_[e] = now;
    auto& v = loads[e->table()];
    if (v.size() <= e->index_in_table()) v.resize(e->index_in_table() + 1);
    v[e->index_in_table()] = now - before;
  }
  if (!options_.auto_rebalance) return;
  for (auto& [table, v] : loads) {
    if (v.size() > 1) MaybeRebalanceTable(table, v);
  }
}

void ResourceManager::MaybeRebalanceTable(TableId table,
                                          const std::vector<uint64_t>& loads) {
  uint64_t total = 0, maxv = 0;
  for (uint64_t l : loads) {
    total += l;
    maxv = std::max(maxv, l);
  }
  if (total < loads.size() * 16) return;  // not enough signal
  const double mean =
      static_cast<double>(total) / static_cast<double>(loads.size());
  if (static_cast<double>(maxv) < options_.imbalance_threshold * mean) return;

  // Re-partition the routing-value domain proportionally to the inverse of
  // the observed load: heavily-loaded executors get narrower datasets.
  auto current = engine_->routing_of(table)->Current();
  const uint64_t key_space = engine_->key_space_of(table);
  auto rule = std::make_shared<RoutingRule>();
  rule->version = current->version + 1;
  const size_t n = loads.size();
  double weight_total = 0;
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 / (1.0 + static_cast<double>(loads[i]));
    weight_total += weights[i];
  }
  double acc = 0;
  for (size_t i = 0; i + 1 < n; ++i) {
    acc += weights[i] / weight_total;
    uint64_t boundary = static_cast<uint64_t>(
        acc * static_cast<double>(key_space));
    // Clamp into RoutingRule::Validate's open interval: strictly
    // increasing, never 0, and leaving room inside the key space for the
    // boundaries still to come (extreme skew pushes the raw value to the
    // domain's edge).
    const uint64_t lo =
        rule->boundaries.empty() ? 1 : rule->boundaries.back() + 1;
    const uint64_t hi = key_space - 1 - (n - 2 - i);
    if (boundary < lo) boundary = lo;
    if (boundary > hi) boundary = hi;
    rule->boundaries.push_back(boundary);
  }
  for (uint32_t i = 0; i < n; ++i) rule->executor_of_dataset.push_back(i);
  if (engine_->Rebalance(table, rule).ok()) {
    rebalances_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace dora
}  // namespace doradb
