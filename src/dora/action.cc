#include "dora/action.h"

namespace doradb {
namespace dora {

FlowGraph FlowGraph::Serialized() && {
  FlowGraph out;
  for (auto& phase : phases_) {
    for (auto& spec : phase) {
      out.AddPhase();
      out.phases_.back().push_back(std::move(spec));
    }
  }
  return out;
}

}  // namespace dora
}  // namespace doradb
