#include "dora/action.h"

#include "dora/arena.h"
#include "dora/executor.h"

namespace doradb {
namespace dora {

Status ActionEnv::Probe(IndexId index, std::string_view key,
                        IndexEntry* out) const {
  return self->ProbeIndex(index, key, out);
}

FlowGraph FlowGraph::Serialized() && {
  FlowGraph out;
  for (auto& phase : phases_) {
    for (auto& spec : phase) {
      out.AddPhase();
      out.phases_.back().push_back(std::move(spec));
    }
  }
  return out;
}

void DoraTxn::Unref() {
  if (refs_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Standalone contexts (tests) are owned by their creator; pooled ones
    // go back to their arena for the next BeginTxn.
    if (home_ != nullptr) home_->Recycle(this);
  }
}

}  // namespace dora
}  // namespace doradb
