// DORA actions, rendezvous points (RVPs), transaction flow graphs, and the
// per-transaction execution context (paper §4.1.2-4.1.3).
//
// An action is "a subset of a transaction's code which involves access to a
// single or a small set of records from the same table"; its identifier is
// the routing-field value(s) of the records it intends to access. RVPs
// separate a transaction into phases; actions of different phases never run
// concurrently.
//
// Executor messaging: actions and completion messages are both intrusive
// inbox entries (InboxEntry over util/mpsc_queue.h), so an executor drains
// one lock-free queue and wakes at most once per batch. Transaction
// contexts are pooled in per-executor arenas (dora/arena.h) and recycled —
// via an intrusive reference count — once the client and every completion
// message are done with them, which removes all per-transaction
// malloc/free of graph state from the steady-state path.

#ifndef DORADB_DORA_ACTION_H_
#define DORADB_DORA_ACTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "engine/database.h"
#include "obs/profiler.h"
#include "txn/transaction.h"
#include "util/mpsc_queue.h"
#include "util/status.h"

namespace doradb {
namespace dora {

class Executor;
class DoraEngine;
class DoraTxn;
class TxnArena;

// Thread-local lock modes: DORA needs only shared/exclusive (§4.1.3).
enum class LocalMode : uint8_t { kS = 0, kX = 1 };

// Environment handed to an action body, executing on an executor thread.
struct ActionEnv {
  Database* db;
  Transaction* txn;
  DoraTxn* dtxn;
  Executor* self;

  // Index probe routed through the executor's leaf-cursor cache: inside an
  // epoch batch, sorted neighbor keys resolve from one B+Tree descent
  // (storage/btree.h LeafCursor). Falls back to a plain Probe when epoch
  // batching is off. Defined in action.cc (needs Executor).
  Status Probe(IndexId index, std::string_view key, IndexEntry* out) const;
};

// Fixed-capacity, allocation-free callable holding an action body. The
// std::function it replaces heap-allocated every capture over two words —
// and with epoch batching, dispatch is the per-request hot path. Captures
// live inline (kCapacity bytes covers the largest workload capture, TPC-C
// NewOrder's input struct + line index vector) and dispatch goes through a
// per-capture-type static op table. Move-only, like the unique captures it
// stores; moves relocate the capture, so Action vectors recycle cleanly.
class ActionBody {
 public:
  static constexpr size_t kCapacity = 256;

  ActionBody() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ActionBody> &&
                std::is_invocable_r_v<Status, std::decay_t<F>&, ActionEnv&>>>
  ActionBody(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "action capture exceeds ActionBody::kCapacity — shrink "
                  "the lambda capture (move bulky state behind a "
                  "shared_ptr) or raise kCapacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned action capture");
    new (storage_) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  ActionBody(ActionBody&& o) noexcept { MoveFrom(o); }
  ActionBody& operator=(ActionBody&& o) noexcept {
    if (this != &o) {
      Destroy();
      MoveFrom(o);
    }
    return *this;
  }
  ActionBody(const ActionBody&) = delete;
  ActionBody& operator=(const ActionBody&) = delete;
  ~ActionBody() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }
  Status operator()(ActionEnv& env) { return ops_->invoke(storage_, env); }

 private:
  struct Ops {
    Status (*invoke)(void*, ActionEnv&);
    void (*relocate)(void* dst, void* src);  // move-construct dst, destroy src
    void (*destroy)(void*);
  };
  template <typename Fn>
  struct OpsFor {
    static constexpr Ops kOps = {
        [](void* p, ActionEnv& env) -> Status {
          return (*static_cast<Fn*>(p))(env);
        },
        [](void* dst, void* src) {
          Fn* s = static_cast<Fn*>(src);
          new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); }};
  };

  void MoveFrom(ActionBody& o) {
    ops_ = o.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, o.storage_);
      o.ops_ = nullptr;
    }
  }
  void Destroy() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kCapacity];
  const Ops* ops_ = nullptr;
};

// Header of every executor inbox message. Executors receive exactly three
// message kinds through one MPSC queue: dispatched actions, transaction
// completions (§4.1.3 steps 10-12), and the stop sentinel.
struct InboxEntry : MpscNode {
  enum class Kind : uint8_t { kAction = 0, kCompletion = 1, kStop = 2 };
  Kind kind = Kind::kAction;
  // Cycle timestamp of the push (Executor::PushToInbox). Feeds the
  // per-drain queue-wait histogram; 0 while metrics are disabled.
  uint64_t enqueued_tsc = 0;
};

// A unit of work routed to the executor owning the dataset it touches.
struct Action : InboxEntry {
  Action() { kind = Kind::kAction; }

  DoraTxn* dtxn = nullptr;
  TableId table = 0;
  uint64_t routing_value = 0;  // action identifier (single routing field)
  bool whole_dataset = false;  // empty-identifier action: dataset-wide lock
  LocalMode mode = LocalMode::kS;
  ActionBody body;
  size_t phase = 0;
  Executor* owner = nullptr;  // executor it was dispatched to
  // Global dispatch ticket (dora/ticket.h). 0 = single-queue dispatch, no
  // ordering constraint; nonzero = the executor defers admission until the
  // published horizon covers it, restoring the §4.2.3 atomicity.
  uint64_t ticket = 0;
  uint64_t parked_at = 0;  // cycle timestamp when parked (0 = never)
};

// Completion message: "release dtxn's thread-local locks". One per
// participating executor, embedded in the transaction context so fan-out
// allocates nothing; each message carries one reference on the context.
struct CompletionMsg : InboxEntry {
  CompletionMsg() { kind = Kind::kCompletion; }
  DoraTxn* dtxn = nullptr;
};

// Stop sentinel, pushed once by Executor::Stop().
struct StopMsg : InboxEntry {
  StopMsg() { kind = Kind::kStop; }
};

// Rendezvous point: counts down as the actions of its phase complete; the
// zeroing executor initiates the next phase (or commit/abort, §4.1.3).
// Copyable so RVPs live in a plain (capacity-recycled) vector — copies
// only ever happen during single-threaded graph materialization.
struct Rvp {
  std::atomic<int32_t> remaining{0};

  Rvp() = default;
  Rvp(const Rvp& o)
      : remaining(o.remaining.load(std::memory_order_relaxed)) {}
  Rvp& operator=(const Rvp& o) {
    remaining.store(o.remaining.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    return *this;
  }
};

// Declarative transaction flow graph, built by the dispatcher. Phases run
// in order; actions within a phase run in parallel on their executors.
class FlowGraph {
 public:
  FlowGraph() = default;

  FlowGraph& AddPhase() {
    phases_.emplace_back();
    return *this;
  }

  // Add an action to the last phase.
  FlowGraph& AddAction(TableId table, uint64_t routing_value, LocalMode mode,
                       ActionBody body) {
    phases_.back().push_back(
        ActionSpec{table, routing_value, false, mode, std::move(body)});
    return *this;
  }

  // Dataset-wide action (identifier = empty set): conflicts with every
  // action on the executor's datasets.
  FlowGraph& AddWholeDatasetAction(TableId table, uint32_t executor_index,
                                   LocalMode mode, ActionBody body) {
    phases_.back().push_back(ActionSpec{table, executor_index, true, mode,
                                        std::move(body)});
    return *this;
  }

  struct ActionSpec {
    TableId table;
    uint64_t routing_value;
    bool whole_dataset;
    LocalMode mode;
    ActionBody body;
  };

  const std::vector<std::vector<ActionSpec>>& phases() const {
    return phases_;
  }
  std::vector<std::vector<ActionSpec>>& phases() { return phases_; }
  size_t num_actions() const {
    size_t n = 0;
    for (const auto& p : phases_) n += p.size();
    return n;
  }

  // §A.4: derive the serial plan — each action in its own phase, in order.
  // The resource manager switches high-abort transactions to this plan
  // ("inserting empty rendezvous points between actions of the same phase").
  FlowGraph Serialized() &&;

 private:
  std::vector<std::vector<ActionSpec>> phases_;
};

// Per-transaction execution context shared by dispatcher and executors.
//
// Lifetime: reference-counted. The client's handle (DoraTxnRef) holds one
// reference; every in-flight completion message and commit-ack entry holds
// another. The last release recycles the context into its home arena with
// all vector capacities intact, so a warmed-up engine materializes and
// dispatches flow graphs without touching the allocator.
class DoraTxn {
 public:
  // Standalone construction (tests, non-pooled use): the caller owns the
  // object and Unref never recycles it.
  DoraTxn(Database* db, std::unique_ptr<Transaction> txn)
      : db_(db), txn_(std::move(txn)) {}

  // Pooled construction; see dora/arena.h.
  explicit DoraTxn(TxnArena* home) : home_(home) {}

  Database* db() { return db_; }
  Transaction* txn() { return txn_.get(); }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  void MarkAborted(const Status& why) {
    bool expected = false;
    if (aborted_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> g(mu_);
      abort_reason_ = why;
    }
  }
  Status abort_reason() const {
    std::lock_guard<std::mutex> g(mu_);
    return abort_reason_;
  }

  // Dispatcher blocks here (closed loop) until the terminal RVP finishes.
  // Direct futex wait on the done flag — no mutex, no condvar, and none of
  // the pre-sleep spinning of std::atomic::wait, which on saturated hosts
  // only delays the executor that would set the flag.
  Status Wait() {
    while (done_.load(std::memory_order_acquire) == 0) {
      detail::FutexWait(&done_, 0, /*timeout_us=*/-1);
    }
    return result_;
  }
  void Complete(Status result) {
    result_ = std::move(result);
    done_.store(1, std::memory_order_release);
    detail::FutexWake(&done_);
  }

  // --- reference counting (arena recycling) ---

  void Ref(uint32_t n = 1) { refs_.fetch_add(n, std::memory_order_relaxed); }
  // Defined in action.cc (needs TxnArena).
  void Unref();

  // Re-arm a recycled (or fresh) context for a new client transaction.
  void Reset(Database* db, std::unique_ptr<Transaction> txn) {
    db_ = db;
    txn_ = std::move(txn);
    aborted_.store(false, std::memory_order_relaxed);
    done_.store(0, std::memory_order_relaxed);
    result_ = Status::OK();
    abort_reason_ = Status::OK();
    refs_.store(1, std::memory_order_relaxed);
    prof.Reset();
  }

  // Stage-gap profiler card (obs/profiler.h): armed for sampled txns at
  // dispatch, stamped along the commit path, folded into registry
  // histograms once at completion.
  obs::StageStamps prof;

  // Materialized graph state (owned by the txn context; capacities survive
  // recycling).
  std::vector<Action> actions;                      // phase-major
  std::vector<Rvp> rvps;                            // one per phase
  std::vector<std::vector<Action*>> phase_actions;  // per phase
  std::vector<CompletionMsg> completion_msgs;       // one per participant
  std::vector<Executor*> scratch_owners;            // fan-out scratch

  size_t num_phases() const { return phase_actions.size(); }

 private:
  friend class TxnArena;

  Database* db_ = nullptr;
  std::unique_ptr<Transaction> txn_;
  TxnArena* home_ = nullptr;  // recycle target; null = standalone
  std::atomic<uint32_t> refs_{1};
  std::atomic<bool> aborted_{false};

  mutable std::mutex mu_;  // guards abort_reason_ only
  std::atomic<uint32_t> done_{0};
  Status result_;
  Status abort_reason_;
};

// Counted handle to a pooled DoraTxn. Copy = +1 ref; destruction = -1,
// recycling the context on the last release.
class DoraTxnRef {
 public:
  DoraTxnRef() = default;
  // Takes ownership of one existing reference.
  static DoraTxnRef Adopt(DoraTxn* t) {
    DoraTxnRef r;
    r.t_ = t;
    return r;
  }

  DoraTxnRef(const DoraTxnRef& o) : t_(o.t_) {
    if (t_ != nullptr) t_->Ref();
  }
  DoraTxnRef(DoraTxnRef&& o) noexcept : t_(o.t_) { o.t_ = nullptr; }
  DoraTxnRef& operator=(const DoraTxnRef& o) {
    if (this != &o) {
      if (o.t_ != nullptr) o.t_->Ref();
      Release();
      t_ = o.t_;
    }
    return *this;
  }
  DoraTxnRef& operator=(DoraTxnRef&& o) noexcept {
    if (this != &o) {
      Release();
      t_ = o.t_;
      o.t_ = nullptr;
    }
    return *this;
  }
  ~DoraTxnRef() { Release(); }

  DoraTxn* get() const { return t_; }
  DoraTxn* operator->() const { return t_; }
  DoraTxn& operator*() const { return *t_; }
  explicit operator bool() const { return t_ != nullptr; }

 private:
  void Release() {
    if (t_ != nullptr) {
      t_->Unref();
      t_ = nullptr;
    }
  }

  DoraTxn* t_ = nullptr;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_ACTION_H_
