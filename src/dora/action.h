// DORA actions, rendezvous points (RVPs), transaction flow graphs, and the
// per-transaction execution context (paper §4.1.2-4.1.3).
//
// An action is "a subset of a transaction's code which involves access to a
// single or a small set of records from the same table"; its identifier is
// the routing-field value(s) of the records it intends to access. RVPs
// separate a transaction into phases; actions of different phases never run
// concurrently.

#ifndef DORADB_DORA_ACTION_H_
#define DORADB_DORA_ACTION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "engine/database.h"
#include "txn/transaction.h"
#include "util/status.h"

namespace doradb {
namespace dora {

class Executor;
class DoraEngine;
class DoraTxn;

// Thread-local lock modes: DORA needs only shared/exclusive (§4.1.3).
enum class LocalMode : uint8_t { kS = 0, kX = 1 };

// Environment handed to an action body, executing on an executor thread.
struct ActionEnv {
  Database* db;
  Transaction* txn;
  DoraTxn* dtxn;
  Executor* self;
};

using ActionBody = std::function<Status(ActionEnv&)>;

// A unit of work routed to the executor owning the dataset it touches.
struct Action {
  DoraTxn* dtxn = nullptr;
  TableId table = 0;
  uint64_t routing_value = 0;  // action identifier (single routing field)
  bool whole_dataset = false;  // empty-identifier action: dataset-wide lock
  LocalMode mode = LocalMode::kS;
  ActionBody body;
  size_t phase = 0;
  Executor* owner = nullptr;   // executor it was dispatched to
  uint64_t parked_at = 0;      // cycle timestamp when parked (0 = never)
};

// Rendezvous point: counts down as the actions of its phase complete; the
// zeroing executor initiates the next phase (or commit/abort, §4.1.3).
struct Rvp {
  std::atomic<int32_t> remaining{0};
};

// Declarative transaction flow graph, built by the dispatcher. Phases run
// in order; actions within a phase run in parallel on their executors.
class FlowGraph {
 public:
  FlowGraph() = default;

  FlowGraph& AddPhase() {
    phases_.emplace_back();
    return *this;
  }

  // Add an action to the last phase.
  FlowGraph& AddAction(TableId table, uint64_t routing_value, LocalMode mode,
                       ActionBody body) {
    phases_.back().push_back(
        ActionSpec{table, routing_value, false, mode, std::move(body)});
    return *this;
  }

  // Dataset-wide action (identifier = empty set): conflicts with every
  // action on the executor's datasets.
  FlowGraph& AddWholeDatasetAction(TableId table, uint32_t executor_index,
                                   LocalMode mode, ActionBody body) {
    phases_.back().push_back(ActionSpec{table, executor_index, true, mode,
                                        std::move(body)});
    return *this;
  }

  struct ActionSpec {
    TableId table;
    uint64_t routing_value;
    bool whole_dataset;
    LocalMode mode;
    ActionBody body;
  };

  const std::vector<std::vector<ActionSpec>>& phases() const {
    return phases_;
  }
  std::vector<std::vector<ActionSpec>>& phases() { return phases_; }
  size_t num_actions() const {
    size_t n = 0;
    for (const auto& p : phases_) n += p.size();
    return n;
  }

  // §A.4: derive the serial plan — each action in its own phase, in order.
  // The resource manager switches high-abort transactions to this plan
  // ("inserting empty rendezvous points between actions of the same phase").
  FlowGraph Serialized() &&;

 private:
  std::vector<std::vector<ActionSpec>> phases_;
};

// Per-transaction execution context shared by dispatcher and executors.
class DoraTxn {
 public:
  DoraTxn(Database* db, std::unique_ptr<Transaction> txn)
      : db_(db), txn_(std::move(txn)) {}

  Database* db() { return db_; }
  Transaction* txn() { return txn_.get(); }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  void MarkAborted(const Status& why) {
    bool expected = false;
    if (aborted_.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
      std::lock_guard<std::mutex> g(mu_);
      abort_reason_ = why;
    }
  }
  Status abort_reason() const {
    std::lock_guard<std::mutex> g(mu_);
    return abort_reason_;
  }

  // Dispatcher blocks here (closed loop) until the terminal RVP finishes.
  Status Wait() {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return done_; });
    return result_;
  }
  void Complete(Status result) {
    {
      std::lock_guard<std::mutex> g(mu_);
      result_ = std::move(result);
      done_ = true;
    }
    cv_.notify_all();
  }

  // Materialized graph state (owned by the txn context).
  std::vector<std::unique_ptr<Action>> actions;
  std::vector<std::unique_ptr<Rvp>> rvps;           // one per phase
  std::vector<std::vector<Action*>> phase_actions;  // per phase

  size_t num_phases() const { return phase_actions.size(); }

 private:
  Database* const db_;
  std::unique_ptr<Transaction> txn_;
  std::atomic<bool> aborted_{false};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  Status result_;
  Status abort_reason_;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_ACTION_H_
