// Global dispatch tickets: the lock-free replacement for the paper's
// §4.2.3 atomic multi-queue enqueue.
//
// With mutex-guarded inboxes, a dispatcher latched every target queue in
// global executor order before publishing a phase's actions, so two
// transactions with overlapping executor sets could never interleave their
// submissions — the property that (with FIFO queues and commit-held local
// locks) makes same-flow-graph transactions deadlock-free. Lock-free
// inboxes lose that atomicity: T1's enqueue to executor A can land before
// T2's while T2's enqueue to executor B lands before T1's, and the two
// transactions then block each other in a cycle.
//
// Tickets restore a strict total order without any latch:
//  * A dispatcher about to enqueue a phase to MORE THAN ONE executor takes
//    a ticket t (one fetch_add), stamps every action of the phase with it,
//    enqueues them all, and then PUBLISHES t.
//  * The published horizon H is the largest ticket such that every ticket
//    <= H is published. Since enqueues happen before publication, H >= t
//    implies every action of every multi-queue dispatch with ticket <= t
//    is already in its target inbox.
//  * An executor defers a drained action with ticket t until it observes
//    H >= t, then drains its inbox ONCE MORE and admits deferred actions
//    in ticket order. The post-observation drain provably contains every
//    action with a smaller ticket bound for this executor, so admission
//    order at every common executor matches the global ticket order —
//    exactly the no-interleaving guarantee the latches provided, now with
//    a single shared fetch_add on the multi-queue path only
//    (single-executor phases skip tickets entirely: ticket 0 admits
//    immediately).
//
// Publication tracking is a ring of ticket slots: Publish stores the
// ticket into its slot and rolls the horizon forward over consecutive
// published slots. The window between Take and Publish is a handful of
// CAS enqueues — nanoseconds — so executors waiting on the horizon spin
// briefly at worst.

#ifndef DORADB_DORA_TICKET_H_
#define DORADB_DORA_TICKET_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/spinlock.h"

namespace doradb {
namespace dora {

class TicketLine {
 public:
  explicit TicketLine(size_t ring_slots = 1u << 15)
      : mask_(ring_slots - 1), ring_(ring_slots) {
    // ring_slots must be a power of two and bounds the number of
    // in-flight (taken, unpublished) dispatches.
  }
  TicketLine(const TicketLine&) = delete;
  TicketLine& operator=(const TicketLine&) = delete;

  // Draw the next ticket. Tickets start at 1; 0 means "unticketed".
  uint64_t Take() {
    const uint64_t t = next_.fetch_add(1, std::memory_order_relaxed);
    // Ring guard: with more in-flight dispatches than slots, a slot would
    // be overwritten before its ticket was consumed into the horizon. The
    // window is enqueue-sized, so this spin is effectively never taken.
    while (t - published_.load(std::memory_order_acquire) > mask_) {
      CpuRelax();
    }
    return t;
  }

  // Mark `t` fully enqueued and roll the horizon over any now-consecutive
  // published tickets (helping later publishers that finished early).
  //
  // The slot store and the roll-loop slot load are seq_cst, not
  // release/acquire: two racing publishers form the store-buffering
  // litmus (each stores its own slot, then loads the other's), and under
  // release/acquire BOTH loads may read stale — each returns believing
  // the other will roll the horizon, stranding a published ticket outside
  // it forever (nothing else re-runs the roll, so the deferred actions
  // and their client would hang). Sequential consistency forbids that
  // outcome: whichever slot store is later in the total order, its
  // publisher's subsequent load must see the earlier one.
  void Publish(uint64_t t) {
    ring_[t & mask_].store(t, std::memory_order_seq_cst);
    uint64_t h = published_.load(std::memory_order_relaxed);
    for (;;) {
      if (ring_[(h + 1) & mask_].load(std::memory_order_seq_cst) != h + 1) {
        return;
      }
      // acq_rel: the successful advance must carry the publisher's (and
      // every earlier advancer's) enqueues into any thread that
      // acquire-loads the new horizon.
      if (published_.compare_exchange_weak(h, h + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        ++h;
      }
      // On CAS failure `h` was reloaded: another thread advanced; keep
      // scanning from its value.
    }
  }

  // Every multi-queue dispatch with ticket <= horizon() is fully enqueued.
  uint64_t horizon() const {
    return published_.load(std::memory_order_acquire);
  }

  // Tickets issued so far (stats).
  uint64_t issued() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

 private:
  const uint64_t mask_;
  std::atomic<uint64_t> next_{1};
  std::atomic<uint64_t> published_{0};  // all tickets <= this are published
  std::vector<std::atomic<uint64_t>> ring_;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_TICKET_H_
