// Thread-local lock table (paper §4.1.3): each executor serializes
// conflicting actions on its datasets with this structure instead of the
// centralized lock manager. It is touched ONLY by its owning executor
// thread, so it needs no latching at all — this is the mechanism that
// replaces the latched, shared lock heads whose contention the paper
// measures.
//
// Conflict resolution happens at the action-identifier level with two-mode
// (S/X) key-prefix-style locks: an exact identifier locks one routing-field
// value; an empty identifier ("whole dataset") conflicts with everything.
// Local locks are held until the owning transaction commits or aborts
// (strictness), released by the completion message of §4.1.3 steps 10-12.

#ifndef DORADB_DORA_LOCAL_LOCK_TABLE_H_
#define DORADB_DORA_LOCAL_LOCK_TABLE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dora/action.h"

namespace doradb {
namespace dora {

class LocalLockTable {
 public:
  // Try to grant `a` its local lock. Returns true if granted (the executor
  // runs the action now); false if the action was parked on a wait queue —
  // it will be returned by a later Release call.
  bool TryAcquire(Action* a);

  // Release every lock `dtxn` holds here (commit/abort completion).
  // Appends actions that became runnable, in grant order, to `runnable`.
  void ReleaseAll(DoraTxn* dtxn, std::vector<Action*>* runnable);

  // Undo exactly one grant previously made to `a` (the wake path's
  // stale-route bounce: a parked action granted after a routing migration
  // published must give its lock back and redispatch instead of executing
  // here). Appends any waiters the release unblocks to `runnable`.
  void ReleaseGrant(Action* a, std::vector<Action*>* runnable);

  // Local deadlock resolution (the paper notes DORA must surface local-
  // lock waits to a deadlock detector, §4.2.3): remove parked actions
  // older than `deadline_cycles` into `expired` (the executor aborts their
  // transactions); waiters unblocked by the removals are granted and
  // appended to `runnable`.
  void CollectExpired(uint64_t deadline_cycles, std::vector<Action*>* expired,
                      std::vector<Action*>* runnable);

  bool Empty() const { return holdings_.empty() && whole_.Free(); }
  size_t num_held_transactions() const { return holdings_.size(); }
  size_t num_parked() const { return parked_; }

  uint64_t acquires() const { return acquires_; }
  uint64_t conflicts() const { return conflicts_; }

 private:
  struct Entry {
    DoraTxn* x_owner = nullptr;
    uint32_t x_count = 0;  // re-entrant X grants by x_owner
    std::vector<DoraTxn*> s_owners;
    std::deque<Action*> waiters;

    bool Free() const {
      return x_owner == nullptr && s_owners.empty() && waiters.empty();
    }
  };

  // Can `a` be granted right now (ignoring queue fairness)?
  bool Grantable(const Action* a) const;
  static bool EntryGrantable(const Entry& e, const Action* a);
  void Grant(Action* a);
  // Re-check an entry's waiters after a release; grants FIFO until blocked.
  void WakeEntry(Entry& e, std::vector<Action*>* runnable);

  std::unordered_map<uint64_t, Entry> exact_;
  Entry whole_;
  uint32_t exact_granted_ = 0;  // granted exact locks (blocks whole grants)

  struct Holding {
    uint64_t key;
    bool whole;
  };
  std::unordered_map<DoraTxn*, std::vector<Holding>> holdings_;

  size_t parked_ = 0;
  uint64_t acquires_ = 0;
  uint64_t conflicts_ = 0;
};

}  // namespace dora
}  // namespace doradb

#endif  // DORADB_DORA_LOCAL_LOCK_TABLE_H_
