// Transaction state: identity, 2PL lock bookkeeping, in-memory undo chain,
// waits-for edges for deadlock detection, and post-commit actions (used by
// DORA to flag secondary-index entries outside any transaction, §4.2.2).

#ifndef DORADB_TXN_TRANSACTION_H_
#define DORADB_TXN_TRANSACTION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "lock/lock_request.h"
#include "log/log_record.h"
#include "storage/types.h"
#include "util/spinlock.h"

namespace doradb {

enum class TxnState : uint8_t {
  kActive = 0,
  kCommitted,
  kAborted,
};

// Undo information for one heap operation, applied in reverse on abort.
struct UndoRecord {
  enum class Kind : uint8_t { kInsert, kUpdate, kDelete };
  Kind kind;
  TableId table;
  Rid rid;
  std::string before;  // old image for kUpdate / kDelete
  Lsn lsn = kInvalidLsn;
};

// Logical undo for one index operation.
struct IndexUndo {
  enum class Kind : uint8_t { kInsert, kRemove };
  Kind kind;
  IndexId index;
  std::string key;
  Rid rid;
  uint64_t aux = 0;
};

class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TxnId id() const { return id_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  Lsn last_lsn() const { return last_lsn_; }
  void set_last_lsn(Lsn lsn) { last_lsn_ = lsn; }

  // Cycle timestamp at Begin (TxnManager stamps it); the commit paths
  // derive the commit-latency histogram from it. 0 = never stamped.
  uint64_t start_tsc() const { return start_tsc_; }
  void set_start_tsc(uint64_t tsc) { start_tsc_ = tsc; }

  // Checkpoint pin: a lower bound on the LSN of every undoable (heap)
  // record this transaction has logged or is about to log — set once,
  // immediately before its first heap-op append, to the clock's value at
  // that instant. The fuzzy checkpoint horizon must not pass the minimum
  // pin over registered transactions, or truncation could drop records a
  // restart undo still needs. Transactions that never touch a heap (the
  // DORA system transaction holding table IX locks, pure readers) never
  // pin, so they do not hold back truncation. kInvalidLsn = unset.
  void PinUndoLow(Lsn lsn) {
    Lsn expect = kInvalidLsn;
    undo_low_.compare_exchange_strong(expect, lsn, std::memory_order_release,
                                      std::memory_order_relaxed);
  }
  Lsn undo_low() const { return undo_low_.load(std::memory_order_acquire); }

  // ---- lock manager bookkeeping ----
  //
  // A DORA transaction's actions execute on several executor threads inside
  // one phase, so all per-transaction bookkeeping (request pool, held-lock
  // list, undo chains, log chaining) must tolerate concurrent callers; a
  // short spinlock serializes them.

  // Stable-address pool of request nodes for this transaction.
  LockRequest* NewRequest() {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    request_pool_.emplace_back();
    return &request_pool_.back();
  }

  struct HeldLock {
    LockId id;
    LockRequest* req;
  };

  void PushHeld(const LockId& id, LockRequest* req) {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    held_locks_.push_back(HeldLock{id, req});
  }

  // Snapshot + clear, for ReleaseAll (the transaction is quiescent then,
  // but the snapshot keeps the invariant simple).
  std::vector<HeldLock> TakeHeldLocks() {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    std::vector<HeldLock> out;
    out.swap(held_locks_);
    return out;
  }

  size_t held_count() const {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    return held_locks_.size();
  }

  LockRequest* FindHeld(const LockId& id) {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    for (const auto& h : held_locks_) {
      if (h.id == id) return h.req;
    }
    return nullptr;
  }

  // Append a log record chained to this transaction (sets prev_lsn, updates
  // last_lsn atomically w.r.t. sibling actions) and optionally record undo.
  template <typename LogMgr, typename Rec>
  Lsn ChainAppend(LogMgr* log, Rec* rec) {
    TatasGuard g(bk_lock_, TimeClass::kLogWork);
    if (rec->type != LogType::kBegin) logged_work_ = true;
    rec->prev_lsn = last_lsn_;
    const Lsn end = log->Append(rec);
    last_lsn_ = rec->lsn;
    return end;
  }

  // True once any record beyond the eager kBegin has been chained: the
  // transaction has logged work whose commit needs a durability wait.
  // False = read-only (a lost kBegin is harmless), which is what lets a
  // degraded engine keep committing pure readers.
  bool logged_work() const { return logged_work_; }

  void PushUndo(UndoRecord rec) {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    undo_.push_back(std::move(rec));
  }
  void PushIndexUndo(IndexUndo rec) {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    index_undo_.push_back(std::move(rec));
  }

  // ---- waits-for edges (read by the deadlock detector from any thread) ----

  void SetWaitsFor(std::vector<TxnId> holders) {
    TatasGuard g(waits_lock_, TimeClass::kLockOther);
    waits_for_ = std::move(holders);
  }
  void ClearWaitsFor() {
    TatasGuard g(waits_lock_, TimeClass::kLockOther);
    waits_for_.clear();
  }
  std::vector<TxnId> WaitsForSnapshot() const {
    TatasGuard g(waits_lock_, TimeClass::kLockOther);
    return waits_for_;
  }

  // ---- undo chains ----

  std::vector<UndoRecord>& undo() { return undo_; }
  std::vector<IndexUndo>& index_undo() { return index_undo_; }

  // Actions run after a successful commit, outside the transaction (e.g.
  // setting the deleted flag on secondary index entries, §4.2.2).
  void AddPostCommit(std::function<void()> fn) {
    TatasGuard g(bk_lock_, TimeClass::kLockOther);
    post_commit_.push_back(std::move(fn));
  }
  std::vector<std::function<void()>>& post_commit() { return post_commit_; }

 private:
  const TxnId id_;
  TxnState state_ = TxnState::kActive;
  Lsn last_lsn_ = kInvalidLsn;
  bool logged_work_ = false;
  uint64_t start_tsc_ = 0;
  std::atomic<Lsn> undo_low_{kInvalidLsn};

  mutable TatasLock bk_lock_;  // serializes bookkeeping across executors
  std::deque<LockRequest> request_pool_;
  std::vector<HeldLock> held_locks_;

  mutable TatasLock waits_lock_;
  std::vector<TxnId> waits_for_;

  std::vector<UndoRecord> undo_;
  std::vector<IndexUndo> index_undo_;
  std::vector<std::function<void()>> post_commit_;
};

}  // namespace doradb

#endif  // DORADB_TXN_TRANSACTION_H_
