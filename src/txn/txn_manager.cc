#include "txn/txn_manager.h"

namespace doradb {

std::unique_ptr<Transaction> TxnManager::Begin() {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  lm_->RegisterTxn(txn.get());
  {
    std::lock_guard<std::mutex> g(mu_);
    active_.insert(id);
  }
  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = id;
  txn->ChainAppend(log_, &rec);
  started_.fetch_add(1, std::memory_order_relaxed);
  return txn;
}

void TxnManager::Finish(Transaction* txn) {
  lm_->UnregisterTxn(txn->id());
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id());
}

std::vector<TxnId> TxnManager::ActiveTxns() const {
  std::lock_guard<std::mutex> g(mu_);
  return std::vector<TxnId>(active_.begin(), active_.end());
}

size_t TxnManager::num_active() const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.size();
}

}  // namespace doradb
