#include "txn/txn_manager.h"

#include "util/clock.h"

namespace doradb {

std::unique_ptr<Transaction> TxnManager::Begin() {
  const TxnId id = next_id_.fetch_add(1, std::memory_order_relaxed);
  auto txn = std::make_unique<Transaction>(id);
  txn->set_start_tsc(Cycles::Now());
  lm_->RegisterTxn(txn.get());
  // Log kBegin first, then register with its LSN: the checkpoint snapshot
  // must never observe an active transaction without a begin LSN. The
  // reverse race — kBegin logged, registration not yet visible — is
  // harmless: the transaction has no other records yet, and a truncated
  // kBegin only shortens a loser's undo chain walk past its first record.
  LogRecord rec;
  rec.type = LogType::kBegin;
  rec.txn = id;
  txn->ChainAppend(log_, &rec);
  {
    std::lock_guard<std::mutex> g(mu_);
    active_.emplace(id, txn.get());
  }
  started_.fetch_add(1, std::memory_order_relaxed);
  return txn;
}

void TxnManager::Finish(Transaction* txn) {
  lm_->UnregisterTxn(txn->id());
  std::lock_guard<std::mutex> g(mu_);
  active_.erase(txn->id());
}

std::vector<TxnId> TxnManager::ActiveTxns() const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<TxnId> out;
  out.reserve(active_.size());
  for (const auto& [id, txn] : active_) out.push_back(id);
  return out;
}

std::vector<TxnId> TxnManager::ActiveTxnSnapshot(Lsn* min_undo_low) const {
  std::lock_guard<std::mutex> g(mu_);
  std::vector<TxnId> out;
  out.reserve(active_.size());
  Lsn min_pin = ~Lsn{0};
  for (const auto& [id, txn] : active_) {
    out.push_back(id);
    const Lsn pin = txn->undo_low();
    if (pin != kInvalidLsn && pin < min_pin) min_pin = pin;
  }
  *min_undo_low = min_pin;
  return out;
}

size_t TxnManager::num_active() const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.size();
}

}  // namespace doradb
