// Transaction manager: id allocation, active-transaction bookkeeping (for
// checkpoints), and begin-record logging. The commit/abort protocols live in
// engine::Database, which owns the storage objects they touch.

#ifndef DORADB_TXN_TXN_MANAGER_H_
#define DORADB_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "lock/lock_manager.h"
#include "log/log_backend.h"
#include "txn/transaction.h"

namespace doradb {

class TxnManager {
 public:
  TxnManager(LockManager* lm, LogBackend* log) : lm_(lm), log_(log) {}

  // Start a transaction: allocate an id, register it with the lock
  // manager's deadlock detector, log kBegin.
  std::unique_ptr<Transaction> Begin();

  // Bookkeeping at transaction end (Database drives the full protocol).
  void Finish(Transaction* txn);

  std::vector<TxnId> ActiveTxns() const;
  size_t num_active() const;

  // Fuzzy-checkpoint snapshot: the active ids plus the smallest undo-low
  // pin among them (~0 if no active transaction has logged heap work). A
  // transaction's pin lower-bounds every undoable record it ever logs, is
  // set before its first heap-op append, and the transaction stays
  // registered until its last heap apply (post-commit deletes included) —
  // so no registered transaction can have un-applied or undo-needed log
  // records below the returned minimum. Transactions that never log heap
  // work (the DORA system transaction, pure readers) never pin, keeping
  // long-lived lock holders from freezing truncation.
  std::vector<TxnId> ActiveTxnSnapshot(Lsn* min_undo_low) const;

  // Cold-start id resume: ensure every future id exceeds `txn_id`. A
  // reopened lifetime must not reissue an id that still has records
  // (e.g. a kCommit) in the recovered log, or an uncommitted reuse of
  // that id would inherit the old commit and become a recovery winner.
  void AdvanceTxnIdPast(TxnId txn_id) {
    TxnId cur = next_id_.load(std::memory_order_relaxed);
    while (txn_id + 1 > cur &&
           !next_id_.compare_exchange_weak(cur, txn_id + 1,
                                           std::memory_order_acq_rel)) {
    }
  }

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }

 private:
  LockManager* const lm_;
  LogBackend* const log_;
  std::atomic<TxnId> next_id_{1};
  std::atomic<uint64_t> started_{0};

  mutable std::mutex mu_;
  // Registered (active) transactions. Pointers stay valid: every path that
  // ends a transaction calls Finish before the object can be destroyed.
  std::unordered_map<TxnId, Transaction*> active_;
};

}  // namespace doradb

#endif  // DORADB_TXN_TXN_MANAGER_H_
