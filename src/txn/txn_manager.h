// Transaction manager: id allocation, active-transaction bookkeeping (for
// checkpoints), and begin-record logging. The commit/abort protocols live in
// engine::Database, which owns the storage objects they touch.

#ifndef DORADB_TXN_TXN_MANAGER_H_
#define DORADB_TXN_TXN_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "lock/lock_manager.h"
#include "log/log_backend.h"
#include "txn/transaction.h"

namespace doradb {

class TxnManager {
 public:
  TxnManager(LockManager* lm, LogBackend* log) : lm_(lm), log_(log) {}

  // Start a transaction: allocate an id, register it with the lock
  // manager's deadlock detector, log kBegin.
  std::unique_ptr<Transaction> Begin();

  // Bookkeeping at transaction end (Database drives the full protocol).
  void Finish(Transaction* txn);

  std::vector<TxnId> ActiveTxns() const;
  size_t num_active() const;

  uint64_t started() const { return started_.load(std::memory_order_relaxed); }

 private:
  LockManager* const lm_;
  LogBackend* const log_;
  std::atomic<TxnId> next_id_{1};
  std::atomic<uint64_t> started_{0};

  mutable std::mutex mu_;
  std::unordered_set<TxnId> active_;
};

}  // namespace doradb

#endif  // DORADB_TXN_TXN_MANAGER_H_
