// Partitioned WAL (plog) tests: GSN stamping and merge, the global flush
// horizon, crash recovery through the LogBackend facade with independently
// torn per-partition tails, and DORA's pipelined commit / early lock
// release on top of it.

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "log/recovery.h"
#include "plog/partitioned_log_manager.h"
#include "util/rng.h"

namespace doradb {
namespace {

// Fresh (pre-wiped) per-test data directory for file-backed log streams.
std::string TempLogDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_plog_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

plog::PartitionedLogManager::Options PlogOpts(uint32_t parts,
                                              uint64_t interval_us = 20) {
  plog::PartitionedLogManager::Options o;
  o.num_partitions = parts;
  o.log.flush_interval_us = interval_us;
  return o;
}

Database::Options PlogDb(uint32_t parts = 4, uint64_t interval_us = 20) {
  Database::Options o;
  o.buffer_frames = 512;
  o.log_backend = LogBackendKind::kPartitioned;
  o.log_partitions = parts;
  o.log.flush_interval_us = interval_us;
  o.lock.wait_timeout_us = 300000;
  return o;
}

plog::PartitionedLogManager* Plm(Database* db) {
  return static_cast<plog::PartitionedLogManager*>(db->log_manager());
}

// --------------------------------------------------------- plog unit tests

TEST(PlogTest, ConcurrentBoundAppendersGetUniqueOrderedGsns) {
  plog::PartitionedLogManager log{PlogOpts(4)};
  constexpr int kThreads = 4, kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      log.BindThisThread(static_cast<uint32_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        LogRecord rec;
        rec.type = LogType::kUpdate;
        rec.txn = static_cast<TxnId>(t + 1);
        rec.after = std::string(16, static_cast<char>('a' + t));
        log.Append(&rec);
      }
    });
  }
  for (auto& t : threads) t.join();
  log.FlushTo(log.current_lsn());
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), static_cast<size_t>(kThreads * kPerThread));
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].lsn, recs[i].lsn) << "merge must be GSN-sorted";
  }
  for (const auto& r : recs) {
    ASSERT_EQ(r.after.size(), 16u);
    EXPECT_EQ(r.after[0], static_cast<char>('a' + (r.txn - 1)));
  }
}

TEST(PlogTest, WaitFlushedCoversEveryPartition) {
  plog::PartitionedLogManager log{PlogOpts(2, /*interval_us=*/1000000)};
  log.BindThisThread(0);
  LogRecord a;
  a.type = LogType::kBegin;
  a.txn = 1;
  log.Append(&a);
  log.BindThisThread(1);
  LogRecord b;
  b.type = LogType::kCommit;
  b.txn = 1;
  const Lsn end = log.Append(&b);
  log.WaitFlushed(end);
  EXPECT_GE(log.flushed_lsn(), end)
      << "the horizon is the min over all partitions";
  EXPECT_EQ(log.ReadStable().size(), 2u);
}

TEST(PlogTest, DiscardLosesUnflushedOnly) {
  plog::PartitionedLogManager log{PlogOpts(2, /*interval_us=*/1000000)};
  log.BindThisThread(0);
  LogRecord a;
  a.type = LogType::kBegin;
  a.txn = 1;
  const Lsn end = log.Append(&a);
  log.WaitFlushed(end);
  log.BindThisThread(1);
  LogRecord b;
  b.type = LogType::kCommit;
  b.txn = 1;
  log.Append(&b);  // NOT flushed
  log.DiscardVolatileTail();
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, LogType::kBegin);
}

TEST(PlogTest, HorizonDropsFlushedAheadRecords) {
  // Partition 1 flushes ahead; partition 0 crashes with its buffer. The
  // survivor in partition 1 has a GSN above the consistent horizon and
  // must be dropped (its same-transaction predecessor is gone), even
  // though its bytes are "stable".
  plog::PartitionedLogManager log{PlogOpts(2, /*interval_us=*/1000000)};
  log.BindThisThread(0);
  LogRecord mine;
  mine.type = LogType::kUpdate;
  mine.txn = 1;
  log.Append(&mine);  // gsn 1, volatile in partition 0
  log.BindThisThread(1);
  LogRecord ahead;
  ahead.type = LogType::kCommit;
  ahead.txn = 1;
  log.Append(&ahead);    // gsn 2
  log.FlushPartition(1);  // partition 1 is ahead of partition 0
  log.DiscardVolatileTail();
  EXPECT_TRUE(log.ReadStable().empty())
      << "commit above the horizon must not survive its lost update";
}

TEST(PlogTest, TornTailTruncatesAtLastWholeRecord) {
  plog::PartitionedLogManager log{PlogOpts(2, /*interval_us=*/1000000)};
  log.BindThisThread(0);
  LogRecord a;
  a.type = LogType::kInsert;
  a.txn = 1;
  a.after = std::string(64, 'x');
  log.Append(&a);
  LogRecord b;
  b.type = LogType::kInsert;
  b.txn = 1;
  b.after = std::string(64, 'y');
  log.Append(&b);
  // Crash mid-flush: record a fully reaches the stable region, record b
  // tears (all but 10 of its bytes).
  const size_t total = log.partition(0)->stable_size();
  (void)total;
  std::vector<uint8_t> tmp;
  const size_t a_bytes = a.SerializeTo(&tmp);
  const size_t b_bytes = b.SerializeTo(&tmp);
  log.partition(0)->PartialFlushTorn(a_bytes + b_bytes - 10);
  log.DiscardVolatileTail();
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].lsn, a.lsn);
  EXPECT_EQ(recs[0].after, std::string(64, 'x'));
}

// --------------------------------------------- file-backed segments

TEST(PlogFileTest, ReopenReplaysStableStreamAndAdvancesClock) {
  const std::string dir = TempLogDir("reopen");
  plog::PartitionedLogManager::Options o = PlogOpts(2, 1000000);
  o.data_dir = dir;
  Lsn max_gsn = 0;
  {
    plog::PartitionedLogManager log{o};
    for (int i = 0; i < 10; ++i) {
      log.BindThisThread(static_cast<uint32_t>(i));
      LogRecord rec;
      rec.type = LogType::kUpdate;
      rec.txn = 1;
      rec.after = "v" + std::to_string(i);
      max_gsn = log.Append(&rec);
    }
    log.FlushTo(log.current_lsn());
  }  // clean close: segment files + watermark headers on disk

  plog::PartitionedLogManager log{o};  // second lifetime
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 10u) << "cold start must rebuild the streams";
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LT(recs[i - 1].lsn, recs[i].lsn);
  }
  EXPECT_GE(log.current_lsn(), max_gsn)
      << "the GSN clock must resume past every recovered record";
  LogRecord rec;
  rec.type = LogType::kCommit;
  rec.txn = 1;
  EXPECT_GT(log.Append(&rec), max_gsn) << "no GSN may ever be reissued";
}

TEST(PlogFileTest, TornSegmentTailTruncatedOnReopen) {
  const std::string dir = TempLogDir("torn");
  plog::PartitionedLogManager::Options o = PlogOpts(1, 1000000);
  o.data_dir = dir;
  {
    plog::PartitionedLogManager log{o};
    log.BindThisThread(0);
    LogRecord a;
    a.type = LogType::kInsert;
    a.txn = 1;
    a.after = std::string(64, 'x');
    log.Append(&a);
    LogRecord b;
    b.type = LogType::kInsert;
    b.txn = 1;
    b.after = std::string(64, 'y');
    log.Append(&b);
    log.FlushTo(log.current_lsn());
    // The dead process's last write tears mid-record on the medium.
    log.partition(0)->TearStableTail(10);
    log.SimulateKill();
  }
  plog::PartitionedLogManager log{o};
  const auto recs = log.ReadStable();
  ASSERT_EQ(recs.size(), 1u)
      << "reopen must truncate the torn tail at the last whole record";
  EXPECT_EQ(recs[0].after, std::string(64, 'x'));
  // Appends after the truncation must extend a decodable stream.
  log.BindThisThread(0);
  LogRecord c;
  c.type = LogType::kInsert;
  c.txn = 2;
  c.after = std::string(64, 'z');
  log.Append(&c);
  log.FlushTo(log.current_lsn());
  EXPECT_EQ(log.ReadStable().size(), 2u);
}

TEST(PlogFileTest, ReopenTruncatesFlushedAheadRecords) {
  // Cross-lifetime variant of HorizonDropsFlushedAheadRecords, with the
  // stronger physical claim: a record above the merged cold-start horizon
  // must not merely be hidden by the first recovery's merge — it must be
  // truncated OFF the segment files, or a later lifetime whose horizon
  // has moved past it would resurrect it.
  const std::string dir = TempLogDir("flushed_ahead");
  plog::PartitionedLogManager::Options o = PlogOpts(2, 1000000);
  o.data_dir = dir;
  {
    plog::PartitionedLogManager log{o};
    log.BindThisThread(0);
    LogRecord mine;
    mine.type = LogType::kUpdate;
    mine.txn = 1;
    log.Append(&mine);  // gsn 1, volatile in partition 0 — dies unflushed
    log.BindThisThread(1);
    LogRecord ahead;
    ahead.type = LogType::kCommit;
    ahead.txn = 1;
    log.Append(&ahead);     // gsn 2
    log.FlushPartition(1);  // partition 1 is durably ahead of partition 0
    log.SimulateKill();
  }
  plog::PartitionedLogManager log{o};
  EXPECT_TRUE(log.ReadStable().empty())
      << "commit above the horizon must not survive its lost update";
  EXPECT_EQ(log.partition(1)->stable_size(), 0u)
      << "the suprahorizon record must be physically gone, not just "
         "hidden from this recovery's merge";
}

TEST(PlogFileTest, DecodeErrorNamesSegmentFileAndOffset) {
  const std::string dir = TempLogDir("decode_err");
  plog::PartitionedLogManager::Options o = PlogOpts(1, 1000000);
  o.data_dir = dir;
  plog::PartitionedLogManager log{o};
  log.BindThisThread(0);
  for (int i = 0; i < 8; ++i) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = 1;
    rec.after = std::string(40, static_cast<char>('a' + i));
    log.Append(&rec);
  }
  log.FlushTo(log.current_lsn());
  log.partition(0)->FlipStableByte(log.partition(0)->stable_size() / 2);
  Status tail;
  const auto recs = log.partition(0)->ReadStable(&tail);
  EXPECT_LT(recs.size(), 8u);
  ASSERT_FALSE(tail.ok());
  EXPECT_NE(tail.ToString().find("seg-"), std::string::npos)
      << "the error must name the segment file: " << tail.ToString();
  EXPECT_NE(tail.ToString().find("offset"), std::string::npos)
      << "the error must carry the byte offset: " << tail.ToString();
}

TEST(PlogFileTest, MemoryDecodeErrorStillReportsOffset) {
  plog::PartitionedLogManager log{PlogOpts(1, 1000000)};
  log.BindThisThread(0);
  for (int i = 0; i < 4; ++i) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = 1;
    rec.after = std::string(40, 'm');
    log.Append(&rec);
  }
  log.FlushTo(log.current_lsn());
  log.partition(0)->FlipStableByte(log.partition(0)->stable_size() / 2);
  Status tail;
  (void)log.partition(0)->ReadStable(&tail);
  ASSERT_FALSE(tail.ok());
  EXPECT_NE(tail.ToString().find("<memory>"), std::string::npos)
      << tail.ToString();
  EXPECT_NE(tail.ToString().find("offset"), std::string::npos);
}

TEST(PlogFileTest, SegmentsRollAndCheckpointTruncationUnlinksThem) {
  const std::string dir = TempLogDir("unlink");
  Database::Options opts = PlogDb(/*parts=*/2);
  opts.data_dir = dir;
  opts.log_segment_bytes = 1024;  // roll every few records
  Database db(opts);
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  std::vector<Rid> rids;
  for (int i = 0; i < 60; ++i) {
    db.log_manager()->BindThisThread(static_cast<uint32_t>(i));
    auto txn = db.Begin();
    Rid rid;
    ASSERT_TRUE(db.Insert(txn.get(), table,
                          "padpadpadpadpadpad" + std::to_string(i), &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  db.log_manager()->FlushTo(db.log_manager()->current_lsn());
  const size_t files_before = db.log_manager()->segment_files();
  ASSERT_GT(files_before, 2u) << "small segments must have rolled";

  for (int sweep = 0; sweep < 2; ++sweep) {
    ASSERT_TRUE(db.CheckpointPartition(0).ok());
    ASSERT_TRUE(db.CheckpointPartition(1).ok());
  }
  EXPECT_LT(db.log_manager()->segment_files(), files_before)
      << "truncation must unlink whole segment files";
  EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u);

  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  for (int i = 0; i < 60; ++i) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "padpadpadpadpadpad" + std::to_string(i));
  }
}

// ------------------------------------- recovery through the facade

class PlogRecoveryTest : public ::testing::Test {
 protected:
  PlogRecoveryTest() : db_(PlogDb()) {
    EXPECT_TRUE(db_.catalog()->CreateTable("t", &table_).ok());
  }

  Database db_;
  TableId table_;
};

TEST_F(PlogRecoveryTest, CommittedSurviveCrash) {
  std::vector<Rid> rids;
  for (int i = 0; i < 50; ++i) {
    // Scatter transactions across partitions.
    db_.log_manager()->BindThisThread(static_cast<uint32_t>(i));
    auto txn = db_.Begin();
    Rid rid;
    ASSERT_TRUE(db_.Insert(txn.get(), table_, "rec" + std::to_string(i), &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db_.Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  db_.SimulateCrash();
  ASSERT_TRUE(db_.Recover(nullptr).ok());
  for (int i = 0; i < 50; ++i) {
    std::string out;
    ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "rec" + std::to_string(i));
  }
}

TEST_F(PlogRecoveryTest, LoserSpanningPartitionsRolledBack) {
  auto setup = db_.Begin();
  Rid stable_rid;
  ASSERT_TRUE(db_.Insert(setup.get(), table_, "stable", &stable_rid,
                         AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db_.Commit(setup.get()).ok());

  // A loser whose records land in different partitions: flushed but never
  // committed.
  auto loser = db_.Begin();
  db_.log_manager()->BindThisThread(1);
  ASSERT_TRUE(db_.Update(loser.get(), table_, stable_rid, "dirty!",
                         AccessOptions::Baseline()).ok());
  db_.log_manager()->BindThisThread(2);
  Rid loser_rid;
  ASSERT_TRUE(db_.Insert(loser.get(), table_, "loser-insert", &loser_rid,
                         AccessOptions::Baseline()).ok());
  db_.log_manager()->FlushTo(db_.log_manager()->current_lsn());
  db_.SimulateCrash();

  ASSERT_TRUE(db_.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(stable_rid, &out).ok());
  EXPECT_EQ(out, "stable") << "cross-partition loser update must be undone";
  EXPECT_TRUE(db_.catalog()->Heap(table_)->Get(loser_rid, &out).IsNotFound());
}

TEST_F(PlogRecoveryTest, RepeatedCrashRecoverIsIdempotent) {
  std::vector<Rid> rids;
  for (int i = 0; i < 20; ++i) {
    db_.log_manager()->BindThisThread(static_cast<uint32_t>(i));
    auto txn = db_.Begin();
    Rid rid;
    ASSERT_TRUE(db_.Insert(txn.get(), table_, "r" + std::to_string(i), &rid,
                           AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db_.Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  for (int round = 0; round < 3; ++round) {
    db_.SimulateCrash();
    ASSERT_TRUE(db_.Recover(nullptr).ok());
  }
  for (int i = 0; i < 20; ++i) {
    std::string out;
    ASSERT_TRUE(db_.catalog()->Heap(table_)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "r" + std::to_string(i));
  }
  EXPECT_EQ(db_.catalog()->Heap(table_)->record_count(), 20u);
}

// ----------------------------------- torn-tail crash property test

// Crash-recovery property under independently torn partition tails: run a
// history of single-row updates whose records scatter across partitions,
// crash with per-partition flush progress and mid-record tears chosen at
// random, recover, and assert the replayed state is a committed prefix:
//  1. every acknowledged commit survives,
//  2. every row holds a value actually written by a commit-logged txn at
//     least as recent as the row's last acknowledged writer,
//  3. a second crash+recover replays the identical state.
TEST(PlogPropertyTest, TornTailCrashRecoversCommittedPrefix) {
  constexpr uint32_t kPartitions = 4;
  constexpr int kRows = 16;
  constexpr int kTxns = 60;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 0x9E3779B97F4A7C15ull);
    // Manual flush control: the background flusher effectively never runs.
    Database db(PlogDb(kPartitions, /*interval_us=*/1000000));
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());

    std::vector<Rid> rids(kRows);
    {
      auto setup = db.Begin();
      for (int r = 0; r < kRows; ++r) {
        ASSERT_TRUE(db.Insert(setup.get(), table, "base", &rids[r],
                              AccessOptions::Baseline()).ok());
      }
      ASSERT_TRUE(db.Commit(setup.get()).ok());
    }

    // Per-row history of (value, acked) in write order; index 0 = "base".
    struct Write {
      std::string value;
      bool acked;
      bool commit_logged;
    };
    std::vector<std::vector<Write>> history(kRows,
                                            {{"base", true, true}});

    for (int t = 0; t < kTxns; ++t) {
      auto txn = db.Begin();
      const int nops = static_cast<int>(rng.UniformInt(uint64_t{1}, 3));
      std::vector<int> rows;
      bool ok = true;
      for (int i = 0; i < nops && ok; ++i) {
        const int row = static_cast<int>(
            rng.UniformInt(uint64_t{0}, uint64_t{kRows - 1}));
        // Scatter this transaction's records across partitions.
        db.log_manager()->BindThisThread(
            static_cast<uint32_t>(rng.UniformInt(uint64_t{0},
                                                 kPartitions - 1)));
        const std::string value =
            "t" + std::to_string(t) + "r" + std::to_string(row);
        ok = db.Update(txn.get(), table, rids[row], value,
                       AccessOptions::Baseline()).ok();
        if (ok) rows.push_back(row);
      }
      if (!ok) {
        ASSERT_TRUE(db.Abort(txn.get()).ok());
        continue;
      }
      const bool ack = rng.Percent(50);
      const Lsn end = db.CommitAsync(txn.get());
      if (ack) {
        db.log_manager()->WaitFlushed(end);
        ASSERT_TRUE(db.CommitFinalize(txn.get()).ok());
      } else {
        // ELR discipline: commit record appended, locks released, but the
        // client was never acknowledged — a crash may lose this txn.
        db.lock_manager()->ReleaseAll(txn.get());
        db.txn_manager()->Finish(txn.get());
      }
      for (int row : rows) {
        history[row].push_back(
            Write{"t" + std::to_string(t) + "r" + std::to_string(row), ack,
                  true});
      }
      // Random per-partition flush progress between transactions.
      if (rng.Percent(30)) {
        Plm(&db)->FlushPartition(static_cast<uint32_t>(
            rng.UniformInt(uint64_t{0}, kPartitions - 1)));
      }
    }

    // Crash: each partition independently loses a random suffix of its
    // volatile buffer — a random prefix (possibly ending mid-record, i.e.
    // a torn tail) reaches the stable region without a watermark advance.
    for (uint32_t p = 0; p < kPartitions; ++p) {
      if (rng.Percent(60)) {
        Plm(&db)->partition(p)->PartialFlushTorn(
            rng.UniformInt(uint64_t{0}, uint64_t{4096}));
      }
    }
    db.SimulateCrash();
    ASSERT_TRUE(db.Recover(nullptr).ok());

    auto check_state = [&](const char* when) {
      for (int row = 0; row < kRows; ++row) {
        std::string out;
        ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[row], &out).ok());
        const auto& h = history[row];
        size_t last_acked = 0;
        for (size_t i = 0; i < h.size(); ++i) {
          if (h[i].acked) last_acked = i;
        }
        bool found = false;
        for (size_t i = last_acked; i < h.size(); ++i) {
          if (h[i].commit_logged && h[i].value == out) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found)
            << when << ": seed " << seed << " row " << row << " holds '"
            << out << "', older than its last acked write '"
            << h[last_acked].value << "'";
      }
    };
    check_state("after first recovery");

    // Determinism: a second crash (no new writes) replays the same state.
    std::vector<std::string> before(kRows);
    for (int row = 0; row < kRows; ++row) {
      ASSERT_TRUE(
          db.catalog()->Heap(table)->Get(rids[row], &before[row]).ok());
    }
    db.SimulateCrash();
    ASSERT_TRUE(db.Recover(nullptr).ok());
    for (int row = 0; row < kRows; ++row) {
      std::string out;
      ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[row], &out).ok());
      EXPECT_EQ(out, before[row]) << "second recovery must be a no-op";
    }
  }
}

// Crash-loop property under checkpoints + truncation: run rounds of
// randomized ELR-style commits (commit record appended, locks released,
// acknowledgement deferred to a simulated ack daemon that finalizes only
// once the global horizon covers the commit GSN), interleaved with
// partition-local fuzzy checkpoints that truncate the stable streams.
// Each round ends in a crash with random per-partition flush progress and
// mid-record tears. After every recovery:
//  1. every acknowledged commit survives,
//  2. every row holds a commit-logged value at least as recent as the
//     row's last acknowledged writer (never garbage, never a lost-then-
//     resurrected truncated value),
// and the next round continues on the recovered state — so the committed
// prefix must survive repeated crash/recover cycles across truncations.
TEST(PlogPropertyTest, CheckpointedCrashLoopRecoversCommittedPrefix) {
  constexpr uint32_t kPartitions = 4;
  constexpr int kRows = 12;
  constexpr int kTxnsPerRound = 40;
  constexpr int kRounds = 3;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 0xA24BAED4963EE407ull);
    // Manual flush control: the background flusher effectively never runs.
    Database db(PlogDb(kPartitions, /*interval_us=*/1000000));
    TableId table;
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());

    std::vector<Rid> rids(kRows);
    {
      auto setup = db.Begin();
      for (int r = 0; r < kRows; ++r) {
        ASSERT_TRUE(db.Insert(setup.get(), table, "base", &rids[r],
                              AccessOptions::Baseline()).ok());
      }
      ASSERT_TRUE(db.Commit(setup.get()).ok());
    }

    struct Write {
      std::string value;
      bool acked;
    };
    std::vector<std::vector<Write>> history(kRows, {{"base", true}});

    // The ELR pipeline: commits appended but not yet acknowledged. The
    // transactions stay registered (active) until finalized — exactly the
    // discipline that makes truncation safe for maybe-lost commits.
    struct Pending {
      std::unique_ptr<Transaction> txn;
      Lsn gsn;
      std::vector<std::pair<int, size_t>> writes;  // (row, history index)
    };
    std::vector<Pending> pending;

    // Simulated ack daemon: finalize every pending commit the global
    // stable horizon already covers, acknowledging its writes.
    auto drain_acks = [&] {
      const Lsn horizon = db.log_manager()->flushed_lsn();
      size_t n = 0;
      while (n < pending.size() && pending[n].gsn <= horizon) {
        ASSERT_TRUE(db.CommitFinalize(pending[n].txn.get()).ok());
        for (const auto& [row, idx] : pending[n].writes) {
          history[row][idx].acked = true;
        }
        ++n;
      }
      pending.erase(pending.begin(), pending.begin() + n);
    };

    for (int round = 0; round < kRounds; ++round) {
      for (int t = 0; t < kTxnsPerRound; ++t) {
        auto txn = db.Begin();
        const int nops = static_cast<int>(rng.UniformInt(uint64_t{1}, 3));
        std::vector<std::pair<int, size_t>> writes;
        for (int i = 0; i < nops; ++i) {
          const int row = static_cast<int>(
              rng.UniformInt(uint64_t{0}, uint64_t{kRows - 1}));
          db.log_manager()->BindThisThread(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1)));
          const std::string value = "s" + std::to_string(seed) + "r" +
                                    std::to_string(round) + "t" +
                                    std::to_string(t) + "o" +
                                    std::to_string(i);
          ASSERT_TRUE(db.Update(txn.get(), table, rids[row], value,
                                AccessOptions::Baseline()).ok());
          history[row].push_back(Write{value, false});
          writes.emplace_back(row, history[row].size() - 1);
        }
        const Lsn gsn = db.CommitAsync(txn.get());
        db.lock_manager()->ReleaseAll(txn.get());  // ELR
        pending.push_back(Pending{std::move(txn), gsn, std::move(writes)});

        if (rng.Percent(50)) {
          // A client that insists on its ack: group-commit wait.
          db.log_manager()->WaitFlushed(gsn);
        } else if (rng.Percent(40)) {
          Plm(&db)->FlushPartition(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1)));
        }
        drain_acks();
        if (rng.Percent(20)) {
          // Fuzzy partition checkpoint + truncation, concurrent with the
          // (un-acknowledged) pipeline above.
          ASSERT_TRUE(db.CheckpointPartition(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1))).ok());
        }
      }

      // Crash: random per-partition flush progress, possibly mid-record.
      for (uint32_t p = 0; p < kPartitions; ++p) {
        if (rng.Percent(60)) {
          Plm(&db)->partition(p)->PartialFlushTorn(
              rng.UniformInt(uint64_t{0}, uint64_t{4096}));
        }
      }
      db.SimulateCrash();
      // The crash killed the ack pipeline: un-finalized commits are gone.
      for (auto& p : pending) db.txn_manager()->Finish(p.txn.get());
      pending.clear();
      ASSERT_TRUE(db.Recover(nullptr).ok());

      for (int row = 0; row < kRows; ++row) {
        std::string out;
        ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[row], &out).ok());
        const auto& h = history[row];
        size_t last_acked = 0;
        for (size_t i = 0; i < h.size(); ++i) {
          if (h[i].acked) last_acked = i;
        }
        bool found = false;
        for (size_t i = last_acked; i < h.size(); ++i) {
          if (h[i].value == out) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found)
            << "seed " << seed << " round " << round << " row " << row
            << " holds '" << out << "', older than its last acked write '"
            << h[last_acked].value << "'";
        // The recovered value is the next round's acknowledged base.
        history[row] = {{out, true}};
      }
    }
    EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u)
        << "seed " << seed
        << ": checkpoints must actually have truncated the log";
  }
}

// Crash-loop property across PROCESS LIFETIMES (file-backed segments):
// the same committed-prefix discipline as the checkpointed crash loop, but
// each round ends in one of two deaths —
//   * an in-process crash (SimulateCrash + Recover on the live object), or
//   * a kill: buffers dropped with NO stable truncation (torn tails and
//     stale watermark headers stay on the segment files), the Database
//     destroyed, and a fresh one opened over the data directory — the
//     cold-start path: streams, claims, and the GSN clock all rebuilt from
//     files alone.
// Partitions also suffer random mid-record tears ("killed between
// fsyncs") before every death. After each recovery:
//  1. every acknowledged commit survives,
//  2. every row holds a commit-logged value at least as recent as the
//     row's last acknowledged writer,
// and the next round continues on the recovered state.
TEST(PlogPropertyTest, FileBackendCrashLoopAcrossLifetimes) {
  constexpr uint32_t kPartitions = 4;
  constexpr int kRows = 10;
  constexpr int kTxnsPerRound = 30;
  constexpr int kRounds = 4;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed * 0xD1B54A32D192ED03ull);
    const std::string dir =
        TempLogDir("crash_loop_" + std::to_string(seed));
    // Long flusher naps keep flush progress test-driven; short enough that
    // the per-lifetime teardown join stays cheap.
    Database::Options opts = PlogDb(kPartitions, /*interval_us=*/200000);
    opts.data_dir = dir;
    opts.log_segment_bytes = 2048;  // several rolls per round
    auto db = std::make_unique<Database>(opts);
    TableId table;
    ASSERT_TRUE(db->catalog()->CreateTable("t", &table).ok());

    std::vector<Rid> rids(kRows);
    {
      auto setup = db->Begin();
      for (int r = 0; r < kRows; ++r) {
        ASSERT_TRUE(db->Insert(setup.get(), table, "base", &rids[r],
                               AccessOptions::Baseline()).ok());
      }
      ASSERT_TRUE(db->Commit(setup.get()).ok());
    }

    struct Write {
      std::string value;
      bool acked;
    };
    std::vector<std::vector<Write>> history(kRows, {{"base", true}});

    struct Pending {
      std::unique_ptr<Transaction> txn;
      Lsn gsn;
      std::vector<std::pair<int, size_t>> writes;
    };
    std::vector<Pending> pending;

    auto drain_acks = [&] {
      const Lsn horizon = db->log_manager()->flushed_lsn();
      size_t n = 0;
      while (n < pending.size() && pending[n].gsn <= horizon) {
        ASSERT_TRUE(db->CommitFinalize(pending[n].txn.get()).ok());
        for (const auto& [row, idx] : pending[n].writes) {
          history[row][idx].acked = true;
        }
        ++n;
      }
      pending.erase(pending.begin(), pending.begin() + n);
    };

    for (int round = 0; round < kRounds; ++round) {
      for (int t = 0; t < kTxnsPerRound; ++t) {
        auto txn = db->Begin();
        const int nops = static_cast<int>(rng.UniformInt(uint64_t{1}, 3));
        std::vector<std::pair<int, size_t>> writes;
        for (int i = 0; i < nops; ++i) {
          const int row = static_cast<int>(
              rng.UniformInt(uint64_t{0}, uint64_t{kRows - 1}));
          db->log_manager()->BindThisThread(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1)));
          const std::string value = "s" + std::to_string(seed) + "r" +
                                    std::to_string(round) + "t" +
                                    std::to_string(t) + "o" +
                                    std::to_string(i);
          ASSERT_TRUE(db->Update(txn.get(), table, rids[row], value,
                                 AccessOptions::Baseline()).ok());
          history[row].push_back(Write{value, false});
          writes.emplace_back(row, history[row].size() - 1);
        }
        const Lsn gsn = db->CommitAsync(txn.get());
        db->lock_manager()->ReleaseAll(txn.get());  // ELR
        pending.push_back(Pending{std::move(txn), gsn, std::move(writes)});

        if (rng.Percent(50)) {
          db->log_manager()->WaitFlushed(gsn);
        } else if (rng.Percent(40)) {
          Plm(db.get())->FlushPartition(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1)));
        }
        drain_acks();
        if (rng.Percent(20)) {
          ASSERT_TRUE(db->CheckpointPartition(static_cast<uint32_t>(
              rng.UniformInt(uint64_t{0}, kPartitions - 1))).ok());
        }
      }

      // Death throes: random per-partition flush progress, possibly
      // tearing mid-record — the "killed between two fsyncs" shape.
      for (uint32_t p = 0; p < kPartitions; ++p) {
        if (rng.Percent(60)) {
          Plm(db.get())->partition(p)->PartialFlushTorn(
              rng.UniformInt(uint64_t{0}, uint64_t{4096}));
        }
      }
      const bool cold_restart = rng.Percent(50);
      if (cold_restart) {
        db->SimulateKill();
        for (auto& p : pending) db->txn_manager()->Finish(p.txn.get());
        pending.clear();
        db.reset();  // the process is gone
        db = std::make_unique<Database>(opts);  // second lifetime
        // Self-contained reopen: the schema comes back from catalog.db —
        // the fresh lifetime never re-declares it.
        ASSERT_TRUE(db->catalog_load_status().ok())
            << db->catalog_load_status().ToString();
        ASSERT_NE(db->catalog()->GetTable("t"), nullptr);
        table = db->catalog()->GetTable("t")->id;
      } else {
        db->SimulateCrash();
        for (auto& p : pending) db->txn_manager()->Finish(p.txn.get());
        pending.clear();
      }
      ASSERT_TRUE(db->Recover(nullptr).ok());

      for (int row = 0; row < kRows; ++row) {
        std::string out;
        ASSERT_TRUE(db->catalog()->Heap(table)->Get(rids[row], &out).ok());
        const auto& h = history[row];
        size_t last_acked = 0;
        for (size_t i = 0; i < h.size(); ++i) {
          if (h[i].acked) last_acked = i;
        }
        bool found = false;
        for (size_t i = last_acked; i < h.size(); ++i) {
          if (h[i].value == out) {
            found = true;
            break;
          }
        }
        ASSERT_TRUE(found)
            << "seed " << seed << " round " << round
            << (cold_restart ? " (cold restart)" : " (crash)") << " row "
            << row << " holds '" << out
            << "', older than its last acked write '" << h[last_acked].value
            << "'";
        history[row] = {{out, true}};
      }
    }
  }
}

// ----------------------------------- DORA pipelined commit + ELR

TEST(PlogDoraTest, PipelinedCommitDurableAndRecoverable) {
  constexpr int kRows = 32;
  constexpr int kTxns = 200;
  Database db(PlogDb(/*parts=*/2));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());

  std::vector<Rid> rids(kRows);
  {
    auto setup = db.Begin();
    for (int r = 0; r < kRows; ++r) {
      ASSERT_TRUE(db.Insert(setup.get(), table, "init", &rids[r],
                            AccessOptions::Baseline()).ok());
    }
    ASSERT_TRUE(db.Commit(setup.get()).ok());
  }

  dora::DoraEngine::Options opts;
  opts.pipelined_commit = true;
  dora::DoraEngine engine(&db, opts);
  engine.RegisterTable(table, kRows, 2);
  engine.Start();

  for (int t = 0; t < kTxns; ++t) {
    const int row = t % kRows;
    auto dtxn = engine.BeginTxn();
    dora::FlowGraph g;
    g.AddPhase().AddAction(
        table, static_cast<uint64_t>(row), dora::LocalMode::kX,
        [&, t, row](dora::ActionEnv& env) {
          return env.db->Update(env.txn, table, rids[row],
                                "v" + std::to_string(t),
                                AccessOptions::NoCc());
        });
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  }
  engine.Stop();
  EXPECT_EQ(engine.txns_committed(), static_cast<uint64_t>(kTxns));
  EXPECT_GT(engine.txns_pipelined(), 0u)
      << "commits must flow through the ELR/ack-queue path";

  // Every Run() returned => every commit was acknowledged durable; all
  // final values must survive a crash.
  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  for (int row = 0; row < kRows; ++row) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[row], &out).ok());
    const int last = row + (kTxns - kRows) + (kTxns % kRows > row ? kRows : 0);
    // Last writer of `row` is the largest t < kTxns with t % kRows == row.
    int expect = -1;
    for (int t = row; t < kTxns; t += kRows) expect = t;
    (void)last;
    EXPECT_EQ(out, "v" + std::to_string(expect)) << "row " << row;
  }
}

TEST(PlogDoraTest, PipelinedCommitSerializesConflictingWriters) {
  // Two-executor engine, many conflicting increments on one row: ELR must
  // not let lost updates through (local locks hand off FIFO, and the
  // dependent txn's commit GSN follows its predecessor's).
  Database db(PlogDb(/*parts=*/2));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  Rid rid;
  {
    auto setup = db.Begin();
    ASSERT_TRUE(db.Insert(setup.get(), table, "0", &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(setup.get()).ok());
  }

  dora::DoraEngine::Options opts;
  opts.pipelined_commit = true;
  dora::DoraEngine engine(&db, opts);
  engine.RegisterTable(table, 64, 2);
  engine.Start();

  constexpr int kClients = 4, kPerClient = 50;
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kPerClient; ++i) {
        auto dtxn = engine.BeginTxn();
        dora::FlowGraph g;
        g.AddPhase().AddAction(
            table, 0, dora::LocalMode::kX, [&](dora::ActionEnv& env) {
              std::string cur;
              Status s =
                  env.db->Read(env.txn, table, rid, &cur,
                               AccessOptions::NoCc());
              if (!s.ok()) return s;
              return env.db->Update(env.txn, table, rid,
                                    std::to_string(std::stoi(cur) + 1),
                                    AccessOptions::NoCc());
            });
        if (!engine.Run(dtxn, std::move(g)).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  engine.Stop();
  ASSERT_EQ(failures.load(), 0);
  std::string out;
  auto txn = db.Begin();
  ASSERT_TRUE(
      db.Read(txn.get(), table, rid, &out, AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());
  EXPECT_EQ(out, std::to_string(kClients * kPerClient))
      << "ELR must not admit lost updates";
}

}  // namespace
}  // namespace doradb
