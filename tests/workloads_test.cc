// End-to-end tests for TPC-B and TPC-C on both engines, including the
// benchmarks' consistency invariants under concurrent load.

#include <gtest/gtest.h>

#include "workloads/common/driver.h"
#include "workloads/tpcb/tpcb.h"
#include "workloads/tpcc/tpcc.h"

namespace doradb {
namespace {

Database::Options DbOptions() {
  Database::Options o;
  o.buffer_frames = 8192;
  o.lock.wait_timeout_us = 500000;
  return o;
}

// ------------------------------------------------------------------ TPC-B

class TpcbTest : public ::testing::Test {
 protected:
  TpcbTest() : db_(DbOptions()) {
    tpcb::TpcbWorkload::Config cfg;
    cfg.branches = 4;
    cfg.tellers_per_branch = 5;
    cfg.accounts_per_branch = 200;
    workload_ = std::make_unique<tpcb::TpcbWorkload>(&db_, cfg);
    EXPECT_TRUE(workload_->Load().ok());
    engine_ = std::make_unique<dora::DoraEngine>(&db_);
    workload_->SetupDora(engine_.get());
    engine_->Start();
  }
  ~TpcbTest() override { engine_->Stop(); }

  Database db_;
  std::unique_ptr<tpcb::TpcbWorkload> workload_;
  std::unique_ptr<dora::DoraEngine> engine_;
};

TEST_F(TpcbTest, LoaderCountsAndInvariant) {
  EXPECT_EQ(db_.catalog()->Heap(workload_->schema().branch)->record_count(),
            4u);
  EXPECT_EQ(db_.catalog()->Heap(workload_->schema().teller)->record_count(),
            20u);
  EXPECT_EQ(db_.catalog()->Heap(workload_->schema().account)->record_count(),
            800u);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpcbTest, BaselineSerialRuns) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(workload_->RunBaseline(0, rng).ok());
  }
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpcbTest, DoraSerialRuns) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(workload_->RunDora(engine_.get(), 0, rng).ok());
  }
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpcbTest, InvariantHoldsUnderConcurrentBaseline) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kBaseline;
  cfg.num_clients = 4;
  cfg.duration_ms = 400;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 50u);
  EXPECT_TRUE(workload_->CheckConsistency().ok())
      << "balance sums must agree across Branch/Teller/Account/History";
}

TEST_F(TpcbTest, InvariantHoldsUnderQueuedBaseline) {
  // Queued-baseline mode: clients submit to one shared BlockingQueue that
  // a worker pool drains in batches (PopAll); completions return on
  // per-client channels.
  BenchConfig cfg;
  cfg.engine = EngineKind::kBaseline;
  cfg.num_clients = 4;
  cfg.baseline_workers = 2;
  cfg.duration_ms = 300;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 50u);
  EXPECT_TRUE(workload_->CheckConsistency().ok())
      << "queued dispatch must preserve the TPC-B invariant";
}

TEST_F(TpcbTest, InvariantHoldsUnderConcurrentDora) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kDora;
  cfg.dora_engine = engine_.get();
  cfg.num_clients = 4;
  cfg.duration_ms = 400;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 50u);
  // Single-phase graphs cannot deadlock; an occasional spurious parked-
  // action expiration under CPU oversubscription is benign (abort+retry),
  // but it must stay rare and must never break the invariant.
  EXPECT_LT(r.system_aborts, r.committed / 20 + 3)
      << "DORA TPC-B must not deadlock";
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

// ------------------------------------------------------------------ TPC-C

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : db_(DbOptions()) {
    tpcc::TpccWorkload::Config cfg;
    cfg.warehouses = 2;
    cfg.districts = 4;
    cfg.customers_per_district = 60;
    cfg.items = 200;
    cfg.initial_orders_per_district = 5;
    cfg.executors_per_table = 1;
    workload_ = std::make_unique<tpcc::TpccWorkload>(&db_, cfg);
    EXPECT_TRUE(workload_->Load().ok());
    engine_ = std::make_unique<dora::DoraEngine>(&db_);
    workload_->SetupDora(engine_.get());
    engine_->Start();
  }
  ~TpccTest() override { engine_->Stop(); }

  Database db_;
  std::unique_ptr<tpcc::TpccWorkload> workload_;
  std::unique_ptr<dora::DoraEngine> engine_;
};

TEST_F(TpccTest, LoaderBuildsConsistentDatabase) {
  EXPECT_TRUE(workload_->CheckConsistency().ok());
  EXPECT_EQ(
      db_.catalog()->Heap(workload_->schema().warehouse)->record_count(), 2u);
  EXPECT_EQ(db_.catalog()->Heap(workload_->schema().stock)->record_count(),
            400u);
}

TEST_F(TpccTest, EveryTxnTypeRunsOnBaseline) {
  Rng rng(3);
  for (uint32_t type = 0; type < tpcc::kNumTxnTypes; ++type) {
    int ok = 0;
    for (int i = 0; i < 30; ++i) {
      const Status s = workload_->RunBaseline(type, rng);
      ASSERT_FALSE(s.IsCorruption()) << workload_->TxnName(type) << ": "
                                     << s.ToString();
      if (s.ok()) ++ok;
    }
    EXPECT_GT(ok, 0) << workload_->TxnName(type);
  }
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpccTest, EveryTxnTypeRunsOnDora) {
  Rng rng(3);
  for (uint32_t type = 0; type < tpcc::kNumTxnTypes; ++type) {
    int ok = 0;
    for (int i = 0; i < 30; ++i) {
      const Status s = workload_->RunDora(engine_.get(), type, rng);
      ASSERT_FALSE(s.IsCorruption()) << workload_->TxnName(type) << ": "
                                     << s.ToString();
      if (s.ok()) ++ok;
    }
    EXPECT_GT(ok, 0) << workload_->TxnName(type);
  }
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpccTest, NewOrderRollbackOnInvalidItemLeavesNoTrace) {
  // Run enough NewOrders that the 1% invalid-item rollback fires; the
  // consistency invariants must survive.
  Rng rng(5);
  int aborted = 0;
  for (int i = 0; i < 300; ++i) {
    const Status s = workload_->RunBaseline(tpcc::kNewOrder, rng);
    if (!s.ok()) ++aborted;
  }
  EXPECT_GT(aborted, 0) << "1% rollback rate should fire in 300 txns";
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpccTest, MixedConcurrentBaseline) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kBaseline;
  cfg.num_clients = 4;
  cfg.duration_ms = 500;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 20u);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpccTest, MixedConcurrentDora) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kDora;
  cfg.dora_engine = engine_.get();
  cfg.num_clients = 4;
  cfg.duration_ms = 500;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 20u);
  // The full 5-transaction mix can deadlock across flow graphs (multi-
  // phase Delivery/StockLevel vs NewOrder) — the paper requires deadlock
  // detection for exactly this (§4.2.3). Resolution = abort, so a few
  // system aborts are by-design; corruption is not.
  EXPECT_LT(r.system_aborts, r.committed / 2 + 10u);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(TpccTest, PaymentRemoteCustomerRoutesToOtherExecutor) {
  // With 2 warehouses and per-warehouse routing, remote Payments route the
  // customer action elsewhere — they must still commit (no distributed
  // transaction machinery needed, §4.1.2).
  Rng rng(11);
  int ok = 0;
  for (int i = 0; i < 200; ++i) {
    if (workload_->RunDora(engine_.get(), tpcc::kPayment, rng).ok()) ++ok;
  }
  EXPECT_GT(ok, 190);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

}  // namespace
}  // namespace doradb
