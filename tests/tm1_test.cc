// End-to-end TM1 workload tests: loader integrity, every transaction type
// on both engines, mixed concurrent execution, and cross-engine consistency
// invariants.

#include <gtest/gtest.h>

#include "workloads/common/driver.h"
#include "workloads/tm1/tm1.h"

namespace doradb {
namespace tm1 {
namespace {

class Tm1Test : public ::testing::Test {
 protected:
  Tm1Test() : db_(DbOptions()) {
    Tm1Workload::Config cfg;
    cfg.subscribers = 500;
    cfg.executors_per_table = 2;
    workload_ = std::make_unique<Tm1Workload>(&db_, cfg);
    EXPECT_TRUE(workload_->Load().ok());
    engine_ = std::make_unique<dora::DoraEngine>(&db_);
    workload_->SetupDora(engine_.get());
    engine_->Start();
  }
  ~Tm1Test() override { engine_->Stop(); }

  static Database::Options DbOptions() {
    Database::Options o;
    o.buffer_frames = 4096;
    o.lock.wait_timeout_us = 500000;
    return o;
  }

  Database db_;
  std::unique_ptr<Tm1Workload> workload_;
  std::unique_ptr<dora::DoraEngine> engine_;
};

TEST_F(Tm1Test, LoaderBuildsConsistentDatabase) {
  EXPECT_TRUE(workload_->CheckConsistency().ok());
  EXPECT_EQ(db_.catalog()->Heap(workload_->schema().subscriber)
                ->record_count(),
            500u);
  // AI and SF average 2.5 per subscriber.
  const uint64_t ai =
      db_.catalog()->Heap(workload_->schema().access_info)->record_count();
  EXPECT_GT(ai, 500u);
  EXPECT_LT(ai, 2000u);
}

TEST_F(Tm1Test, EveryTxnTypeRunsOnBaseline) {
  Rng rng(7);
  for (uint32_t type = 0; type < kNumTxnTypes; ++type) {
    int ok = 0;
    for (int i = 0; i < 50; ++i) {
      const Status s = workload_->RunBaseline(type, rng);
      if (s.ok()) ++ok;
      ASSERT_FALSE(s.IsDeadlock()) << workload_->TxnName(type);
      ASSERT_FALSE(s.IsCorruption()) << workload_->TxnName(type);
    }
    EXPECT_GT(ok, 0) << workload_->TxnName(type)
                     << " should commit at least sometimes";
  }
}

TEST_F(Tm1Test, EveryTxnTypeRunsOnDora) {
  Rng rng(7);
  for (uint32_t type = 0; type < kNumTxnTypes; ++type) {
    int ok = 0;
    for (int i = 0; i < 50; ++i) {
      const Status s = workload_->RunDora(engine_.get(), type, rng);
      if (s.ok()) ++ok;
      ASSERT_FALSE(s.IsDeadlock()) << workload_->TxnName(type);
      ASSERT_FALSE(s.IsCorruption()) << workload_->TxnName(type);
    }
    EXPECT_GT(ok, 0) << workload_->TxnName(type)
                     << " should commit at least sometimes";
  }
}

TEST_F(Tm1Test, DoraSerialPlanAlsoWorks) {
  workload_->SetPlanMode(PlanMode::kSerial);
  Rng rng(11);
  int ok = 0;
  for (int i = 0; i < 100; ++i) {
    const Status s =
        workload_->RunDora(engine_.get(), kUpdateSubscriberData, rng);
    if (s.ok()) ++ok;
  }
  // 62.5% expected success under the benchmark's failure model.
  EXPECT_GT(ok, 30);
  EXPECT_LT(ok, 95);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(Tm1Test, ConsistencyHoldsAfterConcurrentMixedLoad) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kDora;
  cfg.dora_engine = engine_.get();
  cfg.num_clients = 4;
  cfg.duration_ms = 400;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 100u);
  EXPECT_EQ(r.system_aborts, 0u) << "DORA must not deadlock on TM1";
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(Tm1Test, BaselineConcurrentMixedLoad) {
  BenchConfig cfg;
  cfg.engine = EngineKind::kBaseline;
  cfg.num_clients = 4;
  cfg.duration_ms = 400;
  cfg.warmup_ms = 50;
  const BenchResult r = RunBench(workload_.get(), cfg);
  EXPECT_GT(r.committed, 100u);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(Tm1Test, DoraAcquiresFarFewerCentralizedLocks) {
  // Fig. 5: DORA's interaction with the centralized lock manager is minimal.
  BenchConfig base_cfg;
  base_cfg.engine = EngineKind::kBaseline;
  base_cfg.num_clients = 2;
  base_cfg.duration_ms = 300;
  base_cfg.warmup_ms = 50;
  const BenchResult base = RunBench(workload_.get(), base_cfg);

  BenchConfig dora_cfg = base_cfg;
  dora_cfg.engine = EngineKind::kDora;
  dora_cfg.dora_engine = engine_.get();
  const BenchResult dora = RunBench(workload_.get(), dora_cfg);

  const double base_txns = static_cast<double>(base.committed);
  const double dora_txns = static_cast<double>(dora.committed);
  ASSERT_GT(base_txns, 0);
  ASSERT_GT(dora_txns, 0);
  const double base_higher =
      static_cast<double>(base.raw_delta.Locks(LockCounter::kHigherLevel)) /
      base_txns;
  const double dora_higher =
      static_cast<double>(dora.raw_delta.Locks(LockCounter::kHigherLevel)) /
      dora_txns;
  EXPECT_GT(base_higher, 0.5) << "baseline takes intent locks per txn";
  EXPECT_LT(dora_higher, 0.05) << "DORA must all but eliminate them";
  const double dora_local =
      static_cast<double>(dora.raw_delta.Locks(LockCounter::kDoraLocal)) /
      dora_txns;
  EXPECT_GT(dora_local, 0.5) << "DORA uses thread-local locks instead";
}

TEST_F(Tm1Test, UpdateLocationChangesVlr) {
  // Deterministic end-to-end check through the secondary-action path.
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    ASSERT_FALSE(
        workload_->RunDora(engine_.get(), kUpdateLocation, rng).IsDeadlock());
  }
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

TEST_F(Tm1Test, InsertThenDeleteCallForwardingRoundTrip) {
  Rng rng(5);
  uint64_t before =
      db_.catalog()->Heap(workload_->schema().call_forwarding)->record_count();
  int inserted = 0, deleted = 0;
  for (int i = 0; i < 200; ++i) {
    if (workload_->RunDora(engine_.get(), kInsertCallForwarding, rng).ok()) {
      ++inserted;
    }
    if (workload_->RunDora(engine_.get(), kDeleteCallForwarding, rng).ok()) {
      ++deleted;
    }
  }
  EXPECT_GT(inserted, 0);
  EXPECT_GT(deleted, 0);
  const uint64_t after =
      db_.catalog()->Heap(workload_->schema().call_forwarding)->record_count();
  EXPECT_EQ(after, before + inserted - deleted);
  EXPECT_TRUE(workload_->CheckConsistency().ok());
}

}  // namespace
}  // namespace tm1
}  // namespace doradb
