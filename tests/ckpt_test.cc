// Checkpoint subsystem (src/ckpt/) tests: partition-local fuzzy
// checkpoints, checkpoint-driven log truncation, bounded restart, the
// per-record CRC (corrupted-middle detection), and the DORA inline
// commit-ack fast path.

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dora/dora_engine.h"
#include "engine/database.h"
#include "log/log_manager.h"
#include "log/recovery.h"
#include "plog/partitioned_log_manager.h"
#include "util/rng.h"

namespace doradb {
namespace {

Database::Options PlogDb(uint32_t parts = 4, uint64_t interval_us = 20) {
  Database::Options o;
  o.buffer_frames = 512;
  o.log_backend = LogBackendKind::kPartitioned;
  o.log_partitions = parts;
  o.log.flush_interval_us = interval_us;
  o.lock.wait_timeout_us = 300000;
  return o;
}

plog::PartitionedLogManager* Plm(Database* db) {
  return static_cast<plog::PartitionedLogManager*>(db->log_manager());
}

// Fresh (pre-wiped) per-test data directory for file-backed durability.
std::string TempDataDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "doradb_ckpt_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Commit `n` single-row inserts, scattering records across partitions.
std::vector<Rid> CommitInserts(Database* db, TableId table, int n,
                               const std::string& prefix) {
  std::vector<Rid> rids;
  for (int i = 0; i < n; ++i) {
    db->log_manager()->BindThisThread(static_cast<uint32_t>(i));
    auto txn = db->Begin();
    Rid rid;
    EXPECT_TRUE(db->Insert(txn.get(), table, prefix + std::to_string(i),
                           &rid, AccessOptions::Baseline()).ok());
    EXPECT_TRUE(db->Commit(txn.get()).ok());
    rids.push_back(rid);
  }
  return rids;
}

// ----------------------------------------- partition-local checkpoints

TEST(CkptTest, PartitionCheckpointTruncatesItsStream) {
  Database db(PlogDb(/*parts=*/2));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  CommitInserts(&db, table, 20, "r");
  db.log_manager()->FlushTo(db.log_manager()->current_lsn());
  const size_t before = db.log_manager()->stable_size();
  ASSERT_GT(before, 0u);

  ASSERT_TRUE(db.CheckpointPartition(0).ok());
  ASSERT_TRUE(db.CheckpointPartition(1).ok());

  EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u)
      << "quiescent system: everything below the horizon must be reclaimed";
  // What survives: the two checkpoint records (one per partition) and
  // whatever trailed the first checkpoint's horizon snapshot.
  const auto recs = db.log_manager()->ReadStable();
  size_t ckpts = 0;
  for (const auto& r : recs) {
    if (r.type == LogType::kCheckpointPart) {
      ++ckpts;
      EXPECT_NE(r.redo_horizon, kInvalidLsn);
    }
  }
  EXPECT_EQ(ckpts, 2u);
  EXPECT_LT(db.log_manager()->stable_size(), before)
      << "the stable log must shrink, not only stop growing";
}

TEST(CkptTest, ActiveTxnPinsTheHorizon) {
  Database db(PlogDb(/*parts=*/2));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 4, "base");

  // An in-flight transaction with an un-durable update: its records sit
  // below any later horizon candidate, so truncation must hold back.
  auto open = db.Begin();
  ASSERT_TRUE(db.Update(open.get(), table, rids[0], "uncommitted",
                        AccessOptions::Baseline()).ok());

  ASSERT_TRUE(db.CheckpointPartition(0).ok());
  ASSERT_TRUE(db.CheckpointPartition(1).ok());

  // The open transaction's whole chain must still be in the stable log +
  // volatile tail; crashing now must roll it back cleanly.
  db.SimulateCrash();
  db.txn_manager()->Finish(open.get());  // the crash forgot it
  ASSERT_TRUE(db.Recover(nullptr).ok());
  std::string out;
  ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[0], &out).ok());
  EXPECT_EQ(out, "base0") << "loser update spanning a checkpoint must undo";
}

TEST(CkptTest, RecoveryConsumesRedoHorizon) {
  Database db(PlogDb(/*parts=*/4));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 30, "v");

  // Two full sweeps: the first flushes every partition's pages (each visit
  // can only raise the horizon as far as the still-dirty pages of later
  // visits allow), the second reclaims every stream up to a clean-pool
  // horizon.
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(db.CheckpointPartition(p).ok());
    }
  }

  // A little post-checkpoint tail so redo has something real to do.
  db.log_manager()->BindThisThread(1);
  auto txn = db.Begin();
  ASSERT_TRUE(db.Update(txn.get(), table, rids[0], "tail",
                        AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());

  db.SimulateCrash();
  RecoveryDriver driver(&db);
  ASSERT_TRUE(driver.Run(nullptr).ok());
  EXPECT_NE(driver.stats().redo_start, kInvalidLsn);
  // Bounded restart: the 30 pre-checkpoint inserts (and their begin/
  // commit/end chatter) were truncated away — the scan is the
  // un-checkpointed suffix, not history.
  EXPECT_LT(driver.stats().records_scanned, 30u);
  std::string out;
  ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[0], &out).ok());
  EXPECT_EQ(out, "tail");
  for (int i = 1; i < 30; ++i) {
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "v" + std::to_string(i));
  }
}

TEST(CkptTest, SustainedRunKeepsLogBounded) {
  // The acceptance shape: under a sustained update stream with round-robin
  // partition checkpoints, the stable log stops growing with history.
  constexpr uint32_t kParts = 2;
  Database db(PlogDb(kParts));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 8, "b");

  size_t high_water = 0;
  uint32_t next_part = 0;
  for (int round = 0; round < 12; ++round) {
    for (int t = 0; t < 25; ++t) {
      db.log_manager()->BindThisThread(
          static_cast<uint32_t>(round + t));
      auto txn = db.Begin();
      ASSERT_TRUE(db.Update(txn.get(), table, rids[t % 8],
                            "r" + std::to_string(round) + "t" +
                                std::to_string(t),
                            AccessOptions::Baseline()).ok());
      ASSERT_TRUE(db.Commit(txn.get()).ok());
    }
    ASSERT_TRUE(db.CheckpointPartition(next_part++ % kParts).ok());
    high_water = std::max(high_water, db.log_manager()->stable_size());
  }
  // One more full sweep drains the remaining suffix; the bound claim is on
  // the steady state, not any instantaneous peak.
  ASSERT_TRUE(db.CheckpointPartition(0).ok());
  ASSERT_TRUE(db.CheckpointPartition(1).ok());
  EXPECT_GT(db.log_manager()->reclaimed_bytes(),
            db.log_manager()->stable_size())
      << "most of the history must have been reclaimed";
  // 12 rounds x 25 txns: an unbounded log would hold ~300 update chains;
  // the bounded one holds at most the few rounds between checkpoints.
  EXPECT_LT(db.log_manager()->stable_size(), high_water);
}

TEST(CkptTest, BackgroundDaemonRunsConcurrentlyWithWriters) {
  // Quiescence-free operation: the daemon checkpoints while writer threads
  // keep committing. Everything must stay consistent, and a crash after
  // the run must recover every acknowledged commit.
  Database::Options opts = PlogDb(/*parts=*/4);
  opts.checkpoint.enabled = true;
  opts.checkpoint.interval_us = 200;
  Database db(opts);
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  constexpr int kRows = 16;
  const std::vector<Rid> rids = CommitInserts(&db, table, kRows, "i");

  constexpr int kThreads = 4, kPerThread = 120;
  std::vector<std::thread> writers;
  std::atomic<int> failures{0};
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([&, w] {
      db.log_manager()->BindThisThread(static_cast<uint32_t>(w));
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = db.Begin();
        const int row = (w * kPerThread + i) % kRows;
        if (!db.Update(txn.get(), table, rids[row],
                       "w" + std::to_string(w) + "i" + std::to_string(i),
                       AccessOptions::Baseline()).ok() ||
            !db.Commit(txn.get()).ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(db.checkpointer()->stats().checkpoints, 0u)
      << "the daemon must have checkpointed during the run";

  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  EXPECT_TRUE(db.checkpointer()->running())
      << "recovery must restart the daemon";
  // Every commit was acknowledged (synchronous Commit), so every row must
  // hold the last writer's value for that row.
  for (int row = 0; row < kRows; ++row) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[row], &out).ok());
    EXPECT_FALSE(out.empty());
  }
}

TEST(CkptTest, TruncatedCommitDoesNotTurnWinnerIntoLoser) {
  // Regression: per-partition truncation can reclaim a winner's commit
  // record from one partition while its update record survives in another
  // whose truncation point lags. Analysis must not classify that
  // transaction as a loser — its last surviving record sits below the redo
  // horizon, which proves it was decided before the checkpoint — or
  // recovery would roll back an acknowledged commit.
  Database db(PlogDb(/*parts=*/2, /*interval_us=*/1000000));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  Rid rid;
  db.log_manager()->BindThisThread(0);
  {
    auto setup = db.Begin();
    ASSERT_TRUE(db.Insert(setup.get(), table, "base", &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(setup.get()).ok());
  }

  // Transaction A: update lands in partition 0, commit in partition 1.
  auto a = db.Begin();
  ASSERT_TRUE(db.Update(a.get(), table, rid, "winner",
                        AccessOptions::Baseline()).ok());
  db.log_manager()->BindThisThread(1);
  const Lsn a_commit = db.CommitAsync(a.get());
  db.log_manager()->WaitFlushed(a_commit);
  ASSERT_TRUE(db.CommitFinalize(a.get()).ok());

  // Transaction B re-dirties the page from partition 1, so checkpointing
  // partition 1 flushes it and raises the horizon past A's commit.
  auto b = db.Begin();
  ASSERT_TRUE(db.Update(b.get(), table, rid, "winner2",
                        AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(b.get()).ok());
  ASSERT_TRUE(db.CheckpointPartition(1).ok());

  // The poisonous shape: A's commit record truncated, its update alive.
  bool a_commit_alive = false, a_update_alive = false;
  for (const auto& rec : db.log_manager()->ReadStable()) {
    if (rec.txn != a->id()) continue;
    if (rec.type == LogType::kCommit) a_commit_alive = true;
    if (rec.type == LogType::kUpdate) a_update_alive = true;
  }
  ASSERT_FALSE(a_commit_alive) << "test setup: commit must be truncated";
  ASSERT_TRUE(a_update_alive) << "test setup: update must survive";

  db.SimulateCrash();
  RecoveryDriver driver(&db);
  ASSERT_TRUE(driver.Run(nullptr).ok());
  EXPECT_GE(driver.stats().cleared_by_horizon, 1u);
  EXPECT_EQ(driver.stats().undo_applied, 0u)
      << "nothing may be undone: every surviving commit-less txn was "
         "decided before the checkpoint";
  std::string out;
  ASSERT_TRUE(db.catalog()->Heap(table)->Get(rid, &out).ok());
  EXPECT_EQ(out, "winner2");
}

TEST(CkptTest, RedoToleratesInsertFlushedBeforeItsStamp) {
  // Regression: Database::Insert applies the physical insert before its
  // log record exists (the RID must be known to log it). The checkpoint
  // daemon or an eviction can flush the page inside that window, leaving
  // the tuple on disk under a stale page LSN. Redo then finds the slot
  // already occupied; it must accept the identical occupant and advance
  // the stamp, not fail the whole restart with Corruption.
  Database db(PlogDb(/*parts=*/2));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  HeapFile* heap = db.catalog()->Heap(table);

  // Replay Database::Insert's steps with a flush wedged into the window.
  auto txn = db.Begin();
  Rid rid;
  ASSERT_TRUE(heap->Insert("tuple", &rid).ok());       // physical, unstamped
  ASSERT_TRUE(db.buffer_pool()->FlushPage(rid.page_id).ok());  // the window
  LogRecord rec;
  rec.type = LogType::kInsert;
  rec.txn = txn->id();
  rec.table = table;
  rec.rid = rid;
  rec.after = "tuple";
  txn->PinUndoLow(db.log_manager()->current_lsn());
  txn->ChainAppend(db.log_manager(), &rec);
  ASSERT_TRUE(heap->StampPageLsn(rid.page_id, rec.lsn).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());

  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok())
      << "an occupied slot holding the record's own image must not fail "
         "restart";
  std::string out;
  ASSERT_TRUE(db.catalog()->Heap(table)->Get(rid, &out).ok());
  EXPECT_EQ(out, "tuple");
}

// ------------------------------------------- durable restart (two lifetimes)

TEST(CkptTest, TwoLifetimeReopenRecoversCommittedState) {
  const std::string dir = TempDataDir("two_lifetime");
  Database::Options opts = PlogDb(/*parts=*/2);
  opts.data_dir = dir;
  opts.log_segment_bytes = 2048;
  TableId table;

  // Lifetime 1: commit 30 rows, checkpoint (truncating + unlinking),
  // update a few rows, then crash and DESTROY the database — nothing
  // in-memory survives into the next lifetime.
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    CommitInserts(&db, table, 30, "v");
    for (int sweep = 0; sweep < 2; ++sweep) {
      ASSERT_TRUE(db.CheckpointPartition(0).ok());
      ASSERT_TRUE(db.CheckpointPartition(1).ok());
    }
    EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u);
    db.log_manager()->BindThisThread(1);
    auto txn = db.Begin();
    Rid r0{};
    // Rows were inserted with ids scattered; re-find row 0 by re-reading
    // the first insert's rid via a fresh scan is overkill — update via a
    // second insert instead: one more committed row post-checkpoint.
    ASSERT_TRUE(db.Insert(txn.get(), table, "tail", &r0,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(txn.get()).ok());
    db.SimulateCrash();
  }

  // Lifetime 2: reopen from the directory, recover, verify, extend. The
  // schema is NOT re-created — the durable catalog restores it before
  // Recover() runs.
  {
    Database db(opts);
    ASSERT_EQ(db.catalog()->num_tables(), 1u)
        << "catalog.db must restore the schema at construction";
    ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
    table = db.catalog()->GetTable("t")->id;
    ASSERT_TRUE(db.Recover(nullptr).ok());
    EXPECT_EQ(db.catalog()->Heap(table)->record_count(), 31u)
        << "all committed rows must be rebuilt from disk alone";
    size_t tails = 0, values = 0;
    ASSERT_TRUE(db.catalog()
                    ->Heap(table)
                    ->Scan([&](const Rid&, std::string_view rec) {
                      if (rec == "tail") ++tails;
                      if (rec.rfind("v", 0) == 0) ++values;
                      return true;
                    })
                    .ok());
    EXPECT_EQ(tails, 1u) << "the post-checkpoint commit must survive";
    EXPECT_EQ(values, 30u) << "checkpointed history must survive truncation";

    // Extend state, then CLEAN shutdown (no crash) for lifetime 3.
    auto txn = db.Begin();
    Rid rid;
    ASSERT_TRUE(db.Insert(txn.get(), table, "lifetime2", &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(txn.get()).ok());
  }

  // Lifetime 3: a clean shutdown must also reopen consistently — again
  // with no schema re-creation.
  {
    Database db(opts);
    ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
    table = db.catalog()->GetTable("t")->id;
    ASSERT_TRUE(db.Recover(nullptr).ok());
    EXPECT_EQ(db.catalog()->Heap(table)->record_count(), 32u);
  }
}

TEST(CkptTest, ReopenWithEagerIndexRootsDoesNotReuseLoggedPageIds) {
  // Regression: a reopened lifetime replays its catalog BEFORE Recover,
  // and CreateIndex eagerly allocates a B+Tree root page. The dead
  // lifetime's heap pages can sit beyond pages.db EOF (acked on WAL only,
  // never flushed), so a naive allocator would hand the root one of those
  // logged page ids — and redo would re-Init the frame as a heap page,
  // clobbering the root. The Database constructor must raise the page
  // allocator past every page id the recovered log references before the
  // catalog replay runs.
  // The collision needs pages.db EOF to sit strictly between the flushed
  // pages and the dead lifetime's allocation frontier: big rows (few per
  // page), a checkpoint mid-run (flushes the pages so far = the EOF),
  // then more inserts allocating pages past it that reach only the WAL.
  const std::string dir = TempDataDir("index_root");
  Database::Options opts = PlogDb(/*parts=*/2);
  opts.data_dir = dir;
  TableId table;
  IndexId index;
  auto row_value = [](int i) {
    return "row" + std::to_string(i) + "|" + std::string(3000, 'x');
  };
  auto row_key = [](std::string_view rec) {
    return "k" + std::string(rec.substr(3, rec.find('|') - 3));
  };
  constexpr int kRows = 12;
  std::vector<Rid> rids;
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    ASSERT_TRUE(
        db.catalog()->CreateIndex(table, "t_pk", true, false, &index).ok());
    auto insert_rows = [&](int from, int to) {
      for (int i = from; i < to; ++i) {
        auto txn = db.Begin();
        Rid rid;
        ASSERT_TRUE(db.Insert(txn.get(), table, row_value(i), &rid,
                              AccessOptions::Baseline()).ok());
        ASSERT_TRUE(db.IndexInsert(txn.get(), index,
                                   "k" + std::to_string(i),
                                   IndexEntry{rid, 0, false}).ok());
        ASSERT_TRUE(db.Commit(txn.get()).ok());
        rids.push_back(rid);
      }
    };
    insert_rows(0, 4);
    ASSERT_TRUE(db.CheckpointPartition(0).ok());  // EOF = pages so far
    ASSERT_TRUE(db.CheckpointPartition(1).ok());
    insert_rows(4, kRows);  // fresh pages past EOF, WAL-only
    db.SimulateKill();
  }
  Database db(opts);
  // The catalog replay re-creates the schema inside the constructor; the
  // eager B+Tree root it allocates would be handed the first page id past
  // pages.db EOF — a WAL-only heap page — without the allocator bump,
  // which the constructor performs BEFORE the replay.
  ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
  table = db.catalog()->GetTable("t")->id;
  ASSERT_NE(db.catalog()->GetIndex("t_pk"), nullptr);
  index = db.catalog()->GetIndex("t_pk")->id;
  ASSERT_TRUE(db.Recover([&](Database* d) {
    // Schema-aware index rebuild, as a workload would do.
    return d->catalog()->Heap(table)->Scan(
        [&](const Rid& rid, std::string_view rec) {
          (void)d->catalog()->Index(index)->Insert(
              row_key(rec), IndexEntry{rid, 0, false});
          return true;
        });
  }).ok());
  for (int i = 0; i < kRows; ++i) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, row_value(i));
    IndexEntry entry;
    ASSERT_TRUE(db.catalog()
                    ->Index(index)
                    ->Probe("k" + std::to_string(i), &entry)
                    .ok())
        << "index root must not have been clobbered by redo (key k" << i
        << ")";
    EXPECT_EQ(entry.rid, rids[i]);
  }
}

TEST(CkptTest, CentralFileBackendReopenRecovers) {
  const std::string dir = TempDataDir("central_reopen");
  Database::Options opts;  // central backend
  opts.buffer_frames = 256;
  opts.log.flush_interval_us = 20;
  opts.data_dir = dir;
  opts.log_segment_bytes = 2048;
  TableId table;
  std::vector<Rid> rids;
  {
    Database db(opts);
    ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
    rids = CommitInserts(&db, table, 20, "c");
    ASSERT_TRUE(db.Checkpoint().ok());
    EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u);
    db.SimulateCrash();
  }
  Database db(opts);
  // Central backend, same contract: schema restored from catalog.db.
  ASSERT_NE(db.catalog()->GetTable("t"), nullptr);
  table = db.catalog()->GetTable("t")->id;
  ASSERT_TRUE(db.Recover(nullptr).ok());
  for (int i = 0; i < 20; ++i) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "c" + std::to_string(i));
  }
  // LSN allocation must have resumed past the recovered stream.
  auto txn = db.Begin();
  Rid rid;
  ASSERT_TRUE(db.Insert(txn.get(), table, "fresh", &rid,
                        AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());
  std::string out;
  ASSERT_TRUE(db.catalog()->Heap(table)->Get(rid, &out).ok());
  EXPECT_EQ(out, "fresh");
}

// ------------------------------------------------ adaptive cadence

TEST(CkptTest, AdaptivePickFollowsStableLogGrowth) {
  Database db(PlogDb(/*parts=*/4, /*interval_us=*/1000000));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 4, "b");
  // Settle: checkpoint every partition so the baselines reflect the
  // setup traffic.
  for (uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(db.CheckpointPartition(p).ok());
  }

  // Make partition 2 hot: all appends bound there.
  db.log_manager()->BindThisThread(2);
  for (int i = 0; i < 10; ++i) {
    auto txn = db.Begin();
    ASSERT_TRUE(db.Update(txn.get(), table, rids[0],
                          "hot" + std::to_string(i),
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(txn.get()).ok());
  }
  EXPECT_EQ(db.checkpointer()->PickPartition(), 2u)
      << "the daemon must visit the partition whose stable log grew";

  ASSERT_TRUE(db.CheckpointPartition(2).ok());
  const auto visits = db.checkpointer()->partition_visits();
  ASSERT_EQ(visits.size(), 4u);
  EXPECT_GE(visits[2], 2u);
  // Post-visit baseline reset + idle system: picks fall back to
  // round-robin instead of re-hammering partition 2.
  const uint32_t a = db.checkpointer()->PickPartition();
  const uint32_t b = db.checkpointer()->PickPartition();
  EXPECT_NE(a, b) << "idle rounds must rotate, not stick";
}

// ------------------------------------------------ global mode + central

TEST(CkptTest, GlobalCheckpointOnCentralBackendTruncates) {
  Database::Options opts;  // central backend
  opts.buffer_frames = 256;
  opts.log.flush_interval_us = 20;
  Database db(opts);
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 25, "c");
  db.log_manager()->FlushTo(db.log_manager()->current_lsn());
  const size_t before = db.log_manager()->stable_size();

  ASSERT_TRUE(db.Checkpoint().ok());
  EXPECT_GT(db.log_manager()->reclaimed_bytes(), 0u);
  EXPECT_LT(db.log_manager()->stable_size(), before);

  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  for (int i = 0; i < 25; ++i) {
    std::string out;
    ASSERT_TRUE(db.catalog()->Heap(table)->Get(rids[i], &out).ok());
    EXPECT_EQ(out, "c" + std::to_string(i));
  }
}

// --------------------------------------------------- per-record CRC32

TEST(CkptTest, CrcDetectsCorruptedMiddleInPartitionStream) {
  plog::PartitionedLogManager::Options o;
  o.num_partitions = 1;
  o.log.flush_interval_us = 1000000;
  plog::PartitionedLogManager log{o};
  log.BindThisThread(0);
  for (int i = 0; i < 8; ++i) {
    LogRecord rec;
    rec.type = LogType::kUpdate;
    rec.txn = 1;
    rec.after = std::string(40, static_cast<char>('a' + i));
    log.Append(&rec);
  }
  log.FlushTo(log.current_lsn());
  ASSERT_EQ(log.ReadStable().size(), 8u);

  // Flip a byte deep inside the stream (record ~4 of 8): a length-field
  // scan would sail past it; the CRC must stop the decode there.
  log.partition(0)->FlipStableByte(log.partition(0)->stable_size() / 2);
  const auto recs = log.ReadStable();
  EXPECT_LT(recs.size(), 8u) << "decode must stop at the corruption";
  EXPECT_GT(recs.size(), 0u) << "the clean prefix must survive";
  for (size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].after, std::string(40, static_cast<char>('a' + i)));
  }
}

TEST(CkptTest, CrcDetectsCorruptedMiddleInCentralLog) {
  LogManager::Options o;
  o.flush_interval_us = 1000000;
  LogManager log{o};
  for (int i = 0; i < 8; ++i) {
    LogRecord rec;
    rec.type = LogType::kInsert;
    rec.txn = 1;
    rec.after = std::string(40, static_cast<char>('A' + i));
    log.Append(&rec);
  }
  log.FlushTo(log.current_lsn());
  ASSERT_EQ(log.ReadStable().size(), 8u);
  log.FlipStableByte(log.stable_size() / 2);
  const auto recs = log.ReadStable();
  EXPECT_LT(recs.size(), 8u);
  EXPECT_GT(recs.size(), 0u);
}

TEST(CkptTest, CorruptedMiddleBoundsRecoveryNotJustTornTail) {
  // End-to-end: corruption in one partition's stable middle behaves like a
  // (detected) torn tail — the merged recovery horizon drops to the last
  // clean record, and recovery still replays a consistent committed
  // prefix instead of trusting garbage.
  Database db(PlogDb(/*parts=*/2, /*interval_us=*/1000000));
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  const std::vector<Rid> rids = CommitInserts(&db, table, 12, "x");
  db.log_manager()->FlushTo(db.log_manager()->current_lsn());

  Plm(&db)->partition(0)->FlipStableByte(
      Plm(&db)->partition(0)->stable_size() * 3 / 4);
  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  // Rows whose chains sit entirely below the corruption point survive;
  // every readable row holds exactly what was committed (no garbage).
  size_t present = 0;
  for (int i = 0; i < 12; ++i) {
    std::string out;
    if (db.catalog()->Heap(table)->Get(rids[i], &out).ok()) {
      EXPECT_EQ(out, "x" + std::to_string(i));
      ++present;
    }
  }
  EXPECT_GT(present, 0u);
}

// ------------------------------------------- DORA inline commit acks

TEST(CkptTest, InlineAckFastPathCompletesWithoutDaemonRoundTrip) {
  Database::Options opts = PlogDb(/*parts=*/2);
  opts.log.synchronous = true;  // horizon covers every GSN at append time
  Database db(opts);
  TableId table;
  ASSERT_TRUE(db.catalog()->CreateTable("t", &table).ok());
  Rid rid;
  {
    auto setup = db.Begin();
    ASSERT_TRUE(db.Insert(setup.get(), table, "0", &rid,
                          AccessOptions::Baseline()).ok());
    ASSERT_TRUE(db.Commit(setup.get()).ok());
  }

  dora::DoraEngine::Options eopts;
  eopts.pipelined_commit = true;
  dora::DoraEngine engine(&db, eopts);
  engine.RegisterTable(table, 64, 2);
  engine.Start();
  constexpr int kTxns = 60;
  for (int t = 0; t < kTxns; ++t) {
    auto dtxn = engine.BeginTxn();
    dora::FlowGraph g;
    g.AddPhase().AddAction(table, 0, dora::LocalMode::kX,
                           [&](dora::ActionEnv& env) {
                             std::string cur;
                             Status s = env.db->Read(env.txn, table, rid,
                                                     &cur,
                                                     AccessOptions::NoCc());
                             if (!s.ok()) return s;
                             return env.db->Update(
                                 env.txn, table, rid,
                                 std::to_string(std::stoi(cur) + 1),
                                 AccessOptions::NoCc());
                           });
    ASSERT_TRUE(engine.Run(dtxn, std::move(g)).ok());
  }
  engine.Stop();
  EXPECT_EQ(engine.txns_committed(), static_cast<uint64_t>(kTxns));
  EXPECT_EQ(engine.txns_acked_inline(), static_cast<uint64_t>(kTxns))
      << "with a synchronous log every pipelined commit must ack inline";

  db.SimulateCrash();
  ASSERT_TRUE(db.Recover(nullptr).ok());
  std::string out;
  auto txn = db.Begin();
  ASSERT_TRUE(
      db.Read(txn.get(), table, rid, &out, AccessOptions::Baseline()).ok());
  ASSERT_TRUE(db.Commit(txn.get()).ok());
  EXPECT_EQ(out, std::to_string(kTxns));
}

}  // namespace
}  // namespace doradb
